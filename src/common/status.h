#ifndef JPAR_COMMON_STATUS_H_
#define JPAR_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace jpar {

/// Error categories used across the engine. Mirrors the Arrow/RocksDB
/// convention of status-based error handling: no exceptions cross public
/// API boundaries.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kParseError = 2,       // malformed JSON or JSONiq text
  kTypeError = 3,        // dynamic type mismatch during evaluation
  kNotFound = 4,         // missing collection, file, or variable
  kUnsupported = 5,      // feature outside the implemented subset
  kResourceExhausted = 6,  // memory budget or document-size limits
  kIOError = 7,
  kInternal = 8,
  kUnavailable = 9,  // transient overload: retry later (queue full)
  kCancelled = 10,         // the client cancelled the query
  kDeadlineExceeded = 11,  // the query's deadline passed before it finished
  kWorkerLost = 12,        // a distributed worker died or went silent
};

/// One past the largest StatusCode value. status.cc static_asserts this
/// against the enum and tests iterate [0, kStatusCodeCount) through
/// StatusCodeToString, so a new code cannot land without a name.
inline constexpr int kStatusCodeCount = 13;

/// Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error outcome. Cheap to copy in the OK case (no
/// allocation); error state carries a code and a message.
class Status {
 public:
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status WorkerLost(std::string msg) {
    return Status(StatusCode::kWorkerLost, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  std::shared_ptr<const Rep> rep_;
};

}  // namespace jpar

/// Propagates a non-OK Status out of the enclosing function.
#define JPAR_RETURN_NOT_OK(expr)                    \
  do {                                              \
    ::jpar::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                      \
  } while (false)

#endif  // JPAR_COMMON_STATUS_H_
