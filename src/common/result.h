#ifndef JPAR_COMMON_RESULT_H_
#define JPAR_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace jpar {

/// A value-or-error wrapper in the style of arrow::Result. A Result is
/// either an engaged value of type T or a non-OK Status; constructing one
/// from an OK status is a programming error.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit
  // conversions so `return value;` and `return status;` both work.
  Result(T value) : state_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {
    assert(!std::get<Status>(state_).ok() &&
           "Result constructed from OK status");
  }

  Result(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(const Result&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(state_);
  }

  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(state_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<Status, T> state_;
};

}  // namespace jpar

#define JPAR_CONCAT_IMPL_(a, b) a##b
#define JPAR_CONCAT_(a, b) JPAR_CONCAT_IMPL_(a, b)

/// Evaluates an expression yielding Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs` (which may be a
/// declaration, e.g. `auto x`).
#define JPAR_ASSIGN_OR_RETURN(lhs, expr)                       \
  JPAR_ASSIGN_OR_RETURN_IMPL_(JPAR_CONCAT_(_res_, __LINE__), lhs, expr)

#define JPAR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie();

#endif  // JPAR_COMMON_RESULT_H_
