#include "common/status.h"

namespace jpar {

static_assert(static_cast<int>(StatusCode::kWorkerLost) + 1 ==
                  kStatusCodeCount,
              "added a StatusCode? bump kStatusCodeCount and name it in "
              "StatusCodeToString");

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kWorkerLost:
      return "WorkerLost";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace jpar
