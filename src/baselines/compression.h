#ifndef JPAR_BASELINES_COMPRESSION_H_
#define JPAR_BASELINES_COMPRESSION_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace jpar {

/// A small LZ77-family byte compressor used by the DocStore (MongoDB
/// model). MongoDB's snappy-per-document compression is the mechanism
/// behind its Fig. 18 behaviour: larger documents compress better, so
/// query time and space shrink with document size. This codec has the
/// same property (a per-document match window), which is all the
/// reproduction needs — ratio constants differ from snappy but the
/// trend is identical.
///
/// Format: repeated blocks of
///   varint literal_len, <literal bytes>,
///   varint match_len (0 terminates after literals),
///   varint match_distance (>= 1, <= 64 KiB window)
std::string LzCompress(std::string_view input);

Result<std::string> LzDecompress(std::string_view compressed);

}  // namespace jpar

#endif  // JPAR_BASELINES_COMPRESSION_H_
