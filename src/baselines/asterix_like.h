#ifndef JPAR_BASELINES_ASTERIX_LIKE_H_
#define JPAR_BASELINES_ASTERIX_LIKE_H_

#include <string>
#include <string_view>

#include "baselines/docstore.h"  // LoadStats
#include "common/result.h"
#include "core/engine.h"

namespace jpar {

struct AsterixLikeOptions {
  /// preload == false: the "AsterixDB" external-dataset mode — queries
  /// parse raw JSON per run, but into the internal data model first.
  /// preload == true: "AsterixDB(load)" — documents are converted to the
  /// binary internal model (ADM analogue) once; queries skip parsing.
  bool preload = false;
  /// Modeled storage write bandwidth charged for the bytes the load
  /// phase persists (the reproduction host measures CPU only; the
  /// paper's load times are disk-bound).
  double modeled_write_mbps = 80.0;
  ExecOptions exec;
};

/// AsterixDB-model baseline. The paper attributes AsterixDB's gap to
/// VXQuery entirely to the missing JSONiq pipelining rules ("Without
/// them, the system waits to first gather all the measurements in the
/// array before it moves them to the next stage"), and AsterixDB shares
/// the same Hyracks/Algebricks infrastructure. So this baseline IS the
/// engine — with the pipelining rules disabled — plus an optional
/// load/convert phase for the (load) variant.
class AsterixLike {
 public:
  explicit AsterixLike(AsterixLikeOptions options);

  /// Registers the dataset; in preload mode this converts every file to
  /// the binary internal model and reports Table-1-style load stats.
  Result<LoadStats> Register(std::string_view name,
                             const Collection& collection);

  /// Compiles and runs a JSONiq query with pipelining rules off.
  Result<QueryOutput> Run(std::string_view query) const;

  const Engine& engine() const { return engine_; }

 private:
  AsterixLikeOptions options_;
  Engine engine_;
};

}  // namespace jpar

#endif  // JPAR_BASELINES_ASTERIX_LIKE_H_
