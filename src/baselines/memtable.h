#ifndef JPAR_BASELINES_MEMTABLE_H_
#define JPAR_BASELINES_MEMTABLE_H_

#include <functional>
#include <vector>

#include "baselines/docstore.h"  // LoadStats
#include "common/result.h"
#include "json/item.h"
#include "runtime/catalog.h"
#include "runtime/memory.h"

namespace jpar {

struct MemTableOptions {
  /// Available memory for the loaded table. Loading a dataset whose
  /// materialized form exceeds this fails — the Spark-SQL OOM cliff the
  /// paper hits above ~2 GB inputs (Table 3 discussion).
  uint64_t memory_limit_bytes = 0;  // 0 = unlimited
};

/// Spark-SQL-model baseline: the whole input is parsed and materialized
/// in memory before any query runs. Queries are then fast scans over
/// the in-memory documents, but (a) the load phase is charged per
/// dataset (Table 2), (b) memory grows with the input (Table 3), and
/// (c) inputs beyond the memory limit cannot be processed at all.
class MemTable {
 public:
  explicit MemTable(MemTableOptions options = MemTableOptions())
      : memory_(options.memory_limit_bytes) {}

  /// Parses every file into the in-memory table.
  Result<LoadStats> Load(const Collection& collection);

  /// Scans the loaded documents (no parsing).
  Status ForEachDocument(const std::function<Status(const Item&)>& fn) const;

  uint64_t memory_bytes() const { return memory_.current_bytes(); }
  size_t document_count() const { return docs_.size(); }

 private:
  MemoryTracker memory_;
  std::vector<Item> docs_;
};

}  // namespace jpar

#endif  // JPAR_BASELINES_MEMTABLE_H_
