#include "baselines/compression.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace jpar {

namespace {

constexpr size_t kWindow = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1024;
constexpr size_t kHashSize = 1 << 15;

void AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

bool ReadVarint(std::string_view data, size_t* pos, uint64_t* out) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < data.size() && shift <= 63) {
    uint8_t b = static_cast<uint8_t>(data[(*pos)++]);
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

uint32_t Hash4(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> 17 & (kHashSize - 1);
}

}  // namespace

std::string LzCompress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  std::vector<size_t> table(kHashSize, SIZE_MAX);

  size_t pos = 0;
  size_t literal_start = 0;
  while (pos < input.size()) {
    size_t match_pos = SIZE_MAX;
    size_t match_len = 0;
    if (pos + kMinMatch <= input.size()) {
      uint32_t h = Hash4(input.data() + pos);
      size_t candidate = table[h];
      table[h] = pos;
      if (candidate != SIZE_MAX && pos - candidate <= kWindow &&
          candidate + kMinMatch <= input.size()) {
        size_t len = 0;
        size_t limit = input.size() - pos;
        if (limit > kMaxMatch) limit = kMaxMatch;
        while (len < limit && input[candidate + len] == input[pos + len]) {
          ++len;
        }
        if (len >= kMinMatch) {
          match_pos = candidate;
          match_len = len;
        }
      }
    }
    if (match_len == 0) {
      ++pos;
      continue;
    }
    // Emit pending literals + this match.
    AppendVarint(pos - literal_start, &out);
    out.append(input.substr(literal_start, pos - literal_start));
    AppendVarint(match_len, &out);
    AppendVarint(pos - match_pos, &out);
    // Index a few positions inside the match so later matches can use
    // them (cheap approximation of full indexing).
    size_t end = pos + match_len;
    for (size_t i = pos + 1; i + kMinMatch <= end && i < pos + 16; ++i) {
      table[Hash4(input.data() + i)] = i;
    }
    pos = end;
    literal_start = pos;
  }
  // Trailing literals with a zero match_len terminator.
  AppendVarint(pos - literal_start, &out);
  out.append(input.substr(literal_start, pos - literal_start));
  AppendVarint(0, &out);
  return out;
}

Result<std::string> LzDecompress(std::string_view compressed) {
  std::string out;
  size_t pos = 0;
  while (pos < compressed.size()) {
    uint64_t literal_len;
    if (!ReadVarint(compressed, &pos, &literal_len)) {
      return Status::Internal("corrupt LZ stream: literal length");
    }
    if (pos + literal_len > compressed.size()) {
      return Status::Internal("corrupt LZ stream: literals truncated");
    }
    out.append(compressed.substr(pos, literal_len));
    pos += literal_len;
    uint64_t match_len;
    if (!ReadVarint(compressed, &pos, &match_len)) {
      return Status::Internal("corrupt LZ stream: match length");
    }
    if (match_len == 0) {
      if (pos != compressed.size()) {
        return Status::Internal("corrupt LZ stream: trailing bytes");
      }
      return out;
    }
    uint64_t distance;
    if (!ReadVarint(compressed, &pos, &distance)) {
      return Status::Internal("corrupt LZ stream: distance");
    }
    if (distance == 0 || distance > out.size()) {
      return Status::Internal("corrupt LZ stream: bad distance");
    }
    size_t from = out.size() - distance;
    for (uint64_t i = 0; i < match_len; ++i) {
      out.push_back(out[from + i]);  // overlapping copies are valid
    }
  }
  return Status::Internal("corrupt LZ stream: missing terminator");
}

}  // namespace jpar
