#include "baselines/docstore.h"

#include <chrono>

#include "baselines/compression.h"
#include "json/binary_serde.h"
#include "json/parser.h"

namespace jpar {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

Status DocStore::Insert(const Item& document) {
  std::string binary = SerializeItem(document);
  if (binary.size() > options_.max_document_bytes) {
    return Status::ResourceExhausted(
        "document of " + std::to_string(binary.size()) +
        " bytes exceeds the " + std::to_string(options_.max_document_bytes) +
        "-byte document limit");
  }
  std::string stored =
      options_.compress ? LzCompress(binary) : std::move(binary);
  stored_bytes_ += stored.size();
  docs_.push_back(std::move(stored));
  return Status::OK();
}

Result<LoadStats> DocStore::Load(const std::vector<std::string>& json_docs) {
  LoadStats stats;
  auto start = Clock::now();
  for (const std::string& text : json_docs) {
    stats.input_bytes += text.size();
    JPAR_ASSIGN_OR_RETURN(Item doc, ParseJson(text));
    JPAR_RETURN_NOT_OK(Insert(doc));
  }
  stats.documents = docs_.size();
  stats.stored_bytes = stored_bytes_;
  stats.load_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  if (options_.modeled_write_mbps > 0) {
    stats.load_ms += static_cast<double>(stats.stored_bytes) /
                     (options_.modeled_write_mbps * 1e6) * 1000.0;
  }
  return stats;
}

Status DocStore::ForEachDocument(
    const std::function<Status(const Item&)>& fn) const {
  for (const std::string& stored : docs_) {
    Item doc;
    if (options_.compress) {
      JPAR_ASSIGN_OR_RETURN(std::string binary, LzDecompress(stored));
      JPAR_ASSIGN_OR_RETURN(doc, DeserializeItem(binary));
    } else {
      JPAR_ASSIGN_OR_RETURN(doc, DeserializeItem(stored));
    }
    JPAR_RETURN_NOT_OK(fn(doc));
  }
  return Status::OK();
}

Result<std::vector<Item>> DocStore::UnwindProject(
    const std::string& array_field,
    const std::vector<std::string>& keep_fields) const {
  std::vector<Item> out;
  JPAR_RETURN_NOT_OK(ForEachDocument([&](const Item& doc) -> Status {
    std::optional<Item> array = doc.GetField(array_field);
    if (!array.has_value() || !array->is_array()) return Status::OK();
    for (const Item& element : array->array()) {
      if (!element.is_object()) continue;
      Item::Object projected;
      for (const std::string& field : keep_fields) {
        std::optional<Item> value = element.GetField(field);
        if (value.has_value()) {
          projected.push_back({field, *std::move(value)});
        }
      }
      out.push_back(Item::MakeObject(std::move(projected)));
    }
    return Status::OK();
  }));
  return out;
}

}  // namespace jpar
