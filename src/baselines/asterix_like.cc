#include "baselines/asterix_like.h"

#include <chrono>

#include "json/binary_serde.h"
#include "json/parser.h"

namespace jpar {

namespace {

EngineOptions MakeEngineOptions(const AsterixLikeOptions& options) {
  EngineOptions eo;
  eo.rules = RuleOptions::All();
  // AsterixDB shares Algebricks (partitioned DATASCANs) but lacks the
  // paper's JSONiq pushdown rules: arrays are materialized before
  // unnesting — the paper's stated reason for the performance gap.
  eo.rules.pipelining_pushdown = false;
  eo.exec = options.exec;
  return eo;
}

}  // namespace

AsterixLike::AsterixLike(AsterixLikeOptions options)
    : options_(options), engine_(MakeEngineOptions(options)) {}

Result<LoadStats> AsterixLike::Register(std::string_view name,
                                        const Collection& collection) {
  LoadStats stats;
  if (!options_.preload) {
    engine_.catalog()->RegisterCollection(name, collection);
    return stats;
  }
  auto start = std::chrono::steady_clock::now();
  Collection loaded;
  loaded.files.reserve(collection.files.size());
  for (const JsonFile& file : collection.files) {
    JPAR_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> text,
                          file.Load());
    stats.input_bytes += text->size();
    // A collection file may hold several documents (NDJSON); each
    // becomes one stored internal-model record.
    JPAR_ASSIGN_OR_RETURN(std::vector<Item> docs, ParseJsonStream(*text));
    for (const Item& doc : docs) {
      std::string binary = SerializeItem(doc);
      stats.stored_bytes += binary.size();
      ++stats.documents;
      loaded.files.push_back(JsonFile::FromBinaryItem(std::move(binary)));
    }
  }
  stats.load_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  if (options_.modeled_write_mbps > 0) {
    stats.load_ms += static_cast<double>(stats.stored_bytes) /
                     (options_.modeled_write_mbps * 1e6) * 1000.0;
  }
  engine_.catalog()->RegisterCollection(name, loaded);
  return stats;
}

Result<QueryOutput> AsterixLike::Run(std::string_view query) const {
  return engine_.Run(query);
}

}  // namespace jpar
