#include "baselines/memtable.h"

#include <chrono>

#include "json/parser.h"

namespace jpar {

Result<LoadStats> MemTable::Load(const Collection& collection) {
  LoadStats stats;
  auto start = std::chrono::steady_clock::now();
  for (const JsonFile& file : collection.files) {
    JPAR_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> text,
                          file.Load());
    stats.input_bytes += text->size();
    JPAR_ASSIGN_OR_RETURN(std::vector<Item> file_docs,
                          ParseJsonStream(*text));
    for (Item& doc : file_docs) {
      JPAR_RETURN_NOT_OK(memory_.Allocate(doc.EstimateSizeBytes()));
      docs_.push_back(std::move(doc));
    }
  }
  stats.documents = docs_.size();
  stats.stored_bytes = memory_.current_bytes();
  stats.load_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  return stats;
}

Status MemTable::ForEachDocument(
    const std::function<Status(const Item&)>& fn) const {
  for (const Item& doc : docs_) {
    JPAR_RETURN_NOT_OK(fn(doc));
  }
  return Status::OK();
}

}  // namespace jpar
