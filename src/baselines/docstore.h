#ifndef JPAR_BASELINES_DOCSTORE_H_
#define JPAR_BASELINES_DOCSTORE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "json/item.h"

namespace jpar {

/// Load-phase statistics shared by all load-first baselines.
struct LoadStats {
  double load_ms = 0;
  uint64_t input_bytes = 0;
  uint64_t stored_bytes = 0;
  uint64_t documents = 0;
};

struct DocStoreOptions {
  /// Per-document compression, as MongoDB's storage engine does. Larger
  /// documents compress better — the driver of the paper's Fig. 18.
  bool compress = true;
  /// MongoDB's hard document-size limit. Exceeding it fails the insert
  /// (the paper's Q2 failure mode before the unwind workaround).
  uint64_t max_document_bytes = 16ull * 1024 * 1024;
  /// Modeled storage write bandwidth charged for the stored (compressed)
  /// bytes during Load — the mechanism behind the paper's Table 1:
  /// better compression => fewer bytes written => faster load.
  double modeled_write_mbps = 80.0;
};

/// MongoDB-model baseline: a document store that must LOAD JSON before
/// querying. Loading parses the text, converts it to the internal
/// binary record format (BSON analogue), and compresses each document.
/// Queries decompress + decode binary records — never re-parsing JSON,
/// which is why its per-query time beats the streaming engine on
/// selection queries (paper Fig. 24) at the cost of Table 4's load
/// times.
class DocStore {
 public:
  explicit DocStore(DocStoreOptions options = DocStoreOptions())
      : options_(options) {}

  /// Parses and stores documents. Fails with ResourceExhausted if any
  /// document exceeds the document-size limit.
  Result<LoadStats> Load(const std::vector<std::string>& json_docs);

  /// Inserts an already materialized document (used by the unwind
  /// pipeline). Enforces the size limit.
  Status Insert(const Item& document);

  /// Full collection scan: decompress + decode each document.
  Status ForEachDocument(const std::function<Status(const Item&)>& fn) const;

  uint64_t stored_bytes() const { return stored_bytes_; }
  uint64_t document_count() const { return docs_.size(); }

  /// The $unwind + $project preprocessing step the paper applies before
  /// MongoDB's self-join: explodes `array_field` (one output document
  /// per element) and keeps only `keep_fields` of each element.
  Result<std::vector<Item>> UnwindProject(
      const std::string& array_field,
      const std::vector<std::string>& keep_fields) const;

 private:
  DocStoreOptions options_;
  std::vector<std::string> docs_;  // compressed (or raw) binary records
  uint64_t stored_bytes_ = 0;
};

}  // namespace jpar

#endif  // JPAR_BASELINES_DOCSTORE_H_
