#ifndef JPAR_STATS_COLLECTION_STATS_H_
#define JPAR_STATS_COLLECTION_STATS_H_

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "json/item.h"
#include "storage/storage_tier.h"

namespace jpar {

/// Whether the planner may read and the executor may build sampled
/// collection statistics (DESIGN.md §15).
///   kAuto   — build during cold scans, consume when the sample is
///             large enough to trust; the default.
///   kOff    — no stats reads, no stats builds; plans fall back to the
///             pre-PR-10 heuristics.
///   kForced — consume whatever stats exist, however small the sample;
///             benchmarking/testing aid.
/// The JPAR_DISABLE_STATS environment variable overrides every mode to
/// kOff — the operational kill-switch, mirroring
/// JPAR_DISABLE_STORAGE_CACHE.
enum class StatsMode : uint8_t { kAuto = 0, kOff = 1, kForced = 2 };

/// True when JPAR_DISABLE_STATS is set (checked once per process).
bool StatsDisabledByEnv();

/// True when `mode` (after the env kill-switch) permits building or
/// reading stats at all.
bool StatsEnabled(StatsMode mode);

/// Per-(file, projected path) sampled statistics, gathered as a tee on
/// the projecting reader during cold scans. Row and document counts
/// are exact (every emitted item ticks them); value-shape facts
/// (type mix, min/max, the distinct sketch) come from a deterministic
/// stride sample — the first kSampleFullRows rows, then every
/// kSampleStride-th — so the cost of observation is O(1) amortized and
/// independent of randomness (stats built on any host, under any
/// thread count, converge to mergeable sketches).
struct PathStats {
  static constexpr size_t kHllRegisters = 256;
  static constexpr uint64_t kSampleFullRows = 8192;
  static constexpr uint64_t kSampleStride = 16;

  uint64_t rows = 0;        // items emitted for the projected path
  uint64_t documents = 0;   // top-level documents scanned
  uint64_t file_bytes = 0;  // size of the file the sample came from
  uint64_t sampled = 0;     // rows that contributed to the shape facts

  uint64_t count_numeric = 0;
  uint64_t count_string = 0;
  uint64_t count_bool = 0;
  uint64_t count_null = 0;
  uint64_t count_object = 0;
  uint64_t count_array = 0;

  uint8_t has_minmax = 0;  // numeric min/max observed at least once
  double min_value = 0;
  double max_value = 0;

  // HyperLogLog registers over the group-key encoding of each sampled
  // value (m=256, ~6.5% relative error); register-max merge makes the
  // sketch order-independent across morsels and files.
  std::array<uint8_t, kHllRegisters> hll{};

  /// Folds one emitted item into the stats (row count always; shape
  /// facts when the stride admits it).
  void Observe(const Item& item);

  /// Register-max / sum merge; order-independent.
  void MergeFrom(const PathStats& other);

  /// HLL estimate with the standard small-range linear-counting
  /// correction. Zero when nothing was sampled.
  double DistinctEstimate() const;

  /// Fraction of documents that produced at least one item for the
  /// path, clamped to [0, 1]. (rows/documents can exceed 1 under array
  /// fan-out; see MeanRowsPerDocument for the unclamped ratio.)
  double PresenceFraction() const;

  /// Fraction of sampled values that were numeric.
  double NumericFraction() const;

  /// rows / documents, the fan-out estimate (0 when no documents).
  double MeanRowsPerDocument() const;
};

/// Serialize/parse the PathStats payload (everything after the sidecar
/// header). Public so the serde tests can corrupt precisely.
void AppendPathStatsPayload(const PathStats& stats, std::string* out);
bool ParsePathStatsPayload(std::string_view data, PathStats* out);

/// Per-query stats knobs resolved from ExecOptions; an empty cache_dir
/// keeps the store's current setting (the sidecars land beside the
/// data files, or under storage_cache_dir when that is set — stats
/// sidecars follow the same placement rule as the PR 9 tapes).
struct StatsConfig {
  std::string cache_dir;
};

/// Process-global store of sampled PathStats, keyed by (file path,
/// projected path string) and validated against the live file
/// (size, mtime_ns) on every access — exactly the StorageManager
/// discipline: stale entries drop, sidecars (`.jstats`,
/// signature-stamped, atomically written) warm fresh processes, and a
/// monotonic epoch joins the plan-cache key so cached plans recompile
/// when the stats they were costed against drift.
class StatsStore {
 public:
  static StatsStore& Instance();

  /// The stats for (path, path_str), or null when absent, stale, or
  /// unreadable. Never parses JSON — only a stat and, at most once, a
  /// sidecar read.
  std::shared_ptr<const PathStats> Get(const std::string& path,
                                       const std::string& path_str,
                                       const StatsConfig& cfg);

  /// Installs stats built by a scan over bytes with signature
  /// `built_for`; silently dropped when the live file no longer
  /// matches. Bumps the epoch and writes the sidecar.
  void Put(const std::string& path, const std::string& path_str,
           PathStats stats, const FileSignature& built_for,
           const StatsConfig& cfg);

  /// Monotonic counter bumped when stats are learned or dropped.
  uint64_t epoch() const;

  /// Drops every in-memory entry (sidecars stay). Bumps the epoch.
  void Clear();

  /// Where the sidecar for (path, path_str) lands under `cfg` — public
  /// so the differential tests can corrupt/forge it byte-precisely.
  std::string SidecarPathFor(const std::string& path,
                             const std::string& path_str,
                             const StatsConfig& cfg);

  struct Totals {
    uint64_t files = 0;
    uint64_t paths = 0;
  };
  Totals totals() const;

 private:
  StatsStore() = default;

  struct Entry {
    FileSignature sig;
    std::unordered_map<std::string, std::shared_ptr<const PathStats>> paths;
    std::list<std::string>::iterator lru;
  };

  void ApplyConfigLocked(const StatsConfig& cfg);
  Entry* TouchLocked(const std::string& path);
  void DropEntryLocked(const std::string& path);
  void EvictOverCapLocked();
  std::string SidecarBaseLocked(const std::string& path) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  std::string cache_dir_;
  uint64_t epoch_ = 1;
};

}  // namespace jpar

#endif  // JPAR_STATS_COLLECTION_STATS_H_
