#include "stats/cost_model.h"

#include <algorithm>
#include <cmath>

namespace jpar {

CostModel::CostModel(const Catalog* catalog, StatsMode mode, StatsConfig cfg)
    : catalog_(catalog),
      mode_(mode),
      cfg_(std::move(cfg)),
      enabled_(catalog != nullptr && StatsEnabled(mode)) {}

ScanEstimate CostModel::EstimateScan(
    const std::string& collection, const std::vector<PathStep>& steps) const {
  ScanEstimate est;
  if (!enabled_) return est;
  const std::string path_str = PathToString(steps);
  const std::string cache_key = collection + "\x1f" + path_str;
  std::lock_guard<std::mutex> lock(mu_);
  auto cached = cache_.find(cache_key);
  if (cached != cache_.end()) return cached->second;

  auto coll = catalog_->GetCollection(collection);
  if (coll.ok()) {
    double total_bytes = 0;
    double covered_bytes = 0;
    double covered_rows = 0;
    auto merged = std::make_shared<PathStats>();
    StatsStore& store = StatsStore::Instance();
    for (const JsonFile& file : (*coll)->files) {
      auto size = file.SizeBytes();
      const double file_bytes = size.ok() ? static_cast<double>(*size) : 0;
      total_bytes += file_bytes;
      if (file.path().empty() || file.is_binary() || file.in_memory()) {
        continue;
      }
      auto stats = store.Get(file.path(), path_str, cfg_);
      if (stats == nullptr) continue;
      merged->MergeFrom(*stats);
      covered_bytes += file_bytes;
      covered_rows += static_cast<double>(stats->rows);
    }
    est.bytes = total_bytes;
    if (merged->sampled > 0 || merged->rows > 0) {
      est.from_stats = true;
      est.coverage =
          total_bytes > 0 ? covered_bytes / total_bytes
                          : 1.0;
      // Extrapolate the uncovered bytes at the covered density.
      double rows = covered_rows;
      if (covered_bytes > 0 && total_bytes > covered_bytes) {
        rows += covered_rows / covered_bytes * (total_bytes - covered_bytes);
      }
      est.rows = rows;
      est.confident = est.coverage >= kMinCoverage &&
                      merged->sampled >= kMinSampledRows;
      est.merged = std::move(merged);
    }
  }
  cache_.emplace(cache_key, est);
  return est;
}

bool CostModel::Trust(const ScanEstimate& e) const {
  if (!enabled_ || !e.from_stats) return false;
  return forced() || e.confident;
}

double CostModel::EstimateSelectivity(const ScanEstimate& scan,
                                      ZoneCompare op, double value) const {
  if (op == ZoneCompare::kNone) return 1.0;
  if (!Trust(scan) || scan.merged == nullptr ||
      scan.merged->sampled == 0) {
    return kDefaultSelectivity;
  }
  const PathStats& s = *scan.merged;
  const double numeric = s.NumericFraction();
  if (!s.has_minmax || numeric <= 0) {
    // No numeric values sampled: a numeric comparison matches (almost)
    // nothing.
    return 0.01;
  }
  double sel;
  if (op == ZoneCompare::kEq) {
    if (value < s.min_value || value > s.max_value) {
      sel = 0.005;  // outside the observed range; keep a safety floor
    } else {
      const double distinct = std::max(1.0, s.DistinctEstimate());
      sel = std::max(1.0 / distinct, 0.001);
    }
  } else {
    // Linear interpolation over the observed [min, max], clamped away
    // from 0/1 so an estimate never claims certainty.
    double frac;
    if (s.max_value <= s.min_value) {
      frac = value >= s.min_value ? 1.0 : 0.0;
    } else {
      frac = (value - s.min_value) / (s.max_value - s.min_value);
    }
    frac = std::clamp(frac, 0.0, 1.0);
    switch (op) {
      case ZoneCompare::kLt:
      case ZoneCompare::kLe:
        sel = frac;
        break;
      default:  // kGt, kGe
        sel = 1.0 - frac;
        break;
    }
    sel = std::clamp(sel, 0.02, 0.98);
  }
  return std::clamp(sel * numeric, 0.0, 1.0);
}

int CostModel::SpillFanoutHint(double input_rows) const {
  if (!enabled_ || input_rows < 0) return 0;
  const double fanout = input_rows / 4096.0;
  return static_cast<int>(std::clamp(fanout, 2.0, 64.0));
}

size_t CostModel::MorselBytesHint(double scan_bytes) const {
  if (!enabled_ || scan_bytes < 0) return 0;
  const double bytes = scan_bytes / 32.0;
  return static_cast<size_t>(
      std::clamp(bytes, 64.0 * 1024.0, 4.0 * 1024.0 * 1024.0));
}

}  // namespace jpar
