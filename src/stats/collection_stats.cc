#include "stats/collection_stats.h"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace jpar {

namespace {

// Sidecar layout mirrors the PR 9 tapes (storage_tier.cc): 8-byte
// magic + u64 size + u64 mtime_ns header stamped with the signature of
// the data file the stats describe, then the versioned payload.
constexpr char kStatsMagic[8] = {'J', 'P', 'S', 'T', 'A', 'T', '1', '\n'};
constexpr uint8_t kPayloadVersion = 1;
constexpr size_t kMaxStatsEntries = 4096;  // files tracked in memory

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (i * 8)));
}

bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (data.size() - *pos < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<uint8_t>(data[*pos + i]))
         << (i * 8);
  }
  *pos += 8;
  *v = r;
  return true;
}

void PutDouble(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

bool GetDouble(std::string_view data, size_t* pos, double* v) {
  uint64_t bits;
  if (!GetU64(data, pos, &bits)) return false;
  std::memcpy(v, &bits, sizeof(*v));
  return true;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// Avalanche finalizer (the 64-bit murmur3 fmix). FNV-1a alone is too
// weak for HLL register selection: over short, similar keys its top
// byte barely varies, collapsing distinct values into a handful of
// registers and collapsing the estimate with them.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

std::string Fnv1aHex(std::string_view s) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(s)));
  return std::string(buf);
}

void AppendHeader(const FileSignature& sig, std::string* out) {
  out->append(kStatsMagic, sizeof(kStatsMagic));
  PutU64(sig.size, out);
  PutU64(static_cast<uint64_t>(sig.mtime_ns), out);
}

bool CheckHeader(const FileSignature& sig, std::string_view data,
                 size_t* pos) {
  if (data.size() < sizeof(kStatsMagic) + 16) return false;
  if (std::memcmp(data.data(), kStatsMagic, sizeof(kStatsMagic)) != 0) {
    return false;
  }
  *pos = sizeof(kStatsMagic);
  uint64_t size = 0, mtime = 0;
  if (!GetU64(data, pos, &size) || !GetU64(data, pos, &mtime)) return false;
  return size == sig.size && mtime == static_cast<uint64_t>(sig.mtime_ns);
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return !in.bad();
}

// Atomic tmp+rename; failures are swallowed — the sidecar is a cache,
// not the source of truth.
void WriteSidecar(const std::string& dest, const std::string& bytes) {
  std::string tmp = dest + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return;
    }
  }
  if (std::rename(tmp.c_str(), dest.c_str()) != 0) std::remove(tmp.c_str());
}

}  // namespace

bool StatsDisabledByEnv() {
  static const bool disabled = [] {
    const char* env = std::getenv("JPAR_DISABLE_STATS");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return disabled;
}

bool StatsEnabled(StatsMode mode) {
  return mode != StatsMode::kOff && !StatsDisabledByEnv();
}

void PathStats::Observe(const Item& item) {
  const uint64_t row = rows++;
  if (row >= kSampleFullRows && row % kSampleStride != 0) return;
  ++sampled;
  if (item.is_numeric()) {
    ++count_numeric;
    const double v = item.AsDouble();
    if (!has_minmax) {
      has_minmax = 1;
      min_value = max_value = v;
    } else {
      min_value = std::min(min_value, v);
      max_value = std::max(max_value, v);
    }
  } else if (item.is_string()) {
    ++count_string;
  } else if (item.is_boolean()) {
    ++count_bool;
  } else if (item.is_null()) {
    ++count_null;
  } else if (item.is_object()) {
    ++count_object;
  } else if (item.is_array()) {
    ++count_array;
  }
  // HLL over the group-key encoding — the same value-identity the
  // engine's group-by uses, so "distinct" here means what GROUPBY
  // would count.
  std::string key;
  item.AppendGroupKeyTo(&key);
  const uint64_t h = Mix64(Fnv1a64(key));
  const size_t reg = static_cast<size_t>(h >> 56);  // top 8 bits
  const uint64_t rest = (h << 8) | 1;               // rank <= 57
  const uint8_t rank =
      static_cast<uint8_t>(1 + __builtin_clzll(rest));
  hll[reg] = std::max(hll[reg], rank);
}

void PathStats::MergeFrom(const PathStats& other) {
  rows += other.rows;
  documents += other.documents;
  file_bytes = std::max(file_bytes, other.file_bytes);
  sampled += other.sampled;
  count_numeric += other.count_numeric;
  count_string += other.count_string;
  count_bool += other.count_bool;
  count_null += other.count_null;
  count_object += other.count_object;
  count_array += other.count_array;
  if (other.has_minmax) {
    if (!has_minmax) {
      has_minmax = 1;
      min_value = other.min_value;
      max_value = other.max_value;
    } else {
      min_value = std::min(min_value, other.min_value);
      max_value = std::max(max_value, other.max_value);
    }
  }
  for (size_t i = 0; i < kHllRegisters; ++i) {
    hll[i] = std::max(hll[i], other.hll[i]);
  }
}

double PathStats::DistinctEstimate() const {
  if (sampled == 0) return 0;
  constexpr double m = static_cast<double>(kHllRegisters);
  constexpr double alpha = 0.7213 / (1.0 + 1.079 / m);  // alpha_256
  double sum = 0;
  size_t zeros = 0;
  for (uint8_t r : hll) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double est = alpha * m * m / sum;
  if (est <= 2.5 * m && zeros > 0) {
    est = m * std::log(m / static_cast<double>(zeros));  // linear counting
  }
  // The sketch only saw `sampled` rows, so it can never honestly claim
  // more distincts than that.
  return std::min(est, static_cast<double>(sampled));
}

double PathStats::PresenceFraction() const {
  if (documents == 0) return rows > 0 ? 1.0 : 0.0;
  return std::min(1.0, static_cast<double>(rows) /
                           static_cast<double>(documents));
}

double PathStats::NumericFraction() const {
  if (sampled == 0) return 0;
  return static_cast<double>(count_numeric) / static_cast<double>(sampled);
}

double PathStats::MeanRowsPerDocument() const {
  if (documents == 0) return 0;
  return static_cast<double>(rows) / static_cast<double>(documents);
}

void AppendPathStatsPayload(const PathStats& stats, std::string* out) {
  const size_t start = out->size();
  out->push_back(static_cast<char>(kPayloadVersion));
  PutU64(stats.rows, out);
  PutU64(stats.documents, out);
  PutU64(stats.file_bytes, out);
  PutU64(stats.sampled, out);
  PutU64(stats.count_numeric, out);
  PutU64(stats.count_string, out);
  PutU64(stats.count_bool, out);
  PutU64(stats.count_null, out);
  PutU64(stats.count_object, out);
  PutU64(stats.count_array, out);
  out->push_back(static_cast<char>(stats.has_minmax));
  PutDouble(stats.min_value, out);
  PutDouble(stats.max_value, out);
  out->append(reinterpret_cast<const char*>(stats.hll.data()),
              stats.hll.size());
  // Trailing payload checksum. Most of the payload is the raw register
  // array, where any byte value parses "successfully" — without the
  // checksum, flipped register bits would silently skew the distinct
  // estimate instead of missing cleanly.
  PutU64(Fnv1a64(std::string_view(out->data() + start, out->size() - start)),
         out);
}

bool ParsePathStatsPayload(std::string_view data, PathStats* out) {
  if (data.size() < 8) return false;
  size_t pos = data.size() - 8;
  uint64_t checksum = 0;
  if (!GetU64(data, &pos, &checksum) ||
      checksum != Fnv1a64(data.substr(0, data.size() - 8))) {
    return false;
  }
  data = data.substr(0, data.size() - 8);
  pos = 0;
  if (data.empty() ||
      static_cast<uint8_t>(data[0]) != kPayloadVersion) {
    return false;
  }
  pos = 1;
  PathStats s;
  if (!GetU64(data, &pos, &s.rows) || !GetU64(data, &pos, &s.documents) ||
      !GetU64(data, &pos, &s.file_bytes) || !GetU64(data, &pos, &s.sampled) ||
      !GetU64(data, &pos, &s.count_numeric) ||
      !GetU64(data, &pos, &s.count_string) ||
      !GetU64(data, &pos, &s.count_bool) ||
      !GetU64(data, &pos, &s.count_null) ||
      !GetU64(data, &pos, &s.count_object) ||
      !GetU64(data, &pos, &s.count_array)) {
    return false;
  }
  if (data.size() - pos < 1) return false;
  s.has_minmax = static_cast<uint8_t>(data[pos++]) != 0 ? 1 : 0;
  if (!GetDouble(data, &pos, &s.min_value) ||
      !GetDouble(data, &pos, &s.max_value)) {
    return false;
  }
  if (data.size() - pos != PathStats::kHllRegisters) return false;
  std::memcpy(s.hll.data(), data.data() + pos, PathStats::kHllRegisters);
  // Internal consistency: the sample can't exceed the rows, and
  // non-finite bounds mean a corrupt payload, not data.
  if (s.sampled > s.rows) return false;
  if (s.has_minmax &&
      (!std::isfinite(s.min_value) || !std::isfinite(s.max_value) ||
       s.min_value > s.max_value)) {
    return false;
  }
  *out = s;
  return true;
}

StatsStore& StatsStore::Instance() {
  static StatsStore* store = new StatsStore();
  return *store;
}

void StatsStore::ApplyConfigLocked(const StatsConfig& cfg) {
  if (!cfg.cache_dir.empty()) cache_dir_ = cfg.cache_dir;
}

std::string StatsStore::SidecarBaseLocked(const std::string& path) const {
  if (cache_dir_.empty()) return path;
  return cache_dir_ + "/" + Fnv1aHex(path);
}

std::string StatsStore::SidecarPathFor(const std::string& path,
                                       const std::string& path_str,
                                       const StatsConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  ApplyConfigLocked(cfg);
  return SidecarBaseLocked(path) + "." + Fnv1aHex(path_str) + ".jstats";
}

StatsStore::Entry* StatsStore::TouchLocked(const std::string& path) {
  auto it = entries_.find(path);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return &it->second;
}

void StatsStore::DropEntryLocked(const std::string& path) {
  auto it = entries_.find(path);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru);
  entries_.erase(it);
  ++epoch_;
}

void StatsStore::EvictOverCapLocked() {
  while (entries_.size() > kMaxStatsEntries && !lru_.empty()) {
    std::string victim = lru_.back();
    auto it = entries_.find(victim);
    if (it != entries_.end()) {
      lru_.erase(it->second.lru);
      entries_.erase(it);
    } else {
      lru_.pop_back();
    }
  }
}

std::shared_ptr<const PathStats> StatsStore::Get(const std::string& path,
                                                 const std::string& path_str,
                                                 const StatsConfig& cfg) {
  if (StatsDisabledByEnv()) return nullptr;
  auto sig = StatFileSignature(path);
  std::lock_guard<std::mutex> lock(mu_);
  ApplyConfigLocked(cfg);
  if (!sig.ok()) {
    DropEntryLocked(path);
    return nullptr;
  }
  Entry* e = TouchLocked(path);
  if (e != nullptr && e->sig != *sig) {
    DropEntryLocked(path);
    e = nullptr;
  }
  if (e != nullptr) {
    auto it = e->paths.find(path_str);
    if (it != e->paths.end()) return it->second;
  }
  // Miss in memory: try the sidecar, validating against the live file.
  const std::string sidecar_path =
      SidecarBaseLocked(path) + "." + Fnv1aHex(path_str) + ".jstats";
  std::string bytes;
  if (!ReadFileBytes(sidecar_path, &bytes)) return nullptr;
  size_t pos = 0;
  if (!CheckHeader(*sig, bytes, &pos)) return nullptr;
  auto stats = std::make_shared<PathStats>();
  if (!ParsePathStatsPayload(
          std::string_view(bytes).substr(pos), stats.get())) {
    return nullptr;
  }
  if (e == nullptr) {
    lru_.push_front(path);
    Entry fresh;
    fresh.sig = *sig;
    fresh.lru = lru_.begin();
    e = &entries_.emplace(path, std::move(fresh)).first->second;
    EvictOverCapLocked();
  }
  auto installed =
      e->paths.emplace(path_str, std::move(stats)).first->second;
  return installed;
}

void StatsStore::Put(const std::string& path, const std::string& path_str,
                     PathStats stats, const FileSignature& built_for,
                     const StatsConfig& cfg) {
  if (StatsDisabledByEnv()) return;
  auto sig = StatFileSignature(path);
  std::string sidecar_path;
  std::string sidecar;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ApplyConfigLocked(cfg);
    // The file changed while the scan ran: the sample describes bytes
    // that no longer exist.
    if (!sig.ok() || *sig != built_for) {
      DropEntryLocked(path);
      return;
    }
    Entry* e = TouchLocked(path);
    if (e != nullptr && e->sig != built_for) {
      DropEntryLocked(path);
      e = nullptr;
    }
    if (e == nullptr) {
      lru_.push_front(path);
      Entry fresh;
      fresh.sig = built_for;
      fresh.lru = lru_.begin();
      e = &entries_.emplace(path, std::move(fresh)).first->second;
      EvictOverCapLocked();
    }
    // Two scans racing to learn the same path: first writer wins, the
    // samples are equivalent.
    if (!e->paths.emplace(path_str, std::make_shared<PathStats>(stats))
             .second) {
      return;
    }
    ++epoch_;
    sidecar_path =
        SidecarBaseLocked(path) + "." + Fnv1aHex(path_str) + ".jstats";
    AppendHeader(built_for, &sidecar);
    AppendPathStatsPayload(stats, &sidecar);
  }
  WriteSidecar(sidecar_path, sidecar);
}

uint64_t StatsStore::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void StatsStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  ++epoch_;
}

StatsStore::Totals StatsStore::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  Totals t;
  t.files = entries_.size();
  for (const auto& [path, e] : entries_) t.paths += e.paths.size();
  return t;
}

}  // namespace jpar
