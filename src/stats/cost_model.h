#ifndef JPAR_STATS_COST_MODEL_H_
#define JPAR_STATS_COST_MODEL_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "json/projecting_reader.h"
#include "runtime/catalog.h"
#include "stats/collection_stats.h"
#include "storage/column_store.h"

namespace jpar {

/// What the planner believes about one (collection, projected path)
/// scan, merged across the collection's files from the StatsStore.
struct ScanEstimate {
  double rows = -1;   // estimated items emitted (-1 = unknown)
  double bytes = -1;  // total collection bytes (-1 = unknown)
  bool from_stats = false;  // any sampled stats contributed
  bool confident = false;   // coverage and sample size clear the bar
  double coverage = 0;      // fraction of bytes covered by fresh stats
  // Merged per-path sample across covered files; null when none.
  std::shared_ptr<const PathStats> merged;
};

/// Read-side costing over the StatsStore (DESIGN.md §15). Constructed
/// per compilation (Engine::Compile) from the session's StatsMode and
/// handed to the rewriter and physical translator; every estimate is
/// advisory — consumers may only toggle answer-preserving physical
/// annotations, never plan structure, because distributed workers
/// recompile fragments against their own (possibly divergent) stats.
class CostModel {
 public:
  CostModel(const Catalog* catalog, StatsMode mode, StatsConfig cfg);

  /// False when the mode or the JPAR_DISABLE_STATS kill-switch turns
  /// stats off — estimates then return the unknown defaults.
  bool enabled() const { return enabled_; }
  bool forced() const { return mode_ == StatsMode::kForced; }

  /// Merged estimate for scanning `collection` projected to `steps`.
  /// Cached per (collection, path) for the compilation's lifetime.
  ScanEstimate EstimateScan(const std::string& collection,
                            const std::vector<PathStep>& steps) const;

  /// Selectivity of `value-of-path <op> constant` over the rows of
  /// `scan`, in [0, 1]. kDefaultSelectivity when the estimate carries
  /// no usable sample. Monotone in `value` for range operators and
  /// nonincreasing in the distinct count for equality.
  double EstimateSelectivity(const ScanEstimate& scan, ZoneCompare op,
                             double value) const;

  /// Whether an estimate is trustworthy enough to act on: kForced
  /// trusts any sample; kAuto wants most bytes covered and a
  /// non-trivial sample.
  bool Trust(const ScanEstimate& e) const;

  /// Grace-hash fanout suited to `input_rows` rows (monotone,
  /// clamped to [2, 64]); 0 when unknown.
  int SpillFanoutHint(double input_rows) const;

  /// Morsel size suited to `scan_bytes` total bytes (monotone, clamped
  /// to [64 KiB, 4 MiB]); 0 when unknown.
  size_t MorselBytesHint(double scan_bytes) const;

  static constexpr double kDefaultSelectivity = 0.25;
  /// kAuto trusts a sample only past these bars.
  static constexpr double kMinCoverage = 0.5;
  static constexpr uint64_t kMinSampledRows = 16;
  /// A zone-prunable predicate at or below this selectivity routes the
  /// scan to the columnar access path (AccessHint::kColumnar).
  static constexpr double kColumnarSelectivity = 0.2;
  /// Build on the left join input when its trusted estimate is at most
  /// half the right's (hysteresis so borderline stats don't flap).
  static constexpr double kBuildFlipRatio = 0.5;
  /// An equality above this selectivity prunes too few files for a
  /// path-index probe to pay off; the rewriter keeps the plain scan.
  static constexpr double kIndexVetoSelectivity = 0.5;

 private:
  const Catalog* catalog_;
  StatsMode mode_;
  StatsConfig cfg_;
  bool enabled_;
  mutable std::mutex mu_;
  mutable std::map<std::string, ScanEstimate> cache_;
};

}  // namespace jpar

#endif  // JPAR_STATS_COST_MODEL_H_
