#include "runtime/expr_compile.h"

#include <cstdlib>
#include <utility>

namespace jpar {

namespace {

bool IsComparison(Builtin fn) {
  switch (fn) {
    case Builtin::kEq:
    case Builtin::kNe:
    case Builtin::kLt:
    case Builtin::kLe:
    case Builtin::kGt:
    case Builtin::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmetic(Builtin fn) {
  switch (fn) {
    case Builtin::kAdd:
    case Builtin::kSub:
    case Builtin::kMul:
    case Builtin::kDiv:
    case Builtin::kMod:
      return true;
    default:
      return false;
  }
}

void FinalizeProgram(ExprProgram* prog);

/// Emits `node` in postfix order. Returns false on an opaque node — the
/// whole compilation is then abandoned (tree interpreter keeps the
/// expression).
bool CompileNode(const ScalarEval* node, ExprProgram* prog) {
  switch (node->shape()) {
    case ScalarEval::Shape::kConstant: {
      ExprInstr ins;
      ins.op = ExprOpCode::kConst;
      ins.constant = *node->shape_constant();
      prog->code.push_back(std::move(ins));
      return true;
    }
    case ScalarEval::Shape::kColumn: {
      ExprInstr ins;
      ins.op = ExprOpCode::kColumn;
      ins.column = node->shape_column();
      prog->code.push_back(std::move(ins));
      return true;
    }
    case ScalarEval::Shape::kFunction: {
      Builtin fn = node->shape_function();
      const std::vector<ScalarEvalPtr>* args = node->shape_args();
      if (fn == Builtin::kAnd || fn == Builtin::kOr) {
        // Lazy connective: lhs inline, rhs as a sub-program the
        // evaluator runs only on lanes the lhs did not decide.
        if (!CompileNode((*args)[0].get(), prog)) return false;
        auto sub = std::make_shared<ExprProgram>();
        if (!CompileNode((*args)[1].get(), sub.get())) return false;
        FinalizeProgram(sub.get());
        ExprInstr ins;
        ins.op = fn == Builtin::kAnd ? ExprOpCode::kAnd : ExprOpCode::kOr;
        ins.sub = std::move(sub);
        prog->code.push_back(std::move(ins));
        return true;
      }
      for (const ScalarEvalPtr& arg : *args) {
        if (!CompileNode(arg.get(), prog)) return false;
      }
      ExprInstr ins;
      ins.op = ExprOpCode::kCall;
      ins.fn = fn;
      ins.argc = static_cast<uint32_t>(args->size());
      prog->code.push_back(std::move(ins));
      return true;
    }
    case ScalarEval::Shape::kOpaque:
      return false;
  }
  return false;
}

/// Peephole fusion of [kConst c][binary kCall] pairs, then the stack
/// height computation. Fusing only constant right-hand sides covers what
/// the rewriter emits (predicates compare columns against literals).
void FinalizeProgram(ExprProgram* prog) {
  std::vector<ExprInstr> fused;
  fused.reserve(prog->code.size());
  for (ExprInstr& ins : prog->code) {
    if (!fused.empty() && fused.back().op == ExprOpCode::kConst &&
        ins.op == ExprOpCode::kCall && ins.argc == 2) {
      if (IsComparison(ins.fn) || IsArithmetic(ins.fn) ||
          ins.fn == Builtin::kValue) {
        ExprInstr merged;
        merged.op = IsComparison(ins.fn) ? ExprOpCode::kCompareConst
                    : IsArithmetic(ins.fn) ? ExprOpCode::kArithConst
                                           : ExprOpCode::kValueConst;
        merged.fn = ins.fn;
        merged.constant = std::move(fused.back().constant);
        fused.pop_back();
        fused.push_back(std::move(merged));
        continue;
      }
    }
    fused.push_back(std::move(ins));
  }
  prog->code = std::move(fused);

  size_t depth = 0, max_depth = 0;
  for (const ExprInstr& ins : prog->code) {
    switch (ins.op) {
      case ExprOpCode::kConst:
      case ExprOpCode::kColumn:
        ++depth;
        break;
      case ExprOpCode::kCall:
        depth -= ins.argc;
        ++depth;
        break;
      default:  // unary stack effect: pop 1, push 1
        break;
    }
    if (depth > max_depth) max_depth = depth;
  }
  prog->max_stack = max_depth;
}

/// One evaluated operand: a broadcast constant, a borrowed batch column
/// (indexed by row id), or a per-lane owned vector. Borrowing keeps
/// kColumn and kConst zero-copy.
struct Operand {
  const Item* konst = nullptr;
  const std::vector<Item>* column = nullptr;
  std::vector<Item> owned;

  const Item& At(size_t lane, uint32_t row) const {
    if (konst != nullptr) return *konst;
    if (column != nullptr) return (*column)[row];
    return owned[lane];
  }
};

Status Tick(EvalCheck* check) {
  return check != nullptr ? check->Tick() : Status::OK();
}

void RecordError(std::vector<LaneError>* errors, std::vector<uint8_t>* dead,
                 size_t lane, Status status) {
  (*dead)[lane] = 1;
  errors->push_back(LaneError{lane, std::move(status)});
}

}  // namespace

ExprProgramPtr CompileExprProgram(const ScalarEvalPtr& eval) {
  if (eval == nullptr) return nullptr;
  auto prog = std::make_shared<ExprProgram>();
  if (!CompileNode(eval.get(), prog.get())) return nullptr;
  FinalizeProgram(prog.get());
  prog->source = eval->ToString();
  return prog;
}

Status EvalExprProgram(const ExprProgram& prog, const TupleBatch& batch,
                       const std::vector<uint32_t>& sel, EvalContext* ctx,
                       EvalCheck* check, std::vector<Item>* out,
                       std::vector<LaneError>* errors) {
  const size_t n = sel.size();
  std::vector<uint8_t> dead(n, 0);
  std::vector<Operand> stack;
  stack.reserve(prog.max_stack);
  std::vector<Item> scratch;

  for (const ExprInstr& ins : prog.code) {
    switch (ins.op) {
      case ExprOpCode::kConst: {
        Operand v;
        v.konst = &ins.constant;
        stack.push_back(std::move(v));
        break;
      }
      case ExprOpCode::kColumn: {
        Operand v;
        if (ins.column < 0 ||
            static_cast<size_t>(ins.column) >= batch.width()) {
          // Same failure ColumnEval reports; the width is uniform, so
          // every live lane fails identically — recording the first
          // live lane preserves the lowest-row error.
          Status st = Status::Internal(
              "column " + std::to_string(ins.column) +
              " out of range for tuple of width " +
              std::to_string(batch.width()));
          for (size_t lane = 0; lane < n; ++lane) {
            if (!dead[lane]) RecordError(errors, &dead, lane, st);
          }
          v.owned.resize(n);
        } else {
          v.column = &batch.column(static_cast<size_t>(ins.column));
        }
        stack.push_back(std::move(v));
        break;
      }
      case ExprOpCode::kCall: {
        size_t argc = ins.argc;
        Operand result;
        result.owned.resize(n);
        const Operand* args = stack.data() + (stack.size() - argc);
        for (size_t lane = 0; lane < n; ++lane) {
          if (dead[lane]) continue;
          JPAR_RETURN_NOT_OK(Tick(check));
          scratch.clear();
          for (size_t j = 0; j < argc; ++j) {
            scratch.push_back(args[j].At(lane, sel[lane]));
          }
          Result<Item> r = ApplyBuiltin(ins.fn, scratch, ctx);
          if (!r.ok()) {
            RecordError(errors, &dead, lane, r.status());
          } else {
            result.owned[lane] = *std::move(r);
          }
        }
        stack.resize(stack.size() - argc);
        stack.push_back(std::move(result));
        break;
      }
      case ExprOpCode::kCompareConst: {
        Operand top = std::move(stack.back());
        stack.pop_back();
        Operand result;
        result.owned.resize(n);
        const bool konst_seq = ins.constant.is_sequence();
        for (size_t lane = 0; lane < n; ++lane) {
          if (dead[lane]) continue;
          JPAR_RETURN_NOT_OK(Tick(check));
          const Item& lhs = top.At(lane, sel[lane]);
          if (!lhs.is_sequence() && !konst_seq) {
            // Atomic-vs-atomic: the single existential pair.
            Result<int> c = lhs.Compare(ins.constant);
            if (!c.ok()) {
              RecordError(errors, &dead, lane, c.status());
              continue;
            }
            bool hit = false;
            switch (ins.fn) {
              case Builtin::kEq: hit = *c == 0; break;
              case Builtin::kNe: hit = *c != 0; break;
              case Builtin::kLt: hit = *c < 0; break;
              case Builtin::kLe: hit = *c <= 0; break;
              case Builtin::kGt: hit = *c > 0; break;
              case Builtin::kGe: hit = *c >= 0; break;
              default: break;
            }
            result.owned[lane] = Item::Boolean(hit);
            continue;
          }
          Result<Item> r = GeneralCompareOp(ins.fn, lhs, ins.constant);
          if (!r.ok()) {
            RecordError(errors, &dead, lane, r.status());
          } else {
            result.owned[lane] = *std::move(r);
          }
        }
        stack.push_back(std::move(result));
        break;
      }
      case ExprOpCode::kArithConst: {
        Operand top = std::move(stack.back());
        stack.pop_back();
        Operand result;
        result.owned.resize(n);
        for (size_t lane = 0; lane < n; ++lane) {
          if (dead[lane]) continue;
          JPAR_RETURN_NOT_OK(Tick(check));
          Result<Item> r =
              ArithmeticOp(ins.fn, top.At(lane, sel[lane]), ins.constant);
          if (!r.ok()) {
            RecordError(errors, &dead, lane, r.status());
          } else {
            result.owned[lane] = *std::move(r);
          }
        }
        stack.push_back(std::move(result));
        break;
      }
      case ExprOpCode::kValueConst: {
        Operand top = std::move(stack.back());
        stack.pop_back();
        Operand result;
        result.owned.resize(n);
        for (size_t lane = 0; lane < n; ++lane) {
          if (dead[lane]) continue;
          JPAR_RETURN_NOT_OK(Tick(check));
          Result<Item> r = ValueStep(top.At(lane, sel[lane]), ins.constant);
          if (!r.ok()) {
            RecordError(errors, &dead, lane, r.status());
          } else {
            result.owned[lane] = *std::move(r);
          }
        }
        stack.push_back(std::move(result));
        break;
      }
      case ExprOpCode::kAnd:
      case ExprOpCode::kOr: {
        const bool is_and = ins.op == ExprOpCode::kAnd;
        Operand top = std::move(stack.back());
        stack.pop_back();
        Operand result;
        result.owned.resize(n);
        std::vector<uint32_t> undecided_rows;
        std::vector<size_t> undecided_lanes;
        for (size_t lane = 0; lane < n; ++lane) {
          if (dead[lane]) continue;
          JPAR_RETURN_NOT_OK(Tick(check));
          Result<bool> lb = top.At(lane, sel[lane]).EffectiveBooleanValue();
          if (!lb.ok()) {
            RecordError(errors, &dead, lane, lb.status());
          } else if (is_and && !*lb) {
            result.owned[lane] = Item::Boolean(false);
          } else if (!is_and && *lb) {
            result.owned[lane] = Item::Boolean(true);
          } else {
            undecided_rows.push_back(sel[lane]);
            undecided_lanes.push_back(lane);
          }
        }
        if (!undecided_rows.empty()) {
          std::vector<Item> sub_out;
          std::vector<LaneError> sub_errors;
          JPAR_RETURN_NOT_OK(EvalExprProgram(*ins.sub, batch, undecided_rows,
                                             ctx, check, &sub_out,
                                             &sub_errors));
          for (LaneError& e : sub_errors) {
            RecordError(errors, &dead, undecided_lanes[e.lane],
                        std::move(e.status));
          }
          for (size_t k = 0; k < undecided_lanes.size(); ++k) {
            size_t lane = undecided_lanes[k];
            if (dead[lane]) continue;
            Result<bool> rb = sub_out[k].EffectiveBooleanValue();
            if (!rb.ok()) {
              RecordError(errors, &dead, lane, rb.status());
            } else {
              result.owned[lane] = Item::Boolean(*rb);
            }
          }
        }
        stack.push_back(std::move(result));
        break;
      }
    }
  }

  if (stack.size() != 1) {
    return Status::Internal("expression bytecode stack imbalance");
  }
  Operand top = std::move(stack.back());
  if (top.konst != nullptr) {
    out->assign(n, *top.konst);
  } else if (top.column != nullptr) {
    out->clear();
    out->reserve(n);
    for (size_t lane = 0; lane < n; ++lane) {
      out->push_back((*top.column)[sel[lane]]);
    }
  } else {
    *out = std::move(top.owned);
  }
  return Status::OK();
}

bool ExprBytecodeDisabledByEnv() {
  static const bool disabled = [] {
    const char* v = std::getenv("JPAR_DISABLE_EXPR_BYTECODE");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return disabled;
}

}  // namespace jpar
