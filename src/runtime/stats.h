#ifndef JPAR_RUNTIME_STATS_H_
#define JPAR_RUNTIME_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace jpar {

/// Per-stage measurements. A "stage" is a Hyracks-style superstep: all
/// partitions of one pipeline (or one exchange + blocking operator) run
/// to completion before the next stage starts.
struct StageStats {
  std::string name;
  /// Wall-clock milliseconds per partition task. On a single-core host
  /// partitions run sequentially; the simulated-parallel makespan of the
  /// stage is max(partition_ms).
  std::vector<double> partition_ms;
  /// Total time spent serializing/deserializing and routing exchange
  /// frames (single-host wall clock; kept for reference).
  double exchange_ms = 0;
  /// Per-task exchange times for the makespan model: one vector per
  /// exchange phase (sender-side encode tasks, receiver-side decode
  /// tasks), each LPT-scheduled onto the modeled cores like ordinary
  /// partition tasks.
  std::vector<std::vector<double>> exchange_task_ms;
  /// Simulated cross-node network time for this stage's exchange.
  double network_ms = 0;
  uint64_t exchange_bytes = 0;
  uint64_t exchange_frames = 0;
  uint64_t exchange_tuples = 0;
  /// Largest single serialized tuple seen at an operator boundary or
  /// exchange (shows how the rewrite rules shrink tuple granularity).
  uint64_t max_tuple_bytes = 0;
  /// Total bytes materialized into frames at intra-pipeline operator
  /// boundaries (the "buffer size between operators" of paper §4.1).
  uint64_t pipeline_bytes = 0;
  /// Frames larger than the configured frame size (tuple > frame).
  uint64_t oversized_frames = 0;

  double MaxPartitionMs() const {
    double m = 0;
    for (double v : partition_ms) m = v > m ? v : m;
    return m;
  }
  double SumPartitionMs() const {
    double s = 0;
    for (double v : partition_ms) s += v;
    return s;
  }
};

/// End-to-end execution statistics returned with every query result.
struct ExecStats {
  std::vector<StageStats> stages;

  /// Real wall-clock time of the whole job on this host.
  double real_ms = 0;
  /// Simulated parallel time: sum over stages of
  /// max(partition_ms) + exchange_ms (+ modeled network cost). This is
  /// the quantity the paper's speed-up/scale-up figures plot.
  double makespan_ms = 0;
  /// Modeled cross-node network time included in makespan_ms.
  double network_ms = 0;

  uint64_t bytes_scanned = 0;
  uint64_t items_scanned = 0;
  uint64_t result_rows = 0;
  uint64_t peak_retained_bytes = 0;
  /// Malformed records skipped by degraded scans
  /// (ExecOptions::on_parse_error == kSkipAndCount); 0 in strict mode.
  uint64_t skipped_records = 0;
  /// Scan tasks executed by morsel-driven DATASCANs (threaded runs
  /// split files into newline-aligned ~morsel_bytes chunks); 0 when
  /// scans ran sequentially.
  uint64_t morsels_scanned = 0;
  /// Memory-governed spilling (ExecOptions::spill == kEnabled,
  /// DESIGN.md §10). Run files written by group-by/sort operators that
  /// exceeded their budget share; all 0 when nothing spilled.
  uint64_t spill_runs = 0;
  uint64_t spill_bytes_written = 0;
  /// Bucket merge passes, counting recursive repartitions of
  /// hash-collision-heavy buckets.
  uint64_t spill_merge_passes = 0;

  /// Distributed execution (src/dist, DESIGN.md §11); all 0 for
  /// single-process runs.
  uint64_t dist_workers = 0;  // worker processes that ran fragments
  uint64_t dist_rounds = 0;   // fragment rounds (attempts) dispatched
  uint64_t dist_frames = 0;   // data frames routed through the dispatcher
  uint64_t dist_bytes = 0;    // payload bytes of those frames

  /// Vectorized execution (DESIGN.md §13); both 0 under the legacy
  /// tuple-at-a-time path (ExprMode::kTree or JPAR_DISABLE_EXPR_BYTECODE).
  uint64_t batches_emitted = 0;  // TupleBatches flushed through pipelines
  uint64_t exprs_compiled = 0;   // ASSIGN/SELECT exprs running as bytecode

  /// Warm storage tier (DESIGN.md §14); all 0 when the cache is off or
  /// every scanned file is in-memory/binary.
  uint64_t tape_hits = 0;      // scans served a cached structural tape
  uint64_t tape_builds = 0;    // tapes built (and cached) this query
  uint64_t columns_read = 0;   // files served from the columnar cache
  uint64_t blocks_pruned = 0;  // column blocks skipped via zone maps

  /// Sampled statistics (DESIGN.md §15): (file, path) samples this
  /// query contributed to the StatsStore; 0 when stats are off or
  /// every sample was already fresh.
  uint64_t stats_paths_built = 0;

  /// Failure recovery (DESIGN.md §12); all 0 when no worker was lost.
  uint64_t fragment_retries = 0;   // fragment re-dispatches after kWorkerLost
  uint64_t workers_respawned = 0;  // worker processes respawned mid-query
  uint64_t frames_replayed = 0;    // input frames re-sent to retried fragments
  uint64_t replay_spill_bytes = 0;  // replay-buffer bytes spilled to disk
  /// Wall clock from first loss detection until the affected stages
  /// completed (includes backoff, respawn, and re-execution time).
  double recovery_ms = 0;

  void Merge(const StageStats& stage) { stages.push_back(stage); }

  /// Folds a worker-side fragment's stats into this (dispatcher-side)
  /// aggregate: stages are appended, counters summed, peaks maxed.
  /// Timing aggregates (real_ms/makespan_ms) are left to the caller —
  /// in a distributed run they are genuine wall-clock, not sums.
  void MergeFrom(const ExecStats& other) {
    for (const StageStats& s : other.stages) stages.push_back(s);
    network_ms += other.network_ms;
    bytes_scanned += other.bytes_scanned;
    items_scanned += other.items_scanned;
    if (other.peak_retained_bytes > peak_retained_bytes) {
      peak_retained_bytes = other.peak_retained_bytes;
    }
    skipped_records += other.skipped_records;
    morsels_scanned += other.morsels_scanned;
    spill_runs += other.spill_runs;
    spill_bytes_written += other.spill_bytes_written;
    spill_merge_passes += other.spill_merge_passes;
    batches_emitted += other.batches_emitted;
    exprs_compiled += other.exprs_compiled;
    tape_hits += other.tape_hits;
    tape_builds += other.tape_builds;
    columns_read += other.columns_read;
    blocks_pruned += other.blocks_pruned;
    stats_paths_built += other.stats_paths_built;
    dist_frames += other.dist_frames;
    dist_bytes += other.dist_bytes;
    fragment_retries += other.fragment_retries;
    workers_respawned += other.workers_respawned;
    frames_replayed += other.frames_replayed;
    replay_spill_bytes += other.replay_spill_bytes;
    recovery_ms += other.recovery_ms;
  }
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_STATS_H_
