#ifndef JPAR_RUNTIME_OPERATORS_H_
#define JPAR_RUNTIME_OPERATORS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "json/projecting_reader.h"
#include "storage/column_store.h"
#include "runtime/aggregates.h"
#include "runtime/expr_compile.h"
#include "runtime/expression.h"
#include "runtime/tuple.h"
#include "runtime/tuple_batch.h"

namespace jpar {

/// Receives the tuples produced by a pipeline segment.
using TupleSink = std::function<Status(Tuple)>;

/// Receives the surviving rows of a batch at the pipeline boundary. The
/// batch is consumed (its selection lists the rows to materialize).
using BatchSink = std::function<Status(TupleBatch&)>;

/// One aggregate computed by an AGGREGATE / GROUP-BY / SUBPLAN:
/// `kind(arg)` evaluated over the operator's input stream, result bound
/// to a fresh output column.
struct AggSpec {
  AggKind kind = AggKind::kCount;
  ScalarEvalPtr arg;

  std::string ToString() const;
};

struct SubplanDesc;

/// One decoded group-by spill record (DESIGN.md §10): the group's
/// encoded hash key, its key items, and one saved partial state per
/// AggSpec of the operator, in spec order.
struct GroupSpillRecord {
  std::string encoded_key;
  Tuple key_items;
  std::vector<Item> partials;
};

/// Serializes one group of a spilling GROUP-BY into `*out` (appended)
/// using the binary_serde item encoding: the encoded key as a string
/// item, the key items as a counted tuple, then a counted list of
/// Aggregator::SavePartial snapshots — one per spec.
Status EncodeGroupSpillRecord(
    const std::string& encoded_key, const Tuple& key_items,
    const std::vector<std::unique_ptr<Aggregator>>& aggs, std::string* out);

/// The inverse of EncodeGroupSpillRecord over one complete record.
Result<GroupSpillRecord> DecodeGroupSpillRecord(std::string_view record);

/// Reads just the encoded key of a group spill record — what a
/// recursive repartition needs to route records it never decodes.
Result<std::string> PeekGroupSpillKey(std::string_view record);

/// A streaming (non-blocking) physical operator. Pipelines are vectors
/// of these descriptors; they are immutable and shared across partition
/// tasks.
struct UnaryOpDesc {
  enum class Kind : uint8_t {
    kAssign,   // append eval(tuple) as a new column
    kSelect,   // keep tuple iff EBV(eval(tuple))
    kUnnest,   // for each member of eval(tuple): append as new column
    kSubplan,  // run nested plan per tuple; append its aggregate columns
    kProject,  // keep only the listed columns (dead-variable pruning)
  };

  Kind kind = Kind::kAssign;
  ScalarEvalPtr eval;                      // kAssign/kSelect/kUnnest
  std::shared_ptr<const SubplanDesc> subplan;  // kSubplan
  std::vector<int> columns;                // kProject
  /// Compiled bytecode for `eval` (kAssign/kSelect only; nullptr when
  /// compilation was off or the tree is opaque). Attached by the
  /// physical translator; the batch chain uses it when the executor
  /// runs in bytecode mode.
  ExprProgramPtr program;

  static UnaryOpDesc Assign(ScalarEvalPtr e) {
    UnaryOpDesc d;
    d.kind = Kind::kAssign;
    d.eval = std::move(e);
    return d;
  }
  static UnaryOpDesc Select(ScalarEvalPtr e) {
    UnaryOpDesc d;
    d.kind = Kind::kSelect;
    d.eval = std::move(e);
    return d;
  }
  static UnaryOpDesc Unnest(ScalarEvalPtr e) {
    UnaryOpDesc d;
    d.kind = Kind::kUnnest;
    d.eval = std::move(e);
    return d;
  }
  static UnaryOpDesc Subplan(std::shared_ptr<const SubplanDesc> s) {
    UnaryOpDesc d;
    d.kind = Kind::kSubplan;
    d.subplan = std::move(s);
    return d;
  }
  static UnaryOpDesc Project(std::vector<int> cols) {
    UnaryOpDesc d;
    d.kind = Kind::kProject;
    d.columns = std::move(cols);
    return d;
  }

  std::string ToString() const;
};

/// A nested plan executed once per outer tuple (the SUBPLAN operator,
/// paper Fig. 11): streaming ops over the seed tuple, then aggregates
/// over the resulting stream. Output: seed tuple ++ one column per agg.
struct SubplanDesc {
  std::vector<UnaryOpDesc> ops;
  std::vector<AggSpec> aggs;

  std::string ToString() const;
};

/// Applies `ops[from..]` to `tuple`, delivering results to `sink`.
/// Recursion depth equals pipeline length (small).
Status RunChain(const std::vector<UnaryOpDesc>& ops, size_t from,
                Tuple tuple, EvalContext* ctx, const TupleSink& sink);

/// Batch-at-a-time form of RunChain (DESIGN.md §13): applies the whole
/// chain to `batch`, shrinking its selection at SELECTs, and delivers
/// the survivors to `sink` in row order. ASSIGN/SELECT run vectorized
/// (bytecode when `use_bytecode` and the op carries a program, per-lane
/// tree evaluation otherwise); UNNEST/SUBPLAN fall back to the tuple
/// chain for the remaining suffix, lane by lane, so fan-out order is
/// identical to tuple-at-a-time execution. Per-lane failures are
/// deferred and the lowest-row one is reported after the batch — the
/// exact error a tuple-at-a-time run would have stopped on. `check` may
/// be nullptr.
Status RunBatchChain(const std::vector<UnaryOpDesc>& ops, TupleBatch* batch,
                     EvalContext* ctx, bool use_bytecode, EvalCheck* check,
                     const BatchSink& sink);

/// Runs a SUBPLAN for one outer tuple, producing exactly one output
/// tuple (seed ++ aggregate results).
Result<Tuple> RunSubplan(const SubplanDesc& subplan, const Tuple& seed,
                         EvalContext* ctx);

/// Cost-model advice on which warm-storage path a DATASCAN should
/// prefer (DESIGN.md §15). A hint only ever *narrows* the set of paths
/// the resolved StorageMode allows — it can never re-enable a level the
/// user (or a kill-switch) turned off — and every narrowing is
/// answer-preserving, so a plan compiled against different stats on a
/// distributed worker still returns identical bytes.
enum class AccessHint : uint8_t {
  kAny = 0,       // no advice: the executor's per-file default order
  kColumnar = 1,  // selective predicate: invest in / serve from columns
  kTape = 2,      // tapes only (columns neither built nor read)
  kCold = 3,      // bypass the warm tier for this scan
};

/// The source of a pipeline.
struct ScanDesc {
  enum class Kind : uint8_t {
    /// Emits one empty tuple (EMPTY-TUPLE-SOURCE): pre-pipelining-rule
    /// plans read collections via the collection() scalar instead.
    kEmptyTupleSource,
    /// DATASCAN collection with pushed-down path steps: emits one tuple
    /// per item matched by `steps` in each file of the partition.
    kDataScan,
  };

  Kind kind = Kind::kEmptyTupleSource;
  std::string collection;       // kDataScan
  std::vector<PathStep> steps;  // kDataScan; empty = whole document

  /// Index-assisted scan (the paper's future-work extension): when
  /// `use_index` is set, only files whose `index_path` values include
  /// `index_value` (per the catalog's path index) are scanned. The
  /// predicate itself stays in the plan — the index is a file-pruning
  /// accelerator, not a filter.
  bool use_index = false;
  std::vector<PathStep> index_path;
  Item index_value;

  /// Zone-map prune predicate (DESIGN.md §14): when the SELECT directly
  /// above this scan compares the scan's output column to a numeric
  /// constant, the physical translator records the normalized
  /// comparison here. The columnar access path skips blocks whose
  /// min/max zone map proves no row can satisfy it; the SELECT still
  /// runs over surviving rows, so this is purely an accelerator.
  ZoneCompare zone_op = ZoneCompare::kNone;
  double zone_value = 0;

  /// Cost-model annotations (DESIGN.md §15); all advisory and
  /// answer-preserving. `morsel_bytes_hint` is honored only while
  /// ExecOptions::morsel_bytes sits at its default, and `est_rows`
  /// carries the planner's cardinality estimate for diagnostics.
  AccessHint access_hint = AccessHint::kAny;
  size_t morsel_bytes_hint = 0;
  double est_rows = -1;

  std::string ToString() const;
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_OPERATORS_H_
