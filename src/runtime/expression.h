#ifndef JPAR_RUNTIME_EXPRESSION_H_
#define JPAR_RUNTIME_EXPRESSION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/item.h"
#include "runtime/catalog.h"
#include "runtime/memory.h"
#include "runtime/tuple.h"

namespace jpar {

/// Builtin functions of the JSONiq-extension subset. Scalar aggregate
/// forms (kCount..kMax) operate on a whole sequence at once — these are
/// the "before group-by rules" semantics; the incremental aggregators in
/// runtime/aggregates.h are the rewritten form.
enum class Builtin : uint8_t {
  // JSONiq navigation (paper §3.2 terminology).
  kValue,           // value(target, key-or-index)
  kKeysOrMembers,   // keys-or-members(target)
  // XQuery coercions the path rules eliminate.
  kData,            // data(x): atomization
  kPromote,         // promote(x): type promotion (identity here)
  kTreat,           // treat(x): runtime type assertion (identity here)
  kIterate,         // iterate(x): unnest a sequence (UNNEST's expression)
  // Date/time functions used by the sensor queries.
  kDateTime,
  kYearFromDateTime,
  kMonthFromDateTime,
  kDayFromDateTime,
  // General comparisons (XQuery existential semantics over sequences).
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  // Boolean connectives.
  kAnd,
  kOr,
  kNot,
  // Arithmetic.
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,
  // Scalar (sequence-at-once) aggregates.
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  // Data access.
  kCollection,      // collection("name"): ALL documents as one sequence
  kJsonDoc,         // json-doc("name"): one parsed document
  // Constructors.
  kArrayConstructor,
  kObjectConstructor,  // args alternate key, value
  // String functions (XQuery F&O subset).
  kConcat,          // variadic
  kSubstring,       // substring(s, start[, length]) — 1-based
  kStringLength,
  kContains,
  kStartsWith,
  kUpperCase,
  kLowerCase,
  kStringFn,        // string(x): lexical form
  // Numeric functions.
  kAbs,
  kRound,
  kFloor,
  kCeiling,
  // Sequence predicates and utilities.
  kEmpty,           // empty(seq)
  kExists,          // exists(seq)
  kDistinctValues,  // distinct-values(seq)
  kBooleanFn,       // boolean(x): effective boolean value
};

std::string_view BuiltinToString(Builtin fn);

/// Services available while evaluating expressions.
struct EvalContext {
  const Catalog* catalog = nullptr;
  MemoryTracker* memory = nullptr;
  /// Bytes of JSON text parsed by collection()/json-doc() during
  /// evaluation (feeds ExecStats::bytes_scanned).
  uint64_t bytes_parsed = 0;

  /// Hyracks frame-write cost model: every tuple crossing an operator
  /// boundary is serialized into a (reusable) frame buffer — real work,
  /// so carrying a materialized sequence through the pipeline costs
  /// what it would cost in Hyracks. The statistics feed the per-stage
  /// max-tuple/pipeline-bytes numbers the benches report.
  bool charge_boundaries = true;
  std::string frame_scratch;
  uint64_t boundary_bytes = 0;
  uint64_t boundary_tuples = 0;
  uint64_t max_tuple_bytes = 0;
};

class ScalarEval;
using ScalarEvalPtr = std::shared_ptr<const ScalarEval>;

/// A compiled scalar expression evaluated against one tuple. Thread-safe
/// once constructed (no mutable state); shared between partitions.
class ScalarEval {
 public:
  /// Structural introspection for the bytecode compiler
  /// (runtime/expr_compile.*): a node advertises its shape so the
  /// compiler can flatten the tree without knowing the concrete types.
  /// kOpaque means "not compilable" — the whole expression then stays
  /// on the legacy tree interpreter.
  enum class Shape : uint8_t { kConstant, kColumn, kFunction, kOpaque };

  virtual ~ScalarEval() = default;
  virtual Result<Item> Eval(const Tuple& tuple, EvalContext* ctx) const = 0;
  /// Human-readable form for plan printing and tests.
  virtual std::string ToString() const = 0;

  virtual Shape shape() const { return Shape::kOpaque; }
  /// Valid iff shape() == kConstant.
  virtual const Item* shape_constant() const { return nullptr; }
  /// Valid iff shape() == kColumn.
  virtual int shape_column() const { return -1; }
  /// Valid iff shape() == kFunction.
  virtual Builtin shape_function() const { return Builtin::kValue; }
  virtual const std::vector<ScalarEvalPtr>* shape_args() const {
    return nullptr;
  }
};

ScalarEvalPtr MakeConstantEval(Item value);
ScalarEvalPtr MakeColumnEval(int column);
/// Builds a builtin function evaluator; verifies arity.
Result<ScalarEvalPtr> MakeFunctionEval(Builtin fn,
                                       std::vector<ScalarEvalPtr> args);

/// The dynamic semantics of value(): field lookup on objects, 1-based
/// indexing on arrays, mapping over sequences, empty sequence otherwise.
/// Exposed for the DATASCAN runtime and the baselines.
Result<Item> ValueStep(const Item& target, const Item& spec);

/// keys-or-members(): members of an array, keys of an object, mapping
/// over sequences, empty sequence otherwise.
Result<Item> KeysOrMembersStep(const Item& target);

/// Scalar aggregate over a (possibly single-item) sequence.
Result<Item> ScalarAggregate(Builtin fn, const Item& sequence);

/// Applies an eager builtin to already-evaluated arguments — the body of
/// the tree interpreter after argument evaluation, shared with the
/// vectorized bytecode interpreter so both paths are one implementation.
/// `vals` may be consumed (moved from). The lazy connectives kAnd/kOr
/// are not eager and return Internal here.
Result<Item> ApplyBuiltin(Builtin fn, std::vector<Item>& vals,
                          EvalContext* ctx);

/// General comparison (kEq..kGe) with XQuery existential sequence
/// semantics; exposed for fused batch kernels.
Result<Item> GeneralCompareOp(Builtin fn, const Item& lhs, const Item& rhs);

/// Binary arithmetic (kAdd..kMod) with empty-sequence propagation and
/// the int64 fast path; exposed for fused batch kernels.
Result<Item> ArithmeticOp(Builtin fn, const Item& lhs, const Item& rhs);

}  // namespace jpar

#endif  // JPAR_RUNTIME_EXPRESSION_H_
