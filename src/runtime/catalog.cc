#include "runtime/catalog.h"

#include <fstream>
#include <set>
#include <sstream>

#include "json/binary_serde.h"

namespace jpar {

Result<std::shared_ptr<const std::string>> JsonFile::Load() const {
  if (binary_ != nullptr) {
    return Status::Internal("Load() on a binary-item file");
  }
  if (text_ != nullptr) return text_;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path_);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("error reading file: " + path_);
  return std::make_shared<const std::string>(buf.str());
}

Result<uint64_t> JsonFile::SizeBytes() const {
  if (binary_ != nullptr) return static_cast<uint64_t>(binary_->size());
  if (text_ != nullptr) return static_cast<uint64_t>(text_->size());
  std::ifstream in(path_, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot stat file: " + path_);
  return static_cast<uint64_t>(in.tellg());
}

Result<uint64_t> Collection::TotalBytes() const {
  uint64_t total = 0;
  for (const JsonFile& f : files) {
    JPAR_ASSIGN_OR_RETURN(uint64_t sz, f.SizeBytes());
    total += sz;
  }
  return total;
}

std::string Catalog::NormalizeName(std::string_view name) {
  size_t start = 0;
  while (start < name.size() && name[start] == '/') ++start;
  size_t end = name.size();
  while (end > start && name[end - 1] == '/') --end;
  return std::string(name.substr(start, end - start));
}

void Catalog::RegisterCollection(std::string_view name,
                                 Collection collection) {
  collections_[NormalizeName(name)] = std::move(collection);
  ++version_;
}

void Catalog::RegisterDocument(std::string_view name, JsonFile file) {
  documents_.insert_or_assign(NormalizeName(name), std::move(file));
  ++version_;
}

Result<const Collection*> Catalog::GetCollection(
    std::string_view name) const {
  auto it = collections_.find(NormalizeName(name));
  if (it == collections_.end()) {
    return Status::NotFound("unknown collection: " + std::string(name));
  }
  return &it->second;
}

Result<const JsonFile*> Catalog::GetDocument(std::string_view name) const {
  auto it = documents_.find(NormalizeName(name));
  if (it == documents_.end()) {
    return Status::NotFound("unknown document: " + std::string(name));
  }
  return &it->second;
}

Status Catalog::BuildPathIndex(std::string_view collection,
                               const std::vector<PathStep>& path) {
  JPAR_ASSIGN_OR_RETURN(const Collection* coll, GetCollection(collection));
  PathIndex index;
  for (size_t f = 0; f < coll->files.size(); ++f) {
    std::set<std::string> values_in_file;
    auto record = [&](const Item& item) -> Status {
      if (item.is_atomic() && !item.is_sequence()) {
        std::string key;
        item.AppendGroupKeyTo(&key);
        values_in_file.insert(std::move(key));
      }
      return Status::OK();
    };
    const JsonFile& file = coll->files[f];
    if (file.is_binary()) {
      // Pre-loaded documents: navigate the materialized item.
      JPAR_ASSIGN_OR_RETURN(Item doc, DeserializeItem(*file.binary()));
      JPAR_RETURN_NOT_OK(NavigateItemPath(doc, path, 0, record));
    } else {
      JPAR_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> text,
                            file.Load());
      JPAR_RETURN_NOT_OK(ProjectJsonStream(*text, path, record));
    }
    for (const std::string& value : values_in_file) {
      index.value_to_files[value].push_back(static_cast<int>(f));
    }
  }
  path_indexes_[{NormalizeName(collection), PathToString(path)}] =
      std::move(index);
  ++version_;
  return Status::OK();
}

bool Catalog::HasPathIndex(std::string_view collection,
                           const std::vector<PathStep>& path) const {
  return path_indexes_.count(
             {NormalizeName(collection), PathToString(path)}) > 0;
}

const std::vector<int>* Catalog::LookupPathIndex(
    std::string_view collection, const std::vector<PathStep>& path,
    const Item& value) const {
  auto it = path_indexes_.find(
      {NormalizeName(collection), PathToString(path)});
  if (it == path_indexes_.end()) return nullptr;
  std::string key;
  value.AppendGroupKeyTo(&key);
  auto vit = it->second.value_to_files.find(key);
  if (vit == it->second.value_to_files.end()) return &it->second.empty;
  return &vit->second;
}

}  // namespace jpar
