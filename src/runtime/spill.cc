#include "runtime/spill.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <random>
#include <set>
#include <system_error>
#include <utility>

namespace jpar {

namespace {

constexpr size_t kWriteBufferBytes = 256 * 1024;
constexpr size_t kReadChunkBytes = 256 * 1024;

/// Process-wide counter so concurrent queries (worker pool) never
/// collide on run file names.
std::atomic<uint64_t> g_run_counter{0};

/// Process-unique random token baked into every run file name. The PID
/// alone is not collision-proof when worker processes share a spill_dir:
/// a respawned worker can be handed the PID of a predecessor whose
/// files are still being consumed (or were leaked by a crash). The
/// token makes names unique per process *instance*; each manager still
/// sweeps only the files it created (live_files_).
const std::string& ProcessSpillToken() {
  static const std::string token = [] {
    std::random_device rd;
    uint64_t bits = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return std::string(buf);
  }();
  return token;
}

}  // namespace

Result<std::string> ResolveSpillDir(const std::string& dir_hint) {
  std::string dir = dir_hint;
  if (dir.empty()) {
    std::error_code ec;
    std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
    if (ec) {
      return Status::Internal("cannot resolve system temp directory: " +
                              ec.message());
    }
    dir = tmp.string();
  }
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec) || ec) {
    return Status::InvalidArgument("spill_dir is not a directory: " + dir);
  }
  if (access(dir.c_str(), W_OK) != 0) {
    return Status::InvalidArgument("spill_dir is not writable: " + dir);
  }
  return dir;
}

void EncodeTupleTo(const Tuple& t, std::string* out) {
  ItemWriter writer(out);
  writer.Write(Item::Int64(static_cast<int64_t>(t.size())));
  for (const Item& item : t) writer.Write(item);
}

Status DecodeTupleFrom(ItemReader* reader, Tuple* out) {
  JPAR_ASSIGN_OR_RETURN(Item count, reader->Read());
  if (!count.is_int64() || count.int64_value() < 0) {
    return Status::Internal("corrupt spill record: bad tuple arity");
  }
  size_t n = static_cast<size_t>(count.int64_value());
  out->clear();
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    JPAR_ASSIGN_OR_RETURN(Item item, reader->Read());
    out->push_back(std::move(item));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------
// SpillManager

int SweepOrphanedSpillFiles(const std::string& dir) {
  int removed = 0;
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || entry_ec) continue;
    const std::string name = entry.path().filename().string();
    // jpar-spill-<pid>-<token>-<n>.run
    constexpr std::string_view kPrefix = "jpar-spill-";
    constexpr std::string_view kSuffix = ".run";
    if (name.rfind(kPrefix, 0) != 0 || name.size() <= kSuffix.size() ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    size_t pid_begin = kPrefix.size();
    size_t pid_end = name.find('-', pid_begin);
    if (pid_end == std::string::npos || pid_end == pid_begin) continue;
    pid_t pid = 0;
    bool numeric = true;
    for (size_t i = pid_begin; i < pid_end; ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      pid = pid * 10 + (name[i] - '0');
    }
    if (!numeric || pid <= 0) continue;
    // kill(pid, 0) probes existence without signaling; EPERM still
    // means the process exists (someone else's), so only ESRCH counts.
    if (::kill(pid, 0) == 0 || errno != ESRCH) continue;
    std::error_code rm_ec;
    if (std::filesystem::remove(entry.path(), rm_ec) && !rm_ec) ++removed;
  }
  return removed;
}

Result<std::unique_ptr<SpillManager>> SpillManager::Create(
    const std::string& dir_hint, QueryContext* ctx) {
  JPAR_ASSIGN_OR_RETURN(std::string dir, ResolveSpillDir(dir_hint));
  // Reclaim run files leaked by SIGKILLed predecessors — once per
  // directory per process; a per-manager readdir would tax every
  // spilling operator for a startup-hygiene concern.
  {
    static std::mutex swept_mu;
    static std::set<std::string>* swept = new std::set<std::string>();
    bool first;
    {
      std::lock_guard<std::mutex> lock(swept_mu);
      first = swept->insert(dir).second;
    }
    if (first) SweepOrphanedSpillFiles(dir);
  }
  return std::unique_ptr<SpillManager>(new SpillManager(std::move(dir), ctx));
}

SpillManager::~SpillManager() {
  // Best-effort sweep: error paths (cancel, deadline, injected fault)
  // must not leave temp files behind.
  for (const std::string& path : live_files_) {
    std::remove(path.c_str());
  }
}

Result<std::unique_ptr<SpillRunWriter>> SpillManager::NewRun() {
  JPAR_RETURN_NOT_OK(Fault());
  std::string path =
      dir_ + "/jpar-spill-" + std::to_string(::getpid()) + "-" +
      ProcessSpillToken() + "-" +
      std::to_string(g_run_counter.fetch_add(1)) + ".run";
  std::unique_ptr<SpillRunWriter> writer(new SpillRunWriter(this, path));
  writer->out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer->out_.is_open()) {
    return Status::IOError("cannot create spill run file: " + path);
  }
  live_files_.push_back(std::move(path));
  ++runs_created_;
  return writer;
}

Result<std::unique_ptr<SpillRunReader>> SpillManager::OpenRun(
    const std::string& path) {
  JPAR_RETURN_NOT_OK(Fault());
  std::unique_ptr<SpillRunReader> reader(new SpillRunReader(this, path));
  reader->in_.open(path, std::ios::binary);
  if (!reader->in_.is_open()) {
    return Status::IOError("cannot open spill run file: " + path);
  }
  return reader;
}

void SpillManager::Remove(const std::string& path) {
  std::remove(path.c_str());
  for (size_t i = 0; i < live_files_.size(); ++i) {
    if (live_files_[i] == path) {
      live_files_.erase(live_files_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
}

// ---------------------------------------------------------------------
// SpillRunWriter

Status SpillRunWriter::Append(std::string_view record) {
  JPAR_RETURN_NOT_OK(manager_->Fault());
  if (finished_) {
    return Status::Internal("append to a finished spill run: " + path_);
  }
  ItemWriter::AppendVarint(record.size(), &buffer_);
  buffer_.append(record.data(), record.size());
  ++records_;
  if (buffer_.size() >= kWriteBufferBytes) return FlushBuffer();
  return Status::OK();
}

Status SpillRunWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
  if (!out_.good()) {
    return Status::IOError("write to spill run file failed: " + path_);
  }
  manager_->AddBytes(buffer_.size());
  buffer_.clear();
  return Status::OK();
}

Status SpillRunWriter::Finish() {
  if (finished_) return Status::OK();
  JPAR_RETURN_NOT_OK(FlushBuffer());
  out_.close();
  if (out_.fail()) {
    return Status::IOError("close of spill run file failed: " + path_);
  }
  finished_ = true;
  return Status::OK();
}

// ---------------------------------------------------------------------
// SpillRunReader

Result<bool> SpillRunReader::FillBuffer(size_t need) {
  while (buffer_.size() - pos_ < need && !eof_) {
    // Compact before growing so the buffer stays ~one chunk.
    if (pos_ > 0) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
    size_t old = buffer_.size();
    buffer_.resize(old + kReadChunkBytes);
    in_.read(buffer_.data() + old,
             static_cast<std::streamsize>(kReadChunkBytes));
    std::streamsize got = in_.gcount();
    buffer_.resize(old + static_cast<size_t>(got));
    if (got == 0) {
      if (in_.bad()) {
        return Status::IOError("read of spill run file failed: " + path_);
      }
      eof_ = true;
    }
  }
  return buffer_.size() - pos_ >= need;
}

Result<bool> SpillRunReader::Next(std::string* record) {
  JPAR_RETURN_NOT_OK(manager_->Fault());
  // Decode the varint length prefix byte by byte.
  uint64_t len = 0;
  int shift = 0;
  while (true) {
    JPAR_ASSIGN_OR_RETURN(bool have, FillBuffer(1));
    if (!have) {
      if (shift == 0) return false;  // clean end of run
      return Status::Internal("truncated spill record length: " + path_);
    }
    uint8_t byte = static_cast<uint8_t>(buffer_[pos_++]);
    len |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift > 63) {
      return Status::Internal("corrupt spill record length: " + path_);
    }
  }
  JPAR_ASSIGN_OR_RETURN(bool have, FillBuffer(static_cast<size_t>(len)));
  if (!have) {
    return Status::Internal("truncated spill record: " + path_);
  }
  record->assign(buffer_.data() + pos_, static_cast<size_t>(len));
  pos_ += static_cast<size_t>(len);
  return true;
}

}  // namespace jpar
