#ifndef JPAR_RUNTIME_FRAME_H_
#define JPAR_RUNTIME_FRAME_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "runtime/tuple.h"

namespace jpar {

/// A fixed-target-size byte buffer of serialized tuples — the unit of
/// data movement at exchange boundaries (Hyracks frames). Tuples are
/// encoded back to back as: varint column-count, then each column as a
/// binary item (see json/binary_serde.h).
struct Frame {
  std::string bytes;
  uint32_t tuple_count = 0;
};

/// Serializes `tuple` and appends it to `out`; returns the encoded size.
size_t AppendTupleTo(const Tuple& tuple, std::string* out);

/// Accumulates tuples into frames of approximately `target_bytes`. A
/// tuple larger than target_bytes produces a dedicated oversized frame —
/// the situation the paper's pipelining rules are designed to avoid.
class FrameBuilder {
 public:
  explicit FrameBuilder(size_t target_bytes) : target_bytes_(target_bytes) {}

  /// Appends a tuple; if the current frame is full it is sealed into the
  /// finished list. Returns the serialized tuple size in bytes.
  size_t Append(const Tuple& tuple);

  /// Seals any partial frame and returns all finished frames.
  std::vector<Frame> Finish();

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t max_tuple_bytes() const { return max_tuple_bytes_; }
  uint64_t oversized_frames() const { return oversized_frames_; }
  uint64_t tuple_count() const { return tuple_count_; }

 private:
  size_t target_bytes_;
  Frame current_;
  std::vector<Frame> finished_;
  uint64_t total_bytes_ = 0;
  uint64_t max_tuple_bytes_ = 0;
  uint64_t oversized_frames_ = 0;
  uint64_t tuple_count_ = 0;
};

/// Iterates the tuples of a frame sequence, deserializing one at a time.
class FrameReader {
 public:
  explicit FrameReader(const std::vector<Frame>& frames) : frames_(frames) {}

  /// Reads the next tuple into *tuple. Returns true when a tuple was
  /// produced, false at end of stream; parse failures return a Status.
  Result<bool> Next(Tuple* tuple);

 private:
  const std::vector<Frame>& frames_;
  size_t frame_index_ = 0;
  size_t byte_pos_ = 0;
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_FRAME_H_
