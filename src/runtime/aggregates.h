#ifndef JPAR_RUNTIME_AGGREGATES_H_
#define JPAR_RUNTIME_AGGREGATES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "json/item.h"

namespace jpar {

/// Aggregation functions available to AGGREGATE and GROUP-BY operators.
///
/// kSequence materializes every input into a sequence item — the
/// *pre-rewrite* group-by semantics (paper Fig. 9: AGGREGATE sequence).
/// The incremental kinds are what the group-by rules substitute; the
/// memory difference between the two modes is exactly what Fig. 15
/// measures.
enum class AggKind : uint8_t {
  kSequence,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
};

/// Which step of Algebricks' two-step aggregation scheme an aggregator
/// runs in. kComplete folds inputs to the final value. kLocal folds
/// inputs to a *partial* item per partition; kGlobal merges partials
/// (count partials merge by summing; avg partials are [sum, count]
/// arrays merged component-wise).
enum class AggStep : uint8_t {
  kComplete,
  kLocal,
  kGlobal,
};

std::string_view AggKindToString(AggKind kind);

/// Incremental aggregation state. Not thread-safe; one instance per
/// group per partition.
class Aggregator {
 public:
  virtual ~Aggregator() = default;
  virtual Status Step(const Item& item) = 0;
  virtual Result<Item> Finish() = 0;
  /// Bytes retained by the state (dominant for kSequence).
  virtual size_t RetainedBytes() const = 0;

  /// Spill support (DESIGN.md §10). SavePartial snapshots the running
  /// state as a serializable Item without finishing it; MergePartial
  /// folds such a snapshot — produced by an aggregator of the same
  /// (kind, step) — back in. The round-trip is lossless (sums keep
  /// their exact double bits, counts and flags are exact), so a table
  /// that was flushed to run files and re-merged finishes to exactly
  /// the item the never-spilled table would have produced.
  virtual Result<Item> SavePartial() const = 0;
  virtual Status MergePartial(const Item& partial) = 0;
};

/// Creates an aggregator for (kind, step). kSequence supports only
/// kComplete (it is never split across partitions — that is the point
/// of the two-step rule).
Result<std::unique_ptr<Aggregator>> MakeAggregator(AggKind kind,
                                                   AggStep step);

}  // namespace jpar

#endif  // JPAR_RUNTIME_AGGREGATES_H_
