#ifndef JPAR_RUNTIME_MEMORY_H_
#define JPAR_RUNTIME_MEMORY_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace jpar {

/// Tracks retained bytes of the engine's materializing structures (group
/// tables, join build sides, materialized sequences, exchange buffers).
/// Used for the paper's Table 3 memory comparison and to emulate the
/// Spark-SQL OOM cliff in the MemTable baseline. Thread-safe.
///
/// Two limit disciplines (DESIGN.md §10):
///   hard (default) — Allocate fails with kResourceExhausted the moment
///     the limit is crossed; the pre-spilling fail-fast semantics.
///   soft — the limit is a *budget*: Allocate always succeeds (usage and
///     peak still tracked) and spill-capable operators poll over_limit()
///     / ShareOf() to decide when to flush state to disk. Operators that
///     cannot spill overrun the budget instead of failing the query.
class MemoryTracker {
 public:
  /// limit_bytes == 0 means unlimited.
  explicit MemoryTracker(uint64_t limit_bytes = 0, bool soft = false)
      : limit_(limit_bytes), soft_(soft) {}

  Status Allocate(uint64_t bytes) {
    uint64_t now = current_.fetch_add(bytes) + bytes;
    // Lock-free peak update.
    uint64_t peak = peak_.load();
    while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
    }
    if (!soft_ && limit_ != 0 && now > limit_) {
      return Status::ResourceExhausted(
          "memory limit exceeded: " + std::to_string(now) + " > " +
          std::to_string(limit_) + " bytes");
    }
    return Status::OK();
  }

  void Release(uint64_t bytes) { current_.fetch_sub(bytes); }

  uint64_t current_bytes() const { return current_.load(); }
  uint64_t peak_bytes() const { return peak_.load(); }
  uint64_t limit_bytes() const { return limit_; }
  bool soft() const { return soft_; }
  bool over_limit() const {
    return limit_ != 0 && current_.load() > limit_;
  }

  /// Equal per-operator-instance slice of the budget (e.g. one slice
  /// per partition task of a group-by stage). 0 = unlimited. Never
  /// returns 0 for a nonzero limit so a tiny budget split many ways
  /// still triggers spilling instead of disabling it.
  uint64_t ShareOf(size_t instances) const {
    if (limit_ == 0) return 0;
    if (instances < 1) instances = 1;
    uint64_t share = limit_ / instances;
    return share > 0 ? share : 1;
  }

 private:
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
  uint64_t limit_;
  bool soft_;
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_MEMORY_H_
