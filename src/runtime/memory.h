#ifndef JPAR_RUNTIME_MEMORY_H_
#define JPAR_RUNTIME_MEMORY_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace jpar {

/// Tracks retained bytes of the engine's materializing structures (group
/// tables, join build sides, materialized sequences, exchange buffers).
/// Used for the paper's Table 3 memory comparison and to emulate the
/// Spark-SQL OOM cliff in the MemTable baseline. Thread-safe.
class MemoryTracker {
 public:
  /// limit_bytes == 0 means unlimited.
  explicit MemoryTracker(uint64_t limit_bytes = 0) : limit_(limit_bytes) {}

  Status Allocate(uint64_t bytes) {
    uint64_t now = current_.fetch_add(bytes) + bytes;
    // Lock-free peak update.
    uint64_t peak = peak_.load();
    while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
    }
    if (limit_ != 0 && now > limit_) {
      return Status::ResourceExhausted(
          "memory limit exceeded: " + std::to_string(now) + " > " +
          std::to_string(limit_) + " bytes");
    }
    return Status::OK();
  }

  void Release(uint64_t bytes) { current_.fetch_sub(bytes); }

  uint64_t current_bytes() const { return current_.load(); }
  uint64_t peak_bytes() const { return peak_.load(); }
  uint64_t limit_bytes() const { return limit_; }

 private:
  std::atomic<uint64_t> current_{0};
  std::atomic<uint64_t> peak_{0};
  uint64_t limit_;
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_MEMORY_H_
