#ifndef JPAR_RUNTIME_CATALOG_H_
#define JPAR_RUNTIME_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/item.h"
#include "json/projecting_reader.h"

namespace jpar {

/// A JSON source file: either in-memory text (the common case in tests
/// and benchmarks, where the generator produces documents directly) or a
/// path on disk read lazily.
class JsonFile {
 public:
  static JsonFile FromText(std::shared_ptr<const std::string> text) {
    JsonFile f;
    f.text_ = std::move(text);
    return f;
  }
  static JsonFile FromText(std::string text) {
    return FromText(std::make_shared<const std::string>(std::move(text)));
  }
  static JsonFile FromPath(std::string path) {
    JsonFile f;
    f.path_ = std::move(path);
    return f;
  }
  /// A pre-parsed document in the engine's binary item format (see
  /// json/binary_serde.h). Scans over binary files skip JSON parsing —
  /// this models a loaded internal data model (AsterixDB's ADM).
  static JsonFile FromBinaryItem(std::shared_ptr<const std::string> binary) {
    JsonFile f;
    f.binary_ = std::move(binary);
    return f;
  }
  static JsonFile FromBinaryItem(std::string binary) {
    return FromBinaryItem(
        std::make_shared<const std::string>(std::move(binary)));
  }

  /// Returns the file's JSON text, reading from disk for path-backed
  /// files. Error for binary-backed files.
  Result<std::shared_ptr<const std::string>> Load() const;

  /// Size in bytes without forcing a disk read for in-memory files
  /// (path-backed files are stat'ed).
  Result<uint64_t> SizeBytes() const;

  bool in_memory() const { return text_ != nullptr; }
  bool is_binary() const { return binary_ != nullptr; }
  const std::shared_ptr<const std::string>& binary() const { return binary_; }
  const std::string& path() const { return path_; }

 private:
  std::shared_ptr<const std::string> text_;
  std::shared_ptr<const std::string> binary_;
  std::string path_;
};

/// An ordered list of JSON files registered under a collection name.
/// The paper's model: each cluster node holds a directory of JSON files;
/// the executor assigns files to scan partitions round-robin.
struct Collection {
  std::vector<JsonFile> files;

  Result<uint64_t> TotalBytes() const;
};

/// Name -> data-source registry shared by compilation (existence checks)
/// and execution. Thread-compatible: registration must happen before
/// queries run.
class Catalog {
 public:
  /// Registers (or replaces) a collection under `name`; names are
  /// normalized so "/sensors" and "sensors" refer to the same entry.
  void RegisterCollection(std::string_view name, Collection collection);

  /// Registers a single named document for json-doc().
  void RegisterDocument(std::string_view name, JsonFile file);

  Result<const Collection*> GetCollection(std::string_view name) const;
  Result<const JsonFile*> GetDocument(std::string_view name) const;

  /// Builds an equality path index over a registered collection: for
  /// every file, the atomic values selected by `path` are recorded, so
  /// a later `path eq <constant>` query only scans files that contain
  /// the constant. This implements the paper's "future work" item
  /// ("supporting indexing ... the searched data volume will be
  /// significantly reduced"); the indexing granularity is whole files,
  /// which sidesteps the object-level granularity question the paper
  /// raises.
  Status BuildPathIndex(std::string_view collection,
                        const std::vector<PathStep>& path);

  bool HasPathIndex(std::string_view collection,
                    const std::vector<PathStep>& path) const;

  /// File indices (into Collection::files) whose `path` values include
  /// `value`. Never null when the index exists — an unseen value maps
  /// to the empty list (prune everything). Null when no such index was
  /// built (caller must full-scan).
  const std::vector<int>* LookupPathIndex(std::string_view collection,
                                          const std::vector<PathStep>& path,
                                          const Item& value) const;

  static std::string NormalizeName(std::string_view name);

  /// Monotonic change counter bumped by every registration and index
  /// build. The distributed dispatcher compares it against the version
  /// each worker last synced to decide whether to re-ship the catalog.
  uint64_t version() const { return version_; }

  /// Iteration for catalog shipping (src/dist): normalized name →
  /// entry, in name order (deterministic across processes).
  const std::map<std::string, Collection, std::less<>>& collections() const {
    return collections_;
  }
  const std::map<std::string, JsonFile, std::less<>>& documents() const {
    return documents_;
  }

 private:
  struct PathIndex {
    std::map<std::string, std::vector<int>> value_to_files;
    std::vector<int> empty;
  };

  uint64_t version_ = 0;
  std::map<std::string, Collection, std::less<>> collections_;
  std::map<std::string, JsonFile, std::less<>> documents_;
  std::map<std::pair<std::string, std::string>, PathIndex> path_indexes_;
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_CATALOG_H_
