#ifndef JPAR_RUNTIME_TUPLE_BATCH_H_
#define JPAR_RUNTIME_TUPLE_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "json/item.h"
#include "runtime/tuple.h"

namespace jpar {

/// A batch of tuples in columnar form (DESIGN.md §13): one scratch
/// vector of Item per column, all of length rows(), plus a selection
/// vector of the row indices still alive. Pipelines fill a batch from
/// the scan, run the whole operator chain over it (SELECT shrinks the
/// selection instead of copying survivors), and only materialize
/// row-form tuples at the pipeline boundary. Item copies are cheap
/// (shared_ptr payloads), so columns hold Items by value.
class TupleBatch {
 public:
  /// ~1024 tuples amortizes per-batch dispatch without hurting cache
  /// locality; ExecOptions::batch_size overrides per query.
  static constexpr size_t kDefaultCapacity = 1024;

  explicit TupleBatch(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  size_t capacity() const { return capacity_; }
  size_t width() const { return columns_.size(); }
  size_t rows() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  bool full() const { return rows_ >= capacity_; }

  /// Row indices (ascending) of the rows that survived SELECTs so far.
  const std::vector<uint32_t>& selection() const { return sel_; }
  void SetSelection(std::vector<uint32_t> sel) { sel_ = std::move(sel); }

  const std::vector<Item>& column(size_t c) const { return columns_[c]; }

  /// Clears all rows and re-shapes the batch to `width` input columns.
  void Reset(size_t width) {
    columns_.resize(width);
    for (std::vector<Item>& col : columns_) col.clear();
    sel_.clear();
    rows_ = 0;
  }

  /// Appends a width-1 row (the DATASCAN shape: one projected item).
  void AppendRow(Item item) {
    columns_[0].push_back(std::move(item));
    sel_.push_back(static_cast<uint32_t>(rows_));
    ++rows_;
  }

  /// Appends a full row; `t.size()` must equal width().
  void AppendTuple(Tuple t) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(std::move(t[c]));
    }
    sel_.push_back(static_cast<uint32_t>(rows_));
    ++rows_;
  }

  /// Appends a new column from values aligned with the current
  /// selection (values[k] belongs to row selection()[k]); deselected
  /// rows get a null placeholder (never observed — they are skipped by
  /// every later operator and never materialized).
  void AddColumn(std::vector<Item> values) {
    std::vector<Item> col(rows_);
    for (size_t k = 0; k < sel_.size(); ++k) {
      col[sel_[k]] = std::move(values[k]);
    }
    columns_.push_back(std::move(col));
  }

  /// Keeps only the listed columns, in order (PROJECT). Bounds are the
  /// caller's responsibility.
  void Project(const std::vector<int>& cols) {
    std::vector<std::vector<Item>> next;
    next.reserve(cols.size());
    for (int c : cols) next.push_back(columns_[static_cast<size_t>(c)]);
    columns_ = std::move(next);
  }

  /// Row-form copy of one row (for the legacy tuple fallback and the
  /// pipeline-boundary sink).
  Tuple MaterializeRow(uint32_t row) const {
    Tuple t;
    t.reserve(columns_.size());
    for (const std::vector<Item>& col : columns_) t.push_back(col[row]);
    return t;
  }

 private:
  size_t capacity_;
  size_t rows_ = 0;
  std::vector<std::vector<Item>> columns_;
  std::vector<uint32_t> sel_;
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_TUPLE_BATCH_H_
