#ifndef JPAR_RUNTIME_TUPLE_H_
#define JPAR_RUNTIME_TUPLE_H_

#include <vector>

#include "json/item.h"

namespace jpar {

/// A dataflow tuple: one Item per live query variable (column). Column
/// positions are assigned by the physical translator; runtime operators
/// address columns by index only.
using Tuple = std::vector<Item>;

/// Approximate retained size of a tuple (for frame and memory stats).
inline size_t TupleSizeBytes(const Tuple& tuple) {
  size_t total = sizeof(Tuple);
  for (const Item& item : tuple) total += item.EstimateSizeBytes();
  return total;
}

}  // namespace jpar

#endif  // JPAR_RUNTIME_TUPLE_H_
