#ifndef JPAR_RUNTIME_EXPR_COMPILE_H_
#define JPAR_RUNTIME_EXPR_COMPILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "json/item.h"
#include "runtime/expression.h"
#include "runtime/tuple_batch.h"

namespace jpar {

/// Flat postfix bytecode for ASSIGN/SELECT expressions (DESIGN.md §13).
/// The compiler walks a ScalarEval tree (via ScalarEval::shape()) and
/// emits one instruction per node in left-to-right depth-first order —
/// exactly the order the tree interpreter evaluates in, so per-lane
/// errors surface at the same subexpression. A peephole pass then fuses
/// the patterns the rewriter actually emits:
///
///   opcode         operands          meaning (stack effect)
///   kConst         constant          push the constant        (+1)
///   kColumn        column            push batch column        (+1)
///   kCall          fn, argc          eager builtin            (-argc, +1)
///   kAnd / kOr     sub               lazy connective: EBV of top; rhs
///                                    sub-program runs only on undecided
///                                    lanes                    (-1, +1)
///   kCompareConst  fn, constant      fused cmp-vs-constant    (-1, +1)
///   kArithConst    fn, constant      fused arith-vs-constant  (-1, +1)
///   kValueConst    constant          fused value(x, const)    (-1, +1)
struct ExprProgram;
using ExprProgramPtr = std::shared_ptr<const ExprProgram>;

enum class ExprOpCode : uint8_t {
  kConst,
  kColumn,
  kCall,
  kAnd,
  kOr,
  kCompareConst,
  kArithConst,
  kValueConst,
};

struct ExprInstr {
  ExprOpCode op = ExprOpCode::kConst;
  Builtin fn = Builtin::kValue;  // kCall/kCompareConst/kArithConst
  uint32_t argc = 0;             // kCall
  int column = -1;               // kColumn
  Item constant;                 // kConst and fused forms
  ExprProgramPtr sub;            // kAnd/kOr right-hand side
};

struct ExprProgram {
  std::vector<ExprInstr> code;
  size_t max_stack = 0;
  /// The source tree's ToString(), for plan printing and tests.
  std::string source;
};

/// Compiles a ScalarEval tree into bytecode. Returns nullptr (not an
/// error) when the tree has a node the compiler cannot see through
/// (Shape::kOpaque) — the expression then stays on the tree interpreter.
ExprProgramPtr CompileExprProgram(const ScalarEvalPtr& eval);

/// One lane's deferred failure: `lane` indexes the selection vector the
/// evaluator was given (not the row id). The batch chain converts lanes
/// to rows and reports the lowest-row error once the whole chain has
/// run — the same error tuple-at-a-time execution would have stopped at.
struct LaneError {
  size_t lane = 0;
  Status status;
};

/// Cooperative-check hook threaded through batch evaluation: fires the
/// callback every kExprCheckIntervalLanes lane visits so a batch larger
/// than the executor's check interval still honors the every-256-tuples
/// cancellation guarantee. Cheap to tick (counter + branch).
constexpr uint64_t kExprCheckIntervalLanes = 256;

class EvalCheck {
 public:
  EvalCheck() = default;
  explicit EvalCheck(std::function<Status()> fn) : fn_(std::move(fn)) {}
  Status Tick() {
    if (fn_ && (++count_ % kExprCheckIntervalLanes) == 0) return fn_();
    return Status::OK();
  }

 private:
  std::function<Status()> fn_;
  uint64_t count_ = 0;
};

/// Evaluates `prog` for every lane of `sel` (a subset of `batch`'s rows,
/// ascending). On success `out` has one Item per lane; lanes that failed
/// are listed in `errors` (at most one entry per lane, the first failure
/// in evaluation order) and hold a placeholder in `out`. A non-OK return
/// is a whole-batch failure (cancellation/deadline from `check`), not a
/// per-lane one. `check` may be nullptr.
Status EvalExprProgram(const ExprProgram& prog, const TupleBatch& batch,
                       const std::vector<uint32_t>& sel, EvalContext* ctx,
                       EvalCheck* check, std::vector<Item>* out,
                       std::vector<LaneError>* errors);

/// True when JPAR_DISABLE_EXPR_BYTECODE is set in the environment (any
/// non-empty value except "0"); checked once per process. With
/// ExprMode::kAuto this forces the legacy tuple-at-a-time tree path.
bool ExprBytecodeDisabledByEnv();

}  // namespace jpar

#endif  // JPAR_RUNTIME_EXPR_COMPILE_H_
