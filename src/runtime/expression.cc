#include "runtime/expression.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <utility>

#include "json/binary_serde.h"
#include "json/parser.h"

namespace jpar {

namespace {

/// Expands an item into a span of sequence members ([item] when atomic
/// or json-item, the members when a sequence).
void ExpandSequence(const Item& item, std::vector<Item>* out) {
  if (item.is_sequence()) {
    const Item::ItemVector& seq = item.sequence();
    out->insert(out->end(), seq.begin(), seq.end());
  } else {
    out->push_back(item);
  }
}

class ConstantEval : public ScalarEval {
 public:
  explicit ConstantEval(Item value) : value_(std::move(value)) {}
  Result<Item> Eval(const Tuple&, EvalContext*) const override {
    return value_;
  }
  std::string ToString() const override { return value_.ToJsonString(); }
  Shape shape() const override { return Shape::kConstant; }
  const Item* shape_constant() const override { return &value_; }

 private:
  Item value_;
};

class ColumnEval : public ScalarEval {
 public:
  explicit ColumnEval(int column) : column_(column) {}
  Result<Item> Eval(const Tuple& tuple, EvalContext*) const override {
    if (column_ < 0 || static_cast<size_t>(column_) >= tuple.size()) {
      return Status::Internal("column " + std::to_string(column_) +
                              " out of range for tuple of width " +
                              std::to_string(tuple.size()));
    }
    return tuple[static_cast<size_t>(column_)];
  }
  std::string ToString() const override {
    return "$col" + std::to_string(column_);
  }
  Shape shape() const override { return Shape::kColumn; }
  int shape_column() const override { return column_; }

 private:
  int column_;
};

int BuiltinArity(Builtin fn) {
  switch (fn) {
    case Builtin::kValue:
    case Builtin::kEq:
    case Builtin::kNe:
    case Builtin::kLt:
    case Builtin::kLe:
    case Builtin::kGt:
    case Builtin::kGe:
    case Builtin::kAnd:
    case Builtin::kOr:
    case Builtin::kAdd:
    case Builtin::kSub:
    case Builtin::kMul:
    case Builtin::kDiv:
    case Builtin::kMod:
      return 2;
    case Builtin::kContains:
    case Builtin::kStartsWith:
      return 2;
    case Builtin::kArrayConstructor:
    case Builtin::kObjectConstructor:
    case Builtin::kConcat:
    case Builtin::kSubstring:  // 2 or 3 args, checked at eval
      return -1;  // variadic
    default:
      return 1;
  }
}

Result<double> RequireNumeric(const Item& item, const char* what) {
  if (item.is_numeric()) return item.AsDouble();
  return Status::TypeError(std::string(what) + " requires a numeric value, got " +
                           std::string(ItemKindToString(item.kind())));
}

Result<Item> Atomize(const Item& item) {
  // XQuery fn:data — atomization. Atomics pass through; sequences map;
  // arrays/objects have no typed value in this model.
  if (item.is_atomic()) return item;
  if (item.is_sequence()) {
    Item::ItemVector out;
    out.reserve(item.sequence().size());
    for (const Item& member : item.sequence()) {
      JPAR_ASSIGN_OR_RETURN(Item a, Atomize(member));
      ExpandSequence(a, &out);
    }
    return Item::MakeSequence(std::move(out));
  }
  return Status::TypeError("data() applied to a " +
                           std::string(ItemKindToString(item.kind())));
}

/// General comparison with XQuery existential sequence semantics: true
/// iff some pair of members (lhs x rhs) satisfies the comparison;
/// incomparable member types are a dynamic error.
Result<Item> GeneralCompare(Builtin fn, const Item& lhs, const Item& rhs) {
  std::vector<Item> left, right;
  ExpandSequence(lhs, &left);
  ExpandSequence(rhs, &right);
  for (const Item& a : left) {
    for (const Item& b : right) {
      JPAR_ASSIGN_OR_RETURN(int c, a.Compare(b));
      bool hit = false;
      switch (fn) {
        case Builtin::kEq:
          hit = c == 0;
          break;
        case Builtin::kNe:
          hit = c != 0;
          break;
        case Builtin::kLt:
          hit = c < 0;
          break;
        case Builtin::kLe:
          hit = c <= 0;
          break;
        case Builtin::kGt:
          hit = c > 0;
          break;
        case Builtin::kGe:
          hit = c >= 0;
          break;
        default:
          return Status::Internal("not a comparison builtin");
      }
      if (hit) return Item::Boolean(true);
    }
  }
  return Item::Boolean(false);
}

Result<Item> Arithmetic(Builtin fn, const Item& lhs, const Item& rhs) {
  // Empty-sequence operands propagate the empty sequence (XQuery).
  if ((lhs.is_sequence() && lhs.sequence().empty()) ||
      (rhs.is_sequence() && rhs.sequence().empty())) {
    return Item::EmptySequence();
  }
  JPAR_ASSIGN_OR_RETURN(double a, RequireNumeric(lhs, "arithmetic"));
  JPAR_ASSIGN_OR_RETURN(double b, RequireNumeric(rhs, "arithmetic"));
  bool both_int = lhs.is_int64() && rhs.is_int64();
  switch (fn) {
    case Builtin::kAdd:
      if (both_int) return Item::Int64(lhs.int64_value() + rhs.int64_value());
      return Item::Double(a + b);
    case Builtin::kSub:
      if (both_int) return Item::Int64(lhs.int64_value() - rhs.int64_value());
      return Item::Double(a - b);
    case Builtin::kMul:
      if (both_int) return Item::Int64(lhs.int64_value() * rhs.int64_value());
      return Item::Double(a * b);
    case Builtin::kDiv:
      if (b == 0) return Status::TypeError("division by zero");
      return Item::Double(a / b);
    case Builtin::kMod:
      if (b == 0) return Status::TypeError("modulo by zero");
      if (both_int) return Item::Int64(lhs.int64_value() % rhs.int64_value());
      return Item::Double(std::fmod(a, b));
    default:
      return Status::Internal("not an arithmetic builtin");
  }
}

/// Lexical string form of an atomic item (XQuery fn:string for the
/// types this engine models).
Result<std::string> LexicalString(const Item& item) {
  switch (item.kind()) {
    case ItemKind::kNull:
      return std::string("null");
    case ItemKind::kBoolean:
      return std::string(item.boolean_value() ? "true" : "false");
    case ItemKind::kInt64:
    case ItemKind::kDouble:
      return item.ToJsonString();
    case ItemKind::kString:
      return item.string_value();
    case ItemKind::kDateTime:
      return FormatDateTime(item.datetime_value());
    case ItemKind::kSequence:
      if (item.sequence().empty()) return std::string();
      return Status::TypeError("string() of a multi-item sequence");
    default:
      return Status::TypeError("string() of a " +
                               std::string(ItemKindToString(item.kind())));
  }
}

Result<Item> StringFunction(Builtin fn, const std::vector<Item>& vals) {
  switch (fn) {
    case Builtin::kConcat: {
      std::string out;
      for (const Item& v : vals) {
        if (v.is_sequence() && v.sequence().empty()) continue;
        JPAR_ASSIGN_OR_RETURN(std::string s, LexicalString(v));
        out += s;
      }
      return Item::String(std::move(out));
    }
    case Builtin::kSubstring: {
      if (vals.size() != 2 && vals.size() != 3) {
        return Status::InvalidArgument("substring expects 2 or 3 arguments");
      }
      JPAR_ASSIGN_OR_RETURN(std::string s, LexicalString(vals[0]));
      JPAR_ASSIGN_OR_RETURN(double start_d, [&]() -> Result<double> {
        if (!vals[1].is_numeric()) {
          return Status::TypeError("substring start must be numeric");
        }
        return vals[1].AsDouble();
      }());
      // XQuery substring is 1-based with rounding semantics; this
      // engine clamps to the simple integral case.
      int64_t start = static_cast<int64_t>(start_d);
      int64_t len = vals.size() == 3 && vals[2].is_numeric()
                        ? static_cast<int64_t>(vals[2].AsDouble())
                        : static_cast<int64_t>(s.size()) - (start - 1);
      if (start < 1) {
        len += start - 1;
        start = 1;
      }
      if (len <= 0 || static_cast<size_t>(start) > s.size()) {
        return Item::String("");
      }
      size_t from = static_cast<size_t>(start - 1);
      size_t count = std::min(static_cast<size_t>(len), s.size() - from);
      return Item::String(s.substr(from, count));
    }
    case Builtin::kStringLength: {
      JPAR_ASSIGN_OR_RETURN(std::string s, LexicalString(vals[0]));
      return Item::Int64(static_cast<int64_t>(s.size()));
    }
    case Builtin::kContains: {
      JPAR_ASSIGN_OR_RETURN(std::string hay, LexicalString(vals[0]));
      JPAR_ASSIGN_OR_RETURN(std::string needle, LexicalString(vals[1]));
      return Item::Boolean(hay.find(needle) != std::string::npos);
    }
    case Builtin::kStartsWith: {
      JPAR_ASSIGN_OR_RETURN(std::string hay, LexicalString(vals[0]));
      JPAR_ASSIGN_OR_RETURN(std::string prefix, LexicalString(vals[1]));
      return Item::Boolean(hay.rfind(prefix, 0) == 0);
    }
    case Builtin::kUpperCase:
    case Builtin::kLowerCase: {
      JPAR_ASSIGN_OR_RETURN(std::string s, LexicalString(vals[0]));
      for (char& c : s) {
        c = fn == Builtin::kUpperCase
                ? static_cast<char>(std::toupper(static_cast<unsigned char>(c)))
                : static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      return Item::String(std::move(s));
    }
    case Builtin::kStringFn: {
      JPAR_ASSIGN_OR_RETURN(std::string s, LexicalString(vals[0]));
      return Item::String(std::move(s));
    }
    default:
      return Status::Internal("not a string builtin");
  }
}

Result<Item> NumericFunction(Builtin fn, const Item& arg) {
  if (arg.is_sequence() && arg.sequence().empty()) {
    return Item::EmptySequence();
  }
  JPAR_ASSIGN_OR_RETURN(double v, RequireNumeric(arg, "numeric function"));
  switch (fn) {
    case Builtin::kAbs:
      if (arg.is_int64()) {
        int64_t i = arg.int64_value();
        return Item::Int64(i < 0 ? -i : i);
      }
      return Item::Double(std::fabs(v));
    case Builtin::kRound:
      if (arg.is_int64()) return arg;
      // XQuery fn:round: halves round toward positive infinity.
      return Item::Double(std::floor(v + 0.5));
    case Builtin::kFloor:
      if (arg.is_int64()) return arg;
      return Item::Double(std::floor(v));
    case Builtin::kCeiling:
      if (arg.is_int64()) return arg;
      return Item::Double(std::ceil(v));
    default:
      return Status::Internal("not a numeric builtin");
  }
}

Result<Item> DateTimeComponent(Builtin fn, const Item& arg) {
  if (arg.is_sequence() && arg.sequence().empty()) {
    return Item::EmptySequence();
  }
  if (!arg.is_datetime()) {
    return Status::TypeError(std::string(BuiltinToString(fn)) +
                             " requires a dateTime, got " +
                             std::string(ItemKindToString(arg.kind())));
  }
  const DateTimeValue& dt = arg.datetime_value();
  switch (fn) {
    case Builtin::kYearFromDateTime:
      return Item::Int64(dt.year);
    case Builtin::kMonthFromDateTime:
      return Item::Int64(dt.month);
    case Builtin::kDayFromDateTime:
      return Item::Int64(dt.day);
    default:
      return Status::Internal("not a dateTime component builtin");
  }
}

class FunctionEval : public ScalarEval {
 public:
  FunctionEval(Builtin fn, std::vector<ScalarEvalPtr> args)
      : fn_(fn), args_(std::move(args)) {}

  Result<Item> Eval(const Tuple& tuple, EvalContext* ctx) const override;

  std::string ToString() const override {
    std::string out(BuiltinToString(fn_));
    out.push_back('(');
    for (size_t i = 0; i < args_.size(); ++i) {
      if (i > 0) out += ", ";
      out += args_[i]->ToString();
    }
    out.push_back(')');
    return out;
  }
  Shape shape() const override { return Shape::kFunction; }
  Builtin shape_function() const override { return fn_; }
  const std::vector<ScalarEvalPtr>* shape_args() const override {
    return &args_;
  }

 private:
  Builtin fn_;
  std::vector<ScalarEvalPtr> args_;
};

Result<Item> EvalCollection(const std::string& name, EvalContext* ctx) {
  // The naive (pre-DATASCAN) semantics: parse every file of the
  // collection and return all documents as one sequence. Deliberately
  // expensive — this is the plan shape the pipelining rules eliminate.
  if (ctx == nullptr || ctx->catalog == nullptr) {
    return Status::Internal("collection() evaluated without a catalog");
  }
  JPAR_ASSIGN_OR_RETURN(const Collection* coll,
                        ctx->catalog->GetCollection(name));
  Item::ItemVector docs;
  docs.reserve(coll->files.size());
  for (const JsonFile& file : coll->files) {
    if (file.is_binary()) {
      JPAR_ASSIGN_OR_RETURN(Item doc, DeserializeItem(*file.binary()));
      ctx->bytes_parsed += file.binary()->size();
      docs.push_back(std::move(doc));
      continue;
    }
    JPAR_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> text,
                          file.Load());
    ctx->bytes_parsed += text->size();
    // Files are document streams (one document or many).
    JPAR_ASSIGN_OR_RETURN(std::vector<Item> file_docs,
                          ParseJsonStream(*text));
    for (Item& doc : file_docs) docs.push_back(std::move(doc));
  }
  if (ctx->memory != nullptr) {
    uint64_t bytes = 0;
    for (const Item& d : docs) bytes += d.EstimateSizeBytes();
    JPAR_RETURN_NOT_OK(ctx->memory->Allocate(bytes));
    ctx->memory->Release(bytes);  // transient: retained only in the tuple
  }
  // A one-document collection must still behave as a collection, so a
  // singleton does not collapse here semantically — MakeSequence's
  // collapse is fine because iterate() treats a non-sequence as a
  // singleton.
  return Item::MakeSequence(std::move(docs));
}

Result<Item> FunctionEval::Eval(const Tuple& tuple, EvalContext* ctx) const {
  // Lazy evaluation for boolean connectives.
  if (fn_ == Builtin::kAnd || fn_ == Builtin::kOr) {
    JPAR_ASSIGN_OR_RETURN(Item lhs, args_[0]->Eval(tuple, ctx));
    JPAR_ASSIGN_OR_RETURN(bool lb, lhs.EffectiveBooleanValue());
    if (fn_ == Builtin::kAnd && !lb) return Item::Boolean(false);
    if (fn_ == Builtin::kOr && lb) return Item::Boolean(true);
    JPAR_ASSIGN_OR_RETURN(Item rhs, args_[1]->Eval(tuple, ctx));
    JPAR_ASSIGN_OR_RETURN(bool rb, rhs.EffectiveBooleanValue());
    return Item::Boolean(rb);
  }

  std::vector<Item> vals;
  vals.reserve(args_.size());
  for (const ScalarEvalPtr& arg : args_) {
    JPAR_ASSIGN_OR_RETURN(Item v, arg->Eval(tuple, ctx));
    vals.push_back(std::move(v));
  }
  return ApplyBuiltin(fn_, vals, ctx);
}

}  // namespace

Result<Item> GeneralCompareOp(Builtin fn, const Item& lhs, const Item& rhs) {
  return GeneralCompare(fn, lhs, rhs);
}

Result<Item> ArithmeticOp(Builtin fn, const Item& lhs, const Item& rhs) {
  return Arithmetic(fn, lhs, rhs);
}

Result<Item> ApplyBuiltin(Builtin fn, std::vector<Item>& vals,
                          EvalContext* ctx) {
  switch (fn) {
    case Builtin::kValue:
      return ValueStep(vals[0], vals[1]);
    case Builtin::kKeysOrMembers:
      return KeysOrMembersStep(vals[0]);
    case Builtin::kData:
      return Atomize(vals[0]);
    case Builtin::kPromote:
    case Builtin::kTreat:
    case Builtin::kIterate:
      // promote/treat are dynamic no-ops in this engine's type model
      // (the path rules remove them statically); iterate is handled by
      // UNNEST but degrades to identity as a scalar.
      return vals[0];
    case Builtin::kDateTime: {
      const Item& v = vals[0];
      if (v.is_sequence() && v.sequence().empty()) {
        return Item::EmptySequence();
      }
      if (v.is_datetime()) return v;
      if (!v.is_string()) {
        return Status::TypeError("dateTime() requires a string, got " +
                                 std::string(ItemKindToString(v.kind())));
      }
      JPAR_ASSIGN_OR_RETURN(DateTimeValue dt, ParseDateTime(v.string_value()));
      return Item::DateTime(dt);
    }
    case Builtin::kYearFromDateTime:
    case Builtin::kMonthFromDateTime:
    case Builtin::kDayFromDateTime:
      return DateTimeComponent(fn, vals[0]);
    case Builtin::kEq:
    case Builtin::kNe:
    case Builtin::kLt:
    case Builtin::kLe:
    case Builtin::kGt:
    case Builtin::kGe:
      return GeneralCompare(fn, vals[0], vals[1]);
    case Builtin::kNot: {
      JPAR_ASSIGN_OR_RETURN(bool b, vals[0].EffectiveBooleanValue());
      return Item::Boolean(!b);
    }
    case Builtin::kAdd:
    case Builtin::kSub:
    case Builtin::kMul:
    case Builtin::kDiv:
    case Builtin::kMod:
      return Arithmetic(fn, vals[0], vals[1]);
    case Builtin::kNeg: {
      if (vals[0].is_int64()) return Item::Int64(-vals[0].int64_value());
      JPAR_ASSIGN_OR_RETURN(double d, RequireNumeric(vals[0], "unary minus"));
      return Item::Double(-d);
    }
    case Builtin::kCount:
    case Builtin::kSum:
    case Builtin::kAvg:
    case Builtin::kMin:
    case Builtin::kMax:
      return ScalarAggregate(fn, vals[0]);
    case Builtin::kCollection: {
      if (!vals[0].is_string()) {
        return Status::TypeError("collection() requires a string name");
      }
      return EvalCollection(vals[0].string_value(), ctx);
    }
    case Builtin::kJsonDoc: {
      if (!vals[0].is_string()) {
        return Status::TypeError("json-doc() requires a string name");
      }
      if (ctx == nullptr || ctx->catalog == nullptr) {
        return Status::Internal("json-doc() evaluated without a catalog");
      }
      JPAR_ASSIGN_OR_RETURN(const JsonFile* file,
                            ctx->catalog->GetDocument(vals[0].string_value()));
      JPAR_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> text,
                            file->Load());
      ctx->bytes_parsed += text->size();
      return ParseJson(*text);
    }
    case Builtin::kArrayConstructor: {
      Item::ItemVector elems;
      elems.reserve(vals.size());
      for (Item& v : vals) {
        // JSONiq array constructors flatten sequence arguments.
        if (v.is_sequence()) {
          for (const Item& m : v.sequence()) elems.push_back(m);
        } else {
          elems.push_back(std::move(v));
        }
      }
      return Item::MakeArray(std::move(elems));
    }
    case Builtin::kObjectConstructor: {
      if (vals.size() % 2 != 0) {
        return Status::Internal("object constructor with odd argument count");
      }
      Item::Object fields;
      fields.reserve(vals.size() / 2);
      for (size_t i = 0; i < vals.size(); i += 2) {
        if (!vals[i].is_string()) {
          return Status::TypeError("object key must be a string");
        }
        fields.push_back({vals[i].string_value(), std::move(vals[i + 1])});
      }
      return Item::MakeObject(std::move(fields));
    }
    case Builtin::kConcat:
    case Builtin::kSubstring:
    case Builtin::kStringLength:
    case Builtin::kContains:
    case Builtin::kStartsWith:
    case Builtin::kUpperCase:
    case Builtin::kLowerCase:
    case Builtin::kStringFn:
      return StringFunction(fn, vals);
    case Builtin::kAbs:
    case Builtin::kRound:
    case Builtin::kFloor:
    case Builtin::kCeiling:
      return NumericFunction(fn, vals[0]);
    case Builtin::kEmpty:
      return Item::Boolean(vals[0].SequenceLength() == 0);
    case Builtin::kExists:
      return Item::Boolean(vals[0].SequenceLength() > 0);
    case Builtin::kDistinctValues: {
      std::vector<Item> members;
      ExpandSequence(vals[0], &members);
      Item::ItemVector distinct;
      std::set<std::string> seen;
      for (Item& m : members) {
        if (!m.is_atomic()) {
          return Status::TypeError(
              "distinct-values over a non-atomic member");
        }
        std::string key;
        m.AppendGroupKeyTo(&key);
        if (seen.insert(std::move(key)).second) {
          distinct.push_back(std::move(m));
        }
      }
      return Item::MakeSequence(std::move(distinct));
    }
    case Builtin::kBooleanFn: {
      JPAR_ASSIGN_OR_RETURN(bool b, vals[0].EffectiveBooleanValue());
      return Item::Boolean(b);
    }
    case Builtin::kAnd:
    case Builtin::kOr:
      // Lazy connectives are evaluated by the interpreters themselves.
      return Status::Internal("lazy builtin passed to ApplyBuiltin");
  }
  return Status::Internal("unhandled builtin in ApplyBuiltin");
}

std::string_view BuiltinToString(Builtin fn) {
  switch (fn) {
    case Builtin::kValue:
      return "value";
    case Builtin::kKeysOrMembers:
      return "keys-or-members";
    case Builtin::kData:
      return "data";
    case Builtin::kPromote:
      return "promote";
    case Builtin::kTreat:
      return "treat";
    case Builtin::kIterate:
      return "iterate";
    case Builtin::kDateTime:
      return "dateTime";
    case Builtin::kYearFromDateTime:
      return "year-from-dateTime";
    case Builtin::kMonthFromDateTime:
      return "month-from-dateTime";
    case Builtin::kDayFromDateTime:
      return "day-from-dateTime";
    case Builtin::kEq:
      return "eq";
    case Builtin::kNe:
      return "ne";
    case Builtin::kLt:
      return "lt";
    case Builtin::kLe:
      return "le";
    case Builtin::kGt:
      return "gt";
    case Builtin::kGe:
      return "ge";
    case Builtin::kAnd:
      return "and";
    case Builtin::kOr:
      return "or";
    case Builtin::kNot:
      return "not";
    case Builtin::kAdd:
      return "add";
    case Builtin::kSub:
      return "sub";
    case Builtin::kMul:
      return "mul";
    case Builtin::kDiv:
      return "div";
    case Builtin::kMod:
      return "mod";
    case Builtin::kNeg:
      return "neg";
    case Builtin::kCount:
      return "count";
    case Builtin::kSum:
      return "sum";
    case Builtin::kAvg:
      return "avg";
    case Builtin::kMin:
      return "min";
    case Builtin::kMax:
      return "max";
    case Builtin::kCollection:
      return "collection";
    case Builtin::kJsonDoc:
      return "json-doc";
    case Builtin::kArrayConstructor:
      return "array";
    case Builtin::kObjectConstructor:
      return "object";
    case Builtin::kConcat:
      return "concat";
    case Builtin::kSubstring:
      return "substring";
    case Builtin::kStringLength:
      return "string-length";
    case Builtin::kContains:
      return "contains";
    case Builtin::kStartsWith:
      return "starts-with";
    case Builtin::kUpperCase:
      return "upper-case";
    case Builtin::kLowerCase:
      return "lower-case";
    case Builtin::kStringFn:
      return "string";
    case Builtin::kAbs:
      return "abs";
    case Builtin::kRound:
      return "round";
    case Builtin::kFloor:
      return "floor";
    case Builtin::kCeiling:
      return "ceiling";
    case Builtin::kEmpty:
      return "empty";
    case Builtin::kExists:
      return "exists";
    case Builtin::kDistinctValues:
      return "distinct-values";
    case Builtin::kBooleanFn:
      return "boolean";
  }
  return "?";
}

Result<Item> ValueStep(const Item& target, const Item& spec) {
  if (target.is_object()) {
    if (!spec.is_string()) {
      // value(object, non-string) selects nothing.
      return Item::EmptySequence();
    }
    std::optional<Item> field = target.GetField(spec.string_value());
    if (!field.has_value()) return Item::EmptySequence();
    return *std::move(field);
  }
  if (target.is_array()) {
    if (!spec.is_int64()) return Item::EmptySequence();
    int64_t index = spec.int64_value();  // 1-based
    const Item::ItemVector& elems = target.array();
    if (index < 1 || static_cast<size_t>(index) > elems.size()) {
      return Item::EmptySequence();
    }
    return elems[static_cast<size_t>(index - 1)];
  }
  if (target.is_sequence()) {
    // JSONiq navigation maps over sequences.
    Item::ItemVector out;
    for (const Item& member : target.sequence()) {
      JPAR_ASSIGN_OR_RETURN(Item v, ValueStep(member, spec));
      ExpandSequence(v, &out);
    }
    return Item::MakeSequence(std::move(out));
  }
  // value() on an atomic selects nothing.
  return Item::EmptySequence();
}

Result<Item> KeysOrMembersStep(const Item& target) {
  if (target.is_array()) {
    Item::ItemVector members = target.array();
    return Item::MakeSequence(std::move(members));
  }
  if (target.is_object()) {
    Item::ItemVector keys;
    keys.reserve(target.object().size());
    for (const ObjectField& f : target.object()) {
      keys.push_back(Item::String(f.key));
    }
    return Item::MakeSequence(std::move(keys));
  }
  if (target.is_sequence()) {
    Item::ItemVector out;
    for (const Item& member : target.sequence()) {
      JPAR_ASSIGN_OR_RETURN(Item v, KeysOrMembersStep(member));
      ExpandSequence(v, &out);
    }
    return Item::MakeSequence(std::move(out));
  }
  return Item::EmptySequence();
}

Result<Item> ScalarAggregate(Builtin fn, const Item& sequence) {
  std::vector<Item> members;
  ExpandSequence(sequence, &members);
  if (fn == Builtin::kCount) {
    return Item::Int64(static_cast<int64_t>(members.size()));
  }
  if (members.empty()) {
    // sum(()) is 0; avg/min/max of the empty sequence are empty.
    if (fn == Builtin::kSum) return Item::Int64(0);
    return Item::EmptySequence();
  }
  if (fn == Builtin::kMin || fn == Builtin::kMax) {
    Item best = members[0];
    for (size_t i = 1; i < members.size(); ++i) {
      JPAR_ASSIGN_OR_RETURN(int c, members[i].Compare(best));
      if ((fn == Builtin::kMin && c < 0) || (fn == Builtin::kMax && c > 0)) {
        best = members[i];
      }
    }
    return best;
  }
  // sum / avg.
  double total = 0;
  bool all_int = true;
  int64_t int_total = 0;
  for (const Item& m : members) {
    JPAR_ASSIGN_OR_RETURN(double v, RequireNumeric(m, "sum/avg"));
    total += v;
    if (m.is_int64()) {
      int_total += m.int64_value();
    } else {
      all_int = false;
    }
  }
  if (fn == Builtin::kSum) {
    if (all_int) return Item::Int64(int_total);
    return Item::Double(total);
  }
  return Item::Double(total / static_cast<double>(members.size()));
}

ScalarEvalPtr MakeConstantEval(Item value) {
  return std::make_shared<ConstantEval>(std::move(value));
}

ScalarEvalPtr MakeColumnEval(int column) {
  return std::make_shared<ColumnEval>(column);
}

Result<ScalarEvalPtr> MakeFunctionEval(Builtin fn,
                                       std::vector<ScalarEvalPtr> args) {
  int arity = BuiltinArity(fn);
  if (arity >= 0 && args.size() != static_cast<size_t>(arity)) {
    return Status::InvalidArgument(
        std::string(BuiltinToString(fn)) + " expects " +
        std::to_string(arity) + " arguments, got " +
        std::to_string(args.size()));
  }
  for (const ScalarEvalPtr& a : args) {
    if (a == nullptr) return Status::Internal("null argument evaluator");
  }
  return ScalarEvalPtr(std::make_shared<FunctionEval>(fn, std::move(args)));
}

}  // namespace jpar
