#include "runtime/aggregates.h"

#include <functional>
#include <utility>
#include <vector>

namespace jpar {

namespace {

/// Members contributed by an item to an aggregate: a sequence
/// contributes its members, anything else contributes itself. An empty
/// sequence contributes nothing (e.g. count of missing fields).
void ForEachMember(const Item& item, const std::function<void(const Item&)>& f) {
  if (item.is_sequence()) {
    for (const Item& m : item.sequence()) f(m);
  } else {
    f(item);
  }
}

class SequenceAggregator : public Aggregator {
 public:
  Status Step(const Item& item) override {
    ForEachMember(item, [this](const Item& m) {
      items_.push_back(m);
      retained_ += m.EstimateSizeBytes();
    });
    return Status::OK();
  }
  Result<Item> Finish() override {
    return Item::MakeSequence(std::move(items_));
  }
  size_t RetainedBytes() const override { return retained_; }

  // MakeSequence's singleton collapse is harmless here: MergePartial
  // appends members exactly like Step, and members are never themselves
  // sequences (ForEachMember flattened them on the way in).
  Result<Item> SavePartial() const override {
    return Item::MakeSequence(items_);
  }
  Status MergePartial(const Item& partial) override { return Step(partial); }

 private:
  Item::ItemVector items_;
  size_t retained_ = 0;
};

class CountAggregator : public Aggregator {
 public:
  explicit CountAggregator(AggStep step) : step_(step) {}

  Status Step(const Item& item) override {
    if (step_ == AggStep::kGlobal) {
      // Merge partial counts by summing.
      if (!item.is_int64()) {
        return Status::Internal("global count expects int64 partials");
      }
      count_ += item.int64_value();
      return Status::OK();
    }
    ForEachMember(item, [this](const Item&) { ++count_; });
    return Status::OK();
  }
  Result<Item> Finish() override { return Item::Int64(count_); }
  size_t RetainedBytes() const override { return sizeof(*this); }

  Result<Item> SavePartial() const override { return Item::Int64(count_); }
  Status MergePartial(const Item& partial) override {
    // Always sums, regardless of step: the snapshot is already a count.
    if (!partial.is_int64()) {
      return Status::Internal("count spill partial must be int64");
    }
    count_ += partial.int64_value();
    return Status::OK();
  }

 private:
  AggStep step_;
  int64_t count_ = 0;
};

class MinMaxAggregator : public Aggregator {
 public:
  MinMaxAggregator(bool is_min) : is_min_(is_min) {}

  Status Step(const Item& item) override {
    Status st;
    ForEachMember(item, [this, &st](const Item& m) {
      if (!st.ok()) return;
      if (!has_value_) {
        best_ = m;
        has_value_ = true;
        return;
      }
      Result<int> c = m.Compare(best_);
      if (!c.ok()) {
        st = c.status();
        return;
      }
      if ((is_min_ && *c < 0) || (!is_min_ && *c > 0)) best_ = m;
    });
    return st;
  }
  Result<Item> Finish() override {
    if (!has_value_) return Item::EmptySequence();
    return best_;
  }
  size_t RetainedBytes() const override {
    return sizeof(*this) + best_.EstimateSizeBytes();
  }

  Result<Item> SavePartial() const override {
    // No value yet -> the empty sequence, which MergePartial (via
    // Step's ForEachMember) treats as contributing nothing. `best_` is
    // never itself a sequence, so the cases cannot be confused.
    if (!has_value_) return Item::EmptySequence();
    return best_;
  }
  Status MergePartial(const Item& partial) override { return Step(partial); }

 private:
  bool is_min_;
  bool has_value_ = false;
  Item best_;
};

/// Sum and avg share the running (sum, count) state. Local avg emits an
/// [sum, count] array partial; global avg merges those.
class SumAvgAggregator : public Aggregator {
 public:
  SumAvgAggregator(AggKind kind, AggStep step) : kind_(kind), step_(step) {}

  Status Step(const Item& item) override {
    if (step_ == AggStep::kGlobal) return StepGlobal(item);
    Status st;
    ForEachMember(item, [this, &st](const Item& m) {
      if (!st.ok()) return;
      if (!m.is_numeric()) {
        st = Status::TypeError("sum/avg over non-numeric value: " +
                               std::string(ItemKindToString(m.kind())));
        return;
      }
      sum_ += m.AsDouble();
      if (!m.is_int64()) all_int_ = false;
      ++count_;
    });
    return st;
  }

  Result<Item> Finish() override {
    if (step_ == AggStep::kLocal && kind_ == AggKind::kAvg) {
      // Partial: [sum, count].
      return Item::MakeArray({Item::Double(sum_),
                              Item::Int64(static_cast<int64_t>(count_))});
    }
    if (kind_ == AggKind::kSum) {
      if (all_int_) return Item::Int64(static_cast<int64_t>(sum_));
      return Item::Double(sum_);
    }
    if (count_ == 0) return Item::EmptySequence();
    return Item::Double(sum_ / static_cast<double>(count_));
  }

  size_t RetainedBytes() const override { return sizeof(*this); }

  Result<Item> SavePartial() const override {
    // The full state, not Finish()'s lossy projection: the exact sum
    // bits, the count, and the all-ints flag that decides whether sum
    // finishes as Int64.
    return Item::MakeArray({Item::Double(sum_),
                            Item::Int64(static_cast<int64_t>(count_)),
                            Item::Boolean(all_int_)});
  }
  Status MergePartial(const Item& partial) override {
    if (!partial.is_array() || partial.array().size() != 3 ||
        !partial.array()[0].is_double() || !partial.array()[1].is_int64() ||
        !partial.array()[2].is_boolean()) {
      return Status::Internal(
          "sum/avg spill partial must be [sum, count, all_int]");
    }
    sum_ += partial.array()[0].double_value();
    count_ += static_cast<uint64_t>(partial.array()[1].int64_value());
    all_int_ = all_int_ && partial.array()[2].boolean_value();
    return Status::OK();
  }

 private:
  Status StepGlobal(const Item& item) {
    if (kind_ == AggKind::kSum) {
      if (!item.is_numeric()) {
        return Status::Internal("global sum expects numeric partials");
      }
      sum_ += item.AsDouble();
      if (!item.is_int64()) all_int_ = false;
      ++count_;
      return Status::OK();
    }
    // avg partial: [sum, count].
    if (!item.is_array() || item.array().size() != 2 ||
        !item.array()[0].is_numeric() || !item.array()[1].is_int64()) {
      return Status::Internal("global avg expects [sum, count] partials");
    }
    sum_ += item.array()[0].AsDouble();
    count_ += static_cast<uint64_t>(item.array()[1].int64_value());
    all_int_ = false;
    return Status::OK();
  }

  AggKind kind_;
  AggStep step_;
  double sum_ = 0;
  uint64_t count_ = 0;
  bool all_int_ = true;
};

}  // namespace

std::string_view AggKindToString(AggKind kind) {
  switch (kind) {
    case AggKind::kSequence:
      return "sequence";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

Result<std::unique_ptr<Aggregator>> MakeAggregator(AggKind kind,
                                                   AggStep step) {
  switch (kind) {
    case AggKind::kSequence:
      if (step != AggStep::kComplete) {
        return Status::Internal("sequence aggregation cannot be split");
      }
      return std::unique_ptr<Aggregator>(new SequenceAggregator());
    case AggKind::kCount:
      return std::unique_ptr<Aggregator>(new CountAggregator(step));
    case AggKind::kSum:
    case AggKind::kAvg:
      return std::unique_ptr<Aggregator>(new SumAvgAggregator(kind, step));
    case AggKind::kMin:
      return std::unique_ptr<Aggregator>(new MinMaxAggregator(true));
    case AggKind::kMax:
      return std::unique_ptr<Aggregator>(new MinMaxAggregator(false));
  }
  return Status::Internal("unknown aggregation kind");
}

}  // namespace jpar
