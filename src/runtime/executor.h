#ifndef JPAR_RUNTIME_EXECUTOR_H_
#define JPAR_RUNTIME_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "runtime/catalog.h"
#include "runtime/memory.h"
#include "runtime/operators.h"
#include "runtime/stats.h"
#include "runtime/tuple.h"

namespace jpar {

struct PNode;
using PNodePtr = std::shared_ptr<const PNode>;

/// Longest-processing-time list scheduling of `task_ms` onto `cores`
/// identical cores; returns the busiest core's total. Exposed for the
/// cluster-model tests.
double LptMakespanMs(const std::vector<double>& task_ms, int cores);

/// A node of the physical plan. One struct with kind-dependent fields
/// (plans are descriptors produced by the physical translator, not a
/// behavior hierarchy — execution logic lives in the Executor).
struct PNode {
  enum class Kind : uint8_t {
    /// A streaming pipeline: a scan source (when `input` is null) or the
    /// partitions of `input`, run through `ops`.
    kPipeline,
    /// Hash group-by over `input` (keys ++ aggregates out).
    kGroupBy,
    /// Hash equi-join of `left` and `right` (left ++ right columns out).
    kJoin,
    /// Global sort of `input` by `sort_keys` (parallel local sorts,
    /// then a merge to one partition).
    kSort,
  };

  Kind kind = Kind::kPipeline;

  // kPipeline
  ScanDesc scan;  // used when input == nullptr
  PNodePtr input;
  std::vector<UnaryOpDesc> ops;

  // kGroupBy
  std::vector<ScalarEvalPtr> keys;
  std::vector<AggSpec> aggs;
  /// Algebricks two-step aggregation: local pre-aggregation per input
  /// partition, hash exchange of partials, global merge. Requires all
  /// aggs incremental (never kSequence).
  bool two_step = false;

  // kJoin
  PNodePtr left;
  PNodePtr right;
  std::vector<ScalarEvalPtr> left_keys;
  std::vector<ScalarEvalPtr> right_keys;
  ScalarEvalPtr residual;  // optional extra predicate on joined tuples

  // kSort
  std::vector<ScalarEvalPtr> sort_keys;
  std::vector<uint8_t> sort_descending;  // parallel to sort_keys

  std::string ToString(int indent = 0) const;
};

/// A complete physical plan: the root node plus which output column the
/// DISTRIBUTE-RESULT operator ships to the client.
struct PhysicalPlan {
  PNodePtr root;
  int result_column = 0;

  std::string ToString() const;
};

struct ExecOptions {
  /// Total data parallelism (scan partitions and exchange fan-out) —
  /// nodes x partitions-per-node in the paper's terms.
  int partitions = 1;
  /// Used only to model which partitions share a node (cross-node
  /// exchange traffic incurs simulated network time).
  int partitions_per_node = 4;
  /// Physical cores per node for the makespan model. When a stage has
  /// more partition tasks than cores, tasks are LPT-scheduled onto
  /// cores and the stage's simulated time is the busiest core — which
  /// reproduces the paper's observation that 8 hyper-threaded
  /// partitions on 4 cores do not beat 4 partitions (Fig. 17).
  int cores_per_node = 4;
  /// Target Hyracks frame size for exchanges.
  size_t frame_bytes = 32 * 1024;
  /// 0 = unlimited. Exceeding it fails the query (ResourceExhausted).
  uint64_t memory_limit_bytes = 0;
  /// Run partition tasks on real threads. Off by default: the
  /// reproduction host is single-core, and sequential execution gives
  /// deterministic per-partition timings for the makespan model.
  bool use_threads = false;
  /// Simulated interconnect for cross-node exchange bytes.
  double network_gbps = 1.0;
  double network_latency_ms_per_frame = 0.05;
};

/// Checks an ExecOptions for values that would make execution
/// meaningless or divide by zero (`partitions >= 1`,
/// `partitions_per_node >= 1`, `cores_per_node >= 1`, `frame_bytes > 0`).
/// Called by Executor::Run and by the query service at admission, so
/// bad options fail fast with InvalidArgument instead of relying on
/// inline guards deep in the executor.
Status ValidateExecOptions(const ExecOptions& options);

/// Result rows plus the execution statistics the benchmarks plot.
struct QueryOutput {
  /// The DISTRIBUTE-RESULT column of every output tuple, in partition
  /// order.
  std::vector<Item> items;
  ExecStats stats;
};

/// Executes physical plans against a catalog. Stateless between runs;
/// safe to reuse.
class Executor {
 public:
  Executor(const Catalog* catalog, ExecOptions options)
      : catalog_(catalog), options_(options) {}

  Result<QueryOutput> Run(const PhysicalPlan& plan) const;

 private:
  struct PartitionSet {
    std::vector<std::vector<Tuple>> parts;
  };

  Result<PartitionSet> Exec(const PNode& node, ExecStats* stats) const;
  Result<PartitionSet> ExecPipeline(const PNode& node, ExecStats* stats) const;
  Result<PartitionSet> ExecGroupBy(const PNode& node, ExecStats* stats) const;
  Result<PartitionSet> ExecJoin(const PNode& node, ExecStats* stats) const;
  Result<PartitionSet> ExecSort(const PNode& node, ExecStats* stats) const;

  /// Hash-exchanges `input` into options_.partitions buckets by the
  /// encoded value of `key_evals`; records serde bytes/frames and
  /// simulated network time into `stage`.
  Result<PartitionSet> Exchange(const PartitionSet& input,
                                const std::vector<ScalarEvalPtr>& key_evals,
                                StageStats* stage, ExecStats* stats) const;

  int NodeOfPartition(int p) const {
    return p / (options_.partitions_per_node > 0
                    ? options_.partitions_per_node
                    : 1);
  }

  const Catalog* catalog_;
  ExecOptions options_;
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_EXECUTOR_H_
