#ifndef JPAR_RUNTIME_EXECUTOR_H_
#define JPAR_RUNTIME_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "json/structural_index.h"
#include "stats/collection_stats.h"
#include "storage/storage_tier.h"
#include "runtime/catalog.h"
#include "runtime/memory.h"
#include "runtime/operators.h"
#include "runtime/query_context.h"
#include "runtime/stats.h"
#include "runtime/tuple.h"

namespace jpar {

struct PNode;
using PNodePtr = std::shared_ptr<const PNode>;

/// Longest-processing-time list scheduling of `task_ms` onto `cores`
/// identical cores; returns the busiest core's total. Exposed for the
/// cluster-model tests.
double LptMakespanMs(const std::vector<double>& task_ms, int cores);

/// A node of the physical plan. One struct with kind-dependent fields
/// (plans are descriptors produced by the physical translator, not a
/// behavior hierarchy — execution logic lives in the Executor).
struct PNode {
  enum class Kind : uint8_t {
    /// A streaming pipeline: a scan source (when `input` is null) or the
    /// partitions of `input`, run through `ops`.
    kPipeline,
    /// Hash group-by over `input` (keys ++ aggregates out).
    kGroupBy,
    /// Hash equi-join of `left` and `right` (left ++ right columns out).
    kJoin,
    /// Global sort of `input` by `sort_keys` (parallel local sorts,
    /// then a merge to one partition).
    kSort,
  };

  Kind kind = Kind::kPipeline;

  // kPipeline
  ScanDesc scan;  // used when input == nullptr
  PNodePtr input;
  std::vector<UnaryOpDesc> ops;

  // kGroupBy
  std::vector<ScalarEvalPtr> keys;
  std::vector<AggSpec> aggs;
  /// Algebricks two-step aggregation: local pre-aggregation per input
  /// partition, hash exchange of partials, global merge. Requires all
  /// aggs incremental (never kSequence).
  bool two_step = false;
  /// Cost-model grace-hash fanout advice (DESIGN.md §15); honored only
  /// while ExecOptions::spill_fanout sits at its default. 0 = none.
  int spill_fanout_hint = 0;

  // kJoin
  PNodePtr left;
  PNodePtr right;
  std::vector<ScalarEvalPtr> left_keys;
  std::vector<ScalarEvalPtr> right_keys;
  ScalarEvalPtr residual;  // optional extra predicate on joined tuples
  /// Cost-model flip (DESIGN.md §15): build the hash table over the
  /// (estimated smaller) left side and probe with the right, emitting
  /// matches in canonical probe-left order via an index-pair sort so
  /// the output bytes are identical either way.
  bool build_left = false;

  // kSort
  std::vector<ScalarEvalPtr> sort_keys;
  std::vector<uint8_t> sort_descending;  // parallel to sort_keys

  std::string ToString(int indent = 0) const;
};

/// A complete physical plan: the root node plus which output column the
/// DISTRIBUTE-RESULT operator ships to the client.
struct PhysicalPlan {
  PNodePtr root;
  int result_column = 0;
  /// ASSIGN/SELECT expressions the translator compiled to bytecode
  /// (DESIGN.md §13); surfaces as ExecStats::exprs_compiled when the
  /// executor actually runs them vectorized.
  uint64_t exprs_compiled = 0;
  /// Cost-model output (DESIGN.md §15): the planner's estimate of the
  /// result cardinality (-1 = unknown) — the dispatcher sizes exchange
  /// credit windows from it — and a human-readable record of each
  /// stats-driven choice, for tests and EXPLAIN-style diagnostics.
  double est_result_rows = -1;
  std::vector<std::string> cost_choices;

  std::string ToString() const;
};

/// What a blocking operator (group-by, sort) does when its tracked
/// bytes exceed the memory budget (DESIGN.md §10).
enum class SpillMode : uint8_t {
  /// memory_limit_bytes is a hard limit: crossing it fails the query
  /// with kResourceExhausted (the pre-spilling fail-fast semantics; the
  /// default).
  kDisabled = 0,
  /// memory_limit_bytes is a soft per-operator budget: group-by and
  /// sort partitions that exceed their share hash-partition (group-by)
  /// or sort (sort) their in-memory state into temp run files via
  /// SpillManager, keep going, and merge the runs at the end.
  /// Results are byte-identical to in-memory execution. Operators that
  /// cannot spill (join build sides, materialized sequences) overrun
  /// the budget softly instead of failing.
  kEnabled = 1,
};

/// How pipelines evaluate ASSIGN/SELECT expressions (DESIGN.md §13).
enum class ExprMode : uint8_t {
  /// Batch-at-a-time with compiled bytecode, unless the
  /// JPAR_DISABLE_EXPR_BYTECODE environment variable forces the legacy
  /// path (the swar-fallback-style CI escape hatch). The default.
  kAuto = 0,
  /// Legacy tuple-at-a-time tree interpretation, always.
  kTree = 1,
  /// Batch-at-a-time with bytecode, ignoring the environment override.
  kBytecode = 2,
};

/// What a DATASCAN does when a collection record fails to parse.
enum class ParseErrorPolicy : uint8_t {
  /// The whole query fails with kParseError (strict; the default).
  kFail = 0,
  /// The malformed record is skipped, counted in
  /// ExecStats::skipped_records, and the scan resynchronizes at the
  /// next newline — one bad line must not fail an 800 GB NDJSON scan.
  kSkipAndCount = 1,
};

struct ExecOptions {
  /// Total data parallelism (scan partitions and exchange fan-out) —
  /// nodes x partitions-per-node in the paper's terms.
  int partitions = 1;
  /// Used only to model which partitions share a node (cross-node
  /// exchange traffic incurs simulated network time).
  int partitions_per_node = 4;
  /// Physical cores per node for the makespan model. When a stage has
  /// more partition tasks than cores, tasks are LPT-scheduled onto
  /// cores and the stage's simulated time is the busiest core — which
  /// reproduces the paper's observation that 8 hyper-threaded
  /// partitions on 4 cores do not beat 4 partitions (Fig. 17).
  int cores_per_node = 4;
  /// Target Hyracks frame size for exchanges.
  size_t frame_bytes = 32 * 1024;
  /// 0 = unlimited. With spill == kDisabled exceeding it fails the
  /// query (ResourceExhausted); with kEnabled it is the soft budget
  /// spilling operators stay under (see SpillMode).
  uint64_t memory_limit_bytes = 0;
  /// Memory-governance discipline for blocking operators.
  SpillMode spill = SpillMode::kDisabled;
  /// Hash-partition fan-out of a group-by spill flush (and of each
  /// recursive repartition of a skewed bucket). Must be >= 2 when
  /// spilling is enabled. While this sits at kDefaultSpillFanout, a
  /// plan's cost-model fanout hint may adjust it (DESIGN.md §15); an
  /// explicit setting always wins. Spilled results are byte-identical
  /// to in-memory results at any fanout, so the hint is answer-safe.
  static constexpr int kDefaultSpillFanout = 8;
  int spill_fanout = kDefaultSpillFanout;
  /// Directory for temp run files; empty = the system temp directory.
  /// Must exist and be writable when spilling is enabled.
  std::string spill_dir;
  /// Run partition tasks on real threads. Off by default: the
  /// reproduction host is single-core, and sequential execution gives
  /// deterministic per-partition timings for the makespan model.
  bool use_threads = false;
  /// Simulated interconnect for cross-node exchange bytes.
  double network_gbps = 1.0;
  double network_latency_ms_per_frame = 0.05;
  /// Relative deadline in milliseconds. Through the query service the
  /// clock starts at Submit() (queue wait counts); through
  /// Engine::Execute it starts when execution begins. 0 = none;
  /// negative values are rejected by ValidateExecOptions.
  double deadline_ms = 0;
  /// Malformed-record policy for DATASCAN (see ParseErrorPolicy).
  ParseErrorPolicy on_parse_error = ParseErrorPolicy::kFail;
  /// Scanning pipeline for DATASCAN (DESIGN.md §9): kIndexed builds a
  /// stage-1 StructuralIndex per buffer and parses against its bitmaps;
  /// kScalar keeps the original byte-at-a-time recursive descent.
  ScanMode scan_mode = ScanMode::kIndexed;
  /// Approximate morsel size for threaded DATASCANs. With use_threads,
  /// each collection file is split into newline-aligned morsels of
  /// about this many bytes and worker threads pull them from a shared
  /// queue, so one huge NDJSON file no longer serializes a scan stage.
  /// 0 disables splitting (one morsel per file). While this sits at
  /// kDefaultMorselBytes, a plan's cost-model morsel hint may adjust
  /// the split size (DESIGN.md §15); an explicit setting always wins.
  static constexpr size_t kDefaultMorselBytes = 1 << 20;
  size_t morsel_bytes = kDefaultMorselBytes;
  /// Cooperative cancellation/deadline/fault checks at batch
  /// granularity. On by default; turning them off exists only so
  /// bench_service_throughput can measure their cost.
  bool cooperative_checks = true;
  /// ASSIGN/SELECT evaluation strategy (see ExprMode).
  ExprMode expr_mode = ExprMode::kAuto;
  /// Tuples per pipeline batch in vectorized mode. Any size keeps the
  /// every-256-tuples cancellation guarantee — checks are threaded
  /// through the batch kernels at kCheckIntervalTuples lane granularity
  /// — but ValidateExecOptions caps it at 65536 so a typo cannot turn
  /// batches into whole-partition materialization.
  size_t batch_size = TupleBatch::kDefaultCapacity;
  /// Warm storage tier (DESIGN.md §14): which cache levels DATASCAN may
  /// use over path-backed collection files. kAuto enables tapes and
  /// columns; JPAR_DISABLE_STORAGE_CACHE forces everything cold.
  StorageMode storage_mode = StorageMode::kAuto;
  /// Directory for tape/column sidecar files; empty = next to the data
  /// files. Applied to the process-global StorageManager (last writer
  /// wins, like the cache itself).
  std::string storage_cache_dir;
  /// In-memory budget for the storage cache; 0 keeps the manager's
  /// current budget (256 MiB default). LRU-evicted per file entry.
  uint64_t storage_budget_bytes = 0;
  /// Sampled-statistics policy (DESIGN.md §15): whether scans build
  /// PathStats samples and whether compilation consults them. kAuto
  /// builds and consumes confident samples; JPAR_DISABLE_STATS forces
  /// everything off.
  StatsMode stats_mode = StatsMode::kAuto;
};

/// Checks an ExecOptions for values that would make execution
/// meaningless or divide by zero (`partitions >= 1`,
/// `partitions_per_node >= 1`, `cores_per_node >= 1`, `frame_bytes > 0`)
/// and for nonsensical robustness knobs (`deadline_ms >= 0`, known
/// `on_parse_error`, `scan_mode` and `spill` values; with spilling
/// enabled, `spill_fanout >= 2` and a usable `spill_dir`). Called by
/// Executor::Run and by the query service at admission, so bad options
/// fail fast with InvalidArgument instead of relying on inline guards
/// deep in the executor.
Status ValidateExecOptions(const ExecOptions& options);

/// Result rows plus the execution statistics the benchmarks plot.
struct QueryOutput {
  /// The DISTRIBUTE-RESULT column of every output tuple, in partition
  /// order.
  std::vector<Item> items;
  ExecStats stats;
};

/// Executes physical plans against a catalog. Stateless between runs;
/// safe to reuse.
///
/// The optional QueryContext makes execution abortable: every stage
/// polls ctx->Check() at frame/batch granularity (each scanned file,
/// every kCheckIntervalTuples tuples through a pipeline / build / probe
/// / sort loop, each exchanged source partition), so a cancel or an
/// expired deadline surfaces within one batch of work, and fault
/// points fire where the corresponding real failure would occur.
class Executor {
 public:
  /// Tuples processed between cooperative checks. Small enough that a
  /// cancel lands promptly, large enough that the check (an atomic load
  /// plus, with a deadline, a clock read) is amortized to noise — the
  /// bench_service_throughput guard pins the overhead below 2%.
  static constexpr uint64_t kCheckIntervalTuples = 256;

  Executor(const Catalog* catalog, ExecOptions options,
           QueryContext* ctx = nullptr)
      : catalog_(catalog),
        options_(options),
        ctx_(options.cooperative_checks ? ctx : nullptr) {}

  Result<QueryOutput> Run(const PhysicalPlan& plan) const;

  // ---- Fragment execution API (src/dist, DESIGN.md §11) -------------
  // Entry points for a distributed worker running one slice of a plan
  // that was split at its exchange boundaries. Each mirrors the
  // corresponding per-partition loop of the in-process operators —
  // same EncodeKey, same hash, same insertion and emit order — so a
  // distributed run reassembles byte-identical results.

  /// True when this group-by runs as two-step aggregation (local
  /// pre-aggregation, exchange of partials, global merge).
  static bool GroupByUsesTwoStep(const PNode& node);

  /// Executes a whole subtree (a leaf fragment: everything below the
  /// first exchange boundary) and returns its output partitions
  /// concatenated in partition order. Workers run this over a sliced
  /// catalog with options_.partitions == 1, which reproduces exactly
  /// one in-process scan partition.
  Result<std::vector<Tuple>> RunSubtree(const PNode& node,
                                        ExecStats* stats) const;

  /// The local half of a two-step group-by over one input partition
  /// (AggStep::kLocal; emits key columns ++ partial aggregates).
  Result<std::vector<Tuple>> GroupByLocal(const PNode& node,
                                          const std::vector<Tuple>& input,
                                          ExecStats* stats) const;

  /// The global half of a group-by over one exchanged partition.
  /// `from_partials` selects AggStep::kGlobal over two-step partials
  /// (keys in columns [0, nkeys)) vs. AggStep::kComplete over raw
  /// tuples keyed by node.keys.
  Result<std::vector<Tuple>> GroupByGlobal(const PNode& node,
                                           const std::vector<Tuple>& input,
                                           bool from_partials,
                                           ExecStats* stats) const;

  /// One partition of the hash join over already-exchanged inputs
  /// (build right, probe left, optional residual filter).
  Result<std::vector<Tuple>> JoinPartition(const PNode& node,
                                           const std::vector<Tuple>& left,
                                           const std::vector<Tuple>& right,
                                           ExecStats* stats) const;

  /// Applies a streaming op chain to one partition of tuples.
  Result<std::vector<Tuple>> RunOps(const std::vector<UnaryOpDesc>& ops,
                                    std::vector<Tuple> input,
                                    ExecStats* stats) const;

  /// Routes tuples into `fanout` buckets by std::hash of their encoded
  /// key — the exact routing of the in-process Exchange, so the union
  /// of every worker's bucket b equals in-process partition b.
  Result<std::vector<std::vector<Tuple>>> HashPartition(
      const std::vector<Tuple>& input,
      const std::vector<ScalarEvalPtr>& key_evals, int fanout) const;

 private:
  struct PartitionSet {
    std::vector<std::vector<Tuple>> parts;
  };

  Result<PartitionSet> Exec(const PNode& node, ExecStats* stats) const;
  Result<PartitionSet> ExecPipeline(const PNode& node, ExecStats* stats) const;
  /// Morsel-driven DATASCAN used when options_.use_threads: files are
  /// split into newline-aligned morsels (~options_.morsel_bytes each)
  /// that worker threads pull from a shared queue; per-morsel outputs
  /// and stats land in private slots and are merged in task order after
  /// the join, so results are byte-identical to the sequential scan.
  Result<PartitionSet> ExecDataScanMorsels(
      const PNode& node, const Collection& coll,
      const std::vector<int>* file_filter, int pcount,
      ExecStats* stats) const;
  Result<PartitionSet> ExecGroupBy(const PNode& node, ExecStats* stats) const;
  Result<PartitionSet> ExecJoin(const PNode& node, ExecStats* stats) const;
  /// One partition of the hash join, shared by ExecJoin and
  /// JoinPartition. Canonically builds right / probes left; with
  /// node.build_left the hash table is built over the left side and an
  /// index-pair sort restores the canonical emit order, so the output
  /// bytes are identical either way (DESIGN.md §15).
  Status JoinOnePartition(const PNode& node, const std::vector<Tuple>& left,
                          const std::vector<Tuple>& right, EvalContext* ctx,
                          MemoryTracker* memory,
                          std::vector<Tuple>* out) const;
  Result<PartitionSet> ExecSort(const PNode& node, ExecStats* stats) const;

  /// Hash-exchanges `input` into options_.partitions buckets by the
  /// encoded value of `key_evals`; records serde bytes/frames and
  /// simulated network time into `stage`.
  Result<PartitionSet> Exchange(const PartitionSet& input,
                                const std::vector<ScalarEvalPtr>& key_evals,
                                StageStats* stage, ExecStats* stats) const;

  int NodeOfPartition(int p) const {
    return p / (options_.partitions_per_node > 0
                    ? options_.partitions_per_node
                    : 1);
  }

  /// True when pipelines run batch-at-a-time (DESIGN.md §13): forced by
  /// expr_mode, defaulted on under kAuto unless the environment
  /// override disables it.
  bool UseBatchMode() const {
    switch (options_.expr_mode) {
      case ExprMode::kTree:
        return false;
      case ExprMode::kBytecode:
        return true;
      case ExprMode::kAuto:
        break;
    }
    return !ExprBytecodeDisabledByEnv();
  }

  /// Group-by spill fanout after the plan's cost hint (DESIGN.md §15):
  /// the hint applies only while the option sits at its default.
  int EffectiveSpillFanout(const PNode& node) const {
    if (node.spill_fanout_hint >= 2 &&
        options_.spill_fanout == ExecOptions::kDefaultSpillFanout) {
      return node.spill_fanout_hint;
    }
    return options_.spill_fanout;
  }

  /// The cooperative cancellation/deadline poll; OK without a context.
  Status Interrupted(const char* stage) const {
    return ctx_ != nullptr ? ctx_->Check(stage) : Status::OK();
  }
  /// Fault-injection hook; OK without a context or injector.
  Status Fault(std::string_view point) const {
    return ctx_ != nullptr ? ctx_->Fault(point) : Status::OK();
  }

  const Catalog* catalog_;
  ExecOptions options_;
  QueryContext* ctx_;  // not owned; null = no lifecycle checks
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_EXECUTOR_H_
