#ifndef JPAR_RUNTIME_SPILL_H_
#define JPAR_RUNTIME_SPILL_H_

#include <atomic>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/binary_serde.h"
#include "runtime/query_context.h"
#include "runtime/tuple.h"

namespace jpar {

/// Resolves the directory spill runs are written to: `dir_hint` when
/// non-empty, else the system temp directory. Fails with
/// kInvalidArgument when the resolved path is not a writable directory.
Result<std::string> ResolveSpillDir(const std::string& dir_hint);

/// Removes orphaned spill run files in `dir`: files matching the
/// `jpar-spill-<pid>-<token>-<n>.run` naming scheme whose embedded pid
/// no longer names a live process. A SIGKILLed worker never runs its
/// SpillManager destructor sweep, so its run files outlive it; this
/// reclaims them. Returns the number of files removed (best-effort;
/// unreadable directories count as zero). SpillManager::Create invokes
/// it automatically the first time a process touches each spill
/// directory.
int SweepOrphanedSpillFiles(const std::string& dir);

/// Appends `t` to `out` as an Int64 column count followed by each
/// column, all in the binary_serde item encoding. The inverse is
/// DecodeTupleFrom; round-trips are exact (doubles bit-preserved), which
/// is what makes spilled execution byte-identical to in-memory.
void EncodeTupleTo(const Tuple& t, std::string* out);
Status DecodeTupleFrom(ItemReader* reader, Tuple* out);

class SpillRunWriter;
class SpillRunReader;

/// Owns the temp run files one blocking operator writes while spilling
/// (DESIGN.md §10). Each run is a flat stream of varint-length-prefixed
/// opaque records. Files are created under the resolved spill dir with
/// process-unique names, deleted eagerly once consumed, and swept
/// best-effort by the destructor so a failed query leaves nothing
/// behind. All I/O errors (and the spill.io_error fault point) surface
/// as Status so the query fails cleanly instead of crashing.
///
/// Not thread-safe for interleaved writer creation from multiple
/// threads; the executor uses one manager per (stage, thread) or
/// serializes access, matching how stages run today.
class SpillManager {
 public:
  /// `ctx` (nullable) supplies the spill.io_error fault point.
  static Result<std::unique_ptr<SpillManager>> Create(
      const std::string& dir_hint, QueryContext* ctx);

  ~SpillManager();

  SpillManager(const SpillManager&) = delete;
  SpillManager& operator=(const SpillManager&) = delete;

  Result<std::unique_ptr<SpillRunWriter>> NewRun();
  Result<std::unique_ptr<SpillRunReader>> OpenRun(const std::string& path);

  /// Deletes a fully-consumed run file (also dropped from the
  /// destructor sweep list).
  void Remove(const std::string& path);

  uint64_t runs_created() const { return runs_created_; }
  uint64_t bytes_written() const { return bytes_written_; }

  /// The spill.io_error fault-injection hook; OK without a context.
  Status Fault() const {
    return ctx_ != nullptr ? ctx_->Fault(FaultInjector::kSpillIOError)
                           : Status::OK();
  }
  void AddBytes(uint64_t n) { bytes_written_ += n; }

 private:
  SpillManager(std::string dir, QueryContext* ctx)
      : dir_(std::move(dir)), ctx_(ctx) {}

  std::string dir_;
  QueryContext* ctx_;  // not owned; null = no fault injection
  uint64_t runs_created_ = 0;
  uint64_t bytes_written_ = 0;
  std::vector<std::string> live_files_;
};

/// Append-only writer for one run file. Records are buffered and
/// length-prefixed; Finish() flushes and closes (after which the run
/// can be opened for reading).
class SpillRunWriter {
 public:
  Status Append(std::string_view record);
  Status Finish();
  const std::string& path() const { return path_; }
  uint64_t records() const { return records_; }

 private:
  friend class SpillManager;
  SpillRunWriter(SpillManager* manager, std::string path)
      : manager_(manager), path_(std::move(path)) {}

  Status FlushBuffer();

  SpillManager* manager_;
  std::string path_;
  std::ofstream out_;
  std::string buffer_;
  uint64_t records_ = 0;
  bool finished_ = false;
};

/// Sequential reader over a finished run file.
class SpillRunReader {
 public:
  /// Reads the next record into `*record`; false at end of run.
  Result<bool> Next(std::string* record);
  const std::string& path() const { return path_; }

 private:
  friend class SpillManager;
  SpillRunReader(SpillManager* manager, std::string path)
      : manager_(manager), path_(std::move(path)) {}

  Result<bool> FillBuffer(size_t need);

  SpillManager* manager_;
  std::string path_;
  std::ifstream in_;
  std::string buffer_;
  size_t pos_ = 0;
  bool eof_ = false;
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_SPILL_H_
