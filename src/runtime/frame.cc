#include "runtime/frame.h"

#include "json/binary_serde.h"

namespace jpar {

size_t AppendTupleTo(const Tuple& tuple, std::string* out) {
  size_t start = out->size();
  ItemWriter::AppendVarint(tuple.size(), out);
  ItemWriter writer(out);
  for (const Item& item : tuple) writer.Write(item);
  return out->size() - start;
}

size_t FrameBuilder::Append(const Tuple& tuple) {
  size_t encoded = AppendTupleTo(tuple, &current_.bytes);
  ++current_.tuple_count;
  ++tuple_count_;
  total_bytes_ += encoded;
  if (encoded > max_tuple_bytes_) max_tuple_bytes_ = encoded;
  if (encoded > target_bytes_) ++oversized_frames_;
  if (current_.bytes.size() >= target_bytes_) {
    finished_.push_back(std::move(current_));
    current_ = Frame();
  }
  return encoded;
}

std::vector<Frame> FrameBuilder::Finish() {
  if (current_.tuple_count > 0) {
    finished_.push_back(std::move(current_));
    current_ = Frame();
  }
  return std::move(finished_);
}

Result<bool> FrameReader::Next(Tuple* tuple) {
  while (frame_index_ < frames_.size()) {
    const Frame& frame = frames_[frame_index_];
    if (byte_pos_ >= frame.bytes.size()) {
      ++frame_index_;
      byte_pos_ = 0;
      continue;
    }
    std::string_view rest(frame.bytes.data() + byte_pos_,
                          frame.bytes.size() - byte_pos_);
    uint64_t arity = 0;
    {
      // Decode the leading column-count varint, then the column items.
      int shift = 0;
      size_t p = 0;
      bool done = false;
      while (p < rest.size()) {
        uint8_t b = static_cast<uint8_t>(rest[p++]);
        arity |= static_cast<uint64_t>(b & 0x7F) << shift;
        if ((b & 0x80) == 0) {
          done = true;
          break;
        }
        shift += 7;
      }
      if (!done) return Status::Internal("corrupt frame: truncated arity");
      ItemReader body(rest.substr(p));
      tuple->clear();
      tuple->reserve(arity);
      for (uint64_t i = 0; i < arity; ++i) {
        JPAR_ASSIGN_OR_RETURN(Item item, body.Read());
        tuple->push_back(std::move(item));
      }
      byte_pos_ += p + body.position();
    }
    return true;
  }
  return false;
}

}  // namespace jpar
