#include "runtime/query_context.h"

#include <thread>
#include <utility>

namespace jpar {

FaultInjector::Point& FaultInjector::PointFor(std::string_view name) {
  auto it = points_.find(name);
  if (it == points_.end()) {
    it = points_.emplace(std::string(name), Point()).first;
  }
  return it->second;
}

void FaultInjector::ArmProbability(std::string_view point, double p,
                                   Status error) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& pt = PointFor(point);
  pt.probability = p;
  pt.error = std::move(error);
}

void FaultInjector::ArmAfter(std::string_view point, uint64_t nth,
                             Status error) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& pt = PointFor(point);
  pt.fire_on_hit = nth;
  pt.error = std::move(error);
}

void FaultInjector::ArmStall(std::string_view point, int stall_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  PointFor(point).stall_ms = stall_ms;
}

void FaultInjector::Disarm(std::string_view point) {
  std::lock_guard<std::mutex> lock(mu_);
  Point& pt = PointFor(point);
  pt.probability = 0;
  pt.fire_on_hit = 0;
  pt.stall_ms = 0;
  pt.error = Status::OK();
}

Status FaultInjector::Hit(std::string_view point) {
  int stall_ms = 0;
  Status injected;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Point& pt = PointFor(point);
    ++pt.hits;
    stall_ms = pt.stall_ms;
    bool fire = pt.fire_on_hit != 0 && pt.hits == pt.fire_on_hit;
    if (!fire && pt.probability > 0) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      fire = dist(rng_) < pt.probability;
    }
    if (fire && !pt.error.ok()) {
      ++pt.injected;
      injected = pt.error;
    }
  }
  if (stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  return injected;
}

uint64_t FaultInjector::hit_count(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::injected_count(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.injected;
}

Status QueryContext::Check(const char* stage) const {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    return Status::Cancelled(std::string("query cancelled during ") + stage);
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return Status::DeadlineExceeded(
        std::string("query deadline exceeded during ") + stage);
  }
  return Status::OK();
}

}  // namespace jpar
