#ifndef JPAR_RUNTIME_QUERY_CONTEXT_H_
#define JPAR_RUNTIME_QUERY_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <string_view>

#include "common/status.h"

namespace jpar {

/// A cooperative cancellation flag shared between the client-facing
/// handle (QueryTicket) and the execution threads. Cancellation is a
/// one-way latch: once set it stays set. Thread-safe; cheap to poll.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Deterministic fault injection for robustness tests and the
/// bench_fault_recovery harness. The engine calls Hit(point) at named
/// fault points; an armed point returns its configured error (always,
/// with a probability, or once on the Nth hit) or stalls the calling
/// thread. Unarmed points only count hits. Thread-safe; the RNG is
/// seeded so probabilistic runs are reproducible.
class FaultInjector {
 public:
  // The engine's fault-point catalog (see DESIGN.md §8).
  static constexpr std::string_view kScanIOError = "scan.io_error";
  static constexpr std::string_view kExchangeFrameDrop =
      "exchange.frame_drop";
  static constexpr std::string_view kWorkerStall = "worker.stall";
  static constexpr std::string_view kAllocFail = "alloc.fail";
  /// Spill run file create/append/read failures (DESIGN.md §10).
  static constexpr std::string_view kSpillIOError = "spill.io_error";

  explicit FaultInjector(uint64_t seed = 0) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `point` to return `error` on each hit with probability `p`
  /// (p >= 1.0 fires every time).
  void ArmProbability(std::string_view point, double p, Status error);

  /// Arms `point` to return `error` exactly once, on its `nth` hit
  /// (1-based, counted from the injector's construction).
  void ArmAfter(std::string_view point, uint64_t nth, Status error);

  /// Arms `point` to sleep `stall_ms` on every hit (still returns OK
  /// unless an error is also armed). Models a stuck worker: paired with
  /// a deadline or cancellation in tests.
  void ArmStall(std::string_view point, int stall_ms);

  /// Clears everything armed at `point`; hit counters are kept.
  void Disarm(std::string_view point);

  /// The engine-side entry: counts the hit and returns the armed error
  /// (or OK). Stalls happen outside the internal lock.
  Status Hit(std::string_view point);

  uint64_t hit_count(std::string_view point) const;
  uint64_t injected_count(std::string_view point) const;

 private:
  struct Point {
    double probability = 0;
    uint64_t fire_on_hit = 0;  // 1-based hit index; 0 = disarmed
    int stall_ms = 0;
    Status error;
    uint64_t hits = 0;
    uint64_t injected = 0;
  };

  Point& PointFor(std::string_view name);  // requires mu_ held

  mutable std::mutex mu_;
  std::mt19937_64 rng_;
  std::map<std::string, Point, std::less<>> points_;
};

/// Everything a running query needs to know about its own lifecycle:
/// an optional cancellation token, an optional absolute deadline, and
/// an optional fault injector. Threaded from QueryService::Submit
/// through Engine::Execute into every Executor stage; the executor
/// polls Check() at frame/batch granularity so a cancel or an expired
/// deadline stops the query within one batch of work.
///
/// Copyable and cheap; safe to read from many partition threads
/// concurrently (the token is atomic, the injector locks internally).
class QueryContext {
 public:
  QueryContext() = default;

  void set_cancellation(std::shared_ptr<CancellationToken> token) {
    cancel_ = std::move(token);
  }
  const std::shared_ptr<CancellationToken>& cancellation() const {
    return cancel_;
  }

  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Deadline `ms` from now (convenience for Engine::Execute and tests).
  void set_deadline_after_ms(double ms) {
    set_deadline(std::chrono::steady_clock::now() +
                 std::chrono::duration_cast<
                     std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(ms)));
  }
  bool has_deadline() const { return has_deadline_; }
  /// Meaningful only when has_deadline(); the distributed dispatcher
  /// reads it to ship each fragment the remaining time budget.
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* fault_injector() const { return faults_; }

  /// The cooperative cancellation point: kCancelled if the token is
  /// set, kDeadlineExceeded if the deadline passed, OK otherwise.
  /// `stage` names where execution was interrupted (for the message).
  Status Check(const char* stage) const;

  /// Fault-injection hook: forwards to the injector when present.
  Status Fault(std::string_view point) const {
    return faults_ != nullptr ? faults_->Hit(point) : Status::OK();
  }

 private:
  std::shared_ptr<CancellationToken> cancel_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  FaultInjector* faults_ = nullptr;  // not owned
};

}  // namespace jpar

#endif  // JPAR_RUNTIME_QUERY_CONTEXT_H_
