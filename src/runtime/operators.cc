#include "runtime/operators.h"

#include <utility>

#include "json/binary_serde.h"
#include "runtime/frame.h"
#include "runtime/spill.h"

namespace jpar {

Status EncodeGroupSpillRecord(
    const std::string& encoded_key, const Tuple& key_items,
    const std::vector<std::unique_ptr<Aggregator>>& aggs, std::string* out) {
  ItemWriter writer(out);
  writer.Write(Item::String(encoded_key));
  EncodeTupleTo(key_items, out);
  writer.Write(Item::Int64(static_cast<int64_t>(aggs.size())));
  for (const std::unique_ptr<Aggregator>& agg : aggs) {
    JPAR_ASSIGN_OR_RETURN(Item partial, agg->SavePartial());
    writer.Write(partial);
  }
  return Status::OK();
}

Result<GroupSpillRecord> DecodeGroupSpillRecord(std::string_view record) {
  ItemReader reader(record);
  GroupSpillRecord out;
  JPAR_ASSIGN_OR_RETURN(Item key, reader.Read());
  if (!key.is_string()) {
    return Status::Internal("corrupt group spill record: bad key");
  }
  out.encoded_key = key.string_value();
  JPAR_RETURN_NOT_OK(DecodeTupleFrom(&reader, &out.key_items));
  JPAR_ASSIGN_OR_RETURN(Item count, reader.Read());
  if (!count.is_int64() || count.int64_value() < 0) {
    return Status::Internal("corrupt group spill record: bad agg count");
  }
  size_t n = static_cast<size_t>(count.int64_value());
  out.partials.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    JPAR_ASSIGN_OR_RETURN(Item partial, reader.Read());
    out.partials.push_back(std::move(partial));
  }
  return out;
}

Result<std::string> PeekGroupSpillKey(std::string_view record) {
  ItemReader reader(record);
  JPAR_ASSIGN_OR_RETURN(Item key, reader.Read());
  if (!key.is_string()) {
    return Status::Internal("corrupt group spill record: bad key");
  }
  return std::string(key.string_value());
}

std::string AggSpec::ToString() const {
  std::string out(AggKindToString(kind));
  out.push_back('(');
  out += arg != nullptr ? arg->ToString() : std::string("?");
  out.push_back(')');
  return out;
}

std::string UnaryOpDesc::ToString() const {
  switch (kind) {
    case Kind::kAssign:
      return "ASSIGN " + eval->ToString();
    case Kind::kSelect:
      return "SELECT " + eval->ToString();
    case Kind::kUnnest:
      return "UNNEST " + eval->ToString();
    case Kind::kSubplan:
      return "SUBPLAN { " + subplan->ToString() + " }";
    case Kind::kProject: {
      std::string out = "PROJECT";
      for (size_t i = 0; i < columns.size(); ++i) {
        out += (i == 0 ? " $col" : ", $col") + std::to_string(columns[i]);
      }
      return out;
    }
  }
  return "?";
}

std::string SubplanDesc::ToString() const {
  std::string out;
  for (const UnaryOpDesc& op : ops) {
    out += op.ToString();
    out += "; ";
  }
  out += "AGGREGATE ";
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (i > 0) out += ", ";
    out += aggs[i].ToString();
  }
  return out;
}

std::string ScanDesc::ToString() const {
  switch (kind) {
    case Kind::kEmptyTupleSource:
      return "EMPTY-TUPLE-SOURCE";
    case Kind::kDataScan: {
      std::string out = "DATASCAN collection(\"" + collection + "\")" +
                        PathToString(steps);
      if (use_index) {
        out += " [index: " + PathToString(index_path) +
               " = " + index_value.ToJsonString() + "]";
      }
      // Cost annotations print only when set, so stats-free plans keep
      // their historical rendering.
      switch (access_hint) {
        case AccessHint::kAny:
          break;
        case AccessHint::kColumnar:
          out += " [access: columnar]";
          break;
        case AccessHint::kTape:
          out += " [access: tape]";
          break;
        case AccessHint::kCold:
          out += " [access: cold]";
          break;
      }
      if (est_rows >= 0) {
        out += " [est-rows: " + std::to_string(static_cast<int64_t>(est_rows)) +
               "]";
      }
      return out;
    }
  }
  return "?";
}

Status RunChain(const std::vector<UnaryOpDesc>& ops, size_t from,
                Tuple tuple, EvalContext* ctx, const TupleSink& sink) {
  if (from == ops.size()) return sink(std::move(tuple));
  if (ctx->charge_boundaries) {
    // Materialize the tuple into a frame, as Hyracks does between
    // operators. The buffer is reused; the serialization work and the
    // byte counts are the point.
    ctx->frame_scratch.clear();
    size_t encoded = AppendTupleTo(tuple, &ctx->frame_scratch);
    ctx->boundary_bytes += encoded;
    ++ctx->boundary_tuples;
    if (encoded > ctx->max_tuple_bytes) ctx->max_tuple_bytes = encoded;
  }
  const UnaryOpDesc& op = ops[from];
  switch (op.kind) {
    case UnaryOpDesc::Kind::kAssign: {
      JPAR_ASSIGN_OR_RETURN(Item value, op.eval->Eval(tuple, ctx));
      tuple.push_back(std::move(value));
      return RunChain(ops, from + 1, std::move(tuple), ctx, sink);
    }
    case UnaryOpDesc::Kind::kSelect: {
      JPAR_ASSIGN_OR_RETURN(Item cond, op.eval->Eval(tuple, ctx));
      JPAR_ASSIGN_OR_RETURN(bool keep, cond.EffectiveBooleanValue());
      if (!keep) return Status::OK();
      return RunChain(ops, from + 1, std::move(tuple), ctx, sink);
    }
    case UnaryOpDesc::Kind::kUnnest: {
      JPAR_ASSIGN_OR_RETURN(Item seq, op.eval->Eval(tuple, ctx));
      if (seq.is_sequence()) {
        for (const Item& member : seq.sequence()) {
          Tuple next = tuple;
          next.push_back(member);
          JPAR_RETURN_NOT_OK(RunChain(ops, from + 1, std::move(next), ctx,
                                      sink));
        }
        return Status::OK();
      }
      // A non-sequence unnests as a singleton.
      tuple.push_back(std::move(seq));
      return RunChain(ops, from + 1, std::move(tuple), ctx, sink);
    }
    case UnaryOpDesc::Kind::kSubplan: {
      JPAR_ASSIGN_OR_RETURN(Tuple out, RunSubplan(*op.subplan, tuple, ctx));
      return RunChain(ops, from + 1, std::move(out), ctx, sink);
    }
    case UnaryOpDesc::Kind::kProject: {
      Tuple out;
      out.reserve(op.columns.size());
      for (int col : op.columns) {
        if (col < 0 || static_cast<size_t>(col) >= tuple.size()) {
          return Status::Internal("PROJECT column out of range");
        }
        out.push_back(tuple[static_cast<size_t>(col)]);
      }
      return RunChain(ops, from + 1, std::move(out), ctx, sink);
    }
  }
  return Status::Internal("unknown unary operator kind");
}

namespace {

/// Deferred per-row failures for a batch chain. Tuple-at-a-time
/// execution stops at the first erroring tuple; a batch discovers
/// errors op-by-op instead, so it records (row, first error) pairs and
/// reports the lowest row's error once the chain has run — each row
/// errors at most once because its lane is deselected on failure.
using DeferredErrors = std::vector<std::pair<uint32_t, Status>>;

Status FirstRowError(DeferredErrors& deferred) {
  size_t best = 0;
  for (size_t i = 1; i < deferred.size(); ++i) {
    if (deferred[i].first < deferred[best].first) best = i;
  }
  return std::move(deferred[best].second);
}

/// Drops errored lanes from the batch selection and compacts `vals` to
/// match, moving the failures into `deferred`.
void DropErroredLanes(std::vector<LaneError>& lane_errors, TupleBatch* batch,
                      std::vector<Item>* vals, DeferredErrors* deferred) {
  const std::vector<uint32_t>& sel = batch->selection();
  std::vector<uint8_t> dead(sel.size(), 0);
  for (LaneError& e : lane_errors) {
    deferred->emplace_back(sel[e.lane], std::move(e.status));
    dead[e.lane] = 1;
  }
  std::vector<uint32_t> keep_sel;
  std::vector<Item> keep_vals;
  keep_sel.reserve(sel.size() - lane_errors.size());
  keep_vals.reserve(sel.size() - lane_errors.size());
  for (size_t lane = 0; lane < sel.size(); ++lane) {
    if (dead[lane]) continue;
    keep_sel.push_back(sel[lane]);
    keep_vals.push_back(std::move((*vals)[lane]));
  }
  batch->SetSelection(std::move(keep_sel));
  *vals = std::move(keep_vals);
}

}  // namespace

Status RunBatchChain(const std::vector<UnaryOpDesc>& ops, TupleBatch* batch,
                     EvalContext* ctx, bool use_bytecode, EvalCheck* check,
                     const BatchSink& sink) {
  DeferredErrors deferred;
  std::vector<Item> vals;
  std::vector<LaneError> lane_errors;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (batch->selection().empty()) break;
    const UnaryOpDesc& op = ops[i];
    switch (op.kind) {
      case UnaryOpDesc::Kind::kAssign:
      case UnaryOpDesc::Kind::kSelect: {
        const std::vector<uint32_t>& sel = batch->selection();
        vals.clear();
        lane_errors.clear();
        if (use_bytecode && op.program != nullptr) {
          JPAR_RETURN_NOT_OK(EvalExprProgram(*op.program, *batch, sel, ctx,
                                             check, &vals, &lane_errors));
        } else {
          vals.reserve(sel.size());
          for (size_t lane = 0; lane < sel.size(); ++lane) {
            if (check != nullptr) JPAR_RETURN_NOT_OK(check->Tick());
            Result<Item> r =
                op.eval->Eval(batch->MaterializeRow(sel[lane]), ctx);
            if (!r.ok()) {
              lane_errors.push_back(LaneError{lane, r.status()});
              vals.emplace_back();
            } else {
              vals.push_back(*std::move(r));
            }
          }
        }
        if (!lane_errors.empty()) {
          DropErroredLanes(lane_errors, batch, &vals, &deferred);
        }
        if (op.kind == UnaryOpDesc::Kind::kAssign) {
          batch->AddColumn(std::move(vals));
          vals = std::vector<Item>();
        } else {
          const std::vector<uint32_t>& live = batch->selection();
          std::vector<uint32_t> keep;
          keep.reserve(live.size());
          for (size_t lane = 0; lane < live.size(); ++lane) {
            Result<bool> b = vals[lane].EffectiveBooleanValue();
            if (!b.ok()) {
              deferred.emplace_back(live[lane], b.status());
            } else if (*b) {
              keep.push_back(live[lane]);
            }
          }
          batch->SetSelection(std::move(keep));
        }
        break;
      }
      case UnaryOpDesc::Kind::kProject: {
        for (int col : op.columns) {
          if (col < 0 || static_cast<size_t>(col) >= batch->width()) {
            // Uniform schema: every live row fails identically, and the
            // first live row is the one tuple-at-a-time stops on.
            deferred.emplace_back(batch->selection().front(),
                                  Status::Internal(
                                      "PROJECT column out of range"));
            return FirstRowError(deferred);
          }
        }
        batch->Project(op.columns);
        break;
      }
      case UnaryOpDesc::Kind::kUnnest:
      case UnaryOpDesc::Kind::kSubplan: {
        // Fan-out operators fall back to the tuple chain for the whole
        // remaining suffix, lane by lane, preserving emission order.
        TupleBatch carry(batch->capacity());
        bool carry_init = false;
        TupleSink tsink = [&](Tuple t) -> Status {
          if (!carry_init) {
            carry.Reset(t.size());
            carry_init = true;
          }
          carry.AppendTuple(std::move(t));
          if (carry.full()) {
            JPAR_RETURN_NOT_OK(sink(carry));
            carry.Reset(carry.width());
          }
          return Status::OK();
        };
        for (uint32_t row : batch->selection()) {
          if (check != nullptr) JPAR_RETURN_NOT_OK(check->Tick());
          Status st = RunChain(ops, i, batch->MaterializeRow(row), ctx, tsink);
          if (!st.ok()) {
            // Later lanes can only fail on larger rows; deferred already
            // holds any lower-row candidates from earlier operators.
            deferred.emplace_back(row, std::move(st));
            break;
          }
        }
        if (!deferred.empty()) return FirstRowError(deferred);
        if (carry_init && !carry.empty()) JPAR_RETURN_NOT_OK(sink(carry));
        return Status::OK();
      }
    }
  }
  if (!deferred.empty()) return FirstRowError(deferred);
  if (batch->selection().empty()) return Status::OK();
  return sink(*batch);
}

Result<Tuple> RunSubplan(const SubplanDesc& subplan, const Tuple& seed,
                         EvalContext* ctx) {
  std::vector<std::unique_ptr<Aggregator>> aggs;
  aggs.reserve(subplan.aggs.size());
  for (const AggSpec& spec : subplan.aggs) {
    JPAR_ASSIGN_OR_RETURN(std::unique_ptr<Aggregator> agg,
                          MakeAggregator(spec.kind, AggStep::kComplete));
    aggs.push_back(std::move(agg));
  }
  JPAR_RETURN_NOT_OK(RunChain(
      subplan.ops, 0, seed, ctx, [&](Tuple inner) -> Status {
        for (size_t i = 0; i < aggs.size(); ++i) {
          JPAR_ASSIGN_OR_RETURN(Item value,
                                subplan.aggs[i].arg->Eval(inner, ctx));
          JPAR_RETURN_NOT_OK(aggs[i]->Step(value));
        }
        return Status::OK();
      }));
  Tuple out = seed;
  for (std::unique_ptr<Aggregator>& agg : aggs) {
    JPAR_ASSIGN_OR_RETURN(Item value, agg->Finish());
    out.push_back(std::move(value));
  }
  return out;
}

}  // namespace jpar
