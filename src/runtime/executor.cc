#include "runtime/executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cstring>
#include <functional>
#include <iterator>
#include <thread>
#include <unordered_map>
#include <utility>

#include "json/binary_serde.h"
#include "json/parser.h"
#include "runtime/frame.h"
#include "runtime/spill.h"

namespace jpar {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string IndentStr(int n) { return std::string(static_cast<size_t>(n), ' '); }

/// Which warm-storage access paths this query may use (DESIGN.md §14).
/// The JPAR_DISABLE_STORAGE_CACHE kill-switch overrides every mode.
struct StoragePolicy {
  bool tapes = false;
  bool columns = false;
};

StoragePolicy ResolveStoragePolicy(const ExecOptions& options) {
  if (StorageCacheDisabledByEnv()) return {};
  switch (options.storage_mode) {
    case StorageMode::kOff:
      return {};
    case StorageMode::kTape:
      return {true, false};
    case StorageMode::kAuto:
    case StorageMode::kColumnar:
      return {true, true};
  }
  return {};
}

/// Only path-backed text files participate in the storage tier:
/// in-memory and binary files have no (path, size, mtime) identity.
bool FileCacheable(const JsonFile& file) {
  return !file.is_binary() && !file.in_memory() && !file.path().empty();
}

/// Narrows the resolved storage policy by the plan's access hint
/// (DESIGN.md §15). Hints can only subtract levels — a disabled cache
/// stays disabled regardless of what the planner believed.
StoragePolicy ApplyAccessHint(StoragePolicy base, AccessHint hint) {
  switch (hint) {
    case AccessHint::kAny:
    case AccessHint::kColumnar:  // columnar is already the first choice
      return base;
    case AccessHint::kTape:
      return {base.tapes, false};
    case AccessHint::kCold:
      return {};
  }
  return base;
}

/// Whether scans under these options sample PathStats as they parse.
bool StatsBuildEnabled(const ExecOptions& options) {
  return StatsEnabled(options.stats_mode);
}

StatsConfig ResolveStatsConfig(const ExecOptions& options) {
  StatsConfig cfg;
  cfg.cache_dir = options.storage_cache_dir;
  return cfg;
}

/// Serves one file's scan from a cached column: decodes each block's
/// values in the original emit order, skipping blocks the zone map
/// proves cannot satisfy the scan's annotated SELECT predicate. The
/// SELECT itself still runs over every emitted row downstream.
Status EmitColumn(const ColumnData& column, const ScanDesc& scan,
                  const std::function<Status(Item)>& emit,
                  uint64_t* blocks_pruned) {
  for (const ColumnBlock& block : column.blocks) {
    if (scan.zone_op != ZoneCompare::kNone &&
        !ZoneMayMatch(block, scan.zone_op, scan.zone_value)) {
      ++*blocks_pruned;
      continue;
    }
    ItemReader reader(block.values);
    while (!reader.AtEnd()) {
      JPAR_ASSIGN_OR_RETURN(Item item, reader.Read());
      JPAR_RETURN_NOT_OK(emit(std::move(item)));
    }
  }
  return Status::OK();
}

/// Batch-at-a-time pipeline driver (DESIGN.md §13): accumulates scan
/// items / input tuples into a TupleBatch and runs the whole op chain
/// per batch via RunBatchChain. Survivors are materialized once at the
/// pipeline boundary, where one frame serialization per emitted tuple
/// is charged (the pipeline's real output write) — the per-operator
/// boundary charges of the tuple path are exactly the work
/// vectorization removes, so the driver's EvalContext runs with
/// charge_boundaries off.
class BatchPipe {
 public:
  BatchPipe(const std::vector<UnaryOpDesc>* ops, EvalContext* ctx,
            size_t capacity, std::function<Status()> check_fn,
            std::vector<Tuple>* out, uint64_t* batches)
      : ops_(ops),
        ctx_(ctx),
        out_(out),
        batches_(batches),
        check_(std::move(check_fn)),
        batch_(capacity) {
    sink_ = [this](TupleBatch& b) -> Status { return Emit(b); };
  }

  Status PushItem(Item item) {
    EnsureWidth(1);
    batch_.AppendRow(std::move(item));
    return batch_.full() ? Flush() : Status::OK();
  }

  Status PushTuple(Tuple t) {
    EnsureWidth(t.size());
    batch_.AppendTuple(std::move(t));
    return batch_.full() ? Flush() : Status::OK();
  }

  Status Finish() { return batch_.empty() ? Status::OK() : Flush(); }

 private:
  void EnsureWidth(size_t width) {
    if (width_ != width) {
      width_ = width;
      batch_.Reset(width);
    }
  }

  Status Flush() {
    JPAR_RETURN_NOT_OK(RunBatchChain(*ops_, &batch_, ctx_,
                                     /*use_bytecode=*/true, &check_, sink_));
    batch_.Reset(width_);
    return Status::OK();
  }

  Status Emit(TupleBatch& b) {
    for (uint32_t row : b.selection()) {
      Tuple t = b.MaterializeRow(row);
      ctx_->frame_scratch.clear();
      size_t encoded = AppendTupleTo(t, &ctx_->frame_scratch);
      ctx_->boundary_bytes += encoded;
      ++ctx_->boundary_tuples;
      if (encoded > ctx_->max_tuple_bytes) ctx_->max_tuple_bytes = encoded;
      out_->push_back(std::move(t));
    }
    ++*batches_;
    return Status::OK();
  }

  const std::vector<UnaryOpDesc>* ops_;
  EvalContext* ctx_;
  std::vector<Tuple>* out_;
  uint64_t* batches_;
  EvalCheck check_;
  TupleBatch batch_;
  size_t width_ = 0;
  BatchSink sink_;
};

/// Encodes the grouping/join key of a tuple under `key_evals`.
Status EncodeKey(const std::vector<ScalarEvalPtr>& key_evals,
                 const Tuple& tuple, EvalContext* ctx, std::string* encoded,
                 Tuple* key_items) {
  encoded->clear();
  if (key_items != nullptr) key_items->clear();
  for (const ScalarEvalPtr& eval : key_evals) {
    JPAR_ASSIGN_OR_RETURN(Item k, eval->Eval(tuple, ctx));
    k.AppendGroupKeyTo(encoded);
    encoded->push_back('\0');
    if (key_items != nullptr) key_items->push_back(std::move(k));
  }
  return Status::OK();
}

struct GroupState {
  Tuple key_items;
  std::vector<std::unique_ptr<Aggregator>> aggs;
};

/// Salted FNV-1a over the encoded group key. Bucket routing must NOT
/// reuse the exchange's std::hash: flushes partition by SpillHash(key,
/// 0) and each recursive repartition re-splits a skewed bucket with the
/// next salt, so collisions at one level separate at the next.
uint64_t SpillHash(std::string_view key, uint32_t salt) {
  uint64_t h = 14695981039346656037ull ^
               (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(salt) + 1));
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// How many salted repartition levels a pathologically skewed bucket
/// may recurse before the merge simply overruns its budget softly.
/// fanout^6 sub-buckets is far beyond any realistic collision pile-up.
constexpr int kMaxSpillDepth = 6;

/// Hash-aggregation table for one group-by partition task. With
/// `spill` null it reproduces the pre-spilling fail-fast behavior
/// exactly (same Fault/Allocate points, same charges). With a
/// SpillManager it is memory-governed: when the partition's tracked
/// bytes exceed `budget`, the table is hash-partitioned into `fanout`
/// run files and cleared; Emit() then merges the runs bucket by bucket,
/// recursively re-splitting any bucket whose merged groups overflow the
/// budget again (hash-collision-heavy skew). See DESIGN.md §10.
class SpillableGroupTable {
 public:
  SpillableGroupTable(const std::vector<AggSpec>& specs, AggStep step,
                      MemoryTracker* memory, bool track_growth,
                      QueryContext* ctx, SpillManager* spill, int fanout,
                      uint64_t budget, uint64_t* merge_passes)
      : specs_(specs),
        step_(step),
        memory_(memory),
        track_growth_(track_growth),
        ctx_(ctx),
        spill_(spill),
        fanout_(fanout < 2 ? 2 : fanout),
        budget_(budget),
        merge_passes_(merge_passes) {}

  /// Folds one input tuple into the group keyed by `encoded`.
  /// `value_of(i)` produces the Step input for aggregator i.
  Status Add(const std::string& encoded, const Tuple& key_items,
             const std::function<Result<Item>(size_t)>& value_of) {
    auto [it, inserted] = table_.try_emplace(encoded);
    if (inserted) {
      it->second.key_items = key_items;
      JPAR_RETURN_NOT_OK(FaultAt(FaultInjector::kAllocFail));
      uint64_t charge = encoded.size() + 64;
      JPAR_RETURN_NOT_OK(memory_->Allocate(charge));
      allocated_ += charge;
      for (const AggSpec& spec : specs_) {
        JPAR_ASSIGN_OR_RETURN(std::unique_ptr<Aggregator> agg,
                              MakeAggregator(spec.kind, step_));
        it->second.aggs.push_back(std::move(agg));
      }
    }
    for (size_t i = 0; i < specs_.size(); ++i) {
      JPAR_ASSIGN_OR_RETURN(Item v, value_of(i));
      if (track_growth_) {
        size_t before = it->second.aggs[i]->RetainedBytes();
        JPAR_RETURN_NOT_OK(it->second.aggs[i]->Step(v));
        size_t after = it->second.aggs[i]->RetainedBytes();
        if (after > before) {
          JPAR_RETURN_NOT_OK(memory_->Allocate(after - before));
          allocated_ += after - before;
        }
      } else {
        JPAR_RETURN_NOT_OK(it->second.aggs[i]->Step(v));
      }
    }
    if (spill_ != nullptr && budget_ > 0 && allocated_ > budget_) {
      JPAR_RETURN_NOT_OK(Flush());
    }
    return Status::OK();
  }

  /// Finishes every group into `*out` (key items ++ finished
  /// aggregates). When nothing spilled this is the plain in-memory
  /// emit; otherwise the live table is flushed too and the runs are
  /// merged bucket by bucket.
  Status Emit(std::vector<Tuple>* out) {
    if (writers_.empty()) {
      for (auto& [key, state] : table_) {
        Tuple t = std::move(state.key_items);
        for (std::unique_ptr<Aggregator>& agg : state.aggs) {
          JPAR_ASSIGN_OR_RETURN(Item v, agg->Finish());
          t.push_back(std::move(v));
        }
        out->push_back(std::move(t));
      }
      table_.clear();
      return Status::OK();
    }
    JPAR_RETURN_NOT_OK(Flush());
    std::vector<std::string> paths;
    paths.reserve(writers_.size());
    for (std::unique_ptr<SpillRunWriter>& w : writers_) {
      JPAR_RETURN_NOT_OK(w->Finish());
      paths.push_back(w->path());
    }
    writers_.clear();
    std::vector<KeyedTuple> keyed;
    for (const std::string& path : paths) {
      JPAR_RETURN_NOT_OK(MergeBucket(path, 0, &keyed));
    }
    // Canonical spilled emit order, independent of the fanout: groups
    // come back bucket by bucket, and bucket boundaries move with the
    // fanout (which the cost model may hint), so raw bucket order
    // would leak a pure performance knob into the answer. Encoded
    // group keys are unique, so the sort is total and tie-free.
    std::sort(keyed.begin(), keyed.end(),
              [](const KeyedTuple& a, const KeyedTuple& b) {
                return a.key < b.key;
              });
    out->reserve(out->size() + keyed.size());
    for (KeyedTuple& kt : keyed) out->push_back(std::move(kt.tuple));
    return Status::OK();
  }

  bool spilled() const { return !writers_.empty() || spilled_once_; }

 private:
  /// A finished group plus the encoded key it merged under; the key
  /// survives to Emit() so the final order can be canonicalized.
  struct KeyedTuple {
    std::string key;
    Tuple tuple;
  };
  Status Check(const char* stage) const {
    return ctx_ != nullptr ? ctx_->Check(stage) : Status::OK();
  }
  Status FaultAt(std::string_view point) const {
    return ctx_ != nullptr ? ctx_->Fault(point) : Status::OK();
  }

  /// Writes every live group to its hash bucket's run file (append;
  /// one file per bucket across all flushes) and clears the table.
  Status Flush() {
    if (table_.empty()) return Status::OK();
    if (writers_.empty()) {
      writers_.resize(static_cast<size_t>(fanout_));
      for (std::unique_ptr<SpillRunWriter>& w : writers_) {
        JPAR_ASSIGN_OR_RETURN(w, spill_->NewRun());
      }
      spilled_once_ = true;
    }
    std::string record;
    uint64_t n = 0;
    for (auto& [key, state] : table_) {
      if (++n % Executor::kCheckIntervalTuples == 0) {
        JPAR_RETURN_NOT_OK(Check("group-by spill"));
      }
      record.clear();
      JPAR_RETURN_NOT_OK(
          EncodeGroupSpillRecord(key, state.key_items, state.aggs, &record));
      size_t b = SpillHash(key, 0) % static_cast<size_t>(fanout_);
      JPAR_RETURN_NOT_OK(writers_[b]->Append(record));
    }
    table_.clear();
    memory_->Release(allocated_);
    allocated_ = 0;
    return Status::OK();
  }

  Status MergeBucket(const std::string& path, int depth,
                     std::vector<KeyedTuple>* out) {
    if (merge_passes_ != nullptr) ++*merge_passes_;
    JPAR_ASSIGN_OR_RETURN(std::unique_ptr<SpillRunReader> reader,
                          spill_->OpenRun(path));
    std::unordered_map<std::string, GroupState> table;
    uint64_t allocated = 0;
    std::string record;
    uint64_t n = 0;
    while (true) {
      JPAR_ASSIGN_OR_RETURN(bool more, reader->Next(&record));
      if (!more) break;
      if (++n % Executor::kCheckIntervalTuples == 0) {
        JPAR_RETURN_NOT_OK(Check("group-by spill merge"));
      }
      JPAR_ASSIGN_OR_RETURN(GroupSpillRecord rec,
                            DecodeGroupSpillRecord(record));
      if (rec.partials.size() != specs_.size()) {
        return Status::Internal("group spill record arity mismatch");
      }
      auto [it, inserted] = table.try_emplace(rec.encoded_key);
      if (inserted) {
        it->second.key_items = std::move(rec.key_items);
        JPAR_RETURN_NOT_OK(FaultAt(FaultInjector::kAllocFail));
        uint64_t charge = rec.encoded_key.size() + 64;
        JPAR_RETURN_NOT_OK(memory_->Allocate(charge));
        allocated += charge;
        for (const AggSpec& spec : specs_) {
          JPAR_ASSIGN_OR_RETURN(std::unique_ptr<Aggregator> agg,
                                MakeAggregator(spec.kind, step_));
          it->second.aggs.push_back(std::move(agg));
        }
      }
      for (size_t i = 0; i < rec.partials.size(); ++i) {
        size_t before = it->second.aggs[i]->RetainedBytes();
        JPAR_RETURN_NOT_OK(it->second.aggs[i]->MergePartial(rec.partials[i]));
        size_t after = it->second.aggs[i]->RetainedBytes();
        if (after > before) {
          JPAR_RETURN_NOT_OK(memory_->Allocate(after - before));
          allocated += after - before;
        }
      }
      if (budget_ > 0 && allocated > budget_ && depth < kMaxSpillDepth) {
        return Repartition(std::move(reader), path, &table, allocated, depth,
                           out);
      }
      // Past kMaxSpillDepth the bucket overruns its budget softly —
      // with a sane hash that takes adversarial key collisions.
    }
    for (auto& [key, state] : table) {
      Tuple t = std::move(state.key_items);
      for (std::unique_ptr<Aggregator>& agg : state.aggs) {
        JPAR_ASSIGN_OR_RETURN(Item v, agg->Finish());
        t.push_back(std::move(v));
      }
      out->push_back({key, std::move(t)});
    }
    memory_->Release(allocated);
    spill_->Remove(path);
    return Status::OK();
  }

  /// A bucket's distinct groups alone blew the budget: re-split the
  /// partially merged table plus the rest of the bucket's stream into
  /// `fanout` sub-runs under the next salt and merge those instead.
  Status Repartition(std::unique_ptr<SpillRunReader> reader,
                     const std::string& path,
                     std::unordered_map<std::string, GroupState>* table,
                     uint64_t allocated, int depth,
                     std::vector<KeyedTuple>* out) {
    uint32_t salt = static_cast<uint32_t>(depth) + 1;
    std::vector<std::unique_ptr<SpillRunWriter>> subs(
        static_cast<size_t>(fanout_));
    for (std::unique_ptr<SpillRunWriter>& w : subs) {
      JPAR_ASSIGN_OR_RETURN(w, spill_->NewRun());
    }
    std::string record;
    uint64_t n = 0;
    for (auto& [key, state] : *table) {
      if (++n % Executor::kCheckIntervalTuples == 0) {
        JPAR_RETURN_NOT_OK(Check("group-by spill repartition"));
      }
      record.clear();
      JPAR_RETURN_NOT_OK(
          EncodeGroupSpillRecord(key, state.key_items, state.aggs, &record));
      size_t b = SpillHash(key, salt) % static_cast<size_t>(fanout_);
      JPAR_RETURN_NOT_OK(subs[b]->Append(record));
    }
    table->clear();
    memory_->Release(allocated);
    // Route the unread remainder by key alone, without decoding
    // partials.
    while (true) {
      JPAR_ASSIGN_OR_RETURN(bool more, reader->Next(&record));
      if (!more) break;
      if (++n % Executor::kCheckIntervalTuples == 0) {
        JPAR_RETURN_NOT_OK(Check("group-by spill repartition"));
      }
      JPAR_ASSIGN_OR_RETURN(std::string key, PeekGroupSpillKey(record));
      size_t b = SpillHash(key, salt) % static_cast<size_t>(fanout_);
      JPAR_RETURN_NOT_OK(subs[b]->Append(record));
    }
    reader.reset();
    spill_->Remove(path);
    std::vector<std::string> paths;
    paths.reserve(subs.size());
    for (std::unique_ptr<SpillRunWriter>& w : subs) {
      JPAR_RETURN_NOT_OK(w->Finish());
      paths.push_back(w->path());
    }
    subs.clear();
    for (const std::string& sub : paths) {
      JPAR_RETURN_NOT_OK(MergeBucket(sub, depth + 1, out));
    }
    return Status::OK();
  }

  const std::vector<AggSpec>& specs_;
  AggStep step_;
  MemoryTracker* memory_;
  bool track_growth_;
  QueryContext* ctx_;    // null = no lifecycle checks
  SpillManager* spill_;  // null = fail-fast mode
  int fanout_;
  uint64_t budget_;
  uint64_t* merge_passes_;

  std::unordered_map<std::string, GroupState> table_;
  std::vector<std::unique_ptr<SpillRunWriter>> writers_;
  uint64_t allocated_ = 0;
  bool spilled_once_ = false;
};

}  // namespace

std::string PNode::ToString(int indent) const {
  std::string out;
  switch (kind) {
    case Kind::kPipeline: {
      for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
        out += IndentStr(indent) + it->ToString() + "\n";
      }
      if (input != nullptr) {
        out += input->ToString(indent);
      } else {
        out += IndentStr(indent) + scan.ToString() + "\n";
      }
      return out;
    }
    case Kind::kGroupBy: {
      out += IndentStr(indent) + std::string("GROUP-BY");
      out += two_step ? " [two-step] {" : " {";
      for (size_t i = 0; i < keys.size(); ++i) {
        out += (i ? ", " : "keys: ") + keys[i]->ToString();
      }
      out += "; aggs: ";
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (i) out += ", ";
        out += aggs[i].ToString();
      }
      out += "}\n";
      out += input->ToString(indent + 2);
      return out;
    }
    case Kind::kSort: {
      out += IndentStr(indent) + "SORT [";
      for (size_t i = 0; i < sort_keys.size(); ++i) {
        if (i) out += ", ";
        out += sort_keys[i]->ToString();
        if (i < sort_descending.size() && sort_descending[i]) {
          out += " desc";
        }
      }
      out += "]\n";
      out += input->ToString(indent + 2);
      return out;
    }
    case Kind::kJoin: {
      out += IndentStr(indent) + "JOIN [";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i) out += " and ";
        out += left_keys[i]->ToString() + " == " + right_keys[i]->ToString();
      }
      out += "]";
      if (build_left) out += " [build: left]";
      out += "\n";
      out += left->ToString(indent + 2);
      out += right->ToString(indent + 2);
      return out;
    }
  }
  return out;
}

std::string PhysicalPlan::ToString() const {
  std::string out = "DISTRIBUTE-RESULT $col" +
                    std::to_string(result_column) + "\n";
  if (root != nullptr) out += root->ToString(2);
  return out;
}

Result<Executor::PartitionSet> Executor::Exec(const PNode& node,
                                              ExecStats* stats) const {
  switch (node.kind) {
    case PNode::Kind::kPipeline:
      return ExecPipeline(node, stats);
    case PNode::Kind::kGroupBy:
      return ExecGroupBy(node, stats);
    case PNode::Kind::kJoin:
      return ExecJoin(node, stats);
    case PNode::Kind::kSort:
      return ExecSort(node, stats);
  }
  return Status::Internal("unknown physical node kind");
}

Result<Executor::PartitionSet> Executor::ExecPipeline(
    const PNode& node, ExecStats* stats) const {
  // Resolve input partitions.
  PartitionSet input;
  bool leaf = node.input == nullptr;
  if (!leaf) {
    JPAR_ASSIGN_OR_RETURN(input, Exec(*node.input, stats));
  }

  // Determine partition task count.
  int pcount;
  const Collection* coll = nullptr;
  // With an index-assisted scan, only this subset of file ids is read
  // (null = all files).
  const std::vector<int>* file_filter = nullptr;
  if (leaf) {
    if (node.scan.kind == ScanDesc::Kind::kDataScan) {
      JPAR_ASSIGN_OR_RETURN(coll, catalog_->GetCollection(node.scan.collection));
      if (node.scan.use_index) {
        file_filter = catalog_->LookupPathIndex(
            node.scan.collection, node.scan.index_path,
            node.scan.index_value);
        // A missing index (e.g. dropped after compilation) degrades to
        // a full scan rather than failing the query.
      }
      size_t scannable =
          file_filter != nullptr ? file_filter->size() : coll->files.size();
      pcount = options_.partitions;
      if (pcount > static_cast<int>(scannable) && scannable > 0) {
        // No point in more scan partitions than files.
        pcount = static_cast<int>(scannable);
      }
      if (pcount < 1) pcount = 1;
    } else {
      // EMPTY-TUPLE-SOURCE runs on a single partition (the paper's
      // pre-DATASCAN plans are serial until an exchange).
      pcount = 1;
    }
  } else {
    pcount = static_cast<int>(input.parts.size());
  }

  // Threaded DATASCANs are morsel-driven: files are split into
  // newline-aligned chunks pulled by a worker pool, so parallelism no
  // longer stops at file granularity.
  if (leaf && node.scan.kind == ScanDesc::Kind::kDataScan &&
      options_.use_threads) {
    return ExecDataScanMorsels(node, *coll, file_filter, pcount, stats);
  }

  // With spilling enabled the limit is a soft budget: pipelines cannot
  // spill, so they track usage without failing (DESIGN.md §10).
  MemoryTracker memory(options_.memory_limit_bytes,
                       options_.spill == SpillMode::kEnabled);
  StageStats stage;
  stage.name = leaf ? node.scan.ToString() : "pipeline";
  stage.partition_ms.assign(static_cast<size_t>(pcount), 0.0);

  PartitionSet output;
  output.parts.assign(static_cast<size_t>(pcount), {});
  std::vector<Status> task_status(static_cast<size_t>(pcount));
  std::vector<uint64_t> task_bytes(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_items(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_boundary_bytes(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_max_tuple(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_skipped(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_batches(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_tape_hits(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_tape_builds(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_columns_read(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_blocks_pruned(static_cast<size_t>(pcount), 0);
  std::vector<uint64_t> task_stats_built(static_cast<size_t>(pcount), 0);
  const bool lenient_scan =
      options_.on_parse_error == ParseErrorPolicy::kSkipAndCount;
  // Warm-storage access-path selection (DESIGN.md §14), per file below:
  // columnar read when the projected path is cached, tape-accelerated
  // scan when the stage-1 index is cached, cold scan otherwise. The
  // plan's cost-model access hint can only narrow what the options
  // allow (DESIGN.md §15).
  const StoragePolicy storage = ApplyAccessHint(
      ResolveStoragePolicy(options_),
      leaf && node.scan.kind == ScanDesc::Kind::kDataScan
          ? node.scan.access_hint
          : AccessHint::kAny);
  const bool stats_build = StatsBuildEnabled(options_);
  const StatsConfig stats_cfg = ResolveStatsConfig(options_);
  const StorageConfig storage_cfg{options_.storage_budget_bytes,
                                  options_.storage_cache_dir};
  const std::string scan_path_str =
      leaf && node.scan.kind == ScanDesc::Kind::kDataScan
          ? PathToString(node.scan.steps)
          : std::string();
  // EMPTY-TUPLE-SOURCE pipelines emit one seed tuple; they keep the
  // tuple path (and its exact boundary accounting) in every mode.
  const bool batch_mode =
      UseBatchMode() &&
      !(leaf && node.scan.kind == ScanDesc::Kind::kEmptyTupleSource);

  auto run_task = [&](int p) {
    auto start = Clock::now();
    EvalContext ctx;
    ctx.catalog = catalog_;
    ctx.memory = &memory;
    ctx.charge_boundaries = !batch_mode;
    std::vector<Tuple>& out = output.parts[static_cast<size_t>(p)];
    TupleSink sink = [&out](Tuple t) -> Status {
      out.push_back(std::move(t));
      return Status::OK();
    };
    std::unique_ptr<BatchPipe> pipe;
    if (batch_mode) {
      pipe = std::make_unique<BatchPipe>(
          &node.ops, &ctx, options_.batch_size,
          [this]() { return Interrupted("pipeline"); }, &out,
          &task_batches[static_cast<size_t>(p)]);
    }
    // One huge NDJSON file is a single partition task: poll the
    // lifecycle every kCheckIntervalTuples emitted items, not only at
    // file boundaries.
    uint64_t& items = task_items[static_cast<size_t>(p)];
    auto item_check = [&]() -> Status {
      if (++items % kCheckIntervalTuples == 0) {
        return Interrupted("pipeline");
      }
      return Status::OK();
    };
    Status st = Fault(FaultInjector::kWorkerStall);
    if (leaf && node.scan.kind == ScanDesc::Kind::kDataScan && st.ok()) {
      // Files (or the index-pruned subset) are assigned to partitions
      // round-robin.
      size_t file_count =
          file_filter != nullptr ? file_filter->size() : coll->files.size();
      for (size_t i = static_cast<size_t>(p); i < file_count;
           i += static_cast<size_t>(pcount)) {
        st = Interrupted("pipeline scan");
        if (!st.ok()) break;
        st = Fault(FaultInjector::kScanIOError);
        if (!st.ok()) break;
        const JsonFile& file =
            file_filter != nullptr
                ? coll->files[static_cast<size_t>((*file_filter)[i])]
                : coll->files[i];
        if (file.is_binary()) {
          // Pre-loaded internal-model document: deserialize, then
          // navigate the path steps in memory (no JSON parsing).
          task_bytes[static_cast<size_t>(p)] += file.binary()->size();
          auto doc = DeserializeItem(*file.binary());
          if (!doc.ok()) {
            st = doc.status();
            break;
          }
          st = NavigateItemPath(*doc, node.scan.steps, 0,
                                [&](Item item) -> Status {
                                  JPAR_RETURN_NOT_OK(item_check());
                                  if (pipe != nullptr) {
                                    return pipe->PushItem(std::move(item));
                                  }
                                  return RunChain(node.ops, 0,
                                                  Tuple{std::move(item)},
                                                  &ctx, sink);
                                });
          if (!st.ok()) break;
          continue;
        }
        auto emit = [&](Item item) -> Status {
          JPAR_RETURN_NOT_OK(item_check());
          if (pipe != nullptr) return pipe->PushItem(std::move(item));
          return RunChain(node.ops, 0, Tuple{std::move(item)}, &ctx, sink);
        };
        const bool cacheable =
            (storage.tapes || storage.columns) && FileCacheable(file);
        // Columnar read: the cheapest access path — no JSON bytes
        // touched, just the shredded values for this projected path.
        // Strict scans refuse columns recorded with skipped records,
        // so the cold path can surface the file's parse error.
        if (cacheable && storage.columns) {
          std::shared_ptr<const ColumnData> col =
              StorageManager::Instance().GetColumn(file.path(),
                                                   scan_path_str, storage_cfg);
          if (col != nullptr &&
              (lenient_scan || col->skipped_records == 0)) {
            ++task_columns_read[static_cast<size_t>(p)];
            task_bytes[static_cast<size_t>(p)] += col->bytes;
            if (lenient_scan) {
              task_skipped[static_cast<size_t>(p)] += col->skipped_records;
            }
            // Stats tee on the columnar path too: the column replays
            // every item the building scan emitted, so the sample is
            // identical to a parsing scan's — except under zone
            // pruning, which drops blocks and would bias it (skipped).
            std::unique_ptr<PathStats> col_stats;
            FileSignature col_sig;
            if (stats_build && node.scan.zone_op == ZoneCompare::kNone &&
                StatsStore::Instance().Get(file.path(), scan_path_str,
                                           stats_cfg) == nullptr) {
              auto fresh = StatFileSignature(file.path());
              if (fresh.ok()) {
                col_sig = *fresh;
                col_stats = std::make_unique<PathStats>();
                col_stats->file_bytes = col_sig.size;
              }
            }
            auto col_emit = [&](Item item) -> Status {
              if (col_stats != nullptr) col_stats->Observe(item);
              return emit(std::move(item));
            };
            st = EmitColumn(*col, node.scan, col_emit,
                            &task_blocks_pruned[static_cast<size_t>(p)]);
            if (!st.ok()) break;
            if (col_stats != nullptr) {
              StatsStore::Instance().Put(file.path(), scan_path_str,
                                         *col_stats, col_sig, stats_cfg);
              ++task_stats_built[static_cast<size_t>(p)];
            }
            continue;
          }
        }
        // Tape-accelerated scan: cached file bytes + cached stage-1
        // index; stage 2 runs as usual. A storage failure (stat/read
        // race) degrades to the cold path below.
        std::shared_ptr<const std::string> text;
        std::shared_ptr<const StructuralIndex> tape;
        FileSignature sig;
        bool have_sig = false;
        if (cacheable && storage.tapes &&
            options_.scan_mode == ScanMode::kIndexed) {
          auto tape_result =
              StorageManager::Instance().AcquireTape(file.path(), storage_cfg);
          if (tape_result.ok()) {
            text = tape_result->text;
            tape = tape_result->index;
            sig = tape_result->signature;
            have_sig = true;
            if (tape_result->hit) {
              ++task_tape_hits[static_cast<size_t>(p)];
            } else {
              ++task_tape_builds[static_cast<size_t>(p)];
            }
          }
        }
        if (text == nullptr) {
          auto text_result = file.Load();
          if (!text_result.ok()) {
            st = text_result.status();
            break;
          }
          text = *text_result;
        }
        task_bytes[static_cast<size_t>(p)] += text->size();
        // First projecting scan of a cacheable file also shreds the
        // path into a column for later queries (tee on the emit path).
        std::unique_ptr<ColumnBuilder> builder;
        if (cacheable && storage.columns && have_sig) {
          builder = std::make_unique<ColumnBuilder>();
        }
        // Stats tee (DESIGN.md §15): the same parsing pass samples
        // PathStats for the planner, once per (file, path) and only
        // while no fresh sample exists.
        std::unique_ptr<PathStats> stats_builder;
        FileSignature stats_sig = sig;
        if (stats_build && FileCacheable(file)) {
          bool have_stats_sig = have_sig;
          if (!have_stats_sig) {
            auto fresh = StatFileSignature(file.path());
            if (fresh.ok()) {
              stats_sig = *fresh;
              have_stats_sig = true;
            }
          }
          if (have_stats_sig &&
              StatsStore::Instance().Get(file.path(), scan_path_str,
                                         stats_cfg) == nullptr) {
            stats_builder = std::make_unique<PathStats>();
            stats_builder->file_bytes = stats_sig.size;
          }
        }
        ProjectionStats scan_pstats;
        uint64_t skipped_before = task_skipped[static_cast<size_t>(p)];
        // Collection files are document streams: one document or many
        // (NDJSON / concatenated JSON). In lenient mode malformed
        // records are skipped and counted instead of failing the scan.
        st = ProjectJsonStreamWithIndex(
            *text, node.scan.steps, tape.get(), 0,
            [&](Item item) -> Status {
              if (builder != nullptr) builder->Add(item);
              if (stats_builder != nullptr) stats_builder->Observe(item);
              return emit(std::move(item));
            },
            stats_builder != nullptr ? &scan_pstats : nullptr,
            lenient_scan ? &task_skipped[static_cast<size_t>(p)] : nullptr,
            options_.scan_mode);
        if (!st.ok()) break;
        if (builder != nullptr) {
          StorageManager::Instance().PutColumn(
              file.path(), scan_path_str,
              builder->Finish(task_skipped[static_cast<size_t>(p)] -
                              skipped_before),
              sig, storage_cfg);
        }
        if (stats_builder != nullptr) {
          stats_builder->documents = scan_pstats.documents;
          StatsStore::Instance().Put(file.path(), scan_path_str,
                                     *stats_builder, stats_sig, stats_cfg);
          ++task_stats_built[static_cast<size_t>(p)];
        }
      }
    } else if (st.ok() && leaf) {
      st = RunChain(node.ops, 0, Tuple{}, &ctx, sink);
    } else if (st.ok()) {
      uint64_t processed = 0;
      for (Tuple& t : input.parts[static_cast<size_t>(p)]) {
        if (++processed % kCheckIntervalTuples == 0) {
          st = Interrupted("pipeline");
          if (!st.ok()) break;
        }
        st = pipe != nullptr ? pipe->PushTuple(std::move(t))
                             : RunChain(node.ops, 0, std::move(t), &ctx, sink);
        if (!st.ok()) break;
      }
      input.parts[static_cast<size_t>(p)].clear();
    }
    if (st.ok() && pipe != nullptr) st = pipe->Finish();
    task_status[static_cast<size_t>(p)] = st;
    task_bytes[static_cast<size_t>(p)] += ctx.bytes_parsed;
    task_boundary_bytes[static_cast<size_t>(p)] = ctx.boundary_bytes;
    task_max_tuple[static_cast<size_t>(p)] = ctx.max_tuple_bytes;
    stage.partition_ms[static_cast<size_t>(p)] = ElapsedMs(start);
  };

  if (options_.use_threads && pcount > 1) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(pcount));
    for (int p = 0; p < pcount; ++p) threads.emplace_back(run_task, p);
    for (std::thread& t : threads) t.join();
  } else {
    for (int p = 0; p < pcount; ++p) run_task(p);
  }

  for (int p = 0; p < pcount; ++p) {
    JPAR_RETURN_NOT_OK(task_status[static_cast<size_t>(p)]);
    stats->bytes_scanned += task_bytes[static_cast<size_t>(p)];
    stats->items_scanned += task_items[static_cast<size_t>(p)];
    stats->skipped_records += task_skipped[static_cast<size_t>(p)];
    stats->batches_emitted += task_batches[static_cast<size_t>(p)];
    stats->tape_hits += task_tape_hits[static_cast<size_t>(p)];
    stats->tape_builds += task_tape_builds[static_cast<size_t>(p)];
    stats->columns_read += task_columns_read[static_cast<size_t>(p)];
    stats->blocks_pruned += task_blocks_pruned[static_cast<size_t>(p)];
    stats->stats_paths_built += task_stats_built[static_cast<size_t>(p)];
    stage.pipeline_bytes += task_boundary_bytes[static_cast<size_t>(p)];
    if (task_max_tuple[static_cast<size_t>(p)] > stage.max_tuple_bytes) {
      stage.max_tuple_bytes = task_max_tuple[static_cast<size_t>(p)];
    }
  }
  if (memory.peak_bytes() > stats->peak_retained_bytes) {
    stats->peak_retained_bytes = memory.peak_bytes();
  }
  stats->Merge(stage);
  return output;
}

Result<Executor::PartitionSet> Executor::ExecDataScanMorsels(
    const PNode& node, const Collection& coll,
    const std::vector<int>* file_filter, int pcount,
    ExecStats* stats) const {
  const bool lenient =
      options_.on_parse_error == ParseErrorPolicy::kSkipAndCount;

  // One unit of scan work: a byte range of a loaded file (binary files
  // are always a single morsel). Partition assignment follows the
  // file's round-robin slot so output ordering matches the sequential
  // scan exactly.
  struct Morsel {
    int partition = 0;
    const JsonFile* binary = nullptr;          // binary-item files
    std::shared_ptr<const std::string> text;   // null for binary files
    size_t begin = 0;
    size_t end = 0;
    bool split_file = false;  // file produced more than one morsel
    // Warm-storage access path (DESIGN.md §14). A columnar-served file
    // is one task with `column` set; a tape-accelerated file's morsels
    // share the whole-file `tape` (indexed at absolute offsets, so
    // `begin` doubles as the index origin). An unsplit cacheable file
    // with `build_column` learns its column during the scan.
    std::shared_ptr<const ColumnData> column;
    std::shared_ptr<const StructuralIndex> tape;
    const JsonFile* file = nullptr;
    FileSignature sig;
    bool build_column = false;
    // Stats tee (DESIGN.md §15): split files still sample — per-morsel
    // partials merge in task order after the join, unlike columns.
    bool build_stats = false;
    FileSignature stats_sig;
  };
  // Private per-morsel result slot; nothing is shared between workers
  // until the post-join merge.
  struct Slot {
    Status status;
    std::vector<Tuple> out;
    uint64_t bytes = 0;
    uint64_t items = 0;
    uint64_t boundary_bytes = 0;
    uint64_t max_tuple = 0;
    uint64_t skipped = 0;
    uint64_t batches = 0;
    uint64_t blocks_pruned = 0;
    bool ran = false;
    PathStats path_stats;
    bool built_stats = false;
  };

  // Warm-storage access-path selection runs here on the coordinator
  // (tape acquisition and column lookup are serialized, never raced by
  // the worker pool); workers only consume the resulting shared_ptrs.
  // The plan's cost-model access hint narrows, never widens, what the
  // options allow (DESIGN.md §15).
  const StoragePolicy storage =
      ApplyAccessHint(ResolveStoragePolicy(options_), node.scan.access_hint);
  const StorageConfig storage_cfg{options_.storage_budget_bytes,
                                  options_.storage_cache_dir};
  const std::string scan_path_str = PathToString(node.scan.steps);
  const bool stats_build = StatsBuildEnabled(options_);
  const StatsConfig stats_cfg = ResolveStatsConfig(options_);
  // Cost-model morsel sizing applies only while the user left
  // morsel_bytes at its default — an explicit knob always wins.
  size_t morsel_bytes = options_.morsel_bytes;
  if (node.scan.morsel_bytes_hint > 0 &&
      morsel_bytes == ExecOptions::kDefaultMorselBytes) {
    morsel_bytes = node.scan.morsel_bytes_hint;
  }

  size_t file_count =
      file_filter != nullptr ? file_filter->size() : coll.files.size();
  std::vector<Morsel> tasks;
  std::vector<size_t> file_first_task(file_count, 0);
  std::vector<size_t> file_task_count(file_count, 0);
  for (size_t i = 0; i < file_count; ++i) {
    JPAR_RETURN_NOT_OK(Interrupted("pipeline scan"));
    JPAR_RETURN_NOT_OK(Fault(FaultInjector::kScanIOError));
    const JsonFile& file =
        file_filter != nullptr
            ? coll.files[static_cast<size_t>((*file_filter)[i])]
            : coll.files[i];
    file_first_task[i] = tasks.size();
    Morsel m;
    m.partition = static_cast<int>(i % static_cast<size_t>(pcount));
    const bool cacheable =
        (storage.tapes || storage.columns) && FileCacheable(file);
    if (file.is_binary()) {
      m.binary = &file;
      tasks.push_back(m);
    } else if (std::shared_ptr<const ColumnData> col =
                   cacheable && storage.columns
                       ? StorageManager::Instance().GetColumn(
                             file.path(), scan_path_str, storage_cfg)
                       : nullptr;
               col != nullptr && (lenient || col->skipped_records == 0)) {
      // Columnar-served file: one task, no JSON bytes, no splitting.
      m.column = std::move(col);
      m.file = &file;
      // Columnar scans sample stats too (same tee as the sequential
      // path); zone pruning drops blocks and would bias the sample, so
      // pruned reads don't.
      if (stats_build && node.scan.zone_op == ZoneCompare::kNone &&
          FileCacheable(file) &&
          StatsStore::Instance().Get(file.path(), scan_path_str,
                                     stats_cfg) == nullptr) {
        auto fresh = StatFileSignature(file.path());
        if (fresh.ok()) {
          m.stats_sig = *fresh;
          m.build_stats = true;
        }
      }
      ++stats->columns_read;
      tasks.push_back(m);
    } else {
      m.file = &file;
      bool have_sig = false;
      if (cacheable && storage.tapes &&
          options_.scan_mode == ScanMode::kIndexed) {
        auto tape_result =
            StorageManager::Instance().AcquireTape(file.path(), storage_cfg);
        if (tape_result.ok()) {
          m.text = tape_result->text;
          m.tape = tape_result->index;
          m.sig = tape_result->signature;
          have_sig = true;
          if (tape_result->hit) {
            ++stats->tape_hits;
          } else {
            ++stats->tape_builds;
          }
        }
      }
      if (m.text == nullptr) {
        JPAR_ASSIGN_OR_RETURN(m.text, file.Load());
      }
      // Unsplit cacheable files learn their column during this scan;
      // split files don't (per-morsel fragments are not a whole column).
      m.build_column = cacheable && storage.columns && have_sig;
      if (stats_build && FileCacheable(file)) {
        bool have_stats_sig = have_sig;
        m.stats_sig = m.sig;
        if (!have_stats_sig) {
          auto fresh = StatFileSignature(file.path());
          if (fresh.ok()) {
            m.stats_sig = *fresh;
            have_stats_sig = true;
          }
        }
        m.build_stats =
            have_stats_sig &&
            StatsStore::Instance().Get(file.path(), scan_path_str,
                                       stats_cfg) == nullptr;
      }
      // A kColumnar access hint pins a column-learnable file to a
      // single morsel so the column actually materializes this scan
      // (split morsels can't build columns); morsel boundaries never
      // change results, only scheduling, so the trade is pure
      // investment.
      const bool invest_columnar =
          m.build_column && node.scan.access_hint == AccessHint::kColumnar;
      const char* base = m.text->data();
      size_t n = m.text->size();
      size_t begin = 0;
      do {
        Morsel part = m;
        part.begin = begin;
        size_t end = n;
        if (!invest_columnar && morsel_bytes > 0 &&
            begin + morsel_bytes < n) {
          // Newline-aligned split: end after the first '\n' at or past
          // the size target (same raw-byte newlines the degraded scan
          // resyncs on).
          size_t target = begin + morsel_bytes - 1;
          const void* nl = std::memchr(base + target, '\n', n - target);
          end = nl == nullptr
                    ? n
                    : static_cast<size_t>(static_cast<const char*>(nl) -
                                          base) +
                          1;
        }
        part.end = end;
        tasks.push_back(part);
        begin = end;
      } while (begin < n);
    }
    file_task_count[i] = tasks.size() - file_first_task[i];
    if (file_task_count[i] > 1) {
      for (size_t t = file_first_task[i]; t < tasks.size(); ++t) {
        tasks[t].split_file = true;
        tasks[t].build_column = false;
      }
    }
  }

  MemoryTracker memory(options_.memory_limit_bytes,
                       options_.spill == SpillMode::kEnabled);
  StageStats stage;
  stage.name = node.scan.ToString();
  int workers = pcount;
  if (!tasks.empty() && workers > static_cast<int>(tasks.size())) {
    workers = static_cast<int>(tasks.size());
  }
  if (workers < 1) workers = 1;
  stage.partition_ms.assign(static_cast<size_t>(workers), 0.0);

  std::vector<Slot> slots(tasks.size());
  std::vector<Status> worker_status(static_cast<size_t>(workers));
  std::atomic<size_t> next_task{0};
  std::atomic<bool> abort{false};

  const bool batch_mode = UseBatchMode();
  auto run_morsel = [&](const Morsel& m, Slot* slot) {
    slot->ran = true;
    Status st = Interrupted("pipeline scan");
    if (st.ok()) {
      EvalContext ctx;
      ctx.catalog = catalog_;
      ctx.memory = &memory;
      ctx.charge_boundaries = !batch_mode;
      TupleSink sink = [slot](Tuple t) -> Status {
        slot->out.push_back(std::move(t));
        return Status::OK();
      };
      std::unique_ptr<BatchPipe> pipe;
      if (batch_mode) {
        pipe = std::make_unique<BatchPipe>(
            &node.ops, &ctx, options_.batch_size,
            [this]() { return Interrupted("pipeline"); }, &slot->out,
            &slot->batches);
      }
      auto emit = [&](Item item) -> Status {
        if (++slot->items % kCheckIntervalTuples == 0) {
          JPAR_RETURN_NOT_OK(Interrupted("pipeline"));
        }
        if (pipe != nullptr) return pipe->PushItem(std::move(item));
        return RunChain(node.ops, 0, Tuple{std::move(item)}, &ctx, sink);
      };
      if (m.binary != nullptr) {
        slot->bytes += m.binary->binary()->size();
        auto doc = DeserializeItem(*m.binary->binary());
        st = doc.ok() ? NavigateItemPath(*doc, node.scan.steps, 0, emit)
                      : doc.status();
      } else if (m.column != nullptr) {
        // Columnar read: emit the cached values; zone maps prune whole
        // blocks against the scan's annotated SELECT predicate.
        slot->bytes += m.column->bytes;
        if (lenient) slot->skipped += m.column->skipped_records;
        std::function<Status(Item)> col_emit = emit;
        if (m.build_stats) {
          col_emit = [&](Item item) -> Status {
            slot->path_stats.Observe(item);
            return emit(std::move(item));
          };
        }
        st = EmitColumn(*m.column, node.scan, col_emit,
                        &slot->blocks_pruned);
        if (st.ok() && m.build_stats) slot->built_stats = true;
      } else {
        std::string_view view(*m.text);
        view = view.substr(m.begin, m.end - m.begin);
        slot->bytes += view.size();
        // With a cached tape, the whole-file index serves this morsel
        // at absolute offsets (index origin = m.begin); without one,
        // stage 1 is built over just this sub-view as before.
        std::unique_ptr<ColumnBuilder> builder;
        if (m.build_column) builder = std::make_unique<ColumnBuilder>();
        std::function<Status(Item)> scan_emit = emit;
        if (builder != nullptr || m.build_stats) {
          scan_emit = [&](Item item) -> Status {
            if (builder != nullptr) builder->Add(item);
            if (m.build_stats) slot->path_stats.Observe(item);
            return emit(std::move(item));
          };
        }
        ProjectionStats scan_pstats;
        st = ProjectJsonStreamWithIndex(view, node.scan.steps, m.tape.get(),
                                        m.begin, scan_emit,
                                        m.build_stats ? &scan_pstats : nullptr,
                                        lenient ? &slot->skipped : nullptr,
                                        options_.scan_mode);
        if (st.ok() && builder != nullptr) {
          StorageManager::Instance().PutColumn(
              m.file->path(), scan_path_str, builder->Finish(slot->skipped),
              m.sig, storage_cfg);
        }
        if (st.ok() && m.build_stats) {
          slot->path_stats.documents = scan_pstats.documents;
          slot->built_stats = true;
        }
      }
      if (st.ok() && pipe != nullptr) st = pipe->Finish();
      slot->bytes += ctx.bytes_parsed;
      slot->boundary_bytes = ctx.boundary_bytes;
      slot->max_tuple = ctx.max_tuple_bytes;
    }
    slot->status = st;
  };

  auto worker = [&](int w) {
    auto start = Clock::now();
    Status st = Fault(FaultInjector::kWorkerStall);
    if (!st.ok()) {
      worker_status[static_cast<size_t>(w)] = st;
      abort.store(true, std::memory_order_relaxed);
    } else {
      while (!abort.load(std::memory_order_relaxed)) {
        size_t t = next_task.fetch_add(1, std::memory_order_relaxed);
        if (t >= tasks.size()) break;
        Slot& slot = slots[t];
        run_morsel(tasks[t], &slot);
        if (!slot.status.ok() &&
            !(slot.status.code() == StatusCode::kParseError &&
              tasks[t].split_file && !lenient)) {
          // Unrecoverable (cancel, deadline, fault, real parse error of
          // an unsplit file): stop handing out work. Split-file parse
          // errors are handled by the whole-file fallback below.
          abort.store(true, std::memory_order_relaxed);
        }
      }
    }
    stage.partition_ms[static_cast<size_t>(w)] = ElapsedMs(start);
  };

  if (workers > 1) {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker, w);
    for (std::thread& t : threads) t.join();
  } else {
    worker(0);
  }

  // Strict-mode whole-file fallback. A record spanning a morsel
  // boundary (a document with newlines inside tokens or strings) always
  // makes some morsel fail to parse — no JSON value can end cleanly at
  // a mid-record newline — so rescanning the file as one task restores
  // exact sequential semantics. Genuinely malformed files fail with the
  // same error either way, at the cost of one wasted scan.
  if (!lenient) {
    for (size_t i = 0; i < file_count; ++i) {
      if (file_task_count[i] <= 1) continue;
      size_t first = file_first_task[i];
      size_t end = first + file_task_count[i];
      bool parse_failed = false;
      for (size_t t = first; t < end; ++t) {
        if (slots[t].ran &&
            slots[t].status.code() == StatusCode::kParseError) {
          parse_failed = true;
          break;
        }
      }
      if (!parse_failed) continue;
      for (size_t t = first; t < end; ++t) slots[t] = Slot{};
      Morsel whole = tasks[first];
      whole.begin = 0;
      whole.end = whole.text->size();
      whole.split_file = false;
      run_morsel(whole, &slots[first]);
    }
  }

  for (int w = 0; w < workers; ++w) {
    JPAR_RETURN_NOT_OK(worker_status[static_cast<size_t>(w)]);
  }
  for (const Slot& slot : slots) {
    JPAR_RETURN_NOT_OK(slot.status);
  }

  // Install sampled stats: per-morsel partials merge in task order into
  // one whole-file sample (the register-max sketch merge makes the
  // result independent of which worker ran which morsel). After a
  // strict-mode fallback only the whole-file slot carries a sample.
  for (size_t i = 0; i < file_count; ++i) {
    size_t first = file_first_task[i];
    size_t endt = first + file_task_count[i];
    if (endt <= first || !tasks[first].build_stats) continue;
    PathStats merged;
    bool any = false;
    for (size_t t = first; t < endt; ++t) {
      if (!slots[t].built_stats) continue;
      merged.MergeFrom(slots[t].path_stats);
      any = true;
    }
    if (!any) continue;
    merged.file_bytes = tasks[first].stats_sig.size;
    StatsStore::Instance().Put(tasks[first].file->path(), scan_path_str,
                               merged, tasks[first].stats_sig, stats_cfg);
    ++stats->stats_paths_built;
  }

  PartitionSet output;
  output.parts.assign(static_cast<size_t>(pcount), {});
  for (size_t t = 0; t < tasks.size(); ++t) {
    Slot& slot = slots[t];
    std::vector<Tuple>& out =
        output.parts[static_cast<size_t>(tasks[t].partition)];
    if (out.empty()) {
      out = std::move(slot.out);
    } else {
      out.insert(out.end(), std::make_move_iterator(slot.out.begin()),
                 std::make_move_iterator(slot.out.end()));
    }
    stats->bytes_scanned += slot.bytes;
    stats->items_scanned += slot.items;
    stats->skipped_records += slot.skipped;
    stats->batches_emitted += slot.batches;
    stats->blocks_pruned += slot.blocks_pruned;
    if (slot.ran) ++stats->morsels_scanned;
    stage.pipeline_bytes += slot.boundary_bytes;
    if (slot.max_tuple > stage.max_tuple_bytes) {
      stage.max_tuple_bytes = slot.max_tuple;
    }
  }
  if (memory.peak_bytes() > stats->peak_retained_bytes) {
    stats->peak_retained_bytes = memory.peak_bytes();
  }
  stats->Merge(stage);
  return output;
}

Result<Executor::PartitionSet> Executor::Exchange(
    const PartitionSet& input, const std::vector<ScalarEvalPtr>& key_evals,
    StageStats* stage, ExecStats* stats) const {
  int pcount = options_.partitions;
  if (pcount < 1) pcount = 1;
  auto start = Clock::now();

  EvalContext ctx;
  ctx.catalog = catalog_;

  // Serialize into per-(source, destination) frame streams.
  std::vector<std::vector<FrameBuilder>> builders;
  builders.reserve(input.parts.size());
  for (size_t src = 0; src < input.parts.size(); ++src) {
    builders.emplace_back();
    for (int dst = 0; dst < pcount; ++dst) {
      builders[src].emplace_back(options_.frame_bytes);
    }
  }

  // Sender side: each source partition encodes and routes its tuples
  // (parallel tasks in a real cluster; timed per source here).
  std::hash<std::string> hasher;
  std::string encoded;
  std::vector<double> src_ms(input.parts.size(), 0.0);
  for (size_t src = 0; src < input.parts.size(); ++src) {
    JPAR_RETURN_NOT_OK(Interrupted("exchange"));
    auto src_start = Clock::now();
    for (const Tuple& tuple : input.parts[src]) {
      JPAR_RETURN_NOT_OK(
          EncodeKey(key_evals, tuple, &ctx, &encoded, nullptr));
      size_t dst = hasher(encoded) % static_cast<size_t>(pcount);
      builders[src][dst].Append(tuple);
    }
    src_ms[src] = ElapsedMs(src_start);
  }

  // Route frames, tallying bytes and modeled network time for frames
  // that cross node boundaries; receiver side decodes per destination.
  PartitionSet output;
  output.parts.assign(static_cast<size_t>(pcount), {});
  uint64_t cross_bytes = 0;
  uint64_t critical_stream_frames = 0;  // frames on the slowest stream
  std::vector<double> dst_ms(static_cast<size_t>(pcount), 0.0);
  for (size_t src = 0; src < builders.size(); ++src) {
    JPAR_RETURN_NOT_OK(Interrupted("exchange"));
    for (int dst = 0; dst < pcount; ++dst) {
      // Each (src, dst) frame stream is one network transfer in the
      // modeled cluster — the natural place to lose frames.
      JPAR_RETURN_NOT_OK(Fault(FaultInjector::kExchangeFrameDrop));
      FrameBuilder& b = builders[src][static_cast<size_t>(dst)];
      stage->exchange_bytes += b.total_bytes();
      stage->exchange_tuples += b.tuple_count();
      stage->oversized_frames += b.oversized_frames();
      if (b.max_tuple_bytes() > stage->max_tuple_bytes) {
        stage->max_tuple_bytes = b.max_tuple_bytes();
      }
      std::vector<Frame> frames = b.Finish();
      stage->exchange_frames += frames.size();
      if (NodeOfPartition(static_cast<int>(src)) != NodeOfPartition(dst)) {
        for (const Frame& f : frames) cross_bytes += f.bytes.size();
        if (frames.size() > critical_stream_frames) {
          critical_stream_frames = frames.size();
        }
      }
      auto dst_start = Clock::now();
      FrameReader reader(frames);
      Tuple t;
      while (true) {
        JPAR_ASSIGN_OR_RETURN(bool more, reader.Next(&t));
        if (!more) break;
        output.parts[static_cast<size_t>(dst)].push_back(std::move(t));
        t = Tuple();
      }
      dst_ms[static_cast<size_t>(dst)] += ElapsedMs(dst_start);
    }
  }
  stage->exchange_task_ms.push_back(std::move(src_ms));
  stage->exchange_task_ms.push_back(std::move(dst_ms));

  stage->exchange_ms += ElapsedMs(start);
  // All point-to-point streams transfer concurrently: bandwidth is
  // charged on the total cross-node volume, latency only on the
  // longest single stream.
  double gbps = options_.network_gbps > 0 ? options_.network_gbps : 1.0;
  double net_ms = static_cast<double>(cross_bytes) * 8.0 / (gbps * 1e6) +
                  static_cast<double>(critical_stream_frames) *
                      options_.network_latency_ms_per_frame;
  stage->network_ms += net_ms;
  stats->network_ms += net_ms;
  return output;
}

Result<Executor::PartitionSet> Executor::ExecGroupBy(
    const PNode& node, ExecStats* stats) const {
  JPAR_ASSIGN_OR_RETURN(PartitionSet input, Exec(*node.input, stats));

  const bool spilling = options_.spill == SpillMode::kEnabled;
  MemoryTracker memory(options_.memory_limit_bytes, spilling);
  std::unique_ptr<SpillManager> spill_mgr;
  if (spilling) {
    JPAR_ASSIGN_OR_RETURN(spill_mgr,
                          SpillManager::Create(options_.spill_dir, ctx_));
  }
  uint64_t merge_passes = 0;
  size_t nkeys = node.keys.size();

  bool can_two_step = GroupByUsesTwoStep(node);

  // ---- Optional local pre-aggregation stage -------------------------
  if (can_two_step) {
    StageStats local_stage;
    local_stage.name = "group-by (local)";
    local_stage.partition_ms.assign(input.parts.size(), 0.0);
    PartitionSet partials;
    partials.parts.assign(input.parts.size(), {});
    for (size_t p = 0; p < input.parts.size(); ++p) {
      auto start = Clock::now();
      EvalContext ctx;
      ctx.catalog = catalog_;
      ctx.memory = &memory;
      // Pre-spilling semantics kept exactly when disabled: the local
      // stage never tracked aggregate growth (incremental partials are
      // O(1)); with spilling on, growth counts against the budget too.
      SpillableGroupTable table(node.aggs, AggStep::kLocal, &memory,
                                /*track_growth=*/spilling, ctx_,
                                spill_mgr.get(), EffectiveSpillFanout(node),
                                memory.ShareOf(input.parts.size()),
                                &merge_passes);
      std::string encoded;
      Tuple key_items;
      uint64_t processed = 0;
      for (const Tuple& tuple : input.parts[p]) {
        if (++processed % kCheckIntervalTuples == 0) {
          JPAR_RETURN_NOT_OK(Interrupted("group-by build"));
        }
        JPAR_RETURN_NOT_OK(
            EncodeKey(node.keys, tuple, &ctx, &encoded, &key_items));
        JPAR_RETURN_NOT_OK(
            table.Add(encoded, key_items, [&](size_t i) -> Result<Item> {
              return node.aggs[i].arg->Eval(tuple, &ctx);
            }));
      }
      input.parts[p].clear();
      JPAR_RETURN_NOT_OK(table.Emit(&partials.parts[p]));
      memory.Release(memory.current_bytes());
      local_stage.partition_ms[p] = ElapsedMs(start);
    }
    stats->Merge(local_stage);
    input = std::move(partials);
  }

  // ---- Exchange by key ----------------------------------------------
  StageStats global_stage;
  global_stage.name =
      can_two_step ? "group-by (global merge)" : "group-by (hash)";
  // After local pre-aggregation the key occupies columns [0, nkeys).
  std::vector<ScalarEvalPtr> exchange_keys;
  if (can_two_step) {
    for (size_t i = 0; i < nkeys; ++i) {
      exchange_keys.push_back(MakeColumnEval(static_cast<int>(i)));
    }
  } else {
    exchange_keys = node.keys;
  }
  JPAR_ASSIGN_OR_RETURN(
      PartitionSet exchanged,
      Exchange(input, exchange_keys, &global_stage, stats));
  input.parts.clear();

  // ---- Global aggregation --------------------------------------------
  global_stage.partition_ms.assign(exchanged.parts.size(), 0.0);
  PartitionSet output;
  output.parts.assign(exchanged.parts.size(), {});
  for (size_t p = 0; p < exchanged.parts.size(); ++p) {
    auto start = Clock::now();
    EvalContext ctx;
    ctx.catalog = catalog_;
    ctx.memory = &memory;
    AggStep step = can_two_step ? AggStep::kGlobal : AggStep::kComplete;
    SpillableGroupTable table(node.aggs, step, &memory,
                              /*track_growth=*/true, ctx_, spill_mgr.get(),
                              EffectiveSpillFanout(node),
                              memory.ShareOf(exchanged.parts.size()),
                              &merge_passes);
    std::string encoded;
    Tuple key_items;
    uint64_t processed = 0;
    for (const Tuple& tuple : exchanged.parts[p]) {
      if (++processed % kCheckIntervalTuples == 0) {
        JPAR_RETURN_NOT_OK(Interrupted("group-by build"));
      }
      JPAR_RETURN_NOT_OK(
          EncodeKey(exchange_keys, tuple, &ctx, &encoded, &key_items));
      JPAR_RETURN_NOT_OK(
          table.Add(encoded, key_items, [&](size_t i) -> Result<Item> {
            if (can_two_step) {
              // Partial for agg i sits right after the key columns.
              return tuple[nkeys + i];
            }
            return node.aggs[i].arg->Eval(tuple, &ctx);
          }));
    }
    exchanged.parts[p].clear();
    JPAR_RETURN_NOT_OK(table.Emit(&output.parts[p]));
    // The hard-limit mode deliberately never releases between global
    // partitions (it emulates all partitions resident at once, which is
    // what Table 3 measures); the budgeted mode governs each partition
    // task, so its memory returns as soon as the task emits.
    if (spilling) memory.Release(memory.current_bytes());
    global_stage.partition_ms[p] = ElapsedMs(start);
  }
  if (memory.peak_bytes() > stats->peak_retained_bytes) {
    stats->peak_retained_bytes = memory.peak_bytes();
  }
  if (spill_mgr != nullptr) {
    stats->spill_runs += spill_mgr->runs_created();
    stats->spill_bytes_written += spill_mgr->bytes_written();
    stats->spill_merge_passes += merge_passes;
  }
  stats->Merge(global_stage);
  return output;
}

Status Executor::JoinOnePartition(const PNode& node,
                                  const std::vector<Tuple>& left,
                                  const std::vector<Tuple>& right,
                                  EvalContext* ctx, MemoryTracker* memory,
                                  std::vector<Tuple>* out) const {
  std::unordered_map<std::string, std::vector<size_t>> table;
  std::string encoded;
  // Cost-model flip (DESIGN.md §15): hash the estimated-smaller side.
  // Output order must not depend on the choice — see the index-pair
  // sort below — because distributed workers may compile the same
  // query against different stats.
  const bool build_left = node.build_left;
  const std::vector<Tuple>& build = build_left ? left : right;
  const std::vector<ScalarEvalPtr>& build_keys =
      build_left ? node.left_keys : node.right_keys;
  for (size_t i = 0; i < build.size(); ++i) {
    if ((i + 1) % kCheckIntervalTuples == 0) {
      JPAR_RETURN_NOT_OK(Interrupted("join build"));
    }
    JPAR_RETURN_NOT_OK(EncodeKey(build_keys, build[i], ctx, &encoded,
                                 nullptr));
    table[encoded].push_back(i);
    JPAR_RETURN_NOT_OK(Fault(FaultInjector::kAllocFail));
    JPAR_RETURN_NOT_OK(
        memory->Allocate(TupleSizeBytes(build[i]) + encoded.size()));
  }
  auto emit = [&](const Tuple& l, const Tuple& r) -> Status {
    Tuple joined = l;
    joined.insert(joined.end(), r.begin(), r.end());
    if (node.residual != nullptr) {
      JPAR_ASSIGN_OR_RETURN(Item cond, node.residual->Eval(joined, ctx));
      JPAR_ASSIGN_OR_RETURN(bool keep, cond.EffectiveBooleanValue());
      if (!keep) return Status::OK();
    }
    out->push_back(std::move(joined));
    return Status::OK();
  };
  uint64_t probed = 0;
  if (!build_left) {
    // Canonical: probe with the left side, in order.
    for (const Tuple& probe : left) {
      if (++probed % kCheckIntervalTuples == 0) {
        JPAR_RETURN_NOT_OK(Interrupted("join probe"));
      }
      JPAR_RETURN_NOT_OK(
          EncodeKey(node.left_keys, probe, ctx, &encoded, nullptr));
      auto it = table.find(encoded);
      if (it == table.end()) continue;
      for (size_t i : it->second) {
        JPAR_RETURN_NOT_OK(emit(probe, right[i]));
      }
    }
    return Status::OK();
  }
  // Flipped build: probe with the right side collecting (left, right)
  // index pairs, then sort them. The canonical loop emits pairs in
  // lexicographic (left index, right index) order — bucket vectors hold
  // ascending indices — so the sorted pairs materialize the exact same
  // output sequence with the hash table on the smaller side.
  std::vector<std::pair<size_t, size_t>> matches;
  for (size_t r = 0; r < right.size(); ++r) {
    if (++probed % kCheckIntervalTuples == 0) {
      JPAR_RETURN_NOT_OK(Interrupted("join probe"));
    }
    JPAR_RETURN_NOT_OK(
        EncodeKey(node.right_keys, right[r], ctx, &encoded, nullptr));
    auto it = table.find(encoded);
    if (it == table.end()) continue;
    for (size_t l : it->second) matches.emplace_back(l, r);
  }
  std::sort(matches.begin(), matches.end());
  uint64_t emitted = 0;
  for (const auto& [l, r] : matches) {
    if (++emitted % kCheckIntervalTuples == 0) {
      JPAR_RETURN_NOT_OK(Interrupted("join emit"));
    }
    JPAR_RETURN_NOT_OK(emit(left[l], right[r]));
  }
  return Status::OK();
}

Result<Executor::PartitionSet> Executor::ExecJoin(const PNode& node,
                                                  ExecStats* stats) const {
  JPAR_ASSIGN_OR_RETURN(PartitionSet left, Exec(*node.left, stats));
  JPAR_ASSIGN_OR_RETURN(PartitionSet right, Exec(*node.right, stats));

  StageStats stage;
  stage.name = "hash-join";
  JPAR_ASSIGN_OR_RETURN(PartitionSet left_ex,
                        Exchange(left, node.left_keys, &stage, stats));
  left.parts.clear();
  JPAR_ASSIGN_OR_RETURN(PartitionSet right_ex,
                        Exchange(right, node.right_keys, &stage, stats));
  right.parts.clear();

  // Hash joins cannot spill yet; with spilling enabled the build side
  // overruns the budget softly instead of failing the query
  // (DESIGN.md §10 lists spillable joins as future work).
  MemoryTracker memory(options_.memory_limit_bytes,
                       options_.spill == SpillMode::kEnabled);
  size_t nkeys = node.left_keys.size();
  // Keys were evaluated against pre-exchange column positions; the
  // exchanged tuples preserve layout, so re-evaluate the same evals.
  stage.partition_ms.assign(left_ex.parts.size(), 0.0);
  PartitionSet output;
  output.parts.assign(left_ex.parts.size(), {});
  (void)nkeys;
  for (size_t p = 0; p < left_ex.parts.size(); ++p) {
    auto start = Clock::now();
    EvalContext ctx;
    ctx.catalog = catalog_;
    ctx.memory = &memory;
    JPAR_RETURN_NOT_OK(JoinOnePartition(node, left_ex.parts[p],
                                        right_ex.parts[p], &ctx, &memory,
                                        &output.parts[p]));
    memory.Release(memory.current_bytes());
    stage.partition_ms[p] = ElapsedMs(start);
  }
  if (memory.peak_bytes() > stats->peak_retained_bytes) {
    stats->peak_retained_bytes = memory.peak_bytes();
  }
  stats->Merge(stage);
  return output;
}

Result<Executor::PartitionSet> Executor::ExecSort(const PNode& node,
                                                  ExecStats* stats) const {
  JPAR_ASSIGN_OR_RETURN(PartitionSet input, Exec(*node.input, stats));

  StageStats stage;
  stage.name = "sort";
  stage.partition_ms.assign(input.parts.size(), 0.0);

  EvalContext ctx;
  ctx.catalog = catalog_;

  // Memory governance (DESIGN.md §10): when spilling is enabled each
  // partition tracks its keyed rows against its budget share and, on
  // overflow, stable-sorts what it holds and writes it out as one
  // sorted run. The global merge then reads runs and the in-memory
  // remainders as ordered sources; because runs are emitted in input
  // order and the merge takes the *first* strictly-smaller source, the
  // output is byte-identical to the in-memory stable sort. When
  // disabled, sort is untracked, exactly as before.
  const bool spilling = options_.spill == SpillMode::kEnabled &&
                        options_.memory_limit_bytes > 0;
  MemoryTracker memory(options_.memory_limit_bytes, /*soft=*/true);
  std::unique_ptr<SpillManager> spill_mgr;
  if (options_.spill == SpillMode::kEnabled) {
    JPAR_ASSIGN_OR_RETURN(spill_mgr,
                          SpillManager::Create(options_.spill_dir, ctx_));
  }
  const uint64_t budget = memory.ShareOf(input.parts.size());

  // Local phase: evaluate keys and sort each partition.
  struct Keyed {
    Tuple keys;
    Tuple row;
  };
  // Validated kind class per key column ('n'umeric, or the ItemKind).
  auto kind_class = [](const Item& item) -> int {
    if (item.is_numeric()) return -1;
    return static_cast<int>(item.kind());
  };
  std::vector<int> key_classes(node.sort_keys.size(), INT_MIN);
  auto compare = [&](const Keyed& a, const Keyed& b) {
    for (size_t i = 0; i < a.keys.size(); ++i) {
      bool ea = a.keys[i].SequenceLength() == 0;
      bool eb = b.keys[i].SequenceLength() == 0;
      int c;
      if (ea || eb) {
        c = static_cast<int>(eb) - static_cast<int>(ea);  // empty first
      } else {
        c = a.keys[i].Compare(b.keys[i]).ValueOrDie();
      }
      if (i < node.sort_descending.size() && node.sort_descending[i]) {
        c = -c;
      }
      if (c != 0) return c < 0;
    }
    return false;
  };

  std::vector<std::vector<Keyed>> sorted(input.parts.size());
  // Sorted run files per partition, in the order they were written.
  std::vector<std::vector<std::string>> run_paths(input.parts.size());
  std::string record;
  auto spill_rows = [&](std::vector<Keyed>* rows,
                        std::vector<std::string>* paths,
                        uint64_t* charged) -> Status {
    std::stable_sort(rows->begin(), rows->end(), compare);
    JPAR_ASSIGN_OR_RETURN(std::unique_ptr<SpillRunWriter> writer,
                          spill_mgr->NewRun());
    uint64_t n = 0;
    for (const Keyed& k : *rows) {
      if (++n % kCheckIntervalTuples == 0) {
        JPAR_RETURN_NOT_OK(Interrupted("sort spill"));
      }
      record.clear();
      EncodeTupleTo(k.keys, &record);
      EncodeTupleTo(k.row, &record);
      JPAR_RETURN_NOT_OK(writer->Append(record));
    }
    JPAR_RETURN_NOT_OK(writer->Finish());
    paths->push_back(writer->path());
    rows->clear();
    memory.Release(*charged);
    *charged = 0;
    return Status::OK();
  };

  for (size_t p = 0; p < input.parts.size(); ++p) {
    JPAR_RETURN_NOT_OK(Interrupted("sort"));
    auto start = Clock::now();
    std::vector<Keyed>& rows = sorted[p];
    uint64_t keyed_rows = 0;
    uint64_t charged = 0;
    for (Tuple& t : input.parts[p]) {
      if (++keyed_rows % kCheckIntervalTuples == 0) {
        JPAR_RETURN_NOT_OK(Interrupted("sort"));
      }
      Keyed k;
      for (const ScalarEvalPtr& key : node.sort_keys) {
        JPAR_ASSIGN_OR_RETURN(Item v, key->Eval(t, &ctx));
        k.keys.push_back(std::move(v));
      }
      // Validate comparability up front so the sort comparator cannot
      // fail (empty sequences sort first and skip validation).
      for (size_t i = 0; i < k.keys.size(); ++i) {
        if (k.keys[i].SequenceLength() == 0) continue;
        int cls = kind_class(k.keys[i]);
        if (key_classes[i] == INT_MIN) {
          key_classes[i] = cls;
        } else if (key_classes[i] != cls) {
          return Status::TypeError(
              "order by key mixes incomparable types");
        }
      }
      k.row = std::move(t);
      if (spilling) {
        uint64_t bytes = TupleSizeBytes(k.keys) + TupleSizeBytes(k.row);
        JPAR_RETURN_NOT_OK(memory.Allocate(bytes));
        charged += bytes;
      }
      rows.push_back(std::move(k));
      if (spilling && charged > budget) {
        JPAR_RETURN_NOT_OK(spill_rows(&rows, &run_paths[p], &charged));
      }
    }
    input.parts[p].clear();
    std::stable_sort(rows.begin(), rows.end(), compare);
    stage.partition_ms[p] = ElapsedMs(start);
  }

  // Merge phase (the gather exchange): k-way merge into one partition.
  // Sources are ordered (partition, its runs in write order, its
  // in-memory remainder last); ties go to the earliest source, which
  // reproduces the stable in-memory merge exactly.
  auto merge_start = Clock::now();
  struct SortSource {
    std::unique_ptr<SpillRunReader> reader;  // null for in-memory rows
    std::string path;
    std::vector<Keyed>* mem = nullptr;
    size_t pos = 0;
    Keyed head;
    bool has_head = false;
  };
  auto advance = [&](SortSource* s) -> Status {
    if (s->reader != nullptr) {
      JPAR_ASSIGN_OR_RETURN(bool more, s->reader->Next(&record));
      if (!more) {
        s->has_head = false;
        s->reader.reset();
        spill_mgr->Remove(s->path);
        return Status::OK();
      }
      ItemReader item_reader(record);
      JPAR_RETURN_NOT_OK(DecodeTupleFrom(&item_reader, &s->head.keys));
      JPAR_RETURN_NOT_OK(DecodeTupleFrom(&item_reader, &s->head.row));
      s->has_head = true;
      return Status::OK();
    }
    if (s->pos >= s->mem->size()) {
      s->has_head = false;
      return Status::OK();
    }
    s->head = std::move((*s->mem)[s->pos++]);
    s->has_head = true;
    return Status::OK();
  };
  std::vector<SortSource> sources;
  for (size_t p = 0; p < sorted.size(); ++p) {
    for (const std::string& path : run_paths[p]) {
      SortSource s;
      JPAR_ASSIGN_OR_RETURN(s.reader, spill_mgr->OpenRun(path));
      s.path = path;
      sources.push_back(std::move(s));
    }
    SortSource s;
    s.mem = &sorted[p];
    sources.push_back(std::move(s));
  }
  for (SortSource& s : sources) {
    JPAR_RETURN_NOT_OK(advance(&s));
  }

  PartitionSet output;
  output.parts.assign(1, {});
  auto less_keyed = [&](const Keyed& a, const Keyed& b) -> bool {
    for (size_t i = 0; i < a.keys.size(); ++i) {
      bool ea = a.keys[i].SequenceLength() == 0;
      bool eb = b.keys[i].SequenceLength() == 0;
      int c;
      if (ea || eb) {
        c = static_cast<int>(eb) - static_cast<int>(ea);
      } else {
        c = a.keys[i].Compare(b.keys[i]).ValueOrDie();
      }
      if (i < node.sort_descending.size() && node.sort_descending[i]) c = -c;
      if (c != 0) return c < 0;
    }
    return false;
  };
  uint64_t merged = 0;
  while (true) {
    if (++merged % kCheckIntervalTuples == 0) {
      JPAR_RETURN_NOT_OK(Interrupted("sort merge"));
    }
    int best = -1;
    for (size_t s = 0; s < sources.size(); ++s) {
      if (!sources[s].has_head) continue;
      if (best < 0 ||
          less_keyed(sources[s].head,
                     sources[static_cast<size_t>(best)].head)) {
        best = static_cast<int>(s);
      }
    }
    if (best < 0) break;
    SortSource& win = sources[static_cast<size_t>(best)];
    output.parts[0].push_back(std::move(win.head.row));
    JPAR_RETURN_NOT_OK(advance(&win));
  }
  stage.exchange_ms += ElapsedMs(merge_start);
  if (memory.peak_bytes() > stats->peak_retained_bytes &&
      options_.spill == SpillMode::kEnabled) {
    stats->peak_retained_bytes = memory.peak_bytes();
  }
  if (spill_mgr != nullptr) {
    stats->spill_runs += spill_mgr->runs_created();
    stats->spill_bytes_written += spill_mgr->bytes_written();
  }
  stats->Merge(stage);
  return output;
}

// ---------------------------------------------------------------------
// Fragment execution API (src/dist, DESIGN.md §11). Each function is
// the body of one in-process per-partition loop, factored so a worker
// process can run a single partition's share of an operator.

bool Executor::GroupByUsesTwoStep(const PNode& node) {
  bool can_two_step = node.two_step;
  for (const AggSpec& a : node.aggs) {
    if (a.kind == AggKind::kSequence) can_two_step = false;
  }
  return can_two_step;
}

Result<std::vector<Tuple>> Executor::RunSubtree(const PNode& node,
                                                ExecStats* stats) const {
  JPAR_RETURN_NOT_OK(ValidateExecOptions(options_));
  JPAR_ASSIGN_OR_RETURN(PartitionSet result, Exec(node, stats));
  std::vector<Tuple> out;
  for (std::vector<Tuple>& part : result.parts) {
    if (out.empty()) {
      out = std::move(part);
    } else {
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
  }
  return out;
}

Result<std::vector<Tuple>> Executor::GroupByLocal(
    const PNode& node, const std::vector<Tuple>& input,
    ExecStats* stats) const {
  const bool spilling = options_.spill == SpillMode::kEnabled;
  MemoryTracker memory(options_.memory_limit_bytes, spilling);
  std::unique_ptr<SpillManager> spill_mgr;
  if (spilling) {
    JPAR_ASSIGN_OR_RETURN(spill_mgr,
                          SpillManager::Create(options_.spill_dir, ctx_));
  }
  uint64_t merge_passes = 0;
  StageStats stage;
  stage.name = "group-by (local)";
  auto start = Clock::now();
  EvalContext ctx;
  ctx.catalog = catalog_;
  ctx.memory = &memory;
  SpillableGroupTable table(node.aggs, AggStep::kLocal, &memory,
                            /*track_growth=*/spilling, ctx_, spill_mgr.get(),
                            EffectiveSpillFanout(node), memory.ShareOf(1),
                            &merge_passes);
  std::string encoded;
  Tuple key_items;
  uint64_t processed = 0;
  std::vector<Tuple> out;
  for (const Tuple& tuple : input) {
    if (++processed % kCheckIntervalTuples == 0) {
      JPAR_RETURN_NOT_OK(Interrupted("group-by build"));
    }
    JPAR_RETURN_NOT_OK(
        EncodeKey(node.keys, tuple, &ctx, &encoded, &key_items));
    JPAR_RETURN_NOT_OK(
        table.Add(encoded, key_items, [&](size_t i) -> Result<Item> {
          return node.aggs[i].arg->Eval(tuple, &ctx);
        }));
  }
  JPAR_RETURN_NOT_OK(table.Emit(&out));
  if (memory.peak_bytes() > stats->peak_retained_bytes) {
    stats->peak_retained_bytes = memory.peak_bytes();
  }
  if (spill_mgr != nullptr) {
    stats->spill_runs += spill_mgr->runs_created();
    stats->spill_bytes_written += spill_mgr->bytes_written();
    stats->spill_merge_passes += merge_passes;
  }
  stage.partition_ms.assign(1, ElapsedMs(start));
  stats->Merge(stage);
  return out;
}

Result<std::vector<Tuple>> Executor::GroupByGlobal(
    const PNode& node, const std::vector<Tuple>& input, bool from_partials,
    ExecStats* stats) const {
  const bool spilling = options_.spill == SpillMode::kEnabled;
  MemoryTracker memory(options_.memory_limit_bytes, spilling);
  std::unique_ptr<SpillManager> spill_mgr;
  if (spilling) {
    JPAR_ASSIGN_OR_RETURN(spill_mgr,
                          SpillManager::Create(options_.spill_dir, ctx_));
  }
  uint64_t merge_passes = 0;
  size_t nkeys = node.keys.size();
  std::vector<ScalarEvalPtr> exchange_keys;
  if (from_partials) {
    for (size_t i = 0; i < nkeys; ++i) {
      exchange_keys.push_back(MakeColumnEval(static_cast<int>(i)));
    }
  } else {
    exchange_keys = node.keys;
  }

  StageStats stage;
  stage.name =
      from_partials ? "group-by (global merge)" : "group-by (hash)";
  auto start = Clock::now();
  EvalContext ctx;
  ctx.catalog = catalog_;
  ctx.memory = &memory;
  AggStep step = from_partials ? AggStep::kGlobal : AggStep::kComplete;
  SpillableGroupTable table(node.aggs, step, &memory,
                            /*track_growth=*/true, ctx_, spill_mgr.get(),
                            EffectiveSpillFanout(node), memory.ShareOf(1),
                            &merge_passes);
  std::string encoded;
  Tuple key_items;
  uint64_t processed = 0;
  std::vector<Tuple> out;
  for (const Tuple& tuple : input) {
    if (++processed % kCheckIntervalTuples == 0) {
      JPAR_RETURN_NOT_OK(Interrupted("group-by build"));
    }
    JPAR_RETURN_NOT_OK(
        EncodeKey(exchange_keys, tuple, &ctx, &encoded, &key_items));
    JPAR_RETURN_NOT_OK(
        table.Add(encoded, key_items, [&](size_t i) -> Result<Item> {
          if (from_partials) {
            return tuple[nkeys + i];
          }
          return node.aggs[i].arg->Eval(tuple, &ctx);
        }));
  }
  JPAR_RETURN_NOT_OK(table.Emit(&out));
  if (memory.peak_bytes() > stats->peak_retained_bytes) {
    stats->peak_retained_bytes = memory.peak_bytes();
  }
  if (spill_mgr != nullptr) {
    stats->spill_runs += spill_mgr->runs_created();
    stats->spill_bytes_written += spill_mgr->bytes_written();
    stats->spill_merge_passes += merge_passes;
  }
  stage.partition_ms.assign(1, ElapsedMs(start));
  stats->Merge(stage);
  return out;
}

Result<std::vector<Tuple>> Executor::JoinPartition(
    const PNode& node, const std::vector<Tuple>& left,
    const std::vector<Tuple>& right, ExecStats* stats) const {
  MemoryTracker memory(options_.memory_limit_bytes,
                       options_.spill == SpillMode::kEnabled);
  StageStats stage;
  stage.name = "hash-join";
  auto start = Clock::now();
  EvalContext ctx;
  ctx.catalog = catalog_;
  ctx.memory = &memory;
  std::vector<Tuple> out;
  JPAR_RETURN_NOT_OK(JoinOnePartition(node, left, right, &ctx, &memory, &out));
  memory.Release(memory.current_bytes());
  if (memory.peak_bytes() > stats->peak_retained_bytes) {
    stats->peak_retained_bytes = memory.peak_bytes();
  }
  stage.partition_ms.assign(1, ElapsedMs(start));
  stats->Merge(stage);
  return out;
}

Result<std::vector<Tuple>> Executor::RunOps(
    const std::vector<UnaryOpDesc>& ops, std::vector<Tuple> input,
    ExecStats* stats) const {
  if (ops.empty()) return input;
  MemoryTracker memory(options_.memory_limit_bytes,
                       options_.spill == SpillMode::kEnabled);
  StageStats stage;
  stage.name = "pipeline";
  auto start = Clock::now();
  EvalContext ctx;
  ctx.catalog = catalog_;
  ctx.memory = &memory;
  const bool batch_mode = UseBatchMode();
  ctx.charge_boundaries = !batch_mode;
  std::vector<Tuple> out;
  TupleSink sink = [&out](Tuple t) -> Status {
    out.push_back(std::move(t));
    return Status::OK();
  };
  uint64_t batches = 0;
  std::unique_ptr<BatchPipe> pipe;
  if (batch_mode) {
    pipe = std::make_unique<BatchPipe>(
        &ops, &ctx, options_.batch_size,
        [this]() { return Interrupted("pipeline"); }, &out, &batches);
  }
  uint64_t processed = 0;
  for (Tuple& t : input) {
    if (++processed % kCheckIntervalTuples == 0) {
      JPAR_RETURN_NOT_OK(Interrupted("pipeline"));
    }
    if (pipe != nullptr) {
      JPAR_RETURN_NOT_OK(pipe->PushTuple(std::move(t)));
    } else {
      JPAR_RETURN_NOT_OK(RunChain(ops, 0, std::move(t), &ctx, sink));
    }
  }
  if (pipe != nullptr) JPAR_RETURN_NOT_OK(pipe->Finish());
  stats->batches_emitted += batches;
  stage.pipeline_bytes += ctx.boundary_bytes;
  if (ctx.max_tuple_bytes > stage.max_tuple_bytes) {
    stage.max_tuple_bytes = ctx.max_tuple_bytes;
  }
  if (memory.peak_bytes() > stats->peak_retained_bytes) {
    stats->peak_retained_bytes = memory.peak_bytes();
  }
  stage.partition_ms.assign(1, ElapsedMs(start));
  stats->Merge(stage);
  return out;
}

Result<std::vector<std::vector<Tuple>>> Executor::HashPartition(
    const std::vector<Tuple>& input,
    const std::vector<ScalarEvalPtr>& key_evals, int fanout) const {
  if (fanout < 1) fanout = 1;
  EvalContext ctx;
  ctx.catalog = catalog_;
  std::hash<std::string> hasher;
  std::string encoded;
  std::vector<std::vector<Tuple>> buckets(static_cast<size_t>(fanout));
  uint64_t processed = 0;
  for (const Tuple& tuple : input) {
    if (++processed % kCheckIntervalTuples == 0) {
      JPAR_RETURN_NOT_OK(Interrupted("exchange"));
    }
    JPAR_RETURN_NOT_OK(EncodeKey(key_evals, tuple, &ctx, &encoded, nullptr));
    size_t dst = hasher(encoded) % static_cast<size_t>(fanout);
    buckets[dst].push_back(tuple);
  }
  return buckets;
}

Status ValidateExecOptions(const ExecOptions& options) {
  if (options.partitions < 1) {
    return Status::InvalidArgument(
        "partitions must be >= 1, got " + std::to_string(options.partitions));
  }
  if (options.partitions_per_node < 1) {
    return Status::InvalidArgument(
        "partitions_per_node must be >= 1, got " +
        std::to_string(options.partitions_per_node));
  }
  if (options.cores_per_node < 1) {
    return Status::InvalidArgument(
        "cores_per_node must be >= 1, got " +
        std::to_string(options.cores_per_node));
  }
  if (options.frame_bytes == 0) {
    return Status::InvalidArgument("frame_bytes must be > 0");
  }
  if (options.deadline_ms < 0) {
    return Status::InvalidArgument(
        "deadline_ms must be >= 0 (0 = no deadline), got " +
        std::to_string(options.deadline_ms));
  }
  if (options.on_parse_error != ParseErrorPolicy::kFail &&
      options.on_parse_error != ParseErrorPolicy::kSkipAndCount) {
    return Status::InvalidArgument(
        "unknown on_parse_error policy: " +
        std::to_string(static_cast<int>(options.on_parse_error)));
  }
  if (options.scan_mode != ScanMode::kScalar &&
      options.scan_mode != ScanMode::kIndexed) {
    return Status::InvalidArgument(
        "unknown scan_mode: " +
        std::to_string(static_cast<int>(options.scan_mode)));
  }
  if (options.spill != SpillMode::kDisabled &&
      options.spill != SpillMode::kEnabled) {
    return Status::InvalidArgument(
        "unknown spill mode: " +
        std::to_string(static_cast<int>(options.spill)));
  }
  if (options.expr_mode != ExprMode::kAuto &&
      options.expr_mode != ExprMode::kTree &&
      options.expr_mode != ExprMode::kBytecode) {
    return Status::InvalidArgument(
        "unknown expr_mode: " +
        std::to_string(static_cast<int>(options.expr_mode)));
  }
  if (options.storage_mode != StorageMode::kAuto &&
      options.storage_mode != StorageMode::kOff &&
      options.storage_mode != StorageMode::kTape &&
      options.storage_mode != StorageMode::kColumnar) {
    return Status::InvalidArgument(
        "unknown storage_mode: " +
        std::to_string(static_cast<int>(options.storage_mode)));
  }
  if (options.stats_mode != StatsMode::kAuto &&
      options.stats_mode != StatsMode::kOff &&
      options.stats_mode != StatsMode::kForced) {
    return Status::InvalidArgument(
        "unknown stats_mode: " +
        std::to_string(static_cast<int>(options.stats_mode)));
  }
  if (options.batch_size < 1 || options.batch_size > 65536) {
    // Batches above 64Ki tuples gain nothing (cancellation checks tick
    // every 256 lanes regardless) and risk oversized scratch columns.
    return Status::InvalidArgument(
        "batch_size must be in [1, 65536], got " +
        std::to_string(options.batch_size));
  }
  if (options.spill == SpillMode::kEnabled) {
    if (options.spill_fanout < 2) {
      return Status::InvalidArgument(
          "spill_fanout must be >= 2 when spilling is enabled, got " +
          std::to_string(options.spill_fanout));
    }
    if (!options.spill_dir.empty()) {
      // Fail at validation (admission time through the service), not
      // deep inside a half-finished aggregation.
      Result<std::string> dir = ResolveSpillDir(options.spill_dir);
      if (!dir.ok()) return dir.status();
    }
  }
  return Status::OK();
}

Result<QueryOutput> Executor::Run(const PhysicalPlan& plan) const {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("physical plan has no root");
  }
  JPAR_RETURN_NOT_OK(ValidateExecOptions(options_));
  // A query cancelled (or past its deadline) before execution starts
  // never touches the catalog.
  JPAR_RETURN_NOT_OK(Interrupted("startup"));
  auto start = Clock::now();
  QueryOutput out;
  JPAR_ASSIGN_OR_RETURN(PartitionSet result, Exec(*plan.root, &out.stats));
  for (const std::vector<Tuple>& part : result.parts) {
    for (const Tuple& tuple : part) {
      if (plan.result_column < 0 ||
          static_cast<size_t>(plan.result_column) >= tuple.size()) {
        return Status::Internal("result column out of range");
      }
      out.items.push_back(tuple[static_cast<size_t>(plan.result_column)]);
    }
  }
  out.stats.result_rows = out.items.size();
  out.stats.exprs_compiled = UseBatchMode() ? plan.exprs_compiled : 0;
  out.stats.real_ms = ElapsedMs(start);
  int nodes = (options_.partitions + options_.partitions_per_node - 1) /
              (options_.partitions_per_node > 0 ? options_.partitions_per_node
                                                : 1);
  if (nodes < 1) nodes = 1;
  int cores = nodes * (options_.cores_per_node > 0 ? options_.cores_per_node
                                                   : 1);
  double makespan = 0;
  for (const StageStats& s : out.stats.stages) {
    makespan += LptMakespanMs(s.partition_ms, cores) + s.network_ms;
    for (const std::vector<double>& phase : s.exchange_task_ms) {
      makespan += LptMakespanMs(phase, cores);
    }
  }
  out.stats.makespan_ms = makespan;
  return out;
}

double LptMakespanMs(const std::vector<double>& task_ms, int cores) {
  if (cores < 1) cores = 1;
  std::vector<double> sorted = task_ms;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  std::vector<double> bins(static_cast<size_t>(cores), 0.0);
  for (double t : sorted) {
    // Assign to the least-loaded core.
    size_t best = 0;
    for (size_t b = 1; b < bins.size(); ++b) {
      if (bins[b] < bins[best]) best = b;
    }
    bins[best] += t;
  }
  double max_bin = 0;
  for (double b : bins) max_bin = b > max_bin ? b : max_bin;
  return max_bin;
}

}  // namespace jpar
