#include "algebra/rewriter.h"

namespace jpar {

RewriteEngine::RewriteEngine(RuleOptions options) : options_(options) {
  if (options_.path_rules) {
    path_rules_.push_back(MakeRemovePromoteDataRule());
    path_rules_.push_back(MakeMergeKeysOrMembersIntoUnnestRule());
  }
  if (options_.pipelining_rules) {
    pipelining_rules_.push_back(MakeIntroduceDataScanRule());
    if (options_.pipelining_pushdown) {
      pipelining_rules_.push_back(MakePushValueIntoDataScanRule());
      pipelining_rules_.push_back(MakePushKeysOrMembersIntoDataScanRule());
      pipelining_rules_.push_back(MakeElideTrivialUnnestIterateRule());
    }
  }
  if (options_.groupby_rules) {
    groupby_rules_.push_back(MakeRemoveRedundantTreatRule());
    groupby_rules_.push_back(MakeConvertScalarToAggregateRule());
    groupby_rules_.push_back(MakePushAggregateIntoGroupByRule());
  }
  if (options_.join_rules) {
    join_rules_.push_back(MakeExtractJoinConditionRule());
  }
  if (options_.index_rules) {
    index_rules_.push_back(MakeUsePathIndexRule());
  }
}

Result<bool> RewriteEngine::RunRuleSet(
    LogicalPlan* plan, const Catalog* catalog, const CostModel* cost_model,
    const std::vector<std::unique_ptr<RewriteRule>>& rules,
    std::vector<std::string>* fired) {
  bool any = false;
  // Iterate the rule set to fixpoint (bounded to guard against cyclic
  // rule interactions — a correct rule set terminates well below this).
  for (int round = 0; round < 64; ++round) {
    bool changed = false;
    RewriteContext ctx;
    ctx.root = plan->root;
    ctx.catalog = catalog;
    ctx.cost_model = cost_model;
    for (const std::unique_ptr<RewriteRule>& rule : rules) {
      JPAR_RETURN_NOT_OK(VisitOpSlots(
          plan->root, [&](LOpPtr& slot) -> Status {
            JPAR_ASSIGN_OR_RETURN(bool hit, rule->Apply(slot, &ctx));
            if (hit) {
              changed = true;
              fired->push_back(std::string(rule->name()));
            }
            return Status::OK();
          }));
      ctx.root = plan->root;
    }
    if (!changed) break;
    any = true;
    if (round == 63) {
      return Status::Internal("rewrite rules did not reach a fixpoint");
    }
  }
  return any;
}

Result<std::vector<std::string>> RewriteEngine::Rewrite(
    LogicalPlan* plan, const Catalog* catalog, const CostModel* cost_model) {
  std::vector<std::string> fired;
  if (plan->root == nullptr) {
    return Status::InvalidArgument("rewriting an empty plan");
  }
  // Category order per the paper: path rules first (they normalize the
  // keys-or-members two-step form), pipelining rules build on them,
  // group-by rules last. Join extraction runs before everything so the
  // pipelining rules see the per-branch scans; index selection runs
  // last (it needs the fully pushed-down DATASCAN shape).
  JPAR_ASSIGN_OR_RETURN(
      bool j, RunRuleSet(plan, catalog, cost_model, join_rules_, &fired));
  JPAR_ASSIGN_OR_RETURN(
      bool p, RunRuleSet(plan, catalog, cost_model, path_rules_, &fired));
  JPAR_ASSIGN_OR_RETURN(
      bool d, RunRuleSet(plan, catalog, cost_model, pipelining_rules_, &fired));
  JPAR_ASSIGN_OR_RETURN(
      bool g, RunRuleSet(plan, catalog, cost_model, groupby_rules_, &fired));
  JPAR_ASSIGN_OR_RETURN(
      bool x, RunRuleSet(plan, catalog, cost_model, index_rules_, &fired));
  (void)j;
  (void)p;
  (void)d;
  (void)g;
  (void)x;
  return fired;
}

}  // namespace jpar
