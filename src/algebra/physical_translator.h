#ifndef JPAR_ALGEBRA_PHYSICAL_TRANSLATOR_H_
#define JPAR_ALGEBRA_PHYSICAL_TRANSLATOR_H_

#include "algebra/logical_plan.h"
#include "algebra/rewriter.h"
#include "common/result.h"
#include "runtime/executor.h"
#include "stats/cost_model.h"

namespace jpar {

/// Options controlling logical -> physical translation.
struct PhysicalOptions {
  /// Algebricks two-step aggregation: GROUP-BY and AGGREGATE operators
  /// with incremental aggregate functions pre-aggregate per partition
  /// and merge globally (paper §4.3, "partitioned computation").
  bool two_step_aggregation = true;
  /// Compile ASSIGN/SELECT expression trees to flat postfix bytecode
  /// (DESIGN.md §13) so the executor's batch pipelines can run them
  /// vectorized. Off when the engine runs in ExprMode::kTree or the
  /// JPAR_DISABLE_EXPR_BYTECODE env kill-switch is set.
  bool compile_expr_bytecode = true;
  /// Sampled-statistics cost model (DESIGN.md §15), or null. When set
  /// and enabled, the translator attaches answer-preserving physical
  /// annotations: scan access hints, morsel-size and spill-fanout
  /// hints, and the hash-join build side. Plan *structure* never
  /// depends on it — distributed workers recompile fragments against
  /// their own stats and must produce the same operator tree.
  const CostModel* cost_model = nullptr;
};

/// Lowers an optimized logical plan to the executor's physical plan:
/// assigns tuple columns to variables, compiles expressions to
/// evaluators, fuses streaming operators into pipelines, and maps
/// GROUP-BY/AGGREGATE/JOIN to their partitioned physical forms.
Result<PhysicalPlan> TranslateToPhysical(const LogicalPlan& plan,
                                         const PhysicalOptions& options);

}  // namespace jpar

#endif  // JPAR_ALGEBRA_PHYSICAL_TRANSLATOR_H_
