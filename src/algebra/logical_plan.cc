#include "algebra/logical_plan.h"

#include <functional>
#include <utility>

namespace jpar {

std::string VarName(VarId var) {
  if (var == kNoVar) return "$?";
  return "$" + std::to_string(var);
}

// ---------------------------------------------------------------------
// LExpr
// ---------------------------------------------------------------------

LExprPtr LExpr::Constant(Item value) {
  auto e = std::make_shared<LExpr>();
  e->kind = Kind::kConstant;
  e->constant = std::move(value);
  return e;
}

LExprPtr LExpr::Var(VarId var) {
  auto e = std::make_shared<LExpr>();
  e->kind = Kind::kVarRef;
  e->var = var;
  return e;
}

LExprPtr LExpr::Fn(Builtin fn, std::vector<LExprPtr> args) {
  auto e = std::make_shared<LExpr>();
  e->kind = Kind::kFunction;
  e->fn = fn;
  e->args = std::move(args);
  return e;
}

void LExpr::CollectUsedVars(std::set<VarId>* out) const {
  if (kind == Kind::kVarRef) {
    out->insert(var);
    return;
  }
  for (const LExprPtr& a : args) {
    if (a != nullptr) a->CollectUsedVars(out);
  }
}

LExprPtr LExpr::Clone() const {
  auto e = std::make_shared<LExpr>();
  e->kind = kind;
  e->constant = constant;
  e->var = var;
  e->fn = fn;
  e->args.reserve(args.size());
  for (const LExprPtr& a : args) {
    e->args.push_back(a != nullptr ? a->Clone() : nullptr);
  }
  return e;
}

void LExpr::SubstituteVar(VarId from, VarId to) {
  if (kind == Kind::kVarRef) {
    if (var == from) var = to;
    return;
  }
  for (LExprPtr& a : args) {
    if (a != nullptr) a->SubstituteVar(from, to);
  }
}

void LExpr::SubstituteVarWithExpr(VarId from, const LExprPtr& replacement) {
  for (LExprPtr& a : args) {
    if (a == nullptr) continue;
    if (a->IsVarRef(from)) {
      a = replacement->Clone();
    } else {
      a->SubstituteVarWithExpr(from, replacement);
    }
  }
}

std::string LExpr::ToString() const {
  switch (kind) {
    case Kind::kConstant:
      return constant.ToJsonString();
    case Kind::kVarRef:
      return VarName(var);
    case Kind::kFunction: {
      std::string out(BuiltinToString(fn));
      out.push_back('(');
      for (size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += args[i] != nullptr ? args[i]->ToString() : std::string("?");
      }
      out.push_back(')');
      return out;
    }
  }
  return "?";
}

// ---------------------------------------------------------------------
// LOp
// ---------------------------------------------------------------------

std::string_view LOpKindToString(LOpKind kind) {
  switch (kind) {
    case LOpKind::kEmptyTupleSource:
      return "EMPTY-TUPLE-SOURCE";
    case LOpKind::kNestedTupleSource:
      return "NESTED-TUPLE-SOURCE";
    case LOpKind::kDataScan:
      return "DATASCAN";
    case LOpKind::kAssign:
      return "ASSIGN";
    case LOpKind::kSelect:
      return "SELECT";
    case LOpKind::kProject:
      return "PROJECT";
    case LOpKind::kUnnest:
      return "UNNEST";
    case LOpKind::kAggregate:
      return "AGGREGATE";
    case LOpKind::kGroupBy:
      return "GROUP-BY";
    case LOpKind::kOrderBy:
      return "ORDER-BY";
    case LOpKind::kSubplan:
      return "SUBPLAN";
    case LOpKind::kJoin:
      return "JOIN";
    case LOpKind::kDistributeResult:
      return "DISTRIBUTE-RESULT";
  }
  return "?";
}

std::string LOp::ToString() const {
  std::string out(LOpKindToString(kind));
  switch (kind) {
    case LOpKind::kDataScan:
      out += " " + VarName(out_var) + " <- collection(\"" + collection +
             "\")" + PathToString(steps);
      if (use_index) {
        out += " [index: " + PathToString(index_path) + " = " +
               index_value.ToJsonString() + "]";
      }
      break;
    case LOpKind::kAssign:
    case LOpKind::kUnnest:
      out += " " + VarName(out_var) + " <- " +
             (expr != nullptr ? expr->ToString() : std::string("?"));
      break;
    case LOpKind::kSelect:
      out += " " + (expr != nullptr ? expr->ToString() : std::string("?"));
      break;
    case LOpKind::kAggregate: {
      bool first = true;
      for (const AggItem& a : aggs) {
        out += first ? " " : ", ";
        first = false;
        out += VarName(a.var) + " <- " + std::string(AggKindToString(a.agg)) +
               "(" + (a.arg != nullptr ? a.arg->ToString() : "?") + ")";
      }
      break;
    }
    case LOpKind::kGroupBy: {
      bool first = true;
      for (const KeyItem& k : keys) {
        out += first ? " " : ", ";
        first = false;
        out += VarName(k.var) + " := " +
               (k.expr != nullptr ? k.expr->ToString() : std::string("?"));
      }
      break;
    }
    case LOpKind::kOrderBy: {
      for (size_t i = 0; i < keys.size(); ++i) {
        out += i == 0 ? " " : ", ";
        out += keys[i].expr != nullptr ? keys[i].expr->ToString()
                                       : std::string("?");
        if (i < sort_descending.size() && sort_descending[i]) {
          out += " descending";
        }
      }
      break;
    }
    case LOpKind::kJoin: {
      out += " [";
      for (size_t i = 0; i < left_keys.size(); ++i) {
        if (i > 0) out += " and ";
        out += left_keys[i]->ToString() + " eq " + right_keys[i]->ToString();
      }
      if (expr != nullptr) {
        out += left_keys.empty() ? "" : "; ";
        out += "residual: " + expr->ToString();
      }
      out += "]";
      break;
    }
    case LOpKind::kDistributeResult:
      out += " " + VarName(result_var);
      break;
    case LOpKind::kProject: {
      bool first = true;
      for (VarId v : project_vars) {
        out += first ? " " : ", ";
        first = false;
        out += VarName(v);
      }
      break;
    }
    default:
      break;
  }
  return out;
}

namespace {

void AppendPlanLines(const LOpPtr& op, int indent, std::string* out) {
  if (op == nullptr) return;
  out->append(static_cast<size_t>(indent), ' ');
  out->append(op->ToString());
  out->push_back('\n');
  if (op->nested != nullptr) {
    out->append(static_cast<size_t>(indent + 2), ' ');
    out->append("{nested}\n");
    AppendPlanLines(op->nested, indent + 4, out);
  }
  for (const LOpPtr& in : op->inputs) {
    AppendPlanLines(in, indent + (op->inputs.size() > 1 ? 2 : 0), out);
  }
}

}  // namespace

std::string LogicalPlan::ToString() const {
  std::string out;
  AppendPlanLines(root, 0, &out);
  return out;
}

LOpPtr CloneOp(const LOpPtr& op) {
  if (op == nullptr) return nullptr;
  auto copy = std::make_shared<LOp>();
  copy->kind = op->kind;
  copy->collection = op->collection;
  copy->steps = op->steps;
  copy->use_index = op->use_index;
  copy->index_path = op->index_path;
  copy->index_value = op->index_value;
  copy->out_var = op->out_var;
  copy->expr = op->expr != nullptr ? op->expr->Clone() : nullptr;
  for (const LOp::AggItem& a : op->aggs) {
    copy->aggs.push_back(
        {a.var, a.agg, a.arg != nullptr ? a.arg->Clone() : nullptr});
  }
  for (const LOp::KeyItem& k : op->keys) {
    copy->keys.push_back(
        {k.var, k.expr != nullptr ? k.expr->Clone() : nullptr});
  }
  copy->nested = CloneOp(op->nested);
  for (const LExprPtr& e : op->left_keys) copy->left_keys.push_back(e->Clone());
  for (const LExprPtr& e : op->right_keys) {
    copy->right_keys.push_back(e->Clone());
  }
  copy->result_var = op->result_var;
  copy->project_vars = op->project_vars;
  copy->sort_descending = op->sort_descending;
  for (const LOpPtr& in : op->inputs) copy->inputs.push_back(CloneOp(in));
  return copy;
}

namespace {

void ForEachExpr(const LOpPtr& op,
                 const std::function<void(const LExprPtr&)>& f) {
  if (op == nullptr) return;
  if (op->expr != nullptr) f(op->expr);
  for (const LOp::AggItem& a : op->aggs) {
    if (a.arg != nullptr) f(a.arg);
  }
  for (const LOp::KeyItem& k : op->keys) {
    if (k.expr != nullptr) f(k.expr);
  }
  for (const LExprPtr& e : op->left_keys) f(e);
  for (const LExprPtr& e : op->right_keys) f(e);
}

void WalkOps(const LOpPtr& op, const std::function<void(const LOpPtr&)>& f) {
  if (op == nullptr) return;
  f(op);
  WalkOps(op->nested, f);
  for (const LOpPtr& in : op->inputs) WalkOps(in, f);
}

void CountUsesInExpr(const LExprPtr& e, VarId var, int* count) {
  if (e == nullptr) return;
  if (e->IsVarRef(var)) {
    ++*count;
    return;
  }
  for (const LExprPtr& a : e->args) CountUsesInExpr(a, var, count);
}

}  // namespace

int CountVarUses(const LOpPtr& root, VarId var) {
  int count = 0;
  WalkOps(root, [&](const LOpPtr& op) {
    ForEachExpr(op, [&](const LExprPtr& e) { CountUsesInExpr(e, var, &count); });
    if (op->kind == LOpKind::kDistributeResult && op->result_var == var) {
      ++count;
    }
    for (VarId kept : op->project_vars) {
      if (kept == var) ++count;
    }
  });
  return count;
}

void SubstituteVarInPlan(const LOpPtr& root, VarId from, VarId to) {
  WalkOps(root, [&](const LOpPtr& op) {
    ForEachExpr(op, [&](const LExprPtr& e) { e->SubstituteVar(from, to); });
    if (op->kind == LOpKind::kDistributeResult && op->result_var == from) {
      op->result_var = to;
    }
    for (VarId& kept : op->project_vars) {
      if (kept == from) kept = to;
    }
  });
}

void CollectProducedVars(const LOpPtr& op, std::set<VarId>* out) {
  WalkOps(op, [&](const LOpPtr& o) {
    if (o->out_var != kNoVar) out->insert(o->out_var);
    for (const LOp::AggItem& a : o->aggs) out->insert(a.var);
    for (const LOp::KeyItem& k : o->keys) out->insert(k.var);
  });
}

VarId MaxVarId(const LOpPtr& root) {
  VarId max_var = kNoVar;
  auto consider = [&max_var](VarId v) {
    if (v > max_var) max_var = v;
  };
  WalkOps(root, [&](const LOpPtr& op) {
    consider(op->out_var);
    consider(op->result_var);
    for (const LOp::AggItem& a : op->aggs) consider(a.var);
    for (const LOp::KeyItem& k : op->keys) consider(k.var);
    ForEachExpr(op, [&](const LExprPtr& e) {
      std::set<VarId> used;
      e->CollectUsedVars(&used);
      for (VarId v : used) consider(v);
    });
  });
  return max_var;
}

namespace {

/// Variables an operator's own expressions read.
void CollectOpUsedVars(const LOpPtr& op, std::set<VarId>* out) {
  ForEachExpr(op, [&](const LExprPtr& e) { e->CollectUsedVars(out); });
}

LOpPtr MakeProject(std::set<VarId> keep, LOpPtr input) {
  auto project = std::make_shared<LOp>();
  project->kind = LOpKind::kProject;
  project->project_vars.assign(keep.begin(), keep.end());
  project->inputs.push_back(std::move(input));
  return project;
}

/// Wraps `slot` in PROJECT(keep) unless it is already an equivalent
/// projection or keep covers everything the subtree produces.
void ProjectInput(LOpPtr* slot, const std::set<VarId>& keep) {
  std::set<VarId> produced;
  CollectProducedVars(*slot, &produced);
  std::set<VarId> kept;
  for (VarId v : keep) {
    if (produced.count(v) > 0) kept.insert(v);
  }
  if (kept.size() == produced.size()) return;  // nothing to drop
  *slot = MakeProject(std::move(kept), *slot);
}

/// Top-down liveness walk inserting projections before blocking
/// boundaries. `needed` is the set of variables required above `slot`.
void InsertProjectionsWalk(LOpPtr& slot, std::set<VarId> needed) {
  if (slot == nullptr) return;
  LOp& op = *slot;
  switch (op.kind) {
    case LOpKind::kDistributeResult: {
      std::set<VarId> below = {op.result_var};
      ProjectInput(&op.inputs[0], below);
      InsertProjectionsWalk(op.inputs[0]->kind == LOpKind::kProject
                                ? op.inputs[0]->inputs[0]
                                : op.inputs[0],
                            below);
      return;
    }
    case LOpKind::kAssign:
    case LOpKind::kUnnest: {
      needed.erase(op.out_var);
      CollectOpUsedVars(slot, &needed);
      // Eager pruning: variables that die at this operator are dropped
      // before its input tuples reach it (Hyracks frames materialize
      // every live column, so dead columns cost real buffer space).
      ProjectInput(&op.inputs[0], needed);
      InsertProjectionsWalk(op.inputs[0]->kind == LOpKind::kProject
                                ? op.inputs[0]->inputs[0]
                                : op.inputs[0],
                            std::move(needed));
      return;
    }
    case LOpKind::kSelect:
    case LOpKind::kProject:
    case LOpKind::kOrderBy: {
      CollectOpUsedVars(slot, &needed);
      for (VarId v : op.project_vars) needed.insert(v);
      InsertProjectionsWalk(op.inputs[0], std::move(needed));
      return;
    }
    case LOpKind::kSubplan: {
      if (op.nested != nullptr) {
        for (const LOp::AggItem& a : op.nested->aggs) needed.erase(a.var);
      }
      // Nested chains read outer variables; variables the nested chain
      // itself produces are erased (their ids are fresh, so this never
      // removes an outer variable).
      LOpPtr cursor = op.nested;
      while (cursor != nullptr) {
        CollectOpUsedVars(cursor, &needed);
        if (cursor->out_var != kNoVar) needed.erase(cursor->out_var);
        cursor = cursor->inputs.empty() ? nullptr : cursor->inputs[0];
      }
      InsertProjectionsWalk(op.inputs[0], std::move(needed));
      return;
    }
    case LOpKind::kAggregate:
    case LOpKind::kGroupBy: {
      std::set<VarId> below;
      for (const LOp::KeyItem& k : op.keys) {
        if (k.expr != nullptr) k.expr->CollectUsedVars(&below);
      }
      const LOpPtr& agg_holder =
          op.kind == LOpKind::kGroupBy ? op.nested : slot;
      if (agg_holder != nullptr) {
        for (const LOp::AggItem& a : agg_holder->aggs) {
          if (a.arg != nullptr) a.arg->CollectUsedVars(&below);
        }
      }
      if (op.inputs.empty()) return;
      ProjectInput(&op.inputs[0], below);
      InsertProjectionsWalk(op.inputs[0]->kind == LOpKind::kProject
                                ? op.inputs[0]->inputs[0]
                                : op.inputs[0],
                            below);
      return;
    }
    case LOpKind::kJoin: {
      std::set<VarId> wanted = needed;
      for (const LExprPtr& k : op.left_keys) k->CollectUsedVars(&wanted);
      for (const LExprPtr& k : op.right_keys) k->CollectUsedVars(&wanted);
      if (op.expr != nullptr) op.expr->CollectUsedVars(&wanted);
      for (size_t side = 0; side < op.inputs.size(); ++side) {
        ProjectInput(&op.inputs[side], wanted);
        InsertProjectionsWalk(op.inputs[side]->kind == LOpKind::kProject
                                  ? op.inputs[side]->inputs[0]
                                  : op.inputs[side],
                              wanted);
      }
      return;
    }
    case LOpKind::kDataScan:
    case LOpKind::kEmptyTupleSource:
    case LOpKind::kNestedTupleSource:
      return;
  }
}

}  // namespace

Status InsertProjections(LogicalPlan* plan) {
  if (plan->root == nullptr) {
    return Status::InvalidArgument("projecting an empty plan");
  }
  InsertProjectionsWalk(plan->root, {});
  return Status::OK();
}

Status VisitOpSlots(LOpPtr& root, const OpSlotVisitor& visitor) {
  if (root == nullptr) return Status::OK();
  for (LOpPtr& in : root->inputs) {
    JPAR_RETURN_NOT_OK(VisitOpSlots(in, visitor));
  }
  if (root->nested != nullptr) {
    JPAR_RETURN_NOT_OK(VisitOpSlots(root->nested, visitor));
  }
  return visitor(root);
}

}  // namespace jpar
