#ifndef JPAR_ALGEBRA_REWRITER_H_
#define JPAR_ALGEBRA_REWRITER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/logical_plan.h"
#include "common/result.h"

namespace jpar {

/// Toggles for the paper's three rewrite-rule categories (§4) plus the
/// auxiliary join rule and Algebricks' two-step aggregation. Each
/// benchmark enables them cumulatively, exactly like the paper's
/// Figures 13-15.
struct RuleOptions {
  bool path_rules = true;        // §4.1
  bool pipelining_rules = true;  // §4.2
  /// Sub-toggle of the pipelining rules: when false, DATASCAN is still
  /// introduced (partitioned scans) but value()/keys-or-members() are
  /// NOT merged into its second argument. This models AsterixDB, which
  /// shares Algebricks' DATASCAN but lacks the paper's JSONiq pushdown
  /// rules and therefore materializes whole arrays before unnesting.
  bool pipelining_pushdown = true;
  bool groupby_rules = true;     // §4.3
  /// Algebricks two-step (local/global) aggregation, activated by the
  /// group-by rules in the paper; applied during physical translation.
  bool two_step_aggregation = true;
  /// Converts SELECT-over-cross-product into hash equi-joins (needed to
  /// run Q2 at scale regardless of the JSONiq rule sets).
  bool join_rules = true;
  /// Extension (the paper's future work, §6): use catalog path indexes
  /// to prune the files an equality-filtered DATASCAN reads. Off by
  /// default — indexes must be built explicitly via
  /// Catalog::BuildPathIndex.
  bool index_rules = false;

  static RuleOptions None() {
    RuleOptions o;
    o.path_rules = o.pipelining_rules = o.groupby_rules = false;
    o.two_step_aggregation = false;
    o.join_rules = true;  // join extraction is kept: cross products of
                          // the sensor data are infeasible even scaled
    return o;
  }
  static RuleOptions All() { return RuleOptions(); }
};

class CostModel;

/// Context handed to rules: access to the whole plan for variable-usage
/// queries and substitutions, plus the catalog for metadata-dependent
/// rules (index selection) and the optional sampled-statistics cost
/// model (DESIGN.md §15) for cost-aware ones.
struct RewriteContext {
  LOpPtr root;
  const Catalog* catalog = nullptr;
  const CostModel* cost_model = nullptr;
};

/// A single rewrite rule. Apply() examines the operator in `slot`
/// (whose inputs/nested plans have already been visited this pass) and
/// may replace or restructure it. Returns true when it changed the
/// plan.
class RewriteRule {
 public:
  virtual ~RewriteRule() = default;
  virtual std::string_view name() const = 0;
  virtual Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) = 0;
};

/// Runs the configured rule sets to fixpoint, in the paper's category
/// order: path-expression rules, then pipelining rules, then group-by
/// rules (each category itself iterated to fixpoint).
class RewriteEngine {
 public:
  explicit RewriteEngine(RuleOptions options);

  /// Rewrites the plan in place (the root pointer may be replaced).
  /// Returns the names of rules that fired, in order. `catalog` (may be
  /// null) enables metadata-dependent rules such as index selection;
  /// `cost_model` (may be null) lets those rules weigh their
  /// annotations against sampled statistics.
  Result<std::vector<std::string>> Rewrite(
      LogicalPlan* plan, const Catalog* catalog = nullptr,
      const CostModel* cost_model = nullptr);

 private:
  Result<bool> RunRuleSet(
      LogicalPlan* plan, const Catalog* catalog,
      const CostModel* cost_model,
      const std::vector<std::unique_ptr<RewriteRule>>& rules,
      std::vector<std::string>* fired);

  RuleOptions options_;
  std::vector<std::unique_ptr<RewriteRule>> path_rules_;
  std::vector<std::unique_ptr<RewriteRule>> pipelining_rules_;
  std::vector<std::unique_ptr<RewriteRule>> groupby_rules_;
  std::vector<std::unique_ptr<RewriteRule>> join_rules_;
  std::vector<std::unique_ptr<RewriteRule>> index_rules_;
};

// Rule factories (implementations in algebra/rules/*).
// Path expression rules (paper §4.1).
std::unique_ptr<RewriteRule> MakeRemovePromoteDataRule();
std::unique_ptr<RewriteRule> MakeMergeKeysOrMembersIntoUnnestRule();
// Pipelining rules (paper §4.2).
std::unique_ptr<RewriteRule> MakeIntroduceDataScanRule();
std::unique_ptr<RewriteRule> MakePushValueIntoDataScanRule();
std::unique_ptr<RewriteRule> MakePushKeysOrMembersIntoDataScanRule();
std::unique_ptr<RewriteRule> MakeElideTrivialUnnestIterateRule();
// Group-by rules (paper §4.3).
std::unique_ptr<RewriteRule> MakeRemoveRedundantTreatRule();
std::unique_ptr<RewriteRule> MakeConvertScalarToAggregateRule();
std::unique_ptr<RewriteRule> MakePushAggregateIntoGroupByRule();
// Join normalization.
std::unique_ptr<RewriteRule> MakeExtractJoinConditionRule();
// Index selection (extension; paper §6 future work).
std::unique_ptr<RewriteRule> MakeUsePathIndexRule();

}  // namespace jpar

#endif  // JPAR_ALGEBRA_REWRITER_H_
