#ifndef JPAR_ALGEBRA_LOGICAL_PLAN_H_
#define JPAR_ALGEBRA_LOGICAL_PLAN_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "json/item.h"
#include "json/projecting_reader.h"
#include "runtime/aggregates.h"
#include "runtime/expression.h"

namespace jpar {

/// Logical query variables. Assigned densely by the translator.
using VarId = int;
inline constexpr VarId kNoVar = -1;

std::string VarName(VarId var);

// ---------------------------------------------------------------------
// Logical expressions
// ---------------------------------------------------------------------

struct LExpr;
using LExprPtr = std::shared_ptr<LExpr>;

/// A logical scalar expression tree. Mutable shared nodes: rewrite rules
/// edit them in place or rebuild subtrees.
struct LExpr {
  enum class Kind : uint8_t { kConstant, kVarRef, kFunction };

  Kind kind = Kind::kConstant;
  Item constant;        // kConstant
  VarId var = kNoVar;   // kVarRef
  Builtin fn = Builtin::kValue;  // kFunction
  std::vector<LExprPtr> args;

  static LExprPtr Constant(Item value);
  static LExprPtr Var(VarId var);
  static LExprPtr Fn(Builtin fn, std::vector<LExprPtr> args);

  bool IsFunction(Builtin f) const {
    return kind == Kind::kFunction && fn == f;
  }
  bool IsVarRef() const { return kind == Kind::kVarRef; }
  bool IsVarRef(VarId v) const { return IsVarRef() && var == v; }

  void CollectUsedVars(std::set<VarId>* out) const;
  LExprPtr Clone() const;
  /// Replaces every reference to `from` with `to` (in place).
  void SubstituteVar(VarId from, VarId to);
  /// Replaces every reference to `from` with a clone of `replacement`.
  void SubstituteVarWithExpr(VarId from, const LExprPtr& replacement);

  std::string ToString() const;
};

// ---------------------------------------------------------------------
// Logical operators
// ---------------------------------------------------------------------

/// Logical operator kinds — the Hyracks/Algebricks operators of the
/// paper's §3.2 plus DATASCAN and JOIN.
enum class LOpKind : uint8_t {
  kEmptyTupleSource,
  kNestedTupleSource,  // leaf of nested plans (GROUP-BY / SUBPLAN)
  kDataScan,
  kAssign,
  kSelect,
  kProject,  // keep a subset of live variables (Algebricks core rule)
  kUnnest,
  kAggregate,
  kGroupBy,
  kOrderBy,
  kSubplan,
  kJoin,
  kDistributeResult,
};

std::string_view LOpKindToString(LOpKind kind);

struct LOp;
using LOpPtr = std::shared_ptr<LOp>;

/// A logical operator node. A single struct with kind-dependent fields:
/// rewrite rules pattern-match on kinds and restructure the DAG, so an
/// open struct is more convenient than a class hierarchy here.
struct LOp {
  LOpKind kind = LOpKind::kEmptyTupleSource;
  std::vector<LOpPtr> inputs;  // 0, 1 (most), or 2 (join)

  // kDataScan
  std::string collection;
  std::vector<PathStep> steps;
  // kDataScan with index assistance (set by the index rule).
  bool use_index = false;
  std::vector<PathStep> index_path;
  Item index_value;

  // kAssign / kUnnest / kDataScan: the variable produced.
  VarId out_var = kNoVar;
  // kAssign / kUnnest / kSelect: the expression;
  // kJoin: residual (non-equi) condition, may be null.
  LExprPtr expr;

  // kAggregate: produced aggregates.
  struct AggItem {
    VarId var = kNoVar;
    AggKind agg = AggKind::kCount;
    LExprPtr arg;
  };
  std::vector<AggItem> aggs;

  // kGroupBy: grouping keys (re-bound under fresh variables).
  // kOrderBy: sort keys (var unused, kNoVar).
  struct KeyItem {
    VarId var = kNoVar;
    LExprPtr expr;
  };
  std::vector<KeyItem> keys;
  // kOrderBy: per-key direction, parallel to `keys`.
  std::vector<uint8_t> sort_descending;

  // kGroupBy / kSubplan: nested plan root (a chain whose leaf is
  // kNestedTupleSource and whose top is kAggregate).
  LOpPtr nested;

  // kJoin: equi-join keys extracted by the join rule. Empty until the
  // rule fires (a cross product with `expr` as filter until then).
  std::vector<LExprPtr> left_keys;
  std::vector<LExprPtr> right_keys;

  // kDistributeResult: result variable.
  VarId result_var = kNoVar;

  // kProject: variables kept (in order).
  std::vector<VarId> project_vars;

  LOpPtr& input() { return inputs[0]; }
  const LOpPtr& input() const { return inputs[0]; }

  std::string ToString() const;  // one line, paper-style
};

/// A logical plan (root is kDistributeResult).
struct LogicalPlan {
  LOpPtr root;

  std::string ToString() const;  // multi-line, top-down like the paper
};

/// Deep-copies a plan (rules and tests snapshot plans before rewriting).
LOpPtr CloneOp(const LOpPtr& op);

/// Counts references to `var` in expressions anywhere in the plan
/// (including nested plans), excluding the sites that *produce* it.
int CountVarUses(const LOpPtr& root, VarId var);

/// Replaces uses of `from` with `to` in all expressions of the plan.
void SubstituteVarInPlan(const LOpPtr& root, VarId from, VarId to);

/// The set of variables produced by a subtree (scan/assign/unnest vars,
/// group keys, aggregate vars).
void CollectProducedVars(const LOpPtr& op, std::set<VarId>* out);

/// Largest VarId appearing anywhere in the plan (produced or referenced);
/// kNoVar for an empty plan. Rules use MaxVarId(root) + 1 for fresh
/// variables.
VarId MaxVarId(const LOpPtr& root);

/// Inserts PROJECT operators that drop dead variables at the plan's
/// blocking/exchange boundaries (GROUP-BY, JOIN, AGGREGATE inputs and
/// the DISTRIBUTE-RESULT input). This is Algebricks-core behaviour
/// (variable pruning), always applied regardless of which JSONiq rule
/// categories are enabled — without it, naive plans would serialize
/// whole-collection items into exchange frames.
Status InsertProjections(LogicalPlan* plan);

/// Visits every operator slot in the plan bottom-up (inputs before the
/// node, nested plans before the node). The visitor may replace the
/// LOpPtr in the slot.
using OpSlotVisitor = std::function<Status(LOpPtr& slot)>;
Status VisitOpSlots(LOpPtr& root, const OpSlotVisitor& visitor);

}  // namespace jpar

#endif  // JPAR_ALGEBRA_LOGICAL_PLAN_H_
