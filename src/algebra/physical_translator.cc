#include "algebra/physical_translator.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace jpar {

namespace {

/// Variable -> column positions of the tuples flowing at some plan
/// point.
using Schema = std::vector<VarId>;

int ColumnOf(const Schema& schema, VarId var) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i] == var) return static_cast<int>(i);
  }
  return -1;
}

Result<ScalarEvalPtr> CompileExpr(const LExprPtr& expr,
                                  const Schema& schema) {
  if (expr == nullptr) return Status::Internal("compiling a null expression");
  switch (expr->kind) {
    case LExpr::Kind::kConstant:
      return MakeConstantEval(expr->constant);
    case LExpr::Kind::kVarRef: {
      int col = ColumnOf(schema, expr->var);
      if (col < 0) {
        return Status::Internal("unbound variable " + VarName(expr->var) +
                                " during physical translation");
      }
      return MakeColumnEval(col);
    }
    case LExpr::Kind::kFunction: {
      std::vector<ScalarEvalPtr> args;
      args.reserve(expr->args.size());
      for (const LExprPtr& a : expr->args) {
        JPAR_ASSIGN_OR_RETURN(ScalarEvalPtr ev, CompileExpr(a, schema));
        args.push_back(std::move(ev));
      }
      return MakeFunctionEval(expr->fn, std::move(args));
    }
  }
  return Status::Internal("unknown expression kind");
}

struct NodeAndSchema {
  std::shared_ptr<PNode> node;
  Schema schema;
  /// Trusted cardinality estimate flowing at this plan point, or -1.
  /// Only ever set from stats the CostModel trusts, so downstream
  /// decisions (build side, spill fanout) inherit that trust.
  double est_rows = -1;
};

std::string FmtRows(double rows) {
  if (rows < 0) return "?";
  return std::to_string(static_cast<long long>(rows + 0.5));
}

std::string FmtSel(double sel) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", sel);
  return buf;
}

/// Compile-time zone-map annotation (DESIGN.md §14). When a SELECT
/// sits directly on a DATASCAN and compares the scan's output column
/// against a numeric constant (either argument order), the normalized
/// predicate is recorded on the ScanDesc so the executor's columnar
/// access path can prune whole blocks by their min/max zone maps. The
/// SELECT stays in the plan untouched — pruning only ever removes rows
/// the SELECT would drop, so every other access path is unaffected.
void MaybeAnnotateZonePredicate(PNode* node) {
  if (node->scan.kind != ScanDesc::Kind::kDataScan) return;
  if (node->input != nullptr || node->ops.size() != 1) return;
  const ScalarEval* ev = node->ops.front().eval.get();
  if (ev == nullptr || ev->shape() != ScalarEval::Shape::kFunction) return;
  Builtin fn = ev->shape_function();
  if (fn != Builtin::kEq && fn != Builtin::kLt && fn != Builtin::kLe &&
      fn != Builtin::kGt && fn != Builtin::kGe) {
    return;
  }
  const std::vector<ScalarEvalPtr>* args = ev->shape_args();
  if (args == nullptr || args->size() != 2) return;
  const ScalarEval* lhs = (*args)[0].get();
  const ScalarEval* rhs = (*args)[1].get();
  // Normalize to column <op> constant; a constant on the left flips
  // the comparison direction (c < x  ==  x > c).
  bool flipped = false;
  if (lhs->shape() == ScalarEval::Shape::kConstant &&
      rhs->shape() == ScalarEval::Shape::kColumn) {
    std::swap(lhs, rhs);
    flipped = true;
  }
  if (lhs->shape() != ScalarEval::Shape::kColumn ||
      rhs->shape() != ScalarEval::Shape::kConstant) {
    return;
  }
  // The scan's output is the leaf pipeline's only column.
  if (lhs->shape_column() != 0) return;
  const Item* constant = rhs->shape_constant();
  if (constant == nullptr || !constant->is_numeric()) return;
  // Beyond 2^53 an int64 constant rounds when widened to double and
  // the zone-map comparison would no longer be exact — skip.
  constexpr double kMaxExactInt = 9007199254740992.0;
  if (constant->is_int64() && (constant->int64_value() > kMaxExactInt ||
                               constant->int64_value() < -kMaxExactInt)) {
    return;
  }
  ZoneCompare op = ZoneCompare::kNone;
  switch (fn) {
    case Builtin::kEq:
      op = ZoneCompare::kEq;
      break;
    case Builtin::kLt:
      op = flipped ? ZoneCompare::kGt : ZoneCompare::kLt;
      break;
    case Builtin::kLe:
      op = flipped ? ZoneCompare::kGe : ZoneCompare::kLe;
      break;
    case Builtin::kGt:
      op = flipped ? ZoneCompare::kLt : ZoneCompare::kGt;
      break;
    case Builtin::kGe:
      op = flipped ? ZoneCompare::kLe : ZoneCompare::kGe;
      break;
    default:
      return;
  }
  node->scan.zone_op = op;
  node->scan.zone_value = constant->AsDouble();
}

class Translator {
 public:
  explicit Translator(const PhysicalOptions& options) : options_(options) {}

  Result<PhysicalPlan> Translate(const LogicalPlan& plan) {
    if (plan.root == nullptr || plan.root->kind != LOpKind::kDistributeResult) {
      return Status::InvalidArgument(
          "logical plan must be rooted at DISTRIBUTE-RESULT");
    }
    JPAR_ASSIGN_OR_RETURN(NodeAndSchema body,
                          TranslateOp(plan.root->input()));
    int col = ColumnOf(body.schema, plan.root->result_var);
    if (col < 0) {
      return Status::Internal("result variable " +
                              VarName(plan.root->result_var) +
                              " not in final schema");
    }
    PhysicalPlan out;
    out.root = body.node;
    out.result_column = col;
    out.exprs_compiled = exprs_compiled_;
    out.est_result_rows = body.est_rows;
    out.cost_choices = std::move(cost_choices_);
    return out;
  }

 private:
  /// Attaches flat bytecode to a main-pipeline ASSIGN/SELECT when
  /// compilation is on and the tree is compilable. Subplan ops are left
  /// alone: the batch chain runs subplan suffixes through the tuple
  /// fallback, so counting them would overstate `exprs_compiled`.
  UnaryOpDesc MaybeCompile(UnaryOpDesc d) {
    if (!options_.compile_expr_bytecode) return d;
    d.program = CompileExprProgram(d.eval);
    if (d.program != nullptr) ++exprs_compiled_;
    return d;
  }

  /// Returns `ns` if its node is an extensible pipeline, otherwise wraps
  /// it in a fresh pipeline stage.
  NodeAndSchema AsPipeline(NodeAndSchema ns) {
    if (ns.node->kind == PNode::Kind::kPipeline) return ns;
    auto pipe = std::make_shared<PNode>();
    pipe->kind = PNode::Kind::kPipeline;
    pipe->input = ns.node;
    ns.node = pipe;
    return ns;
  }

  const CostModel* cost() const {
    return options_.cost_model != nullptr && options_.cost_model->enabled()
               ? options_.cost_model
               : nullptr;
  }

  Result<NodeAndSchema> TranslateOp(const LOpPtr& op) {
    if (op == nullptr) return Status::Internal("translating a null operator");
    switch (op->kind) {
      case LOpKind::kEmptyTupleSource: {
        NodeAndSchema ns;
        ns.node = std::make_shared<PNode>();
        ns.node->kind = PNode::Kind::kPipeline;
        ns.node->scan.kind = ScanDesc::Kind::kEmptyTupleSource;
        return ns;
      }
      case LOpKind::kDataScan: {
        NodeAndSchema ns;
        ns.node = std::make_shared<PNode>();
        ns.node->kind = PNode::Kind::kPipeline;
        ns.node->scan.kind = ScanDesc::Kind::kDataScan;
        ns.node->scan.collection = op->collection;
        ns.node->scan.steps = op->steps;
        ns.node->scan.use_index = op->use_index;
        ns.node->scan.index_path = op->index_path;
        ns.node->scan.index_value = op->index_value;
        ns.schema.push_back(op->out_var);
        if (cost() != nullptr) {
          ScanEstimate est = cost()->EstimateScan(op->collection, op->steps);
          if (est.from_stats) ns.node->scan.est_rows = est.rows;
          if (cost()->Trust(est)) {
            ns.est_rows = est.rows;
            size_t hint = cost()->MorselBytesHint(est.bytes);
            if (hint > 0) ns.node->scan.morsel_bytes_hint = hint;
            cost_choices_.push_back("scan " + op->collection +
                                    ": est-rows=" + FmtRows(est.rows) +
                                    " morsel-hint=" + std::to_string(hint));
          }
        }
        return ns;
      }
      case LOpKind::kProject: {
        JPAR_ASSIGN_OR_RETURN(NodeAndSchema in, TranslateOp(op->input()));
        NodeAndSchema ns = AsPipeline(std::move(in));
        std::vector<int> columns;
        Schema new_schema;
        for (VarId v : op->project_vars) {
          int col = ColumnOf(ns.schema, v);
          if (col < 0) {
            return Status::Internal("PROJECT of unbound variable " +
                                    VarName(v));
          }
          columns.push_back(col);
          new_schema.push_back(v);
        }
        ns.node->ops.push_back(UnaryOpDesc::Project(std::move(columns)));
        ns.schema = std::move(new_schema);
        return ns;
      }
      case LOpKind::kAssign:
      case LOpKind::kSelect:
      case LOpKind::kUnnest: {
        JPAR_ASSIGN_OR_RETURN(NodeAndSchema in, TranslateOp(op->input()));
        NodeAndSchema ns = AsPipeline(std::move(in));
        JPAR_ASSIGN_OR_RETURN(ScalarEvalPtr ev,
                              CompileExpr(op->expr, ns.schema));
        if (op->kind == LOpKind::kAssign) {
          ns.node->ops.push_back(MaybeCompile(UnaryOpDesc::Assign(std::move(ev))));
          ns.schema.push_back(op->out_var);
        } else if (op->kind == LOpKind::kSelect) {
          ns.node->ops.push_back(MaybeCompile(UnaryOpDesc::Select(std::move(ev))));
          MaybeAnnotateZonePredicate(ns.node.get());
          if (cost() != nullptr) {
            double sel = CostModel::kDefaultSelectivity;
            // A zone-annotated SELECT (necessarily this one: annotation
            // requires a single-op pipeline on the scan) carries enough
            // shape to estimate from the sampled value distribution —
            // and, when selective, to route the scan to the columnar
            // access path where zone maps can prune whole blocks.
            if (ns.node->ops.size() == 1 &&
                ns.node->scan.zone_op != ZoneCompare::kNone) {
              ScanEstimate est = cost()->EstimateScan(ns.node->scan.collection,
                                                      ns.node->scan.steps);
              sel = cost()->EstimateSelectivity(est, ns.node->scan.zone_op,
                                                ns.node->scan.zone_value);
              if (cost()->Trust(est) &&
                  sel <= CostModel::kColumnarSelectivity &&
                  ns.node->scan.access_hint == AccessHint::kAny) {
                ns.node->scan.access_hint = AccessHint::kColumnar;
                cost_choices_.push_back("select on " +
                                        ns.node->scan.collection + ": sel=" +
                                        FmtSel(sel) + " -> columnar scan");
              }
            }
            if (ns.est_rows >= 0) ns.est_rows *= sel;
          }
        } else {
          ns.node->ops.push_back(UnaryOpDesc::Unnest(std::move(ev)));
          ns.schema.push_back(op->out_var);
          ns.est_rows = -1;  // fan-out per row is unknown
        }
        return ns;
      }
      case LOpKind::kSubplan: {
        JPAR_ASSIGN_OR_RETURN(NodeAndSchema in, TranslateOp(op->input()));
        NodeAndSchema ns = AsPipeline(std::move(in));
        JPAR_ASSIGN_OR_RETURN(std::shared_ptr<const SubplanDesc> sub,
                              CompileSubplan(op->nested, &ns.schema));
        ns.node->ops.push_back(UnaryOpDesc::Subplan(std::move(sub)));
        return ns;
      }
      case LOpKind::kAggregate: {
        // A top-level AGGREGATE is a GROUP-BY with no keys.
        JPAR_ASSIGN_OR_RETURN(NodeAndSchema in, TranslateOp(op->input()));
        auto node = std::make_shared<PNode>();
        node->kind = PNode::Kind::kGroupBy;
        node->input = in.node;
        node->two_step = options_.two_step_aggregation;
        Schema out_schema;
        for (const LOp::AggItem& a : op->aggs) {
          AggSpec spec;
          spec.kind = a.agg;
          JPAR_ASSIGN_OR_RETURN(spec.arg, CompileExpr(a.arg, in.schema));
          node->aggs.push_back(std::move(spec));
          out_schema.push_back(a.var);
        }
        NodeAndSchema ns;
        ns.node = node;
        ns.schema = std::move(out_schema);
        ns.est_rows = 1;  // a keyless aggregate emits exactly one row
        return ns;
      }
      case LOpKind::kGroupBy: {
        JPAR_ASSIGN_OR_RETURN(NodeAndSchema in, TranslateOp(op->input()));
        if (op->nested == nullptr ||
            op->nested->kind != LOpKind::kAggregate ||
            op->nested->input()->kind != LOpKind::kNestedTupleSource) {
          return Status::Unsupported(
              "GROUP-BY nested plans must be a single AGGREGATE over "
              "NESTED-TUPLE-SOURCE at physical translation time");
        }
        auto node = std::make_shared<PNode>();
        node->kind = PNode::Kind::kGroupBy;
        node->input = in.node;
        Schema out_schema;
        for (const LOp::KeyItem& k : op->keys) {
          JPAR_ASSIGN_OR_RETURN(ScalarEvalPtr ev,
                                CompileExpr(k.expr, in.schema));
          node->keys.push_back(std::move(ev));
          out_schema.push_back(k.var);
        }
        bool all_incremental = true;
        for (const LOp::AggItem& a : op->nested->aggs) {
          AggSpec spec;
          spec.kind = a.agg;
          if (a.agg == AggKind::kSequence) all_incremental = false;
          JPAR_ASSIGN_OR_RETURN(spec.arg, CompileExpr(a.arg, in.schema));
          node->aggs.push_back(std::move(spec));
          out_schema.push_back(a.var);
        }
        node->two_step = options_.two_step_aggregation && all_incremental;
        if (cost() != nullptr && in.est_rows >= 0) {
          int fanout = cost()->SpillFanoutHint(in.est_rows);
          if (fanout > 0) {
            node->spill_fanout_hint = fanout;
            cost_choices_.push_back(
                "group-by: est-input-rows=" + FmtRows(in.est_rows) +
                " fanout-hint=" + std::to_string(fanout));
          }
        }
        NodeAndSchema ns;
        ns.node = node;
        ns.schema = std::move(out_schema);
        return ns;
      }
      case LOpKind::kOrderBy: {
        JPAR_ASSIGN_OR_RETURN(NodeAndSchema in, TranslateOp(op->input()));
        auto node = std::make_shared<PNode>();
        node->kind = PNode::Kind::kSort;
        node->input = in.node;
        for (const LOp::KeyItem& k : op->keys) {
          JPAR_ASSIGN_OR_RETURN(ScalarEvalPtr ev,
                                CompileExpr(k.expr, in.schema));
          node->sort_keys.push_back(std::move(ev));
        }
        node->sort_descending = op->sort_descending;
        NodeAndSchema ns;
        ns.node = node;
        ns.schema = in.schema;  // sorting preserves the schema
        ns.est_rows = in.est_rows;  // ... and the cardinality
        return ns;
      }
      case LOpKind::kJoin: {
        JPAR_ASSIGN_OR_RETURN(NodeAndSchema left, TranslateOp(op->inputs[0]));
        JPAR_ASSIGN_OR_RETURN(NodeAndSchema right, TranslateOp(op->inputs[1]));
        auto node = std::make_shared<PNode>();
        node->kind = PNode::Kind::kJoin;
        node->left = left.node;
        node->right = right.node;
        for (const LExprPtr& k : op->left_keys) {
          JPAR_ASSIGN_OR_RETURN(ScalarEvalPtr ev, CompileExpr(k, left.schema));
          node->left_keys.push_back(std::move(ev));
        }
        for (const LExprPtr& k : op->right_keys) {
          JPAR_ASSIGN_OR_RETURN(ScalarEvalPtr ev,
                                CompileExpr(k, right.schema));
          node->right_keys.push_back(std::move(ev));
        }
        Schema out_schema = left.schema;
        out_schema.insert(out_schema.end(), right.schema.begin(),
                          right.schema.end());
        if (op->expr != nullptr) {
          JPAR_ASSIGN_OR_RETURN(node->residual,
                                CompileExpr(op->expr, out_schema));
        }
        // Build-side choice: hash joins canonically build on the right;
        // when both inputs carry trusted estimates and the left is
        // clearly smaller, build there instead. The executor reproduces
        // the canonical emit order either way (pair-sort), so this is
        // an answer-preserving annotation like every other cost lever.
        if (cost() != nullptr && !node->left_keys.empty() &&
            left.est_rows >= 0 && right.est_rows >= 0 &&
            left.est_rows <= right.est_rows * CostModel::kBuildFlipRatio) {
          node->build_left = true;
          cost_choices_.push_back("join: build=left (est " +
                                  FmtRows(left.est_rows) + " vs " +
                                  FmtRows(right.est_rows) + ")");
        }
        NodeAndSchema ns;
        ns.node = node;
        ns.schema = std::move(out_schema);
        if (left.est_rows >= 0 && right.est_rows >= 0) {
          ns.est_rows = std::max(left.est_rows, right.est_rows);
        }
        return ns;
      }
      case LOpKind::kNestedTupleSource:
        return Status::Internal(
            "NESTED-TUPLE-SOURCE outside a nested plan");
      case LOpKind::kDistributeResult:
        return Status::Internal("nested DISTRIBUTE-RESULT");
    }
    return Status::Internal("unknown logical operator kind");
  }

  /// Compiles a SUBPLAN nested chain (AGGREGATE over streaming ops over
  /// NESTED-TUPLE-SOURCE). `outer_schema` is extended with the
  /// aggregate output variables.
  Result<std::shared_ptr<const SubplanDesc>> CompileSubplan(
      const LOpPtr& nested, Schema* outer_schema) {
    if (nested == nullptr || nested->kind != LOpKind::kAggregate) {
      return Status::Unsupported(
          "SUBPLAN nested plans must end in AGGREGATE");
    }
    // Collect the chain bottom-up.
    std::vector<LOpPtr> chain;
    LOpPtr cursor = nested->input();
    while (cursor != nullptr && cursor->kind != LOpKind::kNestedTupleSource) {
      chain.push_back(cursor);
      if (cursor->inputs.empty()) {
        return Status::Unsupported("SUBPLAN chain without a tuple source");
      }
      cursor = cursor->input();
    }
    if (cursor == nullptr) {
      return Status::Unsupported("SUBPLAN chain without a tuple source");
    }
    std::reverse(chain.begin(), chain.end());

    auto desc = std::make_shared<SubplanDesc>();
    Schema schema = *outer_schema;  // nested plans see the outer tuple
    for (const LOpPtr& op : chain) {
      JPAR_ASSIGN_OR_RETURN(ScalarEvalPtr ev, CompileExpr(op->expr, schema));
      switch (op->kind) {
        case LOpKind::kAssign:
          desc->ops.push_back(UnaryOpDesc::Assign(std::move(ev)));
          schema.push_back(op->out_var);
          break;
        case LOpKind::kSelect:
          desc->ops.push_back(UnaryOpDesc::Select(std::move(ev)));
          break;
        case LOpKind::kUnnest:
          desc->ops.push_back(UnaryOpDesc::Unnest(std::move(ev)));
          schema.push_back(op->out_var);
          break;
        default:
          return Status::Unsupported(
              "SUBPLAN chains support ASSIGN/SELECT/UNNEST only");
      }
    }
    for (const LOp::AggItem& a : nested->aggs) {
      AggSpec spec;
      spec.kind = a.agg;
      JPAR_ASSIGN_OR_RETURN(spec.arg, CompileExpr(a.arg, schema));
      desc->aggs.push_back(std::move(spec));
      outer_schema->push_back(a.var);
    }
    return std::shared_ptr<const SubplanDesc>(desc);
  }

  PhysicalOptions options_;
  uint64_t exprs_compiled_ = 0;
  std::vector<std::string> cost_choices_;
};

}  // namespace

Result<PhysicalPlan> TranslateToPhysical(const LogicalPlan& plan,
                                         const PhysicalOptions& options) {
  Translator translator(options);
  return translator.Translate(plan);
}

}  // namespace jpar
