#include "algebra/rewriter.h"

// Join normalization:
//  * ExtractJoinConditionRule — SELECT over a cross-product JOIN:
//    one-sided conjuncts are pushed below the corresponding branch
//    (selection pushdown), eq-conjuncts bridging both branches become
//    hash-join keys, the remainder stays as a residual predicate. This
//    is the Algebricks behaviour VXQuery relies on for Q2.

namespace jpar {

namespace {

void SplitConjuncts(const LExprPtr& expr, std::vector<LExprPtr>* out) {
  if (expr->IsFunction(Builtin::kAnd)) {
    SplitConjuncts(expr->args[0], out);
    SplitConjuncts(expr->args[1], out);
    return;
  }
  out->push_back(expr);
}

LExprPtr CombineConjuncts(const std::vector<LExprPtr>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  LExprPtr out = conjuncts[0];
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    out = LExpr::Fn(Builtin::kAnd, {out, conjuncts[i]});
  }
  return out;
}

bool UsesOnly(const LExprPtr& expr, const std::set<VarId>& vars) {
  std::set<VarId> used;
  expr->CollectUsedVars(&used);
  if (used.empty()) return false;  // constants are not side-specific
  for (VarId v : used) {
    if (vars.find(v) == vars.end()) return false;
  }
  return true;
}

class ExtractJoinConditionRule : public RewriteRule {
 public:
  std::string_view name() const override { return "extract-join-condition"; }

  Result<bool> Apply(LOpPtr& slot, RewriteContext*) override {
    if (slot->kind != LOpKind::kSelect || slot->inputs.empty()) return false;
    LOpPtr join = slot->input();
    if (join->kind != LOpKind::kJoin || !join->left_keys.empty()) {
      return false;
    }

    std::set<VarId> left_vars, right_vars;
    CollectProducedVars(join->inputs[0], &left_vars);
    CollectProducedVars(join->inputs[1], &right_vars);

    std::vector<LExprPtr> conjuncts;
    SplitConjuncts(slot->expr, &conjuncts);

    std::vector<LExprPtr> left_only, right_only, residual;
    std::vector<LExprPtr> lkeys, rkeys;
    for (const LExprPtr& c : conjuncts) {
      if (UsesOnly(c, left_vars)) {
        left_only.push_back(c);
        continue;
      }
      if (UsesOnly(c, right_vars)) {
        right_only.push_back(c);
        continue;
      }
      if (c->IsFunction(Builtin::kEq)) {
        const LExprPtr& a = c->args[0];
        const LExprPtr& b = c->args[1];
        if (UsesOnly(a, left_vars) && UsesOnly(b, right_vars)) {
          lkeys.push_back(a);
          rkeys.push_back(b);
          continue;
        }
        if (UsesOnly(a, right_vars) && UsesOnly(b, left_vars)) {
          lkeys.push_back(b);
          rkeys.push_back(a);
          continue;
        }
      }
      residual.push_back(c);
    }
    if (lkeys.empty() && left_only.empty() && right_only.empty()) {
      return false;
    }

    auto push_below = [](LOpPtr& branch, const std::vector<LExprPtr>& conj) {
      if (conj.empty()) return;
      auto select = std::make_shared<LOp>();
      select->kind = LOpKind::kSelect;
      select->expr = CombineConjuncts(conj);
      select->inputs.push_back(branch);
      branch = select;
    };
    push_below(join->inputs[0], left_only);
    push_below(join->inputs[1], right_only);

    join->left_keys = std::move(lkeys);
    join->right_keys = std::move(rkeys);
    // Keep any prior cross-product residual and the unclassified
    // conjuncts on the join.
    if (join->expr != nullptr) residual.push_back(join->expr);
    join->expr = CombineConjuncts(residual);
    slot = join;
    return true;
  }
};

}  // namespace

std::unique_ptr<RewriteRule> MakeExtractJoinConditionRule() {
  return std::make_unique<ExtractJoinConditionRule>();
}

}  // namespace jpar
