#include "algebra/rewriter.h"

// Pipelining rules (paper §4.2):
//  * IntroduceDataScanRule — replaces ASSIGN collection(...) + UNNEST
//    iterate with the DATASCAN operator (Fig. 5 -> Fig. 6). DATASCAN
//    streams one file at a time and is what unlocks partitioned
//    parallelism.
//  * PushValueIntoDataScanRule — merges a value() chain into DATASCAN's
//    second argument (Fig. 7).
//  * PushKeysOrMembersIntoDataScanRule — merges a trailing
//    keys-or-members into DATASCAN so the scan emits one member at a
//    time, satisfying the frame-size restriction (Fig. 8).
//  * ElideTrivialUnnestIterateRule — removes the per-item iterate the
//    FLWOR translation leaves directly above a DATASCAN.

namespace jpar {

namespace {

/// Matches a chain of value(E, constant) calls rooted at VarRef(base).
/// On success appends the navigation steps (outermost last) to *steps.
bool MatchValueChain(const LExprPtr& expr, VarId* base,
                     std::vector<PathStep>* steps) {
  if (expr == nullptr) return false;
  if (expr->IsVarRef()) {
    *base = expr->var;
    return true;
  }
  if (!expr->IsFunction(Builtin::kValue)) return false;
  const LExprPtr& spec = expr->args[1];
  if (spec->kind != LExpr::Kind::kConstant) return false;
  if (!MatchValueChain(expr->args[0], base, steps)) return false;
  if (spec->constant.is_string()) {
    steps->push_back(PathStep::Key(spec->constant.string_value()));
    return true;
  }
  if (spec->constant.is_int64()) {
    steps->push_back(PathStep::Index(spec->constant.int64_value()));
    return true;
  }
  return false;
}

bool IsDataScanProducing(const LOpPtr& op, VarId var) {
  return op != nullptr && op->kind == LOpKind::kDataScan &&
         op->out_var == var;
}

/// UNNEST $x <- iterate($c)
///   ASSIGN $c <- collection("name")      [$c used only here]
///     EMPTY-TUPLE-SOURCE
/// ==>
/// DATASCAN $x <- collection("name")
class IntroduceDataScanRule : public RewriteRule {
 public:
  std::string_view name() const override { return "introduce-datascan"; }

  Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) override {
    if (slot->kind != LOpKind::kUnnest || slot->inputs.empty()) return false;
    const LExprPtr& e = slot->expr;
    if (e == nullptr || !e->IsFunction(Builtin::kIterate) ||
        !e->args[0]->IsVarRef()) {
      return false;
    }
    VarId c = e->args[0]->var;
    LOpPtr assign = slot->input();
    if (assign->kind != LOpKind::kAssign || assign->out_var != c ||
        assign->expr == nullptr ||
        !assign->expr->IsFunction(Builtin::kCollection)) {
      return false;
    }
    const LExprPtr& name = assign->expr->args[0];
    if (name->kind != LExpr::Kind::kConstant || !name->constant.is_string()) {
      return false;
    }
    if (assign->inputs.empty() ||
        assign->input()->kind != LOpKind::kEmptyTupleSource) {
      return false;
    }
    if (CountVarUses(ctx->root, c) != 1) return false;

    auto scan = std::make_shared<LOp>();
    scan->kind = LOpKind::kDataScan;
    scan->collection = name->constant.string_value();
    scan->out_var = slot->out_var;
    scan->inputs.push_back(assign->input());
    slot = scan;
    return true;
  }
};

/// ASSIGN $y <- value(...value($x, k1)..., kn)   [$x used only here]
///   DATASCAN $x <- collection("name")<steps>
/// ==>
/// DATASCAN $y <- collection("name")<steps>("k1")...("kn")
class PushValueIntoDataScanRule : public RewriteRule {
 public:
  std::string_view name() const override {
    return "push-value-into-datascan";
  }

  Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) override {
    if (slot->kind != LOpKind::kAssign || slot->inputs.empty()) return false;
    std::vector<PathStep> steps;
    VarId base = kNoVar;
    if (!MatchValueChain(slot->expr, &base, &steps) || steps.empty()) {
      return false;
    }
    LOpPtr scan = slot->input();
    if (!IsDataScanProducing(scan, base)) return false;
    if (CountVarUses(ctx->root, base) != 1) return false;

    scan->steps.insert(scan->steps.end(), steps.begin(), steps.end());
    scan->out_var = slot->out_var;
    slot = scan;
    return true;
  }
};

/// UNNEST $y <- keys-or-members(value-chain($x))   [$x used only here]
///   DATASCAN $x <- collection("name")<steps>
/// ==>
/// DATASCAN $y <- collection("name")<steps><chain>()
class PushKeysOrMembersIntoDataScanRule : public RewriteRule {
 public:
  std::string_view name() const override {
    return "push-keys-or-members-into-datascan";
  }

  Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) override {
    if (slot->kind != LOpKind::kUnnest || slot->inputs.empty()) return false;
    const LExprPtr& e = slot->expr;
    if (e == nullptr || !e->IsFunction(Builtin::kKeysOrMembers)) return false;
    std::vector<PathStep> steps;
    VarId base = kNoVar;
    if (!MatchValueChain(e->args[0], &base, &steps)) return false;
    LOpPtr scan = slot->input();
    if (!IsDataScanProducing(scan, base)) return false;
    if (CountVarUses(ctx->root, base) != 1) return false;

    scan->steps.insert(scan->steps.end(), steps.begin(), steps.end());
    scan->steps.push_back(PathStep::KeysOrMembers());
    scan->out_var = slot->out_var;
    slot = scan;
    return true;
  }
};

/// UNNEST $y <- iterate(value-chain($x))   [$x used only here]
///   DATASCAN $x <- collection("name")<steps>
/// ==>
/// DATASCAN $y <- collection("name")<steps><chain>
///
/// Sound because a DATASCAN tuple carries exactly one item: iterating
/// it is the identity, and an empty value() result drops the tuple in
/// both forms.
class ElideTrivialUnnestIterateRule : public RewriteRule {
 public:
  std::string_view name() const override {
    return "elide-trivial-unnest-iterate";
  }

  Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) override {
    if (slot->kind != LOpKind::kUnnest || slot->inputs.empty()) return false;
    const LExprPtr& e = slot->expr;
    if (e == nullptr || !e->IsFunction(Builtin::kIterate)) return false;
    std::vector<PathStep> steps;
    VarId base = kNoVar;
    if (!MatchValueChain(e->args[0], &base, &steps)) return false;
    LOpPtr scan = slot->input();
    if (!IsDataScanProducing(scan, base)) return false;
    if (CountVarUses(ctx->root, base) != 1) return false;

    scan->steps.insert(scan->steps.end(), steps.begin(), steps.end());
    scan->out_var = slot->out_var;
    slot = scan;
    return true;
  }
};

}  // namespace

std::unique_ptr<RewriteRule> MakeIntroduceDataScanRule() {
  return std::make_unique<IntroduceDataScanRule>();
}

std::unique_ptr<RewriteRule> MakePushValueIntoDataScanRule() {
  return std::make_unique<PushValueIntoDataScanRule>();
}

std::unique_ptr<RewriteRule> MakePushKeysOrMembersIntoDataScanRule() {
  return std::make_unique<PushKeysOrMembersIntoDataScanRule>();
}

std::unique_ptr<RewriteRule> MakeElideTrivialUnnestIterateRule() {
  return std::make_unique<ElideTrivialUnnestIterateRule>();
}

}  // namespace jpar
