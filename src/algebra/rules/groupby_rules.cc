#include "algebra/rewriter.h"

// Group-by rules (paper §4.3):
//  * RemoveRedundantTreatRule — drops ASSIGN treat($seq) when the treat
//    type is item() (Fig. 9 -> Fig. 10).
//  * ConvertScalarToAggregateRule — turns ASSIGN $c <- count(E($seq))
//    over a group-created sequence into a SUBPLAN with an UNNEST iterate
//    and an incremental AGGREGATE (Fig. 10 -> Fig. 11). This both
//    resolves the value-on-sequence conflict and makes count
//    incremental.
//  * PushAggregateIntoGroupByRule — pushes the SUBPLAN's AGGREGATE down
//    into the GROUP-BY operator, eliminating the materialized per-group
//    sequence entirely (Fig. 11 -> Fig. 12).

namespace jpar {

namespace {

AggKind BuiltinToAggKind(Builtin fn) {
  switch (fn) {
    case Builtin::kCount:
      return AggKind::kCount;
    case Builtin::kSum:
      return AggKind::kSum;
    case Builtin::kAvg:
      return AggKind::kAvg;
    case Builtin::kMin:
      return AggKind::kMin;
    case Builtin::kMax:
      return AggKind::kMax;
    default:
      return AggKind::kSequence;  // sentinel: not an aggregate builtin
  }
}

bool IsAggregateBuiltin(Builtin fn) {
  return BuiltinToAggKind(fn) != AggKind::kSequence;
}

/// Finds a GROUP-BY below `op` whose nested plan materializes `var` via
/// AGGREGATE sequence($x); returns it (or null).
LOpPtr FindGroupByProducingSequence(const LOpPtr& op, VarId var) {
  if (op == nullptr) return nullptr;
  if (op->kind == LOpKind::kGroupBy && op->nested != nullptr &&
      op->nested->kind == LOpKind::kAggregate) {
    for (const LOp::AggItem& a : op->nested->aggs) {
      if (a.var == var && a.agg == AggKind::kSequence) {
        return op;
      }
    }
  }
  for (const LOpPtr& in : op->inputs) {
    LOpPtr found = FindGroupByProducingSequence(in, var);
    if (found != nullptr) return found;
  }
  return nullptr;
}

/// ASSIGN $t <- treat($x) ==> (removed; uses of $t renamed to $x)
class RemoveRedundantTreatRule : public RewriteRule {
 public:
  std::string_view name() const override { return "remove-redundant-treat"; }

  Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) override {
    if (slot->kind != LOpKind::kAssign || slot->inputs.empty()) return false;
    const LExprPtr& e = slot->expr;
    if (e == nullptr || !e->IsFunction(Builtin::kTreat) ||
        !e->args[0]->IsVarRef()) {
      return false;
    }
    VarId source = e->args[0]->var;
    VarId target = slot->out_var;
    LOpPtr input = slot->input();
    slot = input;
    SubstituteVarInPlan(ctx->root, target, source);
    return true;
  }
};

/// ASSIGN $c <- count(E($seq))   [$seq materialized by a GROUP-BY below]
/// ==>
/// SUBPLAN {
///   AGGREGATE $c <- count(E[$seq -> $i])
///     UNNEST $i <- iterate($seq)
///       NESTED-TUPLE-SOURCE
/// }
class ConvertScalarToAggregateRule : public RewriteRule {
 public:
  std::string_view name() const override {
    return "convert-scalar-to-aggregate";
  }

  Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) override {
    if (slot->kind != LOpKind::kAssign || slot->inputs.empty()) return false;
    const LExprPtr& e = slot->expr;
    if (e == nullptr || e->kind != LExpr::Kind::kFunction ||
        !IsAggregateBuiltin(e->fn)) {
      return false;
    }
    // The argument must reference a sequence variable created by a
    // GROUP-BY below this operator.
    std::set<VarId> used;
    e->args[0]->CollectUsedVars(&used);
    VarId seq_var = kNoVar;
    for (VarId v : used) {
      if (FindGroupByProducingSequence(slot->input(), v) != nullptr) {
        seq_var = v;
        break;
      }
    }
    if (seq_var == kNoVar) return false;

    VarId fresh = MaxVarId(ctx->root) + 1;

    auto nts = std::make_shared<LOp>();
    nts->kind = LOpKind::kNestedTupleSource;

    auto unnest = std::make_shared<LOp>();
    unnest->kind = LOpKind::kUnnest;
    unnest->out_var = fresh;
    unnest->expr = LExpr::Fn(Builtin::kIterate, {LExpr::Var(seq_var)});
    unnest->inputs.push_back(nts);

    LExprPtr agg_arg = e->args[0]->Clone();
    if (agg_arg->IsVarRef(seq_var)) {
      agg_arg = LExpr::Var(fresh);
    } else {
      agg_arg->SubstituteVar(seq_var, fresh);
    }

    auto aggregate = std::make_shared<LOp>();
    aggregate->kind = LOpKind::kAggregate;
    aggregate->aggs.push_back({slot->out_var, BuiltinToAggKind(e->fn),
                               std::move(agg_arg)});
    aggregate->inputs.push_back(unnest);

    auto subplan = std::make_shared<LOp>();
    subplan->kind = LOpKind::kSubplan;
    subplan->nested = aggregate;
    subplan->inputs.push_back(slot->input());
    slot = subplan;
    return true;
  }
};

/// SUBPLAN { AGGREGATE $c <- agg(G); [ASSIGN...;] UNNEST $i <-
/// iterate($seq); NTS }
///   GROUP-BY ... { AGGREGATE $seq <- sequence($x); NTS }
///     [$seq used only by the SUBPLAN]
/// ==>
/// GROUP-BY ... { AGGREGATE $c <- agg(G[$i -> $x]); NTS }
class PushAggregateIntoGroupByRule : public RewriteRule {
 public:
  std::string_view name() const override {
    return "push-aggregate-into-groupby";
  }

  Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) override {
    if (slot->kind != LOpKind::kSubplan || slot->inputs.empty()) return false;
    LOpPtr groupby = slot->input();
    if (groupby->kind != LOpKind::kGroupBy || groupby->nested == nullptr ||
        groupby->nested->kind != LOpKind::kAggregate) {
      return false;
    }

    // Decompose the subplan's nested chain:
    //   AGGREGATE <- ASSIGN* <- UNNEST iterate($seq) <- NTS
    LOpPtr aggregate = slot->nested;
    if (aggregate == nullptr || aggregate->kind != LOpKind::kAggregate ||
        aggregate->aggs.size() != 1) {
      return false;
    }
    std::vector<LOpPtr> assigns;
    LOpPtr cursor = aggregate->input();
    while (cursor != nullptr && cursor->kind == LOpKind::kAssign) {
      assigns.push_back(cursor);
      cursor = cursor->input();
    }
    if (cursor == nullptr || cursor->kind != LOpKind::kUnnest) return false;
    LOpPtr unnest = cursor;
    const LExprPtr& ue = unnest->expr;
    if (ue == nullptr || !ue->IsFunction(Builtin::kIterate) ||
        !ue->args[0]->IsVarRef()) {
      return false;
    }
    VarId seq_var = ue->args[0]->var;
    if (unnest->input()->kind != LOpKind::kNestedTupleSource) return false;

    // The group-by's nested plan must materialize exactly that
    // sequence, and nothing else may read it.
    LOpPtr group_agg = groupby->nested;
    int seq_index = -1;
    for (size_t i = 0; i < group_agg->aggs.size(); ++i) {
      if (group_agg->aggs[i].var == seq_var &&
          group_agg->aggs[i].agg == AggKind::kSequence) {
        seq_index = static_cast<int>(i);
        break;
      }
    }
    if (seq_index < 0) return false;
    if (CountVarUses(ctx->root, seq_var) != 1) return false;

    // Fold the subplan's ASSIGN definitions into the aggregate argument
    // (innermost definitions substituted last so chains resolve).
    LExprPtr arg = aggregate->aggs[0].arg->Clone();
    for (const LOpPtr& assign : assigns) {
      if (arg->IsVarRef(assign->out_var)) {
        arg = assign->expr->Clone();
      } else {
        arg->SubstituteVarWithExpr(assign->out_var, assign->expr);
      }
    }
    // Rebind the per-member variable to the group-by's grouped record.
    VarId member_source = kNoVar;
    {
      // AGGREGATE $seq <- sequence($x): $x is the record variable.
      const LExprPtr& seq_arg = group_agg->aggs[static_cast<size_t>(seq_index)].arg;
      if (seq_arg == nullptr || !seq_arg->IsVarRef()) return false;
      member_source = seq_arg->var;
    }
    if (arg->IsVarRef(unnest->out_var)) {
      arg = LExpr::Var(member_source);
    } else {
      arg->SubstituteVar(unnest->out_var, member_source);
    }

    group_agg->aggs[static_cast<size_t>(seq_index)] = {
        aggregate->aggs[0].var, aggregate->aggs[0].agg, std::move(arg)};
    slot = groupby;
    return true;
  }
};

}  // namespace

std::unique_ptr<RewriteRule> MakeRemoveRedundantTreatRule() {
  return std::make_unique<RemoveRedundantTreatRule>();
}

std::unique_ptr<RewriteRule> MakeConvertScalarToAggregateRule() {
  return std::make_unique<ConvertScalarToAggregateRule>();
}

std::unique_ptr<RewriteRule> MakePushAggregateIntoGroupByRule() {
  return std::make_unique<PushAggregateIntoGroupByRule>();
}

}  // namespace jpar
