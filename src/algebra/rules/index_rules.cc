#include "algebra/rewriter.h"
#include "stats/cost_model.h"

// Index selection — the reproduction's implementation of the paper's
// future-work item (§6: "supporting indexing ... the searched data
// volume will be significantly reduced"):
//
//   SELECT eq(value-chain($x), constant)        [or eq(const, chain)]
//     DATASCAN $x <- collection("c")<steps>
//
// when the catalog has a path index on <steps> + <chain>, annotate the
// DATASCAN so execution scans only the files whose indexed values
// contain the constant. The SELECT stays in place: file-level indexing
// over-approximates (a file contains matching and non-matching items),
// so the predicate still filters — the index only prunes I/O.

namespace jpar {

namespace {

bool MatchValueChain(const LExprPtr& expr, VarId* base,
                     std::vector<PathStep>* steps) {
  if (expr == nullptr) return false;
  if (expr->IsVarRef()) {
    *base = expr->var;
    return true;
  }
  if (!expr->IsFunction(Builtin::kValue)) return false;
  const LExprPtr& spec = expr->args[1];
  if (spec->kind != LExpr::Kind::kConstant) return false;
  if (!MatchValueChain(expr->args[0], base, steps)) return false;
  if (spec->constant.is_string()) {
    steps->push_back(PathStep::Key(spec->constant.string_value()));
    return true;
  }
  if (spec->constant.is_int64()) {
    steps->push_back(PathStep::Index(spec->constant.int64_value()));
    return true;
  }
  return false;
}

class UsePathIndexRule : public RewriteRule {
 public:
  std::string_view name() const override { return "use-path-index"; }

  Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) override {
    if (ctx->catalog == nullptr) return false;
    if (slot->kind != LOpKind::kSelect || slot->inputs.empty()) return false;
    LOpPtr scan = slot->input();
    if (scan->kind != LOpKind::kDataScan || scan->use_index) return false;

    // Accept a conjunction and pick the first indexable eq-conjunct.
    std::vector<LExprPtr> conjuncts;
    std::function<void(const LExprPtr&)> split = [&](const LExprPtr& e) {
      if (e->IsFunction(Builtin::kAnd)) {
        split(e->args[0]);
        split(e->args[1]);
      } else {
        conjuncts.push_back(e);
      }
    };
    split(slot->expr);

    for (const LExprPtr& c : conjuncts) {
      if (!c->IsFunction(Builtin::kEq)) continue;
      for (int side = 0; side < 2; ++side) {
        const LExprPtr& chain = c->args[static_cast<size_t>(side)];
        const LExprPtr& constant = c->args[static_cast<size_t>(1 - side)];
        if (constant->kind != LExpr::Kind::kConstant ||
            !constant->constant.is_atomic()) {
          continue;
        }
        std::vector<PathStep> chain_steps;
        VarId base = kNoVar;
        if (!MatchValueChain(chain, &base, &chain_steps)) continue;
        if (base != scan->out_var) continue;
        std::vector<PathStep> full_path = scan->steps;
        full_path.insert(full_path.end(), chain_steps.begin(),
                         chain_steps.end());
        if (!ctx->catalog->HasPathIndex(scan->collection, full_path)) {
          continue;
        }
        // Cost-aware veto (DESIGN.md §15): a common value matches most
        // files, so the index probe saves little I/O while adding a
        // lookup per file — keep the plain partitioned scan. The veto
        // only withholds an annotation; the operator tree is identical
        // either way, so worker-local stats divergence is safe.
        if (ctx->cost_model != nullptr && ctx->cost_model->enabled() &&
            constant->constant.is_numeric()) {
          ScanEstimate est =
              ctx->cost_model->EstimateScan(scan->collection, full_path);
          if (ctx->cost_model->Trust(est) &&
              ctx->cost_model->EstimateSelectivity(
                  est, ZoneCompare::kEq, constant->constant.AsDouble()) >
                  CostModel::kIndexVetoSelectivity) {
            continue;
          }
        }
        scan->use_index = true;
        scan->index_path = std::move(full_path);
        scan->index_value = constant->constant;
        return true;
      }
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<RewriteRule> MakeUsePathIndexRule() {
  return std::make_unique<UsePathIndexRule>();
}

}  // namespace jpar
