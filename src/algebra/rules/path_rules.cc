#include "algebra/rewriter.h"

// Path-expression rules (paper §4.1):
//  * RemovePromoteDataRule  — strips redundant promote()/data() coercions
//    (paper Fig. 3 -> Fig. 4, "remove the promote and data expressions").
//  * MergeKeysOrMembersIntoUnnestRule — fuses the two-step evaluation of
//    keys-or-members (ASSIGN building the full sequence + UNNEST iterate)
//    into a single unnesting UNNEST, so items stream one at a time.

namespace jpar {

namespace {

/// Rewrites promote(E) -> E everywhere, and data(E) -> E where E is a
/// constant atomic (the json-doc argument pattern of Fig. 3). Returns
/// whether anything changed.
bool SimplifyCoercions(LExprPtr* expr) {
  if (*expr == nullptr || (*expr)->kind != LExpr::Kind::kFunction) {
    return false;
  }
  bool changed = false;
  for (LExprPtr& arg : (*expr)->args) {
    changed |= SimplifyCoercions(&arg);
  }
  if ((*expr)->IsFunction(Builtin::kPromote)) {
    *expr = (*expr)->args[0];
    return true;
  }
  if ((*expr)->IsFunction(Builtin::kData)) {
    const LExprPtr& arg = (*expr)->args[0];
    if (arg->kind == LExpr::Kind::kConstant && arg->constant.is_atomic()) {
      *expr = arg;
      return true;
    }
  }
  return changed;
}

class RemovePromoteDataRule : public RewriteRule {
 public:
  std::string_view name() const override { return "remove-promote-data"; }

  Result<bool> Apply(LOpPtr& slot, RewriteContext*) override {
    bool changed = false;
    if (slot->expr != nullptr) changed |= SimplifyCoercions(&slot->expr);
    for (LOp::AggItem& a : slot->aggs) {
      if (a.arg != nullptr) changed |= SimplifyCoercions(&a.arg);
    }
    for (LOp::KeyItem& k : slot->keys) {
      if (k.expr != nullptr) changed |= SimplifyCoercions(&k.expr);
    }
    return changed;
  }
};

/// UNNEST $y <- iterate($x)
///   ASSIGN $x <- keys-or-members(E)        [$x used only here]
/// ==>
/// UNNEST $y <- keys-or-members(E)
class MergeKeysOrMembersIntoUnnestRule : public RewriteRule {
 public:
  std::string_view name() const override {
    return "merge-keys-or-members-into-unnest";
  }

  Result<bool> Apply(LOpPtr& slot, RewriteContext* ctx) override {
    if (slot->kind != LOpKind::kUnnest || slot->inputs.empty()) return false;
    const LExprPtr& e = slot->expr;
    if (e == nullptr || !e->IsFunction(Builtin::kIterate) ||
        !e->args[0]->IsVarRef()) {
      return false;
    }
    VarId x = e->args[0]->var;
    LOpPtr assign = slot->input();
    if (assign->kind != LOpKind::kAssign || assign->out_var != x ||
        assign->expr == nullptr ||
        !assign->expr->IsFunction(Builtin::kKeysOrMembers)) {
      return false;
    }
    if (CountVarUses(ctx->root, x) != 1) return false;
    slot->expr = assign->expr;
    slot->inputs[0] = assign->input();
    return true;
  }
};

}  // namespace

std::unique_ptr<RewriteRule> MakeRemovePromoteDataRule() {
  return std::make_unique<RemovePromoteDataRule>();
}

std::unique_ptr<RewriteRule> MakeMergeKeysOrMembersIntoUnnestRule() {
  return std::make_unique<MergeKeysOrMembersIntoUnnestRule>();
}

}  // namespace jpar
