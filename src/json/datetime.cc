#include "json/datetime.h"

#include <cstdio>

namespace jpar {

namespace {

// Parses exactly `n` digits starting at `pos`; advances pos on success.
bool ParseDigits(std::string_view s, size_t* pos, int n, int32_t* out) {
  if (*pos + static_cast<size_t>(n) > s.size()) return false;
  int32_t v = 0;
  for (int i = 0; i < n; ++i) {
    char c = s[*pos + static_cast<size_t>(i)];
    if (c < '0' || c > '9') return false;
    v = v * 10 + (c - '0');
  }
  *pos += static_cast<size_t>(n);
  *out = v;
  return true;
}

bool Consume(std::string_view s, size_t* pos, char c) {
  if (*pos < s.size() && s[*pos] == c) {
    ++*pos;
    return true;
  }
  return false;
}

}  // namespace

int DateTimeValue::Compare(const DateTimeValue& other) const {
  auto cmp = [](int64_t a, int64_t b) { return (a > b) - (a < b); };
  if (int c = cmp(year, other.year)) return c;
  if (int c = cmp(month, other.month)) return c;
  if (int c = cmp(day, other.day)) return c;
  if (int c = cmp(hour, other.hour)) return c;
  if (int c = cmp(minute, other.minute)) return c;
  return cmp(second, other.second);
}

Result<DateTimeValue> ParseDateTime(std::string_view text) {
  DateTimeValue dt;
  size_t pos = 0;
  int32_t y, mo, d;
  if (!ParseDigits(text, &pos, 4, &y)) {
    return Status::ParseError("dateTime: bad year in '" + std::string(text) +
                              "'");
  }
  bool dashed = Consume(text, &pos, '-');
  if (!ParseDigits(text, &pos, 2, &mo)) {
    return Status::ParseError("dateTime: bad month in '" + std::string(text) +
                              "'");
  }
  if (dashed && !Consume(text, &pos, '-')) {
    return Status::ParseError("dateTime: expected '-' in '" +
                              std::string(text) + "'");
  }
  if (!ParseDigits(text, &pos, 2, &d)) {
    return Status::ParseError("dateTime: bad day in '" + std::string(text) +
                              "'");
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31) {
    return Status::ParseError("dateTime: out-of-range date in '" +
                              std::string(text) + "'");
  }
  dt.year = y;
  dt.month = static_cast<int8_t>(mo);
  dt.day = static_cast<int8_t>(d);
  if (pos == text.size()) return dt;
  if (!Consume(text, &pos, 'T')) {
    return Status::ParseError("dateTime: expected 'T' in '" +
                              std::string(text) + "'");
  }
  int32_t h, mi;
  if (!ParseDigits(text, &pos, 2, &h) || !Consume(text, &pos, ':') ||
      !ParseDigits(text, &pos, 2, &mi)) {
    return Status::ParseError("dateTime: bad time in '" + std::string(text) +
                              "'");
  }
  if (h > 23 || mi > 59) {
    return Status::ParseError("dateTime: out-of-range time in '" +
                              std::string(text) + "'");
  }
  dt.hour = static_cast<int8_t>(h);
  dt.minute = static_cast<int8_t>(mi);
  if (Consume(text, &pos, ':')) {
    int32_t se;
    if (!ParseDigits(text, &pos, 2, &se) || se > 59) {
      return Status::ParseError("dateTime: bad seconds in '" +
                                std::string(text) + "'");
    }
    dt.second = static_cast<int8_t>(se);
  }
  if (pos != text.size()) {
    return Status::ParseError("dateTime: trailing characters in '" +
                              std::string(text) + "'");
  }
  return dt;
}

std::string FormatDateTime(const DateTimeValue& dt) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d", dt.year,
                dt.month, dt.day, dt.hour, dt.minute, dt.second);
  return buf;
}

}  // namespace jpar
