#ifndef JPAR_JSON_PARSER_H_
#define JPAR_JSON_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "json/item.h"
#include "json/structural_index.h"

namespace jpar {

/// Parses a complete JSON document into an Item (DOM). Numbers without
/// fraction/exponent that fit int64 become kInt64, otherwise kDouble.
/// Trailing non-whitespace after the document is an error.
Result<Item> ParseJson(std::string_view text);

/// Parses a stream of concatenated or newline-delimited JSON documents
/// (NDJSON). Whitespace-only input yields zero documents. Collection
/// files are streams: a file may hold one document or many.
Result<std::vector<Item>> ParseJsonStream(std::string_view text);

/// Internal recursive-descent cursor shared by the DOM parser and the
/// projecting reader. Exposed in the header for the projecting reader
/// and for white-box tests.
class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  /// Indexed cursor (the stage-2 side of DESIGN.md §9). `index` must
  /// have been built over the buffer that contains `text`, with `text`
  /// starting at byte `index_offset` of that buffer — the projecting
  /// stream reader uses a nonzero offset for per-record cursors in
  /// degraded scans. With an index, SkipValue hops structural-to-
  /// structural and string scanning jumps quote-to-quote instead of
  /// inspecting every byte. One deliberate relaxation: escape sequences
  /// inside *skipped* strings are not validated (materialized strings
  /// still are) — structural malformations are still caught.
  JsonCursor(std::string_view text, const StructuralIndex* index,
             size_t index_offset = 0)
      : text_(text), index_(index), index_offset_(index_offset) {}

  /// Parses one JSON value at the cursor into a DOM Item.
  Result<Item> ParseValue(int depth = 0);

  /// Skips one JSON value without materializing it. This is what makes
  /// path-projected scans cheap: non-matching subtrees are scanned
  /// (byte-by-byte without an index, structural-to-structural with one)
  /// but never allocated.
  Status SkipValue(int depth = 0);

  /// Parses a JSON string at the cursor (cursor must be at '"').
  Result<std::string> ParseString();

  void SkipWhitespace();
  bool AtEnd() {
    SkipWhitespace();
    return pos_ >= text_.size();
  }
  size_t position() const { return pos_; }
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Consume(char c) {
    if (Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ErrorHere(std::string msg) const;

  /// Maximum nesting depth accepted before reporting an error (guards
  /// against stack exhaustion on adversarial inputs).
  static constexpr int kMaxDepth = 512;

 private:
  Result<Item> ParseNumber();
  Status Expect(char c);

  /// Indexed helpers (require index_ != nullptr).
  size_t IndexNextQuote(size_t local_pos) const;
  Status SkipString();
  Status SkipAtom();
  Status SkipValueIndexed(int depth);

  std::string_view text_;
  size_t pos_ = 0;
  const StructuralIndex* index_ = nullptr;  // not owned; null = scalar
  size_t index_offset_ = 0;
};

}  // namespace jpar

#endif  // JPAR_JSON_PARSER_H_
