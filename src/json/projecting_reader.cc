#include "json/projecting_reader.h"

#include <cstring>

#include "json/parser.h"

namespace jpar {

std::string PathStep::ToString() const {
  switch (kind) {
    case Kind::kKey:
      return "(\"" + key + "\")";
    case Kind::kIndex:
      return "(" + std::to_string(index) + ")";
    case Kind::kKeysOrMembers:
      return "()";
  }
  return "?";
}

std::string PathToString(const std::vector<PathStep>& steps) {
  std::string out;
  for (const PathStep& s : steps) out += s.ToString();
  return out;
}

namespace {

/// Recursive projector over a JsonCursor. At each level, `step` indexes
/// into `steps`; when all steps are consumed the value at the cursor is
/// materialized and emitted.
class Projector {
 public:
  Projector(JsonCursor* cursor, const std::vector<PathStep>& steps,
            const std::function<Status(Item)>& sink, ProjectionStats* stats)
      : cursor_(*cursor), steps_(steps), sink_(sink), stats_(stats) {}

  Status Project(size_t step, int depth) {
    if (depth > JsonCursor::kMaxDepth) {
      return cursor_.ErrorHere("document too deeply nested");
    }
    if (step == steps_.size()) return Emit();
    const PathStep& s = steps_[step];
    cursor_.SkipWhitespace();
    char c = cursor_.Peek();
    switch (s.kind) {
      case PathStep::Kind::kKey: {
        if (c != '{') return cursor_.SkipValue(depth);
        return ProjectObjectKey(s.key, step, depth);
      }
      case PathStep::Kind::kIndex: {
        if (c != '[') return cursor_.SkipValue(depth);
        return ProjectArrayIndex(s.index, step, depth);
      }
      case PathStep::Kind::kKeysOrMembers: {
        if (c == '[') return ProjectArrayMembers(step, depth);
        if (c == '{') return ProjectObjectKeys(step, depth);
        // keys-or-members on an atomic yields the empty sequence.
        return cursor_.SkipValue(depth);
      }
    }
    return Status::Internal("unreachable path step kind");
  }

 private:
  Status Emit() {
    JPAR_ASSIGN_OR_RETURN(Item item, cursor_.ParseValue());
    if (stats_ != nullptr) {
      ++stats_->items_emitted;
      stats_->bytes_materialized += item.EstimateSizeBytes();
    }
    return sink_(std::move(item));
  }

  Status ProjectObjectKey(const std::string& key, size_t step, int depth) {
    cursor_.Consume('{');
    cursor_.SkipWhitespace();
    if (cursor_.Consume('}')) return Status::OK();
    while (true) {
      JPAR_ASSIGN_OR_RETURN(std::string k, cursor_.ParseString());
      cursor_.SkipWhitespace();
      if (!cursor_.Consume(':')) return cursor_.ErrorHere("expected ':'");
      if (k == key) {
        JPAR_RETURN_NOT_OK(Project(step + 1, depth + 1));
      } else {
        JPAR_RETURN_NOT_OK(cursor_.SkipValue(depth + 1));
      }
      cursor_.SkipWhitespace();
      if (cursor_.Consume(',')) {
        cursor_.SkipWhitespace();
        continue;
      }
      if (cursor_.Consume('}')) return Status::OK();
      return cursor_.ErrorHere("expected ',' or '}' in object");
    }
  }

  Status ProjectArrayIndex(int64_t index, size_t step, int depth) {
    cursor_.Consume('[');
    cursor_.SkipWhitespace();
    if (cursor_.Consume(']')) return Status::OK();
    int64_t pos = 1;  // JSONiq array positions are 1-based
    while (true) {
      if (pos == index) {
        JPAR_RETURN_NOT_OK(Project(step + 1, depth + 1));
      } else {
        JPAR_RETURN_NOT_OK(cursor_.SkipValue(depth + 1));
      }
      ++pos;
      cursor_.SkipWhitespace();
      if (cursor_.Consume(',')) continue;
      if (cursor_.Consume(']')) return Status::OK();
      return cursor_.ErrorHere("expected ',' or ']' in array");
    }
  }

  Status ProjectArrayMembers(size_t step, int depth) {
    cursor_.Consume('[');
    cursor_.SkipWhitespace();
    if (cursor_.Consume(']')) return Status::OK();
    while (true) {
      JPAR_RETURN_NOT_OK(Project(step + 1, depth + 1));
      cursor_.SkipWhitespace();
      if (cursor_.Consume(',')) continue;
      if (cursor_.Consume(']')) return Status::OK();
      return cursor_.ErrorHere("expected ',' or ']' in array");
    }
  }

  Status ProjectObjectKeys(size_t step, int depth) {
    // keys-or-members over an object yields its keys (strings); any
    // further path steps over a plain string select nothing.
    cursor_.Consume('{');
    cursor_.SkipWhitespace();
    if (cursor_.Consume('}')) return Status::OK();
    while (true) {
      JPAR_ASSIGN_OR_RETURN(std::string k, cursor_.ParseString());
      cursor_.SkipWhitespace();
      if (!cursor_.Consume(':')) return cursor_.ErrorHere("expected ':'");
      if (step + 1 == steps_.size()) {
        if (stats_ != nullptr) {
          ++stats_->items_emitted;
          stats_->bytes_materialized += sizeof(Item) + k.size();
        }
        JPAR_RETURN_NOT_OK(sink_(Item::String(std::move(k))));
      }
      JPAR_RETURN_NOT_OK(cursor_.SkipValue(depth + 1));
      cursor_.SkipWhitespace();
      if (cursor_.Consume(',')) {
        cursor_.SkipWhitespace();
        continue;
      }
      if (cursor_.Consume('}')) return Status::OK();
      return cursor_.ErrorHere("expected ',' or '}' in object");
    }
  }

  JsonCursor& cursor_;
  const std::vector<PathStep>& steps_;
  const std::function<Status(Item)>& sink_;
  ProjectionStats* stats_;
};

}  // namespace

namespace {

/// Raw-byte newline search used by degraded-scan resync. Deliberately
/// NOT the index's outside-string newline bitmap: after a malformed
/// record the in-string mask is unreliable, and resync must land on the
/// same byte in both scan modes.
size_t FindNewline(std::string_view text, size_t from) {
  if (from >= text.size()) return std::string_view::npos;
  const void* hit =
      std::memchr(text.data() + from, '\n', text.size() - from);
  if (hit == nullptr) return std::string_view::npos;
  return static_cast<size_t>(static_cast<const char*>(hit) - text.data());
}

}  // namespace

Status ProjectJson(std::string_view text, const std::vector<PathStep>& steps,
                   const std::function<Status(Item)>& sink,
                   ProjectionStats* stats, ScanMode mode) {
  StructuralIndex index;
  const StructuralIndex* idx = nullptr;
  if (mode == ScanMode::kIndexed) {
    index = StructuralIndex::Build(text);
    idx = &index;
  }
  JsonCursor cursor = idx != nullptr ? JsonCursor(text, idx)
                                     : JsonCursor(text);
  Projector projector(&cursor, steps, sink, stats);
  JPAR_RETURN_NOT_OK(projector.Project(0, 0));
  if (!cursor.AtEnd()) {
    return cursor.ErrorHere("trailing characters after JSON document");
  }
  if (stats != nullptr) {
    stats->bytes_scanned += text.size();
    ++stats->documents;
  }
  return Status::OK();
}

Status ProjectJsonStreamWithIndex(std::string_view text,
                                  const std::vector<PathStep>& steps,
                                  const StructuralIndex* prebuilt,
                                  size_t index_origin,
                                  const std::function<Status(Item)>& sink,
                                  ProjectionStats* stats,
                                  uint64_t* skipped_records, ScanMode mode) {
  // Stage 1 runs once per buffer; every cursor below (including the
  // per-record cursors of the degraded scan) consumes the same bitmaps.
  // A caller-provided tape replaces the Build pass; `origin` tracks the
  // offset of text[0] within the buffer the active index covers. It
  // goes negative after a degraded scan rebuilds a suffix index (the
  // local index then starts *inside* text), and every cursor offset
  // below is origin + text offset, which is always >= 0.
  StructuralIndex local;
  const StructuralIndex* idx = nullptr;
  int64_t origin = 0;
  if (mode == ScanMode::kIndexed) {
    if (prebuilt != nullptr) {
      idx = prebuilt;
      origin = static_cast<int64_t>(index_origin);
    } else {
      local = StructuralIndex::Build(text);
      idx = &local;
    }
  }

  if (skipped_records == nullptr) {
    // Strict mode: one cursor straight through the stream.
    JsonCursor cursor =
        idx != nullptr ? JsonCursor(text, idx, static_cast<size_t>(origin))
                       : JsonCursor(text);
    Projector projector(&cursor, steps, sink, stats);
    while (!cursor.AtEnd()) {
      JPAR_RETURN_NOT_OK(projector.Project(0, 0));
      if (stats != nullptr) ++stats->documents;
    }
    if (stats != nullptr) stats->bytes_scanned += text.size();
    return Status::OK();
  }

  // Lenient mode: each record gets a fresh cursor so a parse failure
  // leaves a well-defined resync position: the first raw newline at or
  // after the *start* of the failed record. Resyncing from the record
  // start (not the error position) is what keeps the two scan modes in
  // lockstep — on a malformed record the scalar and indexed parsers can
  // legitimately detect the error at different offsets (the indexed
  // path hops an unterminated string to the next unescaped quote and
  // fails there; the scalar path may die earlier on a bad escape), and
  // a resync anchored to the error position would diverge. With an
  // index there is one extra wrinkle: a malformed record with
  // unbalanced quotes poisons the in-string mask for the rest of the
  // buffer, while the scalar path restarts at the newline with fresh
  // state. When that happens (detected via InString at the resync
  // point) the index is rebuilt over the remaining suffix, so both
  // modes recover identically.
  size_t offset = 0;
  while (offset < text.size()) {
    std::string_view rest = text.substr(offset);
    JsonCursor cursor =
        idx != nullptr
            ? JsonCursor(rest, idx,
                         static_cast<size_t>(origin +
                                             static_cast<int64_t>(offset)))
            : JsonCursor(rest);
    if (cursor.AtEnd()) break;
    cursor.SkipWhitespace();
    size_t record_start = cursor.position();
    Projector projector(&cursor, steps, sink, stats);
    if (stats != nullptr) ++stats->documents;
    Status st = projector.Project(0, 0);
    if (!st.ok()) {
      if (st.code() != StatusCode::kParseError) return st;
      ++*skipped_records;
      size_t newline = FindNewline(rest, record_start);
      if (newline == std::string_view::npos) break;  // tail is unusable
      offset += newline + 1;
      size_t ipos = static_cast<size_t>(origin + static_cast<int64_t>(offset));
      if (idx != nullptr && ipos < idx->size() && idx->InString(ipos)) {
        local = StructuralIndex::Build(text.substr(offset));
        idx = &local;
        origin = -static_cast<int64_t>(offset);
      }
      continue;
    }
    offset += cursor.position();
  }
  if (stats != nullptr) stats->bytes_scanned += text.size();
  return Status::OK();
}

Status ProjectJsonStream(std::string_view text,
                         const std::vector<PathStep>& steps,
                         const std::function<Status(Item)>& sink,
                         ProjectionStats* stats,
                         uint64_t* skipped_records, ScanMode mode) {
  return ProjectJsonStreamWithIndex(text, steps, nullptr, 0, sink, stats,
                                    skipped_records, mode);
}

Status NavigateItemPath(const Item& item, const std::vector<PathStep>& steps,
                        size_t from,
                        const std::function<Status(Item)>& sink) {
  if (from == steps.size()) return sink(item);
  const PathStep& step = steps[from];
  switch (step.kind) {
    case PathStep::Kind::kKey: {
      if (!item.is_object()) return Status::OK();
      std::optional<Item> field = item.GetField(step.key);
      if (!field.has_value()) return Status::OK();
      return NavigateItemPath(*field, steps, from + 1, sink);
    }
    case PathStep::Kind::kIndex: {
      if (!item.is_array()) return Status::OK();
      const Item::ItemVector& elems = item.array();
      if (step.index < 1 ||
          static_cast<size_t>(step.index) > elems.size()) {
        return Status::OK();
      }
      return NavigateItemPath(elems[static_cast<size_t>(step.index - 1)],
                              steps, from + 1, sink);
    }
    case PathStep::Kind::kKeysOrMembers: {
      if (item.is_array()) {
        for (const Item& member : item.array()) {
          JPAR_RETURN_NOT_OK(
              NavigateItemPath(member, steps, from + 1, sink));
        }
        return Status::OK();
      }
      if (item.is_object()) {
        for (const ObjectField& f : item.object()) {
          if (from + 1 == steps.size()) {
            JPAR_RETURN_NOT_OK(sink(Item::String(f.key)));
          }
        }
        return Status::OK();
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable path step kind");
}

}  // namespace jpar
