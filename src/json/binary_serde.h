#ifndef JPAR_JSON_BINARY_SERDE_H_
#define JPAR_JSON_BINARY_SERDE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/item.h"

namespace jpar {

/// Compact tag-length-value binary encoding of Items. This is the
/// physical record format used inside dataflow frames (the Hyracks
/// analogue of its binary tuple accessors) and by the AsterixDB-like
/// baseline's pre-loaded "ADM" store.
///
/// Layout: 1 tag byte, then
///   null            -> nothing
///   boolean         -> 1 byte
///   int64           -> varint (zigzag)
///   double          -> 8 bytes little-endian
///   string          -> varint length + bytes
///   datetime        -> 4B year + 5 x 1B fields
///   array/sequence  -> varint count + elements
///   object          -> varint count + (varint keylen + key + value)*
class ItemWriter {
 public:
  explicit ItemWriter(std::string* out) : out_(*out) {}

  void Write(const Item& item);

  static void AppendVarint(uint64_t v, std::string* out);
  static uint64_t ZigZag(int64_t v) {
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
  }

 private:
  std::string& out_;
};

class ItemReader {
 public:
  explicit ItemReader(std::string_view data) : data_(data) {}

  Result<Item> Read();
  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

  static int64_t UnZigZag(uint64_t v) {
    return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
  }

 private:
  Result<uint64_t> ReadVarint();
  Result<Item> ReadValue(int depth);

  std::string_view data_;
  size_t pos_ = 0;
};

/// Convenience round-trip helpers.
std::string SerializeItem(const Item& item);
Result<Item> DeserializeItem(std::string_view data);

}  // namespace jpar

#endif  // JPAR_JSON_BINARY_SERDE_H_
