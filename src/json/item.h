#ifndef JPAR_JSON_ITEM_H_
#define JPAR_JSON_ITEM_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/result.h"
#include "json/datetime.h"

namespace jpar {

/// Kinds of values an Item can hold. kSequence is the XDM/JSONiq flat
/// sequence: it never nests (constructors flatten) and a one-item
/// sequence is normalized to the item itself.
enum class ItemKind : uint8_t {
  kNull = 0,
  kBoolean,
  kInt64,
  kDouble,
  kString,
  kDateTime,
  kArray,
  kObject,
  kSequence,
};

std::string_view ItemKindToString(ItemKind kind);

struct ObjectField;  // defined below Item (needs the complete type)

/// An immutable JSON/JSONiq value. Scalars are stored inline; arrays,
/// objects, and sequences share their payload via shared_ptr, making Item
/// cheap to copy (the engine copies items between tuples constantly).
///
/// Arrays and sequences share a storage representation (a vector of
/// items) and are distinguished by kind(): an array is a JSON value that
/// can nest inside documents, a sequence is the query-language collection
/// of items produced by e.g. keys-or-members.
class Item {
 public:
  using ItemVector = std::vector<Item>;
  using Field = ObjectField;
  using Object = std::vector<ObjectField>;

  /// Default-constructed Item is JSON null.
  Item() : kind_(ItemKind::kNull) {}

  static Item Null() { return Item(); }
  static Item Boolean(bool v) { return Item(ItemKind::kBoolean, v); }
  static Item Int64(int64_t v) { return Item(ItemKind::kInt64, v); }
  static Item Double(double v) { return Item(ItemKind::kDouble, v); }
  static Item String(std::string v) {
    return Item(ItemKind::kString,
                std::make_shared<const std::string>(std::move(v)));
  }
  static Item String(std::string_view v) { return String(std::string(v)); }
  static Item String(const char* v) { return String(std::string(v)); }
  static Item DateTime(DateTimeValue v) { return Item(ItemKind::kDateTime, v); }
  static Item MakeArray(ItemVector elems) {
    return Item(ItemKind::kArray,
                std::make_shared<const ItemVector>(std::move(elems)));
  }
  static Item MakeObject(Object fields);  // defined in item.cc

  /// Builds a flat sequence: nested sequences in `items` are spliced in,
  /// a resulting singleton collapses to the item itself, an empty input
  /// yields the empty sequence.
  static Item MakeSequence(ItemVector items);
  static Item EmptySequence() {
    return Item(ItemKind::kSequence, std::make_shared<const ItemVector>());
  }

  ItemKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ItemKind::kNull; }
  bool is_boolean() const { return kind_ == ItemKind::kBoolean; }
  bool is_int64() const { return kind_ == ItemKind::kInt64; }
  bool is_double() const { return kind_ == ItemKind::kDouble; }
  bool is_numeric() const { return is_int64() || is_double(); }
  bool is_string() const { return kind_ == ItemKind::kString; }
  bool is_datetime() const { return kind_ == ItemKind::kDateTime; }
  bool is_array() const { return kind_ == ItemKind::kArray; }
  bool is_object() const { return kind_ == ItemKind::kObject; }
  bool is_sequence() const { return kind_ == ItemKind::kSequence; }
  bool is_json_item() const { return is_array() || is_object(); }
  bool is_atomic() const {
    return !is_array() && !is_object() && !is_sequence();
  }

  // Unchecked accessors: caller must have verified the kind.
  bool boolean_value() const { return std::get<bool>(value_); }
  int64_t int64_value() const { return std::get<int64_t>(value_); }
  double double_value() const { return std::get<double>(value_); }
  const DateTimeValue& datetime_value() const {
    return std::get<DateTimeValue>(value_);
  }
  const std::string& string_value() const {
    return *std::get<std::shared_ptr<const std::string>>(value_);
  }
  const ItemVector& array() const { return items_payload(); }
  const Object& object() const;  // defined in item.cc
  const ItemVector& sequence() const { return items_payload(); }

  /// Numeric value widened to double (int64 or double kinds only).
  double AsDouble() const {
    return is_int64() ? static_cast<double>(int64_value()) : double_value();
  }

  /// Object field lookup by key; nullopt when absent or not an object.
  std::optional<Item> GetField(std::string_view key) const;

  /// Number of items this value contributes to a sequence: 0 for the
  /// empty sequence, n for a sequence of n, 1 otherwise.
  size_t SequenceLength() const {
    return is_sequence() ? sequence().size() : 1;
  }

  /// Deep structural equality (JSON equality; sequences compare
  /// elementwise, int 1 == double 1.0).
  bool Equals(const Item& other) const;

  friend bool operator==(const Item& a, const Item& b) { return a.Equals(b); }
  friend bool operator!=(const Item& a, const Item& b) {
    return !a.Equals(b);
  }
  /// Streams the JSON text form (gtest failure messages).
  friend std::ostream& operator<<(std::ostream& os, const Item& item);

  /// Three-way comparison for atomic items of comparable types
  /// (numeric/numeric, string/string, datetime/datetime, bool/bool).
  Result<int> Compare(const Item& other) const;

  /// XQuery effective boolean value: false for null, false, the empty
  /// sequence, 0, NaN, and ""; true for other atomics and for
  /// arrays/objects; singleton sequences never occur (normalized away).
  Result<bool> EffectiveBooleanValue() const;

  /// Serializes to compact JSON text. A sequence renders as its items
  /// separated by ", " with no surrounding brackets (JSONiq serializer
  /// convention for top-level sequences).
  std::string ToJsonString() const;
  void AppendJsonTo(std::string* out) const;

  /// Approximate in-memory footprint in bytes (used by the memory
  /// accounting counters; includes nested payloads).
  size_t EstimateSizeBytes() const;

  /// Grouping/join key encoding: appends a kind-tagged stable byte string
  /// for an atomic item (so Int64(1) and String("1") differ).
  void AppendGroupKeyTo(std::string* out) const;

 private:
  using Storage =
      std::variant<std::monostate, bool, int64_t, double, DateTimeValue,
                   std::shared_ptr<const std::string>,
                   std::shared_ptr<const ItemVector>,
                   std::shared_ptr<const Object>>;

  template <typename V>
  Item(ItemKind kind, V value) : kind_(kind), value_(std::move(value)) {}

  const ItemVector& items_payload() const {
    return *std::get<std::shared_ptr<const ItemVector>>(value_);
  }

  ItemKind kind_;
  Storage value_;
};

/// One key/value pair of a JSON object. Objects preserve insertion order
/// (JSONiq object semantics).
struct ObjectField {
  std::string key;
  Item value;
};

}  // namespace jpar

#endif  // JPAR_JSON_ITEM_H_
