#include "json/parser.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace jpar {

namespace {

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

Status JsonCursor::ErrorHere(std::string msg) const {
  return Status::ParseError(msg + " at offset " + std::to_string(pos_));
}

void JsonCursor::SkipWhitespace() {
  while (pos_ < text_.size()) {
    char c = text_[pos_];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++pos_;
    } else {
      break;
    }
  }
}

Status JsonCursor::Expect(char c) {
  SkipWhitespace();
  if (!Consume(c)) {
    return ErrorHere(std::string("expected '") + c + "'");
  }
  return Status::OK();
}

size_t JsonCursor::IndexNextQuote(size_t local_pos) const {
  size_t abs = index_->NextQuote(index_offset_ + local_pos);
  if (abs == StructuralIndex::npos) return StructuralIndex::npos;
  return abs - index_offset_;
}

Result<std::string> JsonCursor::ParseString() {
  SkipWhitespace();
  if (!Consume('"')) return ErrorHere("expected string");
  if (index_ != nullptr) {
    size_t close = IndexNextQuote(pos_);
    if (close == StructuralIndex::npos) {
      pos_ = text_.size();
      return ErrorHere("unterminated string");
    }
    if (std::memchr(text_.data() + pos_, '\\', close - pos_) == nullptr) {
      // Escape-free string: one bulk copy instead of a byte loop.
      std::string fast(text_.substr(pos_, close - pos_));
      pos_ = close + 1;
      return fast;
    }
    // Escapes present: decode with the scalar loop (it stops at the
    // same unescaped quote the bitmap found).
  }
  std::string out;
  while (pos_ < text_.size()) {
    char c = text_[pos_++];
    if (c == '"') return out;
    if (c == '\\') {
      if (pos_ >= text_.size()) return ErrorHere("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return ErrorHere("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return ErrorHere("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through individually; sufficient for this engine's data).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return ErrorHere("unknown escape");
      }
    } else {
      out.push_back(c);
    }
  }
  return ErrorHere("unterminated string");
}

Result<Item> JsonCursor::ParseNumber() {
  size_t start = pos_;
  if (Peek() == '-') ++pos_;
  while (IsDigit(Peek())) ++pos_;
  bool is_double = false;
  if (Peek() == '.') {
    is_double = true;
    ++pos_;
    if (!IsDigit(Peek())) return ErrorHere("digit expected after '.'");
    while (IsDigit(Peek())) ++pos_;
  }
  if (Peek() == 'e' || Peek() == 'E') {
    is_double = true;
    ++pos_;
    if (Peek() == '+' || Peek() == '-') ++pos_;
    if (!IsDigit(Peek())) return ErrorHere("digit expected in exponent");
    while (IsDigit(Peek())) ++pos_;
  }
  if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
    return ErrorHere("invalid number");
  }
  std::string token(text_.substr(start, pos_ - start));
  if (!is_double) {
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(token.c_str(), &end, 10);
    if (errno != ERANGE && end == token.c_str() + token.size()) {
      return Item::Int64(v);
    }
  }
  errno = 0;
  char* end = nullptr;
  double d = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) {
    return ErrorHere("invalid number");
  }
  return Item::Double(d);
}

Result<Item> JsonCursor::ParseValue(int depth) {
  if (depth > kMaxDepth) return ErrorHere("document too deeply nested");
  SkipWhitespace();
  char c = Peek();
  switch (c) {
    case '{': {
      ++pos_;
      Item::Object fields;
      SkipWhitespace();
      if (Consume('}')) return Item::MakeObject(std::move(fields));
      while (true) {
        JPAR_ASSIGN_OR_RETURN(std::string key, ParseString());
        JPAR_RETURN_NOT_OK(Expect(':'));
        JPAR_ASSIGN_OR_RETURN(Item value, ParseValue(depth + 1));
        fields.push_back({std::move(key), std::move(value)});
        SkipWhitespace();
        if (Consume(',')) {
          SkipWhitespace();
          continue;
        }
        if (Consume('}')) return Item::MakeObject(std::move(fields));
        return ErrorHere("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++pos_;
      Item::ItemVector elems;
      SkipWhitespace();
      if (Consume(']')) return Item::MakeArray(std::move(elems));
      while (true) {
        JPAR_ASSIGN_OR_RETURN(Item value, ParseValue(depth + 1));
        elems.push_back(std::move(value));
        SkipWhitespace();
        if (Consume(',')) continue;
        if (Consume(']')) return Item::MakeArray(std::move(elems));
        return ErrorHere("expected ',' or ']' in array");
      }
    }
    case '"': {
      JPAR_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Item::String(std::move(s));
    }
    case 't':
      if (text_.substr(pos_, 4) == "true") {
        pos_ += 4;
        return Item::Boolean(true);
      }
      return ErrorHere("invalid literal");
    case 'f':
      if (text_.substr(pos_, 5) == "false") {
        pos_ += 5;
        return Item::Boolean(false);
      }
      return ErrorHere("invalid literal");
    case 'n':
      if (text_.substr(pos_, 4) == "null") {
        pos_ += 4;
        return Item::Null();
      }
      return ErrorHere("invalid literal");
    default:
      if (c == '-' || IsDigit(c)) return ParseNumber();
      return ErrorHere("unexpected character");
  }
}

/// Skips the string at the cursor (cursor at '"') via the quote bitmap:
/// no materialization, no byte loop. Escape sequences in the skipped
/// body are not validated (the bitmap already excluded escaped quotes).
Status JsonCursor::SkipString() {
  ++pos_;  // opening quote
  size_t close = IndexNextQuote(pos_);
  if (close == StructuralIndex::npos) {
    pos_ = text_.size();
    return ErrorHere("unterminated string");
  }
  pos_ = close + 1;
  return Status::OK();
}

/// Validates-and-skips a number or literal token, mirroring the scalar
/// grammar (and its error messages) without converting the number.
Status JsonCursor::SkipAtom() {
  char c = Peek();
  if (c == 't') {
    if (text_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return Status::OK();
    }
    return ErrorHere("invalid literal");
  }
  if (c == 'f') {
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return Status::OK();
    }
    return ErrorHere("invalid literal");
  }
  if (c == 'n') {
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Status::OK();
    }
    return ErrorHere("invalid literal");
  }
  if (c == '-' || IsDigit(c)) {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (IsDigit(Peek())) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!IsDigit(Peek())) return ErrorHere("digit expected after '.'");
      while (IsDigit(Peek())) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!IsDigit(Peek())) return ErrorHere("digit expected in exponent");
      while (IsDigit(Peek())) ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return ErrorHere("invalid number");
    }
    return Status::OK();
  }
  return ErrorHere("unexpected character");
}

/// SkipValue against the structural index: the same automaton as the
/// scalar path (same structural validation, same error taxonomy), but
/// strings — including every skipped object key — hop quote-to-quote
/// via the bitmap instead of being scanned and materialized.
Status JsonCursor::SkipValueIndexed(int depth) {
  if (depth > kMaxDepth) return ErrorHere("document too deeply nested");
  SkipWhitespace();
  switch (Peek()) {
    case '{': {
      ++pos_;
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      while (true) {
        SkipWhitespace();
        if (Peek() != '"') return ErrorHere("expected string");
        JPAR_RETURN_NOT_OK(SkipString());
        JPAR_RETURN_NOT_OK(Expect(':'));
        JPAR_RETURN_NOT_OK(SkipValueIndexed(depth + 1));
        SkipWhitespace();
        if (Consume(',')) continue;
        if (Consume('}')) return Status::OK();
        return ErrorHere("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++pos_;
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      while (true) {
        JPAR_RETURN_NOT_OK(SkipValueIndexed(depth + 1));
        SkipWhitespace();
        if (Consume(',')) continue;
        if (Consume(']')) return Status::OK();
        return ErrorHere("expected ',' or ']' in array");
      }
    }
    case '"':
      return SkipString();
    default:
      return SkipAtom();
  }
}

Status JsonCursor::SkipValue(int depth) {
  if (index_ != nullptr) return SkipValueIndexed(depth);
  if (depth > kMaxDepth) return ErrorHere("document too deeply nested");
  SkipWhitespace();
  char c = Peek();
  switch (c) {
    case '{': {
      ++pos_;
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      while (true) {
        JPAR_ASSIGN_OR_RETURN(std::string key, ParseString());
        (void)key;
        JPAR_RETURN_NOT_OK(Expect(':'));
        JPAR_RETURN_NOT_OK(SkipValue(depth + 1));
        SkipWhitespace();
        if (Consume(',')) {
          SkipWhitespace();
          continue;
        }
        if (Consume('}')) return Status::OK();
        return ErrorHere("expected ',' or '}' in object");
      }
    }
    case '[': {
      ++pos_;
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      while (true) {
        JPAR_RETURN_NOT_OK(SkipValue(depth + 1));
        SkipWhitespace();
        if (Consume(',')) continue;
        if (Consume(']')) return Status::OK();
        return ErrorHere("expected ',' or ']' in array");
      }
    }
    case '"': {
      JPAR_ASSIGN_OR_RETURN(std::string s, ParseString());
      (void)s;
      return Status::OK();
    }
    default: {
      JPAR_ASSIGN_OR_RETURN(Item v, ParseValue(depth));
      (void)v;
      return Status::OK();
    }
  }
}

Result<Item> ParseJson(std::string_view text) {
  JsonCursor cursor(text);
  JPAR_ASSIGN_OR_RETURN(Item item, cursor.ParseValue());
  if (!cursor.AtEnd()) {
    return cursor.ErrorHere("trailing characters after JSON document");
  }
  return item;
}

Result<std::vector<Item>> ParseJsonStream(std::string_view text) {
  std::vector<Item> docs;
  JsonCursor cursor(text);
  while (!cursor.AtEnd()) {
    JPAR_ASSIGN_OR_RETURN(Item item, cursor.ParseValue());
    docs.push_back(std::move(item));
  }
  return docs;
}

}  // namespace jpar
