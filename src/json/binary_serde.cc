#include "json/binary_serde.h"

#include <cstring>

namespace jpar {

void ItemWriter::AppendVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void ItemWriter::Write(const Item& item) {
  out_.push_back(static_cast<char>(item.kind()));
  switch (item.kind()) {
    case ItemKind::kNull:
      return;
    case ItemKind::kBoolean:
      out_.push_back(item.boolean_value() ? 1 : 0);
      return;
    case ItemKind::kInt64:
      AppendVarint(ZigZag(item.int64_value()), &out_);
      return;
    case ItemKind::kDouble: {
      double v = item.double_value();
      char buf[sizeof(double)];
      std::memcpy(buf, &v, sizeof(double));
      out_.append(buf, sizeof(double));
      return;
    }
    case ItemKind::kString: {
      const std::string& s = item.string_value();
      AppendVarint(s.size(), &out_);
      out_.append(s);
      return;
    }
    case ItemKind::kDateTime: {
      const DateTimeValue& dt = item.datetime_value();
      char buf[4];
      std::memcpy(buf, &dt.year, sizeof(int32_t));
      out_.append(buf, sizeof(int32_t));
      out_.push_back(static_cast<char>(dt.month));
      out_.push_back(static_cast<char>(dt.day));
      out_.push_back(static_cast<char>(dt.hour));
      out_.push_back(static_cast<char>(dt.minute));
      out_.push_back(static_cast<char>(dt.second));
      return;
    }
    case ItemKind::kArray:
    case ItemKind::kSequence: {
      const Item::ItemVector& elems =
          item.is_array() ? item.array() : item.sequence();
      AppendVarint(elems.size(), &out_);
      for (const Item& e : elems) Write(e);
      return;
    }
    case ItemKind::kObject: {
      const Item::Object& fields = item.object();
      AppendVarint(fields.size(), &out_);
      for (const Item::Field& f : fields) {
        AppendVarint(f.key.size(), &out_);
        out_.append(f.key);
        Write(f.value);
      }
      return;
    }
  }
}

Result<uint64_t> ItemReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    uint8_t b = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) break;
  }
  return Status::Internal("corrupt varint in binary item");
}

Result<Item> ItemReader::ReadValue(int depth) {
  if (depth > 512) return Status::Internal("binary item too deeply nested");
  if (pos_ >= data_.size()) {
    return Status::Internal("truncated binary item");
  }
  ItemKind kind = static_cast<ItemKind>(data_[pos_++]);
  switch (kind) {
    case ItemKind::kNull:
      return Item::Null();
    case ItemKind::kBoolean: {
      if (pos_ >= data_.size()) {
        return Status::Internal("truncated boolean");
      }
      return Item::Boolean(data_[pos_++] != 0);
    }
    case ItemKind::kInt64: {
      JPAR_ASSIGN_OR_RETURN(uint64_t v, ReadVarint());
      return Item::Int64(UnZigZag(v));
    }
    case ItemKind::kDouble: {
      if (pos_ + sizeof(double) > data_.size()) {
        return Status::Internal("truncated double");
      }
      double v;
      std::memcpy(&v, data_.data() + pos_, sizeof(double));
      pos_ += sizeof(double);
      return Item::Double(v);
    }
    case ItemKind::kString: {
      JPAR_ASSIGN_OR_RETURN(uint64_t len, ReadVarint());
      if (pos_ + len > data_.size()) {
        return Status::Internal("truncated string");
      }
      Item out = Item::String(data_.substr(pos_, len));
      pos_ += len;
      return out;
    }
    case ItemKind::kDateTime: {
      if (pos_ + 9 > data_.size()) {
        return Status::Internal("truncated dateTime");
      }
      DateTimeValue dt;
      std::memcpy(&dt.year, data_.data() + pos_, sizeof(int32_t));
      pos_ += sizeof(int32_t);
      dt.month = static_cast<int8_t>(data_[pos_++]);
      dt.day = static_cast<int8_t>(data_[pos_++]);
      dt.hour = static_cast<int8_t>(data_[pos_++]);
      dt.minute = static_cast<int8_t>(data_[pos_++]);
      dt.second = static_cast<int8_t>(data_[pos_++]);
      return Item::DateTime(dt);
    }
    case ItemKind::kArray:
    case ItemKind::kSequence: {
      JPAR_ASSIGN_OR_RETURN(uint64_t count, ReadVarint());
      Item::ItemVector elems;
      elems.reserve(count < 4096 ? count : 4096);
      for (uint64_t i = 0; i < count; ++i) {
        JPAR_ASSIGN_OR_RETURN(Item e, ReadValue(depth + 1));
        elems.push_back(std::move(e));
      }
      if (kind == ItemKind::kArray) return Item::MakeArray(std::move(elems));
      return Item::MakeSequence(std::move(elems));
    }
    case ItemKind::kObject: {
      JPAR_ASSIGN_OR_RETURN(uint64_t count, ReadVarint());
      Item::Object fields;
      fields.reserve(count < 4096 ? count : 4096);
      for (uint64_t i = 0; i < count; ++i) {
        JPAR_ASSIGN_OR_RETURN(uint64_t klen, ReadVarint());
        if (pos_ + klen > data_.size()) {
          return Status::Internal("truncated object key");
        }
        std::string key(data_.substr(pos_, klen));
        pos_ += klen;
        JPAR_ASSIGN_OR_RETURN(Item v, ReadValue(depth + 1));
        fields.push_back({std::move(key), std::move(v)});
      }
      return Item::MakeObject(std::move(fields));
    }
  }
  return Status::Internal("unknown item kind tag");
}

Result<Item> ItemReader::Read() { return ReadValue(0); }

std::string SerializeItem(const Item& item) {
  std::string out;
  ItemWriter writer(&out);
  writer.Write(item);
  return out;
}

Result<Item> DeserializeItem(std::string_view data) {
  ItemReader reader(data);
  JPAR_ASSIGN_OR_RETURN(Item item, reader.Read());
  if (!reader.AtEnd()) {
    return Status::Internal("trailing bytes after binary item");
  }
  return item;
}

}  // namespace jpar
