#include "json/structural_index.h"

#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) && !defined(JPAR_FORCE_SWAR)
#define JPAR_HAVE_X86_KERNELS 1
#include <immintrin.h>
#endif

namespace jpar {

namespace {

/// Raw per-64-byte-block character bitmaps: bit i describes byte i of
/// the block, before escape/string resolution.
struct BlockBits {
  uint64_t backslash = 0;
  uint64_t quote = 0;
  uint64_t op = 0;
  uint64_t newline = 0;
};

using BlockFn = BlockBits (*)(const unsigned char*);

// ---- Portable SWAR kernel ------------------------------------------

constexpr uint64_t kOnes = 0x0101010101010101ull;
constexpr uint64_t kHighs = 0x8080808080808080ull;

inline uint64_t LoadLe64(const unsigned char* p) {
  uint64_t w;
  std::memcpy(&w, p, 8);
  if constexpr (std::endian::native == std::endian::big) {
    w = __builtin_bswap64(w);
  }
  return w;
}

/// High bit of each byte set where the byte equals `c`. Uses the exact
/// per-byte zero detector — Mycroft's `(x - kOnes) & ~x & kHighs` has
/// cross-byte borrow false positives (a byte equal to c^0x01 directly
/// above a true match gets flagged too), which matters here because
/// '[' / ']' / '{' / '}' pairs differ by exactly one bit.
inline uint64_t MatchBytes(uint64_t word, char c) {
  uint64_t x = word ^ (kOnes * static_cast<uint8_t>(c));
  constexpr uint64_t kLow7 = ~kHighs;
  return ~(((x & kLow7) + kLow7) | x | kLow7);
}

/// Gathers the per-byte high bits of `m` into the low 8 bits (a SWAR
/// movemask: byte i -> bit i). The shifted products land on 64 distinct
/// bit positions, so the multiply cannot carry.
inline uint64_t PackHighBits(uint64_t m) {
  return ((m >> 7) * 0x0102040810204080ull) >> 56;
}

BlockBits SwarBlock(const unsigned char* p) {
  BlockBits b;
  for (int w = 0; w < 8; ++w) {
    uint64_t word = LoadLe64(p + 8 * w);
    int shift = 8 * w;
    b.backslash |= PackHighBits(MatchBytes(word, '\\')) << shift;
    b.quote |= PackHighBits(MatchBytes(word, '"')) << shift;
    b.newline |= PackHighBits(MatchBytes(word, '\n')) << shift;
    uint64_t op = MatchBytes(word, '{') | MatchBytes(word, '}') |
                  MatchBytes(word, '[') | MatchBytes(word, ']') |
                  MatchBytes(word, ',') | MatchBytes(word, ':');
    b.op |= PackHighBits(op) << shift;
  }
  return b;
}

// ---- x86 kernels ---------------------------------------------------
//
// Compiled with per-function target attributes so the translation unit
// stays buildable without -mavx2 and the binary stays runnable on CPUs
// without AVX2 (runtime dispatch picks the kernel).

#if defined(JPAR_HAVE_X86_KERNELS)

inline uint64_t Match16(__m128i v, char c) {
  return static_cast<uint16_t>(
      _mm_movemask_epi8(_mm_cmpeq_epi8(v, _mm_set1_epi8(c))));
}

BlockBits Sse2Block(const unsigned char* p) {
  BlockBits b;
  for (int k = 0; k < 4; ++k) {
    __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + 16 * k));
    int shift = 16 * k;
    b.backslash |= Match16(v, '\\') << shift;
    b.quote |= Match16(v, '"') << shift;
    b.newline |= Match16(v, '\n') << shift;
    uint64_t op = Match16(v, '{') | Match16(v, '}') | Match16(v, '[') |
                  Match16(v, ']') | Match16(v, ',') | Match16(v, ':');
    b.op |= op << shift;
  }
  return b;
}

__attribute__((target("avx2"))) inline uint64_t Match32(__m256i v, char c) {
  return static_cast<uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, _mm256_set1_epi8(c))));
}

__attribute__((target("avx2"))) BlockBits Avx2Block(const unsigned char* p) {
  BlockBits b;
  for (int k = 0; k < 2; ++k) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + 32 * k));
    int shift = 32 * k;
    b.backslash |= Match32(v, '\\') << shift;
    b.quote |= Match32(v, '"') << shift;
    b.newline |= Match32(v, '\n') << shift;
    uint64_t op = Match32(v, '{') | Match32(v, '}') | Match32(v, '[') |
                  Match32(v, ']') | Match32(v, ',') | Match32(v, ':');
    b.op |= op << shift;
  }
  return b;
}

#endif  // JPAR_HAVE_X86_KERNELS

// ---- Escape / string resolution ------------------------------------

/// Returns the bitmap of escaped positions: characters preceded by an
/// odd-length backslash run. `prev_odd` (0 or 1) carries a run that
/// ends one block with odd length into the next. This is the
/// carry-propagating odd/even-sequence trick from simdjson stage 1.
inline uint64_t EscapedPositions(uint64_t bs_bits, uint64_t* prev_odd) {
  constexpr uint64_t kEvenBits = 0x5555555555555555ull;
  constexpr uint64_t kOddBits = ~kEvenBits;
  uint64_t start_edges = bs_bits & ~(bs_bits << 1);
  uint64_t even_start_mask = kEvenBits ^ *prev_odd;
  uint64_t even_starts = start_edges & even_start_mask;
  uint64_t odd_starts = start_edges & ~even_start_mask;
  uint64_t even_carries = bs_bits + even_starts;
  uint64_t odd_carries;
  bool ends_odd = __builtin_add_overflow(bs_bits, odd_starts, &odd_carries);
  odd_carries |= *prev_odd;
  *prev_odd = ends_odd ? 1 : 0;
  uint64_t even_carry_ends = even_carries & ~bs_bits;
  uint64_t odd_carry_ends = odd_carries & ~bs_bits;
  uint64_t even_start_odd_end = even_carry_ends & kOddBits;
  uint64_t odd_start_even_end = odd_carry_ends & kEvenBits;
  return even_start_odd_end | odd_start_even_end;
}

/// Prefix XOR within a word: bit p of the result is the parity of bits
/// [0, p] of the input. Applied to the quote bitmap this yields the
/// in-string mask (opening quote and string body set, closing quote
/// clear).
inline uint64_t PrefixXor(uint64_t x) {
  x ^= x << 1;
  x ^= x << 2;
  x ^= x << 4;
  x ^= x << 8;
  x ^= x << 16;
  x ^= x << 32;
  return x;
}

SimdLevel DetectActiveLevel() {
#if defined(JPAR_FORCE_SWAR)
  return SimdLevel::kSwar;
#else
  if (std::getenv("JPAR_DISABLE_SIMD") != nullptr) return SimdLevel::kSwar;
#if defined(JPAR_HAVE_X86_KERNELS)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdLevel::kSse2;
#endif
  return SimdLevel::kSwar;
#endif
}

BlockFn KernelFor(SimdLevel level) {
#if defined(JPAR_HAVE_X86_KERNELS)
  if (level == SimdLevel::kAvx2 && __builtin_cpu_supports("avx2")) {
    return Avx2Block;
  }
  if (level >= SimdLevel::kSse2 && __builtin_cpu_supports("sse2")) {
    return Sse2Block;
  }
#else
  (void)level;
#endif
  return SwarBlock;
}

}  // namespace

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kSwar:
      return "swar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = DetectActiveLevel();
  return level;
}

std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kSwar};
#if defined(JPAR_HAVE_X86_KERNELS)
  if (__builtin_cpu_supports("sse2")) levels.push_back(SimdLevel::kSse2);
  if (__builtin_cpu_supports("avx2")) levels.push_back(SimdLevel::kAvx2);
#endif
  return levels;
}

StructuralIndex StructuralIndex::Build(std::string_view text,
                                       SimdLevel level) {
  BlockFn kernel = KernelFor(level);
  StructuralIndex idx;
  idx.n_ = text.size();
  size_t words = (idx.n_ + 63) >> 6;
  idx.quote_.assign(words, 0);
  idx.op_.assign(words, 0);
  idx.newline_.assign(words, 0);
  idx.in_string_.assign(words, 0);
  const unsigned char* data =
      reinterpret_cast<const unsigned char*>(text.data());
  uint64_t prev_odd_backslash = 0;
  uint64_t in_string_carry = 0;  // ~0 when the previous block ends in-string
  for (size_t w = 0; w < words; ++w) {
    size_t base = w << 6;
    BlockBits raw;
    if (base + 64 <= idx.n_) {
      raw = kernel(data + base);
    } else {
      unsigned char tail[64] = {0};  // '\0' padding matches no class
      std::memcpy(tail, data + base, idx.n_ - base);
      raw = kernel(tail);
    }
    uint64_t escaped = EscapedPositions(raw.backslash, &prev_odd_backslash);
    uint64_t quotes = raw.quote & ~escaped;
    uint64_t in_string = PrefixXor(quotes) ^ in_string_carry;
    in_string_carry =
        static_cast<uint64_t>(static_cast<int64_t>(in_string) >> 63);
    idx.quote_[w] = quotes;
    idx.op_[w] = raw.op & ~in_string;
    idx.newline_[w] = raw.newline & ~in_string;
    idx.in_string_[w] = in_string;
  }
  return idx;
}

size_t StructuralIndex::NextBit(const std::vector<uint64_t>& words,
                                size_t pos) const {
  if (pos >= n_) return npos;
  size_t w = pos >> 6;
  uint64_t word = words[w] & (~uint64_t{0} << (pos & 63));
  while (word == 0) {
    if (++w == words.size()) return npos;
    word = words[w];
  }
  return (w << 6) + static_cast<size_t>(std::countr_zero(word));
}

size_t StructuralIndex::NextOpOrQuote(size_t pos) const {
  if (pos >= n_) return npos;
  size_t w = pos >> 6;
  uint64_t word = (op_[w] | quote_[w]) & (~uint64_t{0} << (pos & 63));
  while (word == 0) {
    if (++w == op_.size()) return npos;
    word = op_[w] | quote_[w];
  }
  return (w << 6) + static_cast<size_t>(std::countr_zero(word));
}

namespace {

void AppendWords(const std::vector<uint64_t>& words, std::string* out) {
  for (uint64_t w : words) {
    char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(w >> (8 * i));
    out->append(buf, 8);
  }
}

bool ReadWords(std::string_view data, size_t* pos, size_t count,
               std::vector<uint64_t>* words) {
  if (data.size() - *pos < count * 8) return false;
  words->resize(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t w = 0;
    for (int b = 0; b < 8; ++b) {
      w |= static_cast<uint64_t>(
               static_cast<unsigned char>(data[*pos + 8 * i + b]))
           << (8 * b);
    }
    (*words)[i] = w;
  }
  *pos += count * 8;
  return true;
}

}  // namespace

size_t StructuralIndex::SerializedBytes(size_t n) {
  return 8 + 4 * (((n + 63) >> 6) * 8);
}

void StructuralIndex::AppendTo(std::string* out) const {
  char len[8];
  for (int i = 0; i < 8; ++i) {
    len[i] = static_cast<char>(static_cast<uint64_t>(n_) >> (8 * i));
  }
  out->append(len, 8);
  AppendWords(quote_, out);
  AppendWords(op_, out);
  AppendWords(newline_, out);
  AppendWords(in_string_, out);
}

bool StructuralIndex::LoadFrom(std::string_view data) {
  *this = StructuralIndex();
  if (data.size() < 8) return false;
  uint64_t n = 0;
  for (int i = 0; i < 8; ++i) {
    n |= static_cast<uint64_t>(static_cast<unsigned char>(data[i])) << (8 * i);
  }
  // Bound n before SerializedBytes to keep corrupt headers from
  // overflowing the size arithmetic.
  if (n > (data.size() - 8) * 16 || data.size() != SerializedBytes(n)) {
    return false;
  }
  size_t words = (static_cast<size_t>(n) + 63) >> 6;
  size_t pos = 8;
  if (!ReadWords(data, &pos, words, &quote_) ||
      !ReadWords(data, &pos, words, &op_) ||
      !ReadWords(data, &pos, words, &newline_) ||
      !ReadWords(data, &pos, words, &in_string_)) {
    *this = StructuralIndex();
    return false;
  }
  n_ = static_cast<size_t>(n);
  return true;
}

}  // namespace jpar
