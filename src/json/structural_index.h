#ifndef JPAR_JSON_STRUCTURAL_INDEX_H_
#define JPAR_JSON_STRUCTURAL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace jpar {

/// Which scanning pipeline a JSON consumer runs (DESIGN.md §9).
///   kScalar  — the original byte-at-a-time recursive descent.
///   kIndexed — two-stage: build a StructuralIndex over the buffer
///              (stage 1), then parse against its bitmaps (stage 2), so
///              SkipValue jumps structural-to-structural and string
///              scanning jumps quote-to-quote.
enum class ScanMode : uint8_t { kScalar = 0, kIndexed = 1 };

/// Vector kernel used to build the index. kSwar is the portable
/// baseline (64-bit lanes, no intrinsics); kSse2/kAvx2 are x86 fast
/// paths selected at runtime.
enum class SimdLevel : uint8_t { kSwar = 0, kSse2 = 1, kAvx2 = 2 };

const char* SimdLevelName(SimdLevel level);

/// The kernel this process uses by default: the best level the CPU
/// supports, unless the build was configured with -DJPAR_FORCE_SWAR=ON
/// or the JPAR_DISABLE_SIMD environment variable is set (both force
/// kSwar). Decided once, at first call.
SimdLevel ActiveSimdLevel();

/// Every level that can run on this build + CPU, in ascending order.
/// Always contains kSwar; used by the differential tests and the
/// throughput bench to exercise each kernel.
std::vector<SimdLevel> SupportedSimdLevels();

/// simdjson-style stage-1 index over a JSON buffer: three bitmaps (one
/// bit per input byte, 64 bytes per word) recording
///   - unescaped quotes (string open/close positions),
///   - structural characters {}[],: outside string literals,
///   - newlines outside string literals (NDJSON record delimiters).
/// Escaped quotes are resolved with the carry-propagating odd-length
/// backslash-run trick; the in-string mask is the prefix XOR of the
/// quote bitmap. Building the index is a single forward pass at
/// near-memory-bandwidth; consumers then skip non-structural bytes
/// entirely.
///
/// The index is positional: queries take and return byte offsets into
/// the exact buffer it was built over. Immutable after Build; safe to
/// share across threads.
class StructuralIndex {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  StructuralIndex() = default;

  static StructuralIndex Build(std::string_view text) {
    return Build(text, ActiveSimdLevel());
  }
  /// Builds with an explicit kernel (tests/benchmarks). Requesting a
  /// level the CPU lacks falls back to the best supported one.
  static StructuralIndex Build(std::string_view text, SimdLevel level);

  size_t size() const { return n_; }

  // Membership predicates (white-box tests and debugging).
  bool IsOp(size_t pos) const { return TestBit(op_, pos); }
  bool IsQuote(size_t pos) const { return TestBit(quote_, pos); }
  bool IsNewline(size_t pos) const { return TestBit(newline_, pos); }

  /// True when `pos` lies inside a string literal per the quote bitmap
  /// (opening quote and body are inside; the closing quote is not).
  /// Degraded scans use this to detect that a malformed record left the
  /// mask claiming in-string at a resync point, which means the index
  /// for the remaining suffix must be rebuilt with fresh state.
  bool InString(size_t pos) const { return TestBit(in_string_, pos); }

  /// First position >= pos of each class; npos when exhausted.
  size_t NextOp(size_t pos) const { return NextBit(op_, pos); }
  size_t NextQuote(size_t pos) const { return NextBit(quote_, pos); }
  size_t NextNewline(size_t pos) const { return NextBit(newline_, pos); }
  size_t NextOpOrQuote(size_t pos) const;

  /// Appends a compact serialization (input length + the four bitmaps)
  /// to *out. This is the payload of the storage tier's tape sidecars
  /// (DESIGN.md §14) — an internal cache artifact, not an interchange
  /// format; LoadFrom only accepts what AppendTo wrote.
  void AppendTo(std::string* out) const;

  /// Exact byte count AppendTo produces for an index over `n` bytes.
  static size_t SerializedBytes(size_t n);

  /// Reconstructs the index from one AppendTo serialization. Returns
  /// false (leaving *this empty) on truncation or trailing bytes, so a
  /// corrupt sidecar degrades to a cache miss rather than an error.
  bool LoadFrom(std::string_view data);

 private:
  bool TestBit(const std::vector<uint64_t>& words, size_t pos) const {
    if (pos >= n_) return false;
    return (words[pos >> 6] >> (pos & 63)) & 1;
  }
  size_t NextBit(const std::vector<uint64_t>& words, size_t pos) const;

  size_t n_ = 0;
  std::vector<uint64_t> quote_;      // unescaped '"'
  std::vector<uint64_t> op_;         // {}[],: outside strings
  std::vector<uint64_t> newline_;    // '\n' outside strings
  std::vector<uint64_t> in_string_;  // string-literal interior mask
};

}  // namespace jpar

#endif  // JPAR_JSON_STRUCTURAL_INDEX_H_
