#ifndef JPAR_JSON_PROJECTING_READER_H_
#define JPAR_JSON_PROJECTING_READER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "json/item.h"
#include "json/structural_index.h"

namespace jpar {

/// One navigation step of a DATASCAN path argument (the operator's
/// "second argument" in the paper, §4.2). A path is a list of steps:
///   kKey            — JSONiq value() on an object, by field name
///   kIndex          — JSONiq value() on an array, by 1-based position
///   kKeysOrMembers  — JSONiq () : every member of an array, or every
///                     key of an object
struct PathStep {
  enum class Kind : uint8_t { kKey, kIndex, kKeysOrMembers };

  Kind kind = Kind::kKey;
  std::string key;    // kKey
  int64_t index = 0;  // kIndex, 1-based

  static PathStep Key(std::string k) {
    PathStep s;
    s.kind = Kind::kKey;
    s.key = std::move(k);
    return s;
  }
  static PathStep Index(int64_t i) {
    PathStep s;
    s.kind = Kind::kIndex;
    s.index = i;
    return s;
  }
  static PathStep KeysOrMembers() {
    PathStep s;
    s.kind = Kind::kKeysOrMembers;
    return s;
  }

  friend bool operator==(const PathStep& a, const PathStep& b) {
    return a.kind == b.kind && a.key == b.key && a.index == b.index;
  }

  std::string ToString() const;
};

std::string PathToString(const std::vector<PathStep>& steps);

/// Statistics a projecting scan reports back to the executor.
struct ProjectionStats {
  uint64_t bytes_scanned = 0;      // total input bytes consumed
  uint64_t items_emitted = 0;      // items delivered to the sink
  uint64_t bytes_materialized = 0;  // estimated bytes of emitted items
  uint64_t documents = 0;  // top-level documents scanned (incl. skipped)
};

/// Streams the items selected by `steps` out of a JSON document without
/// materializing anything else: subtrees off the path are byte-skipped.
/// This is the execution engine of the DATASCAN operator after the
/// pipelining rules have pushed value()/keys-or-members() steps into the
/// scan — the reason Q0b touches only "date" strings instead of whole
/// documents.
///
/// The sink is invoked once per selected item, in document order. If the
/// path selects nothing (missing key, index out of range), the sink is
/// simply never called. Returns the first non-OK status from parsing or
/// from the sink.
///
/// `mode` selects the scanning pipeline (DESIGN.md §9): kIndexed (the
/// default) first builds a StructuralIndex over `text` so off-path
/// subtrees are skipped structural-to-structural; kScalar is the
/// byte-at-a-time baseline kept for differential testing and as a
/// reference implementation.
Status ProjectJson(std::string_view text, const std::vector<PathStep>& steps,
                   const std::function<Status(Item)>& sink,
                   ProjectionStats* stats = nullptr,
                   ScanMode mode = ScanMode::kIndexed);

/// ProjectJson over a stream of concatenated / newline-delimited JSON
/// documents: the path is applied to each document in turn. This is
/// what DATASCAN actually runs — collection files may hold one
/// document or many (NDJSON).
///
/// Degraded-scan mode: when `skipped_records` is non-null, a record
/// that fails with kParseError (malformed JSON, or a parse-typed error
/// raised by the sink against that record's values) does not fail the
/// stream; the reader counts it, resynchronizes at the next newline,
/// and continues with the following record. Any other error code
/// (cancellation, memory, IO, sink failures) still aborts the stream.
/// Note the resynchronization is line-based, so recovery is only
/// well-defined for newline-delimited input. Resync looks at raw
/// newline bytes (memchr) in BOTH scan modes — not the index's
/// outside-string newline bitmap — so a malformed record that corrupts
/// the in-string mask cannot change where the degraded scan recovers,
/// and the two modes skip identical records.
Status ProjectJsonStream(std::string_view text,
                         const std::vector<PathStep>& steps,
                         const std::function<Status(Item)>& sink,
                         ProjectionStats* stats = nullptr,
                         uint64_t* skipped_records = nullptr,
                         ScanMode mode = ScanMode::kIndexed);

/// ProjectJsonStream against a caller-provided stage-1 index — the
/// storage tier's cached tape (DESIGN.md §14) — so warm scans skip the
/// StructuralIndex::Build pass entirely. `prebuilt` was built over a
/// containing buffer; `index_origin` is the byte offset of text[0]
/// within that buffer, which lets one whole-file tape serve every
/// morsel sub-view of the file. Degraded scans still rebuild a local
/// suffix index when a malformed record poisons the in-string mask,
/// exactly like the tape-less path. `prebuilt` may be null (plain cold
/// scan); kScalar mode ignores it.
Status ProjectJsonStreamWithIndex(std::string_view text,
                                  const std::vector<PathStep>& steps,
                                  const StructuralIndex* prebuilt,
                                  size_t index_origin,
                                  const std::function<Status(Item)>& sink,
                                  ProjectionStats* stats = nullptr,
                                  uint64_t* skipped_records = nullptr,
                                  ScanMode mode = ScanMode::kIndexed);

/// In-memory analogue of ProjectJson: walks `steps[from..]` over an
/// already materialized item, emitting each match. Used by scans over
/// binary (pre-loaded) documents and by index construction, where there
/// is no JSON text to stream.
Status NavigateItemPath(const Item& item, const std::vector<PathStep>& steps,
                        size_t from, const std::function<Status(Item)>& sink);

}  // namespace jpar

#endif  // JPAR_JSON_PROJECTING_READER_H_
