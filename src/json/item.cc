#include "json/item.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <ostream>

namespace jpar {

namespace {

void AppendEscapedString(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendDouble(double v, std::string* out) {
  if (v == static_cast<int64_t>(v) && std::abs(v) < 1e15) {
    // Render integral doubles without a mantissa tail but keep them
    // distinguishable as doubles by a trailing ".0" for JSON fidelity.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", v);
    out->append(buf);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

}  // namespace

std::string_view ItemKindToString(ItemKind kind) {
  switch (kind) {
    case ItemKind::kNull:
      return "null";
    case ItemKind::kBoolean:
      return "boolean";
    case ItemKind::kInt64:
      return "integer";
    case ItemKind::kDouble:
      return "double";
    case ItemKind::kString:
      return "string";
    case ItemKind::kDateTime:
      return "dateTime";
    case ItemKind::kArray:
      return "array";
    case ItemKind::kObject:
      return "object";
    case ItemKind::kSequence:
      return "sequence";
  }
  return "unknown";
}

Item Item::MakeObject(Object fields) {
  return Item(ItemKind::kObject,
              std::make_shared<const Object>(std::move(fields)));
}

const Item::Object& Item::object() const {
  return *std::get<std::shared_ptr<const Object>>(value_);
}

Item Item::MakeSequence(ItemVector items) {
  // Splice nested sequences to keep sequences flat.
  bool has_nested = false;
  for (const Item& it : items) {
    if (it.is_sequence()) {
      has_nested = true;
      break;
    }
  }
  if (has_nested) {
    ItemVector flat;
    flat.reserve(items.size());
    for (Item& it : items) {
      if (it.is_sequence()) {
        const ItemVector& inner = it.sequence();
        flat.insert(flat.end(), inner.begin(), inner.end());
      } else {
        flat.push_back(std::move(it));
      }
    }
    items = std::move(flat);
  }
  if (items.size() == 1) return std::move(items[0]);
  return Item(ItemKind::kSequence,
              std::make_shared<const ItemVector>(std::move(items)));
}

std::optional<Item> Item::GetField(std::string_view key) const {
  if (!is_object()) return std::nullopt;
  for (const Field& f : object()) {
    if (f.key == key) return f.value;
  }
  return std::nullopt;
}

bool Item::Equals(const Item& other) const {
  if (is_numeric() && other.is_numeric()) {
    return AsDouble() == other.AsDouble();
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ItemKind::kNull:
      return true;
    case ItemKind::kBoolean:
      return boolean_value() == other.boolean_value();
    case ItemKind::kInt64:
    case ItemKind::kDouble:
      return AsDouble() == other.AsDouble();
    case ItemKind::kString:
      return string_value() == other.string_value();
    case ItemKind::kDateTime:
      return datetime_value() == other.datetime_value();
    case ItemKind::kArray:
    case ItemKind::kSequence: {
      const ItemVector& a = items_payload();
      const ItemVector& b = other.items_payload();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].Equals(b[i])) return false;
      }
      return true;
    }
    case ItemKind::kObject: {
      const Object& a = object();
      const Object& b = other.object();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].key != b[i].key || !a[i].value.Equals(b[i].value)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

Result<int> Item::Compare(const Item& other) const {
  if (is_numeric() && other.is_numeric()) {
    double a = AsDouble(), b = other.AsDouble();
    return (a > b) - (a < b);
  }
  if (is_string() && other.is_string()) {
    int c = string_value().compare(other.string_value());
    return (c > 0) - (c < 0);
  }
  if (is_datetime() && other.is_datetime()) {
    return datetime_value().Compare(other.datetime_value());
  }
  if (is_boolean() && other.is_boolean()) {
    return static_cast<int>(boolean_value()) -
           static_cast<int>(other.boolean_value());
  }
  return Status::TypeError(std::string("cannot compare ") +
                           std::string(ItemKindToString(kind_)) + " with " +
                           std::string(ItemKindToString(other.kind_)));
}

Result<bool> Item::EffectiveBooleanValue() const {
  switch (kind_) {
    case ItemKind::kNull:
      return false;
    case ItemKind::kBoolean:
      return boolean_value();
    case ItemKind::kInt64:
      return int64_value() != 0;
    case ItemKind::kDouble:
      return double_value() != 0.0 && !std::isnan(double_value());
    case ItemKind::kString:
      return !string_value().empty();
    case ItemKind::kDateTime:
      return true;
    case ItemKind::kArray:
    case ItemKind::kObject:
      return true;
    case ItemKind::kSequence:
      if (sequence().empty()) return false;
      return Status::TypeError(
          "effective boolean value of a multi-item sequence");
  }
  return Status::Internal("unreachable item kind");
}

void Item::AppendJsonTo(std::string* out) const {
  switch (kind_) {
    case ItemKind::kNull:
      out->append("null");
      return;
    case ItemKind::kBoolean:
      out->append(boolean_value() ? "true" : "false");
      return;
    case ItemKind::kInt64: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int64_value()));
      out->append(buf);
      return;
    }
    case ItemKind::kDouble:
      AppendDouble(double_value(), out);
      return;
    case ItemKind::kString:
      AppendEscapedString(string_value(), out);
      return;
    case ItemKind::kDateTime:
      AppendEscapedString(FormatDateTime(datetime_value()), out);
      return;
    case ItemKind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Item& e : array()) {
        if (!first) out->push_back(',');
        first = false;
        e.AppendJsonTo(out);
      }
      out->push_back(']');
      return;
    }
    case ItemKind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const Field& f : object()) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscapedString(f.key, out);
        out->push_back(':');
        f.value.AppendJsonTo(out);
      }
      out->push_back('}');
      return;
    }
    case ItemKind::kSequence: {
      bool first = true;
      for (const Item& e : sequence()) {
        if (!first) out->append(", ");
        first = false;
        e.AppendJsonTo(out);
      }
      return;
    }
  }
}

std::string Item::ToJsonString() const {
  std::string out;
  AppendJsonTo(&out);
  return out;
}

std::ostream& operator<<(std::ostream& os, const Item& item) {
  return os << item.ToJsonString();
}

size_t Item::EstimateSizeBytes() const {
  size_t base = sizeof(Item);
  switch (kind_) {
    case ItemKind::kString:
      return base + string_value().size();
    case ItemKind::kArray:
    case ItemKind::kSequence: {
      size_t total = base;
      for (const Item& e : items_payload()) total += e.EstimateSizeBytes();
      return total;
    }
    case ItemKind::kObject: {
      size_t total = base;
      for (const Field& f : object()) {
        total += f.key.size() + f.value.EstimateSizeBytes();
      }
      return total;
    }
    default:
      return base;
  }
}

void Item::AppendGroupKeyTo(std::string* out) const {
  out->push_back(static_cast<char>(kind_));
  switch (kind_) {
    case ItemKind::kNull:
      return;
    case ItemKind::kBoolean:
      out->push_back(boolean_value() ? 1 : 0);
      return;
    case ItemKind::kInt64:
    case ItemKind::kDouble: {
      // Numeric items with equal value must encode equally.
      double v = AsDouble();
      (*out)[out->size() - 1] = static_cast<char>(ItemKind::kDouble);
      out->append(reinterpret_cast<const char*>(&v), sizeof(v));
      return;
    }
    case ItemKind::kString:
      out->append(string_value());
      return;
    case ItemKind::kDateTime:
      out->append(FormatDateTime(datetime_value()));
      return;
    case ItemKind::kArray:
    case ItemKind::kObject:
    case ItemKind::kSequence:
      // Structured grouping keys: fall back to JSON text (rare; used
      // only if a query groups by a structured value).
      AppendJsonTo(out);
      return;
  }
}

}  // namespace jpar
