#ifndef JPAR_JSON_DATETIME_H_
#define JPAR_JSON_DATETIME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace jpar {

/// Calendar date-time with minute/second precision, the granularity used
/// by the paper's NOAA sensor queries (dateTime, year-from-dateTime,
/// month-from-dateTime, day-from-dateTime).
struct DateTimeValue {
  int32_t year = 0;
  int8_t month = 1;   // 1..12
  int8_t day = 1;     // 1..31
  int8_t hour = 0;    // 0..23
  int8_t minute = 0;  // 0..59
  int8_t second = 0;  // 0..59

  friend bool operator==(const DateTimeValue& a, const DateTimeValue& b) {
    return a.year == b.year && a.month == b.month && a.day == b.day &&
           a.hour == b.hour && a.minute == b.minute && a.second == b.second;
  }

  /// Lexicographic (chronological) three-way comparison.
  int Compare(const DateTimeValue& other) const;
};

/// Parses the date-time formats appearing in the paper's dataset and in
/// ISO 8601:
///   "YYYYMMDD"              (compact date)
///   "YYYYMMDDTHH:MM[:SS]"   (paper's sensor "date" field)
///   "YYYY-MM-DD[THH:MM[:SS]]" (ISO)
Result<DateTimeValue> ParseDateTime(std::string_view text);

/// Formats as ISO 8601 "YYYY-MM-DDTHH:MM:SS".
std::string FormatDateTime(const DateTimeValue& dt);

}  // namespace jpar

#endif  // JPAR_JSON_DATETIME_H_
