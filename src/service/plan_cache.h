#ifndef JPAR_SERVICE_PLAN_CACHE_H_
#define JPAR_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/engine.h"

namespace jpar {

/// Counters exposed through QueryService::Metrics().
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;   // current size
  uint64_t capacity = 0;  // configured maximum
};

/// A thread-safe LRU cache of compiled queries, keyed by the query text
/// plus a fingerprint of every option that influences compilation or
/// the physical plan. Repeated queries — the common case for a service
/// fronting dashboards or API endpoints — skip lex/parse/rewrite/lower
/// entirely.
///
/// Entries are shared_ptr<const CompiledQuery>: a cached plan can be
/// executing on several workers while eviction drops the cache's own
/// reference. The Executor treats plans as immutable descriptors, so
/// concurrent execution of one plan is safe.
class PlanCache {
 public:
  /// capacity == 0 disables caching (every lookup is a miss, inserts
  /// are dropped).
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// A stable cache key for (query, rules, exec). ExecOptions
  /// participates because two_step_aggregation (mirrored into the
  /// physical translation) and partitioning feed plan-shape decisions;
  /// fingerprinting all of it keeps the key trivially correct as the
  /// planner grows more option-sensitive. `storage_epoch` is the
  /// StorageManager epoch (DESIGN.md §14): it advances whenever cached
  /// columns are installed or invalidated, so a plan compiled against
  /// one cache generation is never replayed against another.
  /// `stats_epoch` does the same for the StatsStore (DESIGN.md §15):
  /// it advances when samples are built, dropped stale, or cleared, so
  /// cost-model plan choices are re-derived against current estimates.
  static std::string Key(std::string_view query, const RuleOptions& rules,
                         const ExecOptions& exec, uint64_t storage_epoch = 0,
                         uint64_t stats_epoch = 0);

  /// Returns the cached plan and promotes it to most-recently-used, or
  /// nullptr on a miss. Counts a hit or miss.
  std::shared_ptr<const CompiledQuery> Lookup(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entry when over capacity.
  void Insert(const std::string& key,
              std::shared_ptr<const CompiledQuery> plan);

  /// Drops all entries (counted as evictions).
  void Clear();

  PlanCacheStats Stats() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const CompiledQuery> plan;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  // Front = most recently used.
  std::list<Entry> lru_;
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace jpar

#endif  // JPAR_SERVICE_PLAN_CACHE_H_
