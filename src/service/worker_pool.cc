#include "service/worker_pool.h"

#include <utility>

namespace jpar {

WorkerPool::WorkerPool(int threads) {
  if (threads < 1) threads = 1;
  threads_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Shutdown(); }

void WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void WorkerPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace jpar
