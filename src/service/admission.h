#ifndef JPAR_SERVICE_ADMISSION_H_
#define JPAR_SERVICE_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace jpar {

/// Counters exposed through QueryService::Metrics().
struct AdmissionStats {
  uint64_t admitted = 0;
  uint64_t rejected_queue_full = 0;  // kUnavailable rejections
  uint64_t rejected_memory = 0;      // kResourceExhausted rejections
  uint64_t queued_peak = 0;          // max queries waiting for a worker
  uint64_t queued = 0;               // currently waiting
  uint64_t running = 0;              // currently executing
  uint64_t reserved_bytes = 0;       // memory reserved by admitted work
  /// AdmitSoft grants clipped below the requested reservation (the
  /// query ran with a smaller spill budget instead of being rejected).
  uint64_t soft_clipped = 0;
};

/// Gate between Submit() and the worker pool: a bounded submission
/// queue plus a global memory budget. Overload produces typed errors
/// the client can act on instead of unbounded queue growth or an OOM
/// deep inside the executor:
///
///   kUnavailable       — too many queries waiting; retry later.
///   kResourceExhausted — admitting this query's memory reservation
///                        would exceed the service budget (or the
///                        reservation alone exceeds it).
///
/// A query's reservation is its ExecOptions::memory_limit_bytes when
/// set, else the service's default_query_cost. Reservations are taken
/// at Admit() and held until Finish(), so admission decisions are
/// stable no matter how long the query waits for a worker.
class AdmissionController {
 public:
  /// memory_budget_bytes == 0 disables the memory gate;
  /// max_queue_depth bounds queries admitted but not yet running.
  AdmissionController(uint64_t memory_budget_bytes, uint64_t max_queue_depth)
      : budget_(memory_budget_bytes), max_queued_(max_queue_depth) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Reserves `cost_bytes` and a queue slot, or returns the typed
  /// rejection.
  Status Admit(uint64_t cost_bytes);

  /// Admission for spill-capable queries (ExecOptions::spill ==
  /// kEnabled): instead of rejecting when the budget is tight, grants
  /// min(requested, what is left of the budget) — floored at
  /// `min_grant_bytes`, mildly overcommitting rather than starving a
  /// query that can degrade to disk anyway. Returns the granted
  /// reservation; pass the same value to Finish(). The queue-depth
  /// gate still applies (kUnavailable). With no budget configured the
  /// full request is granted.
  Result<uint64_t> AdmitSoft(uint64_t requested_bytes,
                             uint64_t min_grant_bytes);

  /// A worker picked the query up: queued -> running.
  void StartRunning();

  /// The query finished (success or failure): releases its
  /// reservation.
  void Finish(uint64_t cost_bytes);

  AdmissionStats Stats() const;

 private:
  mutable std::mutex mu_;
  const uint64_t budget_;
  const uint64_t max_queued_;
  uint64_t reserved_ = 0;
  uint64_t queued_ = 0;
  uint64_t running_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_queue_full_ = 0;
  uint64_t rejected_memory_ = 0;
  uint64_t queued_peak_ = 0;
  uint64_t soft_clipped_ = 0;
};

}  // namespace jpar

#endif  // JPAR_SERVICE_ADMISSION_H_
