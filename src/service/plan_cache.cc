#include "service/plan_cache.h"

namespace jpar {

std::string PlanCache::Key(std::string_view query, const RuleOptions& rules,
                           const ExecOptions& exec, uint64_t storage_epoch,
                           uint64_t stats_epoch) {
  std::string key;
  key.reserve(query.size() + 64);
  key.append(query);
  key.push_back('\n');
  // One character per rule toggle keeps the fingerprint readable in
  // debug dumps.
  key.push_back(rules.path_rules ? 'P' : 'p');
  key.push_back(rules.pipelining_rules ? 'L' : 'l');
  key.push_back(rules.pipelining_pushdown ? 'D' : 'd');
  key.push_back(rules.groupby_rules ? 'G' : 'g');
  key.push_back(rules.two_step_aggregation ? 'T' : 't');
  key.push_back(rules.join_rules ? 'J' : 'j');
  key.push_back(rules.index_rules ? 'I' : 'i');
  key.push_back('|');
  key += std::to_string(exec.partitions);
  key.push_back(',');
  key += std::to_string(exec.partitions_per_node);
  key.push_back(',');
  key += std::to_string(exec.frame_bytes);
  // Translation itself depends on expr_mode (it decides whether plans
  // carry compiled bytecode), so it must key the cache; batch_size
  // rides along to keep stats comparable across cached hits.
  key.push_back(',');
  key += std::to_string(static_cast<int>(exec.expr_mode));
  key.push_back(',');
  key += std::to_string(exec.batch_size);
  // The storage mode picks the access path family and the epoch pins
  // the columnar-cache generation the plan was selected against.
  key.push_back(',');
  key += std::to_string(static_cast<int>(exec.storage_mode));
  key.push_back('@');
  key += std::to_string(storage_epoch);
  // The stats mode and StatsStore epoch pin the sampled-statistics
  // generation (DESIGN.md §15): fresh samples or invalidations advance
  // the epoch, so cost-annotated plans recompile rather than replay
  // choices made against stale estimates. Eventually consistent — the
  // key is computed before compilation, so samples built *during* a
  // run take effect on the next one.
  key.push_back(',');
  key += std::to_string(static_cast<int>(exec.stats_mode));
  key.push_back('@');
  key += std::to_string(stats_epoch);
  return key;
}

std::shared_ptr<const CompiledQuery> PlanCache::Lookup(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CompiledQuery> plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Concurrent compilers can race to insert the same key; keep the
    // newest plan and refresh recency.
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  evictions_ += lru_.size();
  index_.clear();
  lru_.clear();
}

PlanCacheStats PlanCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = lru_.size();
  s.capacity = capacity_;
  return s;
}

}  // namespace jpar
