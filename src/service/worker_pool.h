#ifndef JPAR_SERVICE_WORKER_POOL_H_
#define JPAR_SERVICE_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace jpar {

/// A fixed-size pool of worker threads draining a FIFO task queue.
/// Admission control bounds the queue upstream, so the pool itself
/// accepts every task handed to it. Shutdown() (and the destructor)
/// finishes every queued task before joining — a submitted query is
/// never dropped, so its QueryTicket always completes.
class WorkerPool {
 public:
  explicit WorkerPool(int threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task);

  /// Drains the queue, then stops and joins all workers. Idempotent.
  void Shutdown();

  int thread_count() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace jpar

#endif  // JPAR_SERVICE_WORKER_POOL_H_
