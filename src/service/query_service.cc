#include "service/query_service.h"

#include <utility>

#include "stats/collection_stats.h"
#include "storage/storage_tier.h"

namespace jpar {

// ---------------------------------------------------------------------
// QueryTicket

void QueryTicket::Wait() const {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->done; });
}

bool QueryTicket::done() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

Status QueryTicket::status() const {
  Wait();
  // After done, the state is immutable: no lock needed.
  return state_->status;
}

const QueryOutput& QueryTicket::output() const {
  Wait();
  return state_->output;
}

bool QueryTicket::plan_cache_hit() const {
  Wait();
  return state_->cache_hit;
}

void QueryTicket::Cancel() { state_->cancel->Cancel(); }

// ---------------------------------------------------------------------
// Session

QueryTicket Session::Submit(std::string query) {
  return service_->SubmitInternal(this, std::move(query), SubmitOptions());
}

QueryTicket Session::Submit(std::string query, const SubmitOptions& options) {
  return service_->SubmitInternal(this, std::move(query), options);
}

SessionStats Session::Stats() const {
  SessionStats s;
  s.submitted = submitted_.load();
  s.rejected = rejected_.load();
  s.succeeded = succeeded_.load();
  s.failed = failed_.load();
  return s;
}

// ---------------------------------------------------------------------
// QueryService

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)),
      engine_(options_.engine),
      plan_cache_(options_.plan_cache_capacity),
      admission_(options_.memory_budget_bytes, options_.max_queue_depth),
      cluster_(options_.dist.enabled() ? new Cluster(options_.dist) : nullptr),
      pool_(options_.worker_threads) {}

QueryService::~QueryService() {
  Drain();
  pool_.Shutdown();
  if (cluster_) cluster_->Stop();
}

std::shared_ptr<Session> QueryService::CreateSession() {
  return CreateSession(options_.engine);
}

std::shared_ptr<Session> QueryService::CreateSession(
    const EngineOptions& options) {
  ++sessions_;
  return std::shared_ptr<Session>(
      new Session(this, next_session_id_.fetch_add(1), options));
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

void QueryService::Complete(const std::shared_ptr<QueryTicket::State>& state,
                            Status status, QueryOutput output,
                            bool cache_hit) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->status = std::move(status);
    state->output = std::move(output);
    state->cache_hit = cache_hit;
    state->done = true;
  }
  state->cv.notify_all();
}

namespace {

/// Releases an admission reservation on scope exit — the ONLY way a
/// worker returns its queue slot and memory, so every exit path
/// (success, compile error, execution error, injected fault, cancel,
/// deadline) releases exactly once.
class AdmissionRelease {
 public:
  AdmissionRelease(AdmissionController* admission, uint64_t cost)
      : admission_(admission), cost_(cost) {}
  ~AdmissionRelease() { admission_->Finish(cost_); }

  AdmissionRelease(const AdmissionRelease&) = delete;
  AdmissionRelease& operator=(const AdmissionRelease&) = delete;

 private:
  AdmissionController* admission_;
  uint64_t cost_;
};

}  // namespace

QueryTicket QueryService::SubmitInternal(Session* session, std::string query,
                                         const SubmitOptions& submit) {
  ++submitted_;
  ++session->submitted_;

  QueryTicket ticket;
  std::shared_ptr<QueryTicket::State> state = ticket.state_;
  const EngineOptions& opts = session->options();

  // Admission: validate options, then reserve a queue slot and memory.
  // Spill-capable queries go through AdmitSoft: a tight service budget
  // shrinks their per-query soft budget instead of rejecting them.
  const bool spill_capable = opts.exec.spill == SpillMode::kEnabled;
  uint64_t cost = opts.exec.memory_limit_bytes > 0
                      ? opts.exec.memory_limit_bytes
                      : options_.default_query_cost_bytes;
  Status st = ValidateExecOptions(opts.exec);
  if (st.ok() && submit.deadline_ms < 0) {
    st = Status::InvalidArgument(
        "SubmitOptions::deadline_ms must be >= 0, got " +
        std::to_string(submit.deadline_ms));
  }
  if (st.ok()) {
    if (spill_capable) {
      uint64_t floor_bytes = options_.memory_budget_bytes / 16;
      if (floor_bytes < (1ull << 20)) floor_bytes = 1ull << 20;
      if (floor_bytes > cost) floor_bytes = cost;
      Result<uint64_t> grant = admission_.AdmitSoft(cost, floor_bytes);
      if (grant.ok()) {
        cost = *grant;
      } else {
        st = grant.status();
      }
    } else {
      st = admission_.Admit(cost);
    }
  }
  if (!st.ok()) {
    ++rejected_;
    ++session->rejected_;
    Complete(state, std::move(st), QueryOutput(), false);
    return ticket;
  }

  // The deadline clock starts now: time queued behind other work
  // counts against the submission, matching what a client timing out
  // on the call would observe.
  double deadline_ms =
      submit.deadline_ms > 0 ? submit.deadline_ms : opts.exec.deadline_ms;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (deadline_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double, std::milli>(deadline_ms));
  }

  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++outstanding_;
  }

  std::string key = PlanCache::Key(query, opts.rules, opts.exec,
                                   StorageManager::Instance().epoch(),
                                   StatsStore::Instance().epoch());
  // The session is kept alive for the query's whole lifetime even if
  // the client drops its handle right after Submit().
  std::shared_ptr<Session> self = session->shared_from_this();
  pool_.Submit([this, self, state, query = std::move(query),
                key = std::move(key), cost, spill_capable, deadline]() {
    admission_.StartRunning();
    Status st;
    QueryOutput output;
    bool cache_hit = false;
    {
      // Scoped so the reservation is released before the ticket
      // completes: a client that observes done() must also observe the
      // queue slot and memory returned.
      AdmissionRelease release(&admission_, cost);
      if (options_.on_query_start) options_.on_query_start(query);
      EngineOptions opts = self->options();
      // A spill-capable query runs under the budget admission actually
      // granted it (possibly clipped below its request); derive the
      // operator budget from the grant so the global budget holds.
      if (spill_capable && options_.memory_budget_bytes != 0 &&
          (opts.exec.memory_limit_bytes == 0 ||
           cost < opts.exec.memory_limit_bytes)) {
        opts.exec.memory_limit_bytes = cost;
      }

      QueryContext ctx;
      ctx.set_cancellation(state->cancel);
      if (deadline.has_value()) ctx.set_deadline(*deadline);
      ctx.set_fault_injector(options_.fault_injector);

      // Cancelled or timed out while waiting for a worker: don't
      // compile, don't execute.
      st = ctx.Check("admission queue");

      std::shared_ptr<const CompiledQuery> plan;
      if (st.ok()) {
        plan = plan_cache_.Lookup(key);
        cache_hit = plan != nullptr;
        if (!cache_hit) {
          Result<CompiledQuery> compiled =
              engine_.Compile(query, opts.rules, opts.exec);
          if (compiled.ok()) {
            plan = std::make_shared<const CompiledQuery>(*std::move(compiled));
            plan_cache_.Insert(key, plan);
          } else {
            st = compiled.status();
          }
        }
      }

      if (st.ok()) {
        Result<QueryOutput> result = Status::Internal("unreachable");
        if (cluster_ && Cluster::CanDistribute(plan->physical)) {
          ++distributed_;
          result = cluster_->Run(query, opts.rules, opts.exec, *plan,
                                 *engine_.catalog(), &ctx);
          if (!result.ok() &&
              result.status().code() == StatusCode::kWorkerLost &&
              options_.dist_fallback_on_worker_loss &&
              ctx.Check("dist fallback").ok()) {
            // Graceful degradation (DESIGN.md §12): the cluster's
            // retry budget is spent, but the query itself is fine —
            // finish it in-process rather than failing the client.
            ++dist_fallbacks_;
            ++dist_worker_lost_fallbacks_;
            result = engine_.Execute(*plan, opts.exec, &ctx);
          }
        } else {
          if (cluster_) ++dist_fallbacks_;
          result = engine_.Execute(*plan, opts.exec, &ctx);
        }
        if (result.ok()) {
          fragment_retries_ += result->stats.fragment_retries;
          workers_respawned_ += result->stats.workers_respawned;
          frames_replayed_ += result->stats.frames_replayed;
          replay_spill_bytes_ += result->stats.replay_spill_bytes;
          tape_hits_ += result->stats.tape_hits;
          tape_builds_ += result->stats.tape_builds;
          columns_read_ += result->stats.columns_read;
          blocks_pruned_ += result->stats.blocks_pruned;
          output = *std::move(result);
        } else {
          st = result.status();
        }
      }
    }

    if (st.ok()) {
      ++succeeded_;
      ++self->succeeded_;
    } else {
      ++failed_;
      ++self->failed_;
      if (st.code() == StatusCode::kCancelled) ++cancelled_;
      if (st.code() == StatusCode::kDeadlineExceeded) ++deadline_exceeded_;
    }
    Complete(state, std::move(st), std::move(output), cache_hit);
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      --outstanding_;
    }
    drain_cv_.notify_all();
  });
  return ticket;
}

ServiceMetrics QueryService::Metrics() const {
  ServiceMetrics m;
  m.plan_cache = plan_cache_.Stats();
  m.admission = admission_.Stats();
  m.sessions = sessions_.load();
  m.submitted = submitted_.load();
  m.rejected = rejected_.load();
  m.succeeded = succeeded_.load();
  m.failed = failed_.load();
  m.cancelled = cancelled_.load();
  m.deadline_exceeded = deadline_exceeded_.load();
  m.distributed = distributed_.load();
  m.dist_fallbacks = dist_fallbacks_.load();
  m.dist_worker_lost_fallbacks = dist_worker_lost_fallbacks_.load();
  m.fragment_retries = fragment_retries_.load();
  m.workers_respawned = workers_respawned_.load();
  m.frames_replayed = frames_replayed_.load();
  m.replay_spill_bytes = replay_spill_bytes_.load();
  m.tape_hits = tape_hits_.load();
  m.tape_builds = tape_builds_.load();
  m.columns_read = columns_read_.load();
  m.blocks_pruned = blocks_pruned_.load();
  return m;
}

std::string ServiceMetrics::ToString() const {
  std::string out;
  auto line = [&out](const char* name, uint64_t v) {
    out += "  ";
    out += name;
    out += ": ";
    out += std::to_string(v);
    out += "\n";
  };
  out += "queries:\n";
  line("submitted", submitted);
  line("succeeded", succeeded);
  line("failed", failed);
  line("cancelled", cancelled);
  line("deadline exceeded", deadline_exceeded);
  line("rejected", rejected);
  line("sessions", sessions);
  line("distributed", distributed);
  line("distributed fallbacks", dist_fallbacks);
  line("worker-lost fallbacks", dist_worker_lost_fallbacks);
  line("fragment retries", fragment_retries);
  line("workers respawned", workers_respawned);
  line("frames replayed", frames_replayed);
  line("replay spill bytes", replay_spill_bytes);
  out += "storage tier:\n";
  line("tape hits", tape_hits);
  line("tape builds", tape_builds);
  line("columns read", columns_read);
  line("blocks pruned", blocks_pruned);
  out += "plan cache:\n";
  line("hits", plan_cache.hits);
  line("misses", plan_cache.misses);
  line("evictions", plan_cache.evictions);
  line("entries", plan_cache.entries);
  line("capacity", plan_cache.capacity);
  out += "admission:\n";
  line("admitted", admission.admitted);
  line("rejected (queue full)", admission.rejected_queue_full);
  line("rejected (memory)", admission.rejected_memory);
  line("soft-budget grants clipped", admission.soft_clipped);
  line("queued peak", admission.queued_peak);
  line("reserved bytes", admission.reserved_bytes);
  return out;
}

}  // namespace jpar
