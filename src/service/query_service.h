#ifndef JPAR_SERVICE_QUERY_SERVICE_H_
#define JPAR_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/engine.h"
#include "dist/dispatcher.h"
#include "runtime/query_context.h"
#include "service/admission.h"
#include "service/plan_cache.h"
#include "service/worker_pool.h"

namespace jpar {

class QueryService;
class Session;

/// Configuration of a QueryService.
struct ServiceOptions {
  /// Defaults for sessions created without explicit overrides; the
  /// catalog lives on the service's engine regardless.
  EngineOptions engine;
  /// Worker threads executing admitted queries concurrently.
  int worker_threads = 4;
  /// Maximum cached compiled plans (0 disables the cache).
  size_t plan_cache_capacity = 128;
  /// Maximum queries admitted but not yet running (the submission
  /// queue). Further submissions are rejected with kUnavailable.
  uint64_t max_queue_depth = 64;
  /// Global memory budget across in-flight queries; 0 = unlimited.
  /// Submissions whose reservation does not fit are rejected with
  /// kResourceExhausted — unless the session enables spilling
  /// (ExecOptions::spill == kEnabled), in which case admission clips
  /// the reservation to what is left of the budget (floored at
  /// max(1 MiB, budget/16)) and runs the query with that smaller soft
  /// budget instead of rejecting it (DESIGN.md §10).
  uint64_t memory_budget_bytes = 0;
  /// Reservation charged for a query whose ExecOptions does not set
  /// memory_limit_bytes.
  uint64_t default_query_cost_bytes = 16ull << 20;
  /// Instrumentation hook invoked on a worker thread just before a
  /// query starts executing (tracing, fault injection, test
  /// synchronization). Must be thread-safe.
  std::function<void(std::string_view query)> on_query_start;
  /// Fault injector threaded into every executed query's
  /// QueryContext. Not owned; must outlive the service. Null (the
  /// default) injects nothing — used by the fault-injection tests and
  /// bench_fault_recovery.
  FaultInjector* fault_injector = nullptr;
  /// Distributed execution (DESIGN.md §11–§12). When enabled, queries
  /// whose plan shape supports it run across the worker cluster; the
  /// rest fall back to in-process execution (counted as
  /// dist_fallbacks). Worker failures are first retried inside the
  /// cluster (DistOptions::max_fragment_retries); what happens when
  /// the retry budget is exhausted is governed by
  /// dist_fallback_on_worker_loss below.
  DistOptions dist;
  /// Graceful degradation: when a distributed query fails with
  /// kWorkerLost (retry budget exhausted or retries disabled), re-run
  /// it in-process instead of surfacing the error — the client sees a
  /// successful answer, the operator sees dist_worker_lost_fallbacks.
  /// Set false to surface kWorkerLost to the client (the pre-§12
  /// behavior). Cancelled/expired queries are never re-run.
  bool dist_fallback_on_worker_loss = true;
};

/// Per-submission knobs (Session::Submit's second argument).
struct SubmitOptions {
  /// Deadline in milliseconds measured from Submit() — time spent
  /// waiting in the admission queue counts against it. 0 falls back to
  /// the session's ExecOptions::deadline_ms (also measured from
  /// Submit); negative is rejected with kInvalidArgument.
  double deadline_ms = 0;
};

/// One query's progress through the service: a future-like handle
/// fulfilled by a worker thread (or immediately, for submissions
/// rejected at admission). Cheap to copy; all copies share one state.
class QueryTicket {
 public:
  /// Blocks until the query completes (or was rejected).
  void Wait() const;
  bool done() const;

  /// Requests cooperative cancellation. Never blocks: execution stops
  /// at its next lifecycle check (within one batch of work) and the
  /// ticket completes with kCancelled; a query still waiting for a
  /// worker is cancelled before it executes. Idempotent, safe from any
  /// thread, a no-op once the query is done.
  void Cancel();

  /// The final status. Blocks until done.
  Status status() const;
  /// Result rows + stats; only meaningful when status().ok(). Blocks
  /// until done.
  const QueryOutput& output() const;
  /// True when execution reused a cached plan. Blocks until done.
  bool plan_cache_hit() const;

 private:
  friend class QueryService;

  struct State {
    mutable std::mutex mu;
    mutable std::condition_variable cv;
    bool done = false;
    Status status;
    QueryOutput output;
    bool cache_hit = false;
    /// Shared with the worker's QueryContext; created eagerly so
    /// Cancel() works on every ticket (rejected ones included).
    std::shared_ptr<CancellationToken> cancel =
        std::make_shared<CancellationToken>();
  };

  QueryTicket() : state_(std::make_shared<State>()) {}

  std::shared_ptr<State> state_;
};

/// Per-session counters (a snapshot; the session keeps counting).
struct SessionStats {
  uint64_t submitted = 0;
  uint64_t rejected = 0;   // failed admission or validation
  uint64_t succeeded = 0;
  uint64_t failed = 0;     // ran but returned an error
};

/// A client's handle onto the service: per-session engine options
/// (rule configuration and execution options) plus counters. Sessions
/// are independent — two sessions can run different rule sets against
/// the shared catalog concurrently. Thread-safe; must not outlive the
/// QueryService that created it.
class Session : public std::enable_shared_from_this<Session> {
 public:
  /// Submits a query for asynchronous execution. Never blocks on query
  /// execution: rejected submissions return an already-completed
  /// ticket.
  QueryTicket Submit(std::string query);
  /// Submit with per-submission options (e.g. a deadline).
  QueryTicket Submit(std::string query, const SubmitOptions& options);

  uint64_t id() const { return id_; }
  const EngineOptions& options() const { return options_; }
  SessionStats Stats() const;

 private:
  friend class QueryService;

  Session(QueryService* service, uint64_t id, EngineOptions options)
      : service_(service), id_(id), options_(std::move(options)) {}

  QueryService* service_;
  const uint64_t id_;
  const EngineOptions options_;
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> succeeded_{0};
  std::atomic<uint64_t> failed_{0};
};

/// A point-in-time snapshot of every service counter.
struct ServiceMetrics {
  PlanCacheStats plan_cache;
  AdmissionStats admission;
  uint64_t sessions = 0;
  uint64_t submitted = 0;  // all Submit() calls
  uint64_t rejected = 0;   // failed validation or admission
  uint64_t succeeded = 0;
  uint64_t failed = 0;     // executed but returned an error
  // Failure breakdown (both are included in `failed`).
  uint64_t cancelled = 0;          // ended with kCancelled
  uint64_t deadline_exceeded = 0;  // ended with kDeadlineExceeded
  // Distributed execution (zero unless ServiceOptions::dist enabled).
  uint64_t distributed = 0;      // ran on the worker cluster
  uint64_t dist_fallbacks = 0;   // ran in-process instead (any reason)
  // Failure recovery (DESIGN.md §12). Counters below aggregate the
  // ExecStats of successfully completed queries (a query that fails
  // outright reports no stats), except dist_worker_lost_fallbacks
  // which counts the mid-query in-process reruns themselves.
  uint64_t dist_worker_lost_fallbacks = 0;  // kWorkerLost → in-process rerun
  uint64_t fragment_retries = 0;    // fragments re-dispatched after loss
  uint64_t workers_respawned = 0;   // workers respawned mid-query
  uint64_t frames_replayed = 0;     // input frames replayed to retries
  uint64_t replay_spill_bytes = 0;  // replay buffer bytes spilled to disk
  // Warm storage tier (DESIGN.md §14), aggregated like the recovery
  // counters from the ExecStats of successfully completed queries.
  uint64_t tape_hits = 0;      // scans served a cached structural tape
  uint64_t tape_builds = 0;    // structural tapes built and cached
  uint64_t columns_read = 0;   // files answered from the columnar cache
  uint64_t blocks_pruned = 0;  // column blocks skipped via zone maps

  /// Multi-line human-readable dump (used by bench_service_throughput).
  std::string ToString() const;
};

/// A thread-safe, multi-client query service in front of the Engine —
/// the reproduction's stand-in for VXQuery's client/coordinator tier
/// (queries arrive concurrently, are admitted, scheduled onto the
/// dataflow runtime, and answered asynchronously):
///
///   QueryService service(options);
///   service.catalog()->RegisterCollection("/sensors", ...);
///   auto session = service.CreateSession();
///   QueryTicket t = session->Submit("count(collection(\"/sensors\"))");
///   t.Wait();
///
/// Submission path: validate ExecOptions (kInvalidArgument) → admission
/// control (bounded queue → kUnavailable; memory budget →
/// kResourceExhausted) → worker pool → plan cache lookup → compile on
/// miss → execute. Register catalog data before serving queries; the
/// Engine is shared const across workers after that.
class QueryService {
 public:
  explicit QueryService(ServiceOptions options = ServiceOptions());
  /// Drains in-flight queries, then stops the workers.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// The shared catalog. Register collections/documents/indexes before
  /// submitting queries.
  Catalog* catalog() { return engine_.catalog(); }
  const Engine& engine() const { return engine_; }

  /// Creates a session with the service-default engine options, or
  /// with explicit per-session options (e.g. a different rule set or
  /// partition count).
  std::shared_ptr<Session> CreateSession();
  std::shared_ptr<Session> CreateSession(const EngineOptions& options);

  /// Blocks until every query submitted so far has completed.
  void Drain();

  ServiceMetrics Metrics() const;

 private:
  friend class Session;

  QueryTicket SubmitInternal(Session* session, std::string query,
                             const SubmitOptions& submit);
  void Complete(const std::shared_ptr<QueryTicket::State>& state, Status status,
                QueryOutput output, bool cache_hit);

  ServiceOptions options_;
  Engine engine_;
  PlanCache plan_cache_;
  AdmissionController admission_;

  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<uint64_t> sessions_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> succeeded_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> distributed_{0};
  std::atomic<uint64_t> dist_fallbacks_{0};
  std::atomic<uint64_t> dist_worker_lost_fallbacks_{0};
  std::atomic<uint64_t> fragment_retries_{0};
  std::atomic<uint64_t> workers_respawned_{0};
  std::atomic<uint64_t> frames_replayed_{0};
  std::atomic<uint64_t> replay_spill_bytes_{0};
  std::atomic<uint64_t> tape_hits_{0};
  std::atomic<uint64_t> tape_builds_{0};
  std::atomic<uint64_t> columns_read_{0};
  std::atomic<uint64_t> blocks_pruned_{0};

  /// Non-null iff options_.dist.enabled(). Declared before pool_ so
  /// worker threads (which call into it) stop before it is destroyed;
  /// ~QueryService additionally calls Stop() after the pool shutdown.
  std::unique_ptr<Cluster> cluster_;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  uint64_t outstanding_ = 0;

  // Last member: workers must stop before anything they touch is
  // destroyed.
  WorkerPool pool_;
};

}  // namespace jpar

#endif  // JPAR_SERVICE_QUERY_SERVICE_H_
