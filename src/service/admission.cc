#include "service/admission.h"

namespace jpar {

Status AdmissionController::Admit(uint64_t cost_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (budget_ != 0 && cost_bytes > budget_) {
    ++rejected_memory_;
    return Status::ResourceExhausted(
        "query memory reservation (" + std::to_string(cost_bytes) +
        " bytes) exceeds the service budget (" + std::to_string(budget_) +
        " bytes)");
  }
  if (budget_ != 0 && reserved_ + cost_bytes > budget_) {
    ++rejected_memory_;
    return Status::ResourceExhausted(
        "service memory budget exhausted: " + std::to_string(reserved_) +
        " of " + std::to_string(budget_) +
        " bytes reserved by in-flight queries; retry when they complete");
  }
  if (queued_ >= max_queued_) {
    ++rejected_queue_full_;
    return Status::Unavailable(
        "submission queue full (" + std::to_string(queued_) +
        " queries waiting); retry later");
  }
  reserved_ += cost_bytes;
  ++queued_;
  ++admitted_;
  if (queued_ > queued_peak_) queued_peak_ = queued_;
  return Status::OK();
}

Result<uint64_t> AdmissionController::AdmitSoft(uint64_t requested_bytes,
                                                uint64_t min_grant_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queued_ >= max_queued_) {
    ++rejected_queue_full_;
    return Status::Unavailable(
        "submission queue full (" + std::to_string(queued_) +
        " queries waiting); retry later");
  }
  uint64_t grant = requested_bytes;
  if (budget_ != 0) {
    uint64_t available = budget_ > reserved_ ? budget_ - reserved_ : 0;
    if (grant > available) {
      grant = available > min_grant_bytes ? available : min_grant_bytes;
      if (grant > requested_bytes) grant = requested_bytes;
      ++soft_clipped_;
    }
  }
  reserved_ += grant;
  ++queued_;
  ++admitted_;
  if (queued_ > queued_peak_) queued_peak_ = queued_;
  return grant;
}

void AdmissionController::StartRunning() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queued_ > 0) --queued_;
  ++running_;
}

void AdmissionController::Finish(uint64_t cost_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ > 0) --running_;
  reserved_ = reserved_ >= cost_bytes ? reserved_ - cost_bytes : 0;
}

AdmissionStats AdmissionController::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats s;
  s.admitted = admitted_;
  s.rejected_queue_full = rejected_queue_full_;
  s.rejected_memory = rejected_memory_;
  s.queued_peak = queued_peak_;
  s.queued = queued_;
  s.running = running_;
  s.reserved_bytes = reserved_;
  s.soft_clipped = soft_clipped_;
  return s;
}

}  // namespace jpar
