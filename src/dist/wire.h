#ifndef JPAR_DIST_WIRE_H_
#define JPAR_DIST_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"

namespace jpar {

/// RAII wrapper over a connected (or listening) stream socket —
/// Unix-domain or TCP. Blocking I/O with EINTR retry; sends use
/// MSG_NOSIGNAL so a dead peer surfaces as a Status, never SIGPIPE.
/// Move-only; the destructor closes the descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();
  /// Half-closes both directions without releasing the descriptor —
  /// wakes a thread blocked in recv() on this socket (clean EOF). The
  /// dispatcher uses it to force a silent worker's reader to exit.
  void ShutdownBoth();
  /// Releases ownership of the descriptor without closing it.
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Sends exactly `len` bytes; kUnavailable when the peer is gone.
  Status SendAll(const void* data, size_t len);
  /// Receives exactly `len` bytes. Returns false on a clean EOF before
  /// the first byte (peer closed between messages); a mid-buffer EOF or
  /// any socket error is a non-OK Status.
  Result<bool> RecvAll(void* data, size_t len);
  /// Waits up to `timeout_ms` for the socket to become readable.
  Result<bool> WaitReadable(int timeout_ms);

  /// A connected AF_UNIX socketpair (parent end, child end) — how
  /// locally spawned workers are wired up (the child inherits its end
  /// as a known fd across exec).
  static Result<std::pair<Socket, Socket>> Pair();

  /// Connects to "unix:<path>" or "<host>:<port>".
  static Result<Socket> Connect(const std::string& endpoint);
  /// Binds and listens on "unix:<path>" or "<host>:<port>".
  static Result<Socket> ListenOn(const std::string& endpoint);
  /// Accepts one connection from a listening socket.
  Result<Socket> Accept();

 private:
  int fd_ = -1;
};

// ---------------------------------------------------------------------
// Message framing: every protocol message travels as
//   u32 magic ("JPAR", little-endian) | u8 type | u32 payload length |
//   u32 CRC32 of the payload | payload bytes.
// The magic and a hard payload-size cap reject corrupt or truncated
// streams with a clean kIOError instead of attempting a bogus
// gigabyte-sized read; the checksum catches payload bit-flips that a
// well-formed header would otherwise let through. On a data channel a
// checksum mismatch kills the connection, which the dispatcher treats
// as worker loss — recoverable via fragment retry (DESIGN.md §12).

inline constexpr uint32_t kWireMagic = 0x5241504Au;  // "JPAR" LE
/// Framed-message header size: magic + type + length + payload CRC32.
inline constexpr size_t kWireHeaderBytes = 13;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `data` —
/// the checksum carried in every wire header.
uint32_t WireCrc32(std::string_view data);
/// Upper bound on one message's payload. Frames are ~ExecOptions::
/// frame_bytes, catalog syncs ship one file per message; 1 GiB is far
/// above anything legitimate and small enough to refuse garbage.
inline constexpr uint32_t kMaxWirePayload = 1u << 30;

struct WireMessage {
  uint8_t type = 0;
  std::string payload;
};

/// Writes one framed message (header + payload in a single buffered
/// send).
Status WriteMessage(Socket* sock, uint8_t type, std::string_view payload);

/// Reads one framed message. Returns false on a clean EOF between
/// messages (peer shut down); corrupt magic, oversized length, a
/// truncated payload, or a payload checksum mismatch fail with
/// kIOError.
Result<bool> ReadMessage(Socket* sock, WireMessage* out);

}  // namespace jpar

#endif  // JPAR_DIST_WIRE_H_
