#include "dist/wire.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace jpar {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void PutU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
  out->push_back(static_cast<char>((v >> 16) & 0xFF));
  out->push_back(static_cast<char>((v >> 24) & 0xFF));
}

uint32_t GetU32(const unsigned char* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

}  // namespace

uint32_t WireCrc32(std::string_view data) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char b : data) {
    crc = table[(crc ^ b) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Status Socket::SendAll(const void* data, size_t len) {
  if (fd_ < 0) return Status::Internal("send on closed socket");
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("socket send failed"));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<bool> Socket::RecvAll(void* data, size_t len) {
  if (fd_ < 0) return Status::Internal("recv on closed socket");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd_, p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("socket recv failed"));
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF between messages
      return Status::IOError("peer closed mid-message (" +
                             std::to_string(got) + "/" +
                             std::to_string(len) + " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

Result<bool> Socket::WaitReadable(int timeout_ms) {
  if (fd_ < 0) return Status::Internal("poll on closed socket");
  struct pollfd pfd;
  pfd.fd = fd_;
  pfd.events = POLLIN;
  pfd.revents = 0;
  while (true) {
    int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(Errno("poll failed"));
    }
    // Error/hangup states are "readable": the next recv reports them.
    return n > 0;
  }
}

Result<std::pair<Socket, Socket>> Socket::Pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError(Errno("socketpair failed"));
  }
  return std::make_pair(Socket(fds[0]), Socket(fds[1]));
}

Result<Socket> Socket::Connect(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    std::string path = endpoint.substr(5);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError(Errno("socket failed"));
    Socket sock(fd);
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return Status::Unavailable(Errno(("connect to " + endpoint).c_str()));
    }
    return sock;
  }
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument(
        "endpoint must be unix:<path> or <host>:<port>, got: " + endpoint);
  }
  std::string host = endpoint.substr(0, colon);
  std::string port = endpoint.substr(colon + 1);
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("cannot resolve " + endpoint + ": " +
                               ::gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for " + endpoint);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError(Errno("socket failed"));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    last = Status::Unavailable(Errno(("connect to " + endpoint).c_str()));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Result<Socket> Socket::ListenOn(const std::string& endpoint) {
  if (endpoint.rfind("unix:", 0) == 0) {
    std::string path = endpoint.substr(5);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());  // stale socket file from a previous run
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::IOError(Errno("socket failed"));
    Socket sock(fd);
    if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::IOError(Errno(("bind " + endpoint).c_str()));
    }
    if (::listen(fd, 16) != 0) {
      return Status::IOError(Errno("listen failed"));
    }
    return sock;
  }
  size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "endpoint must be unix:<path> or <host>:<port>, got: " + endpoint);
  }
  std::string host = endpoint.substr(0, colon);
  std::string port = endpoint.substr(colon + 1);
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), port.c_str(),
                         &hints, &res);
  if (rc != 0) {
    return Status::InvalidArgument("cannot resolve " + endpoint + ": " +
                                   ::gai_strerror(rc));
  }
  Status last = Status::IOError("no addresses for " + endpoint);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::IOError(Errno("socket failed"));
      continue;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, 16) == 0) {
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    last = Status::IOError(Errno(("bind " + endpoint).c_str()));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

Result<Socket> Socket::Accept() {
  if (fd_ < 0) return Status::Internal("accept on closed socket");
  while (true) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Status::IOError(Errno("accept failed"));
  }
}

// ---------------------------------------------------------------------
// Framing

Status WriteMessage(Socket* sock, uint8_t type, std::string_view payload) {
  if (payload.size() > kMaxWirePayload) {
    return Status::Internal("wire payload too large: " +
                            std::to_string(payload.size()));
  }
  std::string buf;
  buf.reserve(kWireHeaderBytes + payload.size());
  PutU32(kWireMagic, &buf);
  buf.push_back(static_cast<char>(type));
  PutU32(static_cast<uint32_t>(payload.size()), &buf);
  PutU32(WireCrc32(payload), &buf);
  buf.append(payload.data(), payload.size());
  return sock->SendAll(buf.data(), buf.size());
}

Result<bool> ReadMessage(Socket* sock, WireMessage* out) {
  unsigned char header[kWireHeaderBytes];
  JPAR_ASSIGN_OR_RETURN(bool have, sock->RecvAll(header, sizeof(header)));
  if (!have) return false;
  uint32_t magic = GetU32(header);
  if (magic != kWireMagic) {
    return Status::IOError("bad wire magic: 0x" + [magic] {
      char buf[9];
      std::snprintf(buf, sizeof(buf), "%08x", magic);
      return std::string(buf);
    }());
  }
  out->type = header[4];
  uint32_t len = GetU32(header + 5);
  if (len > kMaxWirePayload) {
    return Status::IOError("wire payload length " + std::to_string(len) +
                           " exceeds cap " + std::to_string(kMaxWirePayload));
  }
  uint32_t want_crc = GetU32(header + 9);
  out->payload.resize(len);
  if (len > 0) {
    JPAR_ASSIGN_OR_RETURN(bool body,
                          sock->RecvAll(out->payload.data(), len));
    if (!body) {
      return Status::IOError("peer closed before message payload");
    }
  }
  uint32_t got_crc = WireCrc32(out->payload);
  if (got_crc != want_crc) {
    return Status::IOError("wire payload checksum mismatch (message type " +
                           std::to_string(out->type) + ", " +
                           std::to_string(len) + " bytes)");
  }
  return true;
}

}  // namespace jpar
