#include "dist/protocol.h"

#include <cstring>

namespace jpar {

// ---------------------------------------------------------------------
// Primitive serde

void PutVarint(uint64_t v, std::string* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutVarintSigned(int64_t v, std::string* out) {
  PutVarint((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63),
            out);
}

void PutDouble(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xFF));
  }
}

void PutBytes(std::string_view v, std::string* out) {
  PutVarint(v.size(), out);
  out->append(v.data(), v.size());
}

Result<uint64_t> PayloadReader::Varint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return Status::IOError("truncated varint in protocol payload");
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) {
      return Status::IOError("overlong varint in protocol payload");
    }
  }
}

Result<int64_t> PayloadReader::VarintSigned() {
  JPAR_ASSIGN_OR_RETURN(uint64_t raw, Varint());
  return static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

Result<uint8_t> PayloadReader::Byte() {
  if (pos_ >= data_.size()) {
    return Status::IOError("truncated byte in protocol payload");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<double> PayloadReader::Double() {
  if (pos_ + 8 > data_.size()) {
    return Status::IOError("truncated double in protocol payload");
  }
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
            << (8 * i);
  }
  pos_ += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string_view> PayloadReader::Bytes() {
  JPAR_ASSIGN_OR_RETURN(uint64_t len, Varint());
  if (len > data_.size() - pos_) {
    return Status::IOError("truncated bytes in protocol payload: need " +
                           std::to_string(len) + ", have " +
                           std::to_string(data_.size() - pos_));
  }
  std::string_view v = data_.substr(pos_, len);
  pos_ += len;
  return v;
}

// ---------------------------------------------------------------------
// Hello

std::string EncodeHello(const HelloMsg& msg) {
  std::string out;
  PutVarint(msg.version, &out);
  PutVarintSigned(msg.pid, &out);
  return out;
}

Result<HelloMsg> DecodeHello(std::string_view payload) {
  PayloadReader r(payload);
  HelloMsg msg;
  JPAR_ASSIGN_OR_RETURN(uint64_t version, r.Varint());
  msg.version = static_cast<uint32_t>(version);
  JPAR_ASSIGN_OR_RETURN(msg.pid, r.VarintSigned());
  return msg;
}

// ---------------------------------------------------------------------
// Options / stats serde

void EncodeRuleOptions(const RuleOptions& rules, std::string* out) {
  uint8_t bits = 0;
  if (rules.path_rules) bits |= 1u << 0;
  if (rules.pipelining_rules) bits |= 1u << 1;
  if (rules.pipelining_pushdown) bits |= 1u << 2;
  if (rules.groupby_rules) bits |= 1u << 3;
  if (rules.two_step_aggregation) bits |= 1u << 4;
  if (rules.join_rules) bits |= 1u << 5;
  if (rules.index_rules) bits |= 1u << 6;
  out->push_back(static_cast<char>(bits));
}

Status DecodeRuleOptions(PayloadReader* reader, RuleOptions* out) {
  JPAR_ASSIGN_OR_RETURN(uint8_t bits, reader->Byte());
  out->path_rules = (bits & (1u << 0)) != 0;
  out->pipelining_rules = (bits & (1u << 1)) != 0;
  out->pipelining_pushdown = (bits & (1u << 2)) != 0;
  out->groupby_rules = (bits & (1u << 3)) != 0;
  out->two_step_aggregation = (bits & (1u << 4)) != 0;
  out->join_rules = (bits & (1u << 5)) != 0;
  out->index_rules = (bits & (1u << 6)) != 0;
  return Status::OK();
}

void EncodeExecOptions(const ExecOptions& exec, std::string* out) {
  PutVarintSigned(exec.partitions, out);
  PutVarintSigned(exec.partitions_per_node, out);
  PutVarintSigned(exec.cores_per_node, out);
  PutVarint(exec.frame_bytes, out);
  PutVarint(exec.memory_limit_bytes, out);
  out->push_back(static_cast<char>(exec.spill));
  PutVarintSigned(exec.spill_fanout, out);
  PutBytes(exec.spill_dir, out);
  out->push_back(exec.use_threads ? 1 : 0);
  PutDouble(exec.network_gbps, out);
  PutDouble(exec.network_latency_ms_per_frame, out);
  PutDouble(exec.deadline_ms, out);
  out->push_back(static_cast<char>(exec.on_parse_error));
  out->push_back(static_cast<char>(exec.scan_mode));
  PutVarint(exec.morsel_bytes, out);
  out->push_back(exec.cooperative_checks ? 1 : 0);
  out->push_back(static_cast<char>(exec.expr_mode));
  PutVarint(exec.batch_size, out);
  out->push_back(static_cast<char>(exec.storage_mode));
  PutBytes(exec.storage_cache_dir, out);
  PutVarint(exec.storage_budget_bytes, out);
  out->push_back(static_cast<char>(exec.stats_mode));
}

Status DecodeExecOptions(PayloadReader* r, ExecOptions* out) {
  JPAR_ASSIGN_OR_RETURN(int64_t partitions, r->VarintSigned());
  out->partitions = static_cast<int>(partitions);
  JPAR_ASSIGN_OR_RETURN(int64_t ppn, r->VarintSigned());
  out->partitions_per_node = static_cast<int>(ppn);
  JPAR_ASSIGN_OR_RETURN(int64_t cores, r->VarintSigned());
  out->cores_per_node = static_cast<int>(cores);
  JPAR_ASSIGN_OR_RETURN(uint64_t frame_bytes, r->Varint());
  out->frame_bytes = static_cast<size_t>(frame_bytes);
  JPAR_ASSIGN_OR_RETURN(out->memory_limit_bytes, r->Varint());
  JPAR_ASSIGN_OR_RETURN(uint8_t spill, r->Byte());
  out->spill = static_cast<SpillMode>(spill);
  JPAR_ASSIGN_OR_RETURN(int64_t fanout, r->VarintSigned());
  out->spill_fanout = static_cast<int>(fanout);
  JPAR_ASSIGN_OR_RETURN(out->spill_dir, r->String());
  JPAR_ASSIGN_OR_RETURN(uint8_t use_threads, r->Byte());
  out->use_threads = use_threads != 0;
  JPAR_ASSIGN_OR_RETURN(out->network_gbps, r->Double());
  JPAR_ASSIGN_OR_RETURN(out->network_latency_ms_per_frame, r->Double());
  JPAR_ASSIGN_OR_RETURN(out->deadline_ms, r->Double());
  JPAR_ASSIGN_OR_RETURN(uint8_t on_parse_error, r->Byte());
  out->on_parse_error = static_cast<ParseErrorPolicy>(on_parse_error);
  JPAR_ASSIGN_OR_RETURN(uint8_t scan_mode, r->Byte());
  out->scan_mode = static_cast<ScanMode>(scan_mode);
  JPAR_ASSIGN_OR_RETURN(uint64_t morsel_bytes, r->Varint());
  out->morsel_bytes = static_cast<size_t>(morsel_bytes);
  JPAR_ASSIGN_OR_RETURN(uint8_t coop, r->Byte());
  out->cooperative_checks = coop != 0;
  JPAR_ASSIGN_OR_RETURN(uint8_t expr_mode, r->Byte());
  out->expr_mode = static_cast<ExprMode>(expr_mode);
  JPAR_ASSIGN_OR_RETURN(uint64_t batch_size, r->Varint());
  out->batch_size = static_cast<size_t>(batch_size);
  JPAR_ASSIGN_OR_RETURN(uint8_t storage_mode, r->Byte());
  out->storage_mode = static_cast<StorageMode>(storage_mode);
  JPAR_ASSIGN_OR_RETURN(out->storage_cache_dir, r->String());
  JPAR_ASSIGN_OR_RETURN(out->storage_budget_bytes, r->Varint());
  JPAR_ASSIGN_OR_RETURN(uint8_t stats_mode, r->Byte());
  out->stats_mode = static_cast<StatsMode>(stats_mode);
  return Status::OK();
}

namespace {

void EncodeDoubleVec(const std::vector<double>& v, std::string* out) {
  PutVarint(v.size(), out);
  for (double d : v) PutDouble(d, out);
}

Status DecodeDoubleVec(PayloadReader* r, std::vector<double>* out) {
  JPAR_ASSIGN_OR_RETURN(uint64_t n, r->Varint());
  out->clear();
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    JPAR_ASSIGN_OR_RETURN(double d, r->Double());
    out->push_back(d);
  }
  return Status::OK();
}

}  // namespace

void EncodeExecStats(const ExecStats& stats, std::string* out) {
  PutVarint(stats.stages.size(), out);
  for (const StageStats& s : stats.stages) {
    PutBytes(s.name, out);
    EncodeDoubleVec(s.partition_ms, out);
    PutDouble(s.exchange_ms, out);
    PutVarint(s.exchange_task_ms.size(), out);
    for (const std::vector<double>& phase : s.exchange_task_ms) {
      EncodeDoubleVec(phase, out);
    }
    PutDouble(s.network_ms, out);
    PutVarint(s.exchange_bytes, out);
    PutVarint(s.exchange_frames, out);
    PutVarint(s.exchange_tuples, out);
    PutVarint(s.max_tuple_bytes, out);
    PutVarint(s.pipeline_bytes, out);
    PutVarint(s.oversized_frames, out);
  }
  PutDouble(stats.real_ms, out);
  PutDouble(stats.makespan_ms, out);
  PutDouble(stats.network_ms, out);
  PutVarint(stats.bytes_scanned, out);
  PutVarint(stats.items_scanned, out);
  PutVarint(stats.result_rows, out);
  PutVarint(stats.peak_retained_bytes, out);
  PutVarint(stats.skipped_records, out);
  PutVarint(stats.morsels_scanned, out);
  PutVarint(stats.spill_runs, out);
  PutVarint(stats.spill_bytes_written, out);
  PutVarint(stats.spill_merge_passes, out);
  PutVarint(stats.dist_workers, out);
  PutVarint(stats.dist_rounds, out);
  PutVarint(stats.dist_frames, out);
  PutVarint(stats.dist_bytes, out);
  PutVarint(stats.fragment_retries, out);
  PutVarint(stats.workers_respawned, out);
  PutVarint(stats.frames_replayed, out);
  PutVarint(stats.replay_spill_bytes, out);
  PutDouble(stats.recovery_ms, out);
  PutVarint(stats.batches_emitted, out);
  PutVarint(stats.exprs_compiled, out);
  PutVarint(stats.tape_hits, out);
  PutVarint(stats.tape_builds, out);
  PutVarint(stats.columns_read, out);
  PutVarint(stats.blocks_pruned, out);
  PutVarint(stats.stats_paths_built, out);
}

Status DecodeExecStats(PayloadReader* r, ExecStats* out) {
  JPAR_ASSIGN_OR_RETURN(uint64_t nstages, r->Varint());
  out->stages.clear();
  for (uint64_t i = 0; i < nstages; ++i) {
    StageStats s;
    JPAR_ASSIGN_OR_RETURN(s.name, r->String());
    JPAR_RETURN_NOT_OK(DecodeDoubleVec(r, &s.partition_ms));
    JPAR_ASSIGN_OR_RETURN(s.exchange_ms, r->Double());
    JPAR_ASSIGN_OR_RETURN(uint64_t nphases, r->Varint());
    for (uint64_t p = 0; p < nphases; ++p) {
      std::vector<double> phase;
      JPAR_RETURN_NOT_OK(DecodeDoubleVec(r, &phase));
      s.exchange_task_ms.push_back(std::move(phase));
    }
    JPAR_ASSIGN_OR_RETURN(s.network_ms, r->Double());
    JPAR_ASSIGN_OR_RETURN(s.exchange_bytes, r->Varint());
    JPAR_ASSIGN_OR_RETURN(s.exchange_frames, r->Varint());
    JPAR_ASSIGN_OR_RETURN(s.exchange_tuples, r->Varint());
    JPAR_ASSIGN_OR_RETURN(s.max_tuple_bytes, r->Varint());
    JPAR_ASSIGN_OR_RETURN(s.pipeline_bytes, r->Varint());
    JPAR_ASSIGN_OR_RETURN(s.oversized_frames, r->Varint());
    out->stages.push_back(std::move(s));
  }
  JPAR_ASSIGN_OR_RETURN(out->real_ms, r->Double());
  JPAR_ASSIGN_OR_RETURN(out->makespan_ms, r->Double());
  JPAR_ASSIGN_OR_RETURN(out->network_ms, r->Double());
  JPAR_ASSIGN_OR_RETURN(out->bytes_scanned, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->items_scanned, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->result_rows, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->peak_retained_bytes, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->skipped_records, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->morsels_scanned, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->spill_runs, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->spill_bytes_written, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->spill_merge_passes, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->dist_workers, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->dist_rounds, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->dist_frames, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->dist_bytes, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->fragment_retries, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->workers_respawned, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->frames_replayed, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->replay_spill_bytes, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->recovery_ms, r->Double());
  JPAR_ASSIGN_OR_RETURN(out->batches_emitted, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->exprs_compiled, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->tape_hits, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->tape_builds, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->columns_read, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->blocks_pruned, r->Varint());
  JPAR_ASSIGN_OR_RETURN(out->stats_paths_built, r->Varint());
  return Status::OK();
}

// ---------------------------------------------------------------------
// FragmentRequest

std::string EncodeFragmentRequest(const FragmentRequest& req) {
  std::string out;
  PutBytes(req.query, &out);
  EncodeRuleOptions(req.rules, &out);
  EncodeExecOptions(req.exec, &out);
  PutVarintSigned(req.stage_id, &out);
  PutVarintSigned(req.worker_id, &out);
  PutVarintSigned(req.worker_count, &out);
  PutVarintSigned(req.fanout, &out);
  PutVarintSigned(req.num_inputs, &out);
  PutDouble(req.deadline_remaining_ms, &out);
  PutVarint(req.credit_window, &out);
  return out;
}

Result<FragmentRequest> DecodeFragmentRequest(std::string_view payload) {
  PayloadReader r(payload);
  FragmentRequest req;
  JPAR_ASSIGN_OR_RETURN(req.query, r.String());
  JPAR_RETURN_NOT_OK(DecodeRuleOptions(&r, &req.rules));
  JPAR_RETURN_NOT_OK(DecodeExecOptions(&r, &req.exec));
  JPAR_ASSIGN_OR_RETURN(int64_t stage_id, r.VarintSigned());
  req.stage_id = static_cast<int>(stage_id);
  JPAR_ASSIGN_OR_RETURN(int64_t worker_id, r.VarintSigned());
  req.worker_id = static_cast<int>(worker_id);
  JPAR_ASSIGN_OR_RETURN(int64_t worker_count, r.VarintSigned());
  req.worker_count = static_cast<int>(worker_count);
  JPAR_ASSIGN_OR_RETURN(int64_t fanout, r.VarintSigned());
  req.fanout = static_cast<int>(fanout);
  JPAR_ASSIGN_OR_RETURN(int64_t num_inputs, r.VarintSigned());
  req.num_inputs = static_cast<int>(num_inputs);
  JPAR_ASSIGN_OR_RETURN(req.deadline_remaining_ms, r.Double());
  JPAR_ASSIGN_OR_RETURN(uint64_t credit_window, r.Varint());
  req.credit_window = static_cast<uint32_t>(credit_window);
  if (req.worker_count < 1 || req.worker_id < 0 ||
      req.worker_id >= req.worker_count || req.stage_id < 0 ||
      req.num_inputs < 0 || req.fanout < 0) {
    return Status::IOError("corrupt fragment request: bad topology fields");
  }
  return req;
}

// ---------------------------------------------------------------------
// Frames

std::string EncodeFrameMsg(const FrameMsg& msg) {
  std::string out;
  PutVarint(msg.channel, &out);
  PutVarint(msg.tuple_count, &out);
  PutBytes(msg.bytes, &out);
  return out;
}

Result<FrameMsg> DecodeFrameMsg(std::string_view payload) {
  PayloadReader r(payload);
  FrameMsg msg;
  JPAR_ASSIGN_OR_RETURN(uint64_t channel, r.Varint());
  msg.channel = static_cast<uint32_t>(channel);
  JPAR_ASSIGN_OR_RETURN(uint64_t tuples, r.Varint());
  msg.tuple_count = static_cast<uint32_t>(tuples);
  JPAR_ASSIGN_OR_RETURN(std::string_view bytes, r.Bytes());
  msg.bytes.assign(bytes.data(), bytes.size());
  return msg;
}

// ---------------------------------------------------------------------
// Completion / cancel / credit

std::string EncodeOutputEof(const OutputEofMsg& msg) {
  std::string out;
  PutVarint(static_cast<uint64_t>(msg.code), &out);
  PutBytes(msg.message, &out);
  EncodeExecStats(msg.stats, &out);
  return out;
}

Result<OutputEofMsg> DecodeOutputEof(std::string_view payload) {
  PayloadReader r(payload);
  OutputEofMsg msg;
  JPAR_ASSIGN_OR_RETURN(uint64_t code, r.Varint());
  if (code >= static_cast<uint64_t>(kStatusCodeCount)) {
    return Status::IOError("corrupt output eof: unknown status code " +
                           std::to_string(code));
  }
  msg.code = static_cast<StatusCode>(code);
  JPAR_ASSIGN_OR_RETURN(msg.message, r.String());
  JPAR_RETURN_NOT_OK(DecodeExecStats(&r, &msg.stats));
  return msg;
}

std::string EncodeCancel(const CancelMsg& msg) {
  std::string out;
  PutVarint(static_cast<uint64_t>(msg.code), &out);
  PutBytes(msg.message, &out);
  return out;
}

Result<CancelMsg> DecodeCancel(std::string_view payload) {
  PayloadReader r(payload);
  CancelMsg msg;
  JPAR_ASSIGN_OR_RETURN(uint64_t code, r.Varint());
  if (code >= static_cast<uint64_t>(kStatusCodeCount)) {
    return Status::IOError("corrupt cancel: unknown status code " +
                           std::to_string(code));
  }
  msg.code = static_cast<StatusCode>(code);
  JPAR_ASSIGN_OR_RETURN(msg.message, r.String());
  return msg;
}

Status StatusFromCode(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(message));
    case StatusCode::kTypeError:
      return Status::TypeError(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kUnsupported:
      return Status::Unsupported(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kIOError:
      return Status::IOError(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kWorkerLost:
      return Status::WorkerLost(std::move(message));
  }
  return Status::Internal("unknown status code " +
                          std::to_string(static_cast<int>(code)));
}

std::string EncodeCredit(uint32_t frames) {
  std::string out;
  PutVarint(frames, &out);
  return out;
}

Result<uint32_t> DecodeCredit(std::string_view payload) {
  PayloadReader r(payload);
  JPAR_ASSIGN_OR_RETURN(uint64_t frames, r.Varint());
  return static_cast<uint32_t>(frames);
}

// ---------------------------------------------------------------------
// Catalog sync

namespace {

// File kinds on the wire.
constexpr uint8_t kFileText = 0;
constexpr uint8_t kFilePath = 1;
constexpr uint8_t kFileBinary = 2;

void EncodeFile(const JsonFile& file, std::string* out) {
  if (file.is_binary()) {
    out->push_back(static_cast<char>(kFileBinary));
    PutBytes(*file.binary(), out);
  } else if (file.in_memory()) {
    out->push_back(static_cast<char>(kFileText));
    // Load() never fails for in-memory files.
    PutBytes(**file.Load(), out);
  } else {
    out->push_back(static_cast<char>(kFilePath));
    PutBytes(file.path(), out);
  }
}

Result<JsonFile> DecodeFile(PayloadReader* r) {
  JPAR_ASSIGN_OR_RETURN(uint8_t kind, r->Byte());
  JPAR_ASSIGN_OR_RETURN(std::string_view data, r->Bytes());
  switch (kind) {
    case kFileText:
      return JsonFile::FromText(std::string(data));
    case kFilePath:
      return JsonFile::FromPath(std::string(data));
    case kFileBinary:
      return JsonFile::FromBinaryItem(std::string(data));
    default:
      return Status::IOError("corrupt catalog sync: unknown file kind " +
                             std::to_string(kind));
  }
}

}  // namespace

std::string EncodeCatalogSync(const Catalog& catalog) {
  std::string out;
  PutVarint(catalog.version(), &out);
  PutVarint(catalog.collections().size(), &out);
  for (const auto& [name, coll] : catalog.collections()) {
    PutBytes(name, &out);
    PutVarint(coll.files.size(), &out);
    for (const JsonFile& file : coll.files) EncodeFile(file, &out);
  }
  PutVarint(catalog.documents().size(), &out);
  for (const auto& [name, file] : catalog.documents()) {
    PutBytes(name, &out);
    EncodeFile(file, &out);
  }
  return out;
}

Status DecodeCatalogSyncInto(std::string_view payload, Catalog* catalog,
                             uint64_t* version) {
  PayloadReader r(payload);
  JPAR_ASSIGN_OR_RETURN(*version, r.Varint());
  JPAR_ASSIGN_OR_RETURN(uint64_t ncolls, r.Varint());
  for (uint64_t c = 0; c < ncolls; ++c) {
    JPAR_ASSIGN_OR_RETURN(std::string name, r.String());
    JPAR_ASSIGN_OR_RETURN(uint64_t nfiles, r.Varint());
    Collection coll;
    coll.files.reserve(nfiles);
    for (uint64_t f = 0; f < nfiles; ++f) {
      JPAR_ASSIGN_OR_RETURN(JsonFile file, DecodeFile(&r));
      coll.files.push_back(std::move(file));
    }
    catalog->RegisterCollection(name, std::move(coll));
  }
  JPAR_ASSIGN_OR_RETURN(uint64_t ndocs, r.Varint());
  for (uint64_t d = 0; d < ndocs; ++d) {
    JPAR_ASSIGN_OR_RETURN(std::string name, r.String());
    JPAR_ASSIGN_OR_RETURN(JsonFile file, DecodeFile(&r));
    catalog->RegisterDocument(name, std::move(file));
  }
  return Status::OK();
}

std::string EncodeSyncAck(uint64_t version) {
  std::string out;
  PutVarint(version, &out);
  return out;
}

Result<uint64_t> DecodeSyncAck(std::string_view payload) {
  PayloadReader r(payload);
  return r.Varint();
}

}  // namespace jpar
