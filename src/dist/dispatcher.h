#ifndef JPAR_DIST_DISPATCHER_H_
#define JPAR_DIST_DISPATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "dist/exchange.h"
#include "dist/fragment.h"
#include "dist/protocol.h"
#include "dist/wire.h"

namespace jpar {

/// Cluster topology and failure-detection knobs (DESIGN.md §11).
struct DistOptions {
  /// Worker processes to spawn locally over socketpairs (the test and
  /// single-host deployment). Dead local workers are respawned at the
  /// start of the next query.
  int local_workers = 0;
  /// Already-running workers to attach by endpoint ("host:port" or
  /// "unix:<path>"); appended after the locally spawned ranks.
  std::vector<std::string> endpoints;
  /// Worker executable for local spawns; empty falls back to the
  /// JPAR_WORKER_BIN environment variable.
  std::string worker_binary;
  /// Initial send credits per direction of each worker connection; the
  /// in-flight exchange data is bounded by credit_window × frame_bytes.
  uint32_t credit_window = 64;
  /// Ping a busy worker after this much silence.
  int heartbeat_ms = 1000;
  /// Declare a worker lost (kWorkerLost) after this much silence.
  int worker_timeout_ms = 10000;
  /// After a cancel broadcast, how long to wait for workers to
  /// acknowledge with kOutputEof before force-dropping them.
  int drain_timeout_ms = 2000;

  bool enabled() const { return local_workers > 0 || !endpoints.empty(); }
};

/// The dispatcher: owns the worker connections and runs distributed
/// queries round by round — one fragment stage per round, every worker
/// running its rank's fragment, all shuffle traffic routed through the
/// dispatcher (star topology, ordered by source rank so results are
/// byte-identical to the in-process exchange).
///
/// Thread-safe: Run() serializes distributed queries internally; the
/// per-worker reader threads handle frames, credits, and completion
/// concurrently with the sender side.
class Cluster {
 public:
  explicit Cluster(DistOptions options) : options_(std::move(options)) {}
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Spawns/attaches and handshakes all configured workers. Also called
  /// lazily by Run(); exposed so callers can fail fast at startup.
  Status Start();

  /// Sends kShutdown, reaps local worker processes (SIGKILL after
  /// drain_timeout_ms), and joins reader threads. Idempotent.
  void Stop();

  int worker_count() const {
    return options_.local_workers + static_cast<int>(options_.endpoints.size());
  }

  /// Whether this plan's shape can run distributed (see
  /// SplitPlanForDistribution); callers fall back to in-process
  /// execution when false.
  static bool CanDistribute(const PhysicalPlan& plan);

  /// Runs `compiled` (the compilation of `query` under `rules`) across
  /// the cluster and gathers the result. `catalog` is shipped to any
  /// worker whose replica is older than catalog->version(). `ctx` may
  /// be null; with a null ctx a positive exec.deadline_ms starts
  /// counting now. A worker that dies or goes silent mid-query yields
  /// kWorkerLost; local workers are respawned on the next query.
  Result<QueryOutput> Run(const std::string& query, const RuleOptions& rules,
                          const ExecOptions& exec,
                          const CompiledQuery& compiled,
                          const Catalog& catalog, QueryContext* ctx);

 private:
  struct Worker {
    int rank = 0;
    bool local = false;
    std::string endpoint;  // attached workers only
    Socket sock;
    std::mutex send_mu;
    std::thread reader;
    pid_t pid = -1;  // local child pid; -1 until hello (attached: remote pid)

    // State below is guarded by Cluster::mu_ unless noted.
    bool alive = false;
    bool hello_seen = false;
    uint64_t synced_version = 0;
    bool sync_acked = false;
    Status death;  // why the connection died
    /// Last time the reader heard anything (atomic millis since epoch).
    std::atomic<int64_t> last_heard_ms{0};
    std::chrono::steady_clock::time_point last_ping{};
    /// Dispatcher -> worker data-frame credits (self-synchronized).
    CreditWindow send_window;
  };

  /// Per-round collection state, guarded by mu_. `out[src][bucket]`
  /// holds worker src's output frames for bucket, in arrival order
  /// (each worker sends its buckets in order on one connection).
  struct Round {
    bool active = false;
    int fanout = 1;
    std::vector<std::vector<std::vector<FrameMsg>>> out;
    std::vector<bool> done;
    std::vector<Status> status;
    std::vector<ExecStats> stats;
    int done_count = 0;
    uint64_t frames = 0;
    uint64_t bytes = 0;
    Status failure;  // first fragment failure or worker loss
    QueryContext* ctx = nullptr;  // for exchange fault injection
  };

  Status EnsureWorkers();
  Status SpawnLocal(Worker* worker);
  Status AttachRemote(Worker* worker);
  Status AwaitHello(Worker* worker);
  void DropWorker(Worker* worker, const Status& why);
  void ReapLocal(Worker* worker, bool graceful);

  Status SyncCatalog(const Catalog& catalog);

  /// One fragment round: dispatch stage to every rank, route inputs,
  /// collect outputs and EOFs. `stage_out[s]` holds finished stage s's
  /// frames as [src][bucket].
  Status RunRound(
      const std::string& query, const RuleOptions& rules,
      const ExecOptions& exec, const FragmentStage& stage, int fanout,
      const std::vector<std::vector<std::vector<std::vector<FrameMsg>>>>&
          stage_out,
      QueryContext* ctx, ExecStats* stats,
      std::vector<std::vector<std::vector<FrameMsg>>>* round_out);

  void SenderLoop(Worker* worker, const std::string& query,
                  const RuleOptions& rules, const ExecOptions& exec,
                  const FragmentStage& stage, int fanout,
                  double deadline_remaining_ms,
                  const std::vector<std::vector<std::vector<std::vector<
                      FrameMsg>>>>& stage_out,
                  QueryContext* ctx);

  void ReaderLoop(Worker* worker);
  void OnOutputFrame(Worker* worker, FrameMsg frame);
  void OnOutputEof(Worker* worker, OutputEofMsg eof);

  /// Broadcast kCancel(code,message) to workers still busy this round.
  void CancelRound(const Status& why);

  DistOptions options_;
  std::mutex query_mu_;  // one distributed query at a time
  std::vector<std::unique_ptr<Worker>> workers_;
  bool started_ = false;
  bool stopped_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  Round round_;
};

}  // namespace jpar

#endif  // JPAR_DIST_DISPATCHER_H_
