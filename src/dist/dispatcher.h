#ifndef JPAR_DIST_DISPATCHER_H_
#define JPAR_DIST_DISPATCHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "dist/exchange.h"
#include "dist/fragment.h"
#include "dist/protocol.h"
#include "dist/replay.h"
#include "dist/wire.h"

namespace jpar {

/// Cluster topology, failure-detection, and recovery knobs
/// (DESIGN.md §11–§12).
struct DistOptions {
  /// Worker processes to spawn locally over socketpairs (the test and
  /// single-host deployment). Dead local workers are respawned at the
  /// start of the next query (and mid-query during fragment retry).
  int local_workers = 0;
  /// Already-running workers to attach by endpoint ("host:port" or
  /// "unix:<path>"); appended after the locally spawned ranks.
  std::vector<std::string> endpoints;
  /// Worker executable for local spawns; empty falls back to the
  /// JPAR_WORKER_BIN environment variable.
  std::string worker_binary;
  /// Initial send credits per direction of each worker connection; the
  /// in-flight exchange data is bounded by credit_window × frame_bytes.
  uint32_t credit_window = 64;
  /// Ping a busy worker after this much silence.
  int heartbeat_ms = 1000;
  /// Declare a worker lost (kWorkerLost) after this much silence.
  int worker_timeout_ms = 10000;
  /// After a cancel broadcast, how long to wait for workers to
  /// acknowledge with kOutputEof before force-dropping them.
  int drain_timeout_ms = 2000;
  /// Times a lost fragment may be re-dispatched (per stage, across all
  /// ranks) before the query fails with kWorkerLost. 0 — the default —
  /// disables recovery: any worker loss surfaces immediately, the
  /// pre-§12 behavior. Recompilation is deterministic and retried
  /// fragments replay their recorded inputs, so a retry re-executes
  /// the exact same fragment.
  int max_fragment_retries = 0;
  /// Base backoff before re-dispatching a lost fragment; doubles per
  /// consecutive retry of the same stage (capped at worker_timeout_ms).
  int retry_backoff_ms = 100;
  /// Memory budget for the dispatcher's replay buffer (completed
  /// stages' output frames, kept for retry replay); stages beyond the
  /// budget overflow to disk via SpillManager (counted as
  /// ExecStats::replay_spill_bytes). The buffer is also what the final
  /// gather reads, so it exists even with retries disabled.
  uint64_t replay_memory_bytes = 64ull << 20;
  /// Test hook fired before each round dispatch with (stage_id,
  /// attempt); attempt 0 is the first dispatch of that stage. Lets the
  /// chaos tests place kills deterministically. Must be thread-safe
  /// against worker reader threads (it runs on the Run() thread).
  std::function<void(int stage_id, int attempt)> test_round_hook;

  bool enabled() const { return local_workers > 0 || !endpoints.empty(); }
};

/// The ISSUE/ROADMAP name for the dispatcher's option set.
using ClusterOptions = DistOptions;

/// Rejects non-positive timing/window knobs (and a negative retry
/// budget) with kInvalidArgument — a zero heartbeat or drain timeout
/// would spin or hang instead of failing visibly. Checked by
/// Cluster::Start() and Run().
Status ValidateDistOptions(const DistOptions& options);

/// The dispatcher: owns the worker connections and runs distributed
/// queries round by round — one fragment stage per round, every worker
/// running its rank's fragment, all shuffle traffic routed through the
/// dispatcher (star topology, ordered by source rank so results are
/// byte-identical to the in-process exchange).
///
/// Thread-safe: Run() serializes distributed queries internally; the
/// per-worker reader threads handle frames, credits, and completion
/// concurrently with the sender side.
class Cluster {
 public:
  explicit Cluster(DistOptions options) : options_(std::move(options)) {}
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Spawns/attaches and handshakes all configured workers. Also called
  /// lazily by Run(); exposed so callers can fail fast at startup.
  Status Start();

  /// Sends kShutdown, reaps local worker processes (SIGKILL after
  /// drain_timeout_ms), and joins reader threads. Idempotent.
  void Stop();

  int worker_count() const {
    return options_.local_workers + static_cast<int>(options_.endpoints.size());
  }

  /// Whether this plan's shape can run distributed (see
  /// SplitPlanForDistribution); callers fall back to in-process
  /// execution when false.
  static bool CanDistribute(const PhysicalPlan& plan);

  /// Runs `compiled` (the compilation of `query` under `rules`) across
  /// the cluster and gathers the result. `catalog` is shipped to any
  /// worker whose replica is older than catalog->version(). `ctx` may
  /// be null; with a null ctx a positive exec.deadline_ms starts
  /// counting now. A worker that dies or goes silent mid-query is
  /// respawned and its fragment re-dispatched (with replayed inputs)
  /// up to max_fragment_retries times per stage; past the budget — or
  /// always, when the budget is 0 — the query yields kWorkerLost and
  /// local workers are respawned on the next query.
  Result<QueryOutput> Run(const std::string& query, const RuleOptions& rules,
                          const ExecOptions& exec,
                          const CompiledQuery& compiled,
                          const Catalog& catalog, QueryContext* ctx);

 private:
  struct Worker {
    int rank = 0;
    bool local = false;
    std::string endpoint;  // attached workers only
    Socket sock;
    std::mutex send_mu;
    std::thread reader;
    pid_t pid = -1;  // local child pid; -1 until hello (attached: remote pid)

    // State below is guarded by Cluster::mu_ unless noted.
    bool alive = false;
    bool hello_seen = false;
    uint64_t synced_version = 0;
    bool sync_acked = false;
    Status death;  // why the connection died
    /// Last time the reader heard anything (atomic millis since epoch).
    std::atomic<int64_t> last_heard_ms{0};
    std::chrono::steady_clock::time_point last_ping{};
    /// Dispatcher -> worker data-frame credits (self-synchronized).
    CreditWindow send_window;
  };

  /// Per-round collection state, guarded by mu_. `out[src][bucket]`
  /// holds worker src's output frames for bucket, in arrival order
  /// (each worker sends its buckets in order on one connection).
  struct Round {
    bool active = false;
    int fanout = 1;
    std::vector<std::vector<std::vector<FrameMsg>>> out;
    std::vector<bool> done;
    std::vector<Status> status;
    std::vector<ExecStats> stats;
    int done_count = 0;
    uint64_t frames = 0;
    uint64_t bytes = 0;
    uint64_t replayed = 0;  // input frames re-sent on retry attempts
    /// When true, a rank lost to kWorkerLost does not set `failure`
    /// (the round completes and the lost ranks are re-dispatched);
    /// fragment-reported errors still fail the round immediately.
    bool retry_worker_lost = false;
    Status failure;  // first non-retryable failure
    QueryContext* ctx = nullptr;  // for exchange fault injection
  };

  Status EnsureWorkers();
  Status SpawnLocal(Worker* worker);
  Status AttachRemote(Worker* worker);
  Status AwaitHello(Worker* worker);
  void DropWorker(Worker* worker, const Status& why);
  void ReapLocal(Worker* worker, bool graceful);

  Status SyncCatalog(const Catalog& catalog);

  /// One dispatch attempt of `stage` over the ranks in `ranks` (every
  /// other rank is treated as already complete — its output is banked
  /// in the spool from a previous attempt). Inputs are streamed from
  /// `spool`. Successful ranks' output buckets move into
  /// (*accum)[rank] and their fragment stats merge into *stats; ranks
  /// lost to kWorkerLost are appended to *lost. When `retry_allowed`,
  /// such losses do not fail the round — healthy ranks run to
  /// completion; any other failure cancels the round and is returned.
  /// `replay` marks a retry attempt (forwarded input frames count as
  /// frames_replayed).
  Status RunRound(const std::string& query, const RuleOptions& rules,
                  const ExecOptions& exec, const FragmentStage& stage,
                  int fanout, ReplaySpool* spool,
                  const std::vector<int>& ranks, bool retry_allowed,
                  bool replay, QueryContext* ctx, ExecStats* stats,
                  std::vector<std::vector<std::vector<FrameMsg>>>* accum,
                  std::vector<int>* lost);

  void SenderLoop(Worker* worker, const std::string& query,
                  const RuleOptions& rules, const ExecOptions& exec,
                  const FragmentStage& stage, int fanout,
                  double deadline_remaining_ms, ReplaySpool* spool,
                  bool replay, QueryContext* ctx);

  void ReaderLoop(Worker* worker);
  /// Fails the current round with a non-retryable error (the wait loop
  /// broadcasts the cancel). Used for dispatcher-side faults like
  /// replay-buffer I/O errors that are not any worker's fault.
  void FailRound(const Status& why);
  void OnOutputFrame(Worker* worker, FrameMsg frame);
  void OnOutputEof(Worker* worker, OutputEofMsg eof);

  /// Broadcast kCancel(code,message) to workers still busy this round.
  void CancelRound(const Status& why);

  DistOptions options_;
  std::mutex query_mu_;  // one distributed query at a time
  /// Per-query exchange credit window (guarded by query_mu_): the
  /// configured DistOptions::credit_window, shrunk when the plan's
  /// cost-model estimate says the result is small (DESIGN.md §15).
  /// Pure flow control — a window is pacing, never a row limit — so a
  /// wrong estimate costs throughput, not answers. 0 until first Run.
  uint32_t query_credit_window_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  bool started_ = false;
  bool stopped_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  Round round_;
};

}  // namespace jpar

#endif  // JPAR_DIST_DISPATCHER_H_
