#include "dist/fragment.h"

namespace jpar {

namespace {

/// Expressions that read the catalog directly (collection(), json-doc())
/// cannot run on a leaf fragment: leaves execute over a *sliced*
/// catalog, so such an eval would see one worker's file subset instead
/// of the whole collection. Conservatively reject the plan; the
/// dispatcher falls back to single-process execution.
Status CheckEval(const ScalarEvalPtr& eval) {
  if (eval == nullptr) return Status::OK();
  std::string s = eval->ToString();
  if (s.find("collection(") != std::string::npos ||
      s.find("json-doc(") != std::string::npos) {
    return Status::Unsupported(
        "distributed execution: expression reads a data source directly: " +
        s);
  }
  return Status::OK();
}

Status CheckEvals(const std::vector<ScalarEvalPtr>& evals) {
  for (const ScalarEvalPtr& e : evals) JPAR_RETURN_NOT_OK(CheckEval(e));
  return Status::OK();
}

Status CheckOps(const std::vector<UnaryOpDesc>& ops) {
  for (const UnaryOpDesc& op : ops) {
    JPAR_RETURN_NOT_OK(CheckEval(op.eval));
    if (op.subplan != nullptr) {
      JPAR_RETURN_NOT_OK(CheckOps(op.subplan->ops));
      for (const AggSpec& agg : op.subplan->aggs) {
        JPAR_RETURN_NOT_OK(CheckEval(agg.arg));
      }
    }
  }
  return Status::OK();
}

class Builder {
 public:
  Result<StagePlan> Split(const PhysicalPlan& plan) {
    if (plan.root == nullptr) {
      return Status::InvalidArgument("physical plan has no root");
    }
    JPAR_ASSIGN_OR_RETURN(int root_stage, Build(*plan.root));
    (void)root_stage;  // last stage; stays unshuffled = gather
    plan_.result_column = plan.result_column;
    return std::move(plan_);
  }

 private:
  Result<int> Build(const PNode& node) {
    switch (node.kind) {
      case PNode::Kind::kPipeline:
        return BuildPipeline(node);
      case PNode::Kind::kGroupBy:
        return BuildGroupBy(node);
      case PNode::Kind::kJoin:
        return BuildJoin(node);
      case PNode::Kind::kSort:
        return Status::Unsupported(
            "distributed execution: SORT is not distributed yet");
    }
    return Status::Internal("unknown physical node kind");
  }

  Result<int> BuildPipeline(const PNode& node) {
    JPAR_RETURN_NOT_OK(CheckOps(node.ops));
    if (node.input == nullptr) {
      if (node.scan.kind != ScanDesc::Kind::kDataScan) {
        return Status::Unsupported(
            "distributed execution: plan scans via EMPTY-TUPLE-SOURCE "
            "(enable the pipelining rules)");
      }
      if (node.scan.use_index) {
        return Status::Unsupported(
            "distributed execution: index-assisted scans prune files "
            "globally and cannot be sliced per worker");
      }
      FragmentStage stage;
      stage.id = static_cast<int>(plan_.stages.size());
      stage.core = FragmentStage::Core::kLeaf;
      stage.core_node = &node;  // the whole subtree, ops included
      plan_.stages.push_back(std::move(stage));
      return plan_.stages.back().id;
    }
    // A pipeline over another operator runs partition-wise on whatever
    // worker produced its input: append the ops to that stage.
    JPAR_ASSIGN_OR_RETURN(int producer, Build(*node.input));
    FragmentStage& stage = plan_.stages[static_cast<size_t>(producer)];
    for (const UnaryOpDesc& op : node.ops) stage.post_ops.push_back(op);
    return producer;
  }

  Result<int> BuildGroupBy(const PNode& node) {
    JPAR_RETURN_NOT_OK(CheckEvals(node.keys));
    for (const AggSpec& agg : node.aggs) {
      JPAR_RETURN_NOT_OK(CheckEval(agg.arg));
    }
    JPAR_ASSIGN_OR_RETURN(int producer, Build(*node.input));
    const bool two_step = Executor::GroupByUsesTwoStep(node);
    {
      FragmentStage& prod = plan_.stages[static_cast<size_t>(producer)];
      if (two_step) prod.local_groupby = &node;
      // After local pre-aggregation the key occupies columns
      // [0, nkeys) — exactly the in-process exchange-key choice.
      if (two_step) {
        for (size_t i = 0; i < node.keys.size(); ++i) {
          prod.shuffle_keys.push_back(
              MakeColumnEval(static_cast<int>(i)));
        }
      } else {
        prod.shuffle_keys = node.keys;
      }
      prod.shuffled = true;
    }
    FragmentStage merge;
    merge.id = static_cast<int>(plan_.stages.size());
    merge.core = FragmentStage::Core::kGroupByMerge;
    merge.core_node = &node;
    merge.from_partials = two_step;
    merge.inputs.push_back(producer);
    plan_.stages.push_back(std::move(merge));
    return plan_.stages.back().id;
  }

  Result<int> BuildJoin(const PNode& node) {
    JPAR_RETURN_NOT_OK(CheckEvals(node.left_keys));
    JPAR_RETURN_NOT_OK(CheckEvals(node.right_keys));
    JPAR_RETURN_NOT_OK(CheckEval(node.residual));
    JPAR_ASSIGN_OR_RETURN(int left, Build(*node.left));
    {
      FragmentStage& stage = plan_.stages[static_cast<size_t>(left)];
      stage.shuffle_keys = node.left_keys;
      stage.shuffled = true;
    }
    JPAR_ASSIGN_OR_RETURN(int right, Build(*node.right));
    {
      FragmentStage& stage = plan_.stages[static_cast<size_t>(right)];
      stage.shuffle_keys = node.right_keys;
      stage.shuffled = true;
    }
    FragmentStage join;
    join.id = static_cast<int>(plan_.stages.size());
    join.core = FragmentStage::Core::kJoin;
    join.core_node = &node;
    join.inputs.push_back(left);
    join.inputs.push_back(right);
    plan_.stages.push_back(std::move(join));
    return plan_.stages.back().id;
  }

  StagePlan plan_;
};

}  // namespace

Result<StagePlan> SplitPlanForDistribution(const PhysicalPlan& plan) {
  Builder builder;
  return builder.Split(plan);
}

}  // namespace jpar
