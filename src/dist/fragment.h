#ifndef JPAR_DIST_FRAGMENT_H_
#define JPAR_DIST_FRAGMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "runtime/executor.h"
#include "runtime/operators.h"

namespace jpar {

/// One stage of a distributed plan: the largest unit of work that runs
/// on a worker without crossing an exchange boundary. Node pointers
/// reference the CompiledQuery's plan, which must outlive the split.
struct FragmentStage {
  /// What the stage computes before its post-ops run.
  enum class Core : uint8_t {
    /// The whole plan subtree below the first exchange (scans and
    /// streaming ops); each worker runs it over its slice of the
    /// collection files.
    kLeaf,
    /// The global half of a group-by over one exchanged partition.
    kGroupByMerge,
    /// One partition of a hash join over two exchanged inputs.
    kJoin,
  };

  int id = 0;
  Core core = Core::kLeaf;
  /// kLeaf: the subtree root (a pipeline). kGroupByMerge: the GROUP-BY
  /// node. kJoin: the JOIN node.
  const PNode* core_node = nullptr;
  /// Streaming ops applied to the core's output on the same worker
  /// (e.g. the projection above a group-by).
  std::vector<UnaryOpDesc> post_ops;
  /// Two-step aggregation: the producer-side local pre-aggregation run
  /// after post_ops, before the shuffle (null = none).
  const PNode* local_groupby = nullptr;
  /// kGroupByMerge: inputs are two-step partials (AggStep::kGlobal)
  /// rather than raw tuples (AggStep::kComplete).
  bool from_partials = false;
  /// Producer stage ids feeding this stage's input slots, in slot
  /// order (kGroupByMerge: one; kJoin: left then right).
  std::vector<int> inputs;
  /// How this stage's output is routed to its consumer: hash keys for
  /// a shuffle; empty + shuffled=false for the final gather.
  std::vector<ScalarEvalPtr> shuffle_keys;
  bool shuffled = false;
};

/// A physical plan split at its exchange boundaries into stages in
/// topological (execution) order; the last stage gathers the result.
struct StagePlan {
  std::vector<FragmentStage> stages;
  int result_column = 0;
};

/// Splits `plan` for distributed execution. Deterministic: dispatcher
/// and workers run it on the same recompiled plan and derive identical
/// stage ids. Returns kUnsupported for shapes the distributed runtime
/// cannot run (sorts, EMPTY-TUPLE-SOURCE leaves, index-assisted scans,
/// expressions that read collections directly) — callers fall back to
/// single-process execution.
Result<StagePlan> SplitPlanForDistribution(const PhysicalPlan& plan);

}  // namespace jpar

#endif  // JPAR_DIST_FRAGMENT_H_
