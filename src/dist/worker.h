#ifndef JPAR_DIST_WORKER_H_
#define JPAR_DIST_WORKER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dist/exchange.h"
#include "dist/fragment.h"
#include "dist/protocol.h"
#include "dist/wire.h"

namespace jpar {

/// The worker half of the distributed protocol (DESIGN.md §11): serves
/// one dispatcher connection, holding a catalog replica (kSyncCatalog)
/// and a plan cache, and runs one fragment at a time:
///
///   kRunFragment -> [kInputFrame* kInputEof]×num_inputs ->
///     execute -> kOutputFrame* -> kOutputEof
///
/// While a fragment executes, a control-pump thread keeps draining the
/// connection so kCancel, kPing, and kCredit are honored mid-fragment;
/// output frames wait on a credit window the dispatcher replenishes.
class WorkerServer {
 public:
  WorkerServer() = default;

  /// Serves `sock` until the dispatcher sends kShutdown or closes the
  /// connection (both clean: returns OK). Protocol violations and
  /// socket errors return the failure; the caller drops the connection.
  Status Serve(Socket sock);

 private:
  struct PlanEntry {
    CompiledQuery compiled;
    StagePlan split;
  };

  /// Compile (or fetch the cached compilation of) query+rules and its
  /// stage split. The cache key includes the rule bitmask and the
  /// request's stats_mode: the same query under different rules yields
  /// different plans, and cost annotations follow the session's stats
  /// mode. Worker-local stats may diverge from the dispatcher's — safe
  /// because cost levers never change plan structure (DESIGN.md §15).
  Result<PlanEntry*> GetPlan(const std::string& query,
                             const RuleOptions& rules,
                             const ExecOptions& exec);

  /// One kRunFragment round-trip. Fragment-level failures (bad stage,
  /// execution errors, cancel, deadline) are reported via kOutputEof
  /// and return OK; a non-OK return means the connection is unusable.
  Status HandleFragment(Socket* sock, std::mutex* send_mu,
                        std::string_view payload);

  Result<std::vector<std::vector<Tuple>>> ExecuteStage(
      const FragmentRequest& req, const FragmentStage& stage,
      std::vector<std::vector<Tuple>> inputs, QueryContext* ctx,
      ExecStats* stats) const;

  /// The catalog slice worker `rank` of `count` scans: file i of every
  /// collection goes to rank i % count — exactly the in-process
  /// round-robin file->partition assignment, so the union of all ranks'
  /// single-partition scans equals an in-process partitions=count run.
  Catalog SliceCatalog(int rank, int count) const;

  Engine engine_;
  uint64_t catalog_version_ = 0;
  std::map<std::string, std::unique_ptr<PlanEntry>> plan_cache_;
  bool shutdown_ = false;
  /// Set by the control-pump thread when kShutdown arrives mid-fragment;
  /// folded into shutdown_ after the pump is joined.
  std::atomic<bool> shutdown_requested_{false};
};

}  // namespace jpar

#endif  // JPAR_DIST_WORKER_H_
