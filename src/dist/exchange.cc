#include "dist/exchange.h"

#include <chrono>
#include <utility>

namespace jpar {

void CreditWindow::Reset(uint32_t credits) {
  std::lock_guard<std::mutex> lock(mu_);
  credits_ = credits;
  poison_ = Status::OK();
  cv_.notify_all();
}

Status CreditWindow::Acquire(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  auto ready = [this] { return credits_ > 0 || !poison_.ok(); };
  if (timeout_ms > 0) {
    if (!cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), ready)) {
      return Status::Unavailable(
          "exchange credit starvation: no credit granted within " +
          std::to_string(timeout_ms) + "ms");
    }
  } else {
    cv_.wait(lock, ready);
  }
  if (!poison_.ok()) return poison_;
  --credits_;
  return Status::OK();
}

void CreditWindow::Grant(uint32_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  credits_ += n;
  cv_.notify_all();
}

void CreditWindow::Poison(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (poison_.ok() && !status.ok()) poison_ = std::move(status);
  cv_.notify_all();
}

std::vector<FrameMsg> TuplesToFrames(const std::vector<Tuple>& tuples,
                                     uint32_t channel, size_t frame_bytes) {
  FrameBuilder builder(frame_bytes);
  for (const Tuple& tuple : tuples) builder.Append(tuple);
  std::vector<Frame> frames = builder.Finish();
  std::vector<FrameMsg> out;
  out.reserve(frames.size());
  for (Frame& frame : frames) {
    FrameMsg msg;
    msg.channel = channel;
    msg.tuple_count = frame.tuple_count;
    msg.bytes = std::move(frame.bytes);
    out.push_back(std::move(msg));
  }
  return out;
}

Status AppendFrameTuples(const FrameMsg& frame, std::vector<Tuple>* out) {
  std::vector<Frame> frames(1);
  frames[0].bytes = frame.bytes;
  frames[0].tuple_count = frame.tuple_count;
  FrameReader reader(frames);
  uint32_t decoded = 0;
  while (true) {
    Tuple tuple;
    JPAR_ASSIGN_OR_RETURN(bool have, reader.Next(&tuple));
    if (!have) break;
    out->push_back(std::move(tuple));
    ++decoded;
  }
  if (decoded != frame.tuple_count) {
    return Status::IOError("frame tuple count mismatch: header says " +
                           std::to_string(frame.tuple_count) + ", decoded " +
                           std::to_string(decoded));
  }
  return Status::OK();
}

}  // namespace jpar
