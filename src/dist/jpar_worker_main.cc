// jpar_worker: the distributed worker process (DESIGN.md §11).
//
//   jpar_worker --socket-fd N       serve a dispatcher on inherited fd N
//                                   (how the dispatcher spawns local
//                                   workers over a socketpair)
//   jpar_worker --listen ENDPOINT   accept dispatchers on "host:port" or
//                                   "unix:<path>", one at a time

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "dist/wire.h"
#include "dist/worker.h"

namespace {

int Usage(std::FILE* out) {
  std::fprintf(out,
               "usage: jpar_worker --socket-fd N | --listen ENDPOINT\n"
               "  --socket-fd N     serve the dispatcher on inherited fd N\n"
               "  --listen ENDPOINT accept dispatchers on host:port or "
               "unix:<path>\n");
  return out == stdout ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  int socket_fd = -1;
  std::string listen_endpoint;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--socket-fd" && i + 1 < argc) {
      socket_fd = std::atoi(argv[++i]);
    } else if (arg == "--listen" && i + 1 < argc) {
      listen_endpoint = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage(stdout);
    } else {
      std::fprintf(stderr, "jpar_worker: unknown argument: %s\n", arg.c_str());
      return Usage(stderr);
    }
  }

  if (socket_fd >= 0) {
    jpar::WorkerServer server;
    jpar::Status st = server.Serve(jpar::Socket(socket_fd));
    if (!st.ok()) {
      std::fprintf(stderr, "jpar_worker: %s\n", st.ToString().c_str());
      return 1;
    }
    return 0;
  }

  if (!listen_endpoint.empty()) {
    auto listener = jpar::Socket::ListenOn(listen_endpoint);
    if (!listener.ok()) {
      std::fprintf(stderr, "jpar_worker: %s\n",
                   listener.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "jpar_worker: listening on %s\n",
                 listen_endpoint.c_str());
    while (true) {
      auto conn = listener->Accept();
      if (!conn.ok()) {
        std::fprintf(stderr, "jpar_worker: %s\n",
                     conn.status().ToString().c_str());
        return 1;
      }
      // Fresh server state per dispatcher: a new dispatcher must not
      // see a previous one's catalog or plan cache.
      jpar::WorkerServer server;
      jpar::Status st = server.Serve(*std::move(conn));
      if (!st.ok()) {
        std::fprintf(stderr, "jpar_worker: connection failed: %s\n",
                     st.ToString().c_str());
      }
    }
  }

  return Usage(stderr);
}
