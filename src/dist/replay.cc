#include "dist/replay.h"

#include <utility>

namespace jpar {

namespace {

uint64_t FrameCost(const FrameMsg& frame) {
  // Payload plus a small fixed overhead for the header fields and
  // vector bookkeeping; exactness does not matter, boundedness does.
  return frame.bytes.size() + 32;
}

}  // namespace

Result<bool> ReplaySpool::Cursor::Next(FrameMsg* frame) {
  if (mem_ != nullptr) {
    if (pos_ >= mem_->size()) return false;
    *frame = (*mem_)[pos_++];
    return true;
  }
  if (run_ != nullptr) {
    std::string record;
    JPAR_ASSIGN_OR_RETURN(bool have, run_->Next(&record));
    if (!have) return false;
    JPAR_ASSIGN_OR_RETURN(*frame, DecodeFrameMsg(record));
    return true;
  }
  return false;  // empty channel
}

Status ReplaySpool::EnsureSpillManagerLocked() {
  if (spill_ != nullptr) return Status::OK();
  // No QueryContext: the replay buffer is dispatcher infrastructure,
  // not query execution — the spill.io_error fault point must not turn
  // recovery bookkeeping itself into an injected failure.
  JPAR_ASSIGN_OR_RETURN(spill_, SpillManager::Create(dir_hint_, nullptr));
  return Status::OK();
}

Status ReplaySpool::StoreStage(
    int stage_id, int sources, int fanout,
    std::vector<std::vector<std::vector<FrameMsg>>> out) {
  uint64_t bytes = 0;
  for (const auto& per_src : out) {
    for (const auto& bucket : per_src) {
      for (const FrameMsg& frame : bucket) bytes += FrameCost(frame);
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  Stage stage;
  stage.sources = sources;
  stage.fanout = fanout;
  stage.channels.resize(static_cast<size_t>(sources) *
                        static_cast<size_t>(fanout));
  const bool in_memory = mem_bytes_ + bytes <= budget_;
  for (int src = 0; src < sources; ++src) {
    for (int bucket = 0; bucket < fanout; ++bucket) {
      std::vector<FrameMsg>& frames =
          out[static_cast<size_t>(src)][static_cast<size_t>(bucket)];
      Channel& channel =
          stage.channels[static_cast<size_t>(src * fanout + bucket)];
      if (in_memory) {
        channel.mem = std::move(frames);
        continue;
      }
      if (frames.empty()) continue;  // no run file for empty channels
      JPAR_RETURN_NOT_OK(EnsureSpillManagerLocked());
      JPAR_ASSIGN_OR_RETURN(auto writer, spill_->NewRun());
      for (const FrameMsg& frame : frames) {
        JPAR_RETURN_NOT_OK(writer->Append(EncodeFrameMsg(frame)));
      }
      JPAR_RETURN_NOT_OK(writer->Finish());
      channel.run_path = writer->path();
    }
  }
  if (in_memory) {
    stage.mem_bytes = bytes;
    mem_bytes_ += bytes;
  }
  stages_[stage_id] = std::move(stage);
  return Status::OK();
}

Result<ReplaySpool::Cursor> ReplaySpool::Open(int stage_id, int src,
                                              int bucket) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stages_.find(stage_id);
  if (it == stages_.end()) {
    return Status::Internal("replay spool has no stage " +
                            std::to_string(stage_id));
  }
  Stage& stage = it->second;
  if (src < 0 || src >= stage.sources || bucket < 0 ||
      bucket >= stage.fanout) {
    return Status::Internal("replay channel out of range: stage " +
                            std::to_string(stage_id) + " src " +
                            std::to_string(src) + " bucket " +
                            std::to_string(bucket));
  }
  Channel& channel =
      stage.channels[static_cast<size_t>(src * stage.fanout + bucket)];
  Cursor cursor;
  if (!channel.run_path.empty()) {
    JPAR_ASSIGN_OR_RETURN(cursor.run_, spill_->OpenRun(channel.run_path));
  } else if (!channel.mem.empty()) {
    cursor.mem_ = &channel.mem;
  }
  return cursor;
}

void ReplaySpool::Free(int stage_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stages_.find(stage_id);
  if (it == stages_.end()) return;
  mem_bytes_ -= it->second.mem_bytes;
  for (Channel& channel : it->second.channels) {
    if (!channel.run_path.empty()) spill_->Remove(channel.run_path);
  }
  stages_.erase(it);
}

uint64_t ReplaySpool::spill_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spill_ != nullptr ? spill_->bytes_written() : 0;
}

}  // namespace jpar
