#ifndef JPAR_DIST_PROTOCOL_H_
#define JPAR_DIST_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "algebra/rewriter.h"
#include "common/result.h"
#include "runtime/catalog.h"
#include "runtime/executor.h"
#include "runtime/frame.h"
#include "runtime/stats.h"

namespace jpar {

/// Message types of the dispatcher <-> worker protocol (DESIGN.md §11).
/// Control and data share one ordered connection per worker; credits
/// bound the data frames in flight so control messages (cancel, ping)
/// are never starved behind an unbounded data backlog.
enum class MsgType : uint8_t {
  kHello = 1,        // worker -> dispatcher: version, pid
  kHelloAck = 2,     // dispatcher -> worker: version accepted
  kSyncCatalog = 3,  // dispatcher -> worker: full catalog snapshot
  kSyncAck = 4,      // worker -> dispatcher: synced to version
  kRunFragment = 5,  // dispatcher -> worker: run one plan fragment
  kInputFrame = 6,   // dispatcher -> worker: tuples for an input slot
  kInputEof = 7,     // dispatcher -> worker: input slot complete
  kOutputFrame = 8,  // worker -> dispatcher: tuples for an output bucket
  kOutputEof = 9,    // worker -> dispatcher: fragment done (status+stats)
  kCredit = 10,      // either direction: replenish the send window
  kCancel = 11,      // dispatcher -> worker: abort current fragment
  kPing = 12,        // dispatcher -> worker: liveness probe
  kPong = 13,        // worker -> dispatcher: liveness answer
  kShutdown = 14,    // dispatcher -> worker: exit cleanly
};

inline constexpr uint32_t kProtocolVersion = 1;

/// Bounds-checked little decoder for protocol payloads. Every read
/// fails with kIOError on truncation — corrupt input is rejected, never
/// trusted.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view data) : data_(data) {}

  Result<uint64_t> Varint();
  Result<int64_t> VarintSigned();  // zigzag
  Result<uint8_t> Byte();
  Result<double> Double();                 // 8 bytes LE bit pattern
  Result<std::string_view> Bytes();        // varint length + bytes
  Result<std::string> String() {
    JPAR_ASSIGN_OR_RETURN(std::string_view v, Bytes());
    return std::string(v);
  }
  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Encoding counterparts (append to *out).
void PutVarint(uint64_t v, std::string* out);
void PutVarintSigned(int64_t v, std::string* out);
void PutDouble(double v, std::string* out);
void PutBytes(std::string_view v, std::string* out);

// ---------------------------------------------------------------------
// Typed payloads

struct HelloMsg {
  uint32_t version = kProtocolVersion;
  int64_t pid = 0;
};
std::string EncodeHello(const HelloMsg& msg);
Result<HelloMsg> DecodeHello(std::string_view payload);

/// One plan fragment assignment. Plans hold compiled expression trees
/// that do not serialize; instead the dispatcher ships the query text
/// plus the exact compile configuration, and the worker recompiles —
/// deterministic in the same binary, so both sides derive the identical
/// stage split (workers cache compilations keyed on query+rules).
struct FragmentRequest {
  std::string query;
  RuleOptions rules;
  ExecOptions exec;
  int stage_id = 0;      // which stage of the split this worker runs
  int worker_id = 0;     // this worker's rank
  int worker_count = 1;  // cluster width W
  int fanout = 0;        // output buckets; 0 = gather (single bucket)
  int num_inputs = 0;    // input slots to expect before running
  double deadline_remaining_ms = 0;  // 0 = no deadline
  uint32_t credit_window = 64;       // initial send credits per direction
};
std::string EncodeFragmentRequest(const FragmentRequest& req);
Result<FragmentRequest> DecodeFragmentRequest(std::string_view payload);

/// A data frame bound to an input slot (dispatcher -> worker) or an
/// output bucket (worker -> dispatcher). `bytes` is the frame.h tuple
/// encoding, reused verbatim on the wire.
struct FrameMsg {
  uint32_t channel = 0;  // input slot or output bucket
  uint32_t tuple_count = 0;
  std::string bytes;
};
std::string EncodeFrameMsg(const FrameMsg& msg);
Result<FrameMsg> DecodeFrameMsg(std::string_view payload);

/// Fragment completion: the worker's final status plus its ExecStats,
/// merged dispatcher-side into the query's aggregate stats.
struct OutputEofMsg {
  StatusCode code = StatusCode::kOk;
  std::string message;
  ExecStats stats;
};
std::string EncodeOutputEof(const OutputEofMsg& msg);
Result<OutputEofMsg> DecodeOutputEof(std::string_view payload);

/// Cancel (dispatcher -> worker): the reason the fragment must stop.
struct CancelMsg {
  StatusCode code = StatusCode::kCancelled;
  std::string message;
};
std::string EncodeCancel(const CancelMsg& msg);
Result<CancelMsg> DecodeCancel(std::string_view payload);

std::string EncodeCredit(uint32_t frames);
Result<uint32_t> DecodeCredit(std::string_view payload);

/// Rebuilds a Status from a wire (code, message) pair — the inverse of
/// shipping status.code()/message() in OutputEof and Cancel payloads.
Status StatusFromCode(StatusCode code, std::string message);

/// Catalog snapshot. In-memory text/binary files ship their bytes;
/// path-backed files ship the path (workers must see the same
/// filesystem — the local-cluster deployment this PR targets).
std::string EncodeCatalogSync(const Catalog& catalog);
Status DecodeCatalogSyncInto(std::string_view payload, Catalog* catalog,
                             uint64_t* version);
std::string EncodeSyncAck(uint64_t version);
Result<uint64_t> DecodeSyncAck(std::string_view payload);

/// ExecOptions / RuleOptions / ExecStats serde used inside the typed
/// payloads (exposed for the wire tests).
void EncodeExecOptions(const ExecOptions& exec, std::string* out);
Status DecodeExecOptions(PayloadReader* reader, ExecOptions* out);
void EncodeRuleOptions(const RuleOptions& rules, std::string* out);
Status DecodeRuleOptions(PayloadReader* reader, RuleOptions* out);
void EncodeExecStats(const ExecStats& stats, std::string* out);
Status DecodeExecStats(PayloadReader* reader, ExecStats* out);

}  // namespace jpar

#endif  // JPAR_DIST_PROTOCOL_H_
