#include "dist/worker.h"

#include <unistd.h>

#include <atomic>
#include <thread>
#include <utility>

namespace jpar {

namespace {

Status SendLocked(Socket* sock, std::mutex* mu, MsgType type,
                  std::string_view payload) {
  std::lock_guard<std::mutex> lock(*mu);
  return WriteMessage(sock, static_cast<uint8_t>(type), payload);
}

}  // namespace

Status WorkerServer::Serve(Socket sock) {
  std::mutex send_mu;
  HelloMsg hello;
  hello.pid = static_cast<int64_t>(::getpid());
  JPAR_RETURN_NOT_OK(
      SendLocked(&sock, &send_mu, MsgType::kHello, EncodeHello(hello)));
  while (!shutdown_) {
    WireMessage msg;
    JPAR_ASSIGN_OR_RETURN(bool have, ReadMessage(&sock, &msg));
    if (!have) return Status::OK();  // dispatcher closed: clean exit
    switch (static_cast<MsgType>(msg.type)) {
      case MsgType::kHelloAck:
        break;
      case MsgType::kSyncCatalog: {
        uint64_t version = 0;
        JPAR_RETURN_NOT_OK(
            DecodeCatalogSyncInto(msg.payload, engine_.catalog(), &version));
        catalog_version_ = version;
        // Collections may have appeared or changed; cached compilations
        // (and their existence checks) are stale.
        plan_cache_.clear();
        JPAR_RETURN_NOT_OK(SendLocked(&sock, &send_mu, MsgType::kSyncAck,
                                      EncodeSyncAck(version)));
        break;
      }
      case MsgType::kRunFragment:
        JPAR_RETURN_NOT_OK(HandleFragment(&sock, &send_mu, msg.payload));
        break;
      case MsgType::kPing:
        JPAR_RETURN_NOT_OK(SendLocked(&sock, &send_mu, MsgType::kPong, ""));
        break;
      case MsgType::kShutdown:
        shutdown_ = true;
        break;
      case MsgType::kCancel:
      case MsgType::kCredit:
      case MsgType::kInputFrame:
      case MsgType::kInputEof:
        break;  // stale leftovers of a fragment that already reported EOF
      default:
        return Status::IOError("worker: unexpected message type " +
                               std::to_string(msg.type));
    }
  }
  return Status::OK();
}

Result<WorkerServer::PlanEntry*> WorkerServer::GetPlan(
    const std::string& query, const RuleOptions& rules,
    const ExecOptions& exec) {
  std::string key;
  EncodeRuleOptions(rules, &key);
  key.push_back(static_cast<char>('0' + static_cast<int>(exec.stats_mode)));
  key.push_back('\0');
  key += query;
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) return it->second.get();
  auto entry = std::make_unique<PlanEntry>();
  JPAR_ASSIGN_OR_RETURN(entry->compiled, engine_.Compile(query, rules, exec));
  JPAR_ASSIGN_OR_RETURN(entry->split,
                        SplitPlanForDistribution(entry->compiled.physical));
  PlanEntry* raw = entry.get();
  plan_cache_.emplace(std::move(key), std::move(entry));
  return raw;
}

Catalog WorkerServer::SliceCatalog(int rank, int count) const {
  Catalog sliced;
  for (const auto& [name, coll] : engine_.catalog()->collections()) {
    Collection part;
    for (size_t i = 0; i < coll.files.size(); ++i) {
      if (static_cast<int>(i % static_cast<size_t>(count)) == rank) {
        part.files.push_back(coll.files[i]);
      }
    }
    sliced.RegisterCollection(name, std::move(part));
  }
  for (const auto& [name, file] : engine_.catalog()->documents()) {
    sliced.RegisterDocument(name, file);
  }
  return sliced;
}

Result<std::vector<std::vector<Tuple>>> WorkerServer::ExecuteStage(
    const FragmentRequest& req, const FragmentStage& stage,
    std::vector<std::vector<Tuple>> inputs, QueryContext* ctx,
    ExecStats* stats) const {
  ExecOptions exec = req.exec;
  // This process is exactly one partition of the distributed plan; the
  // deadline already arrived as ctx's absolute deadline.
  exec.partitions = 1;
  exec.use_threads = false;
  exec.deadline_ms = 0;

  Catalog sliced;
  const Catalog* catalog = engine_.catalog();
  if (stage.core == FragmentStage::Core::kLeaf) {
    sliced = SliceCatalog(req.worker_id, req.worker_count);
    catalog = &sliced;
  }
  Executor executor(catalog, exec, ctx);

  std::vector<Tuple> tuples;
  if (stage.core == FragmentStage::Core::kLeaf) {
    JPAR_ASSIGN_OR_RETURN(tuples,
                          executor.RunSubtree(*stage.core_node, stats));
  } else if (stage.core == FragmentStage::Core::kGroupByMerge) {
    if (inputs.size() != 1) {
      return Status::Internal("group-by merge fragment expects 1 input, "
                              "got " + std::to_string(inputs.size()));
    }
    JPAR_ASSIGN_OR_RETURN(
        tuples, executor.GroupByGlobal(*stage.core_node, inputs[0],
                                       stage.from_partials, stats));
  } else {
    if (inputs.size() != 2) {
      return Status::Internal("join fragment expects 2 inputs, got " +
                              std::to_string(inputs.size()));
    }
    JPAR_ASSIGN_OR_RETURN(
        tuples, executor.JoinPartition(*stage.core_node, inputs[0],
                                       inputs[1], stats));
  }
  if (!stage.post_ops.empty()) {
    JPAR_ASSIGN_OR_RETURN(
        tuples, executor.RunOps(stage.post_ops, std::move(tuples), stats));
  }
  if (stage.local_groupby != nullptr) {
    JPAR_ASSIGN_OR_RETURN(
        tuples, executor.GroupByLocal(*stage.local_groupby, tuples, stats));
  }
  if (stage.shuffled) {
    if (req.fanout <= 0) {
      return Status::IOError("shuffled fragment needs a positive fanout, "
                             "got " + std::to_string(req.fanout));
    }
    return executor.HashPartition(tuples, stage.shuffle_keys, req.fanout);
  }
  std::vector<std::vector<Tuple>> gather(1);
  gather[0] = std::move(tuples);
  return gather;
}

Status WorkerServer::HandleFragment(Socket* sock, std::mutex* send_mu,
                                    std::string_view payload) {
  Result<FragmentRequest> req_r = DecodeFragmentRequest(payload);
  if (!req_r.ok()) return req_r.status();
  FragmentRequest req = *std::move(req_r);

  auto cancel = std::make_shared<CancellationToken>();
  QueryContext ctx;
  ctx.set_cancellation(cancel);
  if (req.deadline_remaining_ms > 0) {
    ctx.set_deadline_after_ms(req.deadline_remaining_ms);
  }

  OutputEofMsg eof;
  Status frag = Status::OK();

  PlanEntry* plan = nullptr;
  {
    Result<PlanEntry*> p = GetPlan(req.query, req.rules, req.exec);
    if (!p.ok()) {
      frag = p.status();
    } else {
      plan = *p;
      if (req.stage_id < 0 ||
          static_cast<size_t>(req.stage_id) >= plan->split.stages.size()) {
        frag = Status::InvalidArgument(
            "fragment stage " + std::to_string(req.stage_id) +
            " out of range (plan has " +
            std::to_string(plan->split.stages.size()) + " stages)");
      }
    }
  }

  // -- Phase 1: collect exchanged inputs (control handled inline) ------
  std::vector<std::vector<Tuple>> inputs(
      static_cast<size_t>(req.num_inputs > 0 ? req.num_inputs : 0));
  CreditWindow out_window;
  out_window.Reset(req.credit_window);
  int eofs_seen = 0;
  while (frag.ok() && eofs_seen < req.num_inputs) {
    frag = ctx.Check("exchange (worker input)");
    if (!frag.ok()) break;
    WireMessage msg;
    JPAR_ASSIGN_OR_RETURN(bool have, ReadMessage(sock, &msg));
    if (!have) return Status::IOError("worker: dispatcher closed mid-fragment");
    switch (static_cast<MsgType>(msg.type)) {
      case MsgType::kInputFrame: {
        JPAR_ASSIGN_OR_RETURN(FrameMsg frame, DecodeFrameMsg(msg.payload));
        if (frame.channel >= inputs.size()) {
          return Status::IOError("worker: input frame for unknown slot " +
                                 std::to_string(frame.channel));
        }
        JPAR_RETURN_NOT_OK(AppendFrameTuples(frame, &inputs[frame.channel]));
        JPAR_RETURN_NOT_OK(
            SendLocked(sock, send_mu, MsgType::kCredit, EncodeCredit(1)));
        break;
      }
      case MsgType::kInputEof:
        ++eofs_seen;
        break;
      case MsgType::kCancel: {
        Result<CancelMsg> c = DecodeCancel(msg.payload);
        frag = c.ok() ? StatusFromCode(c->code, std::move(c->message))
                      : Status::Cancelled("fragment cancelled");
        break;
      }
      case MsgType::kPing:
        JPAR_RETURN_NOT_OK(SendLocked(sock, send_mu, MsgType::kPong, ""));
        break;
      case MsgType::kCredit: {
        JPAR_ASSIGN_OR_RETURN(uint32_t n, DecodeCredit(msg.payload));
        out_window.Grant(n);
        break;
      }
      case MsgType::kShutdown:
        shutdown_ = true;
        frag = Status::Cancelled("worker shutting down");
        break;
      default:
        return Status::IOError(
            "worker: unexpected message type " + std::to_string(msg.type) +
            " during fragment input");
    }
  }

  // -- Phase 2: execute under a control pump, then stream output -------
  if (frag.ok()) {
    std::atomic<bool> pump_stop{false};
    std::atomic<bool> conn_dead{false};
    std::mutex pump_mu;
    Status conn_status;    // guarded by pump_mu, valid once conn_dead
    Status cancel_status;  // guarded by pump_mu, from a kCancel message
    std::thread pump([&] {
      while (!pump_stop.load(std::memory_order_relaxed)) {
        Status fail;
        Result<bool> readable = sock->WaitReadable(50);
        if (!readable.ok()) {
          fail = readable.status();
        } else if (!*readable) {
          continue;
        } else {
          WireMessage msg;
          Result<bool> have = ReadMessage(sock, &msg);
          if (!have.ok()) {
            fail = have.status();
          } else if (!*have) {
            fail = Status::IOError("worker: dispatcher closed mid-fragment");
          } else {
            switch (static_cast<MsgType>(msg.type)) {
              case MsgType::kCredit: {
                Result<uint32_t> n = DecodeCredit(msg.payload);
                if (n.ok()) {
                  out_window.Grant(*n);
                } else {
                  fail = n.status();
                }
                break;
              }
              case MsgType::kCancel: {
                Result<CancelMsg> c = DecodeCancel(msg.payload);
                Status st = c.ok()
                                ? StatusFromCode(c->code,
                                                 std::move(c->message))
                                : Status::Cancelled("fragment cancelled");
                {
                  std::lock_guard<std::mutex> lock(pump_mu);
                  cancel_status = st;
                }
                cancel->Cancel();
                out_window.Poison(st);
                break;
              }
              case MsgType::kPing: {
                Status st = SendLocked(sock, send_mu, MsgType::kPong, "");
                if (!st.ok()) fail = st;
                break;
              }
              case MsgType::kShutdown: {
                Status st = Status::Cancelled("worker shutting down");
                {
                  std::lock_guard<std::mutex> lock(pump_mu);
                  cancel_status = st;
                }
                shutdown_requested_.store(true);
                cancel->Cancel();
                out_window.Poison(st);
                break;
              }
              default:
                break;  // stale traffic for a previous fragment
            }
          }
        }
        if (!fail.ok()) {
          {
            std::lock_guard<std::mutex> lock(pump_mu);
            conn_status = fail;
          }
          conn_dead.store(true);
          cancel->Cancel();
          out_window.Poison(fail);
          return;
        }
      }
    });

    std::vector<std::vector<Tuple>> buckets;
    {
      const FragmentStage& stage =
          plan->split.stages[static_cast<size_t>(req.stage_id)];
      Result<std::vector<std::vector<Tuple>>> r =
          ExecuteStage(req, stage, std::move(inputs), &ctx, &eof.stats);
      if (r.ok()) {
        buckets = *std::move(r);
      } else {
        frag = r.status();
      }
    }

    for (uint32_t b = 0; frag.ok() && b < buckets.size(); ++b) {
      std::vector<FrameMsg> frames =
          TuplesToFrames(buckets[b], b, req.exec.frame_bytes);
      for (FrameMsg& frame : frames) {
        while (true) {
          Status st = out_window.Acquire(100);
          if (st.ok()) break;
          if (cancel->cancelled() || conn_dead.load() ||
              st.code() != StatusCode::kUnavailable) {
            frag = st;  // poisoned window or terminal starvation
            break;
          }
          Status check = ctx.Check("exchange (worker output)");
          if (!check.ok()) {
            frag = check;
            break;
          }
        }
        if (!frag.ok()) break;
        frag = SendLocked(sock, send_mu, MsgType::kOutputFrame,
                          EncodeFrameMsg(frame));
        if (!frag.ok()) break;
      }
    }

    pump_stop.store(true);
    pump.join();
    if (shutdown_requested_.load()) shutdown_ = true;
    if (conn_dead.load()) {
      std::lock_guard<std::mutex> lock(pump_mu);
      return conn_status;
    }
    // Execution surfaces a pump-delivered cancel as generic kCancelled;
    // report the dispatcher's original reason (e.g. kDeadlineExceeded).
    if (!frag.ok() && frag.code() == StatusCode::kCancelled) {
      std::lock_guard<std::mutex> lock(pump_mu);
      if (!cancel_status.ok()) frag = cancel_status;
    }
  }

  eof.code = frag.code();
  eof.message = std::string(frag.message());
  return SendLocked(sock, send_mu, MsgType::kOutputEof, EncodeOutputEof(eof));
}

}  // namespace jpar
