#include "dist/dispatcher.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <utility>

namespace jpar {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double RemainingMs(const QueryContext* ctx) {
  if (ctx == nullptr || !ctx->has_deadline()) return 0;
  return std::chrono::duration<double, std::milli>(
             ctx->deadline() - std::chrono::steady_clock::now())
      .count();
}

// Serialized send on one worker connection (reader and sender threads
// both write: credits/pings vs. fragments/frames).
Status SendTo(std::mutex* mu, Socket* sock, MsgType type,
              std::string_view payload) {
  std::lock_guard<std::mutex> lock(*mu);
  return WriteMessage(sock, static_cast<uint8_t>(type), payload);
}

}  // namespace

Status ValidateDistOptions(const DistOptions& options) {
  if (options.credit_window < 1) {
    return Status::InvalidArgument("DistOptions::credit_window must be >= 1");
  }
  if (options.heartbeat_ms <= 0) {
    return Status::InvalidArgument("DistOptions::heartbeat_ms must be > 0");
  }
  if (options.worker_timeout_ms <= 0) {
    return Status::InvalidArgument(
        "DistOptions::worker_timeout_ms must be > 0");
  }
  if (options.drain_timeout_ms <= 0) {
    return Status::InvalidArgument("DistOptions::drain_timeout_ms must be > 0");
  }
  if (options.max_fragment_retries < 0) {
    return Status::InvalidArgument(
        "DistOptions::max_fragment_retries must be >= 0");
  }
  if (options.retry_backoff_ms <= 0) {
    return Status::InvalidArgument(
        "DistOptions::retry_backoff_ms must be > 0");
  }
  return Status::OK();
}

Cluster::~Cluster() { Stop(); }

bool Cluster::CanDistribute(const PhysicalPlan& plan) {
  return SplitPlanForDistribution(plan).ok();
}

Status Cluster::Start() {
  std::lock_guard<std::mutex> qlock(query_mu_);
  return EnsureWorkers();
}

void Cluster::Stop() {
  std::lock_guard<std::mutex> qlock(query_mu_);
  if (stopped_) return;
  stopped_ = true;
  for (auto& w : workers_) {
    bool alive;
    {
      std::lock_guard<std::mutex> lock(mu_);
      alive = w->alive;
    }
    if (alive) {
      (void)SendTo(&w->send_mu, &w->sock, MsgType::kShutdown, "");
    }
  }
  for (auto& w : workers_) {
    w->sock.ShutdownBoth();
    if (w->reader.joinable()) w->reader.join();
  }
  for (auto& w : workers_) {
    if (w->local) ReapLocal(w.get(), /*graceful=*/true);
    w->sock.Close();
  }
  workers_.clear();
}

Status Cluster::EnsureWorkers() {
  if (stopped_) return Status::Internal("cluster already stopped");
  JPAR_RETURN_NOT_OK(ValidateDistOptions(options_));
  const int total = worker_count();
  if (total <= 0) {
    return Status::InvalidArgument(
        "distributed execution needs local_workers > 0 or endpoints");
  }
  if (workers_.empty()) {
    workers_.reserve(static_cast<size_t>(total));
    for (int rank = 0; rank < total; ++rank) {
      auto w = std::make_unique<Worker>();
      w->rank = rank;
      w->local = rank < options_.local_workers;
      if (!w->local) {
        w->endpoint = options_.endpoints[static_cast<size_t>(
            rank - options_.local_workers)];
      }
      workers_.push_back(std::move(w));
    }
  }
  for (auto& w : workers_) {
    bool alive;
    {
      std::lock_guard<std::mutex> lock(mu_);
      alive = w->alive;
    }
    if (alive) continue;
    // Tear down the previous incarnation, then respawn/reconnect.
    w->sock.ShutdownBoth();
    if (w->reader.joinable()) w->reader.join();
    if (w->local) ReapLocal(w.get(), /*graceful=*/false);
    w->sock.Close();
    {
      std::lock_guard<std::mutex> lock(mu_);
      w->hello_seen = false;
      w->sync_acked = false;
      w->synced_version = 0;
      w->death = Status::OK();
    }
    JPAR_RETURN_NOT_OK(w->local ? SpawnLocal(w.get()) : AttachRemote(w.get()));
    {
      std::lock_guard<std::mutex> lock(mu_);
      w->alive = true;
    }
    w->last_heard_ms.store(NowMs());
    w->reader = std::thread(&Cluster::ReaderLoop, this, w.get());
    JPAR_RETURN_NOT_OK(AwaitHello(w.get()));
    JPAR_RETURN_NOT_OK(SendTo(&w->send_mu, &w->sock, MsgType::kHelloAck, ""));
  }
  started_ = true;
  return Status::OK();
}

Status Cluster::SpawnLocal(Worker* worker) {
  std::string binary = options_.worker_binary;
  if (binary.empty()) {
    const char* env = std::getenv("JPAR_WORKER_BIN");
    if (env != nullptr) binary = env;
  }
  if (binary.empty()) {
    return Status::InvalidArgument(
        "cannot spawn local worker: set DistOptions::worker_binary or "
        "JPAR_WORKER_BIN");
  }
  JPAR_ASSIGN_OR_RETURN(auto pair, Socket::Pair());
  // Close-on-exec on both ends so future forks don't leak this
  // connection into sibling workers (a leaked fd would keep the
  // connection half-open after the dispatcher closes it).
  ::fcntl(pair.first.fd(), F_SETFD, FD_CLOEXEC);
  ::fcntl(pair.second.fd(), F_SETFD, FD_CLOEXEC);
  pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IOError("fork failed for local worker");
  }
  if (pid == 0) {
    // Child: expose its socketpair end as fd 3 and exec the worker.
    // Only async-signal-safe calls between fork and exec.
    int fd = pair.second.fd();
    if (fd == 3) {
      ::fcntl(3, F_SETFD, 0);  // clear CLOEXEC so it survives exec
    } else {
      ::dup2(fd, 3);  // the duplicate is not close-on-exec
    }
    ::execl(binary.c_str(), "jpar_worker", "--socket-fd", "3",
            static_cast<char*>(nullptr));
    ::_exit(127);
  }
  worker->pid = pid;
  worker->sock = std::move(pair.first);
  return Status::OK();
}

Status Cluster::AttachRemote(Worker* worker) {
  JPAR_ASSIGN_OR_RETURN(worker->sock, Socket::Connect(worker->endpoint));
  ::fcntl(worker->sock.fd(), F_SETFD, FD_CLOEXEC);
  return Status::OK();
}

Status Cluster::AwaitHello(Worker* worker) {
  std::unique_lock<std::mutex> lock(mu_);
  bool ok = cv_.wait_for(
      lock, std::chrono::milliseconds(options_.worker_timeout_ms),
      [&] { return worker->hello_seen || !worker->alive; });
  if (!ok || !worker->alive) {
    Status death = worker->death;
    lock.unlock();
    return Status::WorkerLost(
        "worker " + std::to_string(worker->rank) + " did not say hello" +
        (death.ok() ? "" : ": " + death.ToString()));
  }
  return Status::OK();
}

void Cluster::ReapLocal(Worker* worker, bool graceful) {
  if (worker->pid <= 0) return;
  int status = 0;
  if (graceful) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(options_.drain_timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      pid_t r = ::waitpid(worker->pid, &status, WNOHANG);
      if (r != 0) {
        worker->pid = -1;
        return;
      }
      ::usleep(10 * 1000);
    }
  } else {
    pid_t r = ::waitpid(worker->pid, &status, WNOHANG);
    if (r != 0) {
      worker->pid = -1;
      return;
    }
  }
  ::kill(worker->pid, SIGKILL);
  ::waitpid(worker->pid, &status, 0);
  worker->pid = -1;
}

void Cluster::DropWorker(Worker* worker, const Status& why) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (worker->death.ok()) worker->death = why;
  }
  worker->sock.ShutdownBoth();  // the reader exits and finalizes state
}

void Cluster::ReaderLoop(Worker* worker) {
  Status death = Status::OK();
  while (true) {
    WireMessage msg;
    Result<bool> have = ReadMessage(&worker->sock, &msg);
    if (!have.ok()) {
      death = have.status();
      break;
    }
    if (!*have) {
      death = Status::IOError("worker closed the connection");
      break;
    }
    worker->last_heard_ms.store(NowMs());
    bool keep = true;
    switch (static_cast<MsgType>(msg.type)) {
      case MsgType::kHello: {
        Result<HelloMsg> hello = DecodeHello(msg.payload);
        if (!hello.ok()) {
          death = hello.status();
          keep = false;
          break;
        }
        std::lock_guard<std::mutex> lock(mu_);
        worker->hello_seen = true;
        if (!worker->local) worker->pid = static_cast<pid_t>(hello->pid);
        cv_.notify_all();
        break;
      }
      case MsgType::kSyncAck: {
        Result<uint64_t> version = DecodeSyncAck(msg.payload);
        if (!version.ok()) {
          death = version.status();
          keep = false;
          break;
        }
        std::lock_guard<std::mutex> lock(mu_);
        worker->synced_version = *version;
        worker->sync_acked = true;
        cv_.notify_all();
        break;
      }
      case MsgType::kCredit: {
        Result<uint32_t> n = DecodeCredit(msg.payload);
        if (!n.ok()) {
          death = n.status();
          keep = false;
          break;
        }
        worker->send_window.Grant(*n);
        break;
      }
      case MsgType::kOutputFrame: {
        Result<FrameMsg> frame = DecodeFrameMsg(msg.payload);
        if (!frame.ok()) {
          death = frame.status();
          keep = false;
          break;
        }
        OnOutputFrame(worker, *std::move(frame));
        // A poisoned frame path records the reason as worker->death.
        {
          std::lock_guard<std::mutex> lock(mu_);
          keep = worker->death.ok();
        }
        break;
      }
      case MsgType::kOutputEof: {
        Result<OutputEofMsg> eof = DecodeOutputEof(msg.payload);
        if (!eof.ok()) {
          death = eof.status();
          keep = false;
          break;
        }
        OnOutputEof(worker, *std::move(eof));
        break;
      }
      case MsgType::kPong:
        break;  // last_heard_ms already refreshed
      default:
        break;  // tolerate unknown/stale messages from workers
    }
    if (!keep) break;
  }
  // Finalize: the worker is gone for this cluster's purposes.
  {
    std::lock_guard<std::mutex> lock(mu_);
    worker->alive = false;
    if (worker->death.ok()) worker->death = death;
    if (round_.active && !round_.done[static_cast<size_t>(worker->rank)]) {
      Status lost = Status::WorkerLost(
          "worker " + std::to_string(worker->rank) + " lost mid-fragment: " +
          worker->death.ToString());
      round_.done[static_cast<size_t>(worker->rank)] = true;
      round_.status[static_cast<size_t>(worker->rank)] = lost;
      // A retry-eligible loss does not fail the round: healthy ranks
      // run to completion and only this rank is re-dispatched.
      if (!round_.retry_worker_lost && round_.failure.ok()) {
        round_.failure = lost;
      }
      ++round_.done_count;
    }
    // Under mu_ for the same reason as in OnOutputEof: the poison must
    // not be reorderable after a later round's Reset.
    worker->send_window.Poison(Status::WorkerLost(
        "worker " + std::to_string(worker->rank) + " connection lost"));
    cv_.notify_all();
  }
}

void Cluster::OnOutputFrame(Worker* worker, FrameMsg frame) {
  QueryContext* ctx = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!round_.active || round_.done[static_cast<size_t>(worker->rank)]) {
      return;  // stale frame from an aborted fragment
    }
    ctx = round_.ctx;
  }
  if (ctx != nullptr) {
    Status fault = ctx->Fault(FaultInjector::kExchangeFrameDrop);
    if (!fault.ok()) {
      // A dropped exchange frame is unrecoverable at this protocol
      // layer: the stream is now incomplete, so the worker's whole
      // contribution is declared lost (the reader tears the
      // connection down and reports kWorkerLost).
      std::lock_guard<std::mutex> lock(mu_);
      if (worker->death.ok()) {
        worker->death = Status::WorkerLost(
            "exchange frame dropped (fault injection): " +
            std::string(fault.message()));
      }
      return;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!round_.active || round_.done[static_cast<size_t>(worker->rank)]) {
      return;
    }
    if (frame.channel >= static_cast<uint32_t>(round_.fanout)) {
      if (worker->death.ok()) {
        worker->death = Status::IOError(
            "worker sent frame for bucket " + std::to_string(frame.channel) +
            " but the round fanout is " + std::to_string(round_.fanout));
      }
      return;
    }
    round_.frames += 1;
    round_.bytes += frame.bytes.size();
    round_.out[static_cast<size_t>(worker->rank)][frame.channel].push_back(
        std::move(frame));
  }
  // Replenish the worker's output window for the ingested frame.
  (void)SendTo(&worker->send_mu, &worker->sock, MsgType::kCredit,
               EncodeCredit(1));
}

void Cluster::OnOutputEof(Worker* worker, OutputEofMsg eof) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t rank = static_cast<size_t>(worker->rank);
    if (!round_.active || round_.done[rank]) return;
    round_.done[rank] = true;
    round_.status[rank] = StatusFromCode(eof.code, std::move(eof.message));
    round_.stats[rank] = std::move(eof.stats);
    if (!round_.status[rank].ok() && round_.failure.ok()) {
      round_.failure = round_.status[rank];
    }
    ++round_.done_count;
    // Unblock a sender that is still pushing inputs after an early EOF
    // (fragment failed before consuming them). Poisoning must happen
    // before anyone can observe the round as complete: done under mu_,
    // otherwise the next round's Reset can race ahead and this poison
    // lands on the fresh window, silently killing that round's sender.
    worker->send_window.Poison(
        Status::Cancelled("fragment already reported completion"));
    cv_.notify_all();
  }
}

void Cluster::FailRound(const Status& why) {
  std::lock_guard<std::mutex> lock(mu_);
  if (round_.active && round_.failure.ok()) {
    round_.failure = why;
    cv_.notify_all();
  }
}

void Cluster::CancelRound(const Status& why) {
  std::vector<Worker*> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!round_.active) return;
    if (round_.failure.ok()) round_.failure = why;
    for (auto& w : workers_) {
      if (w->alive && !round_.done[static_cast<size_t>(w->rank)]) {
        targets.push_back(w.get());
      }
    }
  }
  CancelMsg msg;
  msg.code = why.code();
  msg.message = std::string(why.message());
  std::string payload = EncodeCancel(msg);
  for (Worker* w : targets) {
    (void)SendTo(&w->send_mu, &w->sock, MsgType::kCancel, payload);
  }
}

void Cluster::SenderLoop(Worker* worker, const std::string& query,
                         const RuleOptions& rules, const ExecOptions& exec,
                         const FragmentStage& stage, int fanout,
                         double deadline_remaining_ms, ReplaySpool* spool,
                         bool replay, QueryContext* ctx) {
  const int W = worker_count();
  auto abort_with = [&](const Status& why) { DropWorker(worker, why); };

  if (ctx != nullptr) {
    // The dispatch-side stall/fault point: an armed stall delays this
    // worker's fragment; an armed error loses the worker.
    Status fault = ctx->Fault(FaultInjector::kWorkerStall);
    if (!fault.ok()) {
      abort_with(Status::WorkerLost("fragment dispatch failed (fault "
                                    "injection): " +
                                    std::string(fault.message())));
      return;
    }
  }

  FragmentRequest req;
  req.query = query;
  req.rules = rules;
  req.exec = exec;
  req.stage_id = stage.id;
  req.worker_id = worker->rank;
  req.worker_count = W;
  req.fanout = stage.shuffled ? fanout : 0;
  req.num_inputs = static_cast<int>(stage.inputs.size());
  req.deadline_remaining_ms = deadline_remaining_ms;
  req.credit_window =
      query_credit_window_ != 0 ? query_credit_window_ : options_.credit_window;
  Status st = SendTo(&worker->send_mu, &worker->sock, MsgType::kRunFragment,
                     EncodeFragmentRequest(req));
  if (!st.ok()) {
    abort_with(st);
    return;
  }

  for (size_t slot = 0; slot < stage.inputs.size(); ++slot) {
    for (int src = 0; src < W; ++src) {
      Result<ReplaySpool::Cursor> cursor =
          spool->Open(stage.inputs[slot], src, worker->rank);
      if (!cursor.ok()) {
        // A replay-buffer fault is the dispatcher's problem, not this
        // worker's — fail the round instead of declaring a loss that
        // a retry could never fix.
        FailRound(cursor.status());
        return;
      }
      while (true) {
        FrameMsg frame;
        Result<bool> have = cursor->Next(&frame);
        if (!have.ok()) {
          FailRound(have.status());
          return;
        }
        if (!*have) break;
        if (ctx != nullptr) {
          Status fault = ctx->Fault(FaultInjector::kExchangeFrameDrop);
          if (!fault.ok()) {
            abort_with(Status::WorkerLost(
                "exchange frame dropped (fault injection): " +
                std::string(fault.message())));
            return;
          }
        }
        // Credit-gated forward; abort promptly on round failure.
        while (true) {
          Status credit = worker->send_window.Acquire(100);
          if (credit.ok()) break;
          if (credit.code() != StatusCode::kUnavailable) return;  // poisoned
          bool aborted;
          {
            std::lock_guard<std::mutex> lock(mu_);
            aborted = !round_.failure.ok() ||
                      round_.done[static_cast<size_t>(worker->rank)];
          }
          if (aborted) return;
          if (ctx != nullptr && !ctx->Check("exchange (dispatch)").ok()) {
            return;  // the main loop broadcasts the cancel
          }
        }
        const uint64_t payload_bytes = frame.bytes.size();
        FrameMsg forward;
        forward.channel = static_cast<uint32_t>(slot);
        forward.tuple_count = frame.tuple_count;
        forward.bytes = std::move(frame.bytes);
        st = SendTo(&worker->send_mu, &worker->sock, MsgType::kInputFrame,
                    EncodeFrameMsg(forward));
        if (!st.ok()) {
          abort_with(st);
          return;
        }
        std::lock_guard<std::mutex> lock(mu_);
        round_.frames += 1;
        round_.bytes += payload_bytes;
        if (replay) round_.replayed += 1;
      }
    }
    st = SendTo(&worker->send_mu, &worker->sock, MsgType::kInputEof,
                EncodeCredit(static_cast<uint32_t>(slot)));
    if (!st.ok()) {
      abort_with(st);
      return;
    }
  }
}

Status Cluster::RunRound(
    const std::string& query, const RuleOptions& rules,
    const ExecOptions& exec, const FragmentStage& stage, int fanout,
    ReplaySpool* spool, const std::vector<int>& ranks, bool retry_allowed,
    bool replay, QueryContext* ctx, ExecStats* stats,
    std::vector<std::vector<std::vector<FrameMsg>>>* accum,
    std::vector<int>* lost) {
  const int W = worker_count();
  double deadline_remaining_ms = 0;
  if (ctx != nullptr && ctx->has_deadline()) {
    deadline_remaining_ms = RemainingMs(ctx);
    if (deadline_remaining_ms <= 0) return ctx->Check("dispatch");
  }

  std::vector<bool> participating(static_cast<size_t>(W), false);
  for (int rank : ranks) participating[static_cast<size_t>(rank)] = true;

  std::vector<Worker*> participants;
  {
    std::lock_guard<std::mutex> lock(mu_);
    round_ = Round();
    round_.active = true;
    round_.fanout = fanout;
    round_.ctx = ctx;
    round_.retry_worker_lost = retry_allowed;
    round_.out.assign(static_cast<size_t>(W),
                      std::vector<std::vector<FrameMsg>>(
                          static_cast<size_t>(fanout)));
    round_.done.assign(static_cast<size_t>(W), false);
    round_.status.assign(static_cast<size_t>(W), Status::OK());
    round_.stats.assign(static_cast<size_t>(W), ExecStats());
    for (auto& w : workers_) {
      size_t rank = static_cast<size_t>(w->rank);
      if (!participating[rank]) {
        // Already completed in a previous attempt; its output is
        // banked in the spool.
        round_.done[rank] = true;
        ++round_.done_count;
        continue;
      }
      if (!w->alive) {
        round_.done[rank] = true;
        round_.status[rank] = Status::WorkerLost(
            "worker " + std::to_string(w->rank) + " is down: " +
            w->death.ToString());
        if (!retry_allowed && round_.failure.ok()) {
          round_.failure = round_.status[rank];
        }
        ++round_.done_count;
      } else {
        participants.push_back(w.get());
      }
    }
  }

  std::vector<std::thread> senders;
  senders.reserve(participants.size());
  for (Worker* w : participants) {
    w->send_window.Reset(query_credit_window_ != 0 ? query_credit_window_
                                                   : options_.credit_window);
    {
      std::lock_guard<std::mutex> lock(mu_);
      w->last_ping = std::chrono::steady_clock::now();
    }
    w->last_heard_ms.store(NowMs());
    senders.emplace_back([=, this, &query, &rules, &exec, &stage] {
      SenderLoop(w, query, rules, exec, stage, fanout, deadline_remaining_ms,
                 spool, replay, ctx);
    });
  }

  // Wait for every rank to be accounted for, policing lifecycle:
  // cancellation/deadline, worker heartbeats, and the post-cancel drain.
  bool cancel_sent = false;
  auto cancel_at = std::chrono::steady_clock::time_point::max();
  bool force_dropped = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (round_.done_count < W) {
      cv_.wait_for(lock, std::chrono::milliseconds(100));
      if (round_.done_count >= W) break;
      auto now = std::chrono::steady_clock::now();
      if (!cancel_sent) {
        Status why = ctx != nullptr ? ctx->Check("dispatch") : Status::OK();
        if (why.ok()) why = round_.failure;
        if (!why.ok()) {
          lock.unlock();
          CancelRound(why);
          lock.lock();
          cancel_sent = true;
          cancel_at = std::chrono::steady_clock::now();
        }
      } else if (!force_dropped &&
                 now - cancel_at > std::chrono::milliseconds(
                                       options_.drain_timeout_ms)) {
        // Workers that did not acknowledge the cancel in time are
        // declared lost; their readers finalize the round state.
        force_dropped = true;
        std::vector<Worker*> laggards;
        for (auto& w : workers_) {
          if (w->alive && !round_.done[static_cast<size_t>(w->rank)]) {
            if (w->death.ok()) {
              w->death = Status::WorkerLost(
                  "worker " + std::to_string(w->rank) +
                  " did not acknowledge cancellation within " +
                  std::to_string(options_.drain_timeout_ms) + "ms");
            }
            laggards.push_back(w.get());
          }
        }
        lock.unlock();
        for (Worker* w : laggards) w->sock.ShutdownBoth();
        lock.lock();
      }
      // Heartbeats / silence detection.
      std::vector<Worker*> to_ping;
      std::vector<Worker*> to_drop;
      int64_t now_ms = NowMs();
      for (auto& w : workers_) {
        if (!w->alive || round_.done[static_cast<size_t>(w->rank)]) continue;
        int64_t silent_ms = now_ms - w->last_heard_ms.load();
        if (silent_ms > options_.worker_timeout_ms) {
          if (w->death.ok()) {
            w->death = Status::WorkerLost(
                "worker " + std::to_string(w->rank) + " silent for " +
                std::to_string(silent_ms) + "ms");
          }
          to_drop.push_back(w.get());
        } else if (silent_ms > options_.heartbeat_ms &&
                   now - w->last_ping >
                       std::chrono::milliseconds(options_.heartbeat_ms)) {
          w->last_ping = now;
          to_ping.push_back(w.get());
        }
      }
      if (!to_ping.empty() || !to_drop.empty()) {
        lock.unlock();
        for (Worker* w : to_ping) {
          (void)SendTo(&w->send_mu, &w->sock, MsgType::kPing, "");
        }
        for (Worker* w : to_drop) w->sock.ShutdownBoth();
        lock.lock();
      }
    }
  }
  for (std::thread& t : senders) t.join();

  std::lock_guard<std::mutex> lock(mu_);
  round_.active = false;
  Status result = round_.failure;
  stats->dist_frames += round_.frames;
  stats->dist_bytes += round_.bytes;
  stats->frames_replayed += round_.replayed;
  if (!result.ok()) return result;
  for (int rank : ranks) {
    size_t r = static_cast<size_t>(rank);
    if (round_.status[r].ok()) {
      stats->MergeFrom(round_.stats[r]);
      (*accum)[r] = std::move(round_.out[r]);
    } else {
      // With retry_allowed the only per-rank failure that leaves
      // round_.failure OK is a worker loss — re-dispatchable.
      lost->push_back(rank);
    }
  }
  return Status::OK();
}

Status Cluster::SyncCatalog(const Catalog& catalog) {
  const uint64_t version = catalog.version();
  std::vector<Worker*> need;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& w : workers_) {
      if (w->alive && w->synced_version != version) {
        w->sync_acked = false;
        need.push_back(w.get());
      }
    }
  }
  if (need.empty()) return Status::OK();
  std::string payload = EncodeCatalogSync(catalog);
  for (Worker* w : need) {
    Status st = SendTo(&w->send_mu, &w->sock, MsgType::kSyncCatalog, payload);
    if (!st.ok()) {
      DropWorker(w, st);
      return Status::WorkerLost("catalog sync to worker " +
                                std::to_string(w->rank) +
                                " failed: " + st.ToString());
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (Worker* w : need) {
    bool ok = cv_.wait_for(
        lock, std::chrono::milliseconds(options_.worker_timeout_ms),
        [&] { return (w->sync_acked && w->synced_version == version) ||
                     !w->alive; });
    if (!ok || !w->alive) {
      return Status::WorkerLost("worker " + std::to_string(w->rank) +
                                " did not acknowledge catalog sync" +
                                (w->death.ok() ? ""
                                               : ": " + w->death.ToString()));
    }
  }
  return Status::OK();
}

Result<QueryOutput> Cluster::Run(const std::string& query,
                                 const RuleOptions& rules,
                                 const ExecOptions& exec,
                                 const CompiledQuery& compiled,
                                 const Catalog& catalog, QueryContext* ctx) {
  std::lock_guard<std::mutex> qlock(query_mu_);
  JPAR_RETURN_NOT_OK(ValidateExecOptions(exec));
  QueryContext local_ctx;
  if (ctx == nullptr) {
    if (exec.deadline_ms > 0) local_ctx.set_deadline_after_ms(exec.deadline_ms);
    ctx = &local_ctx;
  }
  JPAR_RETURN_NOT_OK(EnsureWorkers());
  JPAR_ASSIGN_OR_RETURN(StagePlan split,
                        SplitPlanForDistribution(compiled.physical));
  JPAR_RETURN_NOT_OK(SyncCatalog(catalog));

  // Size the exchange credit window from the plan's cardinality
  // estimate: a query the cost model expects to produce few rows does
  // not need credit_window × frame_bytes of in-flight buffering per
  // worker. Flow control only — credits pace sends, they never cap
  // rows — so a bad estimate can slow the exchange but not change it.
  query_credit_window_ = options_.credit_window;
  if (compiled.physical.est_result_rows >= 0) {
    double frames = compiled.physical.est_result_rows / 64.0 + 4.0;
    if (frames < static_cast<double>(query_credit_window_)) {
      query_credit_window_ =
          static_cast<uint32_t>(frames < 4.0 ? 4.0 : frames);
    }
  }

  const int W = worker_count();
  auto start = std::chrono::steady_clock::now();
  QueryOutput out;
  out.stats.dist_workers = static_cast<uint64_t>(W);

  // Replay-buffer lifecycle: stage t's banked frames can be freed once
  // its last consumer stage succeeds (the final stage stays for the
  // gather below).
  std::vector<int> last_consumer(split.stages.size(), -1);
  for (const FragmentStage& stage : split.stages) {
    for (int input : stage.inputs) {
      size_t i = static_cast<size_t>(input);
      if (stage.id > last_consumer[i]) last_consumer[i] = stage.id;
    }
  }

  ReplaySpool spool(options_.replay_memory_bytes, exec.spill_dir);
  for (const FragmentStage& stage : split.stages) {
    int fanout = stage.shuffled ? W : 1;
    std::vector<std::vector<std::vector<FrameMsg>>> accum(
        static_cast<size_t>(W),
        std::vector<std::vector<FrameMsg>>(static_cast<size_t>(fanout)));
    std::vector<int> ranks(static_cast<size_t>(W));
    for (int r = 0; r < W; ++r) ranks[static_cast<size_t>(r)] = r;
    int retries_left = options_.max_fragment_retries;
    int attempt = 0;
    bool recovering = false;
    std::chrono::steady_clock::time_point recovery_start{};
    while (true) {
      if (options_.test_round_hook) options_.test_round_hook(stage.id, attempt);
      std::vector<int> lost;
      Status st = RunRound(query, rules, exec, stage, fanout, &spool, ranks,
                           /*retry_allowed=*/retries_left > 0,
                           /*replay=*/attempt > 0, ctx, &out.stats, &accum,
                           &lost);
      ++out.stats.dist_rounds;
      if (!st.ok()) return st;
      if (lost.empty()) break;
      if (retries_left <= 0) {
        return Status::WorkerLost(
            "stage " + std::to_string(stage.id) + " lost " +
            std::to_string(lost.size()) + " worker(s) with no retry budget "
            "left (max_fragment_retries=" +
            std::to_string(options_.max_fragment_retries) + ")");
      }
      if (!recovering) {
        recovering = true;
        recovery_start = std::chrono::steady_clock::now();
      }
      --retries_left;
      ++attempt;
      out.stats.fragment_retries += lost.size();
      // Exponential backoff, sliced so cancellation stays responsive.
      int shift = attempt - 1 < 20 ? attempt - 1 : 20;
      int64_t backoff_ms = static_cast<int64_t>(options_.retry_backoff_ms)
                           << shift;
      if (backoff_ms > options_.worker_timeout_ms) {
        backoff_ms = options_.worker_timeout_ms;
      }
      auto backoff_until = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(backoff_ms);
      while (std::chrono::steady_clock::now() < backoff_until) {
        JPAR_RETURN_NOT_OK(ctx->Check("fragment retry backoff"));
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      // Respawn dead ranks and resync their catalogs. Best-effort: a
      // rank that cannot be revived (or resynced) is simply lost again
      // on the next attempt, which consumes the remaining budget and
      // fails cleanly.
      auto count_dead = [&] {
        std::lock_guard<std::mutex> lock(mu_);
        int n = 0;
        for (auto& w : workers_) {
          if (!w->alive) ++n;
        }
        return n;
      };
      int dead_before = count_dead();
      Status revive = EnsureWorkers();
      int dead_after = count_dead();
      if (dead_before > dead_after) {
        out.stats.workers_respawned +=
            static_cast<uint64_t>(dead_before - dead_after);
      }
      if (revive.ok()) (void)SyncCatalog(catalog);
      ranks = std::move(lost);
    }
    if (recovering) {
      out.stats.recovery_ms +=
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - recovery_start)
              .count();
    }
    JPAR_RETURN_NOT_OK(spool.StoreStage(stage.id, W, fanout, std::move(accum)));
    for (int input : stage.inputs) {
      if (last_consumer[static_cast<size_t>(input)] == stage.id) {
        spool.Free(input);
      }
    }
  }

  // Gather: the last stage's single bucket, in worker-rank order —
  // exactly the in-process partition concatenation order.
  const int final_stage = split.stages.back().id;
  std::vector<Frame> frames;
  for (int src = 0; src < W; ++src) {
    JPAR_ASSIGN_OR_RETURN(ReplaySpool::Cursor cursor,
                          spool.Open(final_stage, src, 0));
    while (true) {
      FrameMsg f;
      JPAR_ASSIGN_OR_RETURN(bool have, cursor.Next(&f));
      if (!have) break;
      Frame frame;
      frame.bytes = std::move(f.bytes);
      frame.tuple_count = f.tuple_count;
      frames.push_back(std::move(frame));
    }
  }
  FrameReader reader(frames);
  while (true) {
    Tuple tuple;
    JPAR_ASSIGN_OR_RETURN(bool have, reader.Next(&tuple));
    if (!have) break;
    if (split.result_column < 0 ||
        static_cast<size_t>(split.result_column) >= tuple.size()) {
      return Status::Internal("result column out of range");
    }
    out.items.push_back(
        std::move(tuple[static_cast<size_t>(split.result_column)]));
  }
  out.stats.result_rows = out.items.size();
  out.stats.replay_spill_bytes = spool.spill_bytes();
  double wall = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  // Workers genuinely ran in parallel: makespan is real wall clock.
  out.stats.real_ms = wall;
  out.stats.makespan_ms = wall;
  return out;
}

}  // namespace jpar
