#ifndef JPAR_DIST_REPLAY_H_
#define JPAR_DIST_REPLAY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/protocol.h"
#include "runtime/spill.h"

namespace jpar {

/// The dispatcher's replay buffer (DESIGN.md §12): completed fragment
/// stages' output frames, kept so a retried consumer-side fragment can
/// replay its inputs without re-running healthy upstream fragments.
/// Frames stay in memory up to `memory_budget_bytes`; stages stored
/// beyond the budget overflow to disk through a SpillManager (one run
/// file per (source rank, bucket) channel, records = the FrameMsg wire
/// encoding). A stage is freed once its last consumer stage succeeds.
///
/// Thread-safety: Open() and the accounting are mutex-guarded; each
/// Cursor owns its own file handle, so concurrent sender threads can
/// stream distinct channels in parallel. Callers must not Free() a
/// stage while cursors over it are live (the dispatcher only frees
/// after a round's senders have joined).
class ReplaySpool {
 public:
  ReplaySpool(uint64_t memory_budget_bytes, std::string spill_dir_hint)
      : budget_(memory_budget_bytes), dir_hint_(std::move(spill_dir_hint)) {}

  ReplaySpool(const ReplaySpool&) = delete;
  ReplaySpool& operator=(const ReplaySpool&) = delete;

  /// Streams one stored channel's frames in arrival order: first any
  /// in-memory frames, else the spilled run. Move-only.
  class Cursor {
   public:
    Cursor() = default;
    Cursor(Cursor&&) = default;
    Cursor& operator=(Cursor&&) = default;

    /// Fills `*frame` with the next frame; false at end of channel.
    Result<bool> Next(FrameMsg* frame);

   private:
    friend class ReplaySpool;
    const std::vector<FrameMsg>* mem_ = nullptr;  // null when spilled/empty
    size_t pos_ = 0;
    std::unique_ptr<SpillRunReader> run_;  // null when in memory/empty
  };

  /// Banks stage `stage_id`'s output, `out[src][bucket]` = frames in
  /// arrival order. Spills the whole stage when it does not fit in
  /// what is left of the memory budget.
  Status StoreStage(int stage_id, int sources, int fanout,
                    std::vector<std::vector<std::vector<FrameMsg>>> out);

  /// Opens a cursor over stage `stage_id`'s frames from `src` for
  /// bucket `bucket`. The stage must have been stored and not freed.
  Result<Cursor> Open(int stage_id, int src, int bucket);

  /// Releases stage `stage_id`'s frames (memory and run files). No-op
  /// for unknown stages.
  void Free(int stage_id);

  /// Replay-buffer bytes written to disk so far (ExecStats::
  /// replay_spill_bytes).
  uint64_t spill_bytes() const;

 private:
  struct Channel {
    std::vector<FrameMsg> mem;  // populated iff the stage fit in memory
    std::string run_path;       // populated iff spilled and non-empty
  };
  struct Stage {
    int sources = 0;
    int fanout = 0;
    std::vector<Channel> channels;  // [src * fanout + bucket]
    uint64_t mem_bytes = 0;
  };

  Status EnsureSpillManagerLocked();

  mutable std::mutex mu_;
  uint64_t budget_;
  std::string dir_hint_;
  std::unique_ptr<SpillManager> spill_;  // lazy; created on first overflow
  uint64_t mem_bytes_ = 0;
  std::map<int, Stage> stages_;
};

}  // namespace jpar

#endif  // JPAR_DIST_REPLAY_H_
