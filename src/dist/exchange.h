#ifndef JPAR_DIST_EXCHANGE_H_
#define JPAR_DIST_EXCHANGE_H_

#include <condition_variable>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "dist/protocol.h"
#include "runtime/frame.h"
#include "runtime/tuple.h"

namespace jpar {

/// Credit-based backpressure for one direction of a worker connection.
/// The sender Acquire()s one credit per data frame; the receiver
/// Grant()s a credit back per frame it has ingested, bounding the bytes
/// in flight to window × frame_bytes. Poison() wakes every blocked
/// sender with a terminal status (peer death, cancellation) so nobody
/// waits on credits that will never arrive.
class CreditWindow {
 public:
  /// Arms the window with `credits` initial send credits and clears any
  /// previous poison.
  void Reset(uint32_t credits);

  /// Takes one credit, blocking until one is granted, the window is
  /// poisoned, or `timeout_ms` elapses (timeout <= 0 waits forever).
  Status Acquire(int timeout_ms = -1);

  void Grant(uint32_t n);

  /// Terminal: every current and future Acquire() returns `status`.
  void Poison(Status status);

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  uint32_t credits_ = 0;
  Status poison_ = Status::OK();
};

/// Packs `tuples` into wire frames of ~`frame_bytes` each, all bound to
/// `channel`. The frame payloads reuse the runtime/frame.h encoding.
std::vector<FrameMsg> TuplesToFrames(const std::vector<Tuple>& tuples,
                                     uint32_t channel, size_t frame_bytes);

/// Decodes one wire frame, appending its tuples to *out. Rejects
/// payloads whose decoded tuple count disagrees with the header.
Status AppendFrameTuples(const FrameMsg& frame, std::vector<Tuple>* out);

}  // namespace jpar

#endif  // JPAR_DIST_EXCHANGE_H_
