#ifndef JPAR_STORAGE_STORAGE_TIER_H_
#define JPAR_STORAGE_STORAGE_TIER_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "json/structural_index.h"
#include "storage/column_store.h"

namespace jpar {

/// Which warm-storage access paths a query may use (DESIGN.md §14).
///   kAuto     — tapes + columns; the default.
///   kOff      — always cold: no cache reads, no cache builds.
///   kTape     — structural-index tapes only; columns neither built
///               nor read (isolates the stage-1 win in benchmarks).
///   kColumnar — tapes + columns, same surface as kAuto but explicit.
/// The JPAR_DISABLE_STORAGE_CACHE environment variable overrides every
/// mode to kOff — the operational kill-switch, mirroring
/// JPAR_DISABLE_EXPR_BYTECODE.
enum class StorageMode : uint8_t { kAuto = 0, kOff = 1, kTape = 2,
                                   kColumnar = 3 };

/// True when JPAR_DISABLE_STORAGE_CACHE is set (checked once).
bool StorageCacheDisabledByEnv();

/// Per-query view of the manager's knobs, resolved from ExecOptions.
/// Zero/empty fields keep the manager's current (process-global)
/// setting; nonzero/nonempty fields update it — last writer wins, as
/// the cache itself is process-global.
struct StorageConfig {
  uint64_t budget_bytes = 0;
  std::string cache_dir;
};

/// Identity of the bytes a cache entry was built over. Two stats with
/// equal (size, mtime_ns) are presumed to be the same content — the
/// standard sidecar-cache tradeoff; any size change or mtime tick
/// invalidates.
struct FileSignature {
  uint64_t size = 0;
  int64_t mtime_ns = 0;

  friend bool operator==(const FileSignature& a, const FileSignature& b) {
    return a.size == b.size && a.mtime_ns == b.mtime_ns;
  }
  friend bool operator!=(const FileSignature& a, const FileSignature& b) {
    return !(a == b);
  }
};

/// Process-global two-level cache over collection files (DESIGN.md
/// §14): level 1 holds file bytes + the stage-1 structural-index tape,
/// level 2 holds per-path shredded columns with zone maps. Entries are
/// keyed by file path and validated against the live (size, mtime) on
/// every access; both levels persist to sidecar files so a fresh
/// process (or a distributed worker on the same host) warms from disk
/// instead of re-running stage 1. All methods are thread-safe; builds
/// run under the manager lock, so concurrent queries racing to build
/// the same tape serialize into one build plus hits.
class StorageManager {
 public:
  static StorageManager& Instance();

  /// A level-1 serving: the file's bytes plus its stage-1 tape. `hit`
  /// distinguishes cache/sidecar reuse from a fresh build (the
  /// tape_hits / tape_builds counters). `signature` is what the entry
  /// was validated against — pass it back to PutColumn so columns
  /// built from these bytes are dropped if the file changed mid-scan.
  struct Tape {
    std::shared_ptr<const std::string> text;
    std::shared_ptr<const StructuralIndex> index;
    FileSignature signature;
    bool hit = false;
  };

  /// Returns text + tape for `path`, building and caching on first
  /// use. A stale entry (file drifted) is dropped and rebuilt. Errors
  /// only when the file cannot be stat'ed or read.
  Result<Tape> AcquireTape(const std::string& path, const StorageConfig& cfg);

  /// The cached column for (file, projected-path string), or null when
  /// absent or stale. Never touches the file's JSON bytes — only a
  /// stat and, at most once, a column sidecar read.
  std::shared_ptr<const ColumnData> GetColumn(const std::string& path,
                                              const std::string& path_str,
                                              const StorageConfig& cfg);

  /// Installs a column built by a scan that consumed bytes with
  /// signature `built_for`; silently dropped when the live file no
  /// longer matches. Bumps the epoch.
  void PutColumn(const std::string& path, const std::string& path_str,
                 ColumnData column, const FileSignature& built_for,
                 const StorageConfig& cfg);

  /// Monotonic counter bumped when the tier learns a column or drops a
  /// stale entry; joins the plan-cache key so cached plans revalidate
  /// their access-path assumptions as the tier evolves.
  uint64_t epoch() const;

  /// Drops every in-memory entry (sidecar files stay — they are the
  /// persistence layer). Tests use this to simulate a fresh process.
  void Clear();

  struct Totals {
    uint64_t bytes = 0;
    uint64_t files = 0;
  };
  Totals totals() const;

  uint64_t budget_bytes() const;

 private:
  StorageManager() = default;

  struct Entry {
    FileSignature sig;
    std::shared_ptr<const std::string> text;
    std::shared_ptr<const StructuralIndex> tape;
    std::map<std::string, std::shared_ptr<const ColumnData>> columns;
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru;
  };

  void ApplyConfigLocked(const StorageConfig& cfg);
  Entry* TouchLocked(const std::string& path);
  Entry* EnsureEntryLocked(const std::string& path, const FileSignature& sig);
  void DropEntryLocked(const std::string& path);
  void EvictOverBudgetLocked();
  std::string SidecarBaseLocked(const std::string& path) const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  uint64_t total_bytes_ = 0;
  uint64_t budget_bytes_ = 256ull << 20;
  std::string cache_dir_;
  uint64_t epoch_ = 1;
};

/// Stats `path`; ok=false in the signature-holder sense is expressed by
/// the nullopt-like Result: NotFound / IOError when the file is absent
/// or unreadable.
Result<FileSignature> StatFileSignature(const std::string& path);

}  // namespace jpar

#endif  // JPAR_STORAGE_STORAGE_TIER_H_
