#include "storage/column_store.h"

#include <cmath>
#include <cstring>

#include "json/binary_serde.h"

namespace jpar {

namespace {

// Largest magnitude at which every int64 is exactly representable as a
// double; beyond it the zone map's min/max could round across the
// predicate constant and prune a matching block.
constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutF64(double v, std::string* out) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(bits, out);
}

bool GetU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (data.size() - *pos < 4) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<unsigned char>(data[*pos + i]))
          << (8 * i);
  }
  *pos += 4;
  return true;
}

bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (data.size() - *pos < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(data[*pos + i]))
          << (8 * i);
  }
  *pos += 8;
  return true;
}

bool GetF64(std::string_view data, size_t* pos, double* v) {
  uint64_t bits;
  if (!GetU64(data, pos, &bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

uint64_t BlockBytes(const ColumnBlock& b) {
  return sizeof(ColumnBlock) + b.values.size() + b.null_bitmap.size() * 8;
}

}  // namespace

void ColumnBuilder::Add(const Item& item) {
  uint32_t row = cur_.rows;
  if (item.is_null()) {
    size_t word = row >> 6;
    if (cur_.null_bitmap.size() <= word) cur_.null_bitmap.resize(word + 1, 0);
    cur_.null_bitmap[word] |= uint64_t{1} << (row & 63);
  }
  ItemWriter(&cur_.values).Write(item);
  bool exact_numeric =
      item.is_double() ||
      (item.is_int64() && item.int64_value() >= -kMaxExactInt &&
       item.int64_value() <= kMaxExactInt);
  if (exact_numeric) {
    double d = item.AsDouble();
    if (std::isnan(d)) {
      cur_all_numeric_ = false;
    } else if (!cur_has_value_) {
      cur_.min = cur_.max = d;
      cur_has_value_ = true;
    } else {
      if (d < cur_.min) cur_.min = d;
      if (d > cur_.max) cur_.max = d;
    }
  } else {
    cur_all_numeric_ = false;
  }
  ++cur_.rows;
  if (cur_.rows >= block_rows_) Seal();
}

void ColumnBuilder::Seal() {
  if (cur_.rows == 0) return;
  cur_.prunable = cur_all_numeric_ && cur_has_value_;
  out_.rows += cur_.rows;
  out_.bytes += BlockBytes(cur_);
  out_.blocks.push_back(std::move(cur_));
  cur_ = ColumnBlock();
  cur_all_numeric_ = true;
  cur_has_value_ = false;
}

ColumnData ColumnBuilder::Finish(uint64_t skipped_records) {
  Seal();
  out_.skipped_records = skipped_records;
  out_.bytes += sizeof(ColumnData);
  return std::move(out_);
}

bool ZoneMayMatch(const ColumnBlock& block, ZoneCompare op, double value) {
  if (!block.prunable || op == ZoneCompare::kNone) return true;
  switch (op) {
    case ZoneCompare::kEq:
      return value >= block.min && value <= block.max;
    case ZoneCompare::kLt:
      return block.min < value;
    case ZoneCompare::kLe:
      return block.min <= value;
    case ZoneCompare::kGt:
      return block.max > value;
    case ZoneCompare::kGe:
      return block.max >= value;
    case ZoneCompare::kNone:
      return true;
  }
  return true;
}

void AppendColumnPayload(const ColumnData& column, std::string* out) {
  PutU64(column.rows, out);
  PutU64(column.skipped_records, out);
  PutU32(static_cast<uint32_t>(column.blocks.size()), out);
  for (const ColumnBlock& b : column.blocks) {
    PutU32(b.rows, out);
    out->push_back(b.prunable ? 1 : 0);
    PutF64(b.min, out);
    PutF64(b.max, out);
    PutU32(static_cast<uint32_t>(b.null_bitmap.size()), out);
    for (uint64_t w : b.null_bitmap) PutU64(w, out);
    PutU64(b.values.size(), out);
    out->append(b.values);
  }
}

bool ParseColumnPayload(std::string_view data, ColumnData* out) {
  *out = ColumnData();
  size_t pos = 0;
  uint64_t rows = 0, skipped = 0;
  uint32_t n_blocks = 0;
  if (!GetU64(data, &pos, &rows) || !GetU64(data, &pos, &skipped) ||
      !GetU32(data, &pos, &n_blocks)) {
    return false;
  }
  uint64_t total_rows = 0;
  for (uint32_t i = 0; i < n_blocks; ++i) {
    ColumnBlock b;
    uint32_t null_words = 0;
    uint64_t values_len = 0;
    if (!GetU32(data, &pos, &b.rows)) return false;
    if (data.size() - pos < 1) return false;
    b.prunable = data[pos++] != 0;
    if (!GetF64(data, &pos, &b.min) || !GetF64(data, &pos, &b.max) ||
        !GetU32(data, &pos, &null_words)) {
      return false;
    }
    if (null_words > (uint64_t{b.rows} + 63) / 64) return false;
    b.null_bitmap.resize(null_words);
    for (uint32_t w = 0; w < null_words; ++w) {
      if (!GetU64(data, &pos, &b.null_bitmap[w])) return false;
    }
    if (!GetU64(data, &pos, &values_len) || data.size() - pos < values_len) {
      return false;
    }
    b.values.assign(data.data() + pos, values_len);
    pos += values_len;
    // Full decode validation: every value must round-trip and the row
    // count must match, so the serving path can trust the block.
    ItemReader reader(b.values);
    uint32_t decoded = 0;
    while (!reader.AtEnd()) {
      if (!reader.Read().ok()) return false;
      ++decoded;
    }
    if (decoded != b.rows) return false;
    total_rows += b.rows;
    out->bytes += BlockBytes(b);
    out->blocks.push_back(std::move(b));
  }
  if (pos != data.size() || total_rows != rows) {
    *out = ColumnData();
    return false;
  }
  out->rows = rows;
  out->skipped_records = skipped;
  out->bytes += sizeof(ColumnData);
  return true;
}

}  // namespace jpar
