#ifndef JPAR_STORAGE_COLUMN_STORE_H_
#define JPAR_STORAGE_COLUMN_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "json/item.h"

namespace jpar {

/// Comparison a SELECT directly above a DATASCAN applies to the scan's
/// output column against a numeric constant, normalized so the column
/// is always the left operand. The physical translator annotates it on
/// the scan (ScanDesc); the executor's columnar access path uses it to
/// prune whole blocks via zone maps before the SELECT runs. kNone means
/// no prunable predicate was recognized.
enum class ZoneCompare : uint8_t { kNone = 0, kEq, kLt, kLe, kGt, kGe };

/// One block of a cached column: a run of consecutive values the
/// building scan emitted for one (file, projected path), in emit order.
/// `values` is ItemWriter-concatenated; `null_bitmap` marks rows whose
/// value is JSON null. A block is `prunable` only when every value is
/// numeric (no nulls, strings, or containers) and every int64 fits in
/// 2^53 — the range where the double min/max zone map is exact, so a
/// pruned block provably holds no row satisfying the predicate.
struct ColumnBlock {
  uint32_t rows = 0;
  std::string values;
  std::vector<uint64_t> null_bitmap;  // bit i set = row i is null
  bool prunable = false;
  double min = 0;
  double max = 0;
};

/// A whole cached column for one (file, projected path). `skipped_records`
/// is the degraded-scan skip count of the scan that built it: a lenient
/// warm read reports it verbatim, a strict query refuses columns with a
/// nonzero count (the cold path must surface the parse error instead).
struct ColumnData {
  std::vector<ColumnBlock> blocks;
  uint64_t rows = 0;
  uint64_t skipped_records = 0;
  uint64_t bytes = 0;  // in-memory footprint, for budget accounting
};

/// Accumulates the items a projecting scan emits into column blocks.
class ColumnBuilder {
 public:
  static constexpr uint32_t kDefaultBlockRows = 512;

  explicit ColumnBuilder(uint32_t block_rows = kDefaultBlockRows)
      : block_rows_(block_rows == 0 ? kDefaultBlockRows : block_rows) {}

  void Add(const Item& item);

  /// Seals the final block and returns the column. The builder is
  /// spent afterwards.
  ColumnData Finish(uint64_t skipped_records);

 private:
  void Seal();

  uint32_t block_rows_;
  ColumnData out_;
  ColumnBlock cur_;
  bool cur_all_numeric_ = true;
  bool cur_has_value_ = false;
};

/// Conservative zone-map test: true when `block` may contain a row
/// satisfying `column <op> value`. Non-prunable blocks always may.
bool ZoneMayMatch(const ColumnBlock& block, ZoneCompare op, double value);

/// Sidecar payload round-trip (the bytes after the file header; see
/// DESIGN.md §14). Decode fully validates — block decode errors and row
/// count mismatches return false — so a corrupt sidecar is a cache
/// miss, never a wrong answer.
void AppendColumnPayload(const ColumnData& column, std::string* out);
bool ParseColumnPayload(std::string_view data, ColumnData* out);

}  // namespace jpar

#endif  // JPAR_STORAGE_COLUMN_STORE_H_
