#include "storage/storage_tier.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace jpar {

namespace {

constexpr char kTapeMagic[8] = {'J', 'P', 'T', 'A', 'P', 'E', '1', '\n'};
constexpr char kColMagic[8] = {'J', 'P', 'C', 'O', 'L', '1', '\n', '\n'};

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (data.size() - *pos < 8) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<unsigned char>(data[*pos + i]))
          << (8 * i);
  }
  *pos += 8;
  return true;
}

/// FNV-1a, hex — names column sidecars per path string and files in an
/// explicit cache dir.
std::string Fnv1aHex(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open collection file: " + path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IOError("read failed: " + path);
  return out;
}

/// Best-effort atomic write: temp file in the target directory, then
/// rename. Failures are swallowed — a sidecar is an accelerator, never
/// a correctness dependency.
void WriteSidecar(const std::string& dest, const std::string& bytes) {
  std::string tmp = dest + ".tmp." + std::to_string(::getpid());
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok || std::rename(tmp.c_str(), dest.c_str()) != 0) {
    std::remove(tmp.c_str());
  }
}

Result<std::string> ReadSidecar(const std::string& path) {
  return ReadFileBytes(path);
}

/// Header shared by both sidecar kinds: magic, then the signature of
/// the data file the payload was built from.
void AppendHeader(const char magic[8], const FileSignature& sig,
                  std::string* out) {
  out->append(magic, 8);
  PutU64(sig.size, out);
  PutU64(static_cast<uint64_t>(sig.mtime_ns), out);
}

bool CheckHeader(const char magic[8], const FileSignature& sig,
                 std::string_view data, size_t* pos) {
  if (data.size() < 24 || std::memcmp(data.data(), magic, 8) != 0) {
    return false;
  }
  *pos = 8;
  uint64_t size = 0, mtime = 0;
  if (!GetU64(data, pos, &size) || !GetU64(data, pos, &mtime)) return false;
  return size == sig.size &&
         static_cast<int64_t>(mtime) == sig.mtime_ns;
}

}  // namespace

bool StorageCacheDisabledByEnv() {
  static const bool disabled = [] {
    const char* env = std::getenv("JPAR_DISABLE_STORAGE_CACHE");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
  }();
  return disabled;
}

Result<FileSignature> StatFileSignature(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("cannot stat collection file: " + path);
  }
  FileSignature sig;
  sig.size = static_cast<uint64_t>(st.st_size);
  sig.mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
                 static_cast<int64_t>(st.st_mtim.tv_nsec);
  return sig;
}

StorageManager& StorageManager::Instance() {
  static StorageManager* instance = new StorageManager();
  return *instance;
}

void StorageManager::ApplyConfigLocked(const StorageConfig& cfg) {
  if (cfg.budget_bytes != 0) budget_bytes_ = cfg.budget_bytes;
  if (!cfg.cache_dir.empty()) cache_dir_ = cfg.cache_dir;
}

StorageManager::Entry* StorageManager::TouchLocked(const std::string& path) {
  auto it = entries_.find(path);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return &it->second;
}

StorageManager::Entry* StorageManager::EnsureEntryLocked(
    const std::string& path, const FileSignature& sig) {
  Entry* e = TouchLocked(path);
  if (e != nullptr && e->sig != sig) {
    DropEntryLocked(path);
    e = nullptr;
  }
  if (e == nullptr) {
    lru_.push_front(path);
    Entry fresh;
    fresh.sig = sig;
    fresh.lru = lru_.begin();
    e = &entries_.emplace(path, std::move(fresh)).first->second;
  }
  return e;
}

void StorageManager::DropEntryLocked(const std::string& path) {
  auto it = entries_.find(path);
  if (it == entries_.end()) return;
  total_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru);
  entries_.erase(it);
  ++epoch_;
}

void StorageManager::EvictOverBudgetLocked() {
  // Never evict the most-recent entry: the one being served must stay
  // resident even when it alone exceeds the budget.
  while (total_bytes_ > budget_bytes_ && lru_.size() > 1) {
    std::string victim = lru_.back();
    auto it = entries_.find(victim);
    total_bytes_ -= it->second.bytes;
    lru_.pop_back();
    entries_.erase(it);
  }
}

std::string StorageManager::SidecarBaseLocked(const std::string& path) const {
  if (cache_dir_.empty()) return path;
  return cache_dir_ + "/" + Fnv1aHex(path);
}

Result<StorageManager::Tape> StorageManager::AcquireTape(
    const std::string& path, const StorageConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  ApplyConfigLocked(cfg);
  JPAR_ASSIGN_OR_RETURN(FileSignature sig, StatFileSignature(path));

  Entry* e = EnsureEntryLocked(path, sig);
  if (e->text != nullptr && e->tape != nullptr) {
    Tape tape;
    tape.text = e->text;
    tape.index = e->tape;
    tape.signature = sig;
    tape.hit = true;
    return tape;
  }

  JPAR_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  auto text = std::make_shared<const std::string>(std::move(bytes));

  // Sidecar first: a valid tape for this exact (size, mtime) skips
  // stage 1 even in a fresh process.
  std::string sidecar_path = SidecarBaseLocked(path) + ".jtape";
  std::shared_ptr<const StructuralIndex> tape_index;
  bool hit = false;
  if (Result<std::string> sidecar = ReadSidecar(sidecar_path); sidecar.ok()) {
    size_t pos = 0;
    StructuralIndex idx;
    if (CheckHeader(kTapeMagic, sig, *sidecar, &pos) &&
        idx.LoadFrom(std::string_view(*sidecar).substr(pos)) &&
        idx.size() == text->size()) {
      tape_index = std::make_shared<const StructuralIndex>(std::move(idx));
      hit = true;
    }
  }
  if (tape_index == nullptr) {
    tape_index = std::make_shared<const StructuralIndex>(
        StructuralIndex::Build(*text));
    std::string sidecar;
    AppendHeader(kTapeMagic, sig, &sidecar);
    tape_index->AppendTo(&sidecar);
    WriteSidecar(sidecar_path, sidecar);
  }

  // Re-resolve the entry: EnsureEntryLocked iterators stay valid under
  // the lock, but be explicit about the accounting delta.
  e = EnsureEntryLocked(path, sig);
  uint64_t added = text->size() + StructuralIndex::SerializedBytes(text->size());
  e->text = text;
  e->tape = tape_index;
  e->bytes += added;
  total_bytes_ += added;
  EvictOverBudgetLocked();

  Tape tape;
  tape.text = text;
  tape.index = tape_index;
  tape.signature = sig;
  tape.hit = hit;
  return tape;
}

std::shared_ptr<const ColumnData> StorageManager::GetColumn(
    const std::string& path, const std::string& path_str,
    const StorageConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  ApplyConfigLocked(cfg);
  Result<FileSignature> sig = StatFileSignature(path);
  if (!sig.ok()) return nullptr;

  Entry* e = TouchLocked(path);
  if (e != nullptr && e->sig != *sig) {
    DropEntryLocked(path);
    e = nullptr;
  }
  if (e != nullptr) {
    auto it = e->columns.find(path_str);
    if (it != e->columns.end()) return it->second;
  }

  // Column sidecar: the only disk read on this path, done at most once
  // per (file, path) — a failed load leaves no entry marker, but the
  // subsequent scan installs the column anyway.
  std::string sidecar_path =
      SidecarBaseLocked(path) + "." + Fnv1aHex(path_str) + ".jcol";
  Result<std::string> sidecar = ReadSidecar(sidecar_path);
  if (!sidecar.ok()) return nullptr;
  size_t pos = 0;
  if (!CheckHeader(kColMagic, *sig, *sidecar, &pos)) return nullptr;
  ColumnData col;
  if (!ParseColumnPayload(std::string_view(*sidecar).substr(pos), &col)) {
    return nullptr;
  }
  auto sp = std::make_shared<const ColumnData>(std::move(col));
  e = EnsureEntryLocked(path, *sig);
  e->columns[path_str] = sp;
  e->bytes += sp->bytes;
  total_bytes_ += sp->bytes;
  EvictOverBudgetLocked();
  return sp;
}

void StorageManager::PutColumn(const std::string& path,
                               const std::string& path_str, ColumnData column,
                               const FileSignature& built_for,
                               const StorageConfig& cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  ApplyConfigLocked(cfg);
  Result<FileSignature> sig = StatFileSignature(path);
  // The scan consumed bytes with signature `built_for`; if the live
  // file moved on since, this column describes bytes that no longer
  // exist — drop it.
  if (!sig.ok() || *sig != built_for) return;

  auto sp = std::make_shared<const ColumnData>(std::move(column));
  Entry* e = EnsureEntryLocked(path, *sig);
  auto it = e->columns.find(path_str);
  if (it != e->columns.end()) {
    // Raced with another scan of the same file+path; keep the winner.
    return;
  }
  e->columns[path_str] = sp;
  e->bytes += sp->bytes;
  total_bytes_ += sp->bytes;
  ++epoch_;

  std::string sidecar;
  AppendHeader(kColMagic, *sig, &sidecar);
  AppendColumnPayload(*sp, &sidecar);
  WriteSidecar(SidecarBaseLocked(path) + "." + Fnv1aHex(path_str) + ".jcol",
               sidecar);
  EvictOverBudgetLocked();
}

uint64_t StorageManager::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

void StorageManager::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  total_bytes_ = 0;
  ++epoch_;
}

StorageManager::Totals StorageManager::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  Totals t;
  t.bytes = total_bytes_;
  t.files = entries_.size();
  return t;
}

uint64_t StorageManager::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_bytes_;
}

}  // namespace jpar
