#include "jsoniq/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace jpar {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view query) {
  std::vector<Token> tokens;
  size_t pos = 0;
  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos));
  };

  while (pos < query.size()) {
    char c = query[pos];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++pos;
      continue;
    }
    // XQuery comments: (: ... :) (may nest).
    if (c == '(' && pos + 1 < query.size() && query[pos + 1] == ':') {
      int depth = 1;
      pos += 2;
      while (pos + 1 < query.size() && depth > 0) {
        if (query[pos] == '(' && query[pos + 1] == ':') {
          ++depth;
          pos += 2;
        } else if (query[pos] == ':' && query[pos + 1] == ')') {
          --depth;
          pos += 2;
        } else {
          ++pos;
        }
      }
      if (depth > 0) return error("unterminated comment");
      continue;
    }

    Token token;
    token.offset = pos;
    if (IsNameStart(c)) {
      size_t start = pos;
      ++pos;
      while (pos < query.size()) {
        if (IsNameChar(query[pos])) {
          ++pos;
        } else if (query[pos] == '-' && pos + 1 < query.size() &&
                   IsNameStart(query[pos + 1])) {
          pos += 2;
        } else {
          break;
        }
      }
      token.kind = TokenKind::kName;
      token.text = std::string(query.substr(start, pos - start));
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '$') {
      ++pos;
      if (pos >= query.size() || !IsNameStart(query[pos])) {
        return error("expected variable name after '$'");
      }
      size_t start = pos;
      while (pos < query.size() && IsNameChar(query[pos])) ++pos;
      token.kind = TokenKind::kVariable;
      token.text = std::string(query.substr(start, pos - start));
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos;
      std::string value;
      bool closed = false;
      while (pos < query.size()) {
        char d = query[pos++];
        if (d == quote) {
          // Doubled quote is the XQuery escape.
          if (pos < query.size() && query[pos] == quote) {
            value.push_back(quote);
            ++pos;
            continue;
          }
          closed = true;
          break;
        }
        if (d == '\\' && pos < query.size()) {
          char e = query[pos++];
          switch (e) {
            case 'n':
              value.push_back('\n');
              break;
            case 't':
              value.push_back('\t');
              break;
            case '\\':
              value.push_back('\\');
              break;
            case '"':
              value.push_back('"');
              break;
            case '\'':
              value.push_back('\'');
              break;
            default:
              value.push_back(e);
          }
          continue;
        }
        value.push_back(d);
      }
      if (!closed) return error("unterminated string literal");
      token.kind = TokenKind::kString;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos;
      while (pos < query.size() &&
             std::isdigit(static_cast<unsigned char>(query[pos]))) {
        ++pos;
      }
      bool is_double = false;
      if (pos < query.size() && query[pos] == '.' && pos + 1 < query.size() &&
          std::isdigit(static_cast<unsigned char>(query[pos + 1]))) {
        is_double = true;
        ++pos;
        while (pos < query.size() &&
               std::isdigit(static_cast<unsigned char>(query[pos]))) {
          ++pos;
        }
      }
      if (pos < query.size() && (query[pos] == 'e' || query[pos] == 'E')) {
        is_double = true;
        ++pos;
        if (pos < query.size() && (query[pos] == '+' || query[pos] == '-')) {
          ++pos;
        }
        while (pos < query.size() &&
               std::isdigit(static_cast<unsigned char>(query[pos]))) {
          ++pos;
        }
      }
      std::string text(query.substr(start, pos - start));
      if (is_double) {
        token.kind = TokenKind::kDouble;
        token.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        errno = 0;
        token.kind = TokenKind::kInteger;
        token.int_value = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) return error("integer literal out of range");
      }
      tokens.push_back(std::move(token));
      continue;
    }

    auto single = [&](TokenKind kind) {
      token.kind = kind;
      ++pos;
      tokens.push_back(token);
    };
    switch (c) {
      case '(':
        single(TokenKind::kLParen);
        continue;
      case ')':
        single(TokenKind::kRParen);
        continue;
      case '{':
        single(TokenKind::kLBrace);
        continue;
      case '}':
        single(TokenKind::kRBrace);
        continue;
      case '[':
        single(TokenKind::kLBracket);
        continue;
      case ']':
        single(TokenKind::kRBracket);
        continue;
      case ',':
        single(TokenKind::kComma);
        continue;
      case '+':
        single(TokenKind::kPlus);
        continue;
      case '-':
        single(TokenKind::kMinus);
        continue;
      case '*':
        single(TokenKind::kStar);
        continue;
      case ':':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          token.kind = TokenKind::kBind;
          pos += 2;
          tokens.push_back(token);
        } else {
          single(TokenKind::kColon);
        }
        continue;
      case '=':
        single(TokenKind::kEq);
        continue;
      case '!':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          token.kind = TokenKind::kNe;
          pos += 2;
          tokens.push_back(token);
          continue;
        }
        return error("unexpected '!'");
      case '<':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          token.kind = TokenKind::kLe;
          pos += 2;
          tokens.push_back(token);
        } else {
          single(TokenKind::kLt);
        }
        continue;
      case '>':
        if (pos + 1 < query.size() && query[pos + 1] == '=') {
          token.kind = TokenKind::kGe;
          pos += 2;
          tokens.push_back(token);
        } else {
          single(TokenKind::kGt);
        }
        continue;
      default:
        return error(std::string("unexpected character '") + c + "'");
    }
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = query.size();
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace jpar
