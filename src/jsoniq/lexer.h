#ifndef JPAR_JSONIQ_LEXER_H_
#define JPAR_JSONIQ_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace jpar {

/// Token kinds of the JSONiq-extension-to-XQuery subset.
enum class TokenKind : uint8_t {
  kEnd,
  kName,       // identifier or keyword (may contain '-': json-doc)
  kVariable,   // $name
  kString,     // "..."
  kInteger,
  kDouble,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kColon,
  kBind,       // :=
  kPlus,
  kMinus,
  kStar,
  kEq,         // =
  kNe,         // !=
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // name / variable name (no '$') / string value
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;    // for error messages

  bool IsName(std::string_view name) const {
    return kind == TokenKind::kName && text == name;
  }
};

/// Tokenizes a whole query. Identifiers may contain interior hyphens
/// when the next character is a letter ("year-from-dateTime"), which is
/// how XQuery distinguishes them from subtraction; `a - b` needs spaces,
/// as in the paper's queries.
Result<std::vector<Token>> Tokenize(std::string_view query);

}  // namespace jpar

#endif  // JPAR_JSONIQ_LEXER_H_
