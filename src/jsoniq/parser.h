#ifndef JPAR_JSONIQ_PARSER_H_
#define JPAR_JSONIQ_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "jsoniq/ast.h"

namespace jpar {

/// Parses a JSONiq-extension query into an AST. Grammar subset:
///
///   Expr        := FLWOR | OrExpr
///   FLWOR       := (ForClause | LetClause)+ WhereClause? GroupByClause?
///                  'return' ExprSingle
///   ForClause   := 'for' '$'name 'in' ExprSingle (',' '$'name 'in' ...)*
///   LetClause   := 'let' '$'name ':=' ExprSingle (',' ...)*
///   WhereClause := 'where' ExprSingle
///   GroupBy     := 'group' 'by' '$'name ':=' ExprSingle (',' ...)*
///   OrExpr      := AndExpr ('or' AndExpr)*
///   AndExpr     := CmpExpr ('and' CmpExpr)*
///   CmpExpr     := AddExpr (('eq'|'ne'|'lt'|'le'|'gt'|'ge'|'='|'!='|'<'|
///                  '<='|'>'|'>=') AddExpr)?
///   AddExpr     := MulExpr (('+'|'-') MulExpr)*
///   MulExpr     := UnaryExpr (('*'|'div'|'mod') UnaryExpr)*
///   UnaryExpr   := '-' UnaryExpr | PostfixExpr
///   PostfixExpr := Primary ( '(' ')' | '(' ExprSingle ')' )*
///   Primary     := literal | '$'name | name '(' args ')' | '(' Expr ')'
///                | '[' elems ']' | '{' k ':' v , ... '}'
Result<AstPtr> ParseQuery(std::string_view query);

}  // namespace jpar

#endif  // JPAR_JSONIQ_PARSER_H_
