#ifndef JPAR_JSONIQ_TRANSLATOR_H_
#define JPAR_JSONIQ_TRANSLATOR_H_

#include "algebra/logical_plan.h"
#include "common/result.h"
#include "jsoniq/ast.h"

namespace jpar {

/// Translates a JSONiq AST into the *naive* logical plan — deliberately
/// the unoptimized shapes of the paper's Figures 3, 5, and 9:
///   * collection paths become ASSIGN collection + UNNEST iterate,
///   * keys-or-members becomes ASSIGN keys-or-members + UNNEST iterate
///     (the two-step evaluation the path rules later fuse),
///   * json-doc arguments are wrapped in promote(data(...)),
///   * group by materializes per-group sequences via AGGREGATE sequence
///     and re-exposes grouped variables through ASSIGN treat.
/// The rewrite engine (algebra/rewriter.h) then performs exactly the
/// transformations of the paper's §4.
Result<LogicalPlan> TranslateToLogical(const AstPtr& query);

}  // namespace jpar

#endif  // JPAR_JSONIQ_TRANSLATOR_H_
