#include "jsoniq/parser.h"

#include <utility>

#include "jsoniq/lexer.h"

namespace jpar {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstPtr> Parse() {
    JPAR_ASSIGN_OR_RETURN(AstPtr expr, ParseExpr());
    if (Peek().kind != TokenKind::kEnd) {
      return ErrorHere("trailing tokens after query");
    }
    return expr;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Consume(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeName(std::string_view name) {
    if (Peek().IsName(name)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ErrorHere(const std::string& msg) const {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().offset));
  }

  Result<AstPtr> ParseExpr() {
    if (Peek().IsName("for") || Peek().IsName("let")) return ParseFlwor();
    return ParseOrExpr();
  }

  Result<AstPtr> ParseFlwor() {
    auto flwor = std::make_shared<AstNode>();
    flwor->kind = AstNode::Kind::kFlwor;
    // for / let clauses, possibly interleaved.
    while (true) {
      if (ConsumeName("for")) {
        FlworClause clause;
        clause.type = FlworClause::Type::kFor;
        do {
          if (Peek().kind != TokenKind::kVariable) {
            return ErrorHere("expected $variable after 'for'");
          }
          std::string var = Advance().text;
          if (!ConsumeName("in")) return ErrorHere("expected 'in'");
          JPAR_ASSIGN_OR_RETURN(AstPtr src, ParseExpr());
          clause.bindings.emplace_back(std::move(var), std::move(src));
        } while (Consume(TokenKind::kComma));
        flwor->clauses.push_back(std::move(clause));
        continue;
      }
      if (ConsumeName("let")) {
        FlworClause clause;
        clause.type = FlworClause::Type::kLet;
        do {
          if (Peek().kind != TokenKind::kVariable) {
            return ErrorHere("expected $variable after 'let'");
          }
          std::string var = Advance().text;
          if (!Consume(TokenKind::kBind)) return ErrorHere("expected ':='");
          JPAR_ASSIGN_OR_RETURN(AstPtr value, ParseExpr());
          clause.bindings.emplace_back(std::move(var), std::move(value));
        } while (Consume(TokenKind::kComma));
        flwor->clauses.push_back(std::move(clause));
        continue;
      }
      break;
    }
    if (ConsumeName("where")) {
      FlworClause clause;
      clause.type = FlworClause::Type::kWhere;
      JPAR_ASSIGN_OR_RETURN(clause.cond, ParseExpr());
      flwor->clauses.push_back(std::move(clause));
    }
    if (ConsumeName("group")) {
      if (!ConsumeName("by")) return ErrorHere("expected 'by' after 'group'");
      FlworClause clause;
      clause.type = FlworClause::Type::kGroupBy;
      do {
        if (Peek().kind != TokenKind::kVariable) {
          return ErrorHere("expected $variable in group by");
        }
        std::string var = Advance().text;
        if (!Consume(TokenKind::kBind)) return ErrorHere("expected ':='");
        JPAR_ASSIGN_OR_RETURN(AstPtr key, ParseExpr());
        clause.bindings.emplace_back(std::move(var), std::move(key));
      } while (Consume(TokenKind::kComma));
      flwor->clauses.push_back(std::move(clause));
    }
    // A where clause may also follow group by (post-grouping filter).
    if (ConsumeName("where")) {
      FlworClause clause;
      clause.type = FlworClause::Type::kWhere;
      JPAR_ASSIGN_OR_RETURN(clause.cond, ParseExpr());
      flwor->clauses.push_back(std::move(clause));
    }
    if (Peek().IsName("order") || Peek().IsName("stable")) {
      ConsumeName("stable");
      if (!ConsumeName("order") || !ConsumeName("by")) {
        return ErrorHere("expected 'order by'");
      }
      FlworClause clause;
      clause.type = FlworClause::Type::kOrderBy;
      do {
        JPAR_ASSIGN_OR_RETURN(AstPtr key, ParseExpr());
        bool desc = false;
        if (ConsumeName("descending")) {
          desc = true;
        } else {
          ConsumeName("ascending");
        }
        clause.bindings.emplace_back(std::string(), std::move(key));
        clause.descending.push_back(desc ? 1 : 0);
      } while (Consume(TokenKind::kComma));
      flwor->clauses.push_back(std::move(clause));
    }
    if (!ConsumeName("return")) return ErrorHere("expected 'return'");
    JPAR_ASSIGN_OR_RETURN(flwor->return_expr, ParseExpr());
    return AstPtr(flwor);
  }

  Result<AstPtr> ParseOrExpr() {
    JPAR_ASSIGN_OR_RETURN(AstPtr lhs, ParseAndExpr());
    while (Peek().IsName("or")) {
      Advance();
      JPAR_ASSIGN_OR_RETURN(AstPtr rhs, ParseAndExpr());
      lhs = AstNode::Binary("or", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstPtr> ParseAndExpr() {
    JPAR_ASSIGN_OR_RETURN(AstPtr lhs, ParseCmpExpr());
    while (Peek().IsName("and")) {
      Advance();
      JPAR_ASSIGN_OR_RETURN(AstPtr rhs, ParseCmpExpr());
      lhs = AstNode::Binary("and", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<AstPtr> ParseCmpExpr() {
    JPAR_ASSIGN_OR_RETURN(AstPtr lhs, ParseAddExpr());
    std::string op;
    const Token& t = Peek();
    if (t.IsName("eq") || t.IsName("ne") || t.IsName("lt") || t.IsName("le") ||
        t.IsName("gt") || t.IsName("ge")) {
      op = t.text;
    } else {
      switch (t.kind) {
        case TokenKind::kEq:
          op = "eq";
          break;
        case TokenKind::kNe:
          op = "ne";
          break;
        case TokenKind::kLt:
          op = "lt";
          break;
        case TokenKind::kLe:
          op = "le";
          break;
        case TokenKind::kGt:
          op = "gt";
          break;
        case TokenKind::kGe:
          op = "ge";
          break;
        default:
          return lhs;
      }
    }
    Advance();
    JPAR_ASSIGN_OR_RETURN(AstPtr rhs, ParseAddExpr());
    return AstNode::Binary(op, std::move(lhs), std::move(rhs));
  }

  Result<AstPtr> ParseAddExpr() {
    JPAR_ASSIGN_OR_RETURN(AstPtr lhs, ParseMulExpr());
    while (true) {
      if (Consume(TokenKind::kPlus)) {
        JPAR_ASSIGN_OR_RETURN(AstPtr rhs, ParseMulExpr());
        lhs = AstNode::Binary("add", std::move(lhs), std::move(rhs));
      } else if (Consume(TokenKind::kMinus)) {
        JPAR_ASSIGN_OR_RETURN(AstPtr rhs, ParseMulExpr());
        lhs = AstNode::Binary("sub", std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<AstPtr> ParseMulExpr() {
    JPAR_ASSIGN_OR_RETURN(AstPtr lhs, ParseUnaryExpr());
    while (true) {
      if (Consume(TokenKind::kStar)) {
        JPAR_ASSIGN_OR_RETURN(AstPtr rhs, ParseUnaryExpr());
        lhs = AstNode::Binary("mul", std::move(lhs), std::move(rhs));
      } else if (ConsumeName("div")) {
        JPAR_ASSIGN_OR_RETURN(AstPtr rhs, ParseUnaryExpr());
        lhs = AstNode::Binary("div", std::move(lhs), std::move(rhs));
      } else if (ConsumeName("mod")) {
        JPAR_ASSIGN_OR_RETURN(AstPtr rhs, ParseUnaryExpr());
        lhs = AstNode::Binary("mod", std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<AstPtr> ParseUnaryExpr() {
    if (Consume(TokenKind::kMinus)) {
      JPAR_ASSIGN_OR_RETURN(AstPtr inner, ParseUnaryExpr());
      auto n = std::make_shared<AstNode>();
      n->kind = AstNode::Kind::kUnaryMinus;
      n->args.push_back(std::move(inner));
      return AstPtr(n);
    }
    return ParsePostfixExpr();
  }

  Result<AstPtr> ParsePostfixExpr() {
    JPAR_ASSIGN_OR_RETURN(AstPtr primary, ParsePrimary());
    while (Peek().kind == TokenKind::kLParen) {
      Advance();
      auto call = std::make_shared<AstNode>();
      call->kind = AstNode::Kind::kDynCall;
      call->args.push_back(std::move(primary));
      if (!Consume(TokenKind::kRParen)) {
        JPAR_ASSIGN_OR_RETURN(AstPtr spec, ParseExpr());
        call->args.push_back(std::move(spec));
        if (!Consume(TokenKind::kRParen)) {
          return ErrorHere("expected ')' after navigation step");
        }
      }
      primary = call;
    }
    return primary;
  }

  Result<AstPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kString: {
        Advance();
        return AstNode::Literal(Item::String(t.text));
      }
      case TokenKind::kInteger: {
        Advance();
        return AstNode::Literal(Item::Int64(t.int_value));
      }
      case TokenKind::kDouble: {
        Advance();
        return AstNode::Literal(Item::Double(t.double_value));
      }
      case TokenKind::kVariable: {
        Advance();
        return AstNode::Var(t.text);
      }
      case TokenKind::kLParen: {
        Advance();
        JPAR_ASSIGN_OR_RETURN(AstPtr inner, ParseExpr());
        if (!Consume(TokenKind::kRParen)) return ErrorHere("expected ')'");
        return inner;
      }
      case TokenKind::kLBracket: {
        Advance();
        auto ctor = std::make_shared<AstNode>();
        ctor->kind = AstNode::Kind::kArrayCtor;
        if (!Consume(TokenKind::kRBracket)) {
          do {
            JPAR_ASSIGN_OR_RETURN(AstPtr elem, ParseExpr());
            ctor->args.push_back(std::move(elem));
          } while (Consume(TokenKind::kComma));
          if (!Consume(TokenKind::kRBracket)) {
            return ErrorHere("expected ']'");
          }
        }
        return AstPtr(ctor);
      }
      case TokenKind::kLBrace: {
        Advance();
        auto ctor = std::make_shared<AstNode>();
        ctor->kind = AstNode::Kind::kObjectCtor;
        if (!Consume(TokenKind::kRBrace)) {
          do {
            JPAR_ASSIGN_OR_RETURN(AstPtr key, ParseExpr());
            if (!Consume(TokenKind::kColon)) return ErrorHere("expected ':'");
            JPAR_ASSIGN_OR_RETURN(AstPtr value, ParseExpr());
            ctor->args.push_back(std::move(key));
            ctor->args.push_back(std::move(value));
          } while (Consume(TokenKind::kComma));
          if (!Consume(TokenKind::kRBrace)) return ErrorHere("expected '}'");
        }
        return AstPtr(ctor);
      }
      case TokenKind::kName: {
        // Literals true/false/null, or a function call.
        if (t.IsName("true") && Peek(1).kind != TokenKind::kLParen) {
          Advance();
          return AstNode::Literal(Item::Boolean(true));
        }
        if (t.IsName("false") && Peek(1).kind != TokenKind::kLParen) {
          Advance();
          return AstNode::Literal(Item::Boolean(false));
        }
        if (t.IsName("null") && Peek(1).kind != TokenKind::kLParen) {
          Advance();
          return AstNode::Literal(Item::Null());
        }
        if (Peek(1).kind != TokenKind::kLParen) {
          return ErrorHere("unexpected name '" + t.text + "'");
        }
        std::string name = Advance().text;
        Advance();  // '('
        std::vector<AstPtr> args;
        if (!Consume(TokenKind::kRParen)) {
          do {
            JPAR_ASSIGN_OR_RETURN(AstPtr arg, ParseExpr());
            args.push_back(std::move(arg));
          } while (Consume(TokenKind::kComma));
          if (!Consume(TokenKind::kRParen)) {
            return ErrorHere("expected ')' after function arguments");
          }
        }
        return AstNode::Call(std::move(name), std::move(args));
      }
      default:
        return ErrorHere("unexpected token");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

bool AstUsesVar(const AstPtr& node, const std::string& name) {
  if (node == nullptr) return false;
  if (node->kind == AstNode::Kind::kVarRef) return node->name == name;
  for (const AstPtr& a : node->args) {
    if (AstUsesVar(a, name)) return true;
  }
  for (const FlworClause& c : node->clauses) {
    if (AstUsesVar(c.cond, name)) return true;
    for (const auto& [var, expr] : c.bindings) {
      if (AstUsesVar(expr, name)) return true;
    }
  }
  return AstUsesVar(node->return_expr, name);
}

Result<AstPtr> ParseQuery(std::string_view query) {
  JPAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace jpar
