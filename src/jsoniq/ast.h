#ifndef JPAR_JSONIQ_AST_H_
#define JPAR_JSONIQ_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "json/item.h"

namespace jpar {

struct AstNode;
using AstPtr = std::shared_ptr<AstNode>;

/// One FLWOR clause. `bindings` carries (variable name, expression)
/// pairs for for/let/group-by; `cond` carries the where predicate;
/// order-by keys live in `bindings` (empty names) with a parallel
/// `descending` flag per key.
struct FlworClause {
  enum class Type : uint8_t { kFor, kLet, kWhere, kGroupBy, kOrderBy };

  Type type = Type::kFor;
  std::vector<std::pair<std::string, AstPtr>> bindings;
  std::vector<uint8_t> descending;  // kOrderBy, parallel to bindings
  AstPtr cond;
};

/// Abstract syntax of the JSONiq subset. One node type with
/// kind-dependent fields (the translator pattern-matches on kinds).
struct AstNode {
  enum class Kind : uint8_t {
    kLiteral,       // literal
    kVarRef,        // name
    kFunctionCall,  // name(args...)
    kDynCall,       // args[0](args[1]) value step, or args[0]() when
                    // args.size() == 1 (keys-or-members)
    kBinaryOp,      // name in {eq,ne,lt,le,gt,ge,and,or,add,sub,mul,div,mod}
    kUnaryMinus,    // -args[0]
    kFlwor,         // clauses + return_expr
    kArrayCtor,     // [args...]
    kObjectCtor,    // {k1: v1, ...}: args alternate key-expr, value-expr
  };

  Kind kind = Kind::kLiteral;
  Item literal;
  std::string name;
  std::vector<AstPtr> args;
  std::vector<FlworClause> clauses;  // kFlwor
  AstPtr return_expr;                // kFlwor

  static AstPtr Literal(Item value) {
    auto n = std::make_shared<AstNode>();
    n->kind = Kind::kLiteral;
    n->literal = std::move(value);
    return n;
  }
  static AstPtr Var(std::string name) {
    auto n = std::make_shared<AstNode>();
    n->kind = Kind::kVarRef;
    n->name = std::move(name);
    return n;
  }
  static AstPtr Call(std::string name, std::vector<AstPtr> args) {
    auto n = std::make_shared<AstNode>();
    n->kind = Kind::kFunctionCall;
    n->name = std::move(name);
    n->args = std::move(args);
    return n;
  }
  static AstPtr Binary(std::string op, AstPtr lhs, AstPtr rhs) {
    auto n = std::make_shared<AstNode>();
    n->kind = Kind::kBinaryOp;
    n->name = std::move(op);
    n->args = {std::move(lhs), std::move(rhs)};
    return n;
  }
};

/// True if the subtree references variable `name` (ignores shadowing —
/// fine for the paper's query shapes, where names are unique).
bool AstUsesVar(const AstPtr& node, const std::string& name);

}  // namespace jpar

#endif  // JPAR_JSONIQ_AST_H_
