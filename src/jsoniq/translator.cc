#include "jsoniq/translator.h"

#include <map>
#include <utility>

namespace jpar {

namespace {

/// Builtins accepted as named function calls in queries.
Result<Builtin> LookupFunction(const std::string& name) {
  static const std::pair<const char*, Builtin> kTable[] = {
      {"count", Builtin::kCount},
      {"sum", Builtin::kSum},
      {"avg", Builtin::kAvg},
      {"min", Builtin::kMin},
      {"max", Builtin::kMax},
      {"not", Builtin::kNot},
      {"data", Builtin::kData},
      {"dateTime", Builtin::kDateTime},
      {"year-from-dateTime", Builtin::kYearFromDateTime},
      {"month-from-dateTime", Builtin::kMonthFromDateTime},
      {"day-from-dateTime", Builtin::kDayFromDateTime},
      {"collection", Builtin::kCollection},
      {"json-doc", Builtin::kJsonDoc},
      {"keys-or-members", Builtin::kKeysOrMembers},
      {"concat", Builtin::kConcat},
      {"substring", Builtin::kSubstring},
      {"string-length", Builtin::kStringLength},
      {"contains", Builtin::kContains},
      {"starts-with", Builtin::kStartsWith},
      {"upper-case", Builtin::kUpperCase},
      {"lower-case", Builtin::kLowerCase},
      {"string", Builtin::kStringFn},
      {"abs", Builtin::kAbs},
      {"round", Builtin::kRound},
      {"floor", Builtin::kFloor},
      {"ceiling", Builtin::kCeiling},
      {"empty", Builtin::kEmpty},
      {"exists", Builtin::kExists},
      {"distinct-values", Builtin::kDistinctValues},
      {"boolean", Builtin::kBooleanFn},
  };
  for (const auto& [n, fn] : kTable) {
    if (name == n) return fn;
  }
  return Status::Unsupported("unknown function: " + name);
}

Result<Builtin> LookupBinaryOp(const std::string& name) {
  static const std::pair<const char*, Builtin> kTable[] = {
      {"eq", Builtin::kEq},   {"ne", Builtin::kNe},  {"lt", Builtin::kLt},
      {"le", Builtin::kLe},   {"gt", Builtin::kGt},  {"ge", Builtin::kGe},
      {"and", Builtin::kAnd}, {"or", Builtin::kOr},  {"add", Builtin::kAdd},
      {"sub", Builtin::kSub}, {"mul", Builtin::kMul}, {"div", Builtin::kDiv},
      {"mod", Builtin::kMod},
  };
  for (const auto& [n, fn] : kTable) {
    if (name == n) return fn;
  }
  return Status::Internal("unknown binary operator: " + name);
}

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max";
}

AggKind AggKindForName(const std::string& name) {
  if (name == "count") return AggKind::kCount;
  if (name == "sum") return AggKind::kSum;
  if (name == "avg") return AggKind::kAvg;
  if (name == "min") return AggKind::kMin;
  return AggKind::kMax;
}

class Translator {
 public:
  Result<LogicalPlan> Translate(const AstPtr& query) {
    cur_ = MakeOp(LOpKind::kEmptyTupleSource);
    VarId result = kNoVar;
    if (query->kind == AstNode::Kind::kFlwor) {
      JPAR_ASSIGN_OR_RETURN(result, TranslateFlworIntoChain(query));
    } else {
      JPAR_ASSIGN_OR_RETURN(result, TranslateTopExpr(query));
    }
    auto distribute = MakeOp(LOpKind::kDistributeResult);
    distribute->result_var = result;
    distribute->inputs.push_back(cur_);
    LogicalPlan plan;
    plan.root = distribute;
    return plan;
  }

 private:
  struct Binding {
    VarId var = kNoVar;
    bool grouped = false;      // var holds a group-by sequence
    VarId treat_var = kNoVar;  // cached ASSIGN treat output
  };

  static LOpPtr MakeOp(LOpKind kind) {
    auto op = std::make_shared<LOp>();
    op->kind = kind;
    return op;
  }

  VarId NewVar() { return next_var_++; }

  /// Appends a unary operator above the current chain top.
  void Append(LOpPtr op) {
    op->inputs.push_back(cur_);
    cur_ = std::move(op);
  }

  VarId EmitAssign(LExprPtr expr) {
    auto assign = MakeOp(LOpKind::kAssign);
    assign->out_var = NewVar();
    assign->expr = std::move(expr);
    VarId var = assign->out_var;
    Append(std::move(assign));
    return var;
  }

  VarId EmitUnnestIterate(LExprPtr expr) {
    auto unnest = MakeOp(LOpKind::kUnnest);
    unnest->out_var = NewVar();
    unnest->expr = LExpr::Fn(Builtin::kIterate, {std::move(expr)});
    VarId var = unnest->out_var;
    Append(std::move(unnest));
    return var;
  }

  /// Resolves a variable by name; grouped variables are re-exposed via
  /// a cached ASSIGN treat (paper Fig. 9).
  Result<VarId> ResolveVar(const std::string& name) {
    auto it = env_.find(name);
    if (it == env_.end()) {
      return Status::NotFound("unbound variable $" + name);
    }
    Binding& b = it->second;
    if (!b.grouped) return b.var;
    if (b.treat_var == kNoVar) {
      auto assign = MakeOp(LOpKind::kAssign);
      assign->out_var = NewVar();
      assign->expr = LExpr::Fn(Builtin::kTreat, {LExpr::Var(b.var)});
      b.treat_var = assign->out_var;
      Append(std::move(assign));
    }
    return b.treat_var;
  }

  /// True when the expression never reads in-scope variables (so it can
  /// run as an independent join branch).
  bool IsIndependent(const AstPtr& ast) const {
    for (const auto& [name, binding] : env_) {
      (void)binding;
      if (AstUsesVar(ast, name)) return false;
    }
    return true;
  }

  /// Translates a for-clause source and returns the variable bound per
  /// iteration, following the paper's naive shapes.
  Result<VarId> TranslateForSource(const AstPtr& ast) {
    // Decompose the DynCall spine into base + navigation steps.
    std::vector<const AstNode*> steps;  // outermost first
    const AstNode* node = ast.get();
    while (node->kind == AstNode::Kind::kDynCall) {
      steps.push_back(node);
      node = node->args[0].get();
    }
    std::reverse(steps.begin(), steps.end());

    // Translate the base into a current pending expression.
    LExprPtr pending;
    bool ends_with_unnest = false;
    if (node->kind == AstNode::Kind::kFunctionCall &&
        node->name == "collection") {
      if (node->args.size() != 1) {
        return Status::InvalidArgument("collection() takes one argument");
      }
      JPAR_ASSIGN_OR_RETURN(LExprPtr arg, TranslateScalar(node->args[0]));
      VarId c = EmitAssign(LExpr::Fn(Builtin::kCollection, {std::move(arg)}));
      VarId f = EmitUnnestIterate(LExpr::Var(c));
      pending = LExpr::Var(f);
      ends_with_unnest = true;
    } else if (node->kind == AstNode::Kind::kFunctionCall &&
               node->name == "json-doc") {
      if (node->args.size() != 1) {
        return Status::InvalidArgument("json-doc() takes one argument");
      }
      JPAR_ASSIGN_OR_RETURN(LExprPtr arg, TranslateScalar(node->args[0]));
      // Paper Fig. 3: promote/data ensure the argument is a string.
      pending = LExpr::Fn(
          Builtin::kJsonDoc,
          {LExpr::Fn(Builtin::kPromote,
                     {LExpr::Fn(Builtin::kData, {std::move(arg)})})});
    } else if (node->kind == AstNode::Kind::kVarRef) {
      JPAR_ASSIGN_OR_RETURN(VarId v, ResolveVar(node->name));
      pending = LExpr::Var(v);
    } else {
      // Arbitrary expression source.
      AstPtr base = steps.empty()
                        ? ast
                        : std::const_pointer_cast<AstNode>(
                              std::shared_ptr<const AstNode>(ast, node));
      JPAR_ASSIGN_OR_RETURN(pending, TranslateScalar(base));
    }

    // Apply navigation steps.
    for (const AstNode* step : steps) {
      if (step->args.size() == 1) {
        // keys-or-members: the paper's two-step form (ASSIGN + UNNEST).
        VarId s = EmitAssign(
            LExpr::Fn(Builtin::kKeysOrMembers, {std::move(pending)}));
        VarId u = EmitUnnestIterate(LExpr::Var(s));
        pending = LExpr::Var(u);
        ends_with_unnest = true;
      } else {
        JPAR_ASSIGN_OR_RETURN(LExprPtr spec, TranslateScalar(step->args[1]));
        pending =
            LExpr::Fn(Builtin::kValue, {std::move(pending), std::move(spec)});
        ends_with_unnest = false;
      }
    }

    if (ends_with_unnest && pending->IsVarRef()) {
      return pending->var;
    }
    // Bind via a final iterate so the for iterates the path's value.
    if (!pending->IsVarRef()) {
      VarId a = EmitAssign(std::move(pending));
      pending = LExpr::Var(a);
    }
    return EmitUnnestIterate(std::move(pending));
  }

  /// Translates FLWOR clauses into the current chain and returns the
  /// result variable of the return expression.
  Result<VarId> TranslateFlworIntoChain(const AstPtr& flwor) {
    for (size_t ci = 0; ci < flwor->clauses.size(); ++ci) {
      const FlworClause& clause = flwor->clauses[ci];
      switch (clause.type) {
        case FlworClause::Type::kFor: {
          for (const auto& [name, source] : clause.bindings) {
            if (has_source_ && IsIndependent(source) &&
                ReadsDataSource(source)) {
              // Independent data source: a join branch (Q2).
              LOpPtr saved = cur_;
              cur_ = MakeOp(LOpKind::kEmptyTupleSource);
              JPAR_ASSIGN_OR_RETURN(VarId v, TranslateForSource(source));
              LOpPtr branch = cur_;
              auto join = MakeOp(LOpKind::kJoin);
              join->inputs.push_back(saved);
              join->inputs.push_back(branch);
              cur_ = join;
              env_[name] = Binding{v, false, kNoVar};
            } else {
              JPAR_ASSIGN_OR_RETURN(VarId v, TranslateForSource(source));
              env_[name] = Binding{v, false, kNoVar};
            }
            if (ReadsDataSource(source)) has_source_ = true;
          }
          break;
        }
        case FlworClause::Type::kLet: {
          for (const auto& [name, value] : clause.bindings) {
            JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(value));
            VarId v = EmitAssign(std::move(e));
            env_[name] = Binding{v, false, kNoVar};
          }
          break;
        }
        case FlworClause::Type::kWhere: {
          JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(clause.cond));
          auto select = MakeOp(LOpKind::kSelect);
          select->expr = std::move(e);
          Append(std::move(select));
          break;
        }
        case FlworClause::Type::kGroupBy: {
          JPAR_RETURN_NOT_OK(TranslateGroupBy(flwor, ci));
          break;
        }
        case FlworClause::Type::kOrderBy: {
          auto orderby = MakeOp(LOpKind::kOrderBy);
          for (const auto& [unused, key_expr] : clause.bindings) {
            (void)unused;
            JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(key_expr));
            orderby->keys.push_back({kNoVar, std::move(e)});
          }
          orderby->sort_descending = clause.descending;
          Append(std::move(orderby));
          break;
        }
      }
    }
    // Return expression.
    JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(flwor->return_expr));
    if (e->IsVarRef()) return e->var;
    return EmitAssign(std::move(e));
  }

  Status TranslateGroupBy(const AstPtr& flwor, size_t clause_index) {
    const FlworClause& clause = flwor->clauses[clause_index];
    auto groupby = MakeOp(LOpKind::kGroupBy);

    // Grouping keys evaluate in the pre-grouping scope.
    std::vector<std::pair<std::string, VarId>> key_bindings;
    for (const auto& [name, key_expr] : clause.bindings) {
      JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(key_expr));
      VarId kv = NewVar();
      groupby->keys.push_back({kv, std::move(e)});
      key_bindings.emplace_back(name, kv);
    }

    // Variables still needed afterwards are materialized into per-group
    // sequences (paper Fig. 9: AGGREGATE sequence).
    auto nts = MakeOp(LOpKind::kNestedTupleSource);
    auto aggregate = MakeOp(LOpKind::kAggregate);
    aggregate->inputs.push_back(nts);

    std::map<std::string, Binding> new_env;
    for (auto& [name, binding] : env_) {
      bool used_later = AstUsesVar(flwor->return_expr, name);
      for (size_t cj = clause_index + 1;
           !used_later && cj < flwor->clauses.size(); ++cj) {
        const FlworClause& later = flwor->clauses[cj];
        if (AstUsesVar(later.cond, name)) used_later = true;
        for (const auto& [n2, e2] : later.bindings) {
          (void)n2;
          if (AstUsesVar(e2, name)) used_later = true;
        }
      }
      if (!used_later) continue;
      VarId seq = NewVar();
      aggregate->aggs.push_back(
          {seq, AggKind::kSequence, LExpr::Var(binding.var)});
      new_env[name] = Binding{seq, true, kNoVar};
    }
    groupby->nested = aggregate;
    for (const auto& [name, kv] : key_bindings) {
      new_env[name] = Binding{kv, false, kNoVar};
    }
    env_ = std::move(new_env);
    Append(std::move(groupby));
    return Status::OK();
  }

  /// True when the AST reads collection()/json-doc() somewhere.
  static bool ReadsDataSource(const AstPtr& ast) {
    if (ast == nullptr) return false;
    if (ast->kind == AstNode::Kind::kFunctionCall &&
        (ast->name == "collection" || ast->name == "json-doc")) {
      return true;
    }
    for (const AstPtr& a : ast->args) {
      if (ReadsDataSource(a)) return true;
    }
    for (const FlworClause& c : ast->clauses) {
      if (ReadsDataSource(c.cond)) return true;
      for (const auto& [n, e] : c.bindings) {
        (void)n;
        if (ReadsDataSource(e)) return true;
      }
    }
    return ReadsDataSource(ast->return_expr);
  }

  /// Scalar translation: produces an expression over the current schema;
  /// may append ASSIGN treat / SUBPLAN operators to the chain.
  Result<LExprPtr> TranslateScalar(const AstPtr& ast) {
    switch (ast->kind) {
      case AstNode::Kind::kLiteral:
        return LExpr::Constant(ast->literal);
      case AstNode::Kind::kVarRef: {
        JPAR_ASSIGN_OR_RETURN(VarId v, ResolveVar(ast->name));
        return LExpr::Var(v);
      }
      case AstNode::Kind::kDynCall: {
        JPAR_ASSIGN_OR_RETURN(LExprPtr target, TranslateScalar(ast->args[0]));
        if (ast->args.size() == 1) {
          return LExpr::Fn(Builtin::kKeysOrMembers, {std::move(target)});
        }
        JPAR_ASSIGN_OR_RETURN(LExprPtr spec, TranslateScalar(ast->args[1]));
        return LExpr::Fn(Builtin::kValue,
                         {std::move(target), std::move(spec)});
      }
      case AstNode::Kind::kBinaryOp: {
        JPAR_ASSIGN_OR_RETURN(Builtin fn, LookupBinaryOp(ast->name));
        JPAR_ASSIGN_OR_RETURN(LExprPtr lhs, TranslateScalar(ast->args[0]));
        JPAR_ASSIGN_OR_RETURN(LExprPtr rhs, TranslateScalar(ast->args[1]));
        return LExpr::Fn(fn, {std::move(lhs), std::move(rhs)});
      }
      case AstNode::Kind::kUnaryMinus: {
        JPAR_ASSIGN_OR_RETURN(LExprPtr inner, TranslateScalar(ast->args[0]));
        return LExpr::Fn(Builtin::kNeg, {std::move(inner)});
      }
      case AstNode::Kind::kArrayCtor: {
        std::vector<LExprPtr> elems;
        for (const AstPtr& a : ast->args) {
          JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(a));
          elems.push_back(std::move(e));
        }
        return LExpr::Fn(Builtin::kArrayConstructor, std::move(elems));
      }
      case AstNode::Kind::kObjectCtor: {
        std::vector<LExprPtr> kv;
        for (const AstPtr& a : ast->args) {
          JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(a));
          kv.push_back(std::move(e));
        }
        return LExpr::Fn(Builtin::kObjectConstructor, std::move(kv));
      }
      case AstNode::Kind::kFunctionCall: {
        if (IsAggregateName(ast->name) && ast->args.size() == 1 &&
            ast->args[0]->kind == AstNode::Kind::kFlwor) {
          return TranslateAggregateOverFlwor(ast->name, ast->args[0]);
        }
        JPAR_ASSIGN_OR_RETURN(Builtin fn, LookupFunction(ast->name));
        std::vector<LExprPtr> args;
        for (const AstPtr& a : ast->args) {
          JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(a));
          args.push_back(std::move(e));
        }
        return LExpr::Fn(fn, std::move(args));
      }
      case AstNode::Kind::kFlwor:
        return Status::Unsupported(
            "FLWOR expressions are supported at the top level, inside "
            "aggregate functions, and as for-sources only");
    }
    return Status::Internal("unknown AST node kind");
  }

  /// agg(for $j in $x ... return E) in scalar position: a SUBPLAN with
  /// a nested UNNEST + AGGREGATE (paper Fig. 11 / query Q1b).
  Result<LExprPtr> TranslateAggregateOverFlwor(const std::string& agg_name,
                                               const AstPtr& flwor) {
    if (!flwor->clauses.empty() &&
        flwor->clauses[0].type == FlworClause::Type::kFor &&
        IsIndependent(flwor->clauses[0].bindings[0].second)) {
      return Status::Unsupported(
          "aggregates over independent FLWORs are supported at the top "
          "level only");
    }
    LOpPtr saved = cur_;
    cur_ = MakeOp(LOpKind::kNestedTupleSource);
    // Nested clauses run per outer tuple.
    for (const FlworClause& clause : flwor->clauses) {
      switch (clause.type) {
        case FlworClause::Type::kFor:
          for (const auto& [name, source] : clause.bindings) {
            JPAR_ASSIGN_OR_RETURN(VarId v, TranslateForSource(source));
            env_[name] = Binding{v, false, kNoVar};
          }
          break;
        case FlworClause::Type::kLet:
          for (const auto& [name, value] : clause.bindings) {
            JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(value));
            VarId v = EmitAssign(std::move(e));
            env_[name] = Binding{v, false, kNoVar};
          }
          break;
        case FlworClause::Type::kWhere: {
          JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(clause.cond));
          auto select = MakeOp(LOpKind::kSelect);
          select->expr = std::move(e);
          Append(std::move(select));
          break;
        }
        case FlworClause::Type::kGroupBy:
          return Status::Unsupported("group by inside nested aggregates");
        case FlworClause::Type::kOrderBy:
          // Ordering inside an aggregate is a no-op (aggregates are
          // order-insensitive); skip it.
          break;
      }
    }
    JPAR_ASSIGN_OR_RETURN(LExprPtr ret, TranslateScalar(flwor->return_expr));
    auto aggregate = MakeOp(LOpKind::kAggregate);
    VarId out = NewVar();
    aggregate->aggs.push_back({out, AggKindForName(agg_name), std::move(ret)});
    aggregate->inputs.push_back(cur_);

    auto subplan = MakeOp(LOpKind::kSubplan);
    subplan->nested = aggregate;
    cur_ = saved;
    Append(std::move(subplan));
    return LExpr::Var(out);
  }

  /// Top-level non-FLWOR queries: either a streaming path expression
  /// (paper Listing 2) or an aggregate over an independent FLWOR (Q2).
  Result<VarId> TranslateTopExpr(const AstPtr& ast) {
    // Aggregate over an independent FLWOR, possibly inside arithmetic:
    // translate the FLWOR into the main chain and a global AGGREGATE.
    if (ast->kind == AstNode::Kind::kFunctionCall &&
        IsAggregateName(ast->name) && ast->args.size() == 1 &&
        ast->args[0]->kind == AstNode::Kind::kFlwor) {
      const AstPtr& flwor = ast->args[0];
      LOpPtr before = cur_;
      (void)before;
      // Translate clauses and return expression into the main chain.
      AstPtr inner = flwor;
      std::vector<FlworClause> clauses = inner->clauses;
      auto shell = std::make_shared<AstNode>();
      shell->kind = AstNode::Kind::kFlwor;
      shell->clauses = std::move(clauses);
      shell->return_expr = inner->return_expr;
      JPAR_ASSIGN_OR_RETURN(VarId row, TranslateFlworIntoChain(shell));
      auto aggregate = MakeOp(LOpKind::kAggregate);
      VarId out = NewVar();
      aggregate->aggs.push_back(
          {out, AggKindForName(ast->name), LExpr::Var(row)});
      Append(std::move(aggregate));
      return out;
    }
    if (ast->kind == AstNode::Kind::kBinaryOp ||
        ast->kind == AstNode::Kind::kUnaryMinus) {
      // Arithmetic wrapper around an aggregate (Q2's `avg(...) div 10`):
      // translate children, then combine.
      std::vector<LExprPtr> parts;
      for (const AstPtr& a : ast->args) {
        if (a->kind == AstNode::Kind::kFunctionCall &&
            IsAggregateName(a->name) && a->args.size() == 1 &&
            a->args[0]->kind == AstNode::Kind::kFlwor) {
          JPAR_ASSIGN_OR_RETURN(VarId v, TranslateTopExpr(a));
          parts.push_back(LExpr::Var(v));
        } else {
          JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(a));
          parts.push_back(std::move(e));
        }
      }
      LExprPtr combined;
      if (ast->kind == AstNode::Kind::kUnaryMinus) {
        combined = LExpr::Fn(Builtin::kNeg, {parts[0]});
      } else {
        JPAR_ASSIGN_OR_RETURN(Builtin fn, LookupBinaryOp(ast->name));
        combined = LExpr::Fn(fn, {parts[0], parts[1]});
      }
      return EmitAssign(std::move(combined));
    }
    if (ast->kind == AstNode::Kind::kDynCall) {
      // Streaming path expression (paper Listing 2 / Fig. 3): each
      // selected item is distributed separately.
      return TranslateForSource(ast);
    }
    JPAR_ASSIGN_OR_RETURN(LExprPtr e, TranslateScalar(ast));
    if (e->IsVarRef()) return e->var;
    return EmitAssign(std::move(e));
  }

  VarId next_var_ = 0;
  LOpPtr cur_;
  std::map<std::string, Binding> env_;
  bool has_source_ = false;
};

}  // namespace

Result<LogicalPlan> TranslateToLogical(const AstPtr& query) {
  if (query == nullptr) {
    return Status::InvalidArgument("empty query");
  }
  Translator translator;
  return translator.Translate(query);
}

}  // namespace jpar
