#ifndef JPAR_DATA_SENSOR_GENERATOR_H_
#define JPAR_DATA_SENSOR_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/catalog.h"

namespace jpar {

/// Configuration for the synthetic GHCN-Daily-shaped dataset (the
/// paper's NOAA sensor data, Listing 6):
///
///   { "root": [ { "metadata": { "count": N },
///                 "results": [ { "date": "...", "dataType": "TMIN",
///                                "station": "GSW...", "value": V }, ... ]
///               }, ... ] }
///
/// The real 803 GB dump is not available offline; this generator
/// produces structurally identical files with seeded determinism so
/// every experiment is reproducible byte-for-byte.
struct SensorDataSpec {
  /// Measurements per "results" array (the paper varies 30..1 in
  /// Fig. 18; 30 ~ one month per document).
  int measurements_per_array = 30;
  /// root-array entries ({metadata, results} objects) per file.
  int records_per_file = 32;
  /// Number of files in the collection.
  int num_files = 8;
  /// Distinct weather stations.
  int num_stations = 64;
  /// Years covered (dates are spread uniformly).
  int start_year = 2000;
  int end_year = 2014;
  /// RNG seed; same spec + seed => identical bytes.
  uint64_t seed = 42;
  /// Chronological mode: each record covers one date, dates advance
  /// sequentially across records and files (real sensor archives have
  /// this temporal locality). Used by the path-index experiments — a
  /// date index prunes almost all files only when files cover narrow
  /// date ranges.
  bool chronological = false;

  /// Approximate total JSON bytes for this spec (exact after generation).
  uint64_t ApproxBytes() const;
};

/// Data types cycled through measurements. TMIN/TMAX dominate so that
/// the paper's Q1 (TMIN filter) and Q2 (TMIN/TMAX self-join) have
/// realistic selectivity.
inline constexpr const char* kDataTypes[] = {"TMIN", "TMAX", "WIND", "PRCP"};

/// Generates one sensor file's JSON text. `file_index` perturbs the
/// stream so files differ.
std::string GenerateSensorFile(const SensorDataSpec& spec, int file_index);

/// Generates the whole collection.
Collection GenerateSensorCollection(const SensorDataSpec& spec);

/// Scales `spec.num_files` so the collection is roughly `target_bytes`
/// (at least one file).
SensorDataSpec SpecForBytes(SensorDataSpec spec, uint64_t target_bytes);

/// Unwrapped variant for the MongoDB/AsterixDB comparisons (Fig. 18):
/// each {metadata, results} record is its own document (one JSON text
/// per document) instead of being wrapped in a "root" array.
std::vector<std::string> GenerateUnwrappedDocuments(
    const SensorDataSpec& spec, int file_index);

}  // namespace jpar

#endif  // JPAR_DATA_SENSOR_GENERATOR_H_
