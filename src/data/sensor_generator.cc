#include "data/sensor_generator.h"

#include <cstdio>

namespace jpar {

namespace {

/// Deterministic 64-bit mix (splitmix64): stable across platforms,
/// unlike std::mt19937 distributions.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = Mix(state_);
    return state_;
  }
  int NextInt(int bound) {
    return static_cast<int>(Next() % static_cast<uint64_t>(bound));
  }

 private:
  uint64_t state_;
};

int DaysInMonth(int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return kDays[month - 1];
}

void AppendMeasurement(Rng* rng, const SensorDataSpec& spec, int station_id,
                       int64_t chrono_day, std::string* out) {
  int year, month, day;
  if (spec.chronological) {
    // Map a sequential day counter into the configured year range.
    int years = spec.end_year - spec.start_year + 1;
    int64_t day_of_range = chrono_day % (static_cast<int64_t>(years) * 365);
    year = spec.start_year + static_cast<int>(day_of_range / 365);
    int64_t day_of_year = day_of_range % 365;
    month = 1;
    while (day_of_year >= DaysInMonth(month)) {
      day_of_year -= DaysInMonth(month);
      ++month;
      if (month > 12) {
        month = 12;
        day_of_year = DaysInMonth(12) - 1;
        break;
      }
    }
    day = 1 + static_cast<int>(day_of_year);
  } else {
    year = spec.start_year +
           rng->NextInt(spec.end_year - spec.start_year + 1);
    month = 1 + rng->NextInt(12);
    day = 1 + rng->NextInt(DaysInMonth(month));
  }
  const char* data_type =
      kDataTypes[rng->NextInt(static_cast<int>(std::size(kDataTypes)))];
  int value = -200 + rng->NextInt(600);  // tenths of a degree / units
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"date\":\"%04d%02d%02dT00:00\",\"dataType\":\"%s\","
                "\"station\":\"GSW%06d\",\"value\":%d}",
                year, month, day, data_type, station_id, value);
  out->append(buf);
}

void AppendRecord(Rng* rng, const SensorDataSpec& spec, int64_t chrono_day,
                  std::string* out) {
  out->append("{\"metadata\":{\"count\":");
  out->append(std::to_string(spec.measurements_per_array));
  out->append("},\"results\":[");
  // One station per record: measurements of a station over a period,
  // as in the paper's description of the dataset.
  int station_id = rng->NextInt(spec.num_stations);
  for (int m = 0; m < spec.measurements_per_array; ++m) {
    if (m > 0) out->push_back(',');
    AppendMeasurement(rng, spec, station_id, chrono_day, out);
  }
  out->append("]}");
}

}  // namespace

uint64_t SensorDataSpec::ApproxBytes() const {
  // ~105 bytes per measurement + ~40 bytes per record envelope.
  uint64_t per_record =
      40 + static_cast<uint64_t>(measurements_per_array) * 105;
  return per_record * static_cast<uint64_t>(records_per_file) *
         static_cast<uint64_t>(num_files);
}

std::string GenerateSensorFile(const SensorDataSpec& spec, int file_index) {
  Rng rng(Mix(spec.seed) ^ static_cast<uint64_t>(file_index) * 0x5851F42Dull);
  std::string out;
  out.reserve(static_cast<size_t>(spec.ApproxBytes() /
                                  (spec.num_files > 0 ? spec.num_files : 1)) +
              64);
  out.append("{\"root\":[");
  for (int r = 0; r < spec.records_per_file; ++r) {
    if (r > 0) out.push_back(',');
    int64_t chrono_day =
        static_cast<int64_t>(file_index) * spec.records_per_file + r;
    AppendRecord(&rng, spec, chrono_day, &out);
  }
  out.append("]}");
  return out;
}

Collection GenerateSensorCollection(const SensorDataSpec& spec) {
  Collection collection;
  collection.files.reserve(static_cast<size_t>(spec.num_files));
  for (int f = 0; f < spec.num_files; ++f) {
    collection.files.push_back(JsonFile::FromText(GenerateSensorFile(spec, f)));
  }
  return collection;
}

SensorDataSpec SpecForBytes(SensorDataSpec spec, uint64_t target_bytes) {
  uint64_t per_file = spec.ApproxBytes() /
                      (spec.num_files > 0 ? spec.num_files : 1);
  if (per_file == 0) per_file = 1;
  uint64_t files = target_bytes / per_file;
  spec.num_files = files > 0 ? static_cast<int>(files) : 1;
  return spec;
}

std::vector<std::string> GenerateUnwrappedDocuments(
    const SensorDataSpec& spec, int file_index) {
  Rng rng(Mix(spec.seed) ^ static_cast<uint64_t>(file_index) * 0x5851F42Dull);
  std::vector<std::string> docs;
  docs.reserve(static_cast<size_t>(spec.records_per_file));
  for (int r = 0; r < spec.records_per_file; ++r) {
    std::string doc;
    int64_t chrono_day =
        static_cast<int64_t>(file_index) * spec.records_per_file + r;
    AppendRecord(&rng, spec, chrono_day, &doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

}  // namespace jpar
