#include "core/engine.h"

#include "jsoniq/parser.h"
#include "jsoniq/translator.h"

namespace jpar {

Engine::Engine(EngineOptions options) : options_(options) {}

Result<CompiledQuery> Engine::Compile(std::string_view query) const {
  return Compile(query, options_.rules);
}

Result<CompiledQuery> Engine::Compile(std::string_view query,
                                      const RuleOptions& rules) const {
  return Compile(query, rules, options_.exec);
}

Result<CompiledQuery> Engine::Compile(std::string_view query,
                                      const RuleOptions& rules,
                                      const ExecOptions& exec) const {
  JPAR_ASSIGN_OR_RETURN(AstPtr ast, ParseQuery(query));
  JPAR_ASSIGN_OR_RETURN(LogicalPlan plan, TranslateToLogical(ast));

  CompiledQuery compiled;
  compiled.original_plan = plan.ToString();

  // The cost model lives for this compilation only: estimates are
  // advisory annotations, so a plan compiled against stale or missing
  // stats still returns identical answers (DESIGN.md §15).
  StatsConfig stats_cfg;
  stats_cfg.cache_dir = exec.storage_cache_dir;
  CostModel cost_model(&catalog_, exec.stats_mode, std::move(stats_cfg));

  RewriteEngine rewriter(rules);
  JPAR_ASSIGN_OR_RETURN(compiled.fired_rules,
                        rewriter.Rewrite(&plan, &catalog_, &cost_model));
  // Algebricks-core variable pruning: always on, independent of the
  // JSONiq rule categories (see InsertProjections).
  JPAR_RETURN_NOT_OK(InsertProjections(&plan));
  compiled.optimized_plan = plan.ToString();

  PhysicalOptions popts;
  popts.two_step_aggregation = rules.two_step_aggregation;
  // No point paying compilation (or carrying programs into the plan
  // cache) when the engine will never run them.
  popts.compile_expr_bytecode = options_.exec.expr_mode != ExprMode::kTree &&
                                !ExprBytecodeDisabledByEnv();
  popts.cost_model = &cost_model;
  JPAR_ASSIGN_OR_RETURN(compiled.physical, TranslateToPhysical(plan, popts));
  compiled.logical = std::move(plan);
  return compiled;
}

Result<QueryOutput> Engine::Execute(const CompiledQuery& query) const {
  return Execute(query, options_.exec);
}

Result<QueryOutput> Engine::Execute(const CompiledQuery& query,
                                    const ExecOptions& exec) const {
  QueryContext ctx;
  if (exec.deadline_ms > 0) ctx.set_deadline_after_ms(exec.deadline_ms);
  return Execute(query, exec, &ctx);
}

Result<QueryOutput> Engine::Execute(const CompiledQuery& query,
                                    const ExecOptions& exec,
                                    QueryContext* ctx) const {
  Executor executor(&catalog_, exec, ctx);
  return executor.Run(query.physical);
}

Result<QueryOutput> Engine::Run(std::string_view query) const {
  JPAR_ASSIGN_OR_RETURN(CompiledQuery compiled, Compile(query));
  return Execute(compiled);
}

}  // namespace jpar
