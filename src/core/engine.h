#ifndef JPAR_CORE_ENGINE_H_
#define JPAR_CORE_ENGINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "algebra/logical_plan.h"
#include "algebra/physical_translator.h"
#include "algebra/rewriter.h"
#include "common/result.h"
#include "runtime/catalog.h"
#include "runtime/executor.h"

namespace jpar {

/// Everything the engine needs to compile and run queries.
struct EngineOptions {
  RuleOptions rules;  // which rewrite-rule categories are active
  ExecOptions exec;   // parallelism, frame size, memory limit, network
};

/// A compiled query: both plan forms (printable, for tests and EXPLAIN)
/// plus the executable physical plan.
struct CompiledQuery {
  std::string original_plan;   // naive plan, pre-rewrite (paper Fig. 3/5/9)
  std::string optimized_plan;  // post-rewrite
  std::vector<std::string> fired_rules;
  LogicalPlan logical;         // post-rewrite logical plan
  PhysicalPlan physical;
};

/// The public face of the processor: register data in the catalog,
/// compile JSONiq, execute.
///
///   jpar::Engine engine;
///   engine.catalog()->RegisterCollection("sensors", ...);
///   auto result = engine.Run("for $r in collection(\"/sensors\") ...");
///
/// Thread-compatible: configure and register data first, then share
/// const access across threads. All const methods (Compile, Execute,
/// Run) are safe to call concurrently — compilation builds its own
/// rewrite engine per call and execution is stateless — provided no
/// concurrent set_options() or catalog registration. The service layer
/// (src/service/) relies on this to run many queries against one
/// Engine; it passes per-session options via the explicit-option
/// overloads instead of mutating the shared defaults.
class Engine {
 public:
  explicit Engine(EngineOptions options = EngineOptions());

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }
  const EngineOptions& options() const { return options_; }
  /// Not thread-safe: only before queries start.
  void set_options(const EngineOptions& options) { options_ = options; }

  /// Parses, translates, rewrites, and lowers a query.
  Result<CompiledQuery> Compile(std::string_view query) const;

  /// Compile under an explicit rule configuration (overriding the
  /// engine-wide default for this call only).
  Result<CompiledQuery> Compile(std::string_view query,
                                const RuleOptions& rules) const;

  /// Compile under explicit rule AND execution options. The exec
  /// options select the sampled-statistics cost model (DESIGN.md §15):
  /// exec.stats_mode and exec.storage_cache_dir seed a per-call
  /// CostModel whose estimates annotate the physical plan. The other
  /// Compile overloads use the engine-wide defaults.
  Result<CompiledQuery> Compile(std::string_view query,
                                const RuleOptions& rules,
                                const ExecOptions& exec) const;

  /// Executes a compiled query against the catalog.
  Result<QueryOutput> Execute(const CompiledQuery& query) const;

  /// Execute under explicit execution options (overriding the
  /// engine-wide default for this call only). A positive
  /// exec.deadline_ms starts counting when this call begins.
  Result<QueryOutput> Execute(const CompiledQuery& query,
                              const ExecOptions& exec) const;

  /// Execute under an explicit query lifecycle: the context's
  /// cancellation token, absolute deadline, and fault injector are
  /// polled by every executor stage at batch granularity. The query
  /// service uses this to make in-flight queries abortable; `ctx` may
  /// be null. When a non-null ctx is passed, exec.deadline_ms is NOT
  /// applied — the caller owns the deadline (the service computes an
  /// absolute deadline at Submit() so queue wait counts).
  Result<QueryOutput> Execute(const CompiledQuery& query,
                              const ExecOptions& exec,
                              QueryContext* ctx) const;

  /// Compile + Execute.
  Result<QueryOutput> Run(std::string_view query) const;

 private:
  EngineOptions options_;
  Catalog catalog_;
};

}  // namespace jpar

#endif  // JPAR_CORE_ENGINE_H_
