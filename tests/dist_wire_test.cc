// Wire layer of the distributed runtime (src/dist): payload codecs,
// message framing over a real socketpair, corrupt-input rejection,
// credit-window semantics, and the deterministic plan splitter.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/sensor_generator.h"
#include "dist/exchange.h"
#include "dist/fragment.h"
#include "dist/protocol.h"
#include "dist/wire.h"

namespace jpar {
namespace {

// ---------------------------------------------------------------------
// Payload primitives

TEST(PayloadTest, VarintRoundTrip) {
  std::string buf;
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 32,
                     ~0ull}) {
    PutVarint(v, &buf);
  }
  PayloadReader reader(buf);
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 300ull, 1ull << 32,
                     ~0ull}) {
    auto got = reader.Varint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(PayloadTest, SignedAndDoubleAndBytesRoundTrip) {
  std::string buf;
  PutVarintSigned(-12345, &buf);
  PutDouble(3.25, &buf);
  PutBytes("hello \0 world", &buf);
  PayloadReader reader(buf);
  auto i = reader.VarintSigned();
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(*i, -12345);
  auto d = reader.Double();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(*d, 3.25);
  auto s = reader.String();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, std::string("hello "));  // \0 truncates the literal
}

TEST(PayloadTest, TruncationRejected) {
  std::string buf;
  PutBytes("some payload bytes", &buf);
  // Every strict prefix must fail cleanly, never read out of bounds.
  for (size_t len = 0; len < buf.size(); ++len) {
    PayloadReader reader(std::string_view(buf.data(), len));
    auto got = reader.Bytes();
    EXPECT_FALSE(got.ok()) << "prefix of length " << len;
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kIOError);
    }
  }
}

// ---------------------------------------------------------------------
// Typed payloads

TEST(ProtocolTest, HelloRoundTrip) {
  HelloMsg msg;
  msg.pid = 4242;
  auto got = DecodeHello(EncodeHello(msg));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->version, kProtocolVersion);
  EXPECT_EQ(got->pid, 4242);
}

TEST(ProtocolTest, FragmentRequestRoundTrip) {
  FragmentRequest req;
  req.query = "for $r in collection(\"/x\") return $r";
  req.rules = RuleOptions::None();
  req.rules.path_rules = true;
  req.exec.partitions = 7;
  req.exec.frame_bytes = 4096;
  req.exec.use_threads = true;
  req.exec.memory_limit_bytes = 123456;
  req.exec.spill = SpillMode::kEnabled;
  req.exec.deadline_ms = 1500;
  req.exec.expr_mode = ExprMode::kBytecode;
  req.exec.batch_size = 512;
  req.exec.storage_mode = StorageMode::kTape;
  req.exec.storage_cache_dir = "/tmp/jpar-cache";
  req.exec.storage_budget_bytes = 64ull << 20;
  req.stage_id = 2;
  req.worker_id = 3;
  req.worker_count = 4;
  req.fanout = 4;
  req.num_inputs = 2;
  req.deadline_remaining_ms = 987.5;
  req.credit_window = 16;

  auto got = DecodeFragmentRequest(EncodeFragmentRequest(req));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->query, req.query);
  EXPECT_EQ(got->stage_id, 2);
  EXPECT_EQ(got->worker_id, 3);
  EXPECT_EQ(got->worker_count, 4);
  EXPECT_EQ(got->fanout, 4);
  EXPECT_EQ(got->num_inputs, 2);
  EXPECT_EQ(got->deadline_remaining_ms, 987.5);
  EXPECT_EQ(got->credit_window, 16u);
  EXPECT_EQ(got->exec.partitions, 7);
  EXPECT_EQ(got->exec.frame_bytes, 4096u);
  EXPECT_TRUE(got->exec.use_threads);
  EXPECT_EQ(got->exec.memory_limit_bytes, 123456u);
  EXPECT_EQ(got->exec.spill, SpillMode::kEnabled);
  EXPECT_EQ(got->exec.deadline_ms, 1500);
  EXPECT_EQ(got->exec.expr_mode, ExprMode::kBytecode);
  EXPECT_EQ(got->exec.batch_size, 512u);
  EXPECT_EQ(got->exec.storage_mode, StorageMode::kTape);
  EXPECT_EQ(got->exec.storage_cache_dir, "/tmp/jpar-cache");
  EXPECT_EQ(got->exec.storage_budget_bytes, 64ull << 20);
  // Rules round-trip exactly: compare the canonical encodings.
  std::string a, b;
  EncodeRuleOptions(req.rules, &a);
  EncodeRuleOptions(got->rules, &b);
  EXPECT_EQ(a, b);
}

TEST(ProtocolTest, OutputEofRoundTrip) {
  OutputEofMsg msg;
  msg.code = StatusCode::kDeadlineExceeded;
  msg.message = "deadline exceeded during SCAN";
  msg.stats.bytes_scanned = 1111;
  msg.stats.items_scanned = 22;
  msg.stats.result_rows = 3;
  msg.stats.batches_emitted = 44;
  msg.stats.exprs_compiled = 5;
  msg.stats.tape_hits = 6;
  msg.stats.tape_builds = 7;
  msg.stats.columns_read = 8;
  msg.stats.blocks_pruned = 99;
  auto got = DecodeOutputEof(EncodeOutputEof(msg));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(got->message, msg.message);
  EXPECT_EQ(got->stats.bytes_scanned, 1111u);
  EXPECT_EQ(got->stats.items_scanned, 22u);
  EXPECT_EQ(got->stats.result_rows, 3u);
  EXPECT_EQ(got->stats.batches_emitted, 44u);
  EXPECT_EQ(got->stats.exprs_compiled, 5u);
  EXPECT_EQ(got->stats.tape_hits, 6u);
  EXPECT_EQ(got->stats.tape_builds, 7u);
  EXPECT_EQ(got->stats.columns_read, 8u);
  EXPECT_EQ(got->stats.blocks_pruned, 99u);
}

TEST(ProtocolTest, CancelAndCreditRoundTrip) {
  CancelMsg cancel;
  cancel.code = StatusCode::kCancelled;
  cancel.message = "client gave up";
  auto got = DecodeCancel(EncodeCancel(cancel));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->code, StatusCode::kCancelled);
  EXPECT_EQ(got->message, "client gave up");

  auto credit = DecodeCredit(EncodeCredit(17));
  ASSERT_TRUE(credit.ok());
  EXPECT_EQ(*credit, 17u);

  auto ack = DecodeSyncAck(EncodeSyncAck(99));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(*ack, 99u);
}

TEST(ProtocolTest, StatusFromCodeCoversEveryCode) {
  EXPECT_TRUE(StatusFromCode(StatusCode::kOk, "").ok());
  for (int c = 1; c < kStatusCodeCount; ++c) {
    StatusCode code = static_cast<StatusCode>(c);
    Status st = StatusFromCode(code, "wire message");
    EXPECT_EQ(st.code(), code) << c;
    EXPECT_EQ(st.message(), "wire message") << c;
  }
}

TEST(ProtocolTest, CatalogSyncRoundTrip) {
  SensorDataSpec spec;
  spec.num_files = 2;
  spec.records_per_file = 4;
  spec.measurements_per_array = 6;
  spec.seed = 11;

  Engine source;
  source.catalog()->RegisterCollection("/sensors",
                                       GenerateSensorCollection(spec));
  std::string payload = EncodeCatalogSync(*source.catalog());

  Engine replica;
  uint64_t version = 0;
  Status st = DecodeCatalogSyncInto(payload, replica.catalog(), &version);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(version, source.catalog()->version());

  const char* count_query = R"(
    count(collection("/sensors")("root")()("results")()))";
  auto a = source.Run(count_query);
  auto b = replica.Run(count_query);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->items.size(), 1u);
  ASSERT_EQ(b->items.size(), 1u);
  EXPECT_EQ(a->items[0].int64_value(), b->items[0].int64_value());
  EXPECT_GT(a->items[0].int64_value(), 0);
}

// ---------------------------------------------------------------------
// Framing over a real socketpair

TEST(WireTest, MessageRoundTripOverSocketpair) {
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok()) << pair.status().ToString();
  Socket a = std::move(pair->first);
  Socket b = std::move(pair->second);

  std::vector<Tuple> tuples;
  for (int i = 0; i < 100; ++i) {
    tuples.push_back({Item::Int64(i), Item::String("row-" +
                                                   std::to_string(i))});
  }
  std::vector<FrameMsg> frames = TuplesToFrames(tuples, 3, 256);
  ASSERT_GT(frames.size(), 1u);  // small frame target => several frames

  for (const FrameMsg& f : frames) {
    ASSERT_TRUE(WriteMessage(&a, static_cast<uint8_t>(MsgType::kInputFrame),
                             EncodeFrameMsg(f))
                    .ok());
  }
  a.Close();  // clean EOF after the last message

  std::vector<Tuple> got;
  WireMessage msg;
  while (true) {
    auto more = ReadMessage(&b, &msg);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!*more) break;
    ASSERT_EQ(msg.type, static_cast<uint8_t>(MsgType::kInputFrame));
    auto frame = DecodeFrameMsg(msg.payload);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    EXPECT_EQ(frame->channel, 3u);
    ASSERT_TRUE(AppendFrameTuples(*frame, &got).ok());
  }
  ASSERT_EQ(got.size(), tuples.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), 2u);
    EXPECT_EQ(got[i][0].int64_value(), tuples[i][0].int64_value());
    EXPECT_EQ(got[i][1].string_value(), tuples[i][1].string_value());
  }
}

TEST(WireTest, CorruptMagicRejected) {
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok());
  const char garbage[] = "XXXXYYYYZZZZ";
  ASSERT_TRUE(pair->first.SendAll(garbage, sizeof(garbage)).ok());
  WireMessage msg;
  auto got = ReadMessage(&pair->second, &msg);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST(WireTest, OversizedLengthRejected) {
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok());
  // Valid magic and type, but a payload length beyond the cap.
  std::string header;
  uint32_t magic = kWireMagic;
  header.append(reinterpret_cast<const char*>(&magic), 4);
  header.push_back(static_cast<char>(MsgType::kPing));
  uint32_t len = kMaxWirePayload + 1;
  header.append(reinterpret_cast<const char*>(&len), 4);
  uint32_t crc = 0;  // never reached: the length check rejects first
  header.append(reinterpret_cast<const char*>(&crc), 4);
  ASSERT_EQ(header.size(), kWireHeaderBytes);
  ASSERT_TRUE(pair->first.SendAll(header.data(), header.size()).ok());
  WireMessage msg;
  auto got = ReadMessage(&pair->second, &msg);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST(WireTest, TruncatedPayloadRejected) {
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok());
  // Header promises 64 payload bytes; only 10 arrive before EOF.
  std::string partial;
  uint32_t magic = kWireMagic;
  partial.append(reinterpret_cast<const char*>(&magic), 4);
  partial.push_back(static_cast<char>(MsgType::kInputFrame));
  uint32_t len = 64;
  partial.append(reinterpret_cast<const char*>(&len), 4);
  uint32_t crc = 0;
  partial.append(reinterpret_cast<const char*>(&crc), 4);
  partial.append(10, 'x');
  ASSERT_TRUE(pair->first.SendAll(partial.data(), partial.size()).ok());
  pair->first.Close();
  WireMessage msg;
  auto got = ReadMessage(&pair->second, &msg);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
}

TEST(WireTest, ChecksumMismatchRejected) {
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok());
  // A well-formed message whose payload was corrupted in flight: the
  // header carries the CRC of the original payload, the bytes on the
  // wire differ by one bit.
  std::string payload = "structurally valid payload bytes";
  std::string corrupted = payload;
  corrupted[5] ^= 0x01;
  std::string msg_bytes;
  uint32_t magic = kWireMagic;
  msg_bytes.append(reinterpret_cast<const char*>(&magic), 4);
  msg_bytes.push_back(static_cast<char>(MsgType::kInputFrame));
  uint32_t len = static_cast<uint32_t>(payload.size());
  msg_bytes.append(reinterpret_cast<const char*>(&len), 4);
  uint32_t crc = WireCrc32(payload);
  msg_bytes.append(reinterpret_cast<const char*>(&crc), 4);
  msg_bytes.append(corrupted);
  ASSERT_TRUE(pair->first.SendAll(msg_bytes.data(), msg_bytes.size()).ok());
  WireMessage msg;
  auto got = ReadMessage(&pair->second, &msg);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
  EXPECT_NE(got.status().message().find("checksum"), std::string::npos)
      << got.status().ToString();

  // The uncorrupted bytes round-trip fine.
  auto pair2 = Socket::Pair();
  ASSERT_TRUE(pair2.ok());
  ASSERT_TRUE(WriteMessage(&pair2->first,
                           static_cast<uint8_t>(MsgType::kInputFrame), payload)
                  .ok());
  auto ok = ReadMessage(&pair2->second, &msg);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(*ok);
  EXPECT_EQ(msg.payload, payload);
}

TEST(WireTest, Crc32MatchesKnownVectors) {
  // The standard CRC-32 (reflected, poly 0xEDB88320) check values.
  EXPECT_EQ(WireCrc32(""), 0x00000000u);
  EXPECT_EQ(WireCrc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(WireCrc32("a"), 0xE8B7BE43u);
  // Sensitive to every bit: flipping one payload bit changes the sum.
  EXPECT_NE(WireCrc32(std::string("ab")), WireCrc32(std::string("ac")));
}

TEST(WireTest, CleanEofReturnsFalse) {
  auto pair = Socket::Pair();
  ASSERT_TRUE(pair.ok());
  pair->first.Close();
  WireMessage msg;
  auto got = ReadMessage(&pair->second, &msg);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(*got);
}

TEST(WireTest, TupleCountMismatchRejected) {
  std::vector<Tuple> tuples = {{Item::Int64(1)}, {Item::Int64(2)}};
  std::vector<FrameMsg> frames = TuplesToFrames(tuples, 0, 1 << 16);
  ASSERT_EQ(frames.size(), 1u);
  frames[0].tuple_count += 1;  // header lies about the tuple count
  std::vector<Tuple> out;
  Status st = AppendFrameTuples(frames[0], &out);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------
// Credit window

TEST(CreditWindowTest, AcquireGrantTimeout) {
  CreditWindow window;
  window.Reset(1);
  EXPECT_TRUE(window.Acquire(0).ok() || window.Acquire(-1).ok());
  // Empty window: a bounded wait times out with kUnavailable.
  Status st = window.Acquire(30);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  window.Grant(1);
  EXPECT_TRUE(window.Acquire(30).ok());
}

TEST(CreditWindowTest, PoisonWakesBlockedSender) {
  CreditWindow window;
  window.Reset(0);
  Status observed;
  std::thread sender([&] { observed = window.Acquire(-1); });
  // Give the sender time to block, then poison.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  window.Poison(Status::WorkerLost("worker 1 died"));
  sender.join();
  ASSERT_FALSE(observed.ok());
  EXPECT_EQ(observed.code(), StatusCode::kWorkerLost);

  // Poison latches for future acquires...
  EXPECT_EQ(window.Acquire(0).code(), StatusCode::kWorkerLost);
  // ...until the next Reset re-arms the window.
  window.Reset(1);
  EXPECT_TRUE(window.Acquire(0).ok());
}

// ---------------------------------------------------------------------
// Plan splitter

class SplitTest : public ::testing::Test {
 protected:
  static Result<StagePlan> Split(const std::string& query) {
    Engine engine;
    auto compiled = engine.Compile(query, RuleOptions::All());
    if (!compiled.ok()) return compiled.status();
    // The split references plan nodes; keep the plan alive via a
    // static cache for the duration of the assertion-only tests.
    static std::vector<CompiledQuery>* plans =
        new std::vector<CompiledQuery>();
    plans->push_back(*std::move(compiled));
    return SplitPlanForDistribution(plans->back().physical);
  }
};

TEST_F(SplitTest, PurePipelineIsOneGatherStage) {
  auto split = Split(R"(
    for $r in collection("/sensors")("root")()("results")()
    where $r("dataType") eq "TMIN"
    return $r("value"))");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_EQ(split->stages.size(), 1u);
  EXPECT_EQ(split->stages[0].core, FragmentStage::Core::kLeaf);
  EXPECT_FALSE(split->stages[0].shuffled);
  EXPECT_TRUE(split->stages[0].inputs.empty());
}

TEST_F(SplitTest, GroupByBecomesTwoStagesWithTwoStepShuffle) {
  auto split = Split(R"(
    for $r in collection("/sensors")("root")()("results")()
    where $r("dataType") eq "TMIN"
    group by $date := $r("date")
    return count($r("station")))");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  ASSERT_EQ(split->stages.size(), 2u);
  const FragmentStage& leaf = split->stages[0];
  const FragmentStage& merge = split->stages[1];
  EXPECT_EQ(leaf.core, FragmentStage::Core::kLeaf);
  EXPECT_TRUE(leaf.shuffled);
  // RuleOptions::All() enables two-step aggregation for count().
  EXPECT_NE(leaf.local_groupby, nullptr);
  EXPECT_EQ(merge.core, FragmentStage::Core::kGroupByMerge);
  EXPECT_TRUE(merge.from_partials);
  EXPECT_FALSE(merge.shuffled);
  ASSERT_EQ(merge.inputs.size(), 1u);
  EXPECT_EQ(merge.inputs[0], leaf.id);
}

TEST_F(SplitTest, JoinFansInTwoShuffledProducers) {
  auto split = Split(R"(
    avg(
      for $a in collection("/s")("root")()("results")()
      for $b in collection("/s")("root")()("results")()
      where $a("station") eq $b("station")
        and $a("dataType") eq "TMIN"
        and $b("dataType") eq "TMAX"
      return $b("value") - $a("value")
    ) div 10)");
  ASSERT_TRUE(split.ok()) << split.status().ToString();
  const FragmentStage* join = nullptr;
  for (const FragmentStage& stage : split->stages) {
    if (stage.core == FragmentStage::Core::kJoin) join = &stage;
  }
  ASSERT_NE(join, nullptr);
  ASSERT_EQ(join->inputs.size(), 2u);
  EXPECT_TRUE(split->stages[join->inputs[0]].shuffled);
  EXPECT_TRUE(split->stages[join->inputs[1]].shuffled);
  EXPECT_FALSE(split->stages.back().shuffled);  // final stage gathers
}

TEST_F(SplitTest, UnsupportedShapesFallBack) {
  // No collection scan at the leaf (EMPTY-TUPLE-SOURCE).
  auto constant = Split("1 + 1");
  ASSERT_FALSE(constant.ok());
  EXPECT_EQ(constant.status().code(), StatusCode::kUnsupported);

  // Sorts are not distributed.
  auto sorted = Split(R"(
    for $r in collection("/s")("root")()("results")()
    order by $r("date")
    return $r)");
  ASSERT_FALSE(sorted.ok());
  EXPECT_EQ(sorted.status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace jpar
