// Tests for engine features beyond the paper's core pipeline: the
// order-by clause, the extended function library, and the path-index
// extension (the paper's §6 future work).

#include <gtest/gtest.h>

#include "core/engine.h"
#include "data/sensor_generator.h"

namespace jpar {
namespace {

Engine MakeEngine(std::vector<std::string> docs,
                  EngineOptions options = EngineOptions()) {
  Engine engine(options);
  Collection c;
  for (std::string& d : docs) c.files.push_back(JsonFile::FromText(d));
  engine.catalog()->RegisterCollection("/c", std::move(c));
  return engine;
}

std::vector<std::string> Rows(const QueryOutput& out) {
  std::vector<std::string> rows;
  for (const Item& i : out.items) rows.push_back(i.ToJsonString());
  return rows;
}

// ---------------------------------------------------------------------
// order by
// ---------------------------------------------------------------------

TEST(OrderByTest, SortsAscendingByDefault) {
  Engine engine = MakeEngine({R"({"v": 3})", R"({"v": 1})", R"({"v": 2})"});
  auto out = engine.Run(R"(
      for $d in collection("/c")
      order by $d("v")
      return $d("v"))");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Rows(*out), (std::vector<std::string>{"1", "2", "3"}));
}

TEST(OrderByTest, Descending) {
  Engine engine = MakeEngine({R"({"v": 3})", R"({"v": 1})", R"({"v": 2})"});
  auto out = engine.Run(R"(
      for $d in collection("/c")
      order by $d("v") descending
      return $d("v"))");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Rows(*out), (std::vector<std::string>{"3", "2", "1"}));
}

TEST(OrderByTest, MultipleKeys) {
  Engine engine = MakeEngine({R"({"a": "x", "b": 2})", R"({"a": "x", "b": 1})",
                              R"({"a": "w", "b": 9})"});
  auto out = engine.Run(R"(
      for $d in collection("/c")
      order by $d("a"), $d("b") descending
      return $d("b"))");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Rows(*out), (std::vector<std::string>{"9", "2", "1"}));
}

TEST(OrderByTest, SortIsGlobalAcrossPartitions) {
  std::vector<std::string> docs;
  for (int i = 0; i < 40; ++i) {
    docs.push_back("{\"v\": " + std::to_string((i * 7) % 40) + "}");
  }
  EngineOptions options;
  options.exec.partitions = 4;
  Engine engine = MakeEngine(docs, options);
  auto out = engine.Run(R"(
      for $d in collection("/c")
      order by $d("v")
      return $d("v"))");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(out->items[static_cast<size_t>(i)], Item::Int64(i));
  }
}

TEST(OrderByTest, AfterGroupBy) {
  Engine engine = MakeEngine({R"({"g": "a"})", R"({"g": "b"})",
                              R"({"g": "a"})", R"({"g": "a"})"});
  auto out = engine.Run(R"(
      for $d in collection("/c")
      group by $g := $d("g")
      order by $g descending
      return $g)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Rows(*out), (std::vector<std::string>{"\"b\"", "\"a\""}));
}

TEST(OrderByTest, MixedKeyTypesFail) {
  Engine engine = MakeEngine({R"({"v": 1})", R"({"v": "s"})"});
  auto out = engine.Run(R"(
      for $d in collection("/c") order by $d("v") return $d)");
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kTypeError);
}

TEST(OrderByTest, MissingKeysSortFirst) {
  Engine engine = MakeEngine({R"({"v": 2})", R"({"x": 0})", R"({"v": 1})"});
  auto out = engine.Run(R"(
      for $d in collection("/c") order by $d("v") return $d)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 3u);
  EXPECT_FALSE(out->items[0].GetField("v").has_value());
}

// ---------------------------------------------------------------------
// Extended function library (through the full engine)
// ---------------------------------------------------------------------

TEST(FunctionLibraryTest, StringFunctions) {
  Engine engine = MakeEngine({R"({"s": "Hello World"})"});
  struct Case {
    const char* expr;
    const char* expected;
  };
  const Case cases[] = {
      {R"(concat("a", "b", 1))", "\"ab1\""},
      {R"(substring($d("s"), 7))", "\"World\""},
      {R"(substring($d("s"), 1, 5))", "\"Hello\""},
      {R"(string-length($d("s")))", "11"},
      {R"(contains($d("s"), "lo W"))", "true"},
      {R"(contains($d("s"), "xyz"))", "false"},
      {R"(starts-with($d("s"), "Hell"))", "true"},
      {R"(upper-case($d("s")))", "\"HELLO WORLD\""},
      {R"(lower-case($d("s")))", "\"hello world\""},
      {R"(string(42))", "\"42\""},
  };
  for (const Case& c : cases) {
    std::string query = std::string("for $d in collection(\"/c\") return ") +
                        c.expr;
    auto out = engine.Run(query);
    ASSERT_TRUE(out.ok()) << c.expr << ": " << out.status().ToString();
    ASSERT_EQ(out->items.size(), 1u) << c.expr;
    EXPECT_EQ(out->items[0].ToJsonString(), c.expected) << c.expr;
  }
}

TEST(FunctionLibraryTest, NumericFunctions) {
  Engine engine = MakeEngine({R"({"v": -2.5})"});
  struct Case {
    const char* expr;
    double expected;
  };
  const Case cases[] = {
      {R"(abs($d("v")))", 2.5},
      {R"(floor($d("v")))", -3.0},
      {R"(ceiling($d("v")))", -2.0},
      {R"(round($d("v")))", -2.0},  // round-half-up toward +inf
      {R"(abs(-7))", 7.0},
  };
  for (const Case& c : cases) {
    std::string query = std::string("for $d in collection(\"/c\") return ") +
                        c.expr;
    auto out = engine.Run(query);
    ASSERT_TRUE(out.ok()) << c.expr << ": " << out.status().ToString();
    EXPECT_DOUBLE_EQ(out->items[0].AsDouble(), c.expected) << c.expr;
  }
}

TEST(FunctionLibraryTest, SequencePredicates) {
  Engine engine = MakeEngine({R"({"list": [1, 2, 2, 3], "none": []})"});
  auto out = engine.Run(R"(
      for $d in collection("/c")
      return count(distinct-values($d("list")())))");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->items[0], Item::Int64(3));

  out = engine.Run(R"(
      for $d in collection("/c")
      where exists($d("list")()) and empty($d("none")())
      return boolean($d("list")))");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->items.size(), 1u);
  EXPECT_EQ(out->items[0], Item::Boolean(true));
}

// ---------------------------------------------------------------------
// Path index (paper §6 future work)
// ---------------------------------------------------------------------

class PathIndexTest : public ::testing::Test {
 protected:
  static SensorDataSpec Spec() {
    SensorDataSpec spec;
    spec.chronological = true;  // temporal locality => selective index
    spec.num_files = 16;
    spec.records_per_file = 8;
    spec.measurements_per_array = 6;
    spec.start_year = 2013;
    spec.end_year = 2014;
    return spec;
  }

  static std::vector<PathStep> DatePath() {
    return {PathStep::Key("root"), PathStep::KeysOrMembers(),
            PathStep::Key("results"), PathStep::KeysOrMembers(),
            PathStep::Key("date")};
  }

  static constexpr const char* kQuery = R"(
      for $r in collection("/sensors")("root")()("results")()
      where $r("date") eq "20130105T00:00"
      return $r)";
};

TEST_F(PathIndexTest, IndexedScanPrunesFilesAndAgreesWithFullScan) {
  Collection data = GenerateSensorCollection(Spec());

  EngineOptions plain_options;
  Engine plain(plain_options);
  plain.catalog()->RegisterCollection("/sensors", data);
  auto expected = plain.Run(kQuery);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_GT(expected->items.size(), 0u) << "query matched nothing";

  EngineOptions indexed_options;
  indexed_options.rules.index_rules = true;
  Engine indexed(indexed_options);
  indexed.catalog()->RegisterCollection("/sensors", data);
  ASSERT_TRUE(
      indexed.catalog()->BuildPathIndex("/sensors", DatePath()).ok());

  auto compiled = indexed.Compile(kQuery);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_NE(compiled->optimized_plan.find("[index:"), std::string::npos)
      << compiled->optimized_plan;
  EXPECT_NE(std::find(compiled->fired_rules.begin(),
                      compiled->fired_rules.end(), "use-path-index"),
            compiled->fired_rules.end());

  auto result = indexed.Execute(*compiled);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::multiset<std::string> a, b;
  for (const Item& i : expected->items) a.insert(i.ToJsonString());
  for (const Item& i : result->items) b.insert(i.ToJsonString());
  EXPECT_EQ(a, b);
  // Chronological files: the target date lives in one file, so the
  // indexed scan reads far less.
  EXPECT_LT(result->stats.bytes_scanned,
            expected->stats.bytes_scanned / 4);
}

TEST_F(PathIndexTest, RuleNeedsTheIndex) {
  Collection data = GenerateSensorCollection(Spec());
  EngineOptions options;
  options.rules.index_rules = true;
  Engine engine(options);
  engine.catalog()->RegisterCollection("/sensors", data);
  // No BuildPathIndex call: the rule must not fire.
  auto compiled = engine.Compile(kQuery);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->optimized_plan.find("[index:"), std::string::npos);
}

TEST_F(PathIndexTest, UnseenValuePrunesEverything) {
  Collection data = GenerateSensorCollection(Spec());
  EngineOptions options;
  options.rules.index_rules = true;
  Engine engine(options);
  engine.catalog()->RegisterCollection("/sensors", data);
  ASSERT_TRUE(engine.catalog()->BuildPathIndex("/sensors", DatePath()).ok());
  auto out = engine.Run(R"(
      for $r in collection("/sensors")("root")()("results")()
      where $r("date") eq "19990101T00:00"
      return $r)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_TRUE(out->items.empty());
  EXPECT_EQ(out->stats.bytes_scanned, 0u);
}

TEST_F(PathIndexTest, LookupApi) {
  Catalog catalog;
  Collection c;
  c.files.push_back(JsonFile::FromText(R"({"k": "a"})"));
  c.files.push_back(JsonFile::FromText(R"({"k": "b"})"));
  c.files.push_back(JsonFile::FromText(R"({"k": "a"})"));
  catalog.RegisterCollection("c", std::move(c));
  std::vector<PathStep> path = {PathStep::Key("k")};
  EXPECT_FALSE(catalog.HasPathIndex("c", path));
  EXPECT_EQ(catalog.LookupPathIndex("c", path, Item::String("a")), nullptr);
  ASSERT_TRUE(catalog.BuildPathIndex("c", path).ok());
  EXPECT_TRUE(catalog.HasPathIndex("c", path));
  const std::vector<int>* files =
      catalog.LookupPathIndex("c", path, Item::String("a"));
  ASSERT_NE(files, nullptr);
  EXPECT_EQ(*files, (std::vector<int>{0, 2}));
  files = catalog.LookupPathIndex("c", path, Item::String("zzz"));
  ASSERT_NE(files, nullptr);
  EXPECT_TRUE(files->empty());
}

}  // namespace
}  // namespace jpar
