// Tests for the concurrent query service (src/service/): sessions and
// tickets, the LRU plan cache, admission control (bounded queue +
// memory budget), the worker pool, and stress tests asserting that
// concurrent execution matches sequential results. Run under
// ThreadSanitizer in CI (see .github/workflows/ci.yml).

#include "service/query_service.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <utime.h>

#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/admission.h"
#include "service/plan_cache.h"
#include "stats/collection_stats.h"

namespace jpar {
namespace {

// 60 docs: {"v": i, "g": i % 5}.
std::vector<std::string> MakeDocs(int n = 60) {
  std::vector<std::string> docs;
  docs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    docs.push_back("{\"v\": " + std::to_string(i) + ", \"g\": " +
                   std::to_string(i % 5) + "}");
  }
  return docs;
}

void RegisterDocs(Catalog* catalog, const std::vector<std::string>& docs) {
  Collection c;
  for (const std::string& d : docs) c.files.push_back(JsonFile::FromText(d));
  catalog->RegisterCollection("/c", std::move(c));
}

std::vector<std::string> Rows(const QueryOutput& out) {
  std::vector<std::string> rows;
  for (const Item& i : out.items) rows.push_back(i.ToJsonString());
  return rows;
}

constexpr const char* kSortedTailQuery = R"(
    for $d in collection("/c")
    where $d("v") gt 54
    order by $d("v") descending
    return $d("v"))";

constexpr const char* kGroupQuery = R"(
    for $d in collection("/c")
    group by $g := $d("g")
    order by $g
    return $g)";

// ---------------------------------------------------------------------
// PlanCache (unit)
// ---------------------------------------------------------------------

TEST(PlanCacheTest, KeyCoversQueryRulesAndExec) {
  RuleOptions rules;
  ExecOptions exec;
  std::string base = PlanCache::Key("q", rules, exec);
  EXPECT_NE(base, PlanCache::Key("q2", rules, exec));
  RuleOptions no_rules = RuleOptions::None();
  EXPECT_NE(base, PlanCache::Key("q", no_rules, exec));
  ExecOptions exec8 = exec;
  exec8.partitions = 8;
  EXPECT_NE(base, PlanCache::Key("q", rules, exec8));
}

TEST(PlanCacheTest, KeyCoversStorageAndStatsEpochsAndStatsMode) {
  RuleOptions rules;
  ExecOptions exec;
  std::string base = PlanCache::Key("q", rules, exec, 0, 0);
  // A plan costed against one stats (or storage) generation must not
  // serve a session seeing another.
  EXPECT_NE(base, PlanCache::Key("q", rules, exec, 1, 0));
  EXPECT_NE(base, PlanCache::Key("q", rules, exec, 0, 1));
  ExecOptions off = exec;
  off.stats_mode = StatsMode::kOff;
  EXPECT_NE(base, PlanCache::Key("q", rules, off, 0, 0));
}

TEST(PlanCacheTest, LruHitMissEviction) {
  PlanCache cache(2);
  EXPECT_EQ(cache.Lookup("a"), nullptr);  // miss
  cache.Insert("a", std::make_shared<const CompiledQuery>());
  cache.Insert("b", std::make_shared<const CompiledQuery>());
  EXPECT_NE(cache.Lookup("a"), nullptr);  // hit; "a" is now MRU
  cache.Insert("c", std::make_shared<const CompiledQuery>());  // evicts "b"
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);

  PlanCacheStats s = cache.Stats();
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(PlanCacheTest, ZeroCapacityDisables) {
  PlanCache cache(0);
  cache.Insert("a", std::make_shared<const CompiledQuery>());
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

// ---------------------------------------------------------------------
// AdmissionController (unit)
// ---------------------------------------------------------------------

TEST(AdmissionTest, MemoryBudget) {
  AdmissionController ac(/*memory_budget_bytes=*/100, /*max_queue_depth=*/10);
  // A single reservation beyond the whole budget can never run.
  Status too_big = ac.Admit(150);
  EXPECT_EQ(too_big.code(), StatusCode::kResourceExhausted);

  ASSERT_TRUE(ac.Admit(60).ok());
  Status no_room = ac.Admit(60);  // 60 + 60 > 100
  EXPECT_EQ(no_room.code(), StatusCode::kResourceExhausted);

  ac.StartRunning();
  ac.Finish(60);  // releases the reservation
  EXPECT_TRUE(ac.Admit(60).ok());

  AdmissionStats s = ac.Stats();
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.rejected_memory, 2u);
  EXPECT_EQ(s.reserved_bytes, 60u);
}

TEST(AdmissionTest, BoundedQueue) {
  AdmissionController ac(/*memory_budget_bytes=*/0, /*max_queue_depth=*/1);
  ASSERT_TRUE(ac.Admit(1).ok());
  Status full = ac.Admit(1);
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);

  ac.StartRunning();  // queued -> running frees the queue slot
  EXPECT_TRUE(ac.Admit(1).ok());

  AdmissionStats s = ac.Stats();
  EXPECT_EQ(s.rejected_queue_full, 1u);
  EXPECT_EQ(s.queued_peak, 1u);
  EXPECT_EQ(s.running, 1u);
}

TEST(AdmissionTest, SoftAdmissionClipsInsteadOfRejecting) {
  AdmissionController ac(/*memory_budget_bytes=*/100, /*max_queue_depth=*/2);
  // A request beyond the whole budget is clipped to what is available.
  Result<uint64_t> grant = ac.AdmitSoft(150, /*min_grant_bytes=*/10);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(*grant, 100u);
  // Budget exhausted: the floor wins, overcommitting mildly.
  grant = ac.AdmitSoft(60, /*min_grant_bytes=*/10);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(*grant, 10u);
  // The queue-depth gate still applies to spill-capable queries.
  EXPECT_EQ(ac.AdmitSoft(1, 1).status().code(), StatusCode::kUnavailable);

  AdmissionStats s = ac.Stats();
  EXPECT_EQ(s.soft_clipped, 2u);
  EXPECT_EQ(s.rejected_memory, 0u);
  EXPECT_EQ(s.rejected_queue_full, 1u);
  EXPECT_EQ(s.reserved_bytes, 110u);

  ac.StartRunning();
  ac.Finish(100);  // release exactly what was granted
  ac.StartRunning();
  ac.Finish(10);
  EXPECT_EQ(ac.Stats().reserved_bytes, 0u);

  // With no budget the full request is granted unclipped.
  AdmissionController unlimited(0, 2);
  grant = unlimited.AdmitSoft(1ull << 40, 1);
  ASSERT_TRUE(grant.ok());
  EXPECT_EQ(*grant, 1ull << 40);
  EXPECT_EQ(unlimited.Stats().soft_clipped, 0u);
}

TEST(AdmissionTest, UnavailableStatusString) {
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

// ---------------------------------------------------------------------
// QueryService end-to-end
// ---------------------------------------------------------------------

TEST(QueryServiceTest, TwoSessionsConcurrentIndependentResults) {
  ServiceOptions options;
  options.worker_threads = 4;
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());

  // Session A: full rules, 3 partitions. Session B: rules off, serial —
  // independent configurations against the shared catalog.
  EngineOptions a_opts;
  a_opts.exec.partitions = 3;
  auto a = service.CreateSession(a_opts);
  EngineOptions b_opts;
  b_opts.rules = RuleOptions::None();
  auto b = service.CreateSession(b_opts);

  std::vector<QueryTicket> a_tickets, b_tickets;
  for (int i = 0; i < 8; ++i) {
    a_tickets.push_back(a->Submit(kSortedTailQuery));
    b_tickets.push_back(b->Submit(kGroupQuery));
  }
  const std::vector<std::string> a_expected = {"59", "58", "57", "56", "55"};
  const std::vector<std::string> b_expected = {"0", "1", "2", "3", "4"};
  for (QueryTicket& t : a_tickets) {
    ASSERT_TRUE(t.status().ok()) << t.status().ToString();
    EXPECT_EQ(Rows(t.output()), a_expected);
  }
  for (QueryTicket& t : b_tickets) {
    ASSERT_TRUE(t.status().ok()) << t.status().ToString();
    EXPECT_EQ(Rows(t.output()), b_expected);
  }

  EXPECT_EQ(a->Stats().succeeded, 8u);
  EXPECT_EQ(b->Stats().succeeded, 8u);
  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.sessions, 2u);
  EXPECT_EQ(m.submitted, 16u);
  EXPECT_EQ(m.succeeded, 16u);
  EXPECT_EQ(m.failed, 0u);
}

TEST(QueryServiceTest, RepeatedQueryIsAPlanCacheHit) {
  QueryService service;
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  QueryTicket first = session->Submit(kSortedTailQuery);
  first.Wait();
  ASSERT_TRUE(first.status().ok()) << first.status().ToString();
  EXPECT_FALSE(first.plan_cache_hit());

  QueryTicket second = session->Submit(kSortedTailQuery);
  second.Wait();
  ASSERT_TRUE(second.status().ok()) << second.status().ToString();
  EXPECT_TRUE(second.plan_cache_hit());
  EXPECT_EQ(Rows(second.output()), Rows(first.output()));

  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.plan_cache.hits, 1u);
  EXPECT_EQ(m.plan_cache.misses, 1u);
}

// Stats-epoch invalidation: a plan compiled against one stats
// generation must not be served once the collection (and therefore its
// sampled statistics) has changed. Mutations are applied on disk —
// append, truncate, and a same-size rewrite that only an mtime tick
// distinguishes — and after each, the cache must recompile.
TEST(QueryServiceTest, StatsEpochInvalidatesPlanCache) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS is set";
  StatsStore::Instance().Clear();

  // One on-disk NDJSON file; all lines the same width so the
  // same-size rewrite below is easy to produce.
  std::string tmpl = ::testing::TempDir() + "/jpar_svc_stats_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* made = ::mkdtemp(buf.data());
  ASSERT_NE(made, nullptr);
  const std::string dir = made;
  const std::string path = dir + "/rows.ndjson";
  auto write_rows = [&](int base, int n) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (int i = 0; i < n; ++i) {
      out << "{\"v\": " << (base + i) << "}\n";  // 3-digit values
    }
  };
  int mtime_step = 0;
  auto bump_mtime = [&](const std::string& p) {
    struct utimbuf times;
    times.actime = ::time(nullptr) + (++mtime_step) * 2;
    times.modtime = times.actime;
    ASSERT_EQ(::utime(p.c_str(), &times), 0) << p;
  };
  write_rows(/*base=*/110, /*n=*/64);

  QueryService service;
  Collection c;
  c.files.push_back(JsonFile::FromPath(path));
  service.catalog()->RegisterCollection("/disk", std::move(c));
  auto session = service.CreateSession();
  const char* query = R"(
      for $d in collection("/disk")
      where $d("v") gt 120
      order by $d("v")
      return $d("v"))";
  auto run = [&]() -> bool {
    QueryTicket t = session->Submit(query);
    t.Wait();
    EXPECT_TRUE(t.status().ok()) << t.status().ToString();
    return t.plan_cache_hit();
  };

  // First run misses and builds stats (bumping the stats epoch), so
  // the second run's key differs and misses again; by the third run
  // both the stats and storage epochs are quiescent and the cache hits.
  EXPECT_FALSE(run());
  run();  // epoch moved mid-flight; hit-or-miss depends on timing
  EXPECT_TRUE(run());

  struct Mutation {
    const char* what;
    std::function<void()> apply;
  };
  const Mutation mutations[] = {
      {"append", [&] { write_rows(110, 65); }},
      {"truncate", [&] { write_rows(110, 40); }},
      {"same-size rewrite", [&] { write_rows(210, 40); }},
  };
  for (const Mutation& m : mutations) {
    m.apply();
    bump_mtime(path);
    // The first post-mutation submit computes its key before executing,
    // so it may still hit; its execution detects the stale sample and
    // rebuilds, bumping the epoch. The next submit must recompile.
    run();
    EXPECT_FALSE(run()) << "stale plan served after " << m.what;
  }

  std::remove(path.c_str());
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

TEST(QueryServiceTest, CacheKeyedByOptionsNotJustText) {
  QueryService service;
  RegisterDocs(service.catalog(), MakeDocs());
  auto full = service.CreateSession();
  EngineOptions none;
  none.rules = RuleOptions::None();
  auto bare = service.CreateSession(none);

  full->Submit(kSortedTailQuery).Wait();
  QueryTicket t = bare->Submit(kSortedTailQuery);
  t.Wait();
  // Same text, different rule set: must compile separately (the plans
  // differ), not reuse the cached plan.
  EXPECT_FALSE(t.plan_cache_hit());
  EXPECT_EQ(service.Metrics().plan_cache.misses, 2u);
}

TEST(QueryServiceTest, PlanCacheEvictsAtCapacity) {
  ServiceOptions options;
  options.plan_cache_capacity = 2;
  options.worker_threads = 1;
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  for (int threshold : {10, 20, 30}) {
    std::string q = "for $d in collection(\"/c\") where $d(\"v\") gt " +
                    std::to_string(threshold) + " return $d(\"v\")";
    QueryTicket t = session->Submit(q);
    ASSERT_TRUE(t.status().ok()) << t.status().ToString();
  }
  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.plan_cache.misses, 3u);
  EXPECT_EQ(m.plan_cache.evictions, 1u);
  EXPECT_EQ(m.plan_cache.entries, 2u);
}

// Holds queries inside on_query_start until Release() — makes the
// admission tests deterministic: the gated query is pinned "in flight".
class QueryGate {
 public:
  std::function<void(std::string_view)> Hook() {
    return [this](std::string_view) {
      std::unique_lock<std::mutex> lock(mu_);
      ++started_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    };
  }
  void AwaitStarted(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return started_ >= n; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int started_ = 0;
  bool released_ = false;
};

TEST(QueryServiceTest, MemoryBudgetRejectsWhileInFlightCompletes) {
  QueryGate gate;
  ServiceOptions options;
  options.worker_threads = 1;
  options.memory_budget_bytes = 100ull << 20;
  options.on_query_start = gate.Hook();
  // Each query reserves 60 MB of the 100 MB budget.
  options.engine.exec.memory_limit_bytes = 60ull << 20;
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  QueryTicket in_flight = session->Submit(kSortedTailQuery);
  gate.AwaitStarted(1);  // pinned on the worker, reservation held

  QueryTicket rejected = session->Submit(kSortedTailQuery);
  // Rejection is synchronous: no worker ever sees this query.
  EXPECT_TRUE(rejected.done());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  gate.Release();
  in_flight.Wait();
  EXPECT_TRUE(in_flight.status().ok()) << in_flight.status().ToString();
  EXPECT_EQ(Rows(in_flight.output()),
            (std::vector<std::string>{"59", "58", "57", "56", "55"}));

  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.admission.rejected_memory, 1u);
  EXPECT_EQ(m.rejected, 1u);
  EXPECT_EQ(m.succeeded, 1u);
  EXPECT_EQ(session->Stats().rejected, 1u);

  // With the reservation released, the same submission is admitted.
  QueryTicket retry = session->Submit(kSortedTailQuery);
  retry.Wait();
  EXPECT_TRUE(retry.status().ok()) << retry.status().ToString();
}

// The spill-enabled twin of the test above: under the same budget
// pressure, a session that can degrade to disk is admitted with a
// clipped grant instead of being rejected, and its query still
// succeeds (running under the smaller soft budget).
TEST(QueryServiceTest, SpillCapableSessionClippedInsteadOfRejected) {
  QueryGate gate;
  ServiceOptions options;
  options.worker_threads = 2;
  options.memory_budget_bytes = 100ull << 20;
  options.on_query_start = gate.Hook();
  options.engine.exec.memory_limit_bytes = 60ull << 20;
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto strict_session = service.CreateSession();

  EngineOptions spill_opts = options.engine;
  spill_opts.exec.spill = SpillMode::kEnabled;
  auto spill_session = service.CreateSession(spill_opts);

  QueryTicket in_flight = strict_session->Submit(kSortedTailQuery);
  gate.AwaitStarted(1);  // holds 60 MB of the 100 MB budget

  // Only 40 MB remain; the same 60 MB request from the spill-capable
  // session is clipped, not rejected.
  QueryTicket clipped = spill_session->Submit(kSortedTailQuery);
  gate.Release();

  EXPECT_TRUE(in_flight.status().ok()) << in_flight.status().ToString();
  EXPECT_TRUE(clipped.status().ok()) << clipped.status().ToString();
  EXPECT_EQ(Rows(clipped.output()),
            (std::vector<std::string>{"59", "58", "57", "56", "55"}));

  service.Drain();
  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.admission.soft_clipped, 1u);
  EXPECT_EQ(m.admission.rejected_memory, 0u);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.succeeded, 2u);
  EXPECT_EQ(m.admission.reserved_bytes, 0u);
  // The metrics dump names the new counter.
  EXPECT_NE(m.ToString().find("soft-budget grants clipped"),
            std::string::npos);
}

TEST(QueryServiceTest, FullQueueRejectsWithUnavailable) {
  QueryGate gate;
  ServiceOptions options;
  options.worker_threads = 1;
  options.max_queue_depth = 1;
  options.on_query_start = gate.Hook();
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  QueryTicket running = session->Submit(kSortedTailQuery);
  gate.AwaitStarted(1);  // running on the only worker, queue empty

  QueryTicket queued = session->Submit(kSortedTailQuery);
  QueryTicket overflow = session->Submit(kSortedTailQuery);
  EXPECT_TRUE(overflow.done());
  EXPECT_EQ(overflow.status().code(), StatusCode::kUnavailable);

  gate.Release();
  EXPECT_TRUE(running.status().ok()) << running.status().ToString();
  EXPECT_TRUE(queued.status().ok()) << queued.status().ToString();

  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.admission.rejected_queue_full, 1u);
  EXPECT_EQ(m.admission.queued_peak, 1u);
}

TEST(QueryServiceTest, InvalidExecOptionsRejectedAtAdmission) {
  QueryService service;
  RegisterDocs(service.catalog(), MakeDocs());

  EngineOptions bad;
  bad.exec.partitions = 0;
  auto s1 = service.CreateSession(bad);
  EXPECT_EQ(s1->Submit(kSortedTailQuery).status().code(),
            StatusCode::kInvalidArgument);

  bad = EngineOptions();
  bad.exec.frame_bytes = 0;
  auto s2 = service.CreateSession(bad);
  EXPECT_EQ(s2->Submit(kSortedTailQuery).status().code(),
            StatusCode::kInvalidArgument);

  bad = EngineOptions();
  bad.exec.cores_per_node = -2;
  auto s3 = service.CreateSession(bad);
  EXPECT_EQ(s3->Submit(kSortedTailQuery).status().code(),
            StatusCode::kInvalidArgument);

  // Nothing reached the workers or the admission queue.
  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.rejected, 3u);
  EXPECT_EQ(m.admission.admitted, 0u);
}

TEST(QueryServiceTest, CompileErrorsCompleteTheTicket) {
  QueryService service;
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();
  QueryTicket t = session->Submit("for $d in (((");
  t.Wait();
  EXPECT_FALSE(t.status().ok());
  EXPECT_EQ(service.Metrics().failed, 1u);
  // A failed compile must not poison the cache.
  EXPECT_EQ(service.Metrics().plan_cache.entries, 0u);
}

TEST(QueryServiceTest, DrainWaitsForAllSubmitted) {
  ServiceOptions options;
  options.worker_threads = 2;
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());
  auto session = service.CreateSession();

  std::vector<QueryTicket> tickets;
  for (int i = 0; i < 12; ++i) tickets.push_back(session->Submit(kGroupQuery));
  service.Drain();
  for (QueryTicket& t : tickets) {
    EXPECT_TRUE(t.done());
    EXPECT_TRUE(t.status().ok()) << t.status().ToString();
  }
}

// ---------------------------------------------------------------------
// Concurrency stress: service and bare-engine results must match the
// sequential baseline exactly.
// ---------------------------------------------------------------------

std::vector<std::string> StressQueries() {
  std::vector<std::string> queries;
  for (int threshold : {0, 10, 20, 30, 40, 50}) {
    queries.push_back(
        "for $d in collection(\"/c\") where $d(\"v\") gt " +
        std::to_string(threshold) +
        " order by $d(\"v\") return $d(\"v\")");
  }
  queries.push_back(kGroupQuery);
  return queries;
}

TEST(QueryServiceStressTest, ManyClientsMatchSequentialResults) {
  const std::vector<std::string> docs = MakeDocs();
  const std::vector<std::string> queries = StressQueries();

  // Sequential baseline on a bare engine.
  Engine baseline;
  RegisterDocs(baseline.catalog(), docs);
  std::vector<std::vector<std::string>> expected;
  for (const std::string& q : queries) {
    auto out = baseline.Run(q);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    expected.push_back(Rows(*out));
  }

  ServiceOptions options;
  options.worker_threads = 4;
  options.engine.exec.partitions = 2;
  // This test measures correctness under load, not admission: keep the
  // queue deep enough that nothing is rejected.
  options.max_queue_depth = 1000;
  QueryService service(options);
  RegisterDocs(service.catalog(), docs);

  constexpr int kClientThreads = 4;
  constexpr int kQueriesPerClient = 20;
  std::vector<std::thread> clients;
  std::vector<std::string> failures;
  std::mutex failures_mu;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      auto session = service.CreateSession();
      std::vector<std::pair<size_t, QueryTicket>> tickets;
      for (int i = 0; i < kQueriesPerClient; ++i) {
        size_t qi = static_cast<size_t>(c + i) % queries.size();
        tickets.emplace_back(qi, session->Submit(queries[qi]));
      }
      for (auto& [qi, ticket] : tickets) {
        ticket.Wait();
        std::string failure;
        if (!ticket.status().ok()) {
          failure = ticket.status().ToString();
        } else if (Rows(ticket.output()) != expected[qi]) {
          failure = "wrong rows for query " + std::to_string(qi);
        }
        if (!failure.empty()) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back(std::move(failure));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_TRUE(failures.empty()) << failures.front();

  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.submitted, static_cast<uint64_t>(kClientThreads) *
                             kQueriesPerClient);
  EXPECT_EQ(m.succeeded, m.submitted);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_EQ(m.failed, 0u);
  // Every distinct (query, options) compiles at least once; everything
  // else should hit (racing first-compiles may add a few misses).
  EXPECT_EQ(m.plan_cache.hits + m.plan_cache.misses, m.submitted);
  EXPECT_GE(m.plan_cache.misses, queries.size());
  EXPECT_GT(m.plan_cache.hits, 0u);
}

// Clients hammer Submit while a dedicated thread cancels every other
// ticket as fast as it can. Run under TSan in CI: the point is that
// Cancel racing execution, completion, and Drain is data-race-free,
// and that every ticket still resolves to success or kCancelled with
// balanced counters.
TEST(QueryServiceStressTest, CancelRacingExecutionIsCleanAndBalanced) {
  ServiceOptions options;
  options.worker_threads = 4;
  options.max_queue_depth = 1000;
  QueryService service(options);
  RegisterDocs(service.catalog(), MakeDocs());

  constexpr int kClientThreads = 4;
  constexpr int kQueriesPerClient = 25;
  std::vector<std::thread> clients;
  std::vector<std::string> failures;
  std::mutex failures_mu;
  for (int c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      auto session = service.CreateSession();
      const std::vector<std::string> queries = StressQueries();
      for (int i = 0; i < kQueriesPerClient; ++i) {
        size_t qi = static_cast<size_t>(c + i) % queries.size();
        QueryTicket t = session->Submit(queries[qi]);
        // Odd submissions race a cancel against the running query;
        // either outcome (finished first or cancelled) is legal.
        if (i % 2 == 1) t.Cancel();
        Status st = t.status();
        if (!st.ok() && st.code() != StatusCode::kCancelled) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back(st.ToString());
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_TRUE(failures.empty()) << failures.front();

  service.Drain();
  ServiceMetrics m = service.Metrics();
  EXPECT_EQ(m.submitted,
            static_cast<uint64_t>(kClientThreads) * kQueriesPerClient);
  EXPECT_EQ(m.succeeded + m.failed, m.submitted);
  EXPECT_EQ(m.failed, m.cancelled);  // cancels are the only failures
  EXPECT_EQ(m.admission.reserved_bytes, 0u);
  EXPECT_EQ(m.admission.queued, 0u);
  EXPECT_EQ(m.admission.running, 0u);
}

// Destroying the service with queries still in flight — some of them
// just cancelled, some still queued — must drain cleanly rather than
// orphan workers or deadlock; the tickets outlive the service and all
// resolve.
TEST(QueryServiceStressTest, DestructionWithInFlightCancelledQueriesDrains) {
  std::vector<QueryTicket> tickets;
  {
    ServiceOptions options;
    options.worker_threads = 2;
    options.max_queue_depth = 1000;
    QueryService service(options);
    RegisterDocs(service.catalog(), MakeDocs());
    auto session = service.CreateSession();

    for (int i = 0; i < 30; ++i) {
      tickets.push_back(session->Submit(kGroupQuery));
      if (i % 3 == 0) tickets.back().Cancel();
    }
    // The destructor drains in-flight work, then stops the pool.
  }
  for (QueryTicket& t : tickets) {
    EXPECT_TRUE(t.done());
    Status st = t.status();
    EXPECT_TRUE(st.ok() || st.code() == StatusCode::kCancelled)
        << st.ToString();
  }
}

TEST(QueryServiceStressTest, BareEngineConcurrentRunWithThreads) {
  const std::vector<std::string> docs = MakeDocs();
  const std::vector<std::string> queries = StressQueries();

  Engine baseline;
  RegisterDocs(baseline.catalog(), docs);
  std::vector<std::vector<std::string>> expected;
  for (const std::string& q : queries) {
    auto out = baseline.Run(q);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    expected.push_back(Rows(*out));
  }

  // One shared engine, real partition threads, concurrent callers.
  EngineOptions options;
  options.exec.partitions = 4;
  options.exec.use_threads = true;
  Engine engine(options);
  RegisterDocs(engine.catalog(), docs);

  constexpr int kThreads = 4;
  constexpr int kRepeats = 5;
  std::vector<std::thread> callers;
  std::vector<std::string> failures;
  std::mutex failures_mu;
  for (int c = 0; c < kThreads; ++c) {
    callers.emplace_back([&, c] {
      for (int i = 0; i < kRepeats; ++i) {
        size_t qi = static_cast<size_t>(c + i) % queries.size();
        auto out = engine.Run(queries[qi]);
        std::string failure;
        if (!out.ok()) {
          failure = out.status().ToString();
        } else if (Rows(*out) != expected[qi]) {
          failure = "wrong rows for query " + std::to_string(qi);
        }
        if (!failure.empty()) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back(std::move(failure));
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_TRUE(failures.empty()) << failures.front();
}

}  // namespace
}  // namespace jpar
