#include "json/item.h"

#include <gtest/gtest.h>

namespace jpar {
namespace {

TEST(ItemTest, DefaultIsNull) {
  Item item;
  EXPECT_TRUE(item.is_null());
  EXPECT_TRUE(item.is_atomic());
  EXPECT_EQ(item.ToJsonString(), "null");
}

TEST(ItemTest, Scalars) {
  EXPECT_EQ(Item::Boolean(true).ToJsonString(), "true");
  EXPECT_EQ(Item::Boolean(false).ToJsonString(), "false");
  EXPECT_EQ(Item::Int64(-42).ToJsonString(), "-42");
  EXPECT_EQ(Item::Double(2.5).ToJsonString(), "2.5");
  EXPECT_EQ(Item::String("hi").ToJsonString(), "\"hi\"");
}

TEST(ItemTest, IntegralDoubleRendersWithFraction) {
  // Keeps doubles distinguishable from ints in serialized output.
  EXPECT_EQ(Item::Double(3.0).ToJsonString(), "3.0");
}

TEST(ItemTest, StringEscaping) {
  EXPECT_EQ(Item::String("a\"b\\c\nd").ToJsonString(),
            "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(Item::String(std::string("\x01", 1)).ToJsonString(),
            "\"\\u0001\"");
}

TEST(ItemTest, ArraysAndObjects) {
  Item arr = Item::MakeArray({Item::Int64(1), Item::String("two")});
  EXPECT_TRUE(arr.is_array());
  EXPECT_EQ(arr.ToJsonString(), "[1,\"two\"]");

  Item obj = Item::MakeObject(
      {{"a", Item::Int64(1)}, {"b", Item::MakeArray({Item::Null()})}});
  EXPECT_TRUE(obj.is_object());
  EXPECT_EQ(obj.ToJsonString(), "{\"a\":1,\"b\":[null]}");
}

TEST(ItemTest, GetField) {
  Item obj = Item::MakeObject({{"x", Item::Int64(5)}});
  ASSERT_TRUE(obj.GetField("x").has_value());
  EXPECT_EQ(*obj.GetField("x"), Item::Int64(5));
  EXPECT_FALSE(obj.GetField("y").has_value());
  EXPECT_FALSE(Item::Int64(1).GetField("x").has_value());
}

TEST(ItemTest, SequenceFlattening) {
  Item inner = Item::MakeSequence({Item::Int64(2), Item::Int64(3)});
  Item flat = Item::MakeSequence({Item::Int64(1), inner, Item::Int64(4)});
  ASSERT_TRUE(flat.is_sequence());
  ASSERT_EQ(flat.sequence().size(), 4u);
  EXPECT_EQ(flat.sequence()[2], Item::Int64(3));
}

TEST(ItemTest, SingletonSequenceCollapses) {
  Item s = Item::MakeSequence({Item::String("only")});
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(s.string_value(), "only");
}

TEST(ItemTest, EmptySequence) {
  Item empty = Item::EmptySequence();
  EXPECT_TRUE(empty.is_sequence());
  EXPECT_EQ(empty.SequenceLength(), 0u);
  EXPECT_EQ(Item::MakeSequence({}).SequenceLength(), 0u);
}

TEST(ItemTest, NumericEqualityAcrossKinds) {
  EXPECT_TRUE(Item::Int64(1).Equals(Item::Double(1.0)));
  EXPECT_FALSE(Item::Int64(1).Equals(Item::Double(1.5)));
  EXPECT_FALSE(Item::Int64(1).Equals(Item::String("1")));
}

TEST(ItemTest, DeepEquality) {
  auto make = [] {
    return Item::MakeObject(
        {{"a", Item::MakeArray({Item::Int64(1), Item::Int64(2)})},
         {"b", Item::String("x")}});
  };
  EXPECT_TRUE(make().Equals(make()));
  Item other = Item::MakeObject(
      {{"a", Item::MakeArray({Item::Int64(1), Item::Int64(3)})},
       {"b", Item::String("x")}});
  EXPECT_FALSE(make().Equals(other));
}

TEST(ItemTest, ObjectEqualityIsOrderSensitive) {
  // JSONiq objects preserve insertion order; equality follows it.
  Item a = Item::MakeObject({{"x", Item::Int64(1)}, {"y", Item::Int64(2)}});
  Item b = Item::MakeObject({{"y", Item::Int64(2)}, {"x", Item::Int64(1)}});
  EXPECT_FALSE(a.Equals(b));
}

TEST(ItemTest, CompareNumbersStringsDatesBooleans) {
  EXPECT_EQ(*Item::Int64(1).Compare(Item::Double(2.0)), -1);
  EXPECT_EQ(*Item::Double(2.0).Compare(Item::Int64(2)), 0);
  EXPECT_EQ(*Item::String("b").Compare(Item::String("a")), 1);
  EXPECT_EQ(*Item::Boolean(false).Compare(Item::Boolean(true)), -1);
  DateTimeValue d1{2003, 12, 25, 0, 0, 0};
  DateTimeValue d2{2004, 1, 1, 0, 0, 0};
  EXPECT_EQ(*Item::DateTime(d1).Compare(Item::DateTime(d2)), -1);
}

TEST(ItemTest, CompareIncompatibleKindsFails) {
  EXPECT_FALSE(Item::Int64(1).Compare(Item::String("1")).ok());
  EXPECT_FALSE(Item::MakeArray({}).Compare(Item::MakeArray({})).ok());
}

TEST(ItemTest, EffectiveBooleanValue) {
  EXPECT_FALSE(*Item::Null().EffectiveBooleanValue());
  EXPECT_FALSE(*Item::Boolean(false).EffectiveBooleanValue());
  EXPECT_TRUE(*Item::Boolean(true).EffectiveBooleanValue());
  EXPECT_FALSE(*Item::Int64(0).EffectiveBooleanValue());
  EXPECT_TRUE(*Item::Int64(-1).EffectiveBooleanValue());
  EXPECT_FALSE(*Item::String("").EffectiveBooleanValue());
  EXPECT_TRUE(*Item::String("x").EffectiveBooleanValue());
  EXPECT_FALSE(*Item::EmptySequence().EffectiveBooleanValue());
  EXPECT_TRUE(*Item::MakeArray({}).EffectiveBooleanValue());
  EXPECT_TRUE(*Item::MakeObject({}).EffectiveBooleanValue());
  // Multi-item sequences have no EBV (dynamic error).
  Item multi = Item::MakeSequence({Item::Int64(1), Item::Int64(2)});
  EXPECT_FALSE(multi.EffectiveBooleanValue().ok());
}

TEST(ItemTest, SequenceSerializationJoinsMembers) {
  Item seq = Item::MakeSequence({Item::Int64(1), Item::String("a")});
  EXPECT_EQ(seq.ToJsonString(), "1, \"a\"");
}

TEST(ItemTest, EstimateSizeGrowsWithPayload) {
  Item small = Item::String("x");
  Item big = Item::String(std::string(1000, 'x'));
  EXPECT_GT(big.EstimateSizeBytes(), small.EstimateSizeBytes() + 900);
  Item nested = Item::MakeArray({big, big});
  EXPECT_GT(nested.EstimateSizeBytes(), 2 * big.EstimateSizeBytes() - 1);
}

TEST(ItemTest, GroupKeyDistinguishesKinds) {
  std::string k1, k2, k3;
  Item::Int64(1).AppendGroupKeyTo(&k1);
  Item::String("1").AppendGroupKeyTo(&k2);
  Item::Boolean(true).AppendGroupKeyTo(&k3);
  EXPECT_NE(k1, k2);
  EXPECT_NE(k1, k3);
}

TEST(ItemTest, GroupKeyNumericPromotion) {
  // Int 1 and double 1.0 must group together (they compare equal).
  std::string k1, k2;
  Item::Int64(1).AppendGroupKeyTo(&k1);
  Item::Double(1.0).AppendGroupKeyTo(&k2);
  EXPECT_EQ(k1, k2);
}

TEST(ItemTest, CopyIsShallowAndCheap) {
  Item big = Item::MakeArray(Item::ItemVector(1000, Item::Int64(7)));
  Item copy = big;
  EXPECT_EQ(&big.array(), &copy.array());  // shared payload
}

}  // namespace
}  // namespace jpar
