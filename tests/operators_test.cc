#include "runtime/operators.h"

#include <gtest/gtest.h>

namespace jpar {
namespace {

std::vector<Tuple> RunOps(const std::vector<UnaryOpDesc>& ops, Tuple seed) {
  std::vector<Tuple> out;
  EvalContext ctx;
  Status st = RunChain(ops, 0, std::move(seed), &ctx, [&](Tuple t) {
    out.push_back(std::move(t));
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(OperatorsTest, EmptyChainPassesThrough) {
  std::vector<Tuple> out = RunOps({}, {Item::Int64(1)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][0], Item::Int64(1));
}

TEST(OperatorsTest, AssignAppendsColumn) {
  auto eval = MakeFunctionEval(
      Builtin::kAdd, {MakeColumnEval(0), MakeConstantEval(Item::Int64(10))});
  ASSERT_TRUE(eval.ok());
  std::vector<Tuple> out =
      RunOps({UnaryOpDesc::Assign(*eval)}, {Item::Int64(5)});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[0][1], Item::Int64(15));
}

TEST(OperatorsTest, SelectFilters) {
  auto pred = MakeFunctionEval(
      Builtin::kGt, {MakeColumnEval(0), MakeConstantEval(Item::Int64(3))});
  ASSERT_TRUE(pred.ok());
  EXPECT_EQ(RunOps({UnaryOpDesc::Select(*pred)}, {Item::Int64(5)}).size(), 1u);
  EXPECT_EQ(RunOps({UnaryOpDesc::Select(*pred)}, {Item::Int64(2)}).size(), 0u);
}

TEST(OperatorsTest, UnnestExplodesSequences) {
  std::vector<UnaryOpDesc> ops = {UnaryOpDesc::Unnest(MakeColumnEval(0))};
  Item seq = Item::MakeSequence(
      {Item::Int64(1), Item::Int64(2), Item::Int64(3)});
  std::vector<Tuple> out = RunOps(ops, {seq});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1][1], Item::Int64(2));
  // Non-sequence unnests as a singleton; empty sequence drops the tuple.
  EXPECT_EQ(RunOps(ops, {Item::Int64(9)}).size(), 1u);
  EXPECT_EQ(RunOps(ops, {Item::EmptySequence()}).size(), 0u);
}

TEST(OperatorsTest, ProjectReordersColumns) {
  std::vector<UnaryOpDesc> ops = {UnaryOpDesc::Project({2, 0})};
  std::vector<Tuple> out =
      RunOps(ops, {Item::Int64(1), Item::Int64(2), Item::Int64(3)});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[0][0], Item::Int64(3));
  EXPECT_EQ(out[0][1], Item::Int64(1));
}

TEST(OperatorsTest, ProjectOutOfRangeFails) {
  EvalContext ctx;
  Status st = RunChain({UnaryOpDesc::Project({7})}, 0, {Item::Int64(1)},
                       &ctx, [](Tuple) { return Status::OK(); });
  EXPECT_FALSE(st.ok());
}

TEST(OperatorsTest, ChainComposition) {
  // UNNEST -> ASSIGN (+100) -> SELECT (even sums only).
  auto plus = MakeFunctionEval(
      Builtin::kAdd, {MakeColumnEval(1), MakeConstantEval(Item::Int64(100))});
  auto is_even = MakeFunctionEval(
      Builtin::kEq,
      {MakeFunctionEval(Builtin::kMod, {MakeColumnEval(2),
                                        MakeConstantEval(Item::Int64(2))})
           .ValueOrDie(),
       MakeConstantEval(Item::Int64(0))});
  std::vector<UnaryOpDesc> ops = {UnaryOpDesc::Unnest(MakeColumnEval(0)),
                                  UnaryOpDesc::Assign(*plus),
                                  UnaryOpDesc::Select(*is_even)};
  Item seq = Item::MakeSequence(
      {Item::Int64(1), Item::Int64(2), Item::Int64(3), Item::Int64(4)});
  std::vector<Tuple> out = RunOps(ops, {seq});
  ASSERT_EQ(out.size(), 2u);  // 102 and 104
  EXPECT_EQ(out[0][2], Item::Int64(102));
  EXPECT_EQ(out[1][2], Item::Int64(104));
}

TEST(OperatorsTest, SubplanAggregatesPerTuple) {
  // SUBPLAN { UNNEST iterate($0); AGGREGATE count($1) } — Fig. 11.
  auto subplan = std::make_shared<SubplanDesc>();
  subplan->ops.push_back(UnaryOpDesc::Unnest(MakeColumnEval(0)));
  AggSpec spec;
  spec.kind = AggKind::kCount;
  spec.arg = MakeColumnEval(1);
  subplan->aggs.push_back(spec);

  std::vector<UnaryOpDesc> ops = {UnaryOpDesc::Subplan(subplan)};
  Item seq = Item::MakeSequence(
      {Item::Int64(1), Item::Int64(2), Item::Int64(3)});
  std::vector<Tuple> out = RunOps(ops, {seq});
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].size(), 2u);  // seed ++ count
  EXPECT_EQ(out[0][1], Item::Int64(3));

  // An empty sequence yields count 0 (the aggregate still runs).
  out = RunOps(ops, {Item::EmptySequence()});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0][1], Item::Int64(0));
}

TEST(OperatorsTest, BoundaryChargingTracksBytes) {
  EvalContext ctx;
  std::vector<UnaryOpDesc> ops = {UnaryOpDesc::Unnest(MakeColumnEval(0))};
  Item seq = Item::MakeSequence(
      {Item::String(std::string(500, 'x')), Item::String("y")});
  Status st = RunChain(ops, 0, {seq}, &ctx,
                       [](Tuple) { return Status::OK(); });
  ASSERT_TRUE(st.ok());
  EXPECT_GT(ctx.boundary_tuples, 0u);
  // The seed tuple carried the whole sequence: max tuple >= 500 bytes.
  EXPECT_GT(ctx.max_tuple_bytes, 500u);
  EXPECT_GT(ctx.boundary_bytes, 500u);

  // Charging can be disabled.
  EvalContext off;
  off.charge_boundaries = false;
  st = RunChain(ops, 0, {seq}, &off, [](Tuple) { return Status::OK(); });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(off.boundary_tuples, 0u);
}

TEST(OperatorsTest, ErrorsPropagateFromEvaluators) {
  auto bad = MakeFunctionEval(
      Builtin::kLt, {MakeColumnEval(0), MakeConstantEval(Item::String("x"))});
  ASSERT_TRUE(bad.ok());
  EvalContext ctx;
  Status st = RunChain({UnaryOpDesc::Select(*bad)}, 0, {Item::Int64(1)},
                       &ctx, [](Tuple) { return Status::OK(); });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTypeError);
}

TEST(OperatorsTest, SinkErrorsStopTheChain) {
  std::vector<UnaryOpDesc> ops = {UnaryOpDesc::Unnest(MakeColumnEval(0))};
  Item seq = Item::MakeSequence({Item::Int64(1), Item::Int64(2)});
  int calls = 0;
  EvalContext ctx;
  Status st = RunChain(ops, 0, {seq}, &ctx, [&](Tuple) -> Status {
    ++calls;
    return Status::Internal("sink full");
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1);
}

TEST(OperatorsTest, DescriptorsPrint) {
  EXPECT_EQ(UnaryOpDesc::Assign(MakeColumnEval(0)).ToString(),
            "ASSIGN $col0");
  EXPECT_EQ(UnaryOpDesc::Project({0, 2}).ToString(), "PROJECT $col0, $col2");
  ScanDesc scan;
  scan.kind = ScanDesc::Kind::kDataScan;
  scan.collection = "c";
  scan.steps = {PathStep::Key("a"), PathStep::KeysOrMembers()};
  EXPECT_EQ(scan.ToString(), "DATASCAN collection(\"c\")(\"a\")()");
}

}  // namespace
}  // namespace jpar
