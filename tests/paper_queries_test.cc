// The paper's five evaluation queries (Listings 7-11) run against the
// synthetic NOAA dataset and are checked against an independent
// reference evaluator (plain DOM walking, no query engine), with every
// rule configuration and several partition counts.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/sensor_generator.h"
#include "json/parser.h"

namespace jpar {
namespace {

// ---------------------------------------------------------------------
// Queries (verbatim from the paper, Listings 7-11).
// ---------------------------------------------------------------------

constexpr const char* kQ0 = R"(
  for $r in collection("/sensors")("root")()("results")()
  let $datetime := dateTime(data($r("date")))
  where year-from-dateTime($datetime) ge 2003
    and month-from-dateTime($datetime) eq 12
    and day-from-dateTime($datetime) eq 25
  return $r)";

constexpr const char* kQ0b = R"(
  for $r in collection("/sensors")("root")()("results")()("date")
  let $datetime := dateTime(data($r))
  where year-from-dateTime($datetime) ge 2003
    and month-from-dateTime($datetime) eq 12
    and day-from-dateTime($datetime) eq 25
  return $r)";

constexpr const char* kQ1 = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count($r("station")))";

constexpr const char* kQ1b = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count(for $i in $r return $i("station")))";

constexpr const char* kQ2 = R"(
  avg(
    for $r_min in collection("/sensors")("root")()("results")()
    for $r_max in collection("/sensors")("root")()("results")()
    where $r_min("station") eq $r_max("station")
      and $r_min("date") eq $r_max("date")
      and $r_min("dataType") eq "TMIN"
      and $r_max("dataType") eq "TMAX"
    return $r_max("value") - $r_min("value")
  ) div 10)";

// ---------------------------------------------------------------------
// Reference evaluator: direct DOM computation, no query machinery.
// ---------------------------------------------------------------------

struct Measurement {
  std::string date;
  std::string data_type;
  std::string station;
  int64_t value;
};

std::vector<Measurement> ExtractMeasurements(const Collection& collection) {
  std::vector<Measurement> out;
  for (const JsonFile& file : collection.files) {
    auto text = file.Load();
    EXPECT_TRUE(text.ok());
    auto doc = ParseJson(**text);
    EXPECT_TRUE(doc.ok());
    // GetField returns optional<Item> by value; copy fields out rather
    // than binding references into expiring temporaries.
    const Item root = *doc->GetField("root");
    for (const Item& record : root.array()) {
      const Item results = *record.GetField("results");
      for (const Item& m : results.array()) {
        out.push_back({m.GetField("date")->string_value(),
                       m.GetField("dataType")->string_value(),
                       m.GetField("station")->string_value(),
                       m.GetField("value")->int64_value()});
      }
    }
  }
  return out;
}

bool IsChristmasFrom2003(const std::string& date) {
  // Dates are "YYYYMMDDT00:00".
  return date.size() >= 8 && date.substr(0, 4) >= "2003" &&
         date.substr(4, 4) == "1225";
}

int64_t ReferenceQ0Count(const std::vector<Measurement>& ms) {
  int64_t n = 0;
  for (const Measurement& m : ms) n += IsChristmasFrom2003(m.date) ? 1 : 0;
  return n;
}

std::multiset<int64_t> ReferenceQ1Counts(const std::vector<Measurement>& ms) {
  std::map<std::string, int64_t> by_date;
  for (const Measurement& m : ms) {
    if (m.data_type == "TMIN") ++by_date[m.date];
  }
  std::multiset<int64_t> out;
  for (const auto& [date, count] : by_date) out.insert(count);
  return out;
}

double ReferenceQ2(const std::vector<Measurement>& ms, bool* has_pairs) {
  std::map<std::pair<std::string, std::string>, std::vector<int64_t>> tmin;
  std::map<std::pair<std::string, std::string>, std::vector<int64_t>> tmax;
  for (const Measurement& m : ms) {
    if (m.data_type == "TMIN") tmin[{m.station, m.date}].push_back(m.value);
    if (m.data_type == "TMAX") tmax[{m.station, m.date}].push_back(m.value);
  }
  double sum = 0;
  int64_t count = 0;
  for (const auto& [key, max_values] : tmax) {
    auto it = tmin.find(key);
    if (it == tmin.end()) continue;
    for (int64_t mx : max_values) {
      for (int64_t mn : it->second) {
        sum += static_cast<double>(mx - mn);
        ++count;
      }
    }
  }
  *has_pairs = count > 0;
  return count > 0 ? (sum / static_cast<double>(count)) / 10.0 : 0.0;
}

// ---------------------------------------------------------------------

class PaperQueriesTest : public ::testing::Test {
 protected:
  static Collection MakeData() {
    SensorDataSpec spec;
    spec.num_files = 3;
    spec.records_per_file = 12;
    spec.measurements_per_array = 24;
    spec.num_stations = 6;  // few stations => the self-join finds pairs
    spec.seed = 7;
    return GenerateSensorCollection(spec);
  }

  static Engine MakeEngine(RuleOptions rules, int partitions) {
    EngineOptions options;
    options.rules = rules;
    options.exec.partitions = partitions;
    Engine engine(options);
    engine.catalog()->RegisterCollection("/sensors", MakeData());
    return engine;
  }
};

TEST_F(PaperQueriesTest, Q0MatchesReference) {
  std::vector<Measurement> ms = ExtractMeasurements(MakeData());
  Engine engine = MakeEngine(RuleOptions::All(), 2);
  auto result = engine.Run(kQ0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(static_cast<int64_t>(result->items.size()),
            ReferenceQ0Count(ms));
  for (const Item& r : result->items) {
    EXPECT_TRUE(IsChristmasFrom2003(r.GetField("date")->string_value()));
  }
}

TEST_F(PaperQueriesTest, Q0bMatchesReference) {
  std::vector<Measurement> ms = ExtractMeasurements(MakeData());
  Engine engine = MakeEngine(RuleOptions::All(), 2);
  auto result = engine.Run(kQ0b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(static_cast<int64_t>(result->items.size()),
            ReferenceQ0Count(ms));
  for (const Item& r : result->items) {
    ASSERT_TRUE(r.is_string());
    EXPECT_TRUE(IsChristmasFrom2003(r.string_value()));
  }
}

TEST_F(PaperQueriesTest, Q1MatchesReference) {
  std::vector<Measurement> ms = ExtractMeasurements(MakeData());
  std::multiset<int64_t> expected = ReferenceQ1Counts(ms);
  for (const char* query : {kQ1, kQ1b}) {
    Engine engine = MakeEngine(RuleOptions::All(), 2);
    auto result = engine.Run(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::multiset<int64_t> actual;
    for (const Item& item : result->items) {
      ASSERT_TRUE(item.is_int64()) << item;
      actual.insert(item.int64_value());
    }
    EXPECT_EQ(actual, expected) << query;
  }
}

TEST_F(PaperQueriesTest, Q2MatchesReference) {
  std::vector<Measurement> ms = ExtractMeasurements(MakeData());
  bool has_pairs = false;
  double expected = ReferenceQ2(ms, &has_pairs);
  ASSERT_TRUE(has_pairs) << "spec produced no TMIN/TMAX pairs; adjust seed";
  Engine engine = MakeEngine(RuleOptions::All(), 2);
  auto result = engine.Run(kQ2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->items.size(), 1u);
  ASSERT_TRUE(result->items[0].is_numeric()) << result->items[0];
  EXPECT_NEAR(result->items[0].AsDouble(), expected, 1e-9);
}

TEST_F(PaperQueriesTest, AllRuleConfigurationsAgree) {
  struct Config {
    const char* name;
    RuleOptions rules;
  };
  RuleOptions path_only = RuleOptions::None();
  path_only.path_rules = true;
  RuleOptions path_pipe = path_only;
  path_pipe.pipelining_rules = true;
  RuleOptions all = RuleOptions::All();
  RuleOptions no_two_step = RuleOptions::All();
  no_two_step.two_step_aggregation = false;
  const Config configs[] = {
      {"none", RuleOptions::None()},
      {"path", path_only},
      {"path+pipe", path_pipe},
      {"all", all},
      {"all-no-two-step", no_two_step},
  };
  for (const char* query : {kQ0, kQ0b, kQ1, kQ1b, kQ2}) {
    std::vector<std::string> baseline;
    for (const Config& config : configs) {
      Engine engine = MakeEngine(config.rules, 2);
      auto result = engine.Run(query);
      ASSERT_TRUE(result.ok())
          << config.name << ": " << result.status().ToString();
      std::vector<std::string> rows;
      for (const Item& item : result->items) {
        rows.push_back(item.ToJsonString());
      }
      std::sort(rows.begin(), rows.end());
      if (baseline.empty()) {
        baseline = rows;
      } else {
        EXPECT_EQ(rows, baseline) << config.name << " on " << query;
      }
    }
  }
}

TEST_F(PaperQueriesTest, PartitionCountsAgree) {
  for (const char* query : {kQ0, kQ0b, kQ1, kQ2}) {
    std::vector<std::string> baseline;
    for (int partitions : {1, 2, 4, 8}) {
      Engine engine = MakeEngine(RuleOptions::All(), partitions);
      auto result = engine.Run(query);
      ASSERT_TRUE(result.ok())
          << partitions << " partitions: " << result.status().ToString();
      std::vector<std::string> rows;
      for (const Item& item : result->items) {
        rows.push_back(item.ToJsonString());
      }
      std::sort(rows.begin(), rows.end());
      if (baseline.empty()) {
        baseline = rows;
      } else {
        EXPECT_EQ(rows, baseline) << partitions << " partitions on " << query;
      }
    }
  }
}

TEST_F(PaperQueriesTest, ThreadedExecutionAgrees) {
  for (const char* query : {kQ0, kQ1, kQ2}) {
    EngineOptions options;
    options.exec.partitions = 4;
    options.exec.use_threads = true;
    Engine threaded(options);
    threaded.catalog()->RegisterCollection("/sensors", MakeData());
    Engine serial = MakeEngine(RuleOptions::All(), 4);
    auto a = threaded.Run(query);
    auto b = serial.Run(query);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    std::vector<std::string> ra, rb;
    for (const Item& i : a->items) ra.push_back(i.ToJsonString());
    for (const Item& i : b->items) rb.push_back(i.ToJsonString());
    std::sort(ra.begin(), ra.end());
    std::sort(rb.begin(), rb.end());
    EXPECT_EQ(ra, rb) << query;
  }
}

}  // namespace
}  // namespace jpar
