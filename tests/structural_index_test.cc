// Stage-1 scanner tests: bitmap correctness against a naive reference
// classifier, cross-kernel equality (SWAR vs SSE2 vs AVX2), and the
// Next* iteration helpers. DESIGN.md §9.

#include "json/structural_index.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

namespace jpar {
namespace {

/// Byte-at-a-time reference classifier. Follows the index's prefix-XOR
/// convention: the opening quote and string body are in-string, the
/// closing quote is not.
struct Reference {
  std::vector<bool> quote;
  std::vector<bool> op;
  std::vector<bool> newline;
  std::vector<bool> in_string;
};

Reference Classify(std::string_view text) {
  Reference r;
  r.quote.assign(text.size(), false);
  r.op.assign(text.size(), false);
  r.newline.assign(text.size(), false);
  r.in_string.assign(text.size(), false);
  bool in_str = false;
  bool escaped = false;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    // Escapes only shield quotes (exactly what stage 1 resolves); a
    // backslash before any other byte changes nothing about its class.
    bool was_escaped = escaped;
    escaped = c == '\\' && !was_escaped;
    if (c == '"' && !was_escaped) {
      r.quote[i] = true;
      if (!in_str) r.in_string[i] = true;
      in_str = !in_str;
      continue;
    }
    if (in_str) {
      r.in_string[i] = true;
      continue;
    }
    if (c == '{' || c == '}' || c == '[' || c == ']' || c == ',' ||
        c == ':') {
      r.op[i] = true;
    }
    if (c == '\n') r.newline[i] = true;
  }
  return r;
}

void ExpectMatchesReference(std::string_view text) {
  Reference ref = Classify(text);
  for (SimdLevel level : SupportedSimdLevels()) {
    StructuralIndex idx = StructuralIndex::Build(text, level);
    ASSERT_EQ(idx.size(), text.size());
    for (size_t i = 0; i < text.size(); ++i) {
      ASSERT_EQ(idx.IsQuote(i), ref.quote[i])
          << SimdLevelName(level) << " quote @" << i << " in " << text;
      ASSERT_EQ(idx.IsOp(i), ref.op[i])
          << SimdLevelName(level) << " op @" << i << " in " << text;
      ASSERT_EQ(idx.IsNewline(i), ref.newline[i])
          << SimdLevelName(level) << " newline @" << i << " in " << text;
      ASSERT_EQ(idx.InString(i), ref.in_string[i])
          << SimdLevelName(level) << " in_string @" << i << " in " << text;
    }
  }
}

TEST(StructuralIndexTest, EmptyAndTrivialInputs) {
  StructuralIndex idx = StructuralIndex::Build("");
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.NextOp(0), StructuralIndex::npos);
  EXPECT_EQ(idx.NextQuote(0), StructuralIndex::npos);
  EXPECT_EQ(idx.NextNewline(0), StructuralIndex::npos);
  ExpectMatchesReference("1");
  ExpectMatchesReference("null");
  ExpectMatchesReference("\n");
}

TEST(StructuralIndexTest, ClassifiesBasicDocument) {
  std::string doc = R"({"a":1,"b":[true,null,2.5],"c":{"d":"x"}})";
  ExpectMatchesReference(doc);
  StructuralIndex idx = StructuralIndex::Build(doc);
  EXPECT_TRUE(idx.IsOp(0));      // '{'
  EXPECT_TRUE(idx.IsQuote(1));   // opening '"' of "a"
  EXPECT_TRUE(idx.InString(1));  // opening quote is in-string
  EXPECT_FALSE(idx.InString(3));  // closing quote is not
  EXPECT_TRUE(idx.IsOp(4));       // ':'
}

TEST(StructuralIndexTest, StructuralCharsInsideStringsAreMasked) {
  std::string doc = R"({"k":"br{ck}ets [and] c,l:ns","n":1})";
  ExpectMatchesReference(doc);
  StructuralIndex idx = StructuralIndex::Build(doc);
  // The braces/brackets/colons inside the string must not be ops.
  for (size_t i = 7; i < 27; ++i) EXPECT_FALSE(idx.IsOp(i)) << i;
}

TEST(StructuralIndexTest, EscapedQuotesStayInString) {
  // "he\"llo" — the escaped quote must not close the string.
  ExpectMatchesReference("{\"k\":\"he\\\"llo\"}");
  // "\\" — even-length backslash run: the next quote does close.
  ExpectMatchesReference("{\"k\":\"\\\\\"}");
  // Odd and even runs of every length up to a block and beyond.
  for (int run = 1; run <= 70; ++run) {
    std::string doc = "{\"k\":\"" + std::string(run, '\\') + "\"";
    if (run % 2 != 0) doc += "\"";  // escaped quote needs a real closer
    doc += "}";
    ExpectMatchesReference(doc);
  }
}

TEST(StructuralIndexTest, BackslashRunsAcrossBlockBoundaries) {
  // Slide a backslash run + quote across the 64-byte block boundary so
  // the odd-length carry between blocks is exercised at every offset.
  for (int pad = 50; pad < 80; ++pad) {
    for (int run = 1; run <= 4; ++run) {
      std::string doc = std::string(static_cast<size_t>(pad), ' ') + "\"a" +
                        std::string(static_cast<size_t>(run), '\\') +
                        "\" , [\n]";
      ExpectMatchesReference(doc);
    }
  }
  ExpectMatchesReference(std::string(200, '\\'));
}

TEST(StructuralIndexTest, StringsSpanningBlockBoundaries) {
  for (size_t len : {60u, 63u, 64u, 65u, 127u, 128u, 129u, 300u}) {
    std::string doc = "[\"" + std::string(len, 'x') + "\",1]";
    ExpectMatchesReference(doc);
  }
  // Unterminated string: everything after the quote is in-string.
  std::string open = "{\"k\":\"" + std::string(100, 'y');
  ExpectMatchesReference(open);
  StructuralIndex idx = StructuralIndex::Build(open);
  EXPECT_TRUE(idx.InString(open.size() - 1));
}

TEST(StructuralIndexTest, NewlinesInsideStringsAreNotRecordBreaks) {
  std::string doc = "{\"k\":\"a\nb\"}\n{\"k\":2}\n";
  ExpectMatchesReference(doc);
  StructuralIndex idx = StructuralIndex::Build(doc);
  EXPECT_FALSE(idx.IsNewline(7));   // inside the string
  EXPECT_TRUE(idx.IsNewline(11));   // record separator
  EXPECT_EQ(idx.NextNewline(0), 11u);
  EXPECT_EQ(idx.NextNewline(12), 19u);
}

TEST(StructuralIndexTest, NextWalksMatchReference) {
  std::string doc;
  for (int i = 0; i < 200; ++i) {
    doc += "{\"s\":\"a\\\"b\",\"v\":[" + std::to_string(i) + ",2]}\n";
  }
  Reference ref = Classify(doc);
  for (SimdLevel level : SupportedSimdLevels()) {
    StructuralIndex idx = StructuralIndex::Build(doc, level);
    // Walk ops via NextOp and compare against the reference bitmap.
    std::vector<size_t> got;
    for (size_t p = idx.NextOp(0); p != StructuralIndex::npos;
         p = idx.NextOp(p + 1)) {
      got.push_back(p);
    }
    std::vector<size_t> want;
    for (size_t i = 0; i < doc.size(); ++i) {
      if (ref.op[i]) want.push_back(i);
    }
    EXPECT_EQ(got, want) << SimdLevelName(level);
    // NextOpOrQuote merges both classes in order.
    size_t p = 0;
    for (size_t i = 0; i < doc.size(); ++i) {
      if (!ref.op[i] && !ref.quote[i]) continue;
      EXPECT_EQ(idx.NextOpOrQuote(p), i) << SimdLevelName(level);
      p = i + 1;
    }
    EXPECT_EQ(idx.NextOpOrQuote(p), StructuralIndex::npos);
  }
}

TEST(StructuralIndexTest, KernelsAgreeOnRandomBuffers) {
  std::mt19937 rng(20260806);
  // Biased byte soup: heavy in structural chars, quotes, backslashes
  // and newlines so the interesting masks churn constantly.
  const std::string alphabet = "{}[],:\"\\\n ax1";
  for (int round = 0; round < 50; ++round) {
    size_t len = rng() % 700;
    std::string buf;
    buf.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      buf += alphabet[rng() % alphabet.size()];
    }
    ExpectMatchesReference(buf);
  }
}

TEST(StructuralIndexTest, ForcedSwarMatchesActiveLevel) {
  std::string doc;
  for (int i = 0; i < 100; ++i) {
    doc += "{\"t\":\"x\\\\y\",\"n\":" + std::to_string(i) + "}\n";
  }
  StructuralIndex active = StructuralIndex::Build(doc);
  StructuralIndex swar = StructuralIndex::Build(doc, SimdLevel::kSwar);
  for (size_t i = 0; i < doc.size(); ++i) {
    ASSERT_EQ(active.IsOp(i), swar.IsOp(i)) << i;
    ASSERT_EQ(active.IsQuote(i), swar.IsQuote(i)) << i;
    ASSERT_EQ(active.IsNewline(i), swar.IsNewline(i)) << i;
    ASSERT_EQ(active.InString(i), swar.InString(i)) << i;
  }
}

TEST(StructuralIndexTest, SupportedLevelsAlwaysIncludeSwar) {
  std::vector<SimdLevel> levels = SupportedSimdLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), SimdLevel::kSwar);
  // ActiveSimdLevel must be one of the supported levels.
  bool found = false;
  for (SimdLevel l : levels) found = found || l == ActiveSimdLevel();
  EXPECT_TRUE(found);
  EXPECT_STREQ(SimdLevelName(SimdLevel::kSwar), "swar");
}

}  // namespace
}  // namespace jpar
