// Property-based tests: randomized documents and queries checked
// against independent oracles, parameterized over seeds.
//
//  * JSON text and binary serde round-trips on random documents.
//  * Streaming path projection == DOM navigation on random paths.
//  * Rewrite soundness: random path/filter/group-by queries return the
//    same multiset of rows with every rule configuration and partition
//    count.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/compression.h"
#include "core/engine.h"
#include "json/binary_serde.h"
#include "json/parser.h"
#include "json/projecting_reader.h"
#include "runtime/operators.h"
#include "stats/cost_model.h"

namespace jpar {
namespace {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed * 2654435761u + 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  int NextInt(int bound) {
    return static_cast<int>(Next() % static_cast<uint64_t>(bound));
  }
  std::string NextName() {
    static const char* kNames[] = {"a", "b", "cc", "dd", "key", "v"};
    return kNames[NextInt(6)];
  }

 private:
  uint64_t state_;
};

Item RandomItem(Rng* rng, int depth) {
  int pick = rng->NextInt(depth <= 0 ? 5 : 8);
  switch (pick) {
    case 0:
      return Item::Null();
    case 1:
      return Item::Boolean(rng->NextInt(2) == 0);
    case 2:
      return Item::Int64(rng->NextInt(2001) - 1000);
    case 3:
      return Item::Double((rng->NextInt(4001) - 2000) / 8.0);
    case 4:
      return Item::String(std::string(
          static_cast<size_t>(rng->NextInt(12)),
          static_cast<char>('a' + rng->NextInt(26))));
    case 5: {  // array
      Item::ItemVector elems;
      int n = rng->NextInt(5);
      for (int i = 0; i < n; ++i) elems.push_back(RandomItem(rng, depth - 1));
      return Item::MakeArray(std::move(elems));
    }
    default: {  // object
      Item::Object fields;
      int n = rng->NextInt(5);
      std::set<std::string> used;
      for (int i = 0; i < n; ++i) {
        std::string key = rng->NextName() + std::to_string(i);
        if (!used.insert(key).second) continue;
        fields.push_back({std::move(key), RandomItem(rng, depth - 1)});
      }
      return Item::MakeObject(std::move(fields));
    }
  }
}

class SeededTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededTest, JsonTextRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    Item item = RandomItem(&rng, 4);
    if (item.is_sequence()) continue;
    auto back = ParseJson(item.ToJsonString());
    ASSERT_TRUE(back.ok()) << item.ToJsonString();
    EXPECT_TRUE(item.Equals(*back)) << item.ToJsonString();
  }
}

TEST_P(SeededTest, BinarySerdeRoundTrip) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 50; ++i) {
    Item item = RandomItem(&rng, 4);
    auto back = DeserializeItem(SerializeItem(item));
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(item.Equals(*back)) << item.ToJsonString();
    EXPECT_EQ(item.kind(), back->kind());
  }
}

TEST_P(SeededTest, LzRoundTripOnRandomBytes) {
  Rng rng(GetParam() ^ 0xC0FFEE);
  for (int i = 0; i < 20; ++i) {
    std::string data;
    int n = rng.NextInt(5000);
    for (int b = 0; b < n; ++b) {
      // Mix of repetitive and random content.
      data.push_back(rng.NextInt(3) == 0
                         ? static_cast<char>(rng.Next())
                         : static_cast<char>('a' + (b % 7)));
    }
    auto back = LzDecompress(LzCompress(data));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data);
  }
}

TEST_P(SeededTest, ProjectionMatchesDomNavigation) {
  Rng rng(GetParam() ^ 0xDADA);
  for (int i = 0; i < 30; ++i) {
    Item doc = RandomItem(&rng, 4);
    if (!doc.is_object() && !doc.is_array()) continue;
    std::string text = doc.ToJsonString();
    // Random path of 0..3 steps.
    std::vector<PathStep> steps;
    int len = rng.NextInt(4);
    for (int s = 0; s < len; ++s) {
      switch (rng.NextInt(3)) {
        case 0:
          steps.push_back(PathStep::Key(rng.NextName() + "0"));
          break;
        case 1:
          steps.push_back(PathStep::Index(1 + rng.NextInt(3)));
          break;
        default:
          steps.push_back(PathStep::KeysOrMembers());
      }
    }
    std::vector<Item> streamed, navigated;
    Status s1 = ProjectJson(text, steps, [&](Item item) {
      streamed.push_back(std::move(item));
      return Status::OK();
    });
    Status s2 = NavigateItemPath(doc, steps, 0, [&](Item item) {
      navigated.push_back(std::move(item));
      return Status::OK();
    });
    ASSERT_TRUE(s1.ok()) << s1.ToString();
    ASSERT_TRUE(s2.ok()) << s2.ToString();
    ASSERT_EQ(streamed.size(), navigated.size())
        << text << " path " << PathToString(steps);
    for (size_t k = 0; k < streamed.size(); ++k) {
      EXPECT_TRUE(streamed[k].Equals(navigated[k]));
    }
  }
}

// ---------------------------------------------------------------------
// Rewrite soundness on randomized queries over randomized data.
// ---------------------------------------------------------------------

Collection RandomSensorish(Rng* rng, int files) {
  // Documents shaped loosely like the sensor data, with some
  // irregularity (missing fields, varying array sizes).
  Collection out;
  for (int f = 0; f < files; ++f) {
    Item::ItemVector records;
    int nrec = 1 + rng->NextInt(4);
    for (int r = 0; r < nrec; ++r) {
      Item::ItemVector results;
      int nres = rng->NextInt(6);
      for (int m = 0; m < nres; ++m) {
        Item::Object fields;
        fields.push_back(
            {"g", Item::String(std::string(1, 'a' + rng->NextInt(3)))});
        if (rng->NextInt(5) != 0) {
          fields.push_back({"v", Item::Int64(rng->NextInt(100))});
        }
        results.push_back(Item::MakeObject(std::move(fields)));
      }
      records.push_back(Item::MakeObject(
          {{"results", Item::MakeArray(std::move(results))}}));
    }
    Item doc = Item::MakeObject({{"root", Item::MakeArray(std::move(records))}});
    out.files.push_back(JsonFile::FromText(doc.ToJsonString()));
  }
  return out;
}

TEST_P(SeededTest, RewritePreservesSemantics) {
  Rng rng(GetParam() ^ 0xF00D);
  Collection data = RandomSensorish(&rng, 3);
  const char* queries[] = {
      R"(collection("/d")("root")()("results")())",
      R"(for $r in collection("/d")("root")()("results")()
         return $r("g"))",
      R"(for $r in collection("/d")("root")()("results")()
         where $r("v") ge 50 return $r)",
      R"(for $r in collection("/d")("root")()("results")()
         group by $g := $r("g") return count($r("v")))",
      R"(for $r in collection("/d")("root")()("results")()
         group by $g := $r("g") return sum($r("v")))",
  };
  for (const char* query : queries) {
    std::vector<std::string> baseline;
    for (int config = 0; config < 3; ++config) {
      EngineOptions options;
      options.rules = config == 0 ? RuleOptions::None() : RuleOptions::All();
      options.exec.partitions = config == 2 ? 3 : 1;
      Engine engine(options);
      engine.catalog()->RegisterCollection("/d", data);
      auto result = engine.Run(query);
      ASSERT_TRUE(result.ok())
          << query << " config " << config << ": "
          << result.status().ToString();
      std::vector<std::string> rows;
      for (const Item& item : result->items) {
        rows.push_back(item.ToJsonString());
      }
      std::sort(rows.begin(), rows.end());
      if (config == 0) {
        baseline = rows;
      } else {
        EXPECT_EQ(rows, baseline) << query << " config " << config;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Spill soundness (DESIGN.md §10): randomized NDJSON batches with
// controlled group cardinality and skew, aggregated with and without a
// spilling budget. Values are integers, so sums are exact in doubles
// and the comparison can demand byte-identical rows.
// ---------------------------------------------------------------------

Collection RandomNdjsonBatch(Rng* rng) {
  // Cardinality from "one giant group" to "every row its own group";
  // half the rows land on one hot key so some buckets are skewed enough
  // to force recursive repartitions at small fan-outs.
  int cardinality = 1 + rng->NextInt(60);
  bool skewed = rng->NextInt(2) == 0;
  int files = 1 + rng->NextInt(3);
  int rows_per_file = 30 + rng->NextInt(90);
  Collection c;
  for (int f = 0; f < files; ++f) {
    std::string text;
    for (int i = 0; i < rows_per_file; ++i) {
      int group = skewed && rng->NextInt(2) == 0 ? 0 : rng->NextInt(cardinality);
      text += "{\"g\": \"key" + std::to_string(group) +
              "\", \"v\": " + std::to_string(rng->NextInt(20001) - 10000) +
              "}\n";
    }
    c.files.push_back(JsonFile::FromText(std::move(text)));
  }
  return c;
}

TEST_P(SeededTest, SpillMatchesInMemoryOnRandomGroupBys) {
  Rng rng(GetParam() ^ 0x5B111);
  const char* queries[] = {
      R"(for $d in collection("/b") group by $g := $d("g")
         return count($d("v")))",
      R"(for $d in collection("/b") group by $g := $d("g")
         return sum($d("v")))",
      R"(for $d in collection("/b") group by $g := $d("g")
         return min($d("v")))",
      R"(for $d in collection("/b") group by $g := $d("g")
         return max($d("v")))",
      R"(for $d in collection("/b") group by $g := $d("g")
         return avg($d("v")))",
  };
  for (int round = 0; round < 3; ++round) {
    Collection data = RandomNdjsonBatch(&rng);
    uint64_t budget = 256u << rng.NextInt(4);
    int fanout = rng.NextInt(2) == 0 ? 2 : 8;
    int partitions = 1 + rng.NextInt(3);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " round=" + std::to_string(round) +
                 " budget=" + std::to_string(budget) +
                 " fanout=" + std::to_string(fanout) +
                 " partitions=" + std::to_string(partitions));
    for (const char* query : queries) {
      SCOPED_TRACE(query);
      std::vector<std::string> baseline;
      for (bool spill : {false, true}) {
        EngineOptions options;
        options.exec.partitions = partitions;
        if (spill) {
          options.exec.memory_limit_bytes = budget;
          options.exec.spill = SpillMode::kEnabled;
          options.exec.spill_fanout = fanout;
        }
        Engine engine(options);
        engine.catalog()->RegisterCollection("/b", data);
        auto result = engine.Run(query);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        std::vector<std::string> rows;
        for (const Item& item : result->items) {
          rows.push_back(item.ToJsonString());
        }
        std::sort(rows.begin(), rows.end());
        if (!spill) {
          baseline = rows;
        } else {
          EXPECT_EQ(rows, baseline);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Estimator accuracy (DESIGN.md §15): selectivity estimates from
// sampled stats must track the true fraction on random uniform data,
// and sub-minimum samples must never be trusted in kAuto.

TEST_P(SeededTest, RangeSelectivityTracksTrueFractionOnUniformData) {
  // The kill-switch disables even kForced, so accuracy is unmeasurable.
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  Rng rng(GetParam() ^ 0xE57);
  Catalog catalog;
  CostModel model(&catalog, StatsMode::kForced, StatsConfig{});
  for (int round = 0; round < 8; ++round) {
    const int n = 500 + rng.NextInt(4000);
    const int lo = rng.NextInt(1000) - 500;
    const int width = 100 + rng.NextInt(5000);
    auto merged = std::make_shared<PathStats>();
    std::vector<int> values;
    values.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      int v = lo + rng.NextInt(width);
      values.push_back(v);
      merged->Observe(Item::Int64(v));
    }
    merged->documents = static_cast<uint64_t>(n);
    ScanEstimate est;
    est.rows = n;
    est.bytes = n * 16.0;
    est.from_stats = true;
    est.confident = true;
    est.coverage = 1.0;
    est.merged = merged;

    const int probe = lo + rng.NextInt(width);
    const double sel =
        model.EstimateSelectivity(est, ZoneCompare::kGt, probe);
    double actual = 0;
    for (int v : values) {
      if (v > probe) ++actual;
    }
    actual /= n;
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " round=" + std::to_string(round) + " n=" +
                 std::to_string(n) + " probe=" + std::to_string(probe));
    // Uniform data, interpolated estimate: the sample stride and the
    // [0.02, 0.98] clamp allow a modest error band.
    EXPECT_NEAR(sel, actual, 0.12);
  }
}

TEST_P(SeededTest, EqSelectivityTracksUniformKeyCardinality) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  Rng rng(GetParam() ^ 0xEC5);
  Catalog catalog;
  CostModel model(&catalog, StatsMode::kForced, StatsConfig{});
  for (int round = 0; round < 6; ++round) {
    const int distinct = 2 + rng.NextInt(200);
    const int n = distinct * (10 + rng.NextInt(40));
    auto merged = std::make_shared<PathStats>();
    for (int i = 0; i < n; ++i) {
      merged->Observe(Item::Int64(rng.NextInt(distinct)));
    }
    merged->documents = static_cast<uint64_t>(n);
    ScanEstimate est;
    est.rows = n;
    est.bytes = n * 16.0;
    est.from_stats = true;
    est.confident = true;
    est.coverage = 1.0;
    est.merged = merged;
    const double sel =
        model.EstimateSelectivity(est, ZoneCompare::kEq, rng.NextInt(distinct));
    const double ideal = 1.0 / distinct;
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " distinct=" + std::to_string(distinct) +
                 " n=" + std::to_string(n));
    // 1/HLL-estimate vs 1/true-cardinality: the sketch is ~6.5%
    // accurate, the stride sample may miss rare keys — a 2x band
    // catches real estimator breakage without flaking.
    EXPECT_GE(sel, ideal / 2.0);
    EXPECT_LE(sel, ideal * 2.0 + 0.02);
  }
}

TEST_P(SeededTest, TinySamplesAreNeverTrustedInAutoMode) {
  Rng rng(GetParam() ^ 0x71A);
  Catalog catalog;
  CostModel model(&catalog, StatsMode::kAuto, StatsConfig{});
  for (int round = 0; round < 10; ++round) {
    const int n =
        rng.NextInt(static_cast<int>(CostModel::kMinSampledRows));
    auto merged = std::make_shared<PathStats>();
    for (int i = 0; i < n; ++i) {
      merged->Observe(Item::Int64(rng.NextInt(1000)));
    }
    ScanEstimate est;
    est.rows = n;
    est.bytes = n * 16.0;
    est.from_stats = n > 0;
    est.coverage = 1.0;
    est.confident = merged->sampled >= CostModel::kMinSampledRows;
    est.merged = merged;
    EXPECT_FALSE(model.Trust(est))
        << "a " << n << "-row sample cleared kAuto's trust bar";
    // Degradation is graceful: the estimate falls back to the default
    // instead of extrapolating noise.
    EXPECT_EQ(model.EstimateSelectivity(est, ZoneCompare::kGt, 500.0),
              CostModel::kDefaultSelectivity);
  }
}

TEST_P(SeededTest, HllDistinctTracksRandomCardinalities) {
  Rng rng(GetParam() ^ 0x4117);
  for (int round = 0; round < 5; ++round) {
    const int distinct = 4 + rng.NextInt(3000);
    PathStats stats;
    for (int rep = 0; rep < 3; ++rep) {
      for (int v = 0; v < distinct; ++v) {
        stats.Observe(Item::Int64(v * 7919 + round));
      }
    }
    const double est = stats.DistinctEstimate();
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " distinct=" + std::to_string(distinct));
    EXPECT_NEAR(est, distinct, distinct * 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace jpar
