// Spill-vs-in-memory differential suite (DESIGN.md §10): every paper
// query must produce byte-identical rows whether its blocking operators
// run fully in memory or spill to disk under a tiny budget — across
// rule configurations (two-step aggregation on and off), spill fan-outs
// (a fan-out of 2 forces recursive repartitions), threaded morsel
// scans, and degraded scans over dirty input (where the skip counts
// must also agree). The acceptance case runs a Q1-style group-by over
// data many times the budget: fail-fast mode must reject it with
// kResourceExhausted and spilling mode must complete it.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bench/queries.h"
#include "core/engine.h"
#include "data/sensor_generator.h"

namespace jpar {
namespace {

// A named ExecOptions/RuleOptions combination under test.
struct SpillConfig {
  const char* name;
  RuleOptions rules;
  ExecOptions exec;
};

RuleOptions NoTwoStep() {
  RuleOptions rules = RuleOptions::All();
  rules.two_step_aggregation = false;
  return rules;
}

ExecOptions TinyBudget(uint64_t budget = 4096) {
  ExecOptions exec;
  exec.partitions = 2;
  exec.memory_limit_bytes = budget;
  exec.spill = SpillMode::kEnabled;
  return exec;
}

// Baseline first; every later config must match it exactly.
std::vector<SpillConfig> PaperConfigs() {
  std::vector<SpillConfig> configs;
  ExecOptions unlimited;
  unlimited.partitions = 2;
  configs.push_back({"in-memory", RuleOptions::All(), unlimited});
  configs.push_back({"spill-tiny", RuleOptions::All(), TinyBudget()});
  configs.push_back({"spill-no-two-step", NoTwoStep(), TinyBudget()});
  ExecOptions fanout2 = TinyBudget();
  fanout2.spill_fanout = 2;  // skewed buckets must repartition
  configs.push_back({"spill-fanout-2", RuleOptions::All(), fanout2});
  ExecOptions threaded = TinyBudget();
  threaded.partitions = 4;
  threaded.use_threads = true;
  configs.push_back({"spill-threads", RuleOptions::All(), threaded});
  return configs;
}

Collection SensorData() {
  SensorDataSpec spec;
  spec.num_files = 3;
  spec.records_per_file = 12;
  spec.measurements_per_array = 24;
  spec.num_stations = 6;  // few stations => the self-join finds pairs
  spec.seed = 7;
  return GenerateSensorCollection(spec);
}

Result<QueryOutput> RunSensors(const char* query, const SpillConfig& config) {
  EngineOptions options;
  options.rules = config.rules;
  options.exec = config.exec;
  Engine engine(options);
  engine.catalog()->RegisterCollection("/sensors", SensorData());
  return engine.Run(query);
}

std::vector<std::string> Rows(const QueryOutput& out) {
  std::vector<std::string> rows;
  for (const Item& i : out.items) rows.push_back(i.ToJsonString());
  return rows;
}

std::vector<std::string> SortedRows(const QueryOutput& out) {
  std::vector<std::string> rows = Rows(out);
  std::sort(rows.begin(), rows.end());
  return rows;
}

// ---------------------------------------------------------------------
// All five paper queries, identical rows in every configuration.
// ---------------------------------------------------------------------

TEST(SpillDifferentialTest, PaperQueriesAgreeAcrossSpillConfigs) {
  for (const jparbench::NamedQuery& q : jparbench::kAllQueries) {
    SCOPED_TRACE(q.name);
    std::vector<std::string> baseline;
    for (const SpillConfig& config : PaperConfigs()) {
      SCOPED_TRACE(config.name);
      auto out = RunSensors(q.text, config);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      std::vector<std::string> rows = SortedRows(*out);
      if (baseline.empty()) {
        baseline = rows;
      } else {
        EXPECT_EQ(rows, baseline);
      }
    }
  }
}

// The group-by queries actually spill under the tiny budget — the
// differential above must not be vacuous.
TEST(SpillDifferentialTest, GroupByQueriesSpillUnderTinyBudget) {
  for (const char* query : {jparbench::kQ1, jparbench::kQ1b}) {
    for (const SpillConfig& config : PaperConfigs()) {
      if (config.exec.spill != SpillMode::kEnabled) continue;
      SCOPED_TRACE(config.name);
      auto out = RunSensors(query, config);
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      EXPECT_GT(out->stats.spill_runs, 0u);
      EXPECT_GT(out->stats.spill_bytes_written, 0u);
      EXPECT_GT(out->stats.spill_merge_passes, 0u);
    }
  }
}

// ---------------------------------------------------------------------
// Sort spilling: ordered output (not just the row multiset) must be
// byte-identical, including the order of ties — external runs merge
// back in stable order.
// ---------------------------------------------------------------------

constexpr const char* kOrderByQuery = R"(
  for $r in collection("/sensors")("root")()("results")()
  order by $r("date"), $r("station") descending
  return $r)";

TEST(SpillDifferentialTest, SortSpillPreservesOrderAndTies) {
  for (const SpillConfig& config : PaperConfigs()) {
    if (config.exec.spill != SpillMode::kEnabled) continue;
    SCOPED_TRACE(config.name);
    // The in-memory reference keeps the config's partitioning: the
    // global merge breaks cross-partition ties in partition order, so
    // only runs with identical partitioning are comparable row-by-row.
    SpillConfig reference = config;
    reference.exec.spill = SpillMode::kDisabled;
    reference.exec.memory_limit_bytes = 0;
    auto expected = RunSensors(kOrderByQuery, reference);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    auto out = RunSensors(kOrderByQuery, config);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(Rows(*out), Rows(*expected));  // ordered comparison
    EXPECT_GT(out->stats.spill_runs, 0u);
    EXPECT_GT(out->stats.spill_bytes_written, 0u);
  }
}

// ---------------------------------------------------------------------
// Dirty input: degraded scans (kSkipAndCount) must skip the same
// records and return the same rows whether or not downstream operators
// spill.
// ---------------------------------------------------------------------

Collection DirtyNdjson() {
  Collection c;
  for (int f = 0; f < 4; ++f) {
    std::string text;
    for (int i = 0; i < 50; ++i) {
      int v = f * 50 + i;
      if (i % 9 == 4) {
        text += "{\"v\": " + std::to_string(v) + ", \"g\":\n";  // truncated
      } else {
        text += "{\"v\": " + std::to_string(v) + ", \"g\": \"g" +
                std::to_string(v % 23) + "\"}\n";
      }
    }
    c.files.push_back(JsonFile::FromText(std::move(text)));
  }
  return c;
}

constexpr const char* kDirtyGroupQuery = R"(
  for $d in collection("/dirty")
  group by $g := $d("g")
  return sum($d("v")))";

TEST(SpillDifferentialTest, DirtyInputSkipCountsAndRowsAgree) {
  std::vector<std::string> baseline_rows;
  uint64_t baseline_skipped = 0;
  for (const SpillConfig& config : PaperConfigs()) {
    SCOPED_TRACE(config.name);
    EngineOptions options;
    options.rules = config.rules;
    options.exec = config.exec;
    options.exec.memory_limit_bytes =
        config.exec.spill == SpillMode::kEnabled ? 512 : 0;
    options.exec.on_parse_error = ParseErrorPolicy::kSkipAndCount;
    Engine engine(options);
    engine.catalog()->RegisterCollection("/dirty", DirtyNdjson());
    auto out = engine.Run(kDirtyGroupQuery);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_GT(out->stats.skipped_records, 0u);
    std::vector<std::string> rows = SortedRows(*out);
    if (baseline_rows.empty()) {
      baseline_rows = rows;
      baseline_skipped = out->stats.skipped_records;
    } else {
      EXPECT_EQ(rows, baseline_rows);
      EXPECT_EQ(out->stats.skipped_records, baseline_skipped);
    }
  }
}

// ---------------------------------------------------------------------
// Acceptance: a Q1-style group-by over data several times the budget.
// ---------------------------------------------------------------------

TEST(SpillDifferentialTest, LargeGroupByCompletesOnlyWithSpilling) {
  SensorDataSpec spec;
  spec.num_files = 4;
  spec.records_per_file = 24;
  spec.measurements_per_array = 30;
  spec.num_stations = 12;
  spec.seed = 11;
  Collection data = GenerateSensorCollection(spec);
  auto total = data.TotalBytes();
  ASSERT_TRUE(total.ok());
  const uint64_t budget = 16u << 10;
  // The premise of the test: the data is at least 4x the budget.
  ASSERT_GE(*total, 4 * budget) << "spec too small, grow it";

  EngineOptions unlimited;
  unlimited.exec.partitions = 2;
  Engine reference(unlimited);
  reference.catalog()->RegisterCollection("/sensors", data);
  auto expected = reference.Run(jparbench::kQ1);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Fail-fast mode rejects the query: the budget really is too small.
  EngineOptions strict = unlimited;
  strict.exec.memory_limit_bytes = budget;
  Engine strict_engine(strict);
  strict_engine.catalog()->RegisterCollection("/sensors", data);
  auto rejected = strict_engine.Run(jparbench::kQ1);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().ToString();

  // Spilling mode completes it, with the same rows, and reports the
  // spill work it did.
  EngineOptions spilling = strict;
  spilling.exec.spill = SpillMode::kEnabled;
  Engine spill_engine(spilling);
  spill_engine.catalog()->RegisterCollection("/sensors", data);
  auto out = spill_engine.Run(jparbench::kQ1);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(SortedRows(*out), SortedRows(*expected));
  EXPECT_GT(out->stats.spill_runs, 0u);
  EXPECT_GT(out->stats.spill_bytes_written, 0u);
}

}  // namespace
}  // namespace jpar
