// AST -> logical plan translation: asserts the *naive* plan shapes the
// paper's figures start from (the rewrite rules are tested separately).

#include "jsoniq/translator.h"

#include <gtest/gtest.h>

#include "jsoniq/parser.h"

namespace jpar {
namespace {

LogicalPlan Translate(std::string_view query) {
  auto ast = ParseQuery(query);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto plan = TranslateToLogical(*ast);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

std::vector<LOpKind> ChainKinds(const LogicalPlan& plan) {
  std::vector<LOpKind> kinds;
  LOpPtr cursor = plan.root;
  while (cursor != nullptr) {
    kinds.push_back(cursor->kind);
    cursor = cursor->inputs.empty() ? nullptr : cursor->inputs[0];
  }
  return kinds;
}

TEST(TranslatorTest, JsonDocPathMatchesFigure3) {
  // Paper Fig. 3 modulo fusion: the promote/data/value chain and the
  // keys-or-members evaluation share one ASSIGN whose expression is
  // keys-or-members(value(value(json-doc(promote(data(...)))))), then
  // UNNEST iterate produces each book.
  LogicalPlan plan = Translate(
      R"(json-doc("books.json")("bookstore")("book")())");
  std::vector<LOpKind> kinds = ChainKinds(plan);
  EXPECT_EQ(kinds,
            (std::vector<LOpKind>{
                LOpKind::kDistributeResult, LOpKind::kUnnest,
                LOpKind::kAssign, LOpKind::kEmptyTupleSource}));
  std::string text = plan.ToString();
  EXPECT_NE(text.find("promote"), std::string::npos);
  EXPECT_NE(text.find("data"), std::string::npos);
  EXPECT_NE(text.find("keys-or-members"), std::string::npos);
  EXPECT_NE(text.find("iterate"), std::string::npos);
}

TEST(TranslatorTest, CollectionPathMatchesFigure5) {
  // Paper Fig. 5: the collection is ASSIGNed whole, files are unnested,
  // value steps accumulate, keys-or-members is two-step.
  LogicalPlan plan =
      Translate(R"(collection("/books")("bookstore")("book")())");
  std::vector<LOpKind> kinds = ChainKinds(plan);
  EXPECT_EQ(kinds,
            (std::vector<LOpKind>{
                LOpKind::kDistributeResult, LOpKind::kUnnest,
                LOpKind::kAssign,  // keys-or-members(value(value($f)))
                LOpKind::kUnnest,  // iterate each file
                LOpKind::kAssign,  // collection()
                LOpKind::kEmptyTupleSource}));
  EXPECT_NE(plan.ToString().find("collection(\"/books\")"),
            std::string::npos);
}

TEST(TranslatorTest, GroupByMatchesFigure9) {
  LogicalPlan plan = Translate(R"(
      for $x in collection("/books")("bookstore")("book")()
      group by $author := $x("author")
      return count($x("title")))");
  std::string text = plan.ToString();
  // ASSIGN count(value(treat, "title")) above the GROUP-BY, which
  // materializes the group as AGGREGATE sequence.
  EXPECT_NE(text.find("count("), std::string::npos);
  EXPECT_NE(text.find("treat("), std::string::npos);
  EXPECT_NE(text.find("GROUP-BY"), std::string::npos);
  EXPECT_NE(text.find("sequence("), std::string::npos);
  EXPECT_NE(text.find("NESTED-TUPLE-SOURCE"), std::string::npos);
  // treat sits between count and group-by.
  EXPECT_LT(text.find("count("), text.find("treat("));
  EXPECT_LT(text.find("treat("), text.find("GROUP-BY"));
}

TEST(TranslatorTest, NestedFlworCountBecomesSubplan) {
  // Q1b's count(for $j in $x ...) translates directly to a SUBPLAN
  // above the GROUP-BY (paper: "conveniently forms a SUBPLAN").
  LogicalPlan plan = Translate(R"(
      for $x in collection("/books")("bookstore")("book")()
      group by $author := $x("author")
      return count(for $j in $x return $j("title")))");
  std::string text = plan.ToString();
  EXPECT_NE(text.find("SUBPLAN"), std::string::npos);
  EXPECT_NE(text.find("AGGREGATE"), std::string::npos);
  EXPECT_LT(text.find("SUBPLAN"), text.find("GROUP-BY"));
}

TEST(TranslatorTest, WhereBecomesSelect) {
  LogicalPlan plan = Translate(R"(
      for $r in collection("/sensors")("root")()
      where $r("dataType") eq "TMIN"
      return $r)");
  std::string text = plan.ToString();
  EXPECT_NE(text.find("SELECT eq(value("), std::string::npos);
}

TEST(TranslatorTest, LetBecomesAssign) {
  LogicalPlan plan = Translate(R"(
      for $r in collection("/sensors")("root")()
      let $d := dateTime(data($r("date")))
      return $d)");
  EXPECT_NE(plan.ToString().find("dateTime(data(value("),
            std::string::npos);
}

TEST(TranslatorTest, IndependentSecondForBecomesJoin) {
  LogicalPlan plan = Translate(R"(
      for $a in collection("/x")("root")()
      for $b in collection("/y")("root")()
      where $a("k") eq $b("k")
      return $a)");
  // SELECT above JOIN with two branches (join keys are extracted by a
  // rewrite rule later, not by the translator).
  std::string text = plan.ToString();
  EXPECT_NE(text.find("JOIN"), std::string::npos);
  LOpPtr cursor = plan.root;
  while (cursor->kind != LOpKind::kJoin) cursor = cursor->inputs[0];
  ASSERT_EQ(cursor->inputs.size(), 2u);
  EXPECT_TRUE(cursor->left_keys.empty());
}

TEST(TranslatorTest, DependentSecondForStaysNested) {
  LogicalPlan plan = Translate(R"(
      for $a in collection("/x")("root")()
      for $b in $a("list")()
      return $b)");
  EXPECT_EQ(plan.ToString().find("JOIN"), std::string::npos);
}

TEST(TranslatorTest, TopLevelAggregateOverFlwor) {
  LogicalPlan plan = Translate(R"(
      avg(for $r in collection("/s")("root")() return $r("v")) div 10)");
  std::string text = plan.ToString();
  EXPECT_NE(text.find("AGGREGATE"), std::string::npos);
  EXPECT_NE(text.find("avg("), std::string::npos);
  EXPECT_NE(text.find("div("), std::string::npos);
  // The div computes over the aggregate's output.
  EXPECT_LT(text.find("div("), text.find("AGGREGATE"));
}

TEST(TranslatorTest, UnboundVariableFails) {
  auto ast = ParseQuery("for $x in collection(\"/c\") return $y");
  ASSERT_TRUE(ast.ok());
  auto plan = TranslateToLogical(*ast);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST(TranslatorTest, UnknownFunctionFails) {
  auto ast = ParseQuery("frobnicate(1)");
  ASSERT_TRUE(ast.ok());
  EXPECT_EQ(TranslateToLogical(*ast).status().code(),
            StatusCode::kUnsupported);
}

TEST(TranslatorTest, GroupByOnlyMaterializesVariablesUsedLater) {
  LogicalPlan plan = Translate(R"(
      for $x in collection("/c")("root")()
      let $unused := $x("z")
      group by $k := $x("a")
      return count($x("b")))");
  // Exactly one sequence aggregate ($x); $unused is not materialized.
  std::string text = plan.ToString();
  size_t first = text.find("sequence(");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("sequence(", first + 1), std::string::npos);
}

TEST(TranslatorTest, GroupKeyIsUsableInReturn) {
  LogicalPlan plan = Translate(R"(
      for $x in collection("/c")("root")()
      group by $k := $x("a")
      return $k)");
  EXPECT_NE(plan.ToString().find("DISTRIBUTE-RESULT"), std::string::npos);
}

}  // namespace
}  // namespace jpar
