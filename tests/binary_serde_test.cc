#include "json/binary_serde.h"

#include <gtest/gtest.h>

#include "json/parser.h"

namespace jpar {
namespace {

void ExpectRoundTrip(const Item& item) {
  std::string binary = SerializeItem(item);
  auto back = DeserializeItem(binary);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(item.Equals(*back)) << item.ToJsonString();
  // Kind must be preserved exactly (not just value equality).
  EXPECT_EQ(item.kind(), back->kind());
}

TEST(BinarySerdeTest, Scalars) {
  ExpectRoundTrip(Item::Null());
  ExpectRoundTrip(Item::Boolean(true));
  ExpectRoundTrip(Item::Boolean(false));
  ExpectRoundTrip(Item::Int64(0));
  ExpectRoundTrip(Item::Int64(-1));
  ExpectRoundTrip(Item::Int64(INT64_MAX));
  ExpectRoundTrip(Item::Int64(INT64_MIN));
  ExpectRoundTrip(Item::Double(3.14159));
  ExpectRoundTrip(Item::Double(-0.0));
  ExpectRoundTrip(Item::String(""));
  ExpectRoundTrip(Item::String("hello world"));
  ExpectRoundTrip(Item::String(std::string(100000, 'x')));
}

TEST(BinarySerdeTest, DateTime) {
  ExpectRoundTrip(Item::DateTime({2013, 12, 25, 1, 2, 3}));
  ExpectRoundTrip(Item::DateTime({-44, 3, 15, 0, 0, 0}));  // negative year
}

TEST(BinarySerdeTest, Structures) {
  ExpectRoundTrip(Item::MakeArray({}));
  ExpectRoundTrip(Item::MakeObject({}));
  ExpectRoundTrip(Item::EmptySequence());
  ExpectRoundTrip(Item::MakeArray(
      {Item::Int64(1), Item::String("a"),
       Item::MakeObject({{"k", Item::Null()}})}));
  ExpectRoundTrip(Item::MakeSequence({Item::Int64(1), Item::Int64(2)}));
}

TEST(BinarySerdeTest, ComplexDocumentRoundTrip) {
  auto doc = ParseJson(R"({
    "root": [
      {"metadata": {"count": 2}, "values": [1.5, -2, "s", null, true]},
      {"empty": {}, "list": []}
    ]
  })");
  ASSERT_TRUE(doc.ok());
  ExpectRoundTrip(*doc);
}

TEST(BinarySerdeTest, VarintBoundaries) {
  // Strings of lengths around varint byte boundaries.
  for (size_t len : {0u, 1u, 127u, 128u, 129u, 16383u, 16384u}) {
    ExpectRoundTrip(Item::String(std::string(len, 'v')));
  }
  for (int64_t v : {63ll, 64ll, -64ll, -65ll, 8191ll, -8192ll}) {
    ExpectRoundTrip(Item::Int64(v));
  }
}

TEST(BinarySerdeTest, ZigZagEncoding) {
  EXPECT_EQ(ItemWriter::ZigZag(0), 0u);
  EXPECT_EQ(ItemWriter::ZigZag(-1), 1u);
  EXPECT_EQ(ItemWriter::ZigZag(1), 2u);
  EXPECT_EQ(ItemReader::UnZigZag(ItemWriter::ZigZag(-123456789)),
            -123456789);
  EXPECT_EQ(ItemReader::UnZigZag(ItemWriter::ZigZag(INT64_MIN)), INT64_MIN);
}

TEST(BinarySerdeTest, TruncatedInputsFailCleanly) {
  Item item = Item::MakeObject(
      {{"a", Item::MakeArray({Item::Int64(1), Item::String("xyz")})}});
  std::string binary = SerializeItem(item);
  for (size_t cut = 0; cut < binary.size(); ++cut) {
    auto result = DeserializeItem(binary.substr(0, cut));
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST(BinarySerdeTest, TrailingBytesRejected) {
  std::string binary = SerializeItem(Item::Int64(7));
  binary.push_back('\0');
  EXPECT_FALSE(DeserializeItem(binary).ok());
}

TEST(BinarySerdeTest, EmptyInputRejected) {
  EXPECT_FALSE(DeserializeItem("").ok());
}

TEST(BinarySerdeTest, UnknownTagRejected) {
  std::string bad(1, static_cast<char>(0x7F));
  EXPECT_FALSE(DeserializeItem(bad).ok());
}

TEST(BinarySerdeTest, BinaryIsCompacterThanJsonForNumbers) {
  Item::ItemVector numbers;
  for (int i = 0; i < 1000; ++i) numbers.push_back(Item::Int64(i));
  Item arr = Item::MakeArray(std::move(numbers));
  EXPECT_LT(SerializeItem(arr).size(), arr.ToJsonString().size());
}

}  // namespace
}  // namespace jpar
