// Unit tests for the query lifecycle primitives (src/runtime/
// query_context.h): the cancellation token latch, deadline checks, and
// the deterministic FaultInjector. End-to-end lifecycle behaviour
// (cancel/deadline through the service, fault matrix per stage) lives
// in fault_injection_test.cc.

#include "runtime/query_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace jpar {
namespace {

// ---------------------------------------------------------------------
// CancellationToken
// ---------------------------------------------------------------------

TEST(CancellationTokenTest, LatchesAndStaysSet) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

TEST(CancellationTokenTest, VisibleAcrossThreads) {
  auto token = std::make_shared<CancellationToken>();
  std::thread setter([token] { token->Cancel(); });
  setter.join();
  EXPECT_TRUE(token->cancelled());
}

// ---------------------------------------------------------------------
// QueryContext::Check
// ---------------------------------------------------------------------

TEST(QueryContextTest, EmptyContextAlwaysOk) {
  QueryContext ctx;
  EXPECT_FALSE(ctx.has_deadline());
  EXPECT_TRUE(ctx.Check("anywhere").ok());
  // No injector: fault points are free no-ops.
  EXPECT_TRUE(ctx.Fault(FaultInjector::kScanIOError).ok());
}

TEST(QueryContextTest, CancelledTokenYieldsKCancelled) {
  QueryContext ctx;
  auto token = std::make_shared<CancellationToken>();
  ctx.set_cancellation(token);
  EXPECT_TRUE(ctx.Check("pipeline").ok());

  token->Cancel();
  Status st = ctx.Check("pipeline");
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
  // The stage name makes it into the message for diagnosability.
  EXPECT_NE(st.message().find("pipeline"), std::string::npos);
}

TEST(QueryContextTest, ExpiredDeadlineYieldsKDeadlineExceeded) {
  QueryContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  ASSERT_TRUE(ctx.has_deadline());
  Status st = ctx.Check("sort merge");
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(st.message().find("sort merge"), std::string::npos);
}

TEST(QueryContextTest, FutureDeadlineIsOk) {
  QueryContext ctx;
  ctx.set_deadline_after_ms(60'000);  // a minute: never expires in-test
  EXPECT_TRUE(ctx.Check("group-by build").ok());
}

TEST(QueryContextTest, CancellationWinsOverDeadline) {
  // Both conditions true: cancellation is reported (the explicit client
  // action, checked first).
  QueryContext ctx;
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  ctx.set_cancellation(token);
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  EXPECT_EQ(ctx.Check("x").code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, UnarmedPointsOnlyCountHits) {
  FaultInjector faults;
  EXPECT_EQ(faults.hit_count(FaultInjector::kScanIOError), 0u);
  EXPECT_TRUE(faults.Hit(FaultInjector::kScanIOError).ok());
  EXPECT_TRUE(faults.Hit(FaultInjector::kScanIOError).ok());
  EXPECT_EQ(faults.hit_count(FaultInjector::kScanIOError), 2u);
  EXPECT_EQ(faults.injected_count(FaultInjector::kScanIOError), 0u);
}

TEST(FaultInjectorTest, ProbabilityOneFiresEveryHit) {
  FaultInjector faults;
  faults.ArmProbability(FaultInjector::kScanIOError, 1.0,
                        Status::IOError("injected"));
  for (int i = 0; i < 3; ++i) {
    Status st = faults.Hit(FaultInjector::kScanIOError);
    EXPECT_EQ(st.code(), StatusCode::kIOError);
  }
  EXPECT_EQ(faults.injected_count(FaultInjector::kScanIOError), 3u);
}

TEST(FaultInjectorTest, ProbabilityZeroNeverFires) {
  FaultInjector faults;
  faults.ArmProbability(FaultInjector::kAllocFail, 0.0,
                        Status::ResourceExhausted("never"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(faults.Hit(FaultInjector::kAllocFail).ok());
  }
  EXPECT_EQ(faults.injected_count(FaultInjector::kAllocFail), 0u);
}

TEST(FaultInjectorTest, SeededProbabilisticRunsAreReproducible) {
  auto run = [](uint64_t seed) {
    FaultInjector faults(seed);
    faults.ArmProbability("p", 0.5, Status::IOError("x"));
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!faults.Hit("p").ok());
    return fired;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // astronomically unlikely to collide
}

TEST(FaultInjectorTest, ArmAfterFiresExactlyOnceOnNthHit) {
  FaultInjector faults;
  faults.ArmAfter("nth", 3, Status::IOError("third"));
  EXPECT_TRUE(faults.Hit("nth").ok());
  EXPECT_TRUE(faults.Hit("nth").ok());
  EXPECT_EQ(faults.Hit("nth").code(), StatusCode::kIOError);
  EXPECT_TRUE(faults.Hit("nth").ok());  // one-shot
  EXPECT_EQ(faults.hit_count("nth"), 4u);
  EXPECT_EQ(faults.injected_count("nth"), 1u);
}

TEST(FaultInjectorTest, ArmAfterCountsFromConstruction) {
  FaultInjector faults;
  EXPECT_TRUE(faults.Hit("late").ok());  // hit 1, before arming
  faults.ArmAfter("late", 2, Status::IOError("second"));
  EXPECT_EQ(faults.Hit("late").code(), StatusCode::kIOError);  // hit 2
}

TEST(FaultInjectorTest, StallDelaysButReturnsOk) {
  FaultInjector faults;
  faults.ArmStall("slow", /*stall_ms=*/20);
  auto t0 = std::chrono::steady_clock::now();
  EXPECT_TRUE(faults.Hit("slow").ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_GE(elapsed.count(), 15);  // allow scheduler slop below 20ms
}

TEST(FaultInjectorTest, DisarmStopsInjectionKeepsCounters) {
  FaultInjector faults;
  faults.ArmProbability("d", 1.0, Status::IOError("x"));
  EXPECT_FALSE(faults.Hit("d").ok());
  faults.Disarm("d");
  EXPECT_TRUE(faults.Hit("d").ok());
  EXPECT_EQ(faults.hit_count("d"), 2u);
  EXPECT_EQ(faults.injected_count("d"), 1u);
}

TEST(FaultInjectorTest, PointsAreIndependent) {
  FaultInjector faults;
  faults.ArmProbability(FaultInjector::kExchangeFrameDrop, 1.0,
                        Status::IOError("drop"));
  EXPECT_TRUE(faults.Hit(FaultInjector::kWorkerStall).ok());
  EXPECT_FALSE(faults.Hit(FaultInjector::kExchangeFrameDrop).ok());
}

TEST(FaultInjectorTest, ConcurrentHitsAreSafe) {
  FaultInjector faults;
  faults.ArmProbability("race", 0.5, Status::IOError("x"));
  constexpr int kThreads = 4;
  constexpr int kHitsPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&faults] {
      for (int i = 0; i < kHitsPerThread; ++i) faults.Hit("race");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(faults.hit_count("race"),
            static_cast<uint64_t>(kThreads) * kHitsPerThread);
}

TEST(FaultInjectorTest, FaultThroughContextForwardsToInjector) {
  FaultInjector faults;
  faults.ArmProbability(FaultInjector::kScanIOError, 1.0,
                        Status::IOError("via ctx"));
  QueryContext ctx;
  ctx.set_fault_injector(&faults);
  EXPECT_EQ(ctx.Fault(FaultInjector::kScanIOError).code(),
            StatusCode::kIOError);
  EXPECT_EQ(faults.hit_count(FaultInjector::kScanIOError), 1u);
}

}  // namespace
}  // namespace jpar
