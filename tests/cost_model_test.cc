// Cost-model unit suite (DESIGN.md §15): the PathStats sampler (exact
// counts, stride sampling, HLL distinct sketch, order-independent
// merge), the .jstats payload serde, the StatsStore lifecycle
// (freshness, epochs, sidecar rewarm, eviction of stale files), the
// CostModel estimators (monotone selectivity, clamped hints), and the
// compile-time plan annotations they drive — scan access hints, the
// hash-join build side, spill-fanout and morsel-size hints — all of
// which must be answer-preserving by construction.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <utime.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "stats/collection_stats.h"
#include "stats/cost_model.h"
#include "storage/storage_tier.h"

namespace jpar {
namespace {

// ---------------------------------------------------------------------
// Fixtures

class TempCollectionDir {
 public:
  TempCollectionDir() {
    std::string tmpl = ::testing::TempDir() + "/jpar_stats_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    dir_ = made != nullptr ? made : tmpl;
  }

  ~TempCollectionDir() {
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((dir_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(dir_.c_str());
  }

  std::string Write(const std::string& name, const std::string& text) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    return path;
  }

  static void BumpMtime(const std::string& path, int seconds_ahead) {
    struct utimbuf times;
    times.actime = ::time(nullptr) + seconds_ahead;
    times.modtime = times.actime;
    ASSERT_EQ(::utime(path.c_str(), &times), 0) << path;
  }

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

std::string Ndjson(int records, int base) {
  std::string text;
  for (int i = 0; i < records; ++i) {
    text += "{\"k\": " + std::to_string((base + i) % 50) +
            ", \"v\": " + std::to_string(base + i) + "}\n";
  }
  return text;
}

// ---------------------------------------------------------------------
// PathStats: exact counts, stride sampling, min/max, type mix

TEST(PathStatsTest, CountsAreExactAndShapeFactsSampled) {
  PathStats s;
  for (int i = 0; i < 100; ++i) s.Observe(Item::Int64(i));
  EXPECT_EQ(s.rows, 100u);
  EXPECT_EQ(s.sampled, 100u);  // under kSampleFullRows: all observed
  EXPECT_EQ(s.count_numeric, 100u);
  EXPECT_EQ(s.has_minmax, 1);
  EXPECT_EQ(s.min_value, 0.0);
  EXPECT_EQ(s.max_value, 99.0);
  EXPECT_DOUBLE_EQ(s.NumericFraction(), 1.0);
}

TEST(PathStatsTest, StrideKicksInPastTheFullWindow) {
  PathStats s;
  const uint64_t rows = PathStats::kSampleFullRows * 3;
  for (uint64_t i = 0; i < rows; ++i) {
    s.Observe(Item::Int64(static_cast<int64_t>(i)));
  }
  EXPECT_EQ(s.rows, rows);  // row count stays exact
  EXPECT_LT(s.sampled, rows);
  EXPECT_GE(s.sampled, PathStats::kSampleFullRows);
  // Shape facts keep tracking the stream even in the strided regime.
  EXPECT_EQ(s.min_value, 0.0);
  EXPECT_GT(s.max_value, static_cast<double>(PathStats::kSampleFullRows));
}

TEST(PathStatsTest, TypeMixAndMinMaxIgnoreNonNumerics) {
  PathStats s;
  s.Observe(Item::Int64(5));
  s.Observe(Item::Double(-2.5));
  s.Observe(Item::String("zzz"));
  s.Observe(Item::Boolean(true));
  s.Observe(Item::Null());
  s.Observe(Item::MakeArray({Item::Int64(1)}));
  EXPECT_EQ(s.rows, 6u);
  EXPECT_EQ(s.count_numeric, 2u);
  EXPECT_EQ(s.count_string, 1u);
  EXPECT_EQ(s.count_bool, 1u);
  EXPECT_EQ(s.count_null, 1u);
  EXPECT_EQ(s.count_array, 1u);
  EXPECT_EQ(s.min_value, -2.5);
  EXPECT_EQ(s.max_value, 5.0);
  EXPECT_NEAR(s.NumericFraction(), 2.0 / 6.0, 1e-12);
}

TEST(PathStatsTest, HllDistinctEstimateIsAccurateEnough) {
  for (int distinct : {10, 500, 5000}) {
    PathStats s;
    for (int i = 0; i < distinct; ++i) s.Observe(Item::Int64(i));
    const double est = s.DistinctEstimate();
    // m=256 gives ~6.5% stdev; 25% is a generous deterministic bound.
    EXPECT_NEAR(est, distinct, distinct * 0.25) << "distinct=" << distinct;
  }
}

TEST(PathStatsTest, DistinctEstimateCappedAtSampleSize) {
  PathStats s;
  for (int i = 0; i < 64; ++i) s.Observe(Item::Int64(i));
  EXPECT_LE(s.DistinctEstimate(), static_cast<double>(s.sampled));
}

TEST(PathStatsTest, MergeIsOrderIndependent) {
  PathStats whole, a, b;
  for (int i = 0; i < 2000; ++i) {
    whole.Observe(Item::Int64(i));
    (i < 1000 ? a : b).Observe(Item::Int64(i));
  }
  PathStats ab = a, ba = b;
  ab.MergeFrom(b);
  ba.MergeFrom(a);
  EXPECT_EQ(ab.rows, whole.rows);
  EXPECT_EQ(ab.sampled, whole.sampled);
  EXPECT_EQ(ab.min_value, whole.min_value);
  EXPECT_EQ(ab.max_value, whole.max_value);
  EXPECT_EQ(ab.hll, whole.hll);  // register-max union == single pass
  EXPECT_EQ(ab.hll, ba.hll);
  EXPECT_DOUBLE_EQ(ab.DistinctEstimate(), whole.DistinctEstimate());
}

TEST(PathStatsTest, PresenceAndFanoutRatios) {
  PathStats s;
  for (int i = 0; i < 30; ++i) s.Observe(Item::Int64(i));
  s.documents = 60;
  EXPECT_DOUBLE_EQ(s.PresenceFraction(), 0.5);
  EXPECT_DOUBLE_EQ(s.MeanRowsPerDocument(), 0.5);
  s.documents = 10;  // array fan-out: more rows than documents
  EXPECT_DOUBLE_EQ(s.PresenceFraction(), 1.0);  // clamped
  EXPECT_DOUBLE_EQ(s.MeanRowsPerDocument(), 3.0);
}

// ---------------------------------------------------------------------
// Payload serde

PathStats SamplePathStats() {
  PathStats s;
  for (int i = 0; i < 300; ++i) s.Observe(Item::Int64(i * 7));
  s.Observe(Item::String("tail"));
  s.documents = 200;
  s.file_bytes = 4096;
  return s;
}

TEST(PathStatsSerdeTest, RoundTripPreservesEveryField) {
  PathStats s = SamplePathStats();
  std::string payload;
  AppendPathStatsPayload(s, &payload);
  PathStats back;
  ASSERT_TRUE(ParsePathStatsPayload(payload, &back));
  EXPECT_EQ(back.rows, s.rows);
  EXPECT_EQ(back.documents, s.documents);
  EXPECT_EQ(back.file_bytes, s.file_bytes);
  EXPECT_EQ(back.sampled, s.sampled);
  EXPECT_EQ(back.count_numeric, s.count_numeric);
  EXPECT_EQ(back.count_string, s.count_string);
  EXPECT_EQ(back.has_minmax, s.has_minmax);
  EXPECT_EQ(back.min_value, s.min_value);
  EXPECT_EQ(back.max_value, s.max_value);
  EXPECT_EQ(back.hll, s.hll);
  EXPECT_DOUBLE_EQ(back.DistinctEstimate(), s.DistinctEstimate());
}

TEST(PathStatsSerdeTest, CorruptPayloadsAreRejected) {
  PathStats s = SamplePathStats();
  std::string payload;
  AppendPathStatsPayload(s, &payload);
  PathStats out;

  EXPECT_FALSE(ParsePathStatsPayload("", &out));
  EXPECT_FALSE(
      ParsePathStatsPayload(payload.substr(0, payload.size() / 2), &out));
  EXPECT_FALSE(ParsePathStatsPayload(payload + "x", &out));

  std::string bad_version = payload;
  bad_version[0] = 99;
  EXPECT_FALSE(ParsePathStatsPayload(bad_version, &out));
}

TEST(PathStatsSerdeTest, SemanticallyInvalidPayloadsAreRejected) {
  // sampled > rows cannot come from a real sampler.
  PathStats s;
  s.rows = 1;
  s.sampled = 2;
  std::string payload;
  AppendPathStatsPayload(s, &payload);
  PathStats out;
  EXPECT_FALSE(ParsePathStatsPayload(payload, &out));

  // Inverted min/max.
  PathStats t;
  t.Observe(Item::Int64(1));
  t.min_value = 10;
  t.max_value = -10;
  payload.clear();
  AppendPathStatsPayload(t, &payload);
  EXPECT_FALSE(ParsePathStatsPayload(payload, &out));
}

// ---------------------------------------------------------------------
// StatsStore: freshness, epochs, sidecar rewarm

TEST(StatsStoreTest, PutGetEpochAndStaleness) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  StatsStore& store = StatsStore::Instance();
  store.Clear();
  StatsConfig cfg;
  TempCollectionDir dir;
  std::string path = dir.Write("a.ndjson", Ndjson(40, 0));
  auto sig = StatFileSignature(path);
  ASSERT_TRUE(sig.ok());

  EXPECT_EQ(store.Get(path, "$", cfg), nullptr);
  const uint64_t epoch0 = store.epoch();

  PathStats s = SamplePathStats();
  store.Put(path, "$", s, *sig, cfg);
  EXPECT_GT(store.epoch(), epoch0) << "learning stats must bump the epoch";

  auto got = store.Get(path, "$", cfg);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->rows, s.rows);

  // Mutating the file invalidates: size changed here.
  dir.Write("a.ndjson", Ndjson(60, 0));
  TempCollectionDir::BumpMtime(path, 3);
  const uint64_t epoch1 = store.epoch();
  EXPECT_EQ(store.Get(path, "$", cfg), nullptr);
  EXPECT_GT(store.epoch(), epoch1) << "dropping stale stats bumps the epoch";
}

TEST(StatsStoreTest, PutAgainstDeadSignatureIsDropped) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  StatsStore& store = StatsStore::Instance();
  store.Clear();
  StatsConfig cfg;
  TempCollectionDir dir;
  std::string path = dir.Write("b.ndjson", Ndjson(40, 0));
  auto sig = StatFileSignature(path);
  ASSERT_TRUE(sig.ok());

  // The file changes between the scan and the install: the stats were
  // built for bytes that no longer exist and must not be published.
  dir.Write("b.ndjson", Ndjson(90, 7));
  TempCollectionDir::BumpMtime(path, 3);
  store.Put(path, "$", SamplePathStats(), *sig, cfg);
  EXPECT_EQ(store.Get(path, "$", cfg), nullptr);
}

TEST(StatsStoreTest, SidecarRewarmsAfterClear) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  StatsStore& store = StatsStore::Instance();
  store.Clear();
  StatsConfig cfg;
  TempCollectionDir dir;
  std::string path = dir.Write("c.ndjson", Ndjson(40, 0));
  auto sig = StatFileSignature(path);
  ASSERT_TRUE(sig.ok());

  PathStats s = SamplePathStats();
  store.Put(path, "$", s, *sig, cfg);
  std::string sidecar = store.SidecarPathFor(path, "$", cfg);
  struct stat st;
  ASSERT_EQ(::stat(sidecar.c_str(), &st), 0)
      << "Put must write the sidecar " << sidecar;

  store.Clear();  // simulated process restart: memory gone, disk stays
  auto got = store.Get(path, "$", cfg);
  ASSERT_NE(got, nullptr) << "sidecar must rewarm the store";
  EXPECT_EQ(got->rows, s.rows);
  EXPECT_EQ(got->hll, s.hll);
}

TEST(StatsStoreTest, TotalsTrackEntries) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  StatsStore& store = StatsStore::Instance();
  store.Clear();
  StatsConfig cfg;
  TempCollectionDir dir;
  std::string p1 = dir.Write("t1.ndjson", Ndjson(10, 0));
  std::string p2 = dir.Write("t2.ndjson", Ndjson(10, 0));
  auto s1 = StatFileSignature(p1);
  auto s2 = StatFileSignature(p2);
  ASSERT_TRUE(s1.ok() && s2.ok());
  store.Put(p1, "$", SamplePathStats(), *s1, cfg);
  store.Put(p1, "$.k", SamplePathStats(), *s1, cfg);
  store.Put(p2, "$", SamplePathStats(), *s2, cfg);
  StatsStore::Totals t = store.totals();
  EXPECT_EQ(t.files, 2u);
  EXPECT_EQ(t.paths, 3u);
  store.Clear();
}

// ---------------------------------------------------------------------
// ExecOptions validation and the kill-switch plumbing

TEST(StatsModeTest, ValidateExecOptionsRejectsUnknownStatsMode) {
  ExecOptions exec;
  exec.stats_mode = static_cast<StatsMode>(9);
  Status st = ValidateExecOptions(exec);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(StatsModeTest, ModesEnableAsDocumented) {
  if (StatsDisabledByEnv()) {
    EXPECT_FALSE(StatsEnabled(StatsMode::kAuto));
    EXPECT_FALSE(StatsEnabled(StatsMode::kForced));
  } else {
    EXPECT_TRUE(StatsEnabled(StatsMode::kAuto));
    EXPECT_TRUE(StatsEnabled(StatsMode::kForced));
  }
  EXPECT_FALSE(StatsEnabled(StatsMode::kOff));
}

// ---------------------------------------------------------------------
// CostModel estimators

ScanEstimate TrustedEstimate(double min_v, double max_v, int distinct) {
  ScanEstimate e;
  e.rows = 10000;
  e.bytes = 1 << 20;
  e.from_stats = true;
  e.confident = true;
  e.coverage = 1.0;
  auto merged = std::make_shared<PathStats>();
  for (int i = 0; i < distinct; ++i) {
    double v = min_v + (max_v - min_v) * i / (distinct - 1);
    merged->Observe(Item::Double(v));
  }
  e.merged = merged;
  return e;
}

class CostModelEstimatorTest : public ::testing::Test {
 protected:
  CostModelEstimatorTest()
      : model_(&catalog_, StatsMode::kForced, StatsConfig{}) {}
  Catalog catalog_;
  CostModel model_;
};

TEST_F(CostModelEstimatorTest, RangeSelectivityIsMonotoneInTheValue) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  ScanEstimate e = TrustedEstimate(0, 1000, 200);
  double prev_lt = -1, prev_gt = 2;
  for (double v : {50.0, 250.0, 500.0, 750.0, 950.0}) {
    double lt = model_.EstimateSelectivity(e, ZoneCompare::kLt, v);
    double gt = model_.EstimateSelectivity(e, ZoneCompare::kGt, v);
    EXPECT_GE(lt, prev_lt) << v;
    EXPECT_LE(gt, prev_gt) << v;
    EXPECT_GT(lt, 0) << v;
    EXPECT_LT(lt, 1) << v;
    prev_lt = lt;
    prev_gt = gt;
  }
}

TEST_F(CostModelEstimatorTest, EqSelectivityShrinksWithDistincts) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  double few = model_.EstimateSelectivity(TrustedEstimate(0, 1000, 10),
                                          ZoneCompare::kEq, 500);
  double many = model_.EstimateSelectivity(TrustedEstimate(0, 1000, 2000),
                                           ZoneCompare::kEq, 500);
  EXPECT_GT(few, many);
  // Out of the observed range: near-zero but never exactly zero.
  double outside = model_.EstimateSelectivity(TrustedEstimate(0, 1000, 10),
                                              ZoneCompare::kEq, 5000);
  EXPECT_GT(outside, 0);
  EXPECT_LT(outside, few);
}

TEST_F(CostModelEstimatorTest, UntrustedEstimatesFallBackToDefault) {
  ScanEstimate unknown;  // no stats at all
  EXPECT_DOUBLE_EQ(
      model_.EstimateSelectivity(unknown, ZoneCompare::kLt, 5),
      CostModel::kDefaultSelectivity);
  EXPECT_FALSE(model_.Trust(unknown));
}

TEST_F(CostModelEstimatorTest, NonNumericSampleMakesNumericPredicateRare) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  ScanEstimate e;
  e.from_stats = true;
  e.confident = true;
  e.coverage = 1.0;
  auto merged = std::make_shared<PathStats>();
  for (int i = 0; i < 100; ++i) merged->Observe(Item::String("s"));
  e.merged = merged;
  EXPECT_LE(model_.EstimateSelectivity(e, ZoneCompare::kGt, 5), 0.01);
}

TEST_F(CostModelEstimatorTest, HintsAreMonotoneAndClamped) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  EXPECT_EQ(model_.SpillFanoutHint(-1), 0);
  EXPECT_EQ(model_.SpillFanoutHint(10), 2);          // floor
  EXPECT_EQ(model_.SpillFanoutHint(1e12), 64);       // ceiling
  int prev = 0;
  for (double rows : {1e4, 1e5, 1e6}) {
    int f = model_.SpillFanoutHint(rows);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_EQ(model_.MorselBytesHint(-1), 0u);
  EXPECT_EQ(model_.MorselBytesHint(1024), 64u * 1024);          // floor
  EXPECT_EQ(model_.MorselBytesHint(1e12), 4u * 1024 * 1024);    // ceiling
  EXPECT_LE(model_.MorselBytesHint(1e6), model_.MorselBytesHint(1e8));
}

TEST(CostModelTest, DisabledModelEstimatesNothing) {
  Catalog catalog;
  CostModel off(&catalog, StatsMode::kOff, StatsConfig{});
  EXPECT_FALSE(off.enabled());
  ScanEstimate e = off.EstimateScan("/missing", {});
  EXPECT_FALSE(e.from_stats);
  EXPECT_LT(e.rows, 0);
  EXPECT_EQ(off.SpillFanoutHint(1e6), 0);
  EXPECT_EQ(off.MorselBytesHint(1e6), 0u);

  CostModel null_catalog(nullptr, StatsMode::kForced, StatsConfig{});
  EXPECT_FALSE(null_catalog.enabled());
}

// ---------------------------------------------------------------------
// Compile-time plan annotations

struct PlanProbe {
  Engine engine;
  TempCollectionDir dir;

  void RegisterNdjson(const std::string& coll, const std::string& stem,
                      int files, int records, int base) {
    Collection c;
    for (int f = 0; f < files; ++f) {
      c.files.push_back(JsonFile::FromPath(
          dir.Write(stem + std::to_string(f) + ".ndjson",
                    Ndjson(records, base + f * records))));
    }
    engine.catalog()->RegisterCollection(coll, std::move(c));
  }

  /// Runs `query` once with stats building on so the StatsStore learns
  /// the scanned paths.
  void WarmStats(const std::string& query) {
    ExecOptions exec;
    exec.partitions = 2;
    exec.stats_mode = StatsMode::kAuto;
    auto compiled = engine.Compile(query, RuleOptions::All());
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    auto out = engine.Execute(*compiled, exec);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }
};

TEST(CostAnnotationTest, SelectiveZonePredicateRoutesToColumnar) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  StatsStore::Instance().Clear();
  PlanProbe probe;
  probe.RegisterNdjson("/vals", "vals_", 2, 2000, 0);
  const char* scan_all = R"(for $v in collection("/vals")("v") return $v)";
  probe.WarmStats(scan_all);

  // Values are 0..3999 uniform; `gt 3900` keeps ~2.5% of rows.
  const char* selective = R"(
    for $v in collection("/vals")("v")
    where $v gt 3900
    return $v)";
  ExecOptions exec;
  exec.stats_mode = StatsMode::kForced;
  auto plan = probe.engine.Compile(selective, RuleOptions::All(), exec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string rendered = plan->physical.root->ToString();
  EXPECT_NE(rendered.find("[access: columnar]"), std::string::npos)
      << rendered;
  EXPECT_GE(plan->physical.est_result_rows, 0);
  EXPECT_FALSE(plan->physical.cost_choices.empty());

  // An unselective predicate must not claim the columnar hint.
  const char* broad = R"(
    for $v in collection("/vals")("v")
    where $v gt 100
    return $v)";
  auto plan2 = probe.engine.Compile(broad, RuleOptions::All(), exec);
  ASSERT_TRUE(plan2.ok()) << plan2.status().ToString();
  EXPECT_EQ(plan2->physical.root->ToString().find("[access: columnar]"),
            std::string::npos);

  // Stats off: no annotations at all, the historical plan rendering.
  ExecOptions off = exec;
  off.stats_mode = StatsMode::kOff;
  auto plan3 = probe.engine.Compile(selective, RuleOptions::All(), off);
  ASSERT_TRUE(plan3.ok());
  EXPECT_EQ(plan3->physical.root->ToString().find("[access:"),
            std::string::npos);
  EXPECT_EQ(plan3->physical.root->ToString().find("[est-rows:"),
            std::string::npos);
  EXPECT_TRUE(plan3->physical.cost_choices.empty());
  EXPECT_LT(plan3->physical.est_result_rows, 0);
}

TEST(CostAnnotationTest, SkewedJoinBuildsOnTheSmallSide) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  StatsStore::Instance().Clear();
  PlanProbe probe;
  probe.RegisterNdjson("/small", "small_", 1, 40, 0);
  probe.RegisterNdjson("/big", "big_", 2, 3000, 0);
  // Warm with whole-document scans — the join below also scans whole
  // documents, and stats are keyed by (file, projected path), so the
  // warm shape must match the probe shape to share the sample.
  probe.WarmStats(R"(for $a in collection("/small") return $a)");
  probe.WarmStats(R"(for $b in collection("/big") return $b)");

  const char* join = R"(
    for $a in collection("/small")
    for $b in collection("/big")
    where $a("k") eq $b("k")
    return $a("v") + $b("v"))";
  ExecOptions exec;
  exec.stats_mode = StatsMode::kForced;
  auto with_stats = probe.engine.Compile(join, RuleOptions::All(), exec);
  ASSERT_TRUE(with_stats.ok()) << with_stats.status().ToString();
  EXPECT_NE(with_stats->physical.root->ToString().find("[build: left]"),
            std::string::npos)
      << with_stats->physical.root->ToString();

  ExecOptions off = exec;
  off.stats_mode = StatsMode::kOff;
  auto without = probe.engine.Compile(join, RuleOptions::All(), off);
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(without->physical.root->ToString().find("[build: left]"),
            std::string::npos);

  // The flipped build must reproduce the canonical emit order byte for
  // byte — the core answer-preservation claim of the build-side lever.
  for (ExecOptions run_exec : {exec, off}) {
    run_exec.partitions = 2;
    auto a = probe.engine.Execute(*with_stats, run_exec);
    auto b = probe.engine.Execute(*without, run_exec);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a->items.size(), b->items.size());
    for (size_t i = 0; i < a->items.size(); ++i) {
      EXPECT_EQ(a->items[i].ToJsonString(), b->items[i].ToJsonString()) << i;
    }
  }
}

TEST(CostAnnotationTest, GroupByGetsAFanoutHintFromInputCardinality) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  StatsStore::Instance().Clear();
  PlanProbe probe;
  probe.RegisterNdjson("/groups", "groups_", 2, 30000, 0);
  // Whole-document warm scan: matches the group-by's scan shape (see
  // the join test above).
  probe.WarmStats(R"(for $g in collection("/groups") return $g)");

  const char* groupby = R"(
    for $g in collection("/groups")
    group by $k := $g("k")
    return count($g))";
  ExecOptions exec;
  exec.stats_mode = StatsMode::kForced;
  auto plan = probe.engine.Compile(groupby, RuleOptions::All(), exec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  bool found = false;
  for (const std::string& c : plan->physical.cost_choices) {
    if (c.find("fanout-hint") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "group-by over a trusted 60k-row scan should "
                        "carry a spill-fanout hint";
}

TEST(CostAnnotationTest, MorselHintAnnotatesTrustedScans) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  StatsStore::Instance().Clear();
  PlanProbe probe;
  probe.RegisterNdjson("/m", "m_", 1, 500, 0);
  const char* q = R"(for $v in collection("/m")("v") return $v)";
  probe.WarmStats(q);
  ExecOptions exec;
  exec.stats_mode = StatsMode::kForced;
  auto plan = probe.engine.Compile(q, RuleOptions::All(), exec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  bool scan_choice = false;
  for (const std::string& c : plan->physical.cost_choices) {
    if (c.find("scan /m") != std::string::npos &&
        c.find("morsel-hint") != std::string::npos) {
      scan_choice = true;
    }
  }
  EXPECT_TRUE(scan_choice) << "trusted scan should record its choice";
  std::string rendered = plan->physical.root->ToString();
  EXPECT_NE(rendered.find("[est-rows:"), std::string::npos) << rendered;
}

}  // namespace
}  // namespace jpar
