// Seeded chaos schedules against the fault-tolerant distributed
// runtime (DESIGN.md §12): worker processes SIGKILLed at randomized
// points across the paper's five evaluation queries must either be
// recovered transparently (retry budget available — results stay
// byte-identical to the in-process reference) or surface kWorkerLost
// (retries disabled), and never leak worker processes or spill files.
//
// The schedule RNG is seeded from JPAR_CHAOS_SEED (default 1) so CI
// can sweep seeds while every individual run stays reproducible.

#include <gtest/gtest.h>

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "data/sensor_generator.h"
#include "dist/dispatcher.h"

#ifndef JPAR_WORKER_BIN_PATH
#error "build must define JPAR_WORKER_BIN_PATH (see tests/CMakeLists.txt)"
#endif

namespace jpar {
namespace {

constexpr const char* kQ0 = R"(
  for $r in collection("/sensors")("root")()("results")()
  let $datetime := dateTime(data($r("date")))
  where year-from-dateTime($datetime) ge 2003
    and month-from-dateTime($datetime) eq 12
    and day-from-dateTime($datetime) eq 25
  return $r)";

constexpr const char* kQ0b = R"(
  for $r in collection("/sensors")("root")()("results")()("date")
  let $datetime := dateTime(data($r))
  where year-from-dateTime($datetime) ge 2003
    and month-from-dateTime($datetime) eq 12
    and day-from-dateTime($datetime) eq 25
  return $r)";

constexpr const char* kQ1 = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count($r("station")))";

constexpr const char* kQ1b = R"(
  for $r in collection("/sensors")("root")()("results")()
  where $r("dataType") eq "TMIN"
  group by $date := $r("date")
  return count(for $i in $r return $i("station")))";

constexpr const char* kQ2 = R"(
  avg(
    for $r_min in collection("/sensors")("root")()("results")()
    for $r_max in collection("/sensors")("root")()("results")()
    where $r_min("station") eq $r_max("station")
      and $r_min("date") eq $r_max("date")
      and $r_min("dataType") eq "TMIN"
      and $r_max("dataType") eq "TMAX"
    return $r_max("value") - $r_min("value")
  ) div 10)";

constexpr const char* kAllQueries[] = {kQ0, kQ0b, kQ1, kQ1b, kQ2};

uint64_t ChaosSeed() {
  const char* env = std::getenv("JPAR_CHAOS_SEED");
  if (env == nullptr || env[0] == '\0') return 1;
  return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
}

Collection MakeData() {
  SensorDataSpec spec;
  spec.num_files = 5;
  spec.records_per_file = 8;
  spec.measurements_per_array = 16;
  spec.num_stations = 6;
  spec.seed = 7;
  return GenerateSensorCollection(spec);
}

DistOptions MakeDist(int workers) {
  DistOptions dist;
  dist.local_workers = workers;
  dist.worker_binary = JPAR_WORKER_BIN_PATH;
  dist.heartbeat_ms = 200;
  dist.worker_timeout_ms = 3000;
  dist.drain_timeout_ms = 1000;
  return dist;
}

std::vector<std::string> Rows(const QueryOutput& output) {
  std::vector<std::string> rows;
  for (const Item& item : output.items) rows.push_back(item.ToJsonString());
  return rows;
}

/// jpar_worker children of this test process, zombies included — an
/// unreaped child is a leak (scans /proc).
std::vector<pid_t> ChildWorkerPids() {
  std::vector<pid_t> pids;
  DIR* proc = opendir("/proc");
  if (proc == nullptr) return pids;
  while (dirent* entry = readdir(proc)) {
    pid_t pid = static_cast<pid_t>(std::atol(entry->d_name));
    if (pid <= 0) continue;
    char path[64];
    std::snprintf(path, sizeof(path), "/proc/%d/stat", pid);
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) continue;
    char comm[64] = {0};
    char state = 0;
    int ppid = 0;
    int n = std::fscanf(f, "%*d (%63[^)]) %c %d", comm, &state, &ppid);
    std::fclose(f);
    (void)state;
    if (n == 3 && ppid == getpid() && std::strcmp(comm, "jpar_worker") == 0) {
      pids.push_back(pid);
    }
  }
  closedir(proc);
  return pids;
}

void ExpectNoWorkerLeaks() {
  for (int i = 0; i < 100 && !ChildWorkerPids().empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(ChildWorkerPids().empty());
}

/// Per-query kill plan consulted by a cluster-lifetime test_round_hook
/// (the hook is fixed at construction; the plan is re-armed per run).
struct KillPlan {
  std::atomic<bool> armed{false};
  std::atomic<int> victims{1};
};

/// Kills `victims` live workers (SIGKILL) right before the first
/// dispatch of the leaf stage, once per arming.
void HookKill(KillPlan* plan, int stage_id, int attempt) {
  if (stage_id != 0 || attempt != 0) return;
  if (!plan->armed.exchange(false)) return;
  std::vector<pid_t> pids = ChildWorkerPids();
  int n = std::min(plan->victims.load(), static_cast<int>(pids.size()));
  for (int i = 0; i < n; ++i) kill(pids[i], SIGKILL);
}

/// One engine + compiled plan + reference rows per (query, W) pair:
/// byte-identity is defined against an in-process run with
/// partitions = W.
struct Reference {
  std::unique_ptr<Engine> engine;
  std::unique_ptr<CompiledQuery> compiled;
  std::vector<std::string> rows;
};

Reference MakeReference(const char* query, int workers) {
  Reference ref;
  EngineOptions options;
  options.rules = RuleOptions::All();
  options.exec.partitions = workers;
  ref.engine = std::make_unique<Engine>(options);
  ref.engine->catalog()->RegisterCollection("/sensors", MakeData());
  auto compiled = ref.engine->Compile(query, options.rules);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  if (!compiled.ok()) return ref;
  ref.compiled = std::make_unique<CompiledQuery>(*std::move(compiled));
  auto local = ref.engine->Execute(*ref.compiled, options.exec);
  EXPECT_TRUE(local.ok()) << local.status().ToString();
  if (local.ok()) ref.rows = Rows(*local);
  return ref;
}

TEST(DistChaosTest, SeededKillSchedulesConvergeToByteIdenticalResults) {
  const uint64_t seed = ChaosSeed();
  uint64_t total_retries = 0;
  for (int workers : {2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    std::mt19937_64 rng(seed * 1000003 + static_cast<uint64_t>(workers));

    KillPlan plan;
    DistOptions dist = MakeDist(workers);
    dist.max_fragment_retries = 3;
    dist.retry_backoff_ms = 25;
    dist.test_round_hook = [&plan](int stage_id, int attempt) {
      HookKill(&plan, stage_id, attempt);
    };
    Cluster cluster(dist);

    for (size_t q = 0; q < std::size(kAllQueries); ++q) {
      SCOPED_TRACE("query=" + std::to_string(q));
      Reference ref = MakeReference(kAllQueries[q], workers);
      ASSERT_NE(ref.compiled, nullptr);
      EngineOptions opts;
      opts.rules = RuleOptions::All();
      opts.exec.partitions = workers;

      for (int run = 0; run < 3; ++run) {
        SCOPED_TRACE("run=" + std::to_string(run));
        // Schedule: 0 = kill one worker before the leaf dispatch,
        // 1 = kill two workers before the leaf dispatch, 2 = kill one
        // worker from a concurrent thread at a random point mid-query.
        const int schedule = static_cast<int>(rng() % 3);
        std::thread killer;
        if (schedule == 2) {
          const int delay_ms = static_cast<int>(rng() % 80);
          killer = std::thread([delay_ms] {
            std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
            std::vector<pid_t> pids = ChildWorkerPids();
            if (!pids.empty()) kill(pids[0], SIGKILL);
          });
        } else {
          plan.victims.store(schedule == 1 ? 2 : 1);
          plan.armed.store(true);
        }
        QueryContext ctx;
        ctx.set_deadline_after_ms(30000);
        auto out = cluster.Run(kAllQueries[q], opts.rules, opts.exec,
                               *ref.compiled, *ref.engine->catalog(), &ctx);
        if (killer.joinable()) killer.join();
        plan.armed.store(false);
        ASSERT_TRUE(out.ok()) << out.status().ToString();
        EXPECT_EQ(Rows(*out), ref.rows);
        EXPECT_EQ(out->stats.dist_workers, static_cast<uint64_t>(workers));
        total_retries += out->stats.fragment_retries;
        if (out->stats.fragment_retries > 0) {
          EXPECT_GE(out->stats.workers_respawned, 1u);
        }
      }
    }
    cluster.Stop();
    ExpectNoWorkerLeaks();
  }
  // The hook schedules always land: across the whole sweep recovery
  // must actually have been exercised, not just survived-by-luck.
  EXPECT_GE(total_retries, 10u);
}

TEST(DistChaosTest, RetriesDisabledSurfaceWorkerLostUnchanged) {
  KillPlan plan;
  DistOptions dist = MakeDist(2);  // max_fragment_retries = 0
  dist.test_round_hook = [&plan](int stage_id, int attempt) {
    HookKill(&plan, stage_id, attempt);
  };
  Cluster cluster(dist);
  Reference ref = MakeReference(kQ1, 2);
  ASSERT_NE(ref.compiled, nullptr);
  EngineOptions opts;
  opts.rules = RuleOptions::All();
  opts.exec.partitions = 2;

  plan.victims.store(1);
  plan.armed.store(true);
  auto out = cluster.Run(kQ1, opts.rules, opts.exec, *ref.compiled,
                         *ref.engine->catalog(), nullptr);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kWorkerLost)
      << out.status().ToString();

  // The loss is not sticky: the next query respawns and succeeds.
  auto retry = cluster.Run(kQ1, opts.rules, opts.exec, *ref.compiled,
                           *ref.engine->catalog(), nullptr);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(Rows(*retry), ref.rows);
  cluster.Stop();
  ExpectNoWorkerLeaks();
}

TEST(DistChaosTest, ZeroReplayBudgetSpillsAndLeavesNoFilesBehind) {
  // Force every banked stage output through the disk spill path, then
  // verify recovery still reproduces the reference rows and the spool
  // cleans up its run files.
  std::string spill_dir =
      ::testing::TempDir() + "/jpar_chaos_replay_spill";
  std::filesystem::remove_all(spill_dir);
  ASSERT_TRUE(std::filesystem::create_directories(spill_dir));

  KillPlan plan;
  DistOptions dist = MakeDist(2);
  dist.max_fragment_retries = 2;
  dist.retry_backoff_ms = 25;
  dist.replay_memory_bytes = 0;  // spill everything
  dist.test_round_hook = [&plan](int stage_id, int attempt) {
    HookKill(&plan, stage_id, attempt);
  };
  Cluster cluster(dist);
  Reference ref = MakeReference(kQ1, 2);
  ASSERT_NE(ref.compiled, nullptr);
  EngineOptions opts;
  opts.rules = RuleOptions::All();
  opts.exec.partitions = 2;
  opts.exec.spill_dir = spill_dir;

  plan.victims.store(1);
  plan.armed.store(true);
  auto out = cluster.Run(kQ1, opts.rules, opts.exec, *ref.compiled,
                         *ref.engine->catalog(), nullptr);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(Rows(*out), ref.rows);
  EXPECT_GE(out->stats.fragment_retries, 1u);
  EXPECT_GT(out->stats.replay_spill_bytes, 0u);
  cluster.Stop();
  ExpectNoWorkerLeaks();

  // Every replay run file was removed when its stage was freed (or by
  // the spool's destructor sweep at end of query).
  int leftovers = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(spill_dir)) {
    ++leftovers;
    ADD_FAILURE() << "leaked spill file: " << entry.path();
  }
  EXPECT_EQ(leftovers, 0);
  std::filesystem::remove_all(spill_dir);
}

}  // namespace
}  // namespace jpar
