// Rule-by-rule tests of the paper's rewrite transformations: each rule
// is applied in isolation (or in its category) and the resulting plan
// shape is asserted against the paper's figures.

#include "algebra/rewriter.h"

#include <gtest/gtest.h>

#include "jsoniq/parser.h"
#include "jsoniq/translator.h"

namespace jpar {
namespace {

LogicalPlan Plan(std::string_view query) {
  auto ast = ParseQuery(query);
  EXPECT_TRUE(ast.ok()) << ast.status().ToString();
  auto plan = TranslateToLogical(*ast);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  return *plan;
}

std::vector<std::string> Rewrite(LogicalPlan* plan, RuleOptions options) {
  RewriteEngine engine(options);
  auto fired = engine.Rewrite(plan);
  EXPECT_TRUE(fired.ok()) << fired.status().ToString();
  return fired.ok() ? *fired : std::vector<std::string>{};
}

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    ++count;
  }
  return count;
}

// ---------------------------------------------------------------------
// Path expression rules (Figs. 3 -> 4)
// ---------------------------------------------------------------------

TEST(PathRulesTest, RemovesPromoteAndData) {
  LogicalPlan plan = Plan(R"(json-doc("books.json")("bookstore")())");
  ASSERT_NE(plan.ToString().find("promote"), std::string::npos);
  RuleOptions options = RuleOptions::None();
  options.path_rules = true;
  std::vector<std::string> fired = Rewrite(&plan, options);
  std::string text = plan.ToString();
  EXPECT_EQ(text.find("promote"), std::string::npos) << text;
  EXPECT_EQ(text.find("data("), std::string::npos) << text;
  EXPECT_NE(std::find(fired.begin(), fired.end(), "remove-promote-data"),
            fired.end());
}

TEST(PathRulesTest, MergesKeysOrMembersIntoUnnest) {
  // Fig. 4: UNNEST iterate over ASSIGN keys-or-members fuses into
  // UNNEST keys-or-members.
  LogicalPlan plan = Plan(R"(collection("/books")("bookstore")("book")())");
  RuleOptions options = RuleOptions::None();
  options.path_rules = true;
  Rewrite(&plan, options);
  std::string text = plan.ToString();
  EXPECT_NE(text.find("UNNEST"), std::string::npos);
  // The fused form: UNNEST $v <- keys-or-members(...), with no ASSIGN
  // keys-or-members left.
  EXPECT_EQ(text.find("ASSIGN $2 <- keys-or-members"), std::string::npos);
  EXPECT_NE(text.find("<- keys-or-members"), std::string::npos);
  // The collection read and file-iterate remain (pipelining is off).
  EXPECT_NE(text.find("collection(\"/books\")"), std::string::npos);
  EXPECT_EQ(text.find("DATASCAN"), std::string::npos);
}

TEST(PathRulesTest, DoesNotFireWhenVariableUsedTwice) {
  // If the keys-or-members sequence is referenced elsewhere, the merge
  // must not fire.
  LogicalPlan plan = Plan(R"(
      for $x in collection("/c")
      let $members := $x("list")()
      for $m in $members
      return count($members))");
  RuleOptions options = RuleOptions::None();
  options.path_rules = true;
  Rewrite(&plan, options);
  // The ASSIGN keys-or-members survives (still referenced by count()).
  EXPECT_NE(plan.ToString().find("ASSIGN"), std::string::npos);
  EXPECT_NE(plan.ToString().find("keys-or-members"), std::string::npos);
}

// ---------------------------------------------------------------------
// Pipelining rules (Figs. 5 -> 8)
// ---------------------------------------------------------------------

TEST(PipeliningRulesTest, IntroducesDataScan) {
  LogicalPlan plan = Plan(R"(collection("/books")("bookstore")("book")())");
  RuleOptions options = RuleOptions::None();
  options.path_rules = true;
  options.pipelining_rules = true;
  std::vector<std::string> fired = Rewrite(&plan, options);
  std::string text = plan.ToString();
  EXPECT_NE(text.find("DATASCAN"), std::string::npos);
  EXPECT_EQ(text.find("collection(\"/books\")\n"), std::string::npos);
  EXPECT_NE(std::find(fired.begin(), fired.end(), "introduce-datascan"),
            fired.end());
}

TEST(PipeliningRulesTest, FullPathMergesIntoScanArguments) {
  // Fig. 8: the whole navigation ends up as DATASCAN's second argument.
  LogicalPlan plan = Plan(R"(collection("/books")("bookstore")("book")())");
  Rewrite(&plan, RuleOptions::All());
  std::string text = plan.ToString();
  EXPECT_NE(text.find(
                "<- collection(\"/books\")(\"bookstore\")(\"book\")()"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("DATASCAN"), std::string::npos);
  EXPECT_EQ(text.find("UNNEST"), std::string::npos);
  EXPECT_EQ(text.find("ASSIGN"), std::string::npos);
}

TEST(PipeliningRulesTest, SensorPathMergesBothKeysOrMembers) {
  LogicalPlan plan = Plan(R"(
      for $r in collection("/sensors")("root")()("results")()
      return $r)");
  Rewrite(&plan, RuleOptions::All());
  std::string text = plan.ToString();
  EXPECT_NE(text.find("(\"root\")()(\"results\")()"), std::string::npos)
      << text;
}

TEST(PipeliningRulesTest, TrailingValueStepMergesToo) {
  // Q0b's ("date") after the final () — paper §5.3's key optimization.
  LogicalPlan plan = Plan(R"(
      for $r in collection("/sensors")("root")()("results")()("date")
      return $r)");
  Rewrite(&plan, RuleOptions::All());
  std::string text = plan.ToString();
  EXPECT_NE(text.find("(\"results\")()(\"date\")"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("UNNEST"), std::string::npos) << text;
}

TEST(PipeliningRulesTest, PushdownSubToggle) {
  // With pipelining_pushdown off (the AsterixDB model), DATASCAN is
  // introduced but navigation stays in ASSIGN/UNNEST operators.
  LogicalPlan plan = Plan(R"(
      for $r in collection("/sensors")("root")()("results")()
      return $r)");
  RuleOptions options = RuleOptions::All();
  options.pipelining_pushdown = false;
  Rewrite(&plan, options);
  std::string text = plan.ToString();
  EXPECT_NE(text.find("DATASCAN"), std::string::npos);
  EXPECT_NE(text.find("UNNEST"), std::string::npos);
  EXPECT_EQ(text.find("(\"root\")()"), std::string::npos) << text;
}

TEST(PipeliningRulesTest, RequiresPathRulesForFullFusion) {
  // Without the path rules the two-step keys-or-members blocks the
  // keys-or-members pushdown (category stacking, paper §4.2 "builds on
  // top of the previous rule set").
  LogicalPlan plan = Plan(R"(collection("/books")("bookstore")("book")())");
  RuleOptions options = RuleOptions::None();
  options.pipelining_rules = true;  // but path_rules stay off
  Rewrite(&plan, options);
  std::string text = plan.ToString();
  EXPECT_NE(text.find("DATASCAN"), std::string::npos);
  EXPECT_NE(text.find("keys-or-members"), std::string::npos);
}

// ---------------------------------------------------------------------
// Group-by rules (Figs. 9 -> 12)
// ---------------------------------------------------------------------

constexpr const char* kGroupQuery = R"(
    for $x in collection("/books")("bookstore")("book")()
    group by $author := $x("author")
    return count($x("title")))";

TEST(GroupByRulesTest, RemovesTreat) {
  LogicalPlan plan = Plan(kGroupQuery);
  ASSERT_NE(plan.ToString().find("treat("), std::string::npos);
  RuleOptions options = RuleOptions::None();
  options.groupby_rules = true;
  std::vector<std::string> fired = Rewrite(&plan, options);
  EXPECT_EQ(plan.ToString().find("treat("), std::string::npos);
  EXPECT_NE(std::find(fired.begin(), fired.end(), "remove-redundant-treat"),
            fired.end());
}

TEST(GroupByRulesTest, PushesCountIntoGroupBy) {
  // Fig. 12: the final nested plan computes count incrementally; no
  // sequence materialization, no SUBPLAN remains.
  LogicalPlan plan = Plan(kGroupQuery);
  RuleOptions options = RuleOptions::None();
  options.groupby_rules = true;
  std::vector<std::string> fired = Rewrite(&plan, options);
  std::string text = plan.ToString();
  EXPECT_EQ(text.find("sequence("), std::string::npos) << text;
  EXPECT_EQ(text.find("SUBPLAN"), std::string::npos) << text;
  EXPECT_NE(text.find("count(value("), std::string::npos) << text;
  EXPECT_NE(std::find(fired.begin(), fired.end(),
                      "convert-scalar-to-aggregate"),
            fired.end());
  EXPECT_NE(std::find(fired.begin(), fired.end(),
                      "push-aggregate-into-groupby"),
            fired.end());
}

TEST(GroupByRulesTest, SecondFormSkipsConversion) {
  // Q1b is "already written in an optimized way" (paper §5.3): the
  // SUBPLAN comes from translation, so only the push-down fires.
  LogicalPlan plan = Plan(R"(
      for $x in collection("/books")("bookstore")("book")()
      group by $author := $x("author")
      return count(for $j in $x return $j("title")))");
  RuleOptions options = RuleOptions::None();
  options.groupby_rules = true;
  std::vector<std::string> fired = Rewrite(&plan, options);
  EXPECT_EQ(std::find(fired.begin(), fired.end(),
                      "convert-scalar-to-aggregate"),
            fired.end());
  EXPECT_NE(std::find(fired.begin(), fired.end(),
                      "push-aggregate-into-groupby"),
            fired.end());
  EXPECT_EQ(plan.ToString().find("SUBPLAN"), std::string::npos);
}

TEST(GroupByRulesTest, OtherAggregatesConvertToo) {
  // The conversion generalizes beyond count (sum/avg/min/max).
  LogicalPlan plan = Plan(R"(
      for $x in collection("/c")("root")()
      group by $k := $x("k")
      return sum($x("v")))");
  RuleOptions options = RuleOptions::None();
  options.groupby_rules = true;
  Rewrite(&plan, options);
  std::string text = plan.ToString();
  EXPECT_NE(text.find("sum(value("), std::string::npos) << text;
  EXPECT_EQ(text.find("sequence("), std::string::npos) << text;
}

TEST(GroupByRulesTest, SequenceUsedTwiceBlocksPushdown) {
  // If the group sequence feeds two consumers, the push-down must not
  // fire (it would change the second consumer's input).
  LogicalPlan plan = Plan(R"(
      for $x in collection("/c")("root")()
      group by $k := $x("k")
      return count($x("v")) + count($x("w")))");
  RuleOptions options = RuleOptions::None();
  options.groupby_rules = true;
  Rewrite(&plan, options);
  // Both counts converted to subplans, but the sequence materialization
  // must survive (two consumers).
  EXPECT_NE(plan.ToString().find("sequence("), std::string::npos)
      << plan.ToString();
}

// ---------------------------------------------------------------------
// Join rule
// ---------------------------------------------------------------------

TEST(JoinRulesTest, ExtractsEquiKeysAndPushesSelections) {
  LogicalPlan plan = Plan(R"(
      for $a in collection("/x")("root")()
      for $b in collection("/y")("root")()
      where $a("k") eq $b("k") and $a("t") eq "TMIN"
        and $b("t") eq "TMAX" and $a("v") lt $b("v")
      return $a)");
  RuleOptions options = RuleOptions::None();
  std::vector<std::string> fired = Rewrite(&plan, options);
  EXPECT_NE(std::find(fired.begin(), fired.end(), "extract-join-condition"),
            fired.end());
  // Find the join; check keys and residual.
  LOpPtr cursor = plan.root;
  while (cursor != nullptr && cursor->kind != LOpKind::kJoin) {
    cursor = cursor->inputs.empty() ? nullptr : cursor->inputs[0];
  }
  ASSERT_NE(cursor, nullptr);
  ASSERT_EQ(cursor->left_keys.size(), 1u);
  ASSERT_EQ(cursor->right_keys.size(), 1u);
  ASSERT_NE(cursor->expr, nullptr);  // the lt residual
  EXPECT_NE(cursor->expr->ToString().find("lt"), std::string::npos);
  // One-sided predicates were pushed below the branches.
  EXPECT_EQ(cursor->inputs[0]->kind, LOpKind::kSelect);
  EXPECT_EQ(cursor->inputs[1]->kind, LOpKind::kSelect);
}

// ---------------------------------------------------------------------
// Projection insertion (Algebricks-core, always on)
// ---------------------------------------------------------------------

TEST(ProjectionTest, InsertsProjectWhereVariablesDie) {
  LogicalPlan plan = Plan(kGroupQuery);
  ASSERT_TRUE(InsertProjections(&plan).ok());
  EXPECT_NE(plan.ToString().find("PROJECT"), std::string::npos);
}

TEST(ProjectionTest, FullyOptimizedPlanNeedsNoProjection) {
  LogicalPlan plan = Plan(R"(collection("/books")("bookstore")("book")())");
  Rewrite(&plan, RuleOptions::All());
  ASSERT_TRUE(InsertProjections(&plan).ok());
  // DATASCAN produces exactly the distributed variable: nothing to drop.
  EXPECT_EQ(plan.ToString().find("PROJECT"), std::string::npos)
      << plan.ToString();
}

// ---------------------------------------------------------------------
// Fixpoint behaviour
// ---------------------------------------------------------------------

TEST(RewriteEngineTest, RewriteIsIdempotent) {
  LogicalPlan plan = Plan(kGroupQuery);
  Rewrite(&plan, RuleOptions::All());
  std::string once = plan.ToString();
  std::vector<std::string> fired2 = Rewrite(&plan, RuleOptions::All());
  EXPECT_TRUE(fired2.empty()) << fired2.size() << " rules re-fired";
  EXPECT_EQ(plan.ToString(), once);
}

TEST(RewriteEngineTest, NoneConfigurationOnlyNormalizesJoins) {
  LogicalPlan plan = Plan(kGroupQuery);
  std::string before = plan.ToString();
  std::vector<std::string> fired = Rewrite(&plan, RuleOptions::None());
  EXPECT_TRUE(fired.empty());
  EXPECT_EQ(plan.ToString(), before);
}

TEST(RewriteEngineTest, CountOccurrencesSanity) {
  EXPECT_EQ(CountOccurrences("aaa", "aa"), 2);  // helper self-check
}

}  // namespace
}  // namespace jpar
