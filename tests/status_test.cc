#include "common/status.h"

#include <gtest/gtest.h>

#include <set>

#include "common/result.h"

namespace jpar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, CopiesShareRepresentation) {
  Status a = Status::IOError("disk gone");
  Status b = a;
  EXPECT_EQ(b.message(), "disk gone");
  EXPECT_EQ(b.code(), StatusCode::kIOError);
}

TEST(StatusTest, EveryCodeHasADistinctName) {
  // Exhaustive by construction: status.cc static_asserts that
  // kStatusCodeCount covers the enum, so a newly added code lands here
  // automatically and fails until StatusCodeToString names it.
  std::set<std::string_view> names;
  for (int i = 0; i < kStatusCodeCount; ++i) {
    std::string_view name = StatusCodeToString(static_cast<StatusCode>(i));
    EXPECT_NE(name, "Unknown") << "StatusCode " << i << " has no name";
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate status name: " << name;
  }
  EXPECT_EQ(StatusCodeToString(static_cast<StatusCode>(kStatusCodeCount)),
            "Unknown");
}

TEST(StatusTest, LifecycleCodesRoundTrip) {
  Status cancelled = Status::Cancelled("client went away");
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: client went away");

  Status late = Status::DeadlineExceeded("budget spent");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DeadlineExceeded: budget spent");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("x"); };
  auto wrapper = [&]() -> Status {
    JPAR_RETURN_NOT_OK(fails());
    return Status::Internal("unreachable");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::TypeError("not an int");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto producer = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 10;
  };
  auto consumer = [&](bool fail) -> Result<int> {
    JPAR_ASSIGN_OR_RETURN(int v, producer(fail));
    return v * 2;
  };
  EXPECT_EQ(*consumer(false), 20);
  EXPECT_EQ(consumer(true).status().code(), StatusCode::kInternal);
}

TEST(ResultTest, AssignOrReturnIntoExistingVariable) {
  // The spill runtime threads Result values into variables declared
  // before the call (loop-carried readers, granted budgets), so the
  // macro must accept a plain lvalue as its lhs, not only a
  // declaration.
  auto producer = [](bool fail) -> Result<uint64_t> {
    if (fail) return Status::ResourceExhausted("no budget");
    return uint64_t{4096};
  };
  auto consumer = [&](bool fail) -> Result<uint64_t> {
    uint64_t granted = 0;
    JPAR_ASSIGN_OR_RETURN(granted, producer(fail));
    return granted / 2;
  };
  EXPECT_EQ(*consumer(false), 2048u);
  EXPECT_EQ(consumer(true).status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace jpar
