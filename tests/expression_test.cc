#include "runtime/expression.h"

#include <gtest/gtest.h>

namespace jpar {
namespace {

Result<Item> Eval(Builtin fn, std::vector<Item> args,
                  EvalContext* ctx = nullptr) {
  std::vector<ScalarEvalPtr> evals;
  for (Item& a : args) evals.push_back(MakeConstantEval(std::move(a)));
  auto f = MakeFunctionEval(fn, std::move(evals));
  if (!f.ok()) return f.status();
  EvalContext local;
  Tuple empty;
  return (*f)->Eval(empty, ctx != nullptr ? ctx : &local);
}

Item Obj(std::initializer_list<std::pair<const char*, Item>> fields) {
  Item::Object out;
  for (const auto& [k, v] : fields) out.push_back({k, v});
  return Item::MakeObject(std::move(out));
}

// ---------------------------------------------------------------------
// value() — the JSONiq navigation the paper's §3.2 defines.
// ---------------------------------------------------------------------

TEST(ValueStepTest, ObjectFieldLookup) {
  Item obj = Obj({{"a", Item::Int64(1)}, {"b", Item::String("x")}});
  EXPECT_EQ(*ValueStep(obj, Item::String("a")), Item::Int64(1));
  EXPECT_EQ(ValueStep(obj, Item::String("zz"))->SequenceLength(), 0u);
  // Non-string key on an object selects nothing.
  EXPECT_EQ(ValueStep(obj, Item::Int64(1))->SequenceLength(), 0u);
}

TEST(ValueStepTest, ArrayIndexIsOneBased) {
  Item arr = Item::MakeArray({Item::String("a"), Item::String("b")});
  EXPECT_EQ(*ValueStep(arr, Item::Int64(1)), Item::String("a"));
  EXPECT_EQ(*ValueStep(arr, Item::Int64(2)), Item::String("b"));
  EXPECT_EQ(ValueStep(arr, Item::Int64(0))->SequenceLength(), 0u);
  EXPECT_EQ(ValueStep(arr, Item::Int64(3))->SequenceLength(), 0u);
  EXPECT_EQ(ValueStep(arr, Item::String("a"))->SequenceLength(), 0u);
}

TEST(ValueStepTest, MapsOverSequences) {
  // JSONiq navigation maps over sequences — the pre-group-by-rule
  // plans depend on this (paper §4.3's "value applied on a sequence").
  Item seq = Item::MakeSequence(
      {Obj({{"t", Item::Int64(1)}}), Obj({{"t", Item::Int64(2)}}),
       Obj({{"u", Item::Int64(3)}})});
  Item mapped = *ValueStep(seq, Item::String("t"));
  ASSERT_TRUE(mapped.is_sequence());
  ASSERT_EQ(mapped.sequence().size(), 2u);  // missing fields vanish
  EXPECT_EQ(mapped.sequence()[1], Item::Int64(2));
}

TEST(ValueStepTest, AtomicSelectsNothing) {
  EXPECT_EQ(ValueStep(Item::Int64(5), Item::String("x"))->SequenceLength(),
            0u);
}

// ---------------------------------------------------------------------
// keys-or-members()
// ---------------------------------------------------------------------

TEST(KeysOrMembersTest, ArrayMembers) {
  Item arr = Item::MakeArray({Item::Int64(1), Item::Int64(2)});
  Item members = *KeysOrMembersStep(arr);
  ASSERT_TRUE(members.is_sequence());
  EXPECT_EQ(members.sequence().size(), 2u);
}

TEST(KeysOrMembersTest, SingletonArrayCollapses) {
  Item arr = Item::MakeArray({Item::String("only")});
  EXPECT_EQ(*KeysOrMembersStep(arr), Item::String("only"));
}

TEST(KeysOrMembersTest, ObjectKeys) {
  Item keys = *KeysOrMembersStep(Obj({{"a", Item::Int64(1)},
                                      {"b", Item::Int64(2)}}));
  ASSERT_TRUE(keys.is_sequence());
  EXPECT_EQ(keys.sequence()[0], Item::String("a"));
  EXPECT_EQ(keys.sequence()[1], Item::String("b"));
}

TEST(KeysOrMembersTest, AtomicsAndEmptyYieldEmpty) {
  EXPECT_EQ(KeysOrMembersStep(Item::Int64(1))->SequenceLength(), 0u);
  EXPECT_EQ(KeysOrMembersStep(Item::MakeArray({}))->SequenceLength(), 0u);
}

// ---------------------------------------------------------------------
// Comparisons, boolean logic, arithmetic
// ---------------------------------------------------------------------

TEST(FunctionEvalTest, GeneralComparisons) {
  EXPECT_EQ(*Eval(Builtin::kEq, {Item::Int64(1), Item::Double(1.0)}),
            Item::Boolean(true));
  EXPECT_EQ(*Eval(Builtin::kLt, {Item::String("a"), Item::String("b")}),
            Item::Boolean(true));
  EXPECT_EQ(*Eval(Builtin::kGe, {Item::Int64(3), Item::Int64(3)}),
            Item::Boolean(true));
  EXPECT_EQ(*Eval(Builtin::kNe, {Item::Int64(3), Item::Int64(3)}),
            Item::Boolean(false));
}

TEST(FunctionEvalTest, ExistentialSequenceComparison) {
  Item seq = Item::MakeSequence({Item::Int64(1), Item::Int64(5)});
  // some member eq 5 => true
  EXPECT_EQ(*Eval(Builtin::kEq, {seq, Item::Int64(5)}), Item::Boolean(true));
  EXPECT_EQ(*Eval(Builtin::kEq, {seq, Item::Int64(9)}),
            Item::Boolean(false));
  // Empty sequence compares false against anything.
  EXPECT_EQ(*Eval(Builtin::kEq, {Item::EmptySequence(), Item::Int64(1)}),
            Item::Boolean(false));
}

TEST(FunctionEvalTest, IncomparableTypesError) {
  EXPECT_FALSE(Eval(Builtin::kLt, {Item::Int64(1), Item::String("1")}).ok());
}

TEST(FunctionEvalTest, BooleanConnectivesShortCircuit) {
  EXPECT_EQ(*Eval(Builtin::kAnd, {Item::Boolean(true), Item::Boolean(false)}),
            Item::Boolean(false));
  EXPECT_EQ(*Eval(Builtin::kOr, {Item::Boolean(false), Item::Boolean(true)}),
            Item::Boolean(true));
  EXPECT_EQ(*Eval(Builtin::kNot, {Item::EmptySequence()}),
            Item::Boolean(true));
  // Short-circuit: the right side of `false and X` is never evaluated,
  // even if it would error.
  auto err = MakeFunctionEval(Builtin::kLt, {MakeConstantEval(Item::Int64(1)),
                                             MakeConstantEval(Item::String("x"))});
  ASSERT_TRUE(err.ok());
  auto conj = MakeFunctionEval(
      Builtin::kAnd, {MakeConstantEval(Item::Boolean(false)), *err});
  ASSERT_TRUE(conj.ok());
  EvalContext ctx;
  Tuple empty;
  auto result = (*conj)->Eval(empty, &ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, Item::Boolean(false));
}

TEST(FunctionEvalTest, Arithmetic) {
  EXPECT_EQ(*Eval(Builtin::kAdd, {Item::Int64(2), Item::Int64(3)}),
            Item::Int64(5));
  EXPECT_EQ(*Eval(Builtin::kSub, {Item::Int64(2), Item::Double(0.5)}),
            Item::Double(1.5));
  EXPECT_EQ(*Eval(Builtin::kMul, {Item::Int64(4), Item::Int64(5)}),
            Item::Int64(20));
  // div always yields a double (XQuery decimal division).
  EXPECT_EQ(*Eval(Builtin::kDiv, {Item::Int64(7), Item::Int64(2)}),
            Item::Double(3.5));
  EXPECT_EQ(*Eval(Builtin::kMod, {Item::Int64(7), Item::Int64(4)}),
            Item::Int64(3));
  EXPECT_EQ(*Eval(Builtin::kNeg, {Item::Int64(7)}), Item::Int64(-7));
}

TEST(FunctionEvalTest, ArithmeticErrors) {
  EXPECT_FALSE(Eval(Builtin::kDiv, {Item::Int64(1), Item::Int64(0)}).ok());
  EXPECT_FALSE(Eval(Builtin::kAdd, {Item::Int64(1), Item::String("x")}).ok());
  // Empty-sequence operands propagate the empty sequence.
  EXPECT_EQ(Eval(Builtin::kAdd, {Item::EmptySequence(), Item::Int64(1)})
                ->SequenceLength(),
            0u);
}

// ---------------------------------------------------------------------
// dateTime family
// ---------------------------------------------------------------------

TEST(FunctionEvalTest, DateTimeFunctions) {
  Item dt = *Eval(Builtin::kDateTime, {Item::String("20131225T00:00")});
  ASSERT_TRUE(dt.is_datetime());
  EXPECT_EQ(*Eval(Builtin::kYearFromDateTime, {dt}), Item::Int64(2013));
  EXPECT_EQ(*Eval(Builtin::kMonthFromDateTime, {dt}), Item::Int64(12));
  EXPECT_EQ(*Eval(Builtin::kDayFromDateTime, {dt}), Item::Int64(25));
  EXPECT_FALSE(Eval(Builtin::kDateTime, {Item::String("garbage")}).ok());
  EXPECT_FALSE(Eval(Builtin::kYearFromDateTime, {Item::Int64(1)}).ok());
  // Empty input propagates.
  EXPECT_EQ(Eval(Builtin::kDateTime, {Item::EmptySequence()})
                ->SequenceLength(),
            0u);
}

// ---------------------------------------------------------------------
// Scalar aggregates (the pre-rewrite semantics)
// ---------------------------------------------------------------------

TEST(ScalarAggregateTest, CountSumAvgMinMax) {
  Item seq = Item::MakeSequence(
      {Item::Int64(4), Item::Int64(1), Item::Double(2.5)});
  EXPECT_EQ(*ScalarAggregate(Builtin::kCount, seq), Item::Int64(3));
  EXPECT_EQ(*ScalarAggregate(Builtin::kSum, seq), Item::Double(7.5));
  EXPECT_EQ(*ScalarAggregate(Builtin::kAvg, seq), Item::Double(2.5));
  EXPECT_EQ(*ScalarAggregate(Builtin::kMin, seq), Item::Int64(1));
  EXPECT_EQ(*ScalarAggregate(Builtin::kMax, seq), Item::Int64(4));
}

TEST(ScalarAggregateTest, SingletonAndEmpty) {
  EXPECT_EQ(*ScalarAggregate(Builtin::kCount, Item::Int64(9)),
            Item::Int64(1));
  EXPECT_EQ(*ScalarAggregate(Builtin::kCount, Item::EmptySequence()),
            Item::Int64(0));
  EXPECT_EQ(*ScalarAggregate(Builtin::kSum, Item::EmptySequence()),
            Item::Int64(0));
  EXPECT_EQ(ScalarAggregate(Builtin::kAvg, Item::EmptySequence())
                ->SequenceLength(),
            0u);
  EXPECT_EQ(ScalarAggregate(Builtin::kMin, Item::EmptySequence())
                ->SequenceLength(),
            0u);
}

TEST(ScalarAggregateTest, IntegerSumStaysIntegral) {
  Item seq = Item::MakeSequence({Item::Int64(1), Item::Int64(2)});
  Item sum = *ScalarAggregate(Builtin::kSum, seq);
  EXPECT_TRUE(sum.is_int64());
  EXPECT_EQ(sum, Item::Int64(3));
}

TEST(ScalarAggregateTest, NonNumericSumFails) {
  Item seq = Item::MakeSequence({Item::Int64(1), Item::String("x")});
  EXPECT_FALSE(ScalarAggregate(Builtin::kSum, seq).ok());
}

// ---------------------------------------------------------------------
// Constructors, data(), column refs, arity checking
// ---------------------------------------------------------------------

TEST(FunctionEvalTest, Constructors) {
  Item arr = *Eval(Builtin::kArrayConstructor,
                   {Item::Int64(1),
                    Item::MakeSequence({Item::Int64(2), Item::Int64(3)})});
  // Array constructors flatten sequence arguments (JSONiq).
  ASSERT_TRUE(arr.is_array());
  EXPECT_EQ(arr.array().size(), 3u);

  Item obj = *Eval(Builtin::kObjectConstructor,
                   {Item::String("k"), Item::Int64(1)});
  EXPECT_EQ(*obj.GetField("k"), Item::Int64(1));
  EXPECT_FALSE(
      Eval(Builtin::kObjectConstructor, {Item::Int64(1), Item::Int64(2)})
          .ok());
}

TEST(FunctionEvalTest, DataAtomizes) {
  EXPECT_EQ(*Eval(Builtin::kData, {Item::String("x")}), Item::String("x"));
  EXPECT_FALSE(Eval(Builtin::kData, {Item::MakeObject({})}).ok());
}

TEST(FunctionEvalTest, ColumnRefReadsTuple) {
  ScalarEvalPtr col = MakeColumnEval(1);
  Tuple tuple = {Item::Int64(10), Item::String("hello")};
  EvalContext ctx;
  EXPECT_EQ(*col->Eval(tuple, &ctx), Item::String("hello"));
  // Out-of-range column is an internal error, not UB.
  ScalarEvalPtr bad = MakeColumnEval(5);
  EXPECT_FALSE(bad->Eval(tuple, &ctx).ok());
}

TEST(FunctionEvalTest, ArityChecked) {
  EXPECT_FALSE(MakeFunctionEval(Builtin::kNot, {}).ok());
  EXPECT_FALSE(MakeFunctionEval(
                   Builtin::kEq, {MakeConstantEval(Item::Int64(1))})
                   .ok());
}

TEST(FunctionEvalTest, CollectionRequiresCatalog) {
  EvalContext ctx;  // no catalog
  EXPECT_FALSE(Eval(Builtin::kCollection, {Item::String("x")}, &ctx).ok());
}

TEST(FunctionEvalTest, ToStringIsReadable) {
  auto f = MakeFunctionEval(
      Builtin::kValue, {MakeColumnEval(0), MakeConstantEval(Item::String("k"))});
  ASSERT_TRUE(f.ok());
  EXPECT_EQ((*f)->ToString(), "value($col0, \"k\")");
}

}  // namespace
}  // namespace jpar
