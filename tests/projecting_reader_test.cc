#include "json/projecting_reader.h"

#include <gtest/gtest.h>

#include "json/parser.h"

namespace jpar {
namespace {

constexpr const char* kDoc = R"({
  "root": [
    {"metadata": {"count": 2},
     "results": [
       {"date": "20131225T00:00", "value": 1},
       {"date": "20140101T00:00", "value": 2}
     ]},
    {"metadata": {"count": 1},
     "results": [
       {"date": "20140202T00:00", "value": 3}
     ]}
  ],
  "ignored": {"huge": [1,2,3,4,5]}
})";

std::vector<Item> Project(std::string_view doc,
                          std::vector<PathStep> steps) {
  std::vector<Item> out;
  Status st = ProjectJson(doc, steps, [&](Item item) {
    out.push_back(std::move(item));
    return Status::OK();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
  return out;
}

TEST(ProjectingReaderTest, EmptyPathEmitsWholeDocument) {
  std::vector<Item> items = Project(kDoc, {});
  ASSERT_EQ(items.size(), 1u);
  EXPECT_TRUE(items[0].Equals(*ParseJson(kDoc)));
}

TEST(ProjectingReaderTest, KeyStep) {
  std::vector<Item> items = Project(kDoc, {PathStep::Key("root")});
  ASSERT_EQ(items.size(), 1u);
  EXPECT_TRUE(items[0].is_array());
  EXPECT_EQ(items[0].array().size(), 2u);
}

TEST(ProjectingReaderTest, MissingKeyEmitsNothing) {
  EXPECT_TRUE(Project(kDoc, {PathStep::Key("nope")}).empty());
  EXPECT_TRUE(
      Project(kDoc, {PathStep::Key("root"), PathStep::Key("x")}).empty());
}

TEST(ProjectingReaderTest, MembersOfArray) {
  std::vector<Item> items =
      Project(kDoc, {PathStep::Key("root"), PathStep::KeysOrMembers()});
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(*items[0].GetField("metadata")->GetField("count"),
            Item::Int64(2));
}

TEST(ProjectingReaderTest, DeepPathToDates) {
  std::vector<Item> items = Project(
      kDoc, {PathStep::Key("root"), PathStep::KeysOrMembers(),
             PathStep::Key("results"), PathStep::KeysOrMembers(),
             PathStep::Key("date")});
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], Item::String("20131225T00:00"));
  EXPECT_EQ(items[2], Item::String("20140202T00:00"));
}

TEST(ProjectingReaderTest, IndexStepIsOneBased) {
  std::vector<Item> items =
      Project(kDoc, {PathStep::Key("root"), PathStep::Index(2),
                     PathStep::Key("metadata"), PathStep::Key("count")});
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], Item::Int64(1));
  EXPECT_TRUE(Project(kDoc, {PathStep::Key("root"), PathStep::Index(0)})
                  .empty());
  EXPECT_TRUE(Project(kDoc, {PathStep::Key("root"), PathStep::Index(3)})
                  .empty());
}

TEST(ProjectingReaderTest, KeysOfObject) {
  std::vector<Item> items = Project(kDoc, {PathStep::KeysOrMembers()});
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0], Item::String("root"));
  EXPECT_EQ(items[1], Item::String("ignored"));
}

TEST(ProjectingReaderTest, KeysOrMembersOnAtomicSelectsNothing) {
  EXPECT_TRUE(Project(R"({"a": 5})",
                      {PathStep::Key("a"), PathStep::KeysOrMembers()})
                  .empty());
}

TEST(ProjectingReaderTest, StatsCountScannedAndMaterialized) {
  ProjectionStats stats;
  Status st = ProjectJson(
      kDoc,
      {PathStep::Key("root"), PathStep::KeysOrMembers(),
       PathStep::Key("results"), PathStep::KeysOrMembers(),
       PathStep::Key("date")},
      [](Item) { return Status::OK(); }, &stats);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(stats.items_emitted, 3u);
  EXPECT_EQ(stats.bytes_scanned, std::string_view(kDoc).size());
  // Projection materializes far less than the document.
  EXPECT_LT(stats.bytes_materialized, stats.bytes_scanned / 2);
}

TEST(ProjectingReaderTest, SinkErrorsPropagate) {
  Status st = ProjectJson(kDoc, {PathStep::KeysOrMembers()},
                          [](Item) { return Status::Internal("stop"); });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST(ProjectingReaderTest, MalformedDocumentsFail) {
  for (const char* bad : {"{", R"({"root": [)", R"({"root" [1]})"}) {
    Status st = ProjectJson(bad, {PathStep::Key("root")},
                            [](Item) { return Status::OK(); });
    EXPECT_FALSE(st.ok()) << bad;
  }
}

TEST(ProjectingReaderTest, AgreesWithDomNavigation) {
  // Property: for every path, streaming projection over the text equals
  // DOM navigation over the parsed item.
  std::vector<std::vector<PathStep>> paths = {
      {},
      {PathStep::Key("root")},
      {PathStep::Key("root"), PathStep::KeysOrMembers()},
      {PathStep::Key("root"), PathStep::KeysOrMembers(),
       PathStep::Key("metadata")},
      {PathStep::Key("root"), PathStep::KeysOrMembers(),
       PathStep::Key("results"), PathStep::KeysOrMembers()},
      {PathStep::Key("root"), PathStep::KeysOrMembers(),
       PathStep::Key("results"), PathStep::KeysOrMembers(),
       PathStep::Key("value")},
      {PathStep::Key("root"), PathStep::Index(1), PathStep::Key("results"),
       PathStep::Index(2), PathStep::Key("date")},
      {PathStep::KeysOrMembers()},
      {PathStep::Key("ignored"), PathStep::KeysOrMembers()},
  };
  Item doc = *ParseJson(kDoc);
  for (const auto& path : paths) {
    std::vector<Item> streamed = Project(kDoc, path);
    std::vector<Item> navigated;
    Status st = NavigateItemPath(doc, path, 0, [&](Item item) {
      navigated.push_back(std::move(item));
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(streamed.size(), navigated.size()) << PathToString(path);
    for (size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_TRUE(streamed[i].Equals(navigated[i])) << PathToString(path);
    }
  }
}

// ---------------------------------------------------------------------
// Degraded-scan mode: ProjectJsonStream with a skipped_records counter.
// ---------------------------------------------------------------------

struct LenientRun {
  Status status;
  std::vector<Item> items;
  uint64_t skipped = 0;
};

LenientRun StreamLenient(std::string_view text, std::vector<PathStep> steps) {
  LenientRun run;
  run.status = ProjectJsonStream(
      text, steps,
      [&](Item item) {
        run.items.push_back(std::move(item));
        return Status::OK();
      },
      /*stats=*/nullptr, &run.skipped);
  return run;
}

TEST(DegradedScanTest, StrictModeFailsOnMalformedRecord) {
  const char* ndjson = "{\"v\": 1}\nnot json at all\n{\"v\": 3}\n";
  Status st = ProjectJsonStream(ndjson, {PathStep::Key("v")},
                                [](Item) { return Status::OK(); });
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(DegradedScanTest, LenientModeSkipsAndCounts) {
  const char* ndjson = "{\"v\": 1}\nnot json at all\n{\"v\": 3}\n";
  LenientRun run = StreamLenient(ndjson, {PathStep::Key("v")});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  ASSERT_EQ(run.items.size(), 2u);
  EXPECT_EQ(run.items[0], Item::Int64(1));
  EXPECT_EQ(run.items[1], Item::Int64(3));
  EXPECT_EQ(run.skipped, 1u);
}

TEST(DegradedScanTest, MultipleBadLinesEachCountOnce) {
  const char* ndjson =
      "{\"v\": 1}\n{broken\n{\"v\": 2}\n}also broken{\n{\"v\": 3}\n";
  LenientRun run = StreamLenient(ndjson, {PathStep::Key("v")});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.items.size(), 3u);
  EXPECT_EQ(run.skipped, 2u);
}

TEST(DegradedScanTest, BadFinalLineWithoutNewlineStopsCleanly) {
  // No newline to resynchronize at: the stream ends after counting the
  // bad record instead of spinning.
  const char* ndjson = "{\"v\": 1}\n{truncated";
  LenientRun run = StreamLenient(ndjson, {PathStep::Key("v")});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.items.size(), 1u);
  EXPECT_EQ(run.skipped, 1u);
}

TEST(DegradedScanTest, AllRecordsBadYieldsEmptyStream) {
  LenientRun run = StreamLenient("nope\nstill nope\n", {PathStep::Key("v")});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_TRUE(run.items.empty());
  EXPECT_EQ(run.skipped, 2u);
}

TEST(DegradedScanTest, CleanStreamSkipsNothing) {
  LenientRun run =
      StreamLenient("{\"v\": 1}\n{\"v\": 2}\n", {PathStep::Key("v")});
  ASSERT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.items.size(), 2u);
  EXPECT_EQ(run.skipped, 0u);
}

TEST(DegradedScanTest, NonParseSinkErrorsStillAbort) {
  // Lenient mode only forgives kParseError; a failing sink (e.g. a
  // cancelled or out-of-memory downstream) aborts the stream.
  uint64_t skipped = 0;
  int calls = 0;
  Status st = ProjectJsonStream(
      "{\"v\": 1}\n{\"v\": 2}\n", {PathStep::Key("v")},
      [&](Item) {
        ++calls;
        return Status::ResourceExhausted("sink full");
      },
      nullptr, &skipped);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(skipped, 0u);
}

TEST(PathStepTest, ToStringForms) {
  EXPECT_EQ(PathStep::Key("a").ToString(), "(\"a\")");
  EXPECT_EQ(PathStep::Index(3).ToString(), "(3)");
  EXPECT_EQ(PathStep::KeysOrMembers().ToString(), "()");
  EXPECT_EQ(PathToString({PathStep::Key("a"), PathStep::KeysOrMembers()}),
            "(\"a\")()");
}

}  // namespace
}  // namespace jpar
