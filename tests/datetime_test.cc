#include "json/datetime.h"

#include <gtest/gtest.h>

namespace jpar {
namespace {

TEST(DateTimeTest, ParsesCompactDate) {
  auto dt = ParseDateTime("20031225");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->year, 2003);
  EXPECT_EQ(dt->month, 12);
  EXPECT_EQ(dt->day, 25);
  EXPECT_EQ(dt->hour, 0);
}

TEST(DateTimeTest, ParsesPaperSensorFormat) {
  // The NOAA sensor "date" fields look like "20131225T00:00".
  auto dt = ParseDateTime("20131225T00:00");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->year, 2013);
  EXPECT_EQ(dt->month, 12);
  EXPECT_EQ(dt->day, 25);
}

TEST(DateTimeTest, ParsesIsoWithSeconds) {
  auto dt = ParseDateTime("2014-01-02T03:04:05");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->year, 2014);
  EXPECT_EQ(dt->month, 1);
  EXPECT_EQ(dt->day, 2);
  EXPECT_EQ(dt->hour, 3);
  EXPECT_EQ(dt->minute, 4);
  EXPECT_EQ(dt->second, 5);
}

TEST(DateTimeTest, ParsesIsoDateOnly) {
  auto dt = ParseDateTime("2014-06-30");
  ASSERT_TRUE(dt.ok());
  EXPECT_EQ(dt->month, 6);
  EXPECT_EQ(dt->day, 30);
}

TEST(DateTimeTest, RejectsMalformedInputs) {
  for (const char* bad :
       {"", "2014", "20141", "2014-13-01", "20140132", "20140101T25:00",
        "20140101T10:61", "20140101T10:00:61", "20140101X10:00",
        "2014-01:02", "20140101T10:00garbage", "abcd0101"}) {
    EXPECT_FALSE(ParseDateTime(bad).ok()) << bad;
  }
}

TEST(DateTimeTest, FormatRoundTrip) {
  DateTimeValue dt{2005, 7, 9, 12, 30, 45};
  std::string text = FormatDateTime(dt);
  EXPECT_EQ(text, "2005-07-09T12:30:45");
  auto back = ParseDateTime(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, dt);
}

TEST(DateTimeTest, ChronologicalCompare) {
  DateTimeValue a{2003, 12, 25, 0, 0, 0};
  DateTimeValue b{2003, 12, 25, 0, 0, 1};
  DateTimeValue c{2004, 1, 1, 0, 0, 0};
  EXPECT_EQ(a.Compare(a), 0);
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_GT(c.Compare(b), 0);
  // Each field participates.
  DateTimeValue d{2003, 11, 30, 23, 59, 59};
  EXPECT_GT(a.Compare(d), 0);
}

}  // namespace
}  // namespace jpar
