// Stats differential suite (DESIGN.md §15): plans costed from sampled
// statistics must return byte-identical rows — and identical
// degraded-scan skip counts and error codes — to stats-off plans,
// across every paper query, a randomized selectivity/skew/cardinality
// grid, and {sequential, threaded-morsel, tiny-budget-spill,
// dirty-NDJSON} configurations. Adversarial cases feed the planner
// stale, corrupted, truncated, and foreign .jstats sidecars: wrong
// stats may change performance, never answers. Non-vacuousness
// assertions (stats actually built/consumed) are gated on
// JPAR_DISABLE_STATS so the CI kill-switch job still passes.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <utime.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include "bench/queries.h"
#include "core/engine.h"
#include "data/sensor_generator.h"
#include "stats/collection_stats.h"
#include "storage/storage_tier.h"

namespace jpar {
namespace {

// ---------------------------------------------------------------------
// Disk fixtures (mirrors the storage differential suite)

class TempCollectionDir {
 public:
  TempCollectionDir() {
    std::string tmpl = ::testing::TempDir() + "/jpar_jstats_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    dir_ = made != nullptr ? made : tmpl;
  }

  ~TempCollectionDir() {
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((dir_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(dir_.c_str());
  }

  std::string Write(const std::string& name, const std::string& text) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    return path;
  }

  static void BumpMtime(const std::string& path, int seconds_ahead) {
    struct utimbuf times;
    times.actime = ::time(nullptr) + seconds_ahead;
    times.modtime = times.actime;
    ASSERT_EQ(::utime(path.c_str(), &times), 0) << path;
  }

  /// Every .jstats sidecar currently in the directory. The sidecar
  /// name embeds a hash of the projected path, so tests discover
  /// sidecars by listing rather than predicting names.
  std::vector<std::string> Sidecars() const {
    std::vector<std::string> found;
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name.size() > 7 &&
            name.compare(name.size() - 7, 7, ".jstats") == 0) {
          found.push_back(dir_ + "/" + name);
        }
      }
      ::closedir(d);
    }
    std::sort(found.begin(), found.end());
    return found;
  }

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

void RegisterSensorsOnDisk(Engine* engine, TempCollectionDir* dir,
                           const SensorDataSpec& spec) {
  Collection c;
  for (int f = 0; f < spec.num_files; ++f) {
    std::string path = dir->Write("sensors_" + std::to_string(f) + ".json",
                                  GenerateSensorFile(spec, f));
    c.files.push_back(JsonFile::FromPath(path));
  }
  engine->catalog()->RegisterCollection("/sensors", std::move(c));
}

// ---------------------------------------------------------------------
// Run harness: compile AND execute under one stats mode, since stats
// influence compilation (plan annotations) and execution (sampling).

struct RunResult {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<std::string> rows;
  uint64_t skipped = 0;
  uint64_t stats_paths_built = 0;
};

RunResult RunWith(const Engine& engine, const std::string& query,
                  ExecOptions exec, StatsMode mode) {
  exec.stats_mode = mode;
  RunResult r;
  auto compiled = engine.Compile(query, RuleOptions::All(), exec);
  if (!compiled.ok()) {
    r.code = compiled.status().code();
    r.message = compiled.status().message();
    return r;
  }
  auto out = engine.Execute(*compiled, exec);
  r.ok = out.ok();
  r.code = out.status().code();
  r.message = out.status().message();
  if (out.ok()) {
    for (const Item& item : out->items) r.rows.push_back(item.ToJsonString());
    r.skipped = out->stats.skipped_records;
    r.stats_paths_built = out->stats.stats_paths_built;
  }
  return r;
}

void ExpectSameAnswer(const RunResult& off, const RunResult& on,
                      const std::string& what) {
  ASSERT_EQ(off.ok, on.ok) << what << ": " << on.message;
  ASSERT_EQ(static_cast<int>(off.code), static_cast<int>(on.code)) << what;
  ASSERT_EQ(off.skipped, on.skipped) << what;
  ASSERT_EQ(off.rows, on.rows) << what;
}

struct ConfigCase {
  const char* name;
  ExecOptions exec;
};

std::vector<ConfigCase> Configs() {
  std::vector<ConfigCase> configs;
  ExecOptions seq;
  seq.partitions = 2;
  configs.push_back({"sequential", seq});
  ExecOptions threaded;
  threaded.partitions = 4;
  threaded.use_threads = true;
  configs.push_back({"threads", threaded});
  ExecOptions spill;
  spill.partitions = 2;
  spill.memory_limit_bytes = 4096;
  spill.spill = SpillMode::kEnabled;
  configs.push_back({"spill-tiny", spill});
  return configs;
}

// ---------------------------------------------------------------------
// Paper queries: stats-off vs building vs warm vs forced

TEST(StatsDifferentialTest, PaperQueriesMatchStatsOff) {
  SensorDataSpec spec;
  spec.num_files = 4;
  spec.records_per_file = 5;
  spec.measurements_per_array = 6;
  spec.seed = 101;

  for (const ConfigCase& config : Configs()) {
    StatsStore::Instance().Clear();
    TempCollectionDir dir;
    Engine engine;
    RegisterSensorsOnDisk(&engine, &dir, spec);
    uint64_t total_built = 0;

    for (const jparbench::NamedQuery& q : jparbench::kAllQueries) {
      std::string what = std::string(q.name) + " / " + config.name;
      RunResult off = RunWith(engine, q.text, config.exec, StatsMode::kOff);
      ASSERT_TRUE(off.ok) << what << ": " << off.message;
      EXPECT_EQ(off.stats_paths_built, 0u)
          << what << ": kOff must not build stats";

      // First auto run samples while scanning; the second compiles
      // against the learned stats; forced trusts them unconditionally.
      RunResult build = RunWith(engine, q.text, config.exec, StatsMode::kAuto);
      ExpectSameAnswer(off, build, what + " (stats-building run)");
      RunResult warm = RunWith(engine, q.text, config.exec, StatsMode::kAuto);
      ExpectSameAnswer(off, warm, what + " (stats-warm run)");
      RunResult forced =
          RunWith(engine, q.text, config.exec, StatsMode::kForced);
      ExpectSameAnswer(off, forced, what + " (stats-forced run)");
      total_built += build.stats_paths_built + warm.stats_paths_built;
    }

    // Non-vacuousness: across the whole query set the auto runs must
    // have sampled something. (Per-query can legitimately be zero — a
    // zone-pruned columnar read skips the tee to keep samples
    // unbiased.)
    if (!StatsDisabledByEnv()) {
      EXPECT_GT(total_built, 0u)
          << config.name << ": no stats were built by any auto run";
    }
  }
}

// ---------------------------------------------------------------------
// Randomized selectivity / skew / cardinality grid

std::string GridNdjson(std::mt19937* rng, int records, int key_space,
                       double skew_to_first, int value_range) {
  std::uniform_real_distribution<double> coin(0, 1);
  std::uniform_int_distribution<int> key(0, key_space - 1);
  std::uniform_int_distribution<int> value(0, value_range - 1);
  std::string text;
  for (int i = 0; i < records; ++i) {
    int k = coin(*rng) < skew_to_first ? 0 : key(*rng);
    text += "{\"k\": " + std::to_string(k) +
            ", \"v\": " + std::to_string(value(*rng)) + "}\n";
  }
  return text;
}

TEST(StatsDifferentialTest, RandomizedGridMatchesStatsOff) {
  std::mt19937 rng(20260807);
  struct GridCase {
    int records;
    int key_space;
    double skew;
    int value_range;
    int threshold;  // for the range predicate
  };
  const GridCase grid[] = {
      {200, 4, 0.0, 100, 10},     // tiny, selective
      {2000, 64, 0.0, 1000, 900}, // uniform keys, selective high range
      {2000, 8, 0.9, 1000, 500},  // heavy skew to one key
      {5000, 512, 0.3, 50, 25},   // many keys, narrow values
  };
  const char* queries[] = {
      // range select
      R"(for $r in collection("/grid")
         where $r("v") gt %THRESH%
         return $r("v"))",
      // group-by over the skewed key
      R"(for $r in collection("/grid")
         group by $k := $r("k")
         return count($r))",
      // equality select
      R"(for $r in collection("/grid")
         where $r("k") eq 0
         return $r("v"))",
  };

  for (const GridCase& g : grid) {
    StatsStore::Instance().Clear();
    TempCollectionDir dir;
    Engine engine;
    Collection c;
    for (int f = 0; f < 2; ++f) {
      c.files.push_back(JsonFile::FromPath(dir.Write(
          "grid_" + std::to_string(f) + ".ndjson",
          GridNdjson(&rng, g.records / 2, g.key_space, g.skew,
                     g.value_range))));
    }
    engine.catalog()->RegisterCollection("/grid", std::move(c));

    for (const char* tmpl : queries) {
      std::string query = tmpl;
      size_t at = query.find("%THRESH%");
      if (at != std::string::npos) {
        query.replace(at, 8, std::to_string(g.threshold));
      }
      for (const ConfigCase& config : Configs()) {
        std::string what = "grid(records=" + std::to_string(g.records) +
                           ",skew=" + std::to_string(g.skew) + ") / " +
                           config.name;
        RunResult off = RunWith(engine, query, config.exec, StatsMode::kOff);
        ASSERT_TRUE(off.ok) << what << ": " << off.message;
        RunResult build =
            RunWith(engine, query, config.exec, StatsMode::kAuto);
        ExpectSameAnswer(off, build, what + " (build)");
        RunResult forced =
            RunWith(engine, query, config.exec, StatsMode::kForced);
        ExpectSameAnswer(off, forced, what + " (forced)");
      }
    }
  }
}

// ---------------------------------------------------------------------
// Dirty NDJSON: skip counts must agree under costed plans

constexpr const char* kDirtyQuery = R"(
  for $d in collection("/dirty")
  where $d("g") eq "a"
  return $d("v"))";

std::string DirtyNdjson(int base) {
  std::string text;
  for (int i = 0; i < 40; ++i) {
    if (i % 7 == 3) {
      text += "{\"v\": " + std::to_string(base + i) + ", \"g\": \"a\"";
      text += "\n";  // truncated record — parse error, skipped
    } else {
      text += "{\"v\": " + std::to_string(base + i) + ", \"g\": \"" +
              (i % 2 == 0 ? "a" : "b") + "\"}\n";
    }
  }
  return text;
}

TEST(StatsDifferentialTest, DirtyNdjsonSkipCountsAgree) {
  for (const ConfigCase& config : Configs()) {
    StatsStore::Instance().Clear();
    TempCollectionDir dir;
    Engine engine;
    Collection c;
    for (int f = 0; f < 3; ++f) {
      c.files.push_back(JsonFile::FromPath(
          dir.Write("dirty_" + std::to_string(f) + ".ndjson",
                    DirtyNdjson(f * 100))));
    }
    engine.catalog()->RegisterCollection("/dirty", std::move(c));

    ExecOptions lenient = config.exec;
    lenient.on_parse_error = ParseErrorPolicy::kSkipAndCount;

    std::string what = std::string("dirty / ") + config.name;
    RunResult off = RunWith(engine, kDirtyQuery, lenient, StatsMode::kOff);
    ASSERT_TRUE(off.ok) << what << ": " << off.message;
    ASSERT_GT(off.skipped, 0u) << what;
    RunResult build = RunWith(engine, kDirtyQuery, lenient, StatsMode::kAuto);
    ExpectSameAnswer(off, build, what + " (build)");
    RunResult warm = RunWith(engine, kDirtyQuery, lenient, StatsMode::kAuto);
    ExpectSameAnswer(off, warm, what + " (warm)");

    // Strict mode must fail identically with and without stats.
    RunResult off_strict =
        RunWith(engine, kDirtyQuery, config.exec, StatsMode::kOff);
    RunResult on_strict =
        RunWith(engine, kDirtyQuery, config.exec, StatsMode::kForced);
    ASSERT_FALSE(off_strict.ok) << what;
    ASSERT_FALSE(on_strict.ok) << what;
    EXPECT_EQ(static_cast<int>(off_strict.code),
              static_cast<int>(on_strict.code))
        << what;
  }
}

// ---------------------------------------------------------------------
// Adversarial sidecars: wrong stats can cost speed, never answers

constexpr const char* kGridQuery = R"(
  for $r in collection("/grid")
  where $r("v") gt 800
  return $r("v"))";

std::string CleanNdjson(int records, int base) {
  std::string text;
  for (int i = 0; i < records; ++i) {
    text += "{\"k\": " + std::to_string((base + i) % 16) +
            ", \"v\": " + std::to_string((base + i) % 1000) + "}\n";
  }
  return text;
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void OverwriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

class AdversarialSidecarTest : public ::testing::Test {
 protected:
  /// Warms real stats over the collection, lets `sabotage` tamper with
  /// the data file and/or the .jstats sidecars it produced, clears the
  /// in-memory store (so the next run must consult the tampered disk
  /// state), and requires every stats mode to still match the
  /// stats-off answer. Under JPAR_DISABLE_STATS no sidecars exist and
  /// the sabotage list is empty — the differential claim holds
  /// trivially, which is exactly what the kill-switch promises.
  void Check(
      const std::function<void(TempCollectionDir* dir,
                               const std::string& data_path,
                               const std::vector<std::string>& sidecars)>&
          sabotage,
      const char* what) {
    StatsStore::Instance().Clear();
    TempCollectionDir dir;
    std::string path = dir.Write("grid_0.ndjson", CleanNdjson(400, 0));
    Engine engine;
    Collection c;
    c.files.push_back(JsonFile::FromPath(path));
    engine.catalog()->RegisterCollection("/grid", std::move(c));

    ExecOptions exec;
    exec.partitions = 2;

    // Learn genuine stats (and their sidecars).
    RunResult warm = RunWith(engine, kGridQuery, exec, StatsMode::kAuto);
    ASSERT_TRUE(warm.ok) << what << ": " << warm.message;
    if (!StatsDisabledByEnv()) {
      ASSERT_FALSE(dir.Sidecars().empty())
          << what << ": the warm run should have written sidecars";
    }

    sabotage(&dir, path, dir.Sidecars());
    StatsStore::Instance().Clear();

    RunResult off = RunWith(engine, kGridQuery, exec, StatsMode::kOff);
    ASSERT_TRUE(off.ok) << what << ": " << off.message;
    for (StatsMode mode : {StatsMode::kAuto, StatsMode::kForced}) {
      RunResult on = RunWith(engine, kGridQuery, exec, mode);
      ExpectSameAnswer(off, on,
                       std::string(what) + " (mode " +
                           std::to_string(static_cast<int>(mode)) + ")");
    }
  }
};

TEST_F(AdversarialSidecarTest, StaleSidecarAfterFileMutation) {
  Check(
      [](TempCollectionDir* dir, const std::string& path,
         const std::vector<std::string>&) {
        dir->Write("grid_0.ndjson", CleanNdjson(300, 17));
        TempCollectionDir::BumpMtime(path, 3);
      },
      "stale");
}

TEST_F(AdversarialSidecarTest, CorruptedSidecarBytes) {
  Check(
      [](TempCollectionDir*, const std::string&,
         const std::vector<std::string>& sidecars) {
        for (const std::string& sidecar : sidecars) {
          OverwriteFile(sidecar,
                        "JPSTAT1\n\xff\xff garbage, not a payload");
        }
      },
      "corrupted");
}

TEST_F(AdversarialSidecarTest, TruncatedSidecar) {
  Check(
      [](TempCollectionDir*, const std::string&,
         const std::vector<std::string>& sidecars) {
        for (const std::string& sidecar : sidecars) {
          std::string bytes = SlurpFile(sidecar);
          OverwriteFile(sidecar, bytes.substr(0, bytes.size() / 2));
        }
      },
      "truncated");
}

TEST_F(AdversarialSidecarTest, ForeignSidecarFromAnotherFile) {
  Check(
      [](TempCollectionDir* dir, const std::string&,
         const std::vector<std::string>& sidecars) {
        // Valid sidecars... for a different file: warm stats over
        // other.ndjson, then copy its (signature-stamped) sidecar
        // bytes over each of the original file's sidecar names.
        std::string other =
            dir->Write("other.ndjson", CleanNdjson(50, 999));
        Engine other_engine;
        Collection c;
        c.files.push_back(JsonFile::FromPath(other));
        other_engine.catalog()->RegisterCollection("/grid", std::move(c));
        ExecOptions exec;
        exec.partitions = 1;
        (void)RunWith(other_engine, kGridQuery, exec, StatsMode::kAuto);
        std::vector<std::string> all = dir->Sidecars();
        std::string donor;
        for (const std::string& candidate : all) {
          bool original =
              std::find(sidecars.begin(), sidecars.end(), candidate) !=
              sidecars.end();
          if (!original) donor = candidate;
        }
        if (donor.empty()) return;  // stats disabled; nothing to forge
        std::string bytes = SlurpFile(donor);
        for (const std::string& sidecar : sidecars) {
          OverwriteFile(sidecar, bytes);
        }
      },
      "foreign");
}

// The tampered store must report a clean miss, not a poisoned hit.
TEST(StatsStoreSidecarTest, CorruptAndForeignSidecarsAreCleanMisses) {
  if (StatsDisabledByEnv()) GTEST_SKIP() << "JPAR_DISABLE_STATS set";
  StatsStore& store = StatsStore::Instance();
  store.Clear();
  StatsConfig cfg;
  TempCollectionDir dir;
  std::string path = dir.Write("x.ndjson", CleanNdjson(40, 0));
  auto sig = StatFileSignature(path);
  ASSERT_TRUE(sig.ok());

  PathStats s;
  for (int i = 0; i < 40; ++i) s.Observe(Item::Int64(i));
  store.Put(path, "$", s, *sig, cfg);
  std::string sidecar = store.SidecarPathFor(path, "$", cfg);

  // Corrupt: flip payload bytes.
  {
    std::ifstream in(sidecar, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 30u);
    for (size_t i = bytes.size() - 8; i < bytes.size(); ++i) {
      bytes[i] = static_cast<char>(~bytes[i]);
    }
    std::ofstream out(sidecar, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  store.Clear();
  EXPECT_EQ(store.Get(path, "$", cfg), nullptr)
      << "corrupted payload must miss cleanly";

  // Truncated header.
  {
    std::ofstream out(sidecar, std::ios::binary | std::ios::trunc);
    out << "JPSTAT1\n";
  }
  store.Clear();
  EXPECT_EQ(store.Get(path, "$", cfg), nullptr)
      << "truncated sidecar must miss cleanly";

  // Foreign signature: a sidecar stamped for another file's bytes.
  std::string other = dir.Write("y.ndjson", CleanNdjson(90, 5));
  auto other_sig = StatFileSignature(other);
  ASSERT_TRUE(other_sig.ok());
  store.Put(other, "$", s, *other_sig, cfg);
  {
    std::ifstream in(store.SidecarPathFor(other, "$", cfg),
                     std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(sidecar, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  store.Clear();
  EXPECT_EQ(store.Get(path, "$", cfg), nullptr)
      << "foreign-signature sidecar must miss cleanly";

  // And after all that abuse, honest stats still install and serve.
  store.Put(path, "$", s, *sig, cfg);
  EXPECT_NE(store.Get(path, "$", cfg), nullptr);
  store.Clear();
}

}  // namespace
}  // namespace jpar
