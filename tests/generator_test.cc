#include "data/sensor_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "json/parser.h"

namespace jpar {
namespace {

TEST(SensorGeneratorTest, ProducesValidStructuredJson) {
  SensorDataSpec spec;
  spec.records_per_file = 5;
  spec.measurements_per_array = 7;
  std::string text = GenerateSensorFile(spec, 0);
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  // GetField returns optional<Item> by value; copy fields out rather
  // than binding references into expiring temporaries.
  const Item root = *doc->GetField("root");
  ASSERT_TRUE(root.is_array());
  ASSERT_EQ(root.array().size(), 5u);
  for (const Item& record : root.array()) {
    // Listing 6's structure: metadata{count} + results[...].
    const Item metadata = *record.GetField("metadata");
    EXPECT_EQ(*metadata.GetField("count"), Item::Int64(7));
    const Item results = *record.GetField("results");
    ASSERT_TRUE(results.is_array());
    ASSERT_EQ(results.array().size(), 7u);
    for (const Item& m : results.array()) {
      EXPECT_TRUE(m.GetField("date")->is_string());
      EXPECT_TRUE(m.GetField("dataType")->is_string());
      EXPECT_TRUE(m.GetField("station")->is_string());
      EXPECT_TRUE(m.GetField("value")->is_int64());
      EXPECT_EQ(m.GetField("station")->string_value().substr(0, 3), "GSW");
    }
  }
}

TEST(SensorGeneratorTest, DeterministicForSameSeed) {
  SensorDataSpec spec;
  spec.seed = 99;
  EXPECT_EQ(GenerateSensorFile(spec, 3), GenerateSensorFile(spec, 3));
  SensorDataSpec other = spec;
  other.seed = 100;
  EXPECT_NE(GenerateSensorFile(spec, 3), GenerateSensorFile(other, 3));
  EXPECT_NE(GenerateSensorFile(spec, 0), GenerateSensorFile(spec, 1));
}

TEST(SensorGeneratorTest, DatesWithinConfiguredRange) {
  SensorDataSpec spec;
  spec.start_year = 2010;
  spec.end_year = 2012;
  spec.records_per_file = 4;
  std::string text = GenerateSensorFile(spec, 0);
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  for (const Item& record : doc->GetField("root")->array()) {
    for (const Item& m : record.GetField("results")->array()) {
      std::string year = m.GetField("date")->string_value().substr(0, 4);
      EXPECT_GE(year, "2010");
      EXPECT_LE(year, "2012");
      // Dates parse with the engine's dateTime().
      EXPECT_TRUE(
          ParseDateTime(m.GetField("date")->string_value()).ok());
    }
  }
}

TEST(SensorGeneratorTest, StationsBounded) {
  SensorDataSpec spec;
  spec.num_stations = 3;
  spec.records_per_file = 20;
  std::string text = GenerateSensorFile(spec, 0);
  auto doc = ParseJson(text);
  ASSERT_TRUE(doc.ok());
  std::set<std::string> stations;
  for (const Item& record : doc->GetField("root")->array()) {
    for (const Item& m : record.GetField("results")->array()) {
      stations.insert(m.GetField("station")->string_value());
    }
  }
  EXPECT_LE(stations.size(), 3u);
}

TEST(SensorGeneratorTest, SpecForBytesHitsTarget) {
  SensorDataSpec spec;
  spec = SpecForBytes(spec, 2 * 1024 * 1024);
  auto coll = GenerateSensorCollection(spec);
  uint64_t total = *coll.TotalBytes();
  EXPECT_GT(total, 1 * 1024 * 1024u);
  EXPECT_LT(total, 4 * 1024 * 1024u);
  EXPECT_EQ(coll.files.size(), static_cast<size_t>(spec.num_files));
}

TEST(SensorGeneratorTest, ApproxBytesCloseToActual) {
  SensorDataSpec spec;
  spec.num_files = 2;
  spec.records_per_file = 10;
  auto coll = GenerateSensorCollection(spec);
  double actual = static_cast<double>(*coll.TotalBytes());
  double approx = static_cast<double>(spec.ApproxBytes());
  EXPECT_GT(approx / actual, 0.7);
  EXPECT_LT(approx / actual, 1.4);
}

TEST(SensorGeneratorTest, UnwrappedDocumentsMatchWrappedContent) {
  // Fig. 18 depends on both layouts containing the same measurements.
  SensorDataSpec spec;
  spec.records_per_file = 6;
  std::string wrapped = GenerateSensorFile(spec, 2);
  std::vector<std::string> docs = GenerateUnwrappedDocuments(spec, 2);
  ASSERT_EQ(docs.size(), 6u);
  auto wrapped_doc = ParseJson(wrapped);
  ASSERT_TRUE(wrapped_doc.ok());
  const Item::ItemVector& records = wrapped_doc->GetField("root")->array();
  for (size_t i = 0; i < docs.size(); ++i) {
    auto unwrapped = ParseJson(docs[i]);
    ASSERT_TRUE(unwrapped.ok());
    EXPECT_TRUE(unwrapped->Equals(records[i])) << i;
  }
}

TEST(SensorGeneratorTest, TypeMixContainsTminAndTmax) {
  // Q1/Q2 need both TMIN and TMAX to be present.
  SensorDataSpec spec;
  spec.records_per_file = 10;
  auto doc = ParseJson(GenerateSensorFile(spec, 0));
  ASSERT_TRUE(doc.ok());
  std::set<std::string> types;
  for (const Item& record : doc->GetField("root")->array()) {
    for (const Item& m : record.GetField("results")->array()) {
      types.insert(m.GetField("dataType")->string_value());
    }
  }
  EXPECT_TRUE(types.count("TMIN"));
  EXPECT_TRUE(types.count("TMAX"));
}

}  // namespace
}  // namespace jpar
