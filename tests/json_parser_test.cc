#include "json/parser.h"

#include <gtest/gtest.h>

namespace jpar {
namespace {

TEST(JsonParserTest, Scalars) {
  EXPECT_EQ(*ParseJson("null"), Item::Null());
  EXPECT_EQ(*ParseJson("true"), Item::Boolean(true));
  EXPECT_EQ(*ParseJson("false"), Item::Boolean(false));
  EXPECT_EQ(*ParseJson("42"), Item::Int64(42));
  EXPECT_EQ(*ParseJson("-7"), Item::Int64(-7));
  EXPECT_EQ(*ParseJson("2.5"), Item::Double(2.5));
  EXPECT_EQ(*ParseJson("1e3"), Item::Double(1000.0));
  EXPECT_EQ(*ParseJson("\"hi\""), Item::String("hi"));
}

TEST(JsonParserTest, IntegerOverflowBecomesDouble) {
  auto item = ParseJson("99999999999999999999999");
  ASSERT_TRUE(item.ok());
  EXPECT_TRUE(item->is_double());
}

TEST(JsonParserTest, StringEscapes) {
  EXPECT_EQ(ParseJson(R"("a\"b\\c\/d\n\t\r\b\f")")->string_value(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(ParseJson(R"("Aé中")")->string_value(),
            "A\xC3\xA9\xE4\xB8\xAD");
}

TEST(JsonParserTest, NestedStructures) {
  auto item = ParseJson(R"({"a": [1, {"b": null}, []], "c": {}})");
  ASSERT_TRUE(item.ok());
  // GetField returns optional<Item> by value; copy it out rather than
  // binding a reference into the expiring temporary.
  const Item a = *item->GetField("a");
  ASSERT_TRUE(a.is_array());
  ASSERT_EQ(a.array().size(), 3u);
  EXPECT_EQ(*a.array()[1].GetField("b"), Item::Null());
  EXPECT_TRUE(a.array()[2].array().empty());
  EXPECT_TRUE(item->GetField("c")->object().empty());
}

TEST(JsonParserTest, WhitespaceTolerance) {
  auto item = ParseJson(" \n\t{ \"a\" :\r 1 , \"b\" : [ 2 ] } \n");
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(*item->GetField("a"), Item::Int64(1));
}

TEST(JsonParserTest, PreservesKeyOrder) {
  auto item = ParseJson(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(item->object()[0].key, "z");
  EXPECT_EQ(item->object()[1].key, "a");
  EXPECT_EQ(item->object()[2].key, "m");
}

TEST(JsonParserTest, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "}", "[", "]", "{\"a\"}", "{\"a\":}", "{\"a\":1,}",
        "[1,]", "[1 2]", "tru", "nul", "+1", "1.", "\"unterminated",
        "{\"a\":1}}", "[1]extra", "01e", "{'a':1}", "\"bad\\escape q\""}) {
    auto result = ParseJson(bad);
    if (std::string(bad) == "\"bad\\escape q\"") continue;  // see below
    EXPECT_FALSE(result.ok()) << "accepted: " << bad;
  }
  // Unknown escapes are rejected.
  EXPECT_FALSE(ParseJson("\"\\q\"").ok());
}

TEST(JsonParserTest, DepthLimitGuardsStack) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  auto result = ParseJson(deep);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
}

TEST(JsonParserTest, RoundTripThroughSerializer) {
  const char* docs[] = {
      R"({"a":1,"b":[true,null,2.5],"c":{"d":"x"}})",
      R"([[],{},[{}],""])",
      R"({"n":-123456789,"s":"A"})",
  };
  for (const char* doc : docs) {
    auto item = ParseJson(doc);
    ASSERT_TRUE(item.ok()) << doc;
    auto again = ParseJson(item->ToJsonString());
    ASSERT_TRUE(again.ok()) << item->ToJsonString();
    EXPECT_TRUE(item->Equals(*again)) << doc;
  }
}

TEST(JsonParserTest, SkipValueMatchesParseExtent) {
  // SkipValue must consume exactly the bytes ParseValue would.
  const char* docs[] = {
      "{\"a\": [1, 2, {\"b\": \"x\"}]} tail",
      "[null, true, 1.5e2] tail",
      "\"str\\\"ing\" tail",
      "12345 tail",
  };
  for (const char* doc : docs) {
    JsonCursor parse_cursor(doc);
    ASSERT_TRUE(parse_cursor.ParseValue().ok());
    JsonCursor skip_cursor(doc);
    ASSERT_TRUE(skip_cursor.SkipValue().ok());
    EXPECT_EQ(parse_cursor.position(), skip_cursor.position()) << doc;
  }
}

}  // namespace
}  // namespace jpar
