// Tests of the comparator models: the LZ codec, the MongoDB-model
// DocStore (compression, 16 MB limit, unwind+project), the Spark-model
// MemTable (load phase, OOM cliff), and the AsterixDB model (query
// equivalence with the engine, external vs loaded).

#include <gtest/gtest.h>

#include "baselines/asterix_like.h"
#include "baselines/compression.h"
#include "baselines/docstore.h"
#include "baselines/memtable.h"
#include "data/sensor_generator.h"
#include "json/parser.h"

namespace jpar {
namespace {

// ---------------------------------------------------------------------
// Compression
// ---------------------------------------------------------------------

TEST(CompressionTest, RoundTripsAssortedInputs) {
  std::vector<std::string> inputs = {
      "",
      "a",
      "abcabcabcabcabcabc",
      std::string(10000, 'z'),
      R"({"key": "value", "key": "value", "key": "value"})",
  };
  // A pseudo-random blob (incompressible).
  std::string blob;
  uint64_t x = 12345;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    blob.push_back(static_cast<char>(x >> 33));
  }
  inputs.push_back(blob);
  for (const std::string& in : inputs) {
    std::string compressed = LzCompress(in);
    auto back = LzDecompress(compressed);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(*back, in);
  }
}

TEST(CompressionTest, CompressesRepetitiveJson) {
  SensorDataSpec spec;
  spec.records_per_file = 32;
  std::string json = GenerateSensorFile(spec, 0);
  std::string compressed = LzCompress(json);
  EXPECT_LT(compressed.size(), json.size() / 2) << "ratio too poor";
}

TEST(CompressionTest, LargerBlocksCompressBetter) {
  // The property behind the paper's Fig. 18: per-document compression
  // works better on larger documents.
  SensorDataSpec spec;
  spec.records_per_file = 64;
  std::string big = GenerateSensorFile(spec, 0);
  double big_ratio =
      static_cast<double>(LzCompress(big).size()) / big.size();
  // Same content split into tiny per-record documents.
  std::vector<std::string> docs = GenerateUnwrappedDocuments(spec, 0);
  size_t tiny_total = 0, tiny_compressed = 0;
  spec.measurements_per_array = 1;
  spec.records_per_file = 64;
  docs = GenerateUnwrappedDocuments(spec, 0);
  for (const std::string& d : docs) {
    tiny_total += d.size();
    tiny_compressed += LzCompress(d).size();
  }
  double tiny_ratio =
      static_cast<double>(tiny_compressed) / static_cast<double>(tiny_total);
  EXPECT_LT(big_ratio, tiny_ratio);
}

TEST(CompressionTest, RejectsCorruptStreams) {
  std::string compressed = LzCompress("hello hello hello hello");
  ASSERT_TRUE(LzDecompress(compressed).ok());
  for (size_t cut = 0; cut < compressed.size(); ++cut) {
    auto r = LzDecompress(compressed.substr(0, cut));
    // Either a clean error or (never) a wrong success.
    if (r.ok()) EXPECT_EQ(*r, "hello hello hello hello");
  }
  EXPECT_FALSE(LzDecompress("\xff\xff\xff\xff").ok());
}

// ---------------------------------------------------------------------
// DocStore (MongoDB model)
// ---------------------------------------------------------------------

TEST(DocStoreTest, LoadThenScanReturnsDocuments) {
  DocStore store;
  auto stats = store.Load({R"({"a": 1})", R"({"a": 2})", R"({"a": 3})"});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->documents, 3u);
  EXPECT_GT(stats->stored_bytes, 0u);
  EXPECT_GT(stats->load_ms, 0.0);
  int64_t sum = 0;
  ASSERT_TRUE(store
                  .ForEachDocument([&](const Item& doc) {
                    sum += doc.GetField("a")->int64_value();
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(sum, 6);
}

TEST(DocStoreTest, RejectsMalformedJsonAtLoadTime) {
  DocStore store;
  EXPECT_FALSE(store.Load({R"({"a": })"}).ok());
}

TEST(DocStoreTest, EnforcesDocumentSizeLimit) {
  DocStoreOptions options;
  options.max_document_bytes = 100;
  DocStore store(options);
  std::string big = R"({"data": ")" + std::string(200, 'x') + "\"}";
  auto status = store.Load({big}).status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST(DocStoreTest, CompressionShrinksStorage) {
  SensorDataSpec spec;
  spec.records_per_file = 16;
  std::vector<std::string> docs = GenerateUnwrappedDocuments(spec, 0);
  DocStoreOptions with;
  DocStoreOptions without;
  without.compress = false;
  DocStore compressed(with), raw(without);
  ASSERT_TRUE(compressed.Load(docs).ok());
  ASSERT_TRUE(raw.Load(docs).ok());
  EXPECT_LT(compressed.stored_bytes(), raw.stored_bytes());
  // Both decode to the same documents.
  std::vector<std::string> a, b;
  ASSERT_TRUE(compressed
                  .ForEachDocument([&](const Item& d) {
                    a.push_back(d.ToJsonString());
                    return Status::OK();
                  })
                  .ok());
  ASSERT_TRUE(raw.ForEachDocument([&](const Item& d) {
                     b.push_back(d.ToJsonString());
                     return Status::OK();
                   })
                  .ok());
  EXPECT_EQ(a, b);
}

TEST(DocStoreTest, UnwindProjectExplodesArrays) {
  DocStore store;
  ASSERT_TRUE(store
                  .Load({R"({"meta": 1, "results": [
                           {"station": "A", "value": 1, "junk": true},
                           {"station": "B", "value": 2}]})",
                         R"({"results": []})", R"({"no_results": 0})"})
                  .ok());
  auto rows = store.UnwindProject("results", {"station", "value"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ(*(*rows)[0].GetField("station"), Item::String("A"));
  // Projection drops unlisted fields.
  EXPECT_FALSE((*rows)[0].GetField("junk").has_value());
}

// ---------------------------------------------------------------------
// MemTable (Spark SQL model)
// ---------------------------------------------------------------------

TEST(MemTableTest, LoadsAndScans) {
  Collection files;
  files.files.push_back(JsonFile::FromText(R"({"v": 1})"));
  files.files.push_back(JsonFile::FromText(R"({"v": 2})"));
  MemTable table;
  auto stats = table.Load(files);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->documents, 2u);
  EXPECT_GT(table.memory_bytes(), 0u);
  int64_t sum = 0;
  ASSERT_TRUE(table
                  .ForEachDocument([&](const Item& doc) {
                    sum += doc.GetField("v")->int64_value();
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(sum, 3);
}

TEST(MemTableTest, MemoryGrowsWithInput) {
  SensorDataSpec small_spec;
  small_spec.num_files = 1;
  small_spec.records_per_file = 4;
  SensorDataSpec big_spec = small_spec;
  big_spec.num_files = 4;
  MemTable small, big;
  ASSERT_TRUE(small.Load(GenerateSensorCollection(small_spec)).ok());
  ASSERT_TRUE(big.Load(GenerateSensorCollection(big_spec)).ok());
  EXPECT_GT(big.memory_bytes(), 2 * small.memory_bytes());
}

TEST(MemTableTest, OomCliff) {
  SensorDataSpec spec;
  spec.num_files = 4;
  spec.records_per_file = 16;
  MemTableOptions options;
  options.memory_limit_bytes = 10 * 1024;  // far below the data size
  MemTable table(options);
  auto status = table.Load(GenerateSensorCollection(spec)).status();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------
// AsterixLike
// ---------------------------------------------------------------------

TEST(AsterixLikeTest, ExternalAndLoadedAgreeWithEngine) {
  SensorDataSpec spec;
  spec.num_files = 3;
  spec.records_per_file = 6;
  Collection data = GenerateSensorCollection(spec);
  const char* query = R"(
      for $r in collection("/sensors")("root")()("results")()
      where $r("dataType") eq "TMIN"
      group by $date := $r("date")
      return count($r("station")))";

  Engine vx;  // full rules
  vx.catalog()->RegisterCollection("/sensors", data);
  auto expected = vx.Run(query);
  ASSERT_TRUE(expected.ok());

  for (bool preload : {false, true}) {
    AsterixLikeOptions options;
    options.preload = preload;
    AsterixLike asterix(options);
    auto load = asterix.Register("/sensors", data);
    ASSERT_TRUE(load.ok()) << load.status().ToString();
    if (preload) {
      EXPECT_GT(load->load_ms, 0.0);
      EXPECT_GT(load->stored_bytes, 0u);
      EXPECT_EQ(load->documents, 3u);
    } else {
      EXPECT_EQ(load->load_ms, 0.0);
    }
    auto result = asterix.Run(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::multiset<std::string> a, b;
    for (const Item& i : expected->items) a.insert(i.ToJsonString());
    for (const Item& i : result->items) b.insert(i.ToJsonString());
    EXPECT_EQ(a, b) << "preload=" << preload;
  }
}

TEST(AsterixLikeTest, PlansLackScanPushdown) {
  AsterixLikeOptions options;
  AsterixLike asterix(options);
  SensorDataSpec spec;
  spec.num_files = 1;
  spec.records_per_file = 2;
  ASSERT_TRUE(
      asterix.Register("/sensors", GenerateSensorCollection(spec)).ok());
  auto compiled = asterix.engine().Compile(R"(
      for $r in collection("/sensors")("root")()("results")()
      return $r)");
  ASSERT_TRUE(compiled.ok());
  // DATASCAN exists (Algebricks) but navigation is not pushed into it
  // (the paper's "lack of the JSONiq Pipeline Rules").
  EXPECT_NE(compiled->optimized_plan.find("DATASCAN"), std::string::npos);
  EXPECT_NE(compiled->optimized_plan.find("UNNEST"), std::string::npos);
}

}  // namespace
}  // namespace jpar
