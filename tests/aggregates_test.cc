#include "runtime/aggregates.h"

#include <gtest/gtest.h>

namespace jpar {
namespace {

Item Finish(AggKind kind, AggStep step, std::vector<Item> inputs) {
  auto agg = MakeAggregator(kind, step);
  EXPECT_TRUE(agg.ok());
  for (const Item& i : inputs) {
    Status st = (*agg)->Step(i);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  auto out = (*agg)->Finish();
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  return *out;
}

TEST(AggregatorTest, CountComplete) {
  EXPECT_EQ(Finish(AggKind::kCount, AggStep::kComplete,
                   {Item::Int64(7), Item::String("x"), Item::Null()}),
            Item::Int64(3));
  EXPECT_EQ(Finish(AggKind::kCount, AggStep::kComplete, {}), Item::Int64(0));
}

TEST(AggregatorTest, CountSequenceInputsCountMembers) {
  // A sequence item contributes its members; empty sequences nothing.
  EXPECT_EQ(Finish(AggKind::kCount, AggStep::kComplete,
                   {Item::MakeSequence({Item::Int64(1), Item::Int64(2)}),
                    Item::EmptySequence(), Item::Int64(9)}),
            Item::Int64(3));
}

TEST(AggregatorTest, SumAvgMinMax) {
  std::vector<Item> in = {Item::Int64(4), Item::Int64(1), Item::Int64(7)};
  EXPECT_EQ(Finish(AggKind::kSum, AggStep::kComplete, in), Item::Int64(12));
  EXPECT_EQ(Finish(AggKind::kAvg, AggStep::kComplete, in),
            Item::Double(4.0));
  EXPECT_EQ(Finish(AggKind::kMin, AggStep::kComplete, in), Item::Int64(1));
  EXPECT_EQ(Finish(AggKind::kMax, AggStep::kComplete, in), Item::Int64(7));
}

TEST(AggregatorTest, EmptyInputEdgeCases) {
  EXPECT_EQ(Finish(AggKind::kSum, AggStep::kComplete, {}), Item::Int64(0));
  EXPECT_EQ(Finish(AggKind::kAvg, AggStep::kComplete, {}).SequenceLength(),
            0u);
  EXPECT_EQ(Finish(AggKind::kMin, AggStep::kComplete, {}).SequenceLength(),
            0u);
}

TEST(AggregatorTest, SequenceAggregatorMaterializes) {
  Item out = Finish(AggKind::kSequence, AggStep::kComplete,
                    {Item::Int64(1), Item::Int64(2)});
  ASSERT_TRUE(out.is_sequence());
  EXPECT_EQ(out.sequence().size(), 2u);
}

TEST(AggregatorTest, SequenceRetainedBytesGrow) {
  auto agg = MakeAggregator(AggKind::kSequence, AggStep::kComplete);
  ASSERT_TRUE(agg.ok());
  size_t before = (*agg)->RetainedBytes();
  ASSERT_TRUE((*agg)->Step(Item::String(std::string(10000, 'x'))).ok());
  EXPECT_GT((*agg)->RetainedBytes(), before + 9000);
  // Incremental count stays O(1) — the group-by rules' point.
  auto count = MakeAggregator(AggKind::kCount, AggStep::kComplete);
  ASSERT_TRUE(count.ok());
  size_t count_size = (*count)->RetainedBytes();
  ASSERT_TRUE((*count)->Step(Item::String(std::string(10000, 'x'))).ok());
  EXPECT_EQ((*count)->RetainedBytes(), count_size);
}

TEST(AggregatorTest, SequenceCannotBeSplit) {
  EXPECT_FALSE(MakeAggregator(AggKind::kSequence, AggStep::kLocal).ok());
  EXPECT_FALSE(MakeAggregator(AggKind::kSequence, AggStep::kGlobal).ok());
}

TEST(AggregatorTest, TwoStepCount) {
  // Local partials are per-partition counts; the global step sums them.
  Item p1 = Finish(AggKind::kCount, AggStep::kLocal,
                   {Item::Int64(1), Item::Int64(2)});
  Item p2 = Finish(AggKind::kCount, AggStep::kLocal, {Item::Int64(3)});
  EXPECT_EQ(Finish(AggKind::kCount, AggStep::kGlobal, {p1, p2}),
            Item::Int64(3));
}

TEST(AggregatorTest, TwoStepAvg) {
  // avg partials are [sum, count] arrays merged component-wise.
  Item p1 = Finish(AggKind::kAvg, AggStep::kLocal,
                   {Item::Int64(2), Item::Int64(4)});
  ASSERT_TRUE(p1.is_array());
  ASSERT_EQ(p1.array().size(), 2u);
  Item p2 = Finish(AggKind::kAvg, AggStep::kLocal, {Item::Int64(9)});
  Item result = Finish(AggKind::kAvg, AggStep::kGlobal, {p1, p2});
  EXPECT_EQ(result, Item::Double(5.0));
}

TEST(AggregatorTest, TwoStepSum) {
  Item p1 = Finish(AggKind::kSum, AggStep::kLocal, {Item::Int64(10)});
  Item p2 = Finish(AggKind::kSum, AggStep::kLocal, {Item::Int64(5)});
  EXPECT_EQ(Finish(AggKind::kSum, AggStep::kGlobal, {p1, p2}),
            Item::Int64(15));
}

TEST(AggregatorTest, TwoStepMinMaxMergeNaturally) {
  // min/max partials are ordinary values; the global step is another
  // min/max.
  Item p1 = Finish(AggKind::kMin, AggStep::kLocal,
                   {Item::Int64(5), Item::Int64(2)});
  Item p2 = Finish(AggKind::kMin, AggStep::kLocal, {Item::Int64(8)});
  EXPECT_EQ(Finish(AggKind::kMin, AggStep::kGlobal, {p1, p2}),
            Item::Int64(2));
}

TEST(AggregatorTest, GlobalStepRejectsBadPartials) {
  auto agg = MakeAggregator(AggKind::kAvg, AggStep::kGlobal);
  ASSERT_TRUE(agg.ok());
  EXPECT_FALSE((*agg)->Step(Item::String("not a partial")).ok());
  auto count = MakeAggregator(AggKind::kCount, AggStep::kGlobal);
  ASSERT_TRUE(count.ok());
  EXPECT_FALSE((*count)->Step(Item::String("nope")).ok());
}

TEST(AggregatorTest, TypeErrorsSurface) {
  auto sum = MakeAggregator(AggKind::kSum, AggStep::kComplete);
  ASSERT_TRUE(sum.ok());
  EXPECT_FALSE((*sum)->Step(Item::String("x")).ok());
  auto min = MakeAggregator(AggKind::kMin, AggStep::kComplete);
  ASSERT_TRUE(min.ok());
  ASSERT_TRUE((*min)->Step(Item::Int64(1)).ok());
  EXPECT_FALSE((*min)->Step(Item::String("x")).ok());
}

// Property sweep: two-step aggregation must agree with complete
// aggregation for every kind and any partitioning of the input.
class TwoStepEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<AggKind, int>> {};

TEST_P(TwoStepEquivalenceTest, MatchesComplete) {
  auto [kind, partitions] = GetParam();
  std::vector<Item> inputs;
  for (int i = 0; i < 23; ++i) {
    inputs.push_back(i % 3 == 0 ? Item::Double(i * 0.5) : Item::Int64(i));
  }
  Item complete = Finish(kind, AggStep::kComplete, inputs);

  std::vector<Item> partials;
  for (int p = 0; p < partitions; ++p) {
    std::vector<Item> slice;
    for (size_t i = static_cast<size_t>(p); i < inputs.size();
         i += static_cast<size_t>(partitions)) {
      slice.push_back(inputs[i]);
    }
    partials.push_back(Finish(kind, AggStep::kLocal, slice));
  }
  Item merged = Finish(kind, AggStep::kGlobal, partials);
  if (complete.is_numeric() && merged.is_numeric()) {
    EXPECT_NEAR(complete.AsDouble(), merged.AsDouble(), 1e-9);
  } else {
    EXPECT_TRUE(complete.Equals(merged));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndPartitions, TwoStepEquivalenceTest,
    ::testing::Combine(::testing::Values(AggKind::kCount, AggKind::kSum,
                                         AggKind::kAvg, AggKind::kMin,
                                         AggKind::kMax),
                       ::testing::Values(1, 2, 3, 7)));

}  // namespace
}  // namespace jpar
