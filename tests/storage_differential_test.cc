// Warm-storage-tier differential suite (DESIGN.md §14): every paper
// query must produce byte-identical rows — and identical degraded-scan
// skip counts and error statuses — whether it runs cold, against a
// cached structural-index tape, or against shredded columns, across
// sequential, threaded-morsel, and tiny-budget-spilling configurations.
// Stale-cache cases mutate the underlying files (truncate, append,
// same-size rewrite with an mtime bump) and require a transparent fall
// back to the cold answer. Non-vacuousness assertions (the warm runs
// actually hit the cache) are gated on JPAR_DISABLE_STORAGE_CACHE so
// the CI kill-switch job still passes: with the cache disabled every
// run is cold and the differential claims hold trivially.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <utime.h>

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/queries.h"
#include "core/engine.h"
#include "data/sensor_generator.h"
#include "storage/storage_tier.h"

namespace jpar {
namespace {

// ---------------------------------------------------------------------
// Disk fixtures

/// A unique directory of path-backed collection files. Tracks every
/// file it writes and removes them — plus any .jtape / .jcol sidecars
/// the storage tier left next to them — on destruction.
class TempCollectionDir {
 public:
  TempCollectionDir() {
    std::string tmpl = ::testing::TempDir() + "/jpar_storage_XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    char* made = ::mkdtemp(buf.data());
    EXPECT_NE(made, nullptr);
    dir_ = made != nullptr ? made : tmpl;
  }

  ~TempCollectionDir() {
    // Remove data files and whatever sidecars (.jtape, .<hash>.jcol)
    // the storage tier wrote beside them.
    if (DIR* d = ::opendir(dir_.c_str())) {
      while (struct dirent* e = ::readdir(d)) {
        std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        std::remove((dir_ + "/" + name).c_str());
      }
      ::closedir(d);
    }
    ::rmdir(dir_.c_str());
  }

  /// Writes (or rewrites) `name` and returns its absolute path.
  std::string Write(const std::string& name, const std::string& text) {
    std::string path = dir_ + "/" + name;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << text;
    }
    files_.push_back(path);
    return path;
  }

  /// Forces the file's mtime well past any cached signature, so a
  /// same-second same-size rewrite still invalidates.
  static void BumpMtime(const std::string& path, int seconds_ahead) {
    struct utimbuf times;
    times.actime = ::time(nullptr) + seconds_ahead;
    times.modtime = times.actime;
    ASSERT_EQ(::utime(path.c_str(), &times), 0) << path;
  }

  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::vector<std::string> files_;
};

/// Registers a path-backed sensor collection generated from `spec`.
void RegisterSensorsOnDisk(Engine* engine, TempCollectionDir* dir,
                           const SensorDataSpec& spec) {
  Collection c;
  for (int f = 0; f < spec.num_files; ++f) {
    std::string path = dir->Write("sensors_" + std::to_string(f) + ".json",
                                  GenerateSensorFile(spec, f));
    c.files.push_back(JsonFile::FromPath(path));
  }
  engine->catalog()->RegisterCollection("/sensors", std::move(c));
}

// ---------------------------------------------------------------------
// Run harness

struct RunResult {
  bool ok = false;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<std::string> rows;  // ToJsonString of each item, in order
  uint64_t skipped = 0;
  uint64_t tape_hits = 0;
  uint64_t tape_builds = 0;
  uint64_t columns_read = 0;
  uint64_t blocks_pruned = 0;
};

RunResult RunWith(const Engine& engine, const CompiledQuery& plan,
                  ExecOptions exec, StorageMode mode) {
  exec.storage_mode = mode;
  RunResult r;
  auto out = engine.Execute(plan, exec);
  r.ok = out.ok();
  r.code = out.status().code();
  r.message = out.status().message();
  if (out.ok()) {
    for (const Item& item : out->items) r.rows.push_back(item.ToJsonString());
    r.skipped = out->stats.skipped_records;
    r.tape_hits = out->stats.tape_hits;
    r.tape_builds = out->stats.tape_builds;
    r.columns_read = out->stats.columns_read;
    r.blocks_pruned = out->stats.blocks_pruned;
  }
  return r;
}

void ExpectSameAnswer(const RunResult& cold, const RunResult& warm,
                      const std::string& what) {
  ASSERT_EQ(cold.ok, warm.ok) << what << ": " << warm.message;
  ASSERT_EQ(static_cast<int>(cold.code), static_cast<int>(warm.code)) << what;
  ASSERT_EQ(cold.skipped, warm.skipped) << what;
  ASSERT_EQ(cold.rows, warm.rows) << what;
}

struct StorageConfigCase {
  const char* name;
  ExecOptions exec;
};

std::vector<StorageConfigCase> Configs() {
  std::vector<StorageConfigCase> configs;
  ExecOptions seq;
  seq.partitions = 2;
  configs.push_back({"sequential", seq});
  ExecOptions threaded;
  threaded.partitions = 4;
  threaded.use_threads = true;
  configs.push_back({"threads", threaded});
  ExecOptions spill;
  spill.partitions = 2;
  spill.memory_limit_bytes = 4096;
  spill.spill = SpillMode::kEnabled;
  configs.push_back({"spill-tiny", spill});
  return configs;
}

// ---------------------------------------------------------------------
// The paper queries, cold vs tape-warm vs columnar-warm

TEST(StorageDifferentialTest, PaperQueriesMatchColdAcrossAccessPaths) {
  SensorDataSpec spec;
  spec.num_files = 4;
  spec.records_per_file = 5;
  spec.measurements_per_array = 6;
  spec.seed = 77;

  for (const StorageConfigCase& config : Configs()) {
    StorageManager::Instance().Clear();
    TempCollectionDir dir;
    Engine engine;
    RegisterSensorsOnDisk(&engine, &dir, spec);

    for (const jparbench::NamedQuery& q : jparbench::kAllQueries) {
      auto compiled = engine.Compile(q.text, RuleOptions::All());
      ASSERT_TRUE(compiled.ok()) << q.name << ": "
                                 << compiled.status().ToString();

      std::string what = std::string(q.name) + " / " + config.name;
      RunResult cold = RunWith(engine, *compiled, config.exec,
                               StorageMode::kOff);
      ASSERT_TRUE(cold.ok) << what << ": " << cold.message;

      // First warm run builds tapes + columns; the answer must already
      // match. Second warm run serves from the caches. kTape isolates
      // the structural-index level.
      RunResult build = RunWith(engine, *compiled, config.exec,
                                StorageMode::kAuto);
      ExpectSameAnswer(cold, build, what + " (cache-building run)");
      RunResult warm = RunWith(engine, *compiled, config.exec,
                               StorageMode::kAuto);
      ExpectSameAnswer(cold, warm, what + " (columnar-warm run)");
      RunResult tape = RunWith(engine, *compiled, config.exec,
                               StorageMode::kTape);
      ExpectSameAnswer(cold, tape, what + " (tape-warm run)");

      if (!StorageCacheDisabledByEnv()) {
        EXPECT_EQ(cold.tape_hits + cold.tape_builds + cold.columns_read, 0u)
            << what << ": kOff must not touch the cache";
        // Queries sharing a scan path may be served columns another
        // query built, so any warm-tier engagement counts.
        EXPECT_GT(build.tape_hits + build.tape_builds + build.columns_read,
                  0u)
            << what;
        EXPECT_GT(warm.tape_hits + warm.columns_read, 0u) << what;
        EXPECT_GT(tape.tape_hits, 0u) << what;
        EXPECT_EQ(tape.columns_read, 0u)
            << what << ": kTape must not read columns";
      }
    }
  }
}

// A cleared in-memory cache must rewarm from the sidecar files — the
// fresh-process persistence story.
TEST(StorageDifferentialTest, SidecarsSurviveInMemoryClear) {
  SensorDataSpec spec;
  spec.num_files = 3;
  spec.records_per_file = 6;
  spec.measurements_per_array = 5;
  spec.seed = 13;

  TempCollectionDir dir;
  Engine engine;
  RegisterSensorsOnDisk(&engine, &dir, spec);
  auto compiled = engine.Compile(jparbench::kQ1, RuleOptions::All());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ExecOptions exec;
  exec.partitions = 2;

  RunResult cold = RunWith(engine, *compiled, exec, StorageMode::kOff);
  ASSERT_TRUE(cold.ok) << cold.message;
  StorageManager::Instance().Clear();
  RunResult build = RunWith(engine, *compiled, exec, StorageMode::kAuto);
  ExpectSameAnswer(cold, build, "sidecar build run");

  // Simulate a fresh process: memory gone, sidecars remain. The tape
  // level rewarms from its .jtape sidecar (kTape keeps columns out of
  // the picture)...
  StorageManager::Instance().Clear();
  RunResult tape = RunWith(engine, *compiled, exec, StorageMode::kTape);
  ExpectSameAnswer(cold, tape, "sidecar tape rewarm run");
  if (!StorageCacheDisabledByEnv()) {
    // Stage 1 was not re-run: the tape loaded from its sidecar.
    EXPECT_GT(tape.tape_hits, 0u);
    EXPECT_EQ(tape.tape_builds, 0u);
  }

  // ...and the columnar level rewarms from its .jcol sidecars without
  // touching any JSON bytes.
  StorageManager::Instance().Clear();
  RunResult rewarm = RunWith(engine, *compiled, exec, StorageMode::kAuto);
  ExpectSameAnswer(cold, rewarm, "sidecar columnar rewarm run");
  if (!StorageCacheDisabledByEnv()) {
    EXPECT_GT(rewarm.columns_read, 0u);
    EXPECT_EQ(rewarm.tape_builds, 0u);
  }
}

// ---------------------------------------------------------------------
// Dirty NDJSON: skip counts must survive every access path

constexpr const char* kDirtyQuery = R"(
  for $d in collection("/dirty")
  where $d("g") eq "a"
  return $d("v"))";

std::string DirtyNdjson(int base) {
  std::string text;
  for (int i = 0; i < 40; ++i) {
    if (i % 7 == 3) {
      text += "{\"v\": " + std::to_string(base + i) + ", \"g\": \"a\"";
      text += "\n";  // truncated record — parse error, skipped
    } else {
      text += "{\"v\": " + std::to_string(base + i) + ", \"g\": \"" +
              (i % 2 == 0 ? "a" : "b") + "\"}\n";
    }
  }
  return text;
}

TEST(StorageDifferentialTest, DirtyNdjsonSkipCountsAgree) {
  for (const StorageConfigCase& config : Configs()) {
    StorageManager::Instance().Clear();
    TempCollectionDir dir;
    Engine engine;
    Collection c;
    for (int f = 0; f < 3; ++f) {
      c.files.push_back(JsonFile::FromPath(
          dir.Write("dirty_" + std::to_string(f) + ".ndjson",
                    DirtyNdjson(f * 100))));
    }
    engine.catalog()->RegisterCollection("/dirty", std::move(c));
    auto compiled = engine.Compile(kDirtyQuery, RuleOptions::All());
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

    ExecOptions lenient = config.exec;
    lenient.on_parse_error = ParseErrorPolicy::kSkipAndCount;

    std::string what = std::string("dirty / ") + config.name;
    RunResult cold = RunWith(engine, *compiled, lenient, StorageMode::kOff);
    ASSERT_TRUE(cold.ok) << what << ": " << cold.message;
    ASSERT_GT(cold.skipped, 0u) << what;
    RunResult build = RunWith(engine, *compiled, lenient, StorageMode::kAuto);
    ExpectSameAnswer(cold, build, what + " (build)");
    RunResult warm = RunWith(engine, *compiled, lenient, StorageMode::kAuto);
    ExpectSameAnswer(cold, warm, what + " (warm)");

    // Strict mode must fail identically warm and cold: a column built
    // by a lenient scan records its skips, and strict queries refuse
    // it rather than silently dropping the malformed records.
    ExecOptions strict = config.exec;
    RunResult cold_strict =
        RunWith(engine, *compiled, strict, StorageMode::kOff);
    RunResult warm_strict =
        RunWith(engine, *compiled, strict, StorageMode::kAuto);
    ASSERT_FALSE(cold_strict.ok) << what;
    ASSERT_FALSE(warm_strict.ok) << what;
    EXPECT_EQ(static_cast<int>(cold_strict.code),
              static_cast<int>(warm_strict.code))
        << what;
  }
}

// ---------------------------------------------------------------------
// Stale caches: the file changed, the warm path must notice

std::string CleanNdjson(int records, int base) {
  std::string text;
  for (int i = 0; i < records; ++i) {
    text += "{\"v\": " + std::to_string(base + i) + ", \"g\": \"" +
            (i % 2 == 0 ? "a" : "b") + "\"}\n";
  }
  return text;
}

class StaleCacheTest : public ::testing::Test {
 protected:
  /// Warms every cache level over the initial file contents, applies
  /// `mutate`, and requires the next warm run to equal a cold run over
  /// the new contents.
  void CheckInvalidation(
      const std::function<void(TempCollectionDir*, const std::string&)>&
          mutate,
      const char* what) {
    StorageManager::Instance().Clear();
    TempCollectionDir dir;
    std::string path = dir.Write("data.ndjson", CleanNdjson(50, 0));
    Engine engine;
    Collection c;
    c.files.push_back(JsonFile::FromPath(path));
    engine.catalog()->RegisterCollection("/dirty", std::move(c));
    auto compiled = engine.Compile(kDirtyQuery, RuleOptions::All());
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    ExecOptions exec;
    exec.partitions = 2;

    // Warm both levels, twice so columns are read at least once.
    for (int i = 0; i < 2; ++i) {
      RunResult r = RunWith(engine, *compiled, exec, StorageMode::kAuto);
      ASSERT_TRUE(r.ok) << what << ": " << r.message;
    }

    mutate(&dir, path);

    RunResult cold = RunWith(engine, *compiled, exec, StorageMode::kOff);
    ASSERT_TRUE(cold.ok) << what << ": " << cold.message;
    RunResult warm = RunWith(engine, *compiled, exec, StorageMode::kAuto);
    ExpectSameAnswer(cold, warm, std::string(what) + " (post-mutation)");
    RunResult warm2 = RunWith(engine, *compiled, exec, StorageMode::kAuto);
    ExpectSameAnswer(cold, warm2, std::string(what) + " (rewarmed)");
  }
};

TEST_F(StaleCacheTest, TruncatedFileFallsBackCold) {
  CheckInvalidation(
      [](TempCollectionDir* dir, const std::string& path) {
        dir->Write("data.ndjson", CleanNdjson(20, 0));
        TempCollectionDir::BumpMtime(path, 3);
      },
      "truncated");
}

TEST_F(StaleCacheTest, AppendedFileFallsBackCold) {
  CheckInvalidation(
      [](TempCollectionDir* dir, const std::string& path) {
        dir->Write("data.ndjson", CleanNdjson(50, 0) + CleanNdjson(30, 500));
        TempCollectionDir::BumpMtime(path, 3);
      },
      "appended");
}

TEST_F(StaleCacheTest, SameSizeRewriteWithMtimeBumpFallsBackCold) {
  CheckInvalidation(
      [](TempCollectionDir* dir, const std::string& path) {
        // Same byte count, different values: only the mtime betrays it.
        std::string original = CleanNdjson(50, 0);
        std::string changed = CleanNdjson(50, 0);
        for (char& ch : changed) {
          if (ch == '1') ch = '2';
        }
        ASSERT_EQ(original.size(), changed.size());
        dir->Write("data.ndjson", changed);
        TempCollectionDir::BumpMtime(path, 3);
      },
      "same-size rewrite");
}

// ---------------------------------------------------------------------
// Zone maps: pruned blocks must never change the answer

TEST(StorageDifferentialTest, ZoneMapPruningMatchesColdAnswer) {
  StorageManager::Instance().Clear();
  TempCollectionDir dir;
  Engine engine;
  Collection c;
  // Ascending values give tight per-block zone maps: a high threshold
  // provably excludes the early blocks (block size 512).
  for (int f = 0; f < 2; ++f) {
    std::string text;
    for (int i = 0; i < 1300; ++i) {
      text += "{\"v\": " + std::to_string(f * 10000 + i) + "}\n";
    }
    c.files.push_back(JsonFile::FromPath(
        dir.Write("zones_" + std::to_string(f) + ".ndjson", text)));
  }
  engine.catalog()->RegisterCollection("/zones", std::move(c));

  const char* query = R"(
    for $v in collection("/zones")("v")
    where $v gt 10600
    return $v)";
  auto compiled = engine.Compile(query, RuleOptions::All());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ExecOptions exec;
  exec.partitions = 2;

  RunResult cold = RunWith(engine, *compiled, exec, StorageMode::kOff);
  ASSERT_TRUE(cold.ok) << cold.message;
  ASSERT_EQ(cold.rows.size(), 699u);  // 10601..11299 of file 1

  RunResult build = RunWith(engine, *compiled, exec, StorageMode::kAuto);
  ExpectSameAnswer(cold, build, "zone build run");
  RunResult warm = RunWith(engine, *compiled, exec, StorageMode::kAuto);
  ExpectSameAnswer(cold, warm, "zone warm run");
  if (!StorageCacheDisabledByEnv()) {
    EXPECT_GT(warm.columns_read, 0u);
    EXPECT_GT(warm.blocks_pruned, 0u)
        << "the high threshold must prune whole blocks";
  }

  // The mirrored predicate (constant on the left) prunes identically.
  const char* flipped = R"(
    for $v in collection("/zones")("v")
    where 10600 lt $v
    return $v)";
  auto compiled2 = engine.Compile(flipped, RuleOptions::All());
  ASSERT_TRUE(compiled2.ok()) << compiled2.status().ToString();
  RunResult cold2 = RunWith(engine, *compiled2, exec, StorageMode::kOff);
  RunResult warm2 = RunWith(engine, *compiled2, exec, StorageMode::kAuto);
  RunResult warm2b = RunWith(engine, *compiled2, exec, StorageMode::kAuto);
  ExpectSameAnswer(cold2, warm2, "flipped zone build");
  ExpectSameAnswer(cold2, warm2b, "flipped zone warm");
  ASSERT_EQ(cold2.rows, cold.rows);
}

// ---------------------------------------------------------------------
// Concurrency: many warm queries over one shared cache (TSan coverage)

TEST(StorageDifferentialTest, ConcurrentWarmQueriesShareTheCache) {
  SensorDataSpec spec;
  spec.num_files = 3;
  spec.records_per_file = 6;
  spec.measurements_per_array = 5;
  spec.seed = 29;

  StorageManager::Instance().Clear();
  TempCollectionDir dir;
  Engine engine;
  RegisterSensorsOnDisk(&engine, &dir, spec);
  auto compiled = engine.Compile(jparbench::kQ1, RuleOptions::All());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  ExecOptions exec;
  exec.partitions = 4;
  exec.use_threads = true;

  RunResult cold = RunWith(engine, *compiled, exec, StorageMode::kOff);
  ASSERT_TRUE(cold.ok) << cold.message;

  constexpr int kThreads = 6;
  std::vector<RunResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread races cache building on the first pass and cache
      // serving afterwards.
      results[t] = RunWith(engine, *compiled, exec, StorageMode::kAuto);
      results[t] = RunWith(engine, *compiled, exec, StorageMode::kAuto);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    ExpectSameAnswer(cold, results[t],
                     "concurrent warm thread " + std::to_string(t));
  }
}

}  // namespace
}  // namespace jpar
